package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dnnfusion"

	"dnnfusion/internal/faultinject"
	"dnnfusion/internal/obs"
)

// Host serves one registered model: it owns the (possibly lazily built)
// Model, the batch-capacity variant, the dispatcher goroutine that forms
// dynamic batches, the pooled result buffers, and the per-model counters.
// Hosts are safe for concurrent use by any number of goroutines.
type Host struct {
	name string
	cfg  Config

	build func() (*dnnfusion.Model, error)

	initOnce sync.Once
	initErr  error
	// onBuildFail fires once if the builder fails (set by Registry.add to
	// bump the repository-wide failure counter; nil for bare hosts).
	onBuildFail func()
	model       *dnnfusion.Model
	batch       *dnnfusion.BatchModel // nil → per-request execution
	batchOff    string                // why batching is off ("" when on)
	inSpecs     []TensorSpec
	outSpecs    []TensorSpec

	calls     chan *call
	closeOnce sync.Once
	closed    chan struct{}
	// ctx is the host's shutdown context: created at registration (with
	// closed), canceled by close, and threaded into every batch execution
	// so an in-flight batch observes eviction/server drain between kernels
	// instead of running to completion against a host that is already
	// gone.
	ctx    context.Context
	cancel context.CancelFunc
	// closing flips before closed is closed; pending counts Run calls
	// between their closing-check and their result. Together they close
	// the eviction race: the dispatcher's drain keeps serving ErrClosed
	// until every such Run has been answered, so a request can never
	// strand in a queue no goroutine reads anymore.
	closing atomic.Bool
	pending atomic.Int64

	// limiter is the registry-wide in-flight ceiling this host admits
	// through (nil for bare hosts, always set by Registry.add).
	limiter *inflight
	// obs is the repository metric registry the host publishes on (nil for
	// bare hosts; set by Registry.add before init can run).
	obs *obs.Registry

	resPool sync.Pool
	st      stats

	// started marks the dispatcher goroutine running (set at the end of
	// init, read lock-free by Loaded).
	started atomic.Bool
}

// call is one enqueued request. ctx is the caller's context, carried into
// the queue so the dispatcher can drop the call once its deadline has
// passed instead of executing work nobody will read. The done channel
// carries exactly one token per dispatch; calls recycle through a pool on
// the success path.
//
// The timing fields record the request's passage through the pipeline:
// start/enq are stamped by Run before enqueueing; deq, execStart, execNs,
// and batchSize by the dispatcher before the done token is sent, so Run
// reads them race-free after <-c.done (and never on the abandon path).
type call struct {
	ctx    context.Context
	inputs map[string]*dnnfusion.Tensor
	res    *Result
	err    error
	done   chan struct{}

	start     time.Time // admission (Run entry, post-init)
	enq       time.Time // enqueued into h.calls
	deq       time.Time // pulled by the dispatcher
	execStart time.Time // execution began for this call's batch
	execNs    int64     // execution wall time
	batchSize int       // peers coalesced with this call (incl. itself)
}

var callPool = sync.Pool{New: func() any { return &call{done: make(chan struct{}, 1)} }}

// Result is one request's outputs, served from a per-host buffer pool so a
// warmed host's steady state allocates nothing for output delivery. The
// tensors are owned copies (not views into any runner): they stay valid
// until Release, which recycles them — callers that retain data longer must
// Clone first. Releasing is optional (a dropped Result is garbage
// collected); it is the fast path, not a correctness requirement.
type Result struct {
	h    *Host
	outs map[string]*dnnfusion.Tensor
	tl   Timeline
}

// Timeline is one request's per-stage timing, recorded for every
// successfully delivered Run: admission (validation and limiter checks
// before enqueue), queue wait (enqueue to dispatcher pull), batch formation
// (pull to execution start), and the execution itself. The HTTP layer
// surfaces it as the ?trace=1 block on :predict.
type Timeline struct {
	// BatchSize is how many requests were coalesced into this call's
	// execution (1 when served per-request).
	BatchSize   int
	AdmissionNs int64
	QueueWaitNs int64
	BatchFormNs int64
	ExecuteNs   int64
	// TotalNs is the full admission-to-result latency; the gap between it
	// and the sum of the stages is response delivery.
	TotalNs int64
}

// Timeline returns the request's stage timings; valid until Release.
func (r *Result) Timeline() Timeline { return r.tl }

// Outputs maps output names to tensors; valid until Release.
func (r *Result) Outputs() map[string]*dnnfusion.Tensor { return r.outs }

// Output returns one named output tensor (nil when absent).
func (r *Result) Output(name string) *dnnfusion.Tensor { return r.outs[name] }

// Release returns the result's buffers to the host pool.
func (r *Result) Release() {
	if r == nil || r.h == nil {
		return
	}
	h := r.h
	r.h = nil
	h.resPool.Put(r)
}

// Name returns the model name the host serves under.
func (h *Host) Name() string { return h.name }

// Model returns the served model, building it on first use.
func (h *Host) Model() (*dnnfusion.Model, error) {
	if err := h.init(); err != nil {
		return nil, err
	}
	return h.model, nil
}

// init builds the model, compiles the batch variant (with parity
// self-check), snapshots the I/O specs, and starts the dispatcher. It runs
// at most once; failures are sticky.
func (h *Host) init() error {
	h.initOnce.Do(func() {
		defer func() {
			if h.initErr != nil && h.onBuildFail != nil {
				h.onBuildFail()
			}
		}()
		m, err := h.build()
		if err == nil {
			// Fault-injection point: tests force deterministic build
			// failures here to exercise the sticky-failure and
			// build-counter paths without crafting a broken model.
			err = faultinject.Inject(context.Background(), faultinject.ServeBuild, h.name)
		}
		if err != nil {
			h.initErr = fmt.Errorf("serve: building model %q: %w", h.name, err)
			return
		}
		if m == nil {
			h.initErr = fmt.Errorf("serve: building model %q: builder returned nil", h.name)
			return
		}
		h.model = m
		for _, name := range m.InputNames() {
			shape, err := m.InputShape(name)
			if err != nil {
				h.initErr = err
				return
			}
			h.inSpecs = append(h.inSpecs, TensorSpec{Name: name, Shape: shape})
		}
		for _, name := range m.OutputNames() {
			shape, err := m.OutputShape(name)
			if err != nil {
				h.initErr = err
				return
			}
			h.outSpecs = append(h.outSpecs, TensorSpec{Name: name, Shape: shape})
		}
		h.initBatching()
		h.resPool.New = func() any { return h.newResult() }
		h.calls = make(chan *call, h.cfg.Queue)
		h.st.curDelayNs.Store(int64(h.cfg.MaxDelay))
		h.registerModelMetrics()
		go h.dispatch()
		h.started.Store(true)
	})
	return h.initErr
}

// initBatching compiles the batch-capacity variant and verifies batching
// is semantically invisible; any failure records the reason and falls back
// to per-request execution.
func (h *Host) initBatching() {
	switch {
	case h.cfg.DisableBatching:
		h.batchOff = "disabled by configuration"
		return
	case h.cfg.MaxBatch <= 1:
		h.batchOff = "batch capacity 1"
		return
	}
	bm, err := h.model.CompileBatch(h.cfg.MaxBatch)
	if err != nil {
		h.batchOff = fmt.Sprintf("not batchable: %v", err)
		return
	}
	if !h.cfg.DisableParityCheck {
		if err := verifyBatchParity(h.model, bm); err != nil {
			h.batchOff = fmt.Sprintf("parity check failed: %v", err)
			return
		}
	}
	h.batch = bm
}

// verifyBatchParity runs two deterministic random requests through one
// coalesced batch and through sequential Runner.Run calls and requires
// bit-identical outputs — the semantic guard the structural batch check
// cannot provide (and, for shape-only models whose weights carry no data,
// the point where batching fails closed into per-request mode).
func verifyBatchParity(m *dnnfusion.Model, bm *dnnfusion.BatchModel) error {
	runner := m.NewRunner()
	defer runner.Release()
	br := bm.NewRunner()
	defer br.Release()
	ctx := context.Background()
	reqs := make([]map[string]*dnnfusion.Tensor, 2)
	for i := range reqs {
		req := map[string]*dnnfusion.Tensor{}
		for j, name := range m.InputNames() {
			shape, err := m.InputShape(name)
			if err != nil {
				return err
			}
			req[name] = dnnfusion.NewTensor(shape...).Rand(uint64(1000*i + j + 1))
		}
		reqs[i] = req
	}
	got, err := br.RunBatch(ctx, reqs)
	if err != nil {
		return err
	}
	for i, req := range reqs {
		want, err := runner.Run(ctx, req)
		if err != nil {
			return err
		}
		for name, w := range want {
			g := got[i][name]
			if g == nil {
				return fmt.Errorf("request %d missing output %q", i, name)
			}
			gd, wd := g.Data(), w.Data()
			for k := range wd {
				if gd[k] != wd[k] {
					return fmt.Errorf("request %d output %q element %d: batched %v != sequential %v",
						i, name, k, gd[k], wd[k])
				}
			}
		}
	}
	return nil
}

// newResult allocates a result with one owned tensor per model output.
func (h *Host) newResult() *Result {
	outs := make(map[string]*dnnfusion.Tensor, len(h.outSpecs))
	for _, spec := range h.outSpecs {
		outs[spec.Name] = dnnfusion.NewTensor(spec.Shape...)
	}
	return &Result{outs: outs}
}

// validate checks a request against the model's input specs with the same
// error taxonomy as Runner.Run, before the request ever enters the queue —
// a malformed request never poisons a batch.
func (h *Host) validate(inputs map[string]*dnnfusion.Tensor) error {
	for name, t := range inputs {
		spec := h.inSpec(name)
		if spec == nil {
			return fmt.Errorf("%w: %q (model inputs: %v)", dnnfusion.ErrUnknownInput, name, h.model.InputNames())
		}
		if t == nil {
			return fmt.Errorf("%w: %q fed a nil tensor", dnnfusion.ErrMissingInput, name)
		}
		if !t.Shape().Equal(spec.Shape) {
			return &dnnfusion.ShapeError{Input: name, Want: append(dnnfusion.Shape(nil), spec.Shape...), Got: t.Shape()}
		}
	}
	for _, spec := range h.inSpecs {
		if _, ok := inputs[spec.Name]; !ok {
			return fmt.Errorf("%w: %q", dnnfusion.ErrMissingInput, spec.Name)
		}
	}
	return nil
}

func (h *Host) inSpec(name string) *TensorSpec {
	for i := range h.inSpecs {
		if h.inSpecs[i].Name == name {
			return &h.inSpecs[i]
		}
	}
	return nil
}

// Run executes one request through the host's dynamic batcher: the call
// coalesces with whatever else is in flight (up to MaxBatch peers, waiting
// at most the current coalescing delay) and returns its own outputs as a
// pooled Result — Release it when done. Input data is copied before Run
// returns, so the caller may reuse fed tensors immediately.
//
// Admission is bounded: a full queue sheds immediately (the error wraps
// dnnfusion.ErrOverloaded — nothing was queued, retry after backoff), and
// the registry-wide in-flight ceiling sheds with ErrSaturated. The
// caller's deadline travels with the request: a context already done on
// arrival is rejected without queueing, a call whose deadline passes while
// queued is dropped before batch formation (the caller gets ctx.Err(),
// never a wasted inference), and execution itself runs under the earliest
// live deadline in the batch.
//
// Errors wrap dnnfusion.ErrUnknownInput, ErrMissingInput, ErrShapeMismatch
// (as *ShapeError) for malformed requests, dnnfusion.ErrOverloaded when
// shed, ErrClosed after eviction, and ctx.Err() when the context expires
// first.
func (h *Host) Run(ctx context.Context, inputs map[string]*dnnfusion.Tensor) (*Result, error) {
	if err := h.init(); err != nil {
		h.st.requests.Inc()
		h.st.errors.Inc()
		return nil, err
	}
	start := time.Now()
	if err := h.validate(inputs); err != nil {
		h.st.requests.Inc()
		h.st.errors.Inc()
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		// Dead on arrival: the client's deadline has already passed (or it
		// canceled), so admitting the request could only waste capacity
		// the live traffic needs.
		h.st.requests.Inc()
		h.st.errors.Inc()
		h.st.expired.Inc()
		return nil, err
	}
	if h.limiter != nil {
		if !h.limiter.acquire() {
			// Counted registry-wide (Registry.Saturated), not in the
			// per-host shed counter: the host's own queue was not the
			// bottleneck.
			h.st.requests.Inc()
			h.st.errors.Inc()
			return nil, ErrSaturated
		}
		defer h.limiter.release()
	}
	// Register as pending before enqueueing: close() flips closing before
	// signaling the dispatcher, and the dispatcher's drain runs until
	// pending returns to zero, so once the Add below succeeds a response
	// (possibly ErrClosed) is guaranteed.
	h.pending.Add(1)
	if h.closing.Load() {
		h.pending.Add(-1)
		h.st.requests.Inc()
		h.st.errors.Inc()
		return nil, ErrClosed
	}
	c := callPool.Get().(*call)
	c.ctx, c.inputs, c.res, c.err = ctx, inputs, nil, nil
	c.start, c.enq = start, time.Now()
	c.deq, c.execStart, c.execNs, c.batchSize = time.Time{}, time.Time{}, 0, 0
	select {
	case h.calls <- c:
	default:
		// Admission control: the queue is at capacity. Fail fast instead
		// of blocking — under overload a blocked caller is latency the
		// client has already given up on, and an unbounded queue is how a
		// server collapses instead of shedding.
		h.pending.Add(-1)
		c.ctx, c.inputs = nil, nil
		callPool.Put(c)
		h.st.requests.Inc()
		h.st.errors.Inc()
		if h.closing.Load() {
			return nil, ErrClosed
		}
		h.st.shed.Inc()
		return nil, fmt.Errorf("serve: model %q: queue full (capacity %d): %w",
			h.name, h.cfg.Queue, dnnfusion.ErrOverloaded)
	}
	select {
	case <-c.done:
	case <-ctx.Done():
		// The dispatcher still owns c; abandon it (the call object is
		// garbage collected, never pooled, so the late token is harmless).
		h.pending.Add(-1)
		h.st.requests.Inc()
		h.st.errors.Inc()
		return nil, ctx.Err()
	}
	h.pending.Add(-1)
	res, err := c.res, c.err
	enq, deq, execStart, execNs, bsz := c.enq, c.deq, c.execStart, c.execNs, c.batchSize
	c.ctx, c.inputs, c.res, c.err = nil, nil, nil, nil
	callPool.Put(c)
	h.st.requests.Inc()
	elapsed := time.Since(start)
	h.st.latency.Observe(elapsed.Seconds())
	if err != nil {
		h.st.errors.Inc()
		return nil, err
	}
	wait := deq.Sub(enq)
	h.st.queueWait.Observe(wait.Seconds())
	res.tl = Timeline{
		BatchSize:   bsz,
		AdmissionNs: enq.Sub(start).Nanoseconds(),
		QueueWaitNs: wait.Nanoseconds(),
		BatchFormNs: execStart.Sub(deq).Nanoseconds(),
		ExecuteNs:   execNs,
		TotalNs:     elapsed.Nanoseconds(),
	}
	return res, nil
}

// close shuts the host down: the dispatcher drains and fails pending
// requests with ErrClosed and drops its serving arenas. closing flips
// first so no new Run can slip past the drain, and the shutdown context
// is canceled so an in-flight batch stops between kernels.
func (h *Host) close() {
	h.closeOnce.Do(func() {
		h.closing.Store(true)
		if h.cancel != nil {
			h.cancel()
		}
		close(h.closed)
	})
}
