package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dnnfusion"

	"dnnfusion/internal/models"
)

// newTestServer registers the batchable MLP and the fallback attention
// model behind an httptest server.
func newTestServer(t *testing.T) (*httptest.Server, *Registry) {
	t.Helper()
	r := NewRegistry()
	if _, err := r.Register("micro-mlp", compileMicro(t, models.MicroMLP), Config{MaxBatch: 4, MaxDelay: 100 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RegisterBuilder("micro-attention", func() (*dnnfusion.Model, error) {
		return dnnfusion.Compile(models.MicroAttention(), dnnfusion.WithThreads(1))
	}, Config{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(r))
	t.Cleanup(func() { ts.Close(); r.Close() })
	return ts, r
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return body
}

func postJSON(t *testing.T, url, body string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response of POST %s: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s = %d (%v), want %d", url, resp.StatusCode, out, wantStatus)
	}
	return out
}

func TestServerHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	body := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if body["status"] != "ok" || body["models"].(float64) != 2 {
		t.Fatalf("healthz = %v", body)
	}
}

func TestServerListModels(t *testing.T) {
	ts, _ := newTestServer(t)
	body := getJSON(t, ts.URL+"/v1/models", http.StatusOK)
	entries := body["models"].([]any)
	if len(entries) != 2 {
		t.Fatalf("listed %d models, want 2", len(entries))
	}
	first := entries[0].(map[string]any)
	// Sorted: micro-attention first, lazily registered so not yet loaded.
	if first["name"] != "micro-attention" || first["loaded"] != false {
		t.Fatalf("first entry = %v", first)
	}
	if _, hasStats := first["stats"]; hasStats {
		t.Fatal("unloaded model exposes stats (listing must not force builds)")
	}
}

func TestServerModelInfo(t *testing.T) {
	ts, _ := newTestServer(t)
	body := getJSON(t, ts.URL+"/v1/models/micro-mlp", http.StatusOK)
	if body["name"] != "micro-mlp" || body["batchable"] != true || body["max_batch"].(float64) != 4 {
		t.Fatalf("info = %v", body)
	}
	if body["planned_peak_bytes"].(float64) <= 0 || body["batch_planned_peak_bytes"].(float64) <= 0 {
		t.Fatalf("info missing memory plan: %v", body)
	}
	in := body["inputs"].([]any)[0].(map[string]any)
	if in["name"] != "x" {
		t.Fatalf("input spec = %v", in)
	}
	// The fallback model reports why batching is off.
	body = getJSON(t, ts.URL+"/v1/models/micro-attention", http.StatusOK)
	if body["batchable"] != false || body["batch_disabled_reason"] == "" {
		t.Fatalf("attention info = %v", body)
	}
}

func TestServerPredictRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	m := compileMicro(t, models.MicroMLP)
	req := microRequest(t, m, 42)
	data, _ := json.Marshal(map[string]any{
		"inputs": map[string]any{"x": map[string]any{"shape": req["x"].Shape(), "data": req["x"].Data()}},
	})
	body := postJSON(t, ts.URL+"/v1/models/micro-mlp:predict", string(data), http.StatusOK)
	if body["model"] != "micro-mlp" {
		t.Fatalf("predict response = %v", body)
	}
	out := body["outputs"].(map[string]any)["y"].(map[string]any)
	got := out["data"].([]any)
	want, err := m.NewRunner().Run(t.Context(), req)
	if err != nil {
		t.Fatal(err)
	}
	wd := want["y"].Data()
	if len(got) != len(wd) {
		t.Fatalf("predict returned %d elements, want %d", len(got), len(wd))
	}
	for k := range wd {
		if diff := float64(wd[k]) - got[k].(float64); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("element %d: served %v, direct %v", k, got[k], wd[k])
		}
	}
}

func TestServerPredictDefaults(t *testing.T) {
	ts, _ := newTestServer(t)
	// Omitted shape and data: declared shape, zero data — the minimal
	// smoke request CI uses.
	body := postJSON(t, ts.URL+"/v1/models/micro-mlp:predict", `{"inputs":{"x":{}}}`, http.StatusOK)
	out := body["outputs"].(map[string]any)["y"].(map[string]any)
	if shape := out["shape"].([]any); len(shape) != 2 {
		t.Fatalf("output shape = %v", shape)
	}
}

func TestServerErrorTaxonomy(t *testing.T) {
	ts, reg := newTestServer(t)
	// Unknown model → 404 wrapping ErrUnknownModel semantics.
	body := postJSON(t, ts.URL+"/v1/models/nope:predict", `{"inputs":{}}`, http.StatusNotFound)
	if !strings.Contains(body["error"].(string), "unknown model") {
		t.Fatalf("404 body = %v", body)
	}
	getJSON(t, ts.URL+"/v1/models/nope", http.StatusNotFound)
	// Bad shape → 400 wrapping *ShapeError.
	body = postJSON(t, ts.URL+"/v1/models/micro-mlp:predict",
		`{"inputs":{"x":{"shape":[2,2],"data":[1,2,3,4]}}}`, http.StatusBadRequest)
	if !strings.Contains(body["error"].(string), "shape") {
		t.Fatalf("shape 400 body = %v", body)
	}
	// Data/shape element mismatch → 400.
	postJSON(t, ts.URL+"/v1/models/micro-mlp:predict",
		`{"inputs":{"x":{"data":[1,2,3]}}}`, http.StatusBadRequest)
	// Missing input → 400.
	body = postJSON(t, ts.URL+"/v1/models/micro-mlp:predict", `{"inputs":{}}`, http.StatusBadRequest)
	if !strings.Contains(body["error"].(string), "missing input") {
		t.Fatalf("missing-input 400 body = %v", body)
	}
	// Unknown input name → 400.
	postJSON(t, ts.URL+"/v1/models/micro-mlp:predict", `{"inputs":{"zz":{}}}`, http.StatusBadRequest)
	// Undecodable JSON → 400.
	postJSON(t, ts.URL+"/v1/models/micro-mlp:predict", `{not json`, http.StatusBadRequest)
	// Wrong methods → 405.
	resp, err := http.Get(ts.URL + "/v1/models/micro-mlp:predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET predict = %d, want 405", resp.StatusCode)
	}
	// Unknown endpoint → 404.
	resp, err = http.Get(ts.URL + "/v2/frobnicate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown endpoint = %d, want 404", resp.StatusCode)
	}
	// Evicted model → 404 afterwards.
	reg.Evict("micro-mlp")
	postJSON(t, ts.URL+"/v1/models/micro-mlp:predict", `{"inputs":{"x":{}}}`, http.StatusNotFound)
}

// TestServerParallelPredictRace hammers the HTTP surface from concurrent
// clients (run under -race in CI's GOMAXPROCS=4 step).
func TestServerParallelPredictRace(t *testing.T) {
	ts, _ := newTestServer(t)
	const clients, rounds = 6, 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			model := "micro-mlp"
			if c%3 == 2 {
				model = "micro-attention"
			}
			url := fmt.Sprintf("%s/v1/models/%s:predict", ts.URL, model)
			input := map[string]string{"micro-mlp": "x", "micro-attention": "tokens"}[model]
			body := fmt.Sprintf(`{"inputs":{%q:{}}}`, input)
			for i := 0; i < rounds; i++ {
				resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d", c, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
}
