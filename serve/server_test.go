package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dnnfusion"

	"dnnfusion/internal/models"
)

// newTestServer registers the batchable MLP and the fallback attention
// model behind an httptest server.
func newTestServer(t *testing.T) (*httptest.Server, *Registry) {
	t.Helper()
	r := NewRegistry()
	if _, err := r.Register("micro-mlp", compileMicro(t, models.MicroMLP), Config{MaxBatch: 4, MaxDelay: 100 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RegisterBuilder("micro-attention", func() (*dnnfusion.Model, error) {
		return dnnfusion.Compile(models.MicroAttention(), dnnfusion.WithThreads(1))
	}, Config{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(r))
	t.Cleanup(func() { ts.Close(); r.Close() })
	return ts, r
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return body
}

func postJSON(t *testing.T, url, body string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response of POST %s: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s = %d (%v), want %d", url, resp.StatusCode, out, wantStatus)
	}
	return out
}

func TestServerHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	body := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if body["status"] != "ok" || body["models"].(float64) != 2 {
		t.Fatalf("healthz = %v", body)
	}
}

func TestServerListModels(t *testing.T) {
	ts, _ := newTestServer(t)
	body := getJSON(t, ts.URL+"/v1/models", http.StatusOK)
	entries := body["models"].([]any)
	if len(entries) != 2 {
		t.Fatalf("listed %d models, want 2", len(entries))
	}
	first := entries[0].(map[string]any)
	// Sorted: micro-attention first, lazily registered so not yet loaded.
	if first["name"] != "micro-attention" || first["loaded"] != false {
		t.Fatalf("first entry = %v", first)
	}
	if _, hasStats := first["stats"]; hasStats {
		t.Fatal("unloaded model exposes stats (listing must not force builds)")
	}
}

func TestServerModelInfo(t *testing.T) {
	ts, _ := newTestServer(t)
	body := getJSON(t, ts.URL+"/v1/models/micro-mlp", http.StatusOK)
	if body["name"] != "micro-mlp" || body["batchable"] != true || body["max_batch"].(float64) != 4 {
		t.Fatalf("info = %v", body)
	}
	if body["planned_peak_bytes"].(float64) <= 0 || body["batch_planned_peak_bytes"].(float64) <= 0 {
		t.Fatalf("info missing memory plan: %v", body)
	}
	in := body["inputs"].([]any)[0].(map[string]any)
	if in["name"] != "x" {
		t.Fatalf("input spec = %v", in)
	}
	// The fallback model reports why batching is off.
	body = getJSON(t, ts.URL+"/v1/models/micro-attention", http.StatusOK)
	if body["batchable"] != false || body["batch_disabled_reason"] == "" {
		t.Fatalf("attention info = %v", body)
	}
}

func TestServerPredictRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	m := compileMicro(t, models.MicroMLP)
	req := microRequest(t, m, 42)
	data, _ := json.Marshal(map[string]any{
		"inputs": map[string]any{"x": map[string]any{"shape": req["x"].Shape(), "data": req["x"].Data()}},
	})
	body := postJSON(t, ts.URL+"/v1/models/micro-mlp:predict", string(data), http.StatusOK)
	if body["model"] != "micro-mlp" {
		t.Fatalf("predict response = %v", body)
	}
	out := body["outputs"].(map[string]any)["y"].(map[string]any)
	got := out["data"].([]any)
	want, err := m.NewRunner().Run(t.Context(), req)
	if err != nil {
		t.Fatal(err)
	}
	wd := want["y"].Data()
	if len(got) != len(wd) {
		t.Fatalf("predict returned %d elements, want %d", len(got), len(wd))
	}
	for k := range wd {
		if diff := float64(wd[k]) - got[k].(float64); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("element %d: served %v, direct %v", k, got[k], wd[k])
		}
	}
}

func TestServerPredictDefaults(t *testing.T) {
	ts, _ := newTestServer(t)
	// Omitted shape and data: declared shape, zero data — the minimal
	// smoke request CI uses.
	body := postJSON(t, ts.URL+"/v1/models/micro-mlp:predict", `{"inputs":{"x":{}}}`, http.StatusOK)
	out := body["outputs"].(map[string]any)["y"].(map[string]any)
	if shape := out["shape"].([]any); len(shape) != 2 {
		t.Fatalf("output shape = %v", shape)
	}
}

func TestServerErrorTaxonomy(t *testing.T) {
	ts, reg := newTestServer(t)
	// Unknown model → 404 wrapping ErrUnknownModel semantics.
	body := postJSON(t, ts.URL+"/v1/models/nope:predict", `{"inputs":{}}`, http.StatusNotFound)
	if !strings.Contains(body["error"].(string), "unknown model") {
		t.Fatalf("404 body = %v", body)
	}
	getJSON(t, ts.URL+"/v1/models/nope", http.StatusNotFound)
	// Bad shape → 400 wrapping *ShapeError.
	body = postJSON(t, ts.URL+"/v1/models/micro-mlp:predict",
		`{"inputs":{"x":{"shape":[2,2],"data":[1,2,3,4]}}}`, http.StatusBadRequest)
	if !strings.Contains(body["error"].(string), "shape") {
		t.Fatalf("shape 400 body = %v", body)
	}
	// Data/shape element mismatch → 400.
	postJSON(t, ts.URL+"/v1/models/micro-mlp:predict",
		`{"inputs":{"x":{"data":[1,2,3]}}}`, http.StatusBadRequest)
	// Missing input → 400.
	body = postJSON(t, ts.URL+"/v1/models/micro-mlp:predict", `{"inputs":{}}`, http.StatusBadRequest)
	if !strings.Contains(body["error"].(string), "missing input") {
		t.Fatalf("missing-input 400 body = %v", body)
	}
	// Unknown input name → 400.
	postJSON(t, ts.URL+"/v1/models/micro-mlp:predict", `{"inputs":{"zz":{}}}`, http.StatusBadRequest)
	// Undecodable JSON → 400.
	postJSON(t, ts.URL+"/v1/models/micro-mlp:predict", `{not json`, http.StatusBadRequest)
	// Wrong methods → 405.
	resp, err := http.Get(ts.URL + "/v1/models/micro-mlp:predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET predict = %d, want 405", resp.StatusCode)
	}
	// Unknown endpoint → 404.
	resp, err = http.Get(ts.URL + "/v2/frobnicate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown endpoint = %d, want 404", resp.StatusCode)
	}
	// Evicted model → 404 afterwards.
	reg.Evict("micro-mlp")
	postJSON(t, ts.URL+"/v1/models/micro-mlp:predict", `{"inputs":{"x":{}}}`, http.StatusNotFound)
}

// postRaw posts and returns the raw response (status/header checks); the
// body is fully read and closed, its JSON (if any) decoded into out.
func postRaw(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func TestServerBodyLimit413(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register("micro-mlp", compileMicro(t, models.MicroMLP), Config{MaxBatch: 1}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(r)
	srv.MaxBodyBytes = 256
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); r.Close() })

	// A minimal request under the cap still serves.
	postJSON(t, ts.URL+"/v1/models/micro-mlp:predict", `{"inputs":{"x":{}}}`, http.StatusOK)

	big := `{"inputs":{"x":{"data":[` + strings.Repeat("0,", 400) + `0]}}}`
	resp, body := postRaw(t, ts.URL+"/v1/models/micro-mlp:predict", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d (%v), want 413", resp.StatusCode, body)
	}
	if !strings.Contains(body["error"].(string), "256") {
		t.Fatalf("413 body does not name the limit: %v", body)
	}
}

// TestServerOverload429RetryAfter drives the HTTP shed path: dispatcher
// pinned, queue full, next :predict answers 429 with a Retry-After hint.
func TestServerOverload429RetryAfter(t *testing.T) {
	r := NewRegistry()
	h, err := r.Register("micro-mlp", compileMicro(t, models.MicroMLP), Config{MaxBatch: 1, Queue: 1, MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(r))
	t.Cleanup(func() { ts.Close(); r.Close() })
	url := ts.URL + "/v1/models/micro-mlp:predict"
	postJSON(t, url, `{"inputs":{"x":{}}}`, http.StatusOK) // warm before arming

	entered, release := blockExecute(t)
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // one executing, one queued
		wg.Add(1)
		go func() {
			defer wg.Done()
			postJSON(t, url, `{"inputs":{"x":{}}}`, http.StatusOK)
		}()
		if i == 0 {
			<-entered
		} else {
			waitQueueDepth(t, h, 1)
		}
	}
	resp, body := postRaw(t, url, `{"inputs":{"x":{}}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("flooded predict = %d (%v), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("429 without Retry-After hint: %v", resp.Header)
	}
	if !strings.Contains(body["error"].(string), "queue full") {
		t.Fatalf("429 body = %v", body)
	}
	close(release)
	wg.Wait()

	// The shed shows up on /healthz, per host and in the aggregate.
	health := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if health["shed"].(float64) != 1 {
		t.Fatalf("healthz shed = %v", health["shed"])
	}
	hh := health["hosts"].(map[string]any)["micro-mlp"].(map[string]any)
	if hh["shed"].(float64) != 1 || hh["queue_capacity"].(float64) != 1 {
		t.Fatalf("healthz host state = %v", hh)
	}
}

// TestServerSaturated503 drives the registry-wide ceiling over HTTP: one
// request in flight at max-inflight 1 turns the next into a 503.
func TestServerSaturated503(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register("micro-mlp", compileMicro(t, models.MicroMLP), Config{MaxBatch: 1, Queue: 4, MaxDelay: -1}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(r))
	t.Cleanup(func() { ts.Close(); r.Close() })
	url := ts.URL + "/v1/models/micro-mlp:predict"
	postJSON(t, url, `{"inputs":{"x":{}}}`, http.StatusOK)

	r.SetMaxInFlight(1)
	entered, release := blockExecute(t)
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJSON(t, url, `{"inputs":{"x":{}}}`, http.StatusOK)
	}()
	<-entered
	resp, body := postRaw(t, url, `{"inputs":{"x":{}}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated predict = %d (%v), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("503 without Retry-After hint: %v", resp.Header)
	}
	close(release)
	wg.Wait()
	health := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if health["saturated"].(float64) != 1 || health["max_in_flight"].(float64) != 1 {
		t.Fatalf("healthz saturation state = %v", health)
	}
}

// TestServerDrain: after Drain, :predict refuses with 503 while /healthz
// keeps answering and reports "draining".
func TestServerDrain(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register("micro-mlp", compileMicro(t, models.MicroMLP), Config{MaxBatch: 1}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(r)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); r.Close() })
	url := ts.URL + "/v1/models/micro-mlp:predict"
	postJSON(t, url, `{"inputs":{"x":{}}}`, http.StatusOK)

	srv.Drain()
	if !srv.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	resp, body := postRaw(t, url, `{"inputs":{"x":{}}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining predict = %d (%v), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("drain 503 without Retry-After: %v", resp.Header)
	}
	health := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if health["status"] != "draining" {
		t.Fatalf("healthz during drain = %v", health["status"])
	}
	// Listing and metadata stay up for operators during the drain.
	getJSON(t, ts.URL+"/v1/models", http.StatusOK)
	getJSON(t, ts.URL+"/v1/models/micro-mlp", http.StatusOK)
}

// TestServerHealthzControlState: the overload-control fields are present
// and sane on a healthy, idle server.
func TestServerHealthzControlState(t *testing.T) {
	ts, _ := newTestServer(t)
	postJSON(t, ts.URL+"/v1/models/micro-mlp:predict", `{"inputs":{"x":{}}}`, http.StatusOK)
	health := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	for _, key := range []string{"in_flight", "max_in_flight", "saturated", "shed", "expired", "hosts"} {
		if _, ok := health[key]; !ok {
			t.Fatalf("healthz missing %q: %v", key, health)
		}
	}
	hh := health["hosts"].(map[string]any)["micro-mlp"].(map[string]any)
	if hh["queue_capacity"].(float64) <= 0 {
		t.Fatalf("loaded host reports no queue capacity: %v", hh)
	}
	if hh["queue_depth"].(float64) != 0 || hh["shed"].(float64) != 0 {
		t.Fatalf("idle host control state = %v", hh)
	}
	// current_max_delay_us reflects the configured fixed MaxDelay (100us).
	if hh["current_max_delay_us"].(float64) != 100 {
		t.Fatalf("current_max_delay_us = %v, want 100", hh["current_max_delay_us"])
	}
	// The never-loaded lazy model is absent: health must not force builds.
	if _, ok := health["hosts"].(map[string]any)["micro-attention"]; ok {
		t.Fatal("healthz forced the lazy model's state")
	}
}

// TestServerParallelPredictRace hammers the HTTP surface from concurrent
// clients (run under -race in CI's GOMAXPROCS=4 step).
func TestServerParallelPredictRace(t *testing.T) {
	ts, _ := newTestServer(t)
	const clients, rounds = 6, 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			model := "micro-mlp"
			if c%3 == 2 {
				model = "micro-attention"
			}
			url := fmt.Sprintf("%s/v1/models/%s:predict", ts.URL, model)
			input := map[string]string{"micro-mlp": "x", "micro-attention": "tokens"}[model]
			body := fmt.Sprintf(`{"inputs":{%q:{}}}`, input)
			for i := 0; i < rounds; i++ {
				resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d", c, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
}
