package serve

import (
	"io"

	"dnnfusion"

	"dnnfusion/internal/obs"
)

// Metric wiring: every serving counter lives on the repository's
// obs.Registry — /healthz, /v1/models, and /metrics all read the same
// instruments, so the ad-hoc and Prometheus views cannot drift. Per-model
// series carry a {model} label; the engine's per-kernel histograms are
// attached (not copied) under {model, kernel, variant}, so the executor's
// own accounting and the scrape surface share one instrument.

// Help strings double as the metric documentation table in the README.
const (
	helpRequests      = "Completed Host.Run calls per model, including failed ones."
	helpErrors        = "Failed Host.Run calls per model (shed, expired, and execution errors)."
	helpShed          = "Requests rejected by a full per-model queue (the 429 path)."
	helpExpired       = "Requests whose context was done before execution (dead on arrival or dropped from the queue)."
	helpBatches       = "Executed batches per model."
	helpBatched       = "Requests coalesced into executed batches per model."
	helpRequestSecs   = "Request latency from admission to result, per model."
	helpQueueWaitSecs = "Time a request waited in the host queue before the dispatcher pulled it, per model."
	helpExecuteSecs   = "Batch execution latency (the inference itself), per model."
	helpBatchSize     = "Coalesced batch sizes, per model."
	helpBuildFails    = "Model builders that failed (import or compile errors); sticky, one per failed host."
	helpSaturated     = "Requests rejected by the registry-wide in-flight ceiling (the 503 path)."
	helpInFlight      = "Requests currently between admission and response, across all hosts."
	helpMaxInFlight   = "Registry-wide concurrent-request ceiling (0 = unlimited)."
	helpQueueDepth    = "Pending requests in the host queue, per model."
	helpQueueCap      = "Host queue capacity (admission sheds beyond it), per model."
	helpCurDelay      = "Coalescing wait currently in force (adaptive batching output), per model."
	helpDepthEwma     = "Queue-depth EWMA driving the adaptive coalescing wait, per model."
	helpCompileStage  = "Compile-pipeline stage wall time per model (stage: rewrite|fusion|codegen|tune|plan)."
	helpKernelSecs    = "Per-kernel execution latency (variant: base|batch); advances on profiled runs."
	helpHTTPRequests  = "HTTP responses by route and status code."
)

// init wires the host's counters and histograms onto the repository
// registry. It runs at registration (Registry.add), before any Run can
// observe the host, so the handles are never nil on the hot path.
func (s *stats) init(o *obs.Registry, model string) {
	s.requests = o.Counter("dnnf_serve_requests_total", helpRequests, "model", model)
	s.errors = o.Counter("dnnf_serve_errors_total", helpErrors, "model", model)
	s.shed = o.Counter("dnnf_serve_shed_total", helpShed, "model", model)
	s.expired = o.Counter("dnnf_serve_expired_total", helpExpired, "model", model)
	s.batches = o.Counter("dnnf_serve_batches_total", helpBatches, "model", model)
	s.batched = o.Counter("dnnf_serve_batched_requests_total", helpBatched, "model", model)
	s.latency = o.Histogram("dnnf_serve_request_seconds", helpRequestSecs, obs.LatencyBuckets, "model", model)
	s.queueWait = o.Histogram("dnnf_serve_queue_wait_seconds", helpQueueWaitSecs, obs.LatencyBuckets, "model", model)
	s.execute = o.Histogram("dnnf_serve_execute_seconds", helpExecuteSecs, obs.LatencyBuckets, "model", model)
	s.batchSize = o.Histogram("dnnf_serve_batch_size", helpBatchSize, obs.BatchBuckets, "model", model)
}

// registerModelMetrics publishes the built model's observability surface:
// live control-state gauges, compile-stage timings, and the executor-owned
// per-kernel latency histograms. Called at the end of Host.init, once the
// model, batch variant, and queue exist; callback gauges register last so
// a scrape can never observe a half-initialized host (the registry lock
// orders registration before any read).
func (h *Host) registerModelMetrics() {
	if h.obs == nil {
		return
	}
	st := h.model.Stats
	for _, stage := range []struct {
		name string
		ms   float64
	}{
		{"rewrite", st.RewriteMs},
		{"fusion", st.FusionMs},
		{"codegen", st.CodegenMs},
		{"tune", st.TuneMs},
		{"plan", st.PlanMs},
	} {
		h.obs.Gauge("dnnf_compile_stage_seconds", helpCompileStage,
			"model", h.name, "stage", stage.name).Set(stage.ms / 1000)
	}
	attachKernelHists(h.obs, h.name, "base", h.model)
	if h.batch != nil {
		attachKernelHists(h.obs, h.name, "batch", h.batch.Model())
	}
	h.obs.GaugeFunc("dnnf_serve_queue_depth", helpQueueDepth,
		func() float64 { return float64(len(h.calls)) }, "model", h.name)
	h.obs.GaugeFunc("dnnf_serve_queue_capacity", helpQueueCap,
		func() float64 { return float64(h.cfg.Queue) }, "model", h.name)
	h.obs.GaugeFunc("dnnf_serve_current_max_delay_seconds", helpCurDelay,
		func() float64 { return h.curDelay().Seconds() }, "model", h.name)
	h.obs.GaugeFunc("dnnf_serve_queue_depth_ewma", helpDepthEwma,
		func() float64 { return float64(h.st.depthEwmaMilli.Load()) / 1000 }, "model", h.name)
}

// attachKernelHists attaches the model executor's per-kernel histograms to
// the registry under per-model labels. Re-registering a model (evict +
// register) replaces the series with the new executor's instruments.
func attachKernelHists(o *obs.Registry, model, variant string, m *dnnfusion.Model) {
	kernels := m.ScheduledKernels()
	for i, ks := range m.KernelStats() {
		o.Attach("dnnf_kernel_execute_seconds", helpKernelSecs, ks.Hist,
			"model", model, "kernel", kernels[i].Name, "variant", variant)
	}
}

// WritePrometheus writes every metric the repository has registered in
// Prometheus text exposition format (0.0.4) — the body of the Server's
// /metrics endpoint.
func (r *Registry) WritePrometheus(w io.Writer) error { return r.obs.WritePrometheus(w) }
