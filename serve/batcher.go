package serve

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"time"

	"dnnfusion"
)

// The dynamic batcher: one dispatcher goroutine per host pulls queued
// calls, forms a batch — up to MaxBatch requests, the first waiting at most
// MaxDelay for peers — and executes it as a single coalesced inference on
// the batch-compiled model variant, scattering each request's output
// segment into its own pooled Result. Models without a batch variant (or
// batches of one) execute per-request on the base Runner. One dispatcher
// owns both runners, so a host pins at most two serving arenas regardless
// of client concurrency; request-level parallelism comes from coalescing,
// and intra-kernel parallelism from the worker pool both models share.

// dispatch is the host's dispatcher loop. It owns the only Runner and
// BatchRunner of the host and exits when the host closes.
func (h *Host) dispatch() {
	runner := h.model.NewRunner()
	var br *dnnfusion.BatchRunner
	if h.batch != nil {
		br = h.batch.NewRunner()
	}
	if h.cfg.Prewarm {
		runner.Warm()
		if br != nil {
			br.Warm()
		}
	}
	defer func() {
		runner.Release()
		if br != nil {
			br.Release()
		}
	}()
	batch := make([]*call, 0, h.cfg.MaxBatch)
	reqs := make([]map[string]*dnnfusion.Tensor, h.cfg.MaxBatch)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case c := <-h.calls:
			batch = h.fill(append(batch[:0], c), timer)
			h.execute(runner, br, batch, reqs)
			for i := range batch {
				batch[i] = nil
			}
		case <-h.closed:
			h.drainClosed()
			return
		}
	}
}

// fill grows a just-started batch: it drains whatever is already queued
// and, when capacity and configuration allow, waits up to MaxDelay for
// more. Closing the host cuts the wait short (the collected batch still
// executes; drainClosed handles the rest).
func (h *Host) fill(batch []*call, timer *time.Timer) []*call {
	max := h.cfg.MaxBatch
	if h.batch == nil {
		// Per-request execution gains nothing from waiting, but draining
		// the queue lets one wake of this goroutine serve many requests.
		max = cap(batch)
	}
	for len(batch) < max {
		select {
		case c := <-h.calls:
			batch = append(batch, c)
			continue
		default:
		}
		break
	}
	if h.batch == nil || len(batch) >= max || h.cfg.MaxDelay <= 0 {
		return batch
	}
	timer.Reset(h.cfg.MaxDelay)
collect:
	for len(batch) < max {
		select {
		case c := <-h.calls:
			batch = append(batch, c)
		case <-timer.C:
			return batch
		case <-h.closed:
			break collect
		}
	}
	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	return batch
}

// execute runs one formed batch and delivers per-call results. Requests
// were validated before enqueueing, so shape-level errors cannot occur
// here; an execution error fails every call in the batch. Execution runs
// under the host's shutdown context, so closing the host interrupts an
// in-flight batch between kernels; calls failed that way report ErrClosed,
// the same error queued-but-unexecuted calls get from the drain.
func (h *Host) execute(runner *dnnfusion.Runner, br *dnnfusion.BatchRunner, batch []*call, reqs []map[string]*dnnfusion.Tensor) {
	ctx := h.ctx
	n := len(batch)
	h.st.batches.Add(1)
	h.st.batched.Add(uint64(n))
	h.st.observeBatch(n)
	if br != nil && n > 1 {
		for i, c := range batch {
			reqs[i] = c.inputs
		}
		results, err := br.RunBatch(ctx, reqs[:n])
		for i := range reqs[:n] {
			reqs[i] = nil
		}
		if err == nil {
			for i, c := range batch {
				c.res = h.deliver(results[i])
			}
		} else {
			err = h.closeErr(err)
			for _, c := range batch {
				c.err = err
			}
		}
	} else {
		for _, c := range batch {
			out, err := runner.Run(ctx, c.inputs)
			if err != nil {
				c.err = h.closeErr(err)
				continue
			}
			c.res = h.deliver(out)
		}
	}
	for _, c := range batch {
		c.done <- struct{}{}
	}
}

// closeErr maps execution errors caused by the shutdown-context cancel to
// ErrClosed — a call interrupted mid-batch by eviction should see the same
// error as one failed by the drain, not a bare context.Canceled.
func (h *Host) closeErr(err error) error {
	if h.closing.Load() && errors.Is(err, context.Canceled) {
		return ErrClosed
	}
	return err
}

// deliver copies one request's output set into a pooled Result, detaching
// it from the runner's double buffer so the next batch cannot overwrite a
// result a client is still reading.
func (h *Host) deliver(outs map[string]*dnnfusion.Tensor) *Result {
	res := h.resPool.Get().(*Result)
	res.h = h
	for name, src := range outs {
		copy(res.outs[name].Data(), src.Data())
	}
	return res
}

// drainClosed fails queued calls with ErrClosed after close. It returns
// only when no Run call is still pending, so a request that won the
// enqueue race against eviction is still answered instead of stranding in
// a queue nothing reads.
func (h *Host) drainClosed() {
	for {
		select {
		case c := <-h.calls:
			c.err = ErrClosed
			c.done <- struct{}{}
		default:
			if h.pending.Load() == 0 {
				return
			}
			runtime.Gosched() // a Run is between its closing-check and enqueue
		}
	}
}

// stats are the host's serving counters, updated atomically on the request
// and dispatch paths.
type stats struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	batches  atomic.Uint64
	batched  atomic.Uint64
	maxBatch atomic.Uint64

	latencyNs atomic.Int64
	latencyN  atomic.Uint64
}

func (s *stats) observeBatch(n int) {
	for {
		cur := s.maxBatch.Load()
		if uint64(n) <= cur || s.maxBatch.CompareAndSwap(cur, uint64(n)) {
			return
		}
	}
}

// Stats is a point-in-time snapshot of a host's serving counters.
type Stats struct {
	// Requests counts completed Run calls (including failed ones);
	// Errors the failed subset.
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	// Batches counts executed batches; MeanBatch is the mean number of
	// requests coalesced per batch and MaxBatch the largest batch
	// observed.
	Batches   uint64  `json:"batches"`
	MeanBatch float64 `json:"mean_batch"`
	MaxBatch  int     `json:"max_batch"`
	// MeanLatencyUs is the mean request latency (enqueue to result) in
	// microseconds, over successfully executed requests.
	MeanLatencyUs float64 `json:"mean_latency_us"`
}

func (s *stats) snapshot() Stats {
	out := Stats{
		Requests: s.requests.Load(),
		Errors:   s.errors.Load(),
		Batches:  s.batches.Load(),
		MaxBatch: int(s.maxBatch.Load()),
	}
	if out.Batches > 0 {
		out.MeanBatch = float64(s.batched.Load()) / float64(out.Batches)
	}
	if n := s.latencyN.Load(); n > 0 {
		out.MeanLatencyUs = float64(s.latencyNs.Load()) / float64(n) / 1e3
	}
	return out
}

// TensorSpec describes one named model input or output.
type TensorSpec struct {
	Name  string `json:"name"`
	Shape []int  `json:"shape"`
}

// Info is a host's serving metadata: the model's I/O specs, memory plan,
// batching posture, and counters.
type Info struct {
	Name    string       `json:"name"`
	Inputs  []TensorSpec `json:"inputs"`
	Outputs []TensorSpec `json:"outputs"`
	// PlannedPeakBytes is the base model's per-session activation arena;
	// BatchPlannedPeakBytes the batch-capacity variant's (0 when batching
	// is off).
	PlannedPeakBytes      int64 `json:"planned_peak_bytes"`
	BatchPlannedPeakBytes int64 `json:"batch_planned_peak_bytes,omitempty"`
	// MaxBatch is the effective coalescing capacity (1 when batching is
	// off); BatchDisabledReason says why when it is off.
	MaxBatch            int    `json:"max_batch"`
	MaxDelayUs          int64  `json:"max_delay_us"`
	Batchable           bool   `json:"batchable"`
	BatchDisabledReason string `json:"batch_disabled_reason,omitempty"`
	Stats               Stats  `json:"stats"`
}

// Info returns the host's serving metadata, building the model first if it
// is lazy.
func (h *Host) Info() (Info, error) {
	if err := h.init(); err != nil {
		return Info{}, err
	}
	info := Info{
		Name:             h.name,
		Inputs:           h.inSpecs,
		Outputs:          h.outSpecs,
		PlannedPeakBytes: h.model.PlannedPeakBytes(),
		MaxBatch:         1,
		MaxDelayUs:       h.cfg.MaxDelay.Microseconds(),
		Batchable:        h.batch != nil,
		Stats:            h.st.snapshot(),
	}
	if h.batch != nil {
		info.MaxBatch = h.cfg.MaxBatch
		info.BatchPlannedPeakBytes = h.batch.PlannedPeakBytes()
	} else {
		info.BatchDisabledReason = h.batchOff
	}
	return info, nil
}

// Loaded reports whether the host's model has been built (lazy builders
// run on first use), without forcing the build.
func (h *Host) Loaded() bool {
	return h.started.Load()
}
