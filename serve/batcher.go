package serve

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"time"

	"dnnfusion"

	"dnnfusion/internal/faultinject"
	"dnnfusion/internal/obs"
)

// The dynamic batcher: one dispatcher goroutine per host pulls queued
// calls, forms a batch — up to MaxBatch requests, the first waiting at most
// MaxDelay for peers — and executes it as a single coalesced inference on
// the batch-compiled model variant, scattering each request's output
// segment into its own pooled Result. Models without a batch variant (or
// batches of one) execute per-request on the base Runner. One dispatcher
// owns both runners, so a host pins at most two serving arenas regardless
// of client concurrency; request-level parallelism comes from coalescing,
// and intra-kernel parallelism from the worker pool both models share.

// dispatch is the host's dispatcher loop. It owns the only Runner and
// BatchRunner of the host and exits when the host closes.
func (h *Host) dispatch() {
	runner := h.model.NewRunner()
	var br *dnnfusion.BatchRunner
	if h.batch != nil {
		br = h.batch.NewRunner()
	}
	if h.cfg.Prewarm {
		runner.Warm()
		if br != nil {
			br.Warm()
		}
	}
	defer func() {
		runner.Release()
		if br != nil {
			br.Release()
		}
	}()
	batch := make([]*call, 0, h.cfg.MaxBatch)
	reqs := make([]map[string]*dnnfusion.Tensor, h.cfg.MaxBatch)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case c := <-h.calls:
			c.deq = time.Now()
			batch = h.fill(append(batch[:0], c), timer)
			// The queue depth left over after forming this batch is the
			// overload signal the adaptive delay controller feeds on.
			h.adapt(len(h.calls))
			if live := h.dropExpired(batch); len(live) > 0 {
				h.execute(runner, br, live, reqs)
			}
			for i := range batch {
				batch[i] = nil
			}
		case <-h.closed:
			h.drainClosed()
			return
		}
	}
}

// dropExpired fails calls whose context is already done before any kernel
// runs for them: the client has given up (deadline passed or canceled), so
// executing them would burn capacity live traffic needs. This is the
// deadline-propagation guarantee — an expired call never reaches execute —
// and the expired counter is its observable. Returns the live calls,
// compacted in place.
func (h *Host) dropExpired(batch []*call) []*call {
	live := batch[:0]
	for _, c := range batch {
		err := c.ctx.Err()
		if err == nil {
			live = append(live, c)
			continue
		}
		h.st.expired.Inc()
		c.err = err
		c.done <- struct{}{}
	}
	return live
}

// adapt is the adaptive batch-sizing controller (enabled by a positive
// MaxDelayCeiling). It maintains an EWMA of the queue depth observed at
// each batch formation and publishes a coalescing delay proportional to
// how full a batch's worth of queue is: a persistently deep queue drives
// the wait toward the ceiling (amortize dispatch over bigger batches), an
// idle one decays it toward zero (don't tax p50 waiting for peers that
// aren't coming). Runs only on the dispatcher goroutine; readers (fill,
// Info, /healthz) see the atomically published state.
func (h *Host) adapt(depth int) {
	ceiling := h.cfg.MaxDelayCeiling
	if ceiling <= 0 {
		return
	}
	const alpha = 0.25 // EWMA smoothing: ~8 dispatches to forget a regime
	ewma := float64(h.st.depthEwmaMilli.Load()) / 1000
	ewma += alpha * (float64(depth) - ewma)
	h.st.depthEwmaMilli.Store(int64(ewma * 1000))
	frac := ewma / float64(h.cfg.MaxBatch)
	if frac > 1 {
		frac = 1
	}
	delay := time.Duration(frac * float64(ceiling))
	if delay < time.Microsecond {
		delay = 0 // fully idle: stop waiting entirely
	}
	h.st.curDelayNs.Store(int64(delay))
}

// curDelay is the coalescing wait currently in force: the configured
// MaxDelay when adaptation is off, the controller's output when on.
func (h *Host) curDelay() time.Duration {
	return time.Duration(h.st.curDelayNs.Load())
}

// fill grows a just-started batch: it drains whatever is already queued
// and, when capacity and configuration allow, waits up to MaxDelay for
// more. Closing the host cuts the wait short (the collected batch still
// executes; drainClosed handles the rest).
func (h *Host) fill(batch []*call, timer *time.Timer) []*call {
	max := h.cfg.MaxBatch
	if h.batch == nil {
		// Per-request execution gains nothing from waiting, but draining
		// the queue lets one wake of this goroutine serve many requests.
		max = cap(batch)
	}
	for len(batch) < max {
		select {
		case c := <-h.calls:
			c.deq = time.Now()
			batch = append(batch, c)
			continue
		default:
		}
		break
	}
	delay := h.curDelay()
	if h.batch == nil || len(batch) >= max || delay <= 0 {
		return batch
	}
	timer.Reset(delay)
collect:
	for len(batch) < max {
		select {
		case c := <-h.calls:
			c.deq = time.Now()
			batch = append(batch, c)
		case <-timer.C:
			return batch
		case <-h.closed:
			break collect
		}
	}
	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	return batch
}

// execute runs one formed batch and delivers per-call results. Requests
// were validated before enqueueing, so shape-level errors cannot occur
// here; an execution error fails every call in the batch. Execution runs
// under the host's shutdown context bounded by the earliest live request
// deadline in the batch — closing the host interrupts an in-flight batch
// between kernels (those calls report ErrClosed, like drained ones), and a
// batch that outlives its tightest deadline stops instead of finishing
// work that client will never read.
func (h *Host) execute(runner *dnnfusion.Runner, br *dnnfusion.BatchRunner, batch []*call, reqs []map[string]*dnnfusion.Tensor) {
	ctx := h.ctx
	if dl, ok := earliestDeadline(batch); ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(h.ctx, dl)
		defer cancel()
	}
	n := len(batch)
	h.st.batches.Inc()
	h.st.batched.Add(uint64(n))
	h.st.observeBatch(n)
	h.st.batchSize.Observe(float64(n))
	for _, c := range batch {
		c.batchSize = n
	}
	if faultinject.Active() {
		// Fault-injection point: force slow or failing executions, or hold
		// the batch in flight against ctx. The batch slice rides along for
		// in-package tests that account per-call executions.
		if err := faultinject.Inject(ctx, faultinject.ServeExecute, h.name, n, batch); err != nil {
			for _, c := range batch {
				c.err = h.callErr(c, err)
			}
			deliverDone(batch)
			return
		}
	}
	if br != nil && n > 1 {
		for i, c := range batch {
			reqs[i] = c.inputs
		}
		execStart := time.Now()
		results, err := br.RunBatch(ctx, reqs[:n])
		execNs := time.Since(execStart).Nanoseconds()
		h.st.execute.Observe(float64(execNs) / 1e9)
		for i := range reqs[:n] {
			reqs[i] = nil
		}
		if err == nil {
			for i, c := range batch {
				c.execStart, c.execNs = execStart, execNs
				c.res = h.deliver(results[i])
			}
		} else {
			for _, c := range batch {
				c.err = h.callErr(c, err)
			}
		}
	} else {
		for _, c := range batch {
			execStart := time.Now()
			out, err := runner.Run(ctx, c.inputs)
			if err != nil {
				c.err = h.callErr(c, err)
				continue
			}
			c.execStart, c.execNs = execStart, time.Since(execStart).Nanoseconds()
			h.st.execute.Observe(float64(c.execNs) / 1e9)
			c.res = h.deliver(out)
		}
	}
	deliverDone(batch)
}

func deliverDone(batch []*call) {
	for _, c := range batch {
		c.done <- struct{}{}
	}
}

// earliestDeadline finds the soonest deadline among a batch's calls (they
// are all live — dropExpired ran first). ok is false when no call carries
// a deadline, so deadline-free traffic pays no context allocation.
func earliestDeadline(batch []*call) (dl time.Time, ok bool) {
	for _, c := range batch {
		if d, has := c.ctx.Deadline(); has && (!ok || d.Before(dl)) {
			dl, ok = d, true
		}
	}
	return dl, ok
}

// callErr maps a batch-level execution error onto one call. A call whose
// own context is done reports its own ctx.Err() (its deadline or cancel is
// the real cause, even if the batch error spells it differently); the rest
// see the batch error, with shutdown-cancel spelled as ErrClosed.
func (h *Host) callErr(c *call, err error) error {
	if cerr := c.ctx.Err(); cerr != nil {
		return cerr
	}
	return h.closeErr(err)
}

// closeErr maps execution errors caused by the shutdown-context cancel to
// ErrClosed — a call interrupted mid-batch by eviction should see the same
// error as one failed by the drain, not a bare context.Canceled.
func (h *Host) closeErr(err error) error {
	if h.closing.Load() && errors.Is(err, context.Canceled) {
		return ErrClosed
	}
	return err
}

// deliver copies one request's output set into a pooled Result, detaching
// it from the runner's double buffer so the next batch cannot overwrite a
// result a client is still reading.
func (h *Host) deliver(outs map[string]*dnnfusion.Tensor) *Result {
	res := h.resPool.Get().(*Result)
	res.h = h
	for name, src := range outs {
		copy(res.outs[name].Data(), src.Data())
	}
	return res
}

// drainClosed fails queued calls with ErrClosed after close. It returns
// only when no Run call is still pending, so a request that won the
// enqueue race against eviction is still answered instead of stranding in
// a queue nothing reads.
func (h *Host) drainClosed() {
	for {
		select {
		case c := <-h.calls:
			c.err = ErrClosed
			c.done <- struct{}{}
		default:
			if h.pending.Load() == 0 {
				return
			}
			runtime.Gosched() // a Run is between its closing-check and enqueue
		}
	}
}

// stats are the host's serving counters. The counting instruments live on
// the repository's obs.Registry (wired by stats.init at registration) so
// /healthz, /v1/models, and /metrics read one source of truth; only the
// control-loop state and the max-batch high-water mark stay as plain
// atomics — they are not Prometheus-shaped.
type stats struct {
	requests *obs.Counter
	errors   *obs.Counter
	// shed counts requests rejected by this host's admission control (a
	// full queue); expired counts requests whose context was done before
	// execution (dead on arrival, or dropped from the queue by the
	// dispatcher). Both are subsets of errors.
	shed    *obs.Counter
	expired *obs.Counter

	batches  *obs.Counter
	batched  *obs.Counter
	maxBatch atomic.Uint64

	// latency is the admission-to-result request histogram (in seconds);
	// queueWait and execute split it into the queue and inference stages,
	// and batchSize records coalesced batch sizes.
	latency   *obs.Histogram
	queueWait *obs.Histogram
	execute   *obs.Histogram
	batchSize *obs.Histogram

	// Adaptive-batching control state, written by the dispatcher (adapt),
	// read lock-free by fill and the observability surfaces: the
	// coalescing delay currently in force and the queue-depth EWMA (fixed
	// point, thousandths) driving it.
	curDelayNs     atomic.Int64
	depthEwmaMilli atomic.Int64
}

func (s *stats) observeBatch(n int) {
	for {
		cur := s.maxBatch.Load()
		if uint64(n) <= cur || s.maxBatch.CompareAndSwap(cur, uint64(n)) {
			return
		}
	}
}

// Stats is a point-in-time snapshot of a host's serving counters.
type Stats struct {
	// Requests counts completed Run calls (including failed ones);
	// Errors the failed subset. Shed counts requests rejected by a full
	// queue (the 429 path); Expired counts requests whose deadline passed
	// or context was canceled before any execution happened (dead on
	// arrival or dropped from the queue — provably never executed).
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	Shed     uint64 `json:"shed"`
	Expired  uint64 `json:"expired"`
	// Batches counts executed batches; MeanBatch is the mean number of
	// requests coalesced per batch and MaxBatch the largest batch
	// observed.
	Batches   uint64  `json:"batches"`
	MeanBatch float64 `json:"mean_batch"`
	MaxBatch  int     `json:"max_batch"`
	// MeanLatencyUs is the mean request latency (enqueue to result) in
	// microseconds, over successfully executed requests.
	MeanLatencyUs float64 `json:"mean_latency_us"`
}

func (s *stats) snapshot() Stats {
	out := Stats{
		Requests: s.requests.Value(),
		Errors:   s.errors.Value(),
		Shed:     s.shed.Value(),
		Expired:  s.expired.Value(),
		Batches:  s.batches.Value(),
		MaxBatch: int(s.maxBatch.Load()),
	}
	if out.Batches > 0 {
		out.MeanBatch = float64(s.batched.Value()) / float64(out.Batches)
	}
	if n := s.latency.Count(); n > 0 {
		out.MeanLatencyUs = s.latency.Sum() / float64(n) * 1e6
	}
	return out
}

// TensorSpec describes one named model input or output.
type TensorSpec struct {
	Name  string `json:"name"`
	Shape []int  `json:"shape"`
}

// Info is a host's serving metadata: the model's I/O specs, memory plan,
// batching posture, and counters.
type Info struct {
	Name    string       `json:"name"`
	Inputs  []TensorSpec `json:"inputs"`
	Outputs []TensorSpec `json:"outputs"`
	// PlannedPeakBytes is the base model's per-session activation arena;
	// BatchPlannedPeakBytes the batch-capacity variant's (0 when batching
	// is off).
	PlannedPeakBytes      int64 `json:"planned_peak_bytes"`
	BatchPlannedPeakBytes int64 `json:"batch_planned_peak_bytes,omitempty"`
	// MaxBatch is the effective coalescing capacity (1 when batching is
	// off); BatchDisabledReason says why when it is off.
	MaxBatch            int    `json:"max_batch"`
	MaxDelayUs          int64  `json:"max_delay_us"`
	Batchable           bool   `json:"batchable"`
	BatchDisabledReason string `json:"batch_disabled_reason,omitempty"`
	// Overload-control state: the live queue depth and its capacity
	// (admission sheds beyond it), the adaptive ceiling (0 = adaptation
	// off), the coalescing delay currently in force, and the queue-depth
	// EWMA driving it.
	QueueDepth        int     `json:"queue_depth"`
	QueueCapacity     int     `json:"queue_capacity"`
	MaxDelayCeilingUs int64   `json:"max_delay_ceiling_us,omitempty"`
	CurrentMaxDelayUs int64   `json:"current_max_delay_us"`
	QueueDepthEwma    float64 `json:"queue_depth_ewma"`
	// Measured tuning: Tuned reports the model compiled through the
	// measured-feedback autotuner (WithMeasuredTuning); TunedWarm that its
	// plan warm-started from the profile database with zero measurement,
	// and TunedBatchWarm the same for the batch-capacity variant (whose
	// plan is tuned per formed batch size).
	Tuned          bool  `json:"tuned,omitempty"`
	TunedWarm      bool  `json:"tuned_warm,omitempty"`
	TunedBatchWarm bool  `json:"tuned_batch_warm,omitempty"`
	Stats          Stats `json:"stats"`
}

// controlState is the point-in-time overload-control view of a loaded
// host, shared by Info and /healthz (which must not force lazy builds).
func (h *Host) controlState(info *Info) {
	if !h.started.Load() {
		return
	}
	info.QueueDepth = len(h.calls)
	info.QueueCapacity = h.cfg.Queue
	info.MaxDelayCeilingUs = h.cfg.MaxDelayCeiling.Microseconds()
	info.CurrentMaxDelayUs = h.curDelay().Microseconds()
	info.QueueDepthEwma = float64(h.st.depthEwmaMilli.Load()) / 1000
}

// Info returns the host's serving metadata, building the model first if it
// is lazy.
func (h *Host) Info() (Info, error) {
	if err := h.init(); err != nil {
		return Info{}, err
	}
	info := Info{
		Name:             h.name,
		Inputs:           h.inSpecs,
		Outputs:          h.outSpecs,
		PlannedPeakBytes: h.model.PlannedPeakBytes(),
		MaxBatch:         1,
		MaxDelayUs:       h.cfg.MaxDelay.Microseconds(),
		Batchable:        h.batch != nil,
		Stats:            h.st.snapshot(),
	}
	if h.batch != nil {
		info.MaxBatch = h.cfg.MaxBatch
		info.BatchPlannedPeakBytes = h.batch.PlannedPeakBytes()
	} else {
		info.BatchDisabledReason = h.batchOff
	}
	if c := h.model.Compiled; c.Opts.MeasureBudget > 0 {
		info.Tuned = true
		info.TunedWarm = c.Stats.TunedPlanHits > 0
		if h.batch != nil {
			info.TunedBatchWarm = h.batch.Model().Compiled.Stats.TunedPlanHits > 0
		}
	}
	h.controlState(&info)
	return info, nil
}

// Loaded reports whether the host's model has been built (lazy builders
// run on first use), without forcing the build.
func (h *Host) Loaded() bool {
	return h.started.Load()
}
