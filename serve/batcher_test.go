package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dnnfusion"

	"dnnfusion/internal/models"
)

// TestHostRunMatchesRunnerBitExact pins the serving-path contract: a
// request through the host (validation, queue, batcher, pooled result)
// returns exactly what a direct Runner.Run returns.
func TestHostRunMatchesRunnerBitExact(t *testing.T) {
	for _, spec := range []struct {
		name  string
		build func() *dnnfusion.Graph
	}{
		{"micro-mlp", models.MicroMLP},
		{"micro-cnn", models.MicroCNN},
		{"micro-attention", models.MicroAttention}, // per-request fallback path
	} {
		t.Run(spec.name, func(t *testing.T) {
			m := compileMicro(t, spec.build)
			r := NewRegistry()
			defer r.Close()
			h, err := r.Register(spec.name, m, Config{MaxBatch: 4, MaxDelay: 100 * time.Microsecond})
			if err != nil {
				t.Fatal(err)
			}
			runner := m.NewRunner()
			ctx := context.Background()
			for i := 0; i < 5; i++ {
				req := microRequest(t, m, uint64(10+i))
				res, err := h.Run(ctx, req)
				if err != nil {
					t.Fatalf("host run %d: %v", i, err)
				}
				want, err := runner.Run(ctx, req)
				if err != nil {
					t.Fatal(err)
				}
				for name, w := range want {
					g := res.Output(name)
					if g == nil {
						t.Fatalf("missing output %q", name)
					}
					for k, wv := range w.Data() {
						if g.Data()[k] != wv {
							t.Fatalf("output %q element %d: served %v != direct %v", name, k, g.Data()[k], wv)
						}
					}
				}
				res.Release()
			}
		})
	}
}

// TestHostCoalescesConcurrentRequests drives many concurrent clients into
// one host with a generous batching window and requires that actual
// coalescing happened (a batch of more than one request formed) while every
// client still got its own correct answer.
func TestHostCoalescesConcurrentRequests(t *testing.T) {
	m := compileMicro(t, models.MicroMLP)
	r := NewRegistry()
	defer r.Close()
	h, err := r.Register("mlp", m, Config{MaxBatch: 8, MaxDelay: 50 * time.Millisecond, Prewarm: true})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the host (builds model, starts dispatcher) before the burst.
	res, err := h.Run(context.Background(), microRequest(t, m, 999))
	if err != nil {
		t.Fatal(err)
	}
	res.Release()

	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req := microRequest(t, m, uint64(c))
			ref := m.NewRunner()
			want, err := ref.Run(context.Background(), req)
			if err != nil {
				errs[c] = err
				return
			}
			res, err := h.Run(context.Background(), req)
			if err != nil {
				errs[c] = err
				return
			}
			defer res.Release()
			for name, w := range want {
				for k, wv := range w.Data() {
					if res.Output(name).Data()[k] != wv {
						errs[c] = errors.New("coalesced result differs from direct run")
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	info, err := h.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.MaxBatch < 2 {
		t.Fatalf("no coalescing observed: max batch %d, mean %.2f over %d batches",
			info.Stats.MaxBatch, info.Stats.MeanBatch, info.Stats.Batches)
	}
	if info.Stats.Requests != clients+1 {
		t.Fatalf("stats counted %d requests, want %d", info.Stats.Requests, clients+1)
	}
}

// TestHostFallsBackForUnbatchableModel: micro-attention fails the
// structural batch check; the host must record why and serve per-request.
func TestHostFallsBackForUnbatchableModel(t *testing.T) {
	m := compileMicro(t, models.MicroAttention)
	r := NewRegistry()
	defer r.Close()
	h, err := r.Register("attn", m, Config{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	info, err := h.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Batchable {
		t.Fatal("micro-attention reported batchable")
	}
	if info.MaxBatch != 1 {
		t.Fatalf("effective MaxBatch %d, want 1", info.MaxBatch)
	}
	if !strings.Contains(info.BatchDisabledReason, "not batchable") {
		t.Fatalf("reason %q does not explain the structural rejection", info.BatchDisabledReason)
	}
	res, err := h.Run(context.Background(), microRequest(t, m, 3))
	if err != nil {
		t.Fatalf("fallback run: %v", err)
	}
	res.Release()
}

// TestHostParityCheckCatchesRowMixing registers a model that passes the
// structural batch check (softmax over axis 0 is shape-preserving) but
// mixes rows semantically. The registration-time parity check must catch
// it, disable batching, and keep serving correct per-request results.
func TestHostParityCheckCatchesRowMixing(t *testing.T) {
	g := dnnfusion.NewGraph("axis0")
	x := g.AddInput("x", dnnfusion.ShapeOf(4, 4))
	g.MarkOutputAs("y", g.Apply1(dnnfusion.Softmax(0), x))
	m, err := dnnfusion.Compile(g, dnnfusion.WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	defer r.Close()
	h, err := r.Register("axis0", m, Config{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	info, err := h.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Batchable {
		t.Fatal("row-mixing model reported batchable — the parity check missed it")
	}
	if !strings.Contains(info.BatchDisabledReason, "parity") {
		t.Fatalf("reason %q does not mention the parity check", info.BatchDisabledReason)
	}
	req := microRequest(t, m, 7)
	res, err := h.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	want, err := m.NewRunner().Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for k, wv := range want["y"].Data() {
		if res.Output("y").Data()[k] != wv {
			t.Fatalf("fallback output element %d differs", k)
		}
	}
}

func TestHostValidationErrors(t *testing.T) {
	m := compileMicro(t, models.MicroMLP)
	r := NewRegistry()
	defer r.Close()
	h, err := r.Register("mlp", m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := h.Run(ctx, map[string]*dnnfusion.Tensor{"bogus": dnnfusion.Rand(1)}); !errors.Is(err, dnnfusion.ErrUnknownInput) {
		t.Errorf("unknown input: %v", err)
	}
	if _, err := h.Run(ctx, map[string]*dnnfusion.Tensor{}); !errors.Is(err, dnnfusion.ErrMissingInput) {
		t.Errorf("missing input: %v", err)
	}
	var se *dnnfusion.ShapeError
	if _, err := h.Run(ctx, map[string]*dnnfusion.Tensor{"x": dnnfusion.Rand(2, 2)}); !errors.As(err, &se) {
		t.Errorf("bad shape: %v, want *ShapeError", err)
	}
	info, _ := h.Info()
	if info.Stats.Errors != 3 {
		t.Errorf("error counter %d, want 3", info.Stats.Errors)
	}
}

func TestHostRunHonorsContext(t *testing.T) {
	m := compileMicro(t, models.MicroMLP)
	r := NewRegistry()
	defer r.Close()
	h, err := r.Register("mlp", m, Config{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.Run(ctx, microRequest(t, m, 1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Run = %v, want context.Canceled", err)
	}
}

// TestHostCloseCancelsInFlightBatch pins the shutdown-context plumbing:
// eviction cancels the per-host context (so a batch in flight stops between
// kernels instead of running to completion against a dead host), and any
// request failed that way surfaces ErrClosed — never a bare
// context.Canceled, which would leak the mechanism to clients and differ
// from what drained-but-unexecuted requests see.
func TestHostCloseCancelsInFlightBatch(t *testing.T) {
	m := compileMicro(t, models.MicroMLP)
	r := NewRegistry()
	h, err := r.Register("mlp", m, Config{MaxBatch: 4, MaxDelay: 200 * time.Microsecond, Prewarm: true})
	if err != nil {
		t.Fatal(err)
	}
	// Warm: build the model and start the dispatcher before the flood.
	res, err := h.Run(context.Background(), microRequest(t, m, 1))
	if err != nil {
		t.Fatal(err)
	}
	res.Release()
	if h.ctx.Err() != nil {
		t.Fatalf("shutdown context done before close: %v", h.ctx.Err())
	}

	const clients, rounds = 8, 50
	var wg sync.WaitGroup
	errs := make([]error, clients)
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for i := 0; i < rounds; i++ {
				res, err := h.Run(context.Background(), microRequest(t, m, uint64(c*rounds+i)))
				if err != nil {
					errs[c] = err
					return
				}
				res.Release()
			}
		}(c)
	}
	close(start)
	// Evict while the flood is mid-flight: some requests complete, some are
	// interrupted by the context cancel, some drain unexecuted.
	if !r.Evict("mlp") {
		t.Fatal("evict reported model not registered")
	}
	wg.Wait()

	if !errors.Is(h.ctx.Err(), context.Canceled) {
		t.Fatalf("shutdown context after close: %v, want context.Canceled", h.ctx.Err())
	}
	for c, err := range errs {
		if err == nil {
			continue // finished all rounds before eviction landed
		}
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("client %d: error %v, want ErrClosed", c, err)
		}
	}
}

// TestServeParallelClientsRace floods one host from many goroutines with
// mixed batchable and fallback models; run under -race this pins the
// dispatcher's lane discipline end to end. (The name matches the CI race
// step's -run pattern.)
func TestServeParallelClientsRace(t *testing.T) {
	r := NewRegistry()
	defer r.Close()
	mlp := compileMicro(t, models.MicroMLP)
	attn := compileMicro(t, models.MicroAttention)
	hMLP, err := r.Register("mlp", mlp, Config{MaxBatch: 4, MaxDelay: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	hAttn, err := r.Register("attn", attn, Config{MaxBatch: 4, MaxDelay: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	const clients, rounds = 8, 10
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h, m := hMLP, mlp
			if c%2 == 1 {
				h, m = hAttn, attn
			}
			for i := 0; i < rounds; i++ {
				res, err := h.Run(context.Background(), microRequest(t, m, uint64(c*100+i)))
				if err != nil {
					t.Errorf("client %d round %d: %v", c, i, err)
					return
				}
				res.Release()
			}
		}(c)
	}
	wg.Wait()
}
