package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dnnfusion"

	"dnnfusion/internal/faultinject"
	"dnnfusion/internal/models"
)

// Overload-safety suite: bounded admission, deadline propagation, adaptive
// batch sizing, and the fault-injection hooks that make the shed/drain
// paths deterministically testable. Tests here arm process-global
// faultinject hooks, so none of them run in parallel.

// blockExecute arms a ServeExecute hook that signals entry of the first
// batch and holds it until release is closed; later batches pass straight
// through. It lets a test pin the dispatcher mid-execution and build
// queue state behind it deterministically.
func blockExecute(t *testing.T) (entered, release chan struct{}) {
	t.Helper()
	entered = make(chan struct{}, 1)
	release = make(chan struct{})
	var first sync.Once
	faultinject.Set(faultinject.ServeExecute, func(ctx context.Context, args ...any) error {
		blocked := false
		first.Do(func() {
			entered <- struct{}{}
			<-release
			blocked = true
		})
		_ = blocked
		return nil
	})
	t.Cleanup(faultinject.Reset)
	return entered, release
}

// waitQueueDepth polls until the host's queue holds want calls.
func waitQueueDepth(t *testing.T, h *Host, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for len(h.calls) != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d never reached %d", len(h.calls), want)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestHostShedsWhenQueueFull pins bounded admission: with the dispatcher
// pinned mid-batch and the queue at capacity, the next Run fails fast with
// an error wrapping dnnfusion.ErrOverloaded — it neither blocks nor
// queues — and the shed counter records it.
func TestHostShedsWhenQueueFull(t *testing.T) {
	m := compileMicro(t, models.MicroMLP)
	r := NewRegistry()
	defer r.Close()
	h, err := r.Register("mlp", m, Config{MaxBatch: 1, Queue: 1, MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	req := microRequest(t, m, 1)
	// Warm before arming the hook: build, start dispatcher.
	res, err := h.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res.Release()

	entered, release := blockExecute(t)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(1)
	go func() { // occupies the dispatcher
		defer wg.Done()
		res, err := h.Run(context.Background(), req)
		errs[0] = err
		if err == nil {
			res.Release()
		}
	}()
	<-entered
	wg.Add(1)
	go func() { // fills the queue (capacity 1)
		defer wg.Done()
		res, err := h.Run(context.Background(), req)
		errs[1] = err
		if err == nil {
			res.Release()
		}
	}()
	waitQueueDepth(t, h, 1)

	// Third request: queue full, dispatcher busy — must shed immediately.
	start := time.Now()
	_, err = h.Run(context.Background(), req)
	if !errors.Is(err, dnnfusion.ErrOverloaded) {
		t.Fatalf("full-queue Run = %v, want ErrOverloaded", err)
	}
	if errors.Is(err, ErrSaturated) {
		t.Fatal("queue-full shed reported as registry saturation")
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("shed took %v — admission control must fail fast, not block", elapsed)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("admitted client %d failed: %v", i, err)
		}
	}
	info, err := h.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", info.Stats.Shed)
	}
	if info.QueueCapacity != 1 {
		t.Fatalf("queue capacity = %d, want 1", info.QueueCapacity)
	}
}

// TestRegistryMaxInFlightSaturates pins the registry-wide ceiling: with one
// request in flight and the ceiling at 1, a second request — even against
// another model — sheds with ErrSaturated (which also matches
// ErrOverloaded for callers treating all shedding alike).
func TestRegistryMaxInFlightSaturates(t *testing.T) {
	mlp := compileMicro(t, models.MicroMLP)
	attn := compileMicro(t, models.MicroAttention)
	r := NewRegistry()
	defer r.Close()
	hMLP, err := r.Register("mlp", mlp, Config{MaxBatch: 1, Queue: 4, MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	hAttn, err := r.Register("attn", attn, Config{MaxBatch: 1, Queue: 4, MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	reqMLP := microRequest(t, mlp, 1)
	reqAttn := microRequest(t, attn, 2)
	// Warm both hosts before arming the hook or the ceiling.
	for _, warm := range []struct {
		h   *Host
		req map[string]*dnnfusion.Tensor
	}{{hMLP, reqMLP}, {hAttn, reqAttn}} {
		res, err := warm.h.Run(context.Background(), warm.req)
		if err != nil {
			t.Fatal(err)
		}
		res.Release()
	}
	r.SetMaxInFlight(1)
	entered, release := blockExecute(t)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := hMLP.Run(context.Background(), reqMLP)
		if err != nil {
			t.Errorf("in-flight client: %v", err)
			return
		}
		res.Release()
	}()
	<-entered
	if got := r.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1", got)
	}
	_, err = hAttn.Run(context.Background(), reqAttn)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("over-ceiling Run = %v, want ErrSaturated", err)
	}
	if !errors.Is(err, dnnfusion.ErrOverloaded) {
		t.Fatal("ErrSaturated does not wrap dnnfusion.ErrOverloaded")
	}
	if r.Saturated() != 1 {
		t.Fatalf("Saturated() = %d, want 1", r.Saturated())
	}
	close(release)
	wg.Wait()
	if got := r.InFlight(); got != 0 {
		t.Fatalf("InFlight after drain = %d, want 0", got)
	}
}

// TestExpiredRequestsNeverExecute is the deadline-propagation proof: with
// the dispatcher pinned on one live batch, requests whose deadlines expire
// while queued must be dropped at the next batch formation — observed
// through the ServeExecute hook, which sees every batch that reaches
// execution and must never see an expired call.
func TestExpiredRequestsNeverExecute(t *testing.T) {
	m := compileMicro(t, models.MicroMLP)
	r := NewRegistry()
	defer r.Close()
	h, err := r.Register("mlp", m, Config{MaxBatch: 4, Queue: 8, MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	req := microRequest(t, m, 1)
	res, err := h.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res.Release()

	var executedCalls atomic.Int64
	var expiredExecuted atomic.Int64
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var first sync.Once
	faultinject.Set(faultinject.ServeExecute, func(ctx context.Context, args ...any) error {
		executedCalls.Add(int64(args[1].(int)))
		for _, c := range args[2].([]*call) {
			if c.ctx.Err() != nil {
				expiredExecuted.Add(1)
			}
		}
		first.Do(func() {
			entered <- struct{}{}
			<-release
		})
		return nil
	})
	t.Cleanup(faultinject.Reset)

	// Pin the dispatcher on one long-lived batch.
	var blocker sync.WaitGroup
	blocker.Add(1)
	go func() {
		defer blocker.Done()
		res, err := h.Run(context.Background(), req)
		if err != nil {
			t.Errorf("blocker: %v", err)
			return
		}
		res.Release()
	}()
	<-entered

	// Six requests with real deadlines pile up behind it and expire there.
	const doomed = 6
	var wg sync.WaitGroup
	errs := make([]error, doomed)
	for i := 0; i < doomed; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			_, errs[i] = h.Run(ctx, microRequest(t, m, uint64(10+i)))
		}(i)
	}
	waitQueueDepth(t, h, doomed)
	wg.Wait() // all six returned DeadlineExceeded while still queued
	for i, err := range errs {
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("doomed client %d: %v, want DeadlineExceeded", i, err)
		}
	}
	close(release)
	blocker.Wait()

	// One live request flushes the dispatcher through the expired backlog.
	res, err = h.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res.Release()

	if got := expiredExecuted.Load(); got != 0 {
		t.Fatalf("%d expired calls reached execute", got)
	}
	// Exactly the blocker and the flush executed; the doomed six never did.
	if got := executedCalls.Load(); got != 2 {
		t.Fatalf("executed %d calls, want 2 (blocker + flush)", got)
	}
	info, err := h.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.Expired != doomed {
		t.Fatalf("expired counter = %d, want %d", info.Stats.Expired, doomed)
	}
}

// TestDeadOnArrivalNeverQueues: a context already done at Run is rejected
// before admission — no queueing, no in-flight slot, counted as expired.
func TestDeadOnArrivalNeverQueues(t *testing.T) {
	m := compileMicro(t, models.MicroMLP)
	r := NewRegistry()
	defer r.Close()
	h, err := r.Register("mlp", m, Config{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	req := microRequest(t, m, 1)
	res, err := h.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res.Release()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := h.Run(ctx, req); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DOA Run = %v, want DeadlineExceeded", err)
	}
	if depth := len(h.calls); depth != 0 {
		t.Fatalf("DOA request was queued (depth %d)", depth)
	}
	info, err := h.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.Expired != 1 {
		t.Fatalf("expired counter = %d, want 1", info.Stats.Expired)
	}
	if r.InFlight() != 0 {
		t.Fatalf("InFlight = %d after DOA rejection", r.InFlight())
	}
}

// TestExecuteRunsUnderEarliestDeadline pins the batch execution context: a
// request carrying a deadline must execute under a context bounded by it,
// so a stuck execution is cut off at the deadline instead of running
// arbitrarily long.
func TestExecuteRunsUnderEarliestDeadline(t *testing.T) {
	m := compileMicro(t, models.MicroMLP)
	r := NewRegistry()
	defer r.Close()
	h, err := r.Register("mlp", m, Config{MaxBatch: 1, MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	req := microRequest(t, m, 1)
	res, err := h.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res.Release()

	sawDeadline := make(chan bool, 1)
	faultinject.Set(faultinject.ServeExecute, func(ctx context.Context, args ...any) error {
		_, ok := ctx.Deadline()
		sawDeadline <- ok
		<-ctx.Done() // a stuck kernel: only the deadline can end it
		return ctx.Err()
	})
	t.Cleanup(faultinject.Reset)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = h.Run(ctx, req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stuck execution Run = %v, want DeadlineExceeded", err)
	}
	if !<-sawDeadline {
		t.Fatal("batch execution context carried no deadline")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline-bounded execution took %v", elapsed)
	}
}

// TestHostCloseCancelsInjectedExecution drives the mid-batch-cancellation
// path deterministically: a batch held in flight by the hook is cut loose
// when the host is evicted, and the caller sees ErrClosed (never a bare
// context.Canceled).
func TestHostCloseCancelsInjectedExecution(t *testing.T) {
	m := compileMicro(t, models.MicroMLP)
	r := NewRegistry()
	h, err := r.Register("mlp", m, Config{MaxBatch: 1, MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	req := microRequest(t, m, 1)
	res, err := h.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res.Release()

	entered := make(chan struct{}, 1)
	faultinject.Set(faultinject.ServeExecute, func(ctx context.Context, args ...any) error {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return ctx.Err()
	})
	t.Cleanup(faultinject.Reset)

	done := make(chan error, 1)
	go func() {
		_, err := h.Run(context.Background(), req)
		done <- err
	}()
	<-entered
	r.Evict("mlp")
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("evicted mid-batch Run = %v, want ErrClosed", err)
	}
}

// TestBuildFaultInjection forces a deterministic build failure: the host
// fails sticky, the injected cause is preserved through errors.Is, and the
// registry's build-failure counter records it.
func TestBuildFaultInjection(t *testing.T) {
	boom := errors.New("injected build failure")
	faultinject.Set(faultinject.ServeBuild, func(ctx context.Context, args ...any) error {
		if args[0].(string) != "mlp" {
			t.Errorf("build hook fired for %v", args[0])
		}
		return boom
	})
	t.Cleanup(faultinject.Reset)
	r := NewRegistry()
	defer r.Close()
	h, err := r.Register("mlp", compileMicro(t, models.MicroMLP), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := h.Model(); !errors.Is(err, boom) {
			t.Fatalf("Model() attempt %d = %v, want injected failure", i, err)
		}
	}
	if r.BuildFailures() != 1 {
		t.Fatalf("BuildFailures = %d, want 1", r.BuildFailures())
	}
	if _, err := h.Run(context.Background(), nil); !errors.Is(err, boom) {
		t.Fatalf("Run on injected-failed host = %v", err)
	}
}

// TestExecuteFaultInjectionFailsBatch: an injected execution error fails
// every call in the batch with that error — the erroring-kernel path that
// is otherwise unreachable with the in-tree models.
func TestExecuteFaultInjectionFailsBatch(t *testing.T) {
	m := compileMicro(t, models.MicroMLP)
	r := NewRegistry()
	defer r.Close()
	h, err := r.Register("mlp", m, Config{MaxBatch: 4, MaxDelay: 20 * time.Millisecond, Prewarm: true})
	if err != nil {
		t.Fatal(err)
	}
	req := microRequest(t, m, 1)
	res, err := h.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res.Release()

	boom := errors.New("injected kernel failure")
	faultinject.Set(faultinject.ServeExecute, func(ctx context.Context, args ...any) error { return boom })
	t.Cleanup(faultinject.Reset)
	const clients = 4
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_, errs[c] = h.Run(context.Background(), microRequest(t, m, uint64(c)))
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("client %d: %v, want injected failure", c, err)
		}
	}
}

// TestAdaptiveMaxDelayGrowsAndShrinks pins the control loop: under
// sustained queue depth the coalescing delay climbs toward the ceiling;
// once traffic goes idle it decays toward zero. Slow executions are
// injected so queue depth is load, not luck.
func TestAdaptiveMaxDelayGrowsAndShrinks(t *testing.T) {
	m := compileMicro(t, models.MicroMLP)
	r := NewRegistry()
	defer r.Close()
	cfg := Config{
		MaxBatch:        4,
		MaxDelay:        200 * time.Microsecond,
		MaxDelayCeiling: 5 * time.Millisecond,
		Queue:           16,
		Prewarm:         true,
	}
	h, err := r.Register("mlp", m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := microRequest(t, m, 1)
	res, err := h.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res.Release()
	info, err := h.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.MaxDelayCeilingUs != 5000 {
		t.Fatalf("ceiling = %dus, want 5000", info.MaxDelayCeilingUs)
	}

	// Load phase: every batch executes slowly, so clients pile up and the
	// dispatcher keeps observing a deep queue.
	faultinject.Set(faultinject.ServeExecute, func(ctx context.Context, args ...any) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	t.Cleanup(faultinject.Reset)
	for wave := 0; wave < 3; wave++ {
		const clients = 16
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				res, err := h.Run(context.Background(), microRequest(t, m, uint64(c)))
				if err != nil {
					t.Errorf("wave client: %v", err)
					return
				}
				res.Release()
			}(c)
		}
		wg.Wait()
	}
	info, err = h.Info()
	if err != nil {
		t.Fatal(err)
	}
	grown := info.CurrentMaxDelayUs
	if grown <= 500 {
		t.Fatalf("delay after load = %dus (ewma %.2f) — did not grow toward the 5000us ceiling",
			grown, info.QueueDepthEwma)
	}

	// Idle phase: sequential lone requests observe an empty queue and the
	// controller decays the wait toward zero.
	faultinject.Reset()
	for i := 0; i < 40; i++ {
		res, err := h.Run(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		res.Release()
	}
	info, err = h.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.CurrentMaxDelayUs >= grown || info.CurrentMaxDelayUs > 100 {
		t.Fatalf("delay after idle = %dus (was %dus) — did not decay toward zero",
			info.CurrentMaxDelayUs, grown)
	}
}

// TestFixedDelayWithoutCeiling: with MaxDelayCeiling unset the delay is not
// a control signal — it stays exactly at the configured MaxDelay.
func TestFixedDelayWithoutCeiling(t *testing.T) {
	m := compileMicro(t, models.MicroMLP)
	r := NewRegistry()
	defer r.Close()
	h, err := r.Register("mlp", m, Config{MaxBatch: 4, MaxDelay: 300 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	req := microRequest(t, m, 1)
	for i := 0; i < 10; i++ {
		res, err := h.Run(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		res.Release()
	}
	info, err := h.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.CurrentMaxDelayUs != 300 {
		t.Fatalf("fixed delay drifted to %dus", info.CurrentMaxDelayUs)
	}
	if info.MaxDelayCeilingUs != 0 {
		t.Fatalf("ceiling = %d, want 0 (adaptation off)", info.MaxDelayCeilingUs)
	}
}

// TestHostOverloadSoakRace floods a small-queue host from concurrent
// clients with mixed short/long deadlines, past capacity, with slow
// executions injected. It asserts the overload contract end to end: every
// request gets exactly one terminal outcome, the host sheds (rather than
// queueing unboundedly), all outcomes are from the sanctioned taxonomy,
// counters reconcile, and nothing leaks a goroutine. Run under -race in CI.
func TestHostOverloadSoakRace(t *testing.T) {
	m := compileMicro(t, models.MicroMLP)

	// Throwaway registry exercises one full host lifecycle so lazily
	// started runtime machinery is up before the goroutine baseline.
	warm := NewRegistry()
	hw, err := warm.Register("mlp", m, Config{MaxBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	req := microRequest(t, m, 1)
	res, err := hw.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res.Release()
	warm.Close()
	time.Sleep(20 * time.Millisecond)
	runtime.GC()
	baseline := runtime.NumGoroutine()

	r := NewRegistry()
	h, err := r.Register("mlp", m, Config{
		MaxBatch:        4,
		MaxDelay:        100 * time.Microsecond,
		MaxDelayCeiling: time.Millisecond,
		Queue:           8,
		Prewarm:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err = h.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res.Release()

	// Slow every batch down so the flood genuinely overruns the queue.
	faultinject.Set(faultinject.ServeExecute, func(ctx context.Context, args ...any) error {
		time.Sleep(500 * time.Microsecond)
		return nil
	})
	t.Cleanup(faultinject.Reset)

	const clients, rounds = 16, 25
	var completed, shed, deadline atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req := microRequest(t, m, uint64(c+2))
			for i := 0; i < rounds; i++ {
				ctx, cancel := context.Background(), context.CancelFunc(func() {})
				if c%2 == 1 {
					// Short-deadline half: tighter than one slowed batch,
					// so many expire queued or mid-batch.
					ctx, cancel = context.WithTimeout(ctx, 300*time.Microsecond)
				} else {
					ctx, cancel = context.WithTimeout(ctx, time.Second)
				}
				res, err := h.Run(ctx, req)
				switch {
				case err == nil:
					completed.Add(1)
					res.Release()
				case errors.Is(err, dnnfusion.ErrOverloaded):
					shed.Add(1)
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					deadline.Add(1)
				default:
					t.Errorf("client %d round %d: outcome outside the taxonomy: %v", c, i, err)
				}
				cancel()
			}
		}(c)
	}
	wg.Wait()

	offered := int64(clients * rounds)
	got := completed.Load() + shed.Load() + deadline.Load()
	if got != offered {
		t.Fatalf("outcomes %d != offered %d (completed %d, shed %d, deadline %d)",
			got, offered, completed.Load(), shed.Load(), deadline.Load())
	}
	if shed.Load() == 0 {
		t.Fatal("flood at 4x queue capacity never shed — admission control inert")
	}
	if completed.Load() == 0 {
		t.Fatal("flood starved every request — shedding must protect admitted work, not replace it")
	}
	info, err := h.Info()
	if err != nil {
		t.Fatal(err)
	}
	// Every Run (including the one warmup on this host) is counted exactly once.
	if want := uint64(offered) + 1; info.Stats.Requests != want {
		t.Fatalf("requests counter %d, want %d", info.Stats.Requests, want)
	}
	if info.Stats.Shed != uint64(shed.Load()) {
		t.Fatalf("shed counter %d != observed %d", info.Stats.Shed, shed.Load())
	}

	r.Close()
	// No goroutine may outlive the registry: dispatcher exits, abandoned
	// calls are answered, nothing blocks forever.
	deadlineT := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadlineT) {
			t.Fatalf("goroutines %d > baseline %d after Close", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
