package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"dnnfusion"
)

// Server is the HTTP front-end over a model repository. It implements
// http.Handler with four JSON endpoints:
//
//	GET  /healthz                     — liveness plus registered-model count
//	GET  /v1/models                   — list models (name, loaded, stats)
//	GET  /v1/models/{name}            — one model's full serving metadata
//	POST /v1/models/{name}:predict    — run one inference
//
// A predict request body maps input names to tensors:
//
//	{"inputs": {"x": {"shape": [16, 64], "data": [0.1, ...]}}}
//
// Shape may be omitted (the model's declared shape is used) and data may be
// omitted (zeros), so {"inputs": {"x": {}}} is the minimal smoke request.
// The response mirrors the form: {"model": ..., "outputs": {"y": {"shape":
// ..., "data": [...]}}}.
//
// Errors map the package taxonomy to status codes: unknown model names are
// 404 (dnnfusion.ErrUnknownModel), malformed requests — unknown/missing
// inputs, shape mismatches, undecodable JSON — are 400, eviction races are
// 503, and everything else is 500. Every error body is {"error": "..."}.
type Server struct {
	reg *Registry
}

// NewServer wraps a repository in the HTTP front-end.
func NewServer(reg *Registry) *Server { return &Server{reg: reg} }

// Registry returns the repository the server fronts.
func (s *Server) Registry() *Registry { return s.reg }

const modelsPrefix = "/v1/models"

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		s.handleHealth(w, r)
	case path == modelsPrefix || path == modelsPrefix+"/":
		s.handleList(w, r)
	case strings.HasPrefix(path, modelsPrefix+"/"):
		rest := strings.TrimPrefix(path, modelsPrefix+"/")
		if name, ok := strings.CutSuffix(rest, ":predict"); ok {
			s.handlePredict(w, r, name)
			return
		}
		s.handleInfo(w, r, rest)
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("no such endpoint %q", path))
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("healthz is GET-only"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"models":         len(s.reg.Names()),
		"build_failures": s.reg.BuildFailures(),
	})
}

// listEntry is one model's row in GET /v1/models. Stats appear only for
// loaded models: listing must stay cheap and never force a lazy build.
type listEntry struct {
	Name   string `json:"name"`
	Loaded bool   `json:"loaded"`
	Stats  *Stats `json:"stats,omitempty"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("model listing is GET-only"))
		return
	}
	entries := []listEntry{}
	for _, name := range s.reg.Names() {
		h, err := s.reg.Resolve(name)
		if err != nil {
			continue // evicted between Names and Resolve
		}
		e := listEntry{Name: name, Loaded: h.Loaded()}
		if e.Loaded {
			st := h.st.snapshot()
			e.Stats = &st
		}
		entries = append(entries, e)
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": entries})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request, name string) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("model info is GET-only"))
		return
	}
	h, err := s.reg.Resolve(name)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	info, err := h.Info()
	if err != nil {
		writeBuildError(w, statusFor(err), name, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// wireTensor is the JSON form of a tensor: row-major data plus shape.
type wireTensor struct {
	Shape []int     `json:"shape,omitempty"`
	Data  []float32 `json:"data,omitempty"`
}

type predictRequest struct {
	Inputs map[string]wireTensor `json:"inputs"`
}

type predictResponse struct {
	Model   string                `json:"model"`
	Outputs map[string]wireTensor `json:"outputs"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, name string) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("predict is POST-only"))
		return
	}
	h, err := s.reg.Resolve(name)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if _, err := h.Model(); err != nil {
		writeBuildError(w, statusFor(err), name, err)
		return
	}
	var req predictRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return
	}
	inputs := make(map[string]*dnnfusion.Tensor, len(req.Inputs))
	for inName, wt := range req.Inputs {
		t, err := h.decodeTensor(inName, wt)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		inputs[inName] = t
	}
	res, err := h.Run(r.Context(), inputs)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	defer res.Release()
	resp := predictResponse{Model: name, Outputs: make(map[string]wireTensor, len(res.Outputs()))}
	for outName, t := range res.Outputs() {
		resp.Outputs[outName] = wireTensor{Shape: t.Shape(), Data: t.Data()}
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodeTensor builds one input tensor from its wire form: the declared
// input shape fills in an omitted shape, omitted data means zeros, and a
// data/shape element-count mismatch is a 400-class error.
func (h *Host) decodeTensor(name string, wt wireTensor) (*dnnfusion.Tensor, error) {
	shape := wt.Shape
	if shape == nil {
		if spec := h.inSpec(name); spec != nil {
			shape = spec.Shape
		} else {
			return nil, fmt.Errorf("%w: %q", dnnfusion.ErrUnknownInput, name)
		}
	}
	t := dnnfusion.NewTensor(shape...)
	if wt.Data == nil {
		return t, nil
	}
	if len(wt.Data) != t.NumElements() {
		return nil, fmt.Errorf("%w: input %q has %d data elements for shape %v (%d elements)",
			dnnfusion.ErrShapeMismatch, name, len(wt.Data), shape, t.NumElements())
	}
	copy(t.Data(), wt.Data)
	return t, nil
}

// statusFor maps the serving error taxonomy onto HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, dnnfusion.ErrUnknownModel):
		return http.StatusNotFound
	case errors.Is(err, dnnfusion.ErrUnknownInput),
		errors.Is(err, dnnfusion.ErrMissingInput),
		errors.Is(err, dnnfusion.ErrShapeMismatch):
		return http.StatusBadRequest
	case errors.Is(err, dnnfusion.ErrImport):
		// The model file on disk cannot be loaded; the request itself is
		// fine, so neither 400 nor 500 fits.
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeBuildError reports a model whose lazy build failed. Unlike plain
// writeError it carries the model name and the root cause as separate
// fields, so a client scripting against a -models directory can tell a bad
// file ("cause": unsupported operator ...) from a broken server.
func writeBuildError(w http.ResponseWriter, status int, model string, err error) {
	body := map[string]string{
		"error": err.Error(),
		"model": model,
	}
	if cause := rootCause(err); cause != err.Error() {
		body["cause"] = cause
	}
	writeJSON(w, status, body)
}

// rootCause walks the Unwrap chain to the innermost error message.
func rootCause(err error) string {
	for {
		inner := errors.Unwrap(err)
		if inner == nil {
			return err.Error()
		}
		err = inner
	}
}
