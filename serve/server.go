package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"

	"dnnfusion"
)

// Server is the HTTP front-end over a model repository. It implements
// http.Handler with four JSON endpoints:
//
//	GET  /healthz                     — liveness plus registered-model count
//	GET  /v1/models                   — list models (name, loaded, stats)
//	GET  /v1/models/{name}            — one model's full serving metadata
//	POST /v1/models/{name}:predict    — run one inference
//	GET  /metrics                     — Prometheus text exposition (0.0.4)
//	GET  /debug/pprof/*               — Go profiling (only when Pprof is set)
//
// Every response carries an X-Request-ID header: the sanitized client
// X-Request-ID when one was sent, a freshly generated ID otherwise. Predict
// responses echo it in the body as request_id — error bodies too, so a shed
// 429 or 503 is attributable in client logs — and ?trace=1 on :predict adds
// a per-stage timing block (admission, queue wait, batch formation,
// execute, respond) from the host's request Timeline.
//
// A predict request body maps input names to tensors:
//
//	{"inputs": {"x": {"shape": [16, 64], "data": [0.1, ...]}}}
//
// Shape may be omitted (the model's declared shape is used) and data may be
// omitted (zeros), so {"inputs": {"x": {}}} is the minimal smoke request.
// The response mirrors the form: {"model": ..., "outputs": {"y": {"shape":
// ..., "data": [...]}}}.
//
// Errors map the package taxonomy to status codes: unknown model names are
// 404 (dnnfusion.ErrUnknownModel), malformed requests — unknown/missing
// inputs, shape mismatches, undecodable JSON — are 400, oversized bodies
// 413, shed requests 429 (queue full) or 503 (in-flight ceiling, drain,
// eviction) with a Retry-After hint, and everything else is 500. Every
// error body is {"error": "..."}.
type Server struct {
	reg *Registry
	// MaxBodyBytes caps a :predict request body (http.MaxBytesReader; an
	// oversized body gets 413 and the connection closes instead of a slow
	// client holding it while streaming an unbounded payload). 0 means
	// DefaultMaxBodyBytes; negative disables the cap. Set before serving.
	MaxBodyBytes int64
	// Pprof exposes net/http/pprof under /debug/pprof/ when set (the
	// dnnf-serve -pprof flag). Off by default: profiling endpoints reveal
	// internals and cost CPU, so they are opt-in. Set before serving.
	Pprof bool
	// draining flips when Drain is called: :predict stops admitting (503
	// + Retry-After) while /healthz keeps answering and reports the
	// drain, so load balancers see the instance leaving before its
	// in-flight work finishes.
	draining atomic.Bool
}

// DefaultMaxBodyBytes caps :predict bodies unless Server.MaxBodyBytes
// overrides it. 8 MiB holds a batch-1 request of ~2M float32 elements in
// JSON; real deployments tune it to their largest declared input.
const DefaultMaxBodyBytes int64 = 8 << 20

// NewServer wraps a repository in the HTTP front-end.
func NewServer(reg *Registry) *Server { return &Server{reg: reg} }

// Drain puts the server into draining mode: every subsequent :predict is
// refused with 503 + Retry-After while /healthz keeps answering (status
// "draining"). Pair with http.Server.Shutdown: Drain first so new work is
// refused deterministically even on kept-alive connections, then Shutdown
// waits for in-flight requests.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Registry returns the repository the server fronts.
func (s *Server) Registry() *Registry { return s.reg }

const modelsPrefix = "/v1/models"

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Request IDs are minted (or adopted) at the edge so every log line,
	// response header, and error body below this point is attributable.
	// The statusWriter records the response code for the per-route HTTP
	// counter without changing what the client sees.
	id := requestID(r)
	sw := &statusWriter{ResponseWriter: w}
	sw.Header().Set("X-Request-ID", id)
	path := r.URL.Path
	route := "other"
	switch {
	case path == "/healthz":
		route = "healthz"
		s.handleHealth(sw, r)
	case path == "/metrics":
		route = "metrics"
		s.handleMetrics(sw, r)
	case path == "/debug/pprof" || strings.HasPrefix(path, "/debug/pprof/"):
		route = "pprof"
		s.handlePprof(sw, r)
	case path == modelsPrefix || path == modelsPrefix+"/":
		route = "models"
		s.handleList(sw, r)
	case strings.HasPrefix(path, modelsPrefix+"/"):
		rest := strings.TrimPrefix(path, modelsPrefix+"/")
		if name, ok := strings.CutSuffix(rest, ":predict"); ok {
			route = "predict"
			s.handlePredict(sw, r, name, id)
		} else {
			route = "models"
			s.handleInfo(sw, r, rest)
		}
	default:
		writeError(sw, http.StatusNotFound, fmt.Errorf("no such endpoint %q", path))
	}
	s.countHTTP(route, sw.code())
}

// requestID adopts the client's X-Request-ID when it is well-formed (so a
// caller can correlate across services) and mints a fresh random ID
// otherwise.
func requestID(r *http.Request) string {
	if id := sanitizeRequestID(r.Header.Get("X-Request-ID")); id != "" {
		return id
	}
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID accepts client-supplied IDs only when they are short
// and drawn from a log-safe alphabet — anything else is discarded (a
// header echoed into JSON bodies and logs must not smuggle arbitrary
// bytes). Returns "" for rejects.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case '0' <= c && c <= '9', 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}

// statusWriter captures the response status for the per-route HTTP counter.
// The first WriteHeader (or implicit 200 on first Write) wins, matching
// net/http semantics.
type statusWriter struct {
	http.ResponseWriter
	wrote  bool
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.wrote, w.status = true, code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.wrote, w.status = true, http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) code() int {
	if !w.wrote {
		return http.StatusOK
	}
	return w.status
}

// Flush passes through so streaming responses (pprof trace) keep working
// behind the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) countHTTP(route string, code int) {
	s.reg.obs.Counter("dnnf_http_requests_total", helpHTTPRequests,
		"route", route, "code", strconv.Itoa(code)).Inc()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("metrics is GET-only"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// handlePprof serves net/http/pprof without claiming http.DefaultServeMux:
// the Server routes everything itself, so the profiling handlers are
// invoked directly and only when opted in.
func (s *Server) handlePprof(w http.ResponseWriter, r *http.Request) {
	if !s.Pprof {
		writeError(w, http.StatusNotFound, errors.New("pprof is disabled (run dnnf-serve with -pprof)"))
		return
	}
	switch r.URL.Path {
	case "/debug/pprof/cmdline":
		pprof.Cmdline(w, r)
	case "/debug/pprof/profile":
		pprof.Profile(w, r)
	case "/debug/pprof/symbol":
		pprof.Symbol(w, r)
	case "/debug/pprof/trace":
		pprof.Trace(w, r)
	default:
		pprof.Index(w, r)
	}
}

// healthHost is one loaded host's overload-control state on /healthz: the
// control signals an operator watches under load, without forcing any lazy
// build (unloaded hosts are omitted).
type healthHost struct {
	QueueDepth        int     `json:"queue_depth"`
	QueueCapacity     int     `json:"queue_capacity"`
	Shed              uint64  `json:"shed"`
	Expired           uint64  `json:"expired"`
	CurrentMaxDelayUs int64   `json:"current_max_delay_us"`
	QueueDepthEwma    float64 `json:"queue_depth_ewma"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("healthz is GET-only"))
		return
	}
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	names := s.reg.Names()
	hosts := map[string]healthHost{}
	var shed, expired uint64
	for _, name := range names {
		h, err := s.reg.Resolve(name)
		if err != nil || !h.Loaded() {
			continue
		}
		var info Info
		h.controlState(&info)
		st := h.st.snapshot()
		shed += st.Shed
		expired += st.Expired
		hosts[name] = healthHost{
			QueueDepth:        info.QueueDepth,
			QueueCapacity:     info.QueueCapacity,
			Shed:              st.Shed,
			Expired:           st.Expired,
			CurrentMaxDelayUs: info.CurrentMaxDelayUs,
			QueueDepthEwma:    info.QueueDepthEwma,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"models":         len(names),
		"build_failures": s.reg.BuildFailures(),
		"in_flight":      s.reg.InFlight(),
		"max_in_flight":  s.reg.MaxInFlight(),
		"saturated":      s.reg.Saturated(),
		"shed":           shed,
		"expired":        expired,
		"hosts":          hosts,
	})
}

// listEntry is one model's row in GET /v1/models. Stats appear only for
// loaded models: listing must stay cheap and never force a lazy build.
type listEntry struct {
	Name   string `json:"name"`
	Loaded bool   `json:"loaded"`
	Stats  *Stats `json:"stats,omitempty"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("model listing is GET-only"))
		return
	}
	entries := []listEntry{}
	for _, name := range s.reg.Names() {
		h, err := s.reg.Resolve(name)
		if err != nil {
			continue // evicted between Names and Resolve
		}
		e := listEntry{Name: name, Loaded: h.Loaded()}
		if e.Loaded {
			st := h.st.snapshot()
			e.Stats = &st
		}
		entries = append(entries, e)
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": entries})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request, name string) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("model info is GET-only"))
		return
	}
	h, err := s.reg.Resolve(name)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	info, err := h.Info()
	if err != nil {
		writeBuildError(w, statusFor(err), name, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// wireTensor is the JSON form of a tensor: row-major data plus shape.
type wireTensor struct {
	Shape []int     `json:"shape,omitempty"`
	Data  []float32 `json:"data,omitempty"`
}

type predictRequest struct {
	Inputs map[string]wireTensor `json:"inputs"`
}

type predictResponse struct {
	Model     string                `json:"model"`
	RequestID string                `json:"request_id"`
	Outputs   map[string]wireTensor `json:"outputs"`
	Trace     *predictTrace         `json:"trace,omitempty"`
}

// predictTrace is the ?trace=1 timing block: the request's passage through
// the serving pipeline, stage by stage, in nanoseconds.
type predictTrace struct {
	BatchSize int          `json:"batch_size"`
	Stages    []traceStage `json:"stages"`
}

type traceStage struct {
	Stage string `json:"stage"`
	Ns    int64  `json:"ns"`
}

// traceOf renders a host Timeline as the wire trace. respond is the
// remainder of the total after the measured stages — result scatter and
// hand-back — clamped at zero against clock skew between stamps.
func traceOf(tl Timeline) *predictTrace {
	respond := tl.TotalNs - tl.AdmissionNs - tl.QueueWaitNs - tl.BatchFormNs - tl.ExecuteNs
	if respond < 0 {
		respond = 0
	}
	return &predictTrace{
		BatchSize: tl.BatchSize,
		Stages: []traceStage{
			{Stage: "admission", Ns: tl.AdmissionNs},
			{Stage: "queue_wait", Ns: tl.QueueWaitNs},
			{Stage: "batch_formation", Ns: tl.BatchFormNs},
			{Stage: "execute", Ns: tl.ExecuteNs},
			{Stage: "respond", Ns: respond},
		},
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, name, id string) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("predict is POST-only"))
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	h, err := s.reg.Resolve(name)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if _, err := h.Model(); err != nil {
		writeBuildError(w, statusFor(err), name, err)
		return
	}
	if limit := s.bodyLimit(); limit > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, limit)
	}
	var req predictRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return
	}
	inputs := make(map[string]*dnnfusion.Tensor, len(req.Inputs))
	for inName, wt := range req.Inputs {
		t, err := h.decodeTensor(inName, wt)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		inputs[inName] = t
	}
	res, err := h.Run(r.Context(), inputs)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	defer res.Release()
	resp := predictResponse{Model: name, RequestID: id, Outputs: make(map[string]wireTensor, len(res.Outputs()))}
	for outName, t := range res.Outputs() {
		resp.Outputs[outName] = wireTensor{Shape: t.Shape(), Data: t.Data()}
	}
	if r.URL.Query().Get("trace") == "1" {
		resp.Trace = traceOf(res.Timeline())
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodeTensor builds one input tensor from its wire form: the declared
// input shape fills in an omitted shape, omitted data means zeros, and a
// data/shape element-count mismatch is a 400-class error.
func (h *Host) decodeTensor(name string, wt wireTensor) (*dnnfusion.Tensor, error) {
	shape := wt.Shape
	if shape == nil {
		if spec := h.inSpec(name); spec != nil {
			shape = spec.Shape
		} else {
			return nil, fmt.Errorf("%w: %q", dnnfusion.ErrUnknownInput, name)
		}
	}
	t := dnnfusion.NewTensor(shape...)
	if wt.Data == nil {
		return t, nil
	}
	if len(wt.Data) != t.NumElements() {
		return nil, fmt.Errorf("%w: input %q has %d data elements for shape %v (%d elements)",
			dnnfusion.ErrShapeMismatch, name, len(wt.Data), shape, t.NumElements())
	}
	copy(t.Data(), wt.Data)
	return t, nil
}

// bodyLimit resolves the effective :predict body cap.
func (s *Server) bodyLimit() int64 {
	if s.MaxBodyBytes == 0 {
		return DefaultMaxBodyBytes
	}
	return s.MaxBodyBytes
}

// statusFor maps the serving error taxonomy onto HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, dnnfusion.ErrUnknownModel):
		return http.StatusNotFound
	case errors.Is(err, dnnfusion.ErrUnknownInput),
		errors.Is(err, dnnfusion.ErrMissingInput),
		errors.Is(err, dnnfusion.ErrShapeMismatch):
		return http.StatusBadRequest
	case errors.Is(err, dnnfusion.ErrImport):
		// The model file on disk cannot be loaded; the request itself is
		// fine, so neither 400 nor 500 fits.
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrSaturated), errors.Is(err, ErrClosed):
		// Whole-server conditions: the in-flight ceiling or an evicted/
		// draining host. Checked before the general overload case —
		// ErrSaturated wraps ErrOverloaded but is not a retry-this-
		// instance signal.
		return http.StatusServiceUnavailable
	case errors.Is(err, dnnfusion.ErrOverloaded):
		// One model's queue is full: back off and retry.
		return http.StatusTooManyRequests
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		// Shed responses carry a retry hint: the rejection was cheap and
		// the condition is expected to clear (queue drains, drain
		// completes, a slot frees).
		w.Header().Set("Retry-After", "1")
	}
	body := map[string]string{"error": err.Error()}
	addRequestID(w, body)
	writeJSON(w, status, body)
}

// addRequestID copies the response's X-Request-ID (set once at the edge by
// ServeHTTP) into a JSON error body, so a shed 429/503 or a 422 build
// failure is attributable from the body alone — clients and log pipelines
// that drop headers still keep the correlation key.
func addRequestID(w http.ResponseWriter, body map[string]string) {
	if id := w.Header().Get("X-Request-ID"); id != "" {
		body["request_id"] = id
	}
}

// writeBuildError reports a model whose lazy build failed. Unlike plain
// writeError it carries the model name and the root cause as separate
// fields, so a client scripting against a -models directory can tell a bad
// file ("cause": unsupported operator ...) from a broken server.
func writeBuildError(w http.ResponseWriter, status int, model string, err error) {
	body := map[string]string{
		"error": err.Error(),
		"model": model,
	}
	if cause := rootCause(err); cause != err.Error() {
		body["cause"] = cause
	}
	addRequestID(w, body)
	writeJSON(w, status, body)
}

// rootCause walks the Unwrap chain to the innermost error message.
func rootCause(err error) string {
	for {
		inner := errors.Unwrap(err)
		if inner == nil {
			return err.Error()
		}
		err = inner
	}
}
