package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"dnnfusion"

	"dnnfusion/internal/models"
)

func compileMicro(t testing.TB, build func() *dnnfusion.Graph) *dnnfusion.Model {
	t.Helper()
	m, err := dnnfusion.Compile(build(), dnnfusion.WithThreads(1))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

// microRequest builds one named random request for a model.
func microRequest(t testing.TB, m *dnnfusion.Model, seed uint64) map[string]*dnnfusion.Tensor {
	t.Helper()
	in := map[string]*dnnfusion.Tensor{}
	for i, name := range m.InputNames() {
		shape, err := m.InputShape(name)
		if err != nil {
			t.Fatal(err)
		}
		in[name] = dnnfusion.NewTensor(shape...).Rand(seed*131 + uint64(i))
	}
	return in
}

func TestRegistryResolveUnknownModel(t *testing.T) {
	r := NewRegistry()
	_, err := r.Resolve("nope")
	if !errors.Is(err, dnnfusion.ErrUnknownModel) {
		t.Fatalf("Resolve(nope) = %v, want ErrUnknownModel", err)
	}
}

func TestRegistryRegisterAndList(t *testing.T) {
	r := NewRegistry()
	defer r.Close()
	if _, err := r.Register("mlp", compileMicro(t, models.MicroMLP), Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("attn", compileMicro(t, models.MicroAttention), Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("mlp", compileMicro(t, models.MicroMLP), Config{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := r.Register("", compileMicro(t, models.MicroMLP), Config{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := r.Register("nilmodel", nil, Config{}); err == nil {
		t.Fatal("nil model accepted")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "attn" || names[1] != "mlp" {
		t.Fatalf("Names() = %v, want [attn mlp]", names)
	}
}

func TestRegistryBuilderRunsOnce(t *testing.T) {
	r := NewRegistry()
	defer r.Close()
	var builds atomic.Int32
	_, err := r.RegisterBuilder("mlp", func() (*dnnfusion.Model, error) {
		builds.Add(1)
		return dnnfusion.Compile(models.MicroMLP(), dnnfusion.WithThreads(1))
	}, Config{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.Resolve("mlp")
	if err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 0 || h.Loaded() {
		t.Fatalf("builder ran before first use (builds=%d, loaded=%v)", builds.Load(), h.Loaded())
	}
	m, err := h.Model()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		res, err := h.Run(ctx, microRequest(t, m, uint64(i)))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		res.Release()
	}
	if builds.Load() != 1 {
		t.Fatalf("builder ran %d times, want 1", builds.Load())
	}
	if !h.Loaded() {
		t.Fatal("host not loaded after serving")
	}
}

func TestRegistryBuilderErrorIsSticky(t *testing.T) {
	r := NewRegistry()
	defer r.Close()
	boom := errors.New("boom")
	if _, err := r.RegisterBuilder("bad", func() (*dnnfusion.Model, error) { return nil, boom }, Config{}); err != nil {
		t.Fatal(err)
	}
	h, err := r.Resolve("bad")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := h.Model(); !errors.Is(err, boom) {
			t.Fatalf("Model() attempt %d = %v, want wrapped boom", i, err)
		}
	}
	if _, err := h.Run(context.Background(), nil); !errors.Is(err, boom) {
		t.Fatalf("Run on failed host = %v, want wrapped boom", err)
	}
}

func TestRegistryEvictClosesHost(t *testing.T) {
	r := NewRegistry()
	h, err := r.Register("mlp", compileMicro(t, models.MicroMLP), Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := h.Model()
	req := microRequest(t, m, 1)
	res, err := h.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res.Release()
	if !r.Evict("mlp") {
		t.Fatal("Evict reported model absent")
	}
	if r.Evict("mlp") {
		t.Fatal("second Evict reported success")
	}
	if _, err := r.Resolve("mlp"); !errors.Is(err, dnnfusion.ErrUnknownModel) {
		t.Fatalf("Resolve after evict = %v, want ErrUnknownModel", err)
	}
	if _, err := h.Run(context.Background(), req); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after evict = %v, want ErrClosed", err)
	}
}

// TestRegistryEvictRaceNeverStrands races eviction against a burst of
// concurrent Run calls: every request must resolve (result or error —
// ErrClosed from the drain, or an admission-control shed when the burst
// outruns the tiny queue), never hang in a queue no dispatcher reads. A
// regression here deadlocks the test.
func TestRegistryEvictRaceNeverStrands(t *testing.T) {
	for round := 0; round < 5; round++ {
		r := NewRegistry()
		h, err := r.Register("mlp", compileMicro(t, models.MicroMLP), Config{MaxBatch: 2, Queue: 2})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := h.Model()
		req := microRequest(t, m, uint64(round))
		var wg sync.WaitGroup
		for c := 0; c < 6; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := h.Run(context.Background(), req)
				if err == nil {
					res.Release()
				} else if !errors.Is(err, ErrClosed) && !errors.Is(err, dnnfusion.ErrOverloaded) {
					t.Errorf("unexpected error: %v", err)
				}
			}()
		}
		r.Evict("mlp")
		wg.Wait() // must not hang
	}
}
