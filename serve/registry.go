// Package serve is the serving subsystem over the dnnfusion compiler: a
// concurrency-safe model repository (Registry) keyed by model name, a
// per-model dynamic batcher that coalesces concurrent single-request Run
// calls into batched executions over a batch-compiled model variant, and an
// HTTP front-end (Server) exposing the repository as JSON endpoints.
//
// The layering mirrors production model servers: Registry owns Hosts; a
// Host owns one model (possibly lazily built), its batch-capacity variant,
// a dispatcher goroutine that forms batches under MaxBatch/MaxDelay, and
// per-model serving counters; Server translates HTTP to Host calls and the
// package's error taxonomy to status codes. Batching is semantically
// invisible — batched outputs are bit-identical to sequential Runner.Run
// calls, enforced at registration by a parity self-check — and models whose
// graphs do not admit a leading batch axis transparently fall back to
// per-request execution.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dnnfusion"

	"dnnfusion/internal/obs"
)

// ErrClosed reports a request against an evicted (closed) host.
var ErrClosed = errors.New("serve: model host closed")

// ErrSaturated reports a request rejected by the registry-wide in-flight
// ceiling (SetMaxInFlight): the whole server, not just one model's queue,
// is at capacity. It wraps dnnfusion.ErrOverloaded, so callers that treat
// all shedding alike can errors.Is against the one sentinel; HTTP layers
// distinguish the two (queue-full → 429, ceiling → 503).
var ErrSaturated = fmt.Errorf("serve: too many in-flight requests: %w", dnnfusion.ErrOverloaded)

// Config tunes one model's serving behavior. The zero value serves with
// dynamic batching at the default capacity and delay.
type Config struct {
	// MaxBatch is the batch capacity: up to MaxBatch concurrent requests
	// coalesce into one batched execution. 0 means DefaultMaxBatch; 1
	// disables coalescing (every request executes individually).
	MaxBatch int
	// MaxDelay bounds how long the first request of a forming batch waits
	// for peers before the batch executes anyway. 0 means DefaultMaxDelay;
	// negative disables waiting (a batch is whatever is already queued).
	MaxDelay time.Duration
	// MaxDelayCeiling enables adaptive batching. When > 0, the coalescing
	// wait becomes a control signal instead of a constant: the dispatcher
	// tracks an EWMA of the queue depth it observes at each batch
	// formation and scales the wait between 0 and this ceiling — growing
	// it while the queue is deep (amortize dispatch over bigger batches)
	// and cutting it toward zero when idle (minimize p50). MaxDelay seeds
	// the initial wait. 0 keeps MaxDelay fixed (the pre-adaptive
	// behavior); a ceiling below MaxDelay is raised to MaxDelay.
	MaxDelayCeiling time.Duration
	// Queue is the pending-request buffer size; 0 means 4×MaxBatch. A
	// full queue sheds: Host.Run fails fast wrapping
	// dnnfusion.ErrOverloaded instead of queueing unboundedly or
	// blocking.
	Queue int
	// DisableBatching serves strictly per-request even when the model
	// admits a batch axis.
	DisableBatching bool
	// DisableParityCheck skips the registration-time check that one
	// batched run is bit-identical to sequential runs. Leave it on: it is
	// the guard against models that pass the structural batch check but
	// mix rows semantically (e.g. a Softmax over axis 0).
	DisableParityCheck bool
	// Prewarm binds the serving arenas when the model is built instead of
	// on the first request.
	Prewarm bool
}

// Serving defaults.
const (
	DefaultMaxBatch = 8
	DefaultMaxDelay = 500 * time.Microsecond
)

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 1
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = DefaultMaxDelay
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.MaxBatch
	}
	if c.MaxDelayCeiling > 0 && c.MaxDelayCeiling < c.MaxDelay {
		c.MaxDelayCeiling = c.MaxDelay
	}
	return c
}

// inflight is the registry-wide concurrent-request limiter shared by every
// host: a ceiling on requests between admission and response, across all
// models, so total queued+executing work is bounded before memory is.
// Rejections count on the registry's obs counter (the 503 path's source of
// truth for /healthz and /metrics alike).
type inflight struct {
	max      atomic.Int64
	cur      atomic.Int64
	rejected *obs.Counter
}

// acquire claims one in-flight slot; false means the ceiling is reached
// and the request must be shed. A ceiling of 0 or below admits everything
// (depth is still tracked for observability).
func (l *inflight) acquire() bool {
	cur := l.cur.Add(1)
	if m := l.max.Load(); m > 0 && cur > m {
		l.cur.Add(-1)
		l.rejected.Add(1)
		return false
	}
	return true
}

func (l *inflight) release() { l.cur.Add(-1) }

// Registry is the model repository: named, concurrency-safe, holding
// compiled models and lazy builders. Resolve misses wrap
// dnnfusion.ErrUnknownModel so HTTP layers map them with errors.Is.
type Registry struct {
	mu    sync.RWMutex
	hosts map[string]*Host
	// obs is the repository's metric registry — the single source of truth
	// for every serving counter. /healthz, /v1/models, and /metrics all
	// read through it.
	obs *obs.Registry
	// buildFails counts lazy builders that failed (import or compile
	// errors), across all hosts ever registered. Surfaced on /healthz so a
	// bad file in a -models directory is visible without hitting the model.
	buildFails *obs.Counter
	// limiter is the registry-wide in-flight ceiling every host admits
	// through (SetMaxInFlight; 0 = unlimited).
	limiter inflight
	// disarm balances the obs.Arm taken at construction, exactly once even
	// if Close is called repeatedly.
	disarm sync.Once
}

// BuildFailures reports how many registered builders have failed to
// produce a model (each failed host counts once; failures are sticky).
func (r *Registry) BuildFailures() uint64 { return r.buildFails.Value() }

// SetMaxInFlight caps concurrent requests (queued + executing) across
// every host in the registry; beyond the cap Host.Run fails fast with
// ErrSaturated (503 through the HTTP layer). n <= 0 removes the cap. The
// cap can be changed while serving.
func (r *Registry) SetMaxInFlight(n int) { r.limiter.max.Store(int64(n)) }

// MaxInFlight returns the registry-wide concurrent-request ceiling (0 =
// unlimited).
func (r *Registry) MaxInFlight() int { return int(r.limiter.max.Load()) }

// InFlight reports the requests currently between admission and response,
// across all hosts.
func (r *Registry) InFlight() int { return int(r.limiter.cur.Load()) }

// Saturated counts requests rejected by the in-flight ceiling.
func (r *Registry) Saturated() uint64 { return r.limiter.rejected.Value() }

// NewRegistry creates an empty repository. It owns a metric registry
// (WritePrometheus, Server's /metrics) and arms process-global per-kernel
// profiling for its lifetime — Close disarms — so a serving process
// attributes execution time to kernels by default.
func NewRegistry() *Registry {
	r := &Registry{hosts: make(map[string]*Host), obs: obs.NewRegistry()}
	r.buildFails = r.obs.Counter("dnnf_serve_build_failures_total", helpBuildFails)
	r.limiter.rejected = r.obs.Counter("dnnf_serve_saturated_total", helpSaturated)
	r.obs.GaugeFunc("dnnf_serve_in_flight", helpInFlight,
		func() float64 { return float64(r.limiter.cur.Load()) })
	r.obs.GaugeFunc("dnnf_serve_max_in_flight", helpMaxInFlight,
		func() float64 { return float64(r.limiter.max.Load()) })
	obs.Arm()
	return r
}

// Register adds a compiled model under the given name and returns its
// serving host. Registering an empty name, a nil model, or a name already
// taken is an error.
func (r *Registry) Register(name string, m *dnnfusion.Model, cfg Config) (*Host, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: register %q: nil model", name)
	}
	return r.add(name, &Host{name: name, cfg: cfg.withDefaults(), build: func() (*dnnfusion.Model, error) { return m, nil }})
}

// RegisterBuilder adds a lazily built model: build runs at most once, on
// the first request (or Info call) that needs the model, so a serving
// process can expose a large zoo without compiling every model up front.
func (r *Registry) RegisterBuilder(name string, build func() (*dnnfusion.Model, error), cfg Config) (*Host, error) {
	if build == nil {
		return nil, fmt.Errorf("serve: register %q: nil builder", name)
	}
	return r.add(name, &Host{name: name, cfg: cfg.withDefaults(), build: build})
}

func (r *Registry) add(name string, h *Host) (*Host, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: register: empty model name")
	}
	h.closed = make(chan struct{})
	h.ctx, h.cancel = context.WithCancel(context.Background())
	h.onBuildFail = func() { r.buildFails.Inc() }
	h.limiter = &r.limiter
	h.obs = r.obs
	h.st.init(r.obs, name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.hosts[name]; dup {
		return nil, fmt.Errorf("serve: model %q already registered", name)
	}
	r.hosts[name] = h
	return h, nil
}

// Resolve returns the named model's serving host. Unknown names wrap
// dnnfusion.ErrUnknownModel.
func (r *Registry) Resolve(name string) (*Host, error) {
	r.mu.RLock()
	h, ok := r.hosts[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", dnnfusion.ErrUnknownModel, name)
	}
	return h, nil
}

// Names lists the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.hosts))
	for name := range r.hosts {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Evict removes the named model and shuts its host down: the dispatcher
// stops, pending requests fail with ErrClosed, and the serving arenas are
// dropped. It reports whether the model was registered.
func (r *Registry) Evict(name string) bool {
	r.mu.Lock()
	h, ok := r.hosts[name]
	delete(r.hosts, name)
	r.mu.Unlock()
	if ok {
		h.close()
	}
	return ok
}

// Close evicts every model and disarms the profiling hook armed at
// construction (once, however many times Close runs).
func (r *Registry) Close() {
	for _, name := range r.Names() {
		r.Evict(name)
	}
	r.disarm.Do(obs.Disarm)
}
