package serve

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dnnfusion"

	"dnnfusion/internal/models"
)

// newModelDir writes a directory holding two importable micro models, one
// corrupt .onnx file, and one non-model file that must be ignored.
func newModelDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, mm := range []struct {
		name  string
		build func() *dnnfusion.Graph
	}{
		{"micro-mlp", models.MicroMLP},
		{"micro-head", models.MicroHead},
	} {
		if err := dnnfusion.ExportFile(mm.build(), filepath.Join(dir, mm.name+".onnx")); err != nil {
			t.Fatalf("exporting %s: %v", mm.name, err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "broken.onnx"), []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("ignore me"), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRegisterDir(t *testing.T) {
	r := NewRegistry()
	defer r.Close()
	names, err := r.RegisterDir(newModelDir(t), nil, Config{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"broken", "micro-head", "micro-mlp"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("registered %v, want %v", names, want)
	}
	if got := r.Names(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}

	// Registration is lazy: nothing is loaded yet, nothing has failed yet.
	if n := r.BuildFailures(); n != 0 {
		t.Fatalf("BuildFailures before any request = %d", n)
	}

	// A good model builds on first touch and serves.
	h, err := r.Resolve("micro-mlp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Model(); err != nil {
		t.Fatalf("building micro-mlp: %v", err)
	}

	// The corrupt file fails with the import taxonomy, stickily, and
	// counts exactly once.
	bh, err := r.Resolve("broken")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		_, err := bh.Model()
		if err == nil {
			t.Fatal("broken model built successfully")
		}
		if !errors.Is(err, dnnfusion.ErrImport) {
			t.Fatalf("broken model error %v does not match dnnfusion.ErrImport", err)
		}
		if !strings.Contains(err.Error(), `"broken"`) {
			t.Fatalf("error %v does not name the model", err)
		}
	}
	if n := r.BuildFailures(); n != 1 {
		t.Fatalf("BuildFailures = %d, want 1", n)
	}
}

// TestRegisterDirRoundTripServe drives the full path the -models flag
// uses: exported fixtures on disk, directory registration, HTTP predict.
func TestRegisterDirRoundTripServe(t *testing.T) {
	r := NewRegistry()
	if _, err := r.RegisterDir(newModelDir(t), nil, Config{MaxBatch: 2}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(r))
	defer func() { ts.Close(); r.Close() }()

	// Smoke predict against an imported model (zero-filled declared shapes).
	resp := postJSON(t, ts.URL+"/v1/models/micro-head:predict",
		`{"inputs": {"features": {}}}`, 200)
	outs, ok := resp["outputs"].(map[string]any)
	if !ok || outs["logits"] == nil {
		t.Fatalf("predict response missing outputs.logits: %v", resp)
	}

	// The corrupt model maps to 422 with the model name and root cause in
	// the body.
	errResp := postJSON(t, ts.URL+"/v1/models/broken:predict",
		`{"inputs": {}}`, 422)
	if errResp["model"] != "broken" {
		t.Fatalf("error body missing model name: %v", errResp)
	}
	if cause, _ := errResp["cause"].(string); cause == "" {
		t.Fatalf("error body missing cause: %v", errResp)
	}

	// The failure shows up on /healthz.
	health := getJSON(t, ts.URL+"/healthz", 200)
	if bf, _ := health["build_failures"].(float64); bf != 1 {
		t.Fatalf("healthz build_failures = %v, want 1", health["build_failures"])
	}
}
