package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dnnfusion"
)

// RegisterDir registers every *.onnx file in dir as a lazily built model,
// named after its file (without the extension). Nothing is imported or
// compiled at registration time: each model loads on its first request, so
// a directory of large models boots instantly and pays per-model cost only
// when traffic arrives — and a file that fails to import poisons only its
// own name (the failure is sticky, surfaces through the error taxonomy as
// dnnfusion.ErrImport, and counts in BuildFailures).
//
// compile turns an imported graph into a servable model; nil means
// dnnfusion.Compile with default options. The returned names are sorted.
func (r *Registry) RegisterDir(dir string, compile func(*dnnfusion.Graph) (*dnnfusion.Model, error), cfg Config) ([]string, error) {
	if compile == nil {
		compile = func(g *dnnfusion.Graph) (*dnnfusion.Model, error) {
			return dnnfusion.Compile(g)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: scanning model directory: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.EqualFold(filepath.Ext(e.Name()), ".onnx") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), filepath.Ext(e.Name()))
		path := filepath.Join(dir, e.Name())
		build := func() (*dnnfusion.Model, error) {
			g, err := dnnfusion.ImportFile(path)
			if err != nil {
				return nil, err
			}
			return compile(g)
		}
		if _, err := r.RegisterBuilder(name, build, cfg); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
