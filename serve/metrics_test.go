package serve

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// promFamily is one parsed metric family from a /metrics scrape.
type promFamily struct {
	typ    string
	help   string
	series map[string]float64 // "name{labels}" (or bare name) -> value
	order  []string
}

// parseProm is a minimal Prometheus text-format (0.0.4) parser, strict
// enough to pin the exporter: every sample must belong to a family whose
// # TYPE was declared first, HELP/TYPE must precede samples, values must
// parse as floats, and duplicate series are an error. It exists so the
// /metrics contract is enforced by an in-tree test rather than by whatever
// Prometheus happens to tolerate.
func parseProm(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	fams := map[string]*promFamily{}
	get := func(name string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{series: map[string]float64{}}
			fams[name] = f
		}
		return f
	}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[0] == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			get(parts[0]).help = parts[1]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, parts[1])
			}
			f := get(parts[0])
			if f.typ != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, parts[0])
			}
			if len(f.series) > 0 {
				t.Fatalf("line %d: TYPE for %s after its samples", ln+1, parts[0])
			}
			f.typ = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		// Sample: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: malformed sample: %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: unparsable value %q: %v", ln+1, valStr, err)
		}
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
			}
			name = name[:i]
		}
		fam := promFamilyOf(fams, name)
		if fam == nil {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln+1, key)
		}
		if _, dup := fam.series[key]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, key)
		}
		fam.series[key] = val
		fam.order = append(fam.order, key)
	}
	for name, f := range fams {
		if f.typ == "" {
			t.Fatalf("family %s has samples but no TYPE", name)
		}
		if f.help == "" {
			t.Fatalf("family %s has no HELP", name)
		}
	}
	return fams
}

// promFamilyOf resolves a sample name to its family, accounting for the
// histogram suffixes.
func promFamilyOf(fams map[string]*promFamily, name string) *promFamily {
	if f, ok := fams[name]; ok && f.typ != "" {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if f, okf := fams[base]; okf && f.typ == "histogram" {
			return f
		}
	}
	return nil
}

// checkHistograms verifies every histogram family's internal consistency:
// per label set, buckets are cumulative (nondecreasing in le order, which
// is emission order), the +Inf bucket equals _count, and _sum is finite.
func checkHistograms(t *testing.T, fams map[string]*promFamily) {
	t.Helper()
	for name, f := range fams {
		if f.typ != "histogram" {
			continue
		}
		prev := map[string]float64{} // series prefix (labels minus le) -> last cumulative
		inf := map[string]float64{}
		for _, key := range f.order {
			if !strings.HasPrefix(key, name+"_bucket") {
				continue
			}
			le := labelValue(t, key, "le")
			group := strings.Replace(key, `le="`+le+`"`, "", 1)
			v := f.series[key]
			if v < prev[group] {
				t.Errorf("%s: bucket le=%q count %v below previous %v", key, le, v, prev[group])
			}
			prev[group] = v
			if le == "+Inf" {
				inf[groupLabels(key)] = v
			}
		}
		for _, key := range f.order {
			if !strings.HasPrefix(key, name+"_count") {
				continue
			}
			g := groupLabels(key)
			if got := inf[g]; got != f.series[key] {
				t.Errorf("%s: +Inf bucket %v != _count %v", key, got, f.series[key])
			}
			sumKey := strings.Replace(key, name+"_count", name+"_sum", 1)
			sum, ok := f.series[sumKey]
			if !ok {
				t.Errorf("%s: histogram has _count but no _sum", key)
			}
			if math.IsNaN(sum) || math.IsInf(sum, 0) || sum < 0 {
				t.Errorf("%s = %v, want finite non-negative", sumKey, sum)
			}
		}
	}
}

// labelValue extracts one label's value from a series key.
func labelValue(t *testing.T, key, label string) string {
	t.Helper()
	marker := label + `="`
	i := strings.Index(key, marker)
	if i < 0 {
		t.Fatalf("series %q missing label %q", key, label)
	}
	rest := key[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		t.Fatalf("series %q: unterminated value for %q", key, label)
	}
	return rest[:j]
}

// groupLabels strips the le label from a series key, yielding a stable
// group identity for matching _bucket series against _count/_sum.
func groupLabels(key string) string {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return ""
	}
	labels := strings.Trim(key[i:], "{}")
	var kept []string
	for _, pair := range strings.Split(labels, ",") {
		if pair != "" && !strings.HasPrefix(pair, `le="`) {
			kept = append(kept, pair)
		}
	}
	return strings.Join(kept, ",")
}

func scrape(t *testing.T, url string) (string, map[string]*promFamily) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text/plain; version=0.0.4", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	fams := parseProm(t, text)
	checkHistograms(t, fams)
	return text, fams
}

// TestServerMetricsEndpoint pins the /metrics contract: well-formed
// Prometheus text, the documented families present, counters that agree
// with the traffic actually sent, and monotone growth across scrapes.
func TestServerMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	const predicts = 5
	for i := 0; i < predicts; i++ {
		postJSON(t, ts.URL+"/v1/models/micro-mlp:predict", `{"inputs": {"x": {}}}`, http.StatusOK)
	}
	_, fams := scrape(t, ts.URL)

	for _, want := range []struct{ name, typ string }{
		{"dnnf_serve_requests_total", "counter"},
		{"dnnf_serve_errors_total", "counter"},
		{"dnnf_serve_shed_total", "counter"},
		{"dnnf_serve_expired_total", "counter"},
		{"dnnf_serve_batches_total", "counter"},
		{"dnnf_serve_build_failures_total", "counter"},
		{"dnnf_serve_saturated_total", "counter"},
		{"dnnf_http_requests_total", "counter"},
		{"dnnf_serve_request_seconds", "histogram"},
		{"dnnf_serve_queue_wait_seconds", "histogram"},
		{"dnnf_serve_execute_seconds", "histogram"},
		{"dnnf_serve_batch_size", "histogram"},
		{"dnnf_kernel_execute_seconds", "histogram"},
		{"dnnf_serve_in_flight", "gauge"},
		{"dnnf_serve_queue_depth", "gauge"},
		{"dnnf_compile_stage_seconds", "gauge"},
	} {
		f, ok := fams[want.name]
		if !ok {
			t.Errorf("missing metric family %s", want.name)
			continue
		}
		if f.typ != want.typ {
			t.Errorf("%s type = %s, want %s", want.name, f.typ, want.typ)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	mlpReqs := fams["dnnf_serve_requests_total"].series[`dnnf_serve_requests_total{model="micro-mlp"}`]
	if mlpReqs != predicts {
		t.Errorf("requests_total{micro-mlp} = %v, want %d", mlpReqs, predicts)
	}
	httpOK := fams["dnnf_http_requests_total"].series[`dnnf_http_requests_total{code="200",route="predict"}`]
	if httpOK != predicts {
		t.Errorf(`http_requests_total{predict,200} = %v, want %d`, httpOK, predicts)
	}
	latCount := fams["dnnf_serve_request_seconds"].series[`dnnf_serve_request_seconds_count{model="micro-mlp"}`]
	if latCount != predicts {
		t.Errorf("request_seconds_count{micro-mlp} = %v, want %d", latCount, predicts)
	}
	// The registry arms profiling, so the served runs must have advanced at
	// least one per-kernel histogram for the model.
	var kernelObs float64
	for key, v := range fams["dnnf_kernel_execute_seconds"].series {
		if strings.Contains(key, `_count{`) && strings.Contains(key, `model="micro-mlp"`) {
			kernelObs += v
		}
	}
	if kernelObs == 0 {
		t.Error("dnnf_kernel_execute_seconds never observed for micro-mlp despite armed profiling")
	}

	// Monotone: more traffic never decreases a counter.
	postJSON(t, ts.URL+"/v1/models/micro-mlp:predict", `{"inputs": {"x": {}}}`, http.StatusOK)
	_, fams2 := scrape(t, ts.URL)
	for name, f := range fams {
		if f.typ != "counter" {
			continue
		}
		for key, v := range f.series {
			if v2, ok := fams2[name].series[key]; ok && v2 < v {
				t.Errorf("counter %s went backwards: %v -> %v", key, v, v2)
			}
		}
	}
	if got := fams2["dnnf_serve_requests_total"].series[`dnnf_serve_requests_total{model="micro-mlp"}`]; got != predicts+1 {
		t.Errorf("requests_total{micro-mlp} after one more predict = %v, want %d", got, predicts+1)
	}
}

// TestServerMetricsScrapeUnderLoad hammers :predict from many goroutines
// while concurrently scraping /metrics; every scrape must stay well-formed
// and internally consistent. Run under -race this is also the data-race
// gate for the whole telemetry path.
func TestServerMetricsScrapeUnderLoad(t *testing.T) {
	ts, _ := newTestServer(t)
	const (
		clients   = 4
		perClient = 25
		scrapes   = 20
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(ts.URL+"/v1/models/micro-mlp:predict?trace=1",
					"application/json", strings.NewReader(`{"inputs": {"x": {}}}`))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for i := 0; i < scrapes; i++ {
		scrape(t, ts.URL) // parses and checks consistency each time
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	<-done
	_, fams := scrape(t, ts.URL)
	total := fams["dnnf_serve_requests_total"].series[`dnnf_serve_requests_total{model="micro-mlp"}`]
	if total != clients*perClient {
		t.Errorf("requests_total{micro-mlp} = %v, want %d", total, clients*perClient)
	}
}

// TestServerRequestID pins the request-ID contract: a well-formed client
// X-Request-ID is echoed in the response header and JSON bodies (success
// and error alike), a malformed one is replaced, and an absent one is
// generated — so every 429/503/422 in a client log is attributable.
func TestServerRequestID(t *testing.T) {
	ts, _ := newTestServer(t)
	do := func(id, path, body string) (*http.Response, map[string]any) {
		t.Helper()
		var req *http.Request
		var err error
		if body == "" {
			req, err = http.NewRequest(http.MethodGet, ts.URL+path, nil)
		} else {
			req, err = http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
		}
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set("X-Request-ID", id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding %s: %v", path, err)
		}
		return resp, out
	}

	// Success: client ID echoed in header and body.
	resp, out := do("client-id-1", "/v1/models/micro-mlp:predict", `{"inputs": {"x": {}}}`)
	if resp.Header.Get("X-Request-ID") != "client-id-1" || out["request_id"] != "client-id-1" {
		t.Errorf("client ID not echoed: header=%q body=%v", resp.Header.Get("X-Request-ID"), out["request_id"])
	}

	// Errors across the taxonomy carry the ID in the body too.
	for _, tc := range []struct {
		path, body string
		status     int
	}{
		{"/v1/models/nope:predict", `{"inputs": {}}`, http.StatusNotFound},
		{"/v1/models/micro-mlp:predict", `{"inputs": {"nope": {}}}`, http.StatusBadRequest},
		{"/no/such/path", "", http.StatusNotFound},
	} {
		resp, out := do("err-id-2", tc.path, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s = %d, want %d", tc.path, resp.StatusCode, tc.status)
		}
		if out["request_id"] != "err-id-2" {
			t.Errorf("%s error body request_id = %v, want err-id-2 (body %v)", tc.path, out["request_id"], out)
		}
		if resp.Header.Get("X-Request-ID") != "err-id-2" {
			t.Errorf("%s error header X-Request-ID = %q", tc.path, resp.Header.Get("X-Request-ID"))
		}
	}

	// A header outside the log-safe alphabet is discarded, not echoed.
	resp, out = do(`bad id {with spaces}`, "/v1/models/micro-mlp:predict", `{"inputs": {"x": {}}}`)
	got := resp.Header.Get("X-Request-ID")
	if got == "" || strings.ContainsAny(got, " \n") {
		t.Errorf("malformed client ID echoed or missing: %q", got)
	}
	if out["request_id"] != got {
		t.Errorf("body request_id %v != header %q", out["request_id"], got)
	}

	// No client ID: one is generated, and header == body.
	resp, out = do("", "/v1/models/micro-mlp:predict", `{"inputs": {"x": {}}}`)
	if got := resp.Header.Get("X-Request-ID"); got == "" || out["request_id"] != got {
		t.Errorf("generated ID inconsistent: header=%q body=%v", got, out["request_id"])
	}
}

// TestServerPredictTrace pins the ?trace=1 block: stage names, a plausible
// batch size, and stage times that are non-negative and bounded by the
// total.
func TestServerPredictTrace(t *testing.T) {
	ts, _ := newTestServer(t)
	out := postJSON(t, ts.URL+"/v1/models/micro-mlp:predict?trace=1", `{"inputs": {"x": {}}}`, http.StatusOK)
	tr, ok := out["trace"].(map[string]any)
	if !ok {
		t.Fatalf("response has no trace block: %v", out)
	}
	if bs := tr["batch_size"].(float64); bs < 1 {
		t.Errorf("trace batch_size = %v, want >= 1", bs)
	}
	stages := tr["stages"].([]any)
	want := []string{"admission", "queue_wait", "batch_formation", "execute", "respond"}
	if len(stages) != len(want) {
		t.Fatalf("trace has %d stages, want %d", len(stages), len(want))
	}
	var sum float64
	for i, s := range stages {
		st := s.(map[string]any)
		if st["stage"] != want[i] {
			t.Errorf("stage %d = %v, want %s", i, st["stage"], want[i])
		}
		ns := st["ns"].(float64)
		if ns < 0 {
			t.Errorf("stage %s ns = %v, want >= 0", want[i], ns)
		}
		sum += ns
	}
	if sum == 0 {
		t.Error("all trace stages are zero")
	}

	// Execute time must be a real measurement: positive and below the whole
	// request's wall time is implied by the stage sum bounded heuristically.
	exec := stages[3].(map[string]any)["ns"].(float64)
	if exec <= 0 {
		t.Errorf("trace execute ns = %v, want > 0", exec)
	}

	// Without trace=1 there is no trace block.
	out = postJSON(t, ts.URL+"/v1/models/micro-mlp:predict", `{"inputs": {"x": {}}}`, http.StatusOK)
	if _, has := out["trace"]; has {
		t.Errorf("trace block present without ?trace=1: %v", out)
	}
}

// TestServerPprofGated pins the pprof surface: 404 by default, index and
// profiles served when Server.Pprof is set.
func TestServerPprofGated(t *testing.T) {
	ts, reg := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without opt-in = %d, want 404", resp.StatusCode)
	}

	srv := NewServer(reg)
	srv.Pprof = true
	ts2 := httptest.NewServer(srv)
	t.Cleanup(ts2.Close)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/cmdline"} {
		resp, err := http.Get(ts2.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s with Pprof on = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestHostRunTimeline pins the Timeline surface directly on the host: a
// successful Run reports internally consistent stage timings.
func TestHostRunTimeline(t *testing.T) {
	_, reg := newTestServer(t)
	h, err := reg.Resolve("micro-mlp")
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.Model()
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Run(context.Background(), microRequest(t, m, 11))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	tl := res.Timeline()
	if tl.BatchSize < 1 {
		t.Errorf("Timeline.BatchSize = %d, want >= 1", tl.BatchSize)
	}
	if tl.ExecuteNs <= 0 {
		t.Errorf("Timeline.ExecuteNs = %d, want > 0", tl.ExecuteNs)
	}
	if tl.QueueWaitNs < 0 || tl.BatchFormNs < 0 || tl.AdmissionNs < 0 {
		t.Errorf("negative stage in %+v", tl)
	}
	if tl.TotalNs < tl.ExecuteNs {
		t.Errorf("TotalNs %d < ExecuteNs %d", tl.TotalNs, tl.ExecuteNs)
	}
}
