// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus the design-choice ablations. Each benchmark
// regenerates its experiment end to end (model building, baseline and
// DNNFusion compilation, device simulation) and reports the headline
// quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation and its key numbers in one run.
package dnnfusion_test

import (
	"context"
	"io"
	"math"
	"testing"

	"dnnfusion"

	"dnnfusion/internal/baseline"
	"dnnfusion/internal/bench"
	"dnnfusion/internal/device"
	"dnnfusion/internal/tuner"
)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := bench.NewContext()
		rows := c.Table1()
		b.ReportMetric(rows[0].SpeedGFLOPS, "VGG-GFLOPs/s")
		b.ReportMetric(rows[len(rows)-1].SpeedGFLOPS, "GPT2-GFLOPs/s")
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		groups := bench.Table2()
		total := 0
		for _, g := range groups {
			total += len(g.Operators)
		}
		b.ReportMetric(float64(total), "classified-ops")
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := bench.Table3()
		b.ReportMetric(float64(len(m)*len(m[0])), "cells")
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.Table4()
		var saved int64
		for _, r := range rows {
			saved += r.FLOPsBefore - r.FLOPsAfter
		}
		b.ReportMetric(float64(saved), "FLOPs-saved")
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := bench.NewContext()
		rows := c.Table5()
		var maxRate float64
		for _, r := range rows {
			rate := float64(r.Total) / float64(r.Fused[baseline.DNNF])
			if rate > maxRate {
				maxRate = rate
			}
		}
		b.ReportMetric(maxRate, "max-fusion-rate")
	}
}

func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := bench.NewContext()
		rows := c.Table6()
		var maxSpeedup float64
		for _, r := range rows {
			if s := r.CPU[baseline.OurB] / r.CPU[baseline.DNNF]; s > maxSpeedup {
				maxSpeedup = s
			}
		}
		b.ReportMetric(maxSpeedup, "max-speedup-vs-OurB")
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := bench.NewContext()
		rows := c.Figure6()
		var maxS float64
		for _, r := range rows {
			if r.Speedup > maxS {
				maxS = r.Speedup
			}
		}
		b.ReportMetric(maxS, "max-speedup-vs-TASO")
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := bench.NewContext()
		rows := c.Figure7()
		var gpt2GPU float64
		for _, r := range rows {
			if r.Model == "GPT-2" && r.Device == "GPU" {
				gpt2GPU = r.GRFuseOther
			}
		}
		b.ReportMetric(gpt2GPU, "GPT2-GPU-speedup")
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := bench.NewContext()
		rows := c.Figure8()
		var worst float64
		for _, r := range rows {
			if r.NormVsDNNF > worst {
				worst = r.NormVsDNNF
			}
		}
		b.ReportMetric(worst, "max-MA-vs-DNNF")
	}
}

func BenchmarkFigure9a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := bench.NewContext()
		rows := c.Figure9a()
		for _, r := range rows {
			if r.Framework == baseline.DNNF && r.Device == "CPU" {
				b.ReportMetric(r.UtilizationPct, "DNNF-CPU-util-%")
			}
		}
	}
}

func BenchmarkFigure9b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := bench.NewContext()
		rows := c.Figure9b()
		b.ReportMetric(rows[0].TuningMin, "TVM-tuning-min")
		b.ReportMetric(rows[1].TuningMin+rows[1].ProfilingMin, "DNNF-cold-min")
		b.ReportMetric(rows[2].TuningMin+rows[2].ProfilingMin, "DNNF-warm-min")
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := bench.NewContext()
		rows := c.Figure10()
		b.ReportMetric(float64(len(rows)), "phone-model-framework-points")
	}
}

// --- Ablation benchmarks (DESIGN.md §5) -------------------------------------

func BenchmarkAblationSeedPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := bench.NewContext()
		rows := c.AblationSeedPolicy()
		b.ReportMetric(rows[0].LatencyMs, "minIRS-ms")
		b.ReportMetric(rows[2].LatencyMs, "noseed-ms")
	}
}

func BenchmarkAblationConstraint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := bench.NewContext()
		rows := c.AblationConstraint()
		b.ReportMetric(float64(len(rows)), "configs")
	}
}

func BenchmarkAblationProfileDB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := bench.NewContext()
		rows := c.AblationProfileDB()
		// GPT-2 is where yellow decisions bite (rows come in model pairs).
		b.ReportMetric(rows[4].LatencyMs, "GPT2-profiled-ms")
		b.ReportMetric(rows[5].LatencyMs, "GPT2-optimistic-ms")
	}
}

func BenchmarkAblationLayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := bench.NewContext()
		rows := c.AblationLayout()
		b.ReportMetric(rows[0].LatencyMs, "layout-on-ms")
		b.ReportMetric(rows[1].LatencyMs, "layout-off-ms")
	}
}

func BenchmarkAblationRewrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := bench.NewContext()
		rows := c.AblationRewrite()
		b.ReportMetric(rows[0].LatencyMs, "rewrite-on-ms")
		b.ReportMetric(rows[1].LatencyMs, "rewrite-off-ms")
	}
}

// --- Component micro-benchmarks ----------------------------------------------

func BenchmarkCompileGPT2(b *testing.B) {
	c := bench.NewContext()
	g := c.Model("GPT-2")
	_ = g
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := bench.NewContext()
		ctx.DNNF("GPT-2")
	}
}

func BenchmarkTunerGA(b *testing.B) {
	t := tuner.Task{M: 256, N: 1024, K: 512, Device: device.Snapdragon865CPU()}
	for i := 0; i < b.N; i++ {
		res := tuner.TuneGA(t, tuner.GAOptions{Seed: uint64(i + 1)})
		b.ReportMetric(res.Score, "fitness")
	}
}

func BenchmarkTunerRandom(b *testing.B) {
	t := tuner.Task{M: 256, N: 1024, K: 512, Device: device.Snapdragon865CPU()}
	for i := 0; i < b.N; i++ {
		res := tuner.TuneRandom(t, 192, uint64(i+1))
		b.ReportMetric(res.Score, "fitness")
	}
}

// BenchmarkRunnerParallel is the serving-path smoke benchmark: one Model,
// one Runner per benchmark goroutine (raise parallelism with -cpu), every
// output checked against the reference interpreter to 1e-4. Under -race
// this doubles as proof that concurrent runners share no per-run state.
func BenchmarkRunnerParallel(b *testing.B) {
	g := buildPublicMLP(b)
	model, err := dnnfusion.Compile(g)
	if err != nil {
		b.Fatal(err)
	}
	inputs := map[string]*dnnfusion.Tensor{"x": dnnfusion.Rand(4, 16)}
	want, err := dnnfusion.InterpretNamed(g, inputs)
	if err != nil {
		b.Fatal(err)
	}
	outName := model.OutputNames()[0]
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		runner := model.NewRunner()
		for pb.Next() {
			got, err := runner.Run(ctx, inputs)
			if err != nil {
				b.Error(err)
				return
			}
			out := got[outName]
			for i := range want[outName].Data() {
				if math.Abs(float64(out.Data()[i]-want[outName].Data()[i])) > 1e-4 {
					b.Errorf("parallel runner diverges from interpreter at %d", i)
					return
				}
			}
		}
	})
}

// BenchmarkFullEvaluation regenerates every experiment, as cmd/dnnf-bench
// does, writing to io.Discard.
func BenchmarkFullEvaluation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := bench.NewContext()
		c.PrintAll(io.Discard)
	}
}
