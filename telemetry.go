package dnnfusion

import (
	"dnnfusion/internal/engine"
	"dnnfusion/internal/obs"
)

// EnableProfiling arms process-global telemetry: sessions start timing
// every kernel execution into per-kernel accounting (Model.Profile) and
// latency histograms. The hook follows internal/faultinject's discipline —
// unarmed, the hot path pays one atomic load per run; armed, it pays clock
// reads and atomic updates but still zero allocations, so the warmed
// Runner.Run zero-allocs guarantee holds either way.
//
// Calls nest: profiling stays on until every EnableProfiling has been
// matched by a DisableProfiling. The serve package arms it for the
// lifetime of each serving Registry, so a serving process is profiled by
// default and /metrics carries per-kernel histograms.
func EnableProfiling() { obs.Arm() }

// DisableProfiling undoes one EnableProfiling.
func DisableProfiling() { obs.Disarm() }

// ProfilingEnabled reports whether per-kernel profiling is armed.
func ProfilingEnabled() bool { return obs.Armed() }

// KernelProfile is one compiled kernel's cumulative execution profile,
// accumulated across every Runner of the model while profiling was armed.
type KernelProfile struct {
	// Kernel is the fused kernel's name; Schedule its tuner-selected tile
	// schedule rendered compactly ("rt4/cp128/u4", with "+prod:..." for a
	// chain-fused kernel's producer schedule, or "default").
	Kernel   string `json:"kernel"`
	Schedule string `json:"schedule"`
	// Chain marks a chain-fused (streaming contraction) kernel.
	Chain bool `json:"chain,omitempty"`
	// Lanes is the worker-lane count the kernel executes over.
	Lanes int `json:"lanes"`
	// Runs counts profiled executions; TotalNs their summed wall time;
	// MeanNs the mean per execution (0 when never profiled).
	Runs    uint64  `json:"runs"`
	TotalNs int64   `json:"total_ns"`
	MeanNs  float64 `json:"mean_ns"`
}

// Profile snapshots the model's per-kernel execution profile in execution
// order. Counts accumulate only while profiling is armed (EnableProfiling
// or a live serving Registry); a model that has never run profiled reports
// zero runs for every kernel.
func (m *Model) Profile() []KernelProfile {
	return kernelProfiles(m.Compiled.Profile())
}

func kernelProfiles(eng []engine.KernelProfile) []KernelProfile {
	out := make([]KernelProfile, len(eng))
	for i, p := range eng {
		sched := p.Schedule.String()
		if p.Chain && !p.Producer.Zero() {
			sched += "+prod:" + p.Producer.String()
		}
		kp := KernelProfile{
			Kernel:   p.Kernel,
			Schedule: sched,
			Chain:    p.Chain,
			Lanes:    p.Lanes,
			Runs:     p.Runs,
			TotalNs:  p.TotalNs,
		}
		if p.Runs > 0 {
			kp.MeanNs = float64(p.TotalNs) / float64(p.Runs)
		}
		out[i] = kp
	}
	return out
}

// Profile snapshots the batch-capacity variant's per-kernel profile (the
// kernels a coalesced batch executes), under the same accumulation rules
// as Model.Profile.
func (bm *BatchModel) Profile() []KernelProfile { return bm.m.Profile() }
