package dnnfusion

import (
	"context"
	"fmt"

	"dnnfusion/internal/core"
	"dnnfusion/internal/engine"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/tensor"
)

// Model is a compiled, immutable inference artifact. Compile it once, then
// serve it from any number of goroutines: the hot path is NewRunner — each
// runner owns its per-session execution state, so N runners over one Model
// run inference in parallel with no shared mutable state.
//
// Inputs and outputs are addressed by the names given when the graph was
// built (AddInput names for inputs, the marked value's name for outputs),
// decoupling callers from the compiler's internal graph representation.
//
// Model embeds the internal compiled form, so compiler introspection
// (Kernels, Plan, Stats, Simulate, FusedLayerCount) remains available.
type Model struct {
	*core.Compiled

	inputs     map[string]*graph.Value
	inputNames []string
	outputs    []namedValue
}

type namedValue struct {
	name string
	v    *graph.Value
}

// Compile runs the DNNFusion pipeline over g (the input graph is cloned,
// never mutated) and returns a concurrency-safe Model. With no options it
// runs the full pipeline; see Option for ablations and deployment knobs.
//
// Errors wrap ErrInvalidGraph (g failed validation or has colliding input
// names) or ErrCompile (a pipeline stage failed).
func Compile(g *Graph, opts ...Option) (*Model, error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrInvalidGraph)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidGraph, err)
	}
	if _, err := inputsByName(g); err != nil {
		return nil, err
	}
	cfg := core.Defaults()
	for _, opt := range opts {
		opt(&cfg)
	}
	c, err := core.Compile(g, cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCompile, err)
	}
	// The clone preserves input names, so this cannot fail post-compile.
	byName, err := inputsByName(c.G)
	if err != nil {
		return nil, err
	}
	m := &Model{Compiled: c, inputs: byName}
	for _, in := range c.G.Inputs {
		m.inputNames = append(m.inputNames, in.Name)
	}
	// Output names come from the caller's original graph: rewriting may
	// rebuild producer nodes (renaming their values), but it preserves
	// output positions, so position i of the compiled graph is output i of
	// the original.
	for i, name := range outputNamesOf(g) {
		m.outputs = append(m.outputs, namedValue{name: name, v: c.G.Outputs[i]})
	}
	return m, nil
}

// inputsByName indexes a graph's inputs by their declared names, rejecting
// collisions: the named-I/O API needs every input to be addressable.
func inputsByName(g *Graph) (map[string]*graph.Value, error) {
	byName := make(map[string]*graph.Value, len(g.Inputs))
	for _, in := range g.Inputs {
		if _, dup := byName[in.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate input name %q", ErrInvalidGraph, in.Name)
		}
		byName[in.Name] = in
	}
	return byName, nil
}

// resolveNamedFeeds validates name-keyed inputs against the graph's input
// index and writes the resolved pointer-keyed feeds into dst (cleared
// first). Both the Runner hot path and the reference interpreter share this
// exact validation, so their error behavior cannot drift apart.
func resolveNamedFeeds(inputs map[string]*Tensor, byName map[string]*graph.Value, names []string, dst map[*graph.Value]*tensor.Tensor) error {
	clear(dst)
	for name, t := range inputs {
		v, ok := byName[name]
		if !ok {
			return fmt.Errorf("%w: %q (model inputs: %v)", ErrUnknownInput, name, names)
		}
		if t == nil {
			return fmt.Errorf("%w: %q fed a nil tensor", ErrMissingInput, name)
		}
		if !t.Shape().Equal(v.Shape) {
			return &ShapeError{Input: name, Want: v.Shape.Clone(), Got: t.Shape()}
		}
		dst[v] = t
	}
	for _, name := range names {
		if _, ok := inputs[name]; !ok {
			return fmt.Errorf("%w: %q", ErrMissingInput, name)
		}
	}
	return nil
}

// outputNamesOf assigns the public name of every graph output: the marked
// value's own name, with positional fallbacks for unnamed or colliding
// entries. Fallbacks never collide with explicit names (or each other), so
// every output keeps a distinct key in the result maps.
func outputNamesOf(g *Graph) []string {
	names := make([]string, len(g.Outputs))
	used := make(map[string]bool, len(g.Outputs))
	// First claim the explicit, first-occurrence names ...
	for i, out := range g.Outputs {
		if out.Name != "" && !used[out.Name] {
			used[out.Name] = true
			names[i] = out.Name
		}
	}
	// ... then fill the unnamed and colliding slots with positional
	// fallbacks that dodge everything already claimed.
	for i, name := range names {
		if name != "" {
			continue
		}
		fallback := fmt.Sprintf("output%d", i)
		for n := 0; used[fallback]; n++ {
			fallback = fmt.Sprintf("output%d_%d", i, n)
		}
		used[fallback] = true
		names[i] = fallback
	}
	return names
}

// Name returns the model (graph) name.
func (m *Model) Name() string { return m.Compiled.G.Name }

// InputNames lists the model's input names in declaration order.
func (m *Model) InputNames() []string { return append([]string(nil), m.inputNames...) }

// OutputNames lists the model's output names in declaration order.
func (m *Model) OutputNames() []string {
	out := make([]string, len(m.outputs))
	for i, nv := range m.outputs {
		out[i] = nv.name
	}
	return out
}

// InputShape returns the declared shape of the named input.
func (m *Model) InputShape(name string) (Shape, error) {
	v, ok := m.inputs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (model inputs: %v)", ErrUnknownInput, name, m.inputNames)
	}
	return v.Shape.Clone(), nil
}

// OutputShape returns the shape of the named output, so serving layers can
// publish full I/O specs without running an inference.
func (m *Model) OutputShape(name string) (Shape, error) {
	for _, nv := range m.outputs {
		if nv.name == name {
			return nv.v.Shape.Clone(), nil
		}
	}
	return nil, fmt.Errorf("dnnfusion: unknown output %q (model outputs: %v)", name, m.OutputNames())
}

// PlannedPeakBytes is the activation arena size each Runner (session) pins
// while bound: the peak of the compile-time liveness analysis under buffer
// reuse. Weights are shared across runners and excluded; see Simulate for
// the full memory report.
func (m *Model) PlannedPeakBytes() int64 { return m.Compiled.PlannedPeakBytes() }

// NewRunner creates an independent inference session over the model. The
// Model is shared and read-only; the Runner owns per-session scratch, so
// use one Runner per goroutine (a Runner itself is not safe for concurrent
// use, but any number of Runners run in parallel over one Model).
//
// Creation is cheap; the first Run allocates the runner's planned arena
// (Model.PlannedPeakBytes) and binds the kernels to it, and every Run after
// that performs zero steady-state heap allocations. An idle warmed Runner
// therefore pins its arena — call Release to drop it.
func (m *Model) NewRunner() *Runner {
	return &Runner{
		m:     m,
		sess:  m.Compiled.NewSession(),
		feeds: make(map[*graph.Value]*tensor.Tensor, len(m.inputs)),
	}
}

// Runner is a single-goroutine inference session over a shared Model.
type Runner struct {
	m     *Model
	sess  *engine.Session
	feeds map[*graph.Value]*tensor.Tensor
	// rings double-buffers the result maps so the steady-state Run
	// allocates nothing; parity alternates in lockstep with the session's
	// output double buffer.
	rings  [2]map[string]*Tensor
	parity int
}

// Model returns the compiled model this runner serves.
func (r *Runner) Model() *Model { return r.m }

// Warm binds the runner's arena and kernels without running an inference,
// so a serving process can pay the one-time setup (Model.PlannedPeakBytes
// of arena plus kernel binding) before traffic arrives instead of on the
// first request. Warming a warmed runner is a no-op.
func (r *Runner) Warm() error { return r.sess.Warm() }

// Release drops the runner's arena and bound kernels. The runner stays
// usable — the next Run rebinds transparently — but an idle released runner
// pins no inference memory. Outputs from earlier Runs remain valid.
func (r *Runner) Release() {
	r.sess.Release()
	r.rings = [2]map[string]*Tensor{}
	r.parity = 0
}

// Run executes one inference. inputs maps input names to tensors; every
// model input must be present with its declared shape. Input data is copied
// into the runner's arena, so the caller may reuse fed tensors immediately.
//
// The result maps output names to tensors served from a double buffer: the
// map and tensors returned by one Run remain valid and unchanged through
// the next Run on this runner, and are reused (overwritten) by the one
// after that. Callers that retain outputs longer must Clone the tensors.
//
// Errors wrap ErrUnknownInput, ErrMissingInput, or ErrShapeMismatch (as a
// *ShapeError); a canceled ctx aborts between fused kernels with an error
// matching ctx.Err().
func (r *Runner) Run(ctx context.Context, inputs map[string]*Tensor) (map[string]*Tensor, error) {
	if err := resolveNamedFeeds(inputs, r.m.inputs, r.m.inputNames, r.feeds); err != nil {
		return nil, err
	}
	outs, err := r.sess.Run(ctx, r.feeds)
	if err != nil {
		return nil, err
	}
	results := r.rings[r.parity]
	if results == nil {
		results = make(map[string]*Tensor, len(outs))
		r.rings[r.parity] = results
	}
	for i, nv := range r.m.outputs {
		results[nv.name] = outs[i]
	}
	r.parity = 1 - r.parity
	return results, nil
}
