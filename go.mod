module dnnfusion

go 1.24
