package dnnfusion

import (
	"fmt"
	"os"

	"dnnfusion/internal/onnx"
)

// Import parses a model in the supported ONNX subset and converts it into
// a graph ready for Compile or InterpretNamed. Weights with float32
// payloads become constant values the compiler can fold and plan around;
// initializers that declare dims but carry no payload become shape-only
// weights (fed at run time), matching the in-tree zoo's convention for
// large parameter tensors.
//
// Errors wrap ErrImport; an operator outside the subset additionally
// matches ErrUnsupportedOp and carries an *UnsupportedOpError:
//
//	g, err := dnnfusion.Import(data)
//	var ue *dnnfusion.UnsupportedOpError
//	if errors.As(err, &ue) {
//		log.Printf("cannot load: operator %s at node %s", ue.Op, ue.Node)
//	}
func Import(data []byte) (*Graph, error) {
	return onnx.Import(data)
}

// ImportFile reads path and imports it; see Import.
func ImportFile(path string) (*Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrImport, err)
	}
	g, err := onnx.Import(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// Export serializes a graph as ONNX bytes, the inverse of Import over the
// supported subset: importing the result reproduces the graph, bit-exactly
// for data-carrying weights. It is how the repository generates golden
// import fixtures from the in-tree zoo instead of vendoring binaries.
func Export(g *Graph) ([]byte, error) {
	return onnx.Export(g)
}

// ExportFile exports a graph and writes it to path; see Export.
func ExportFile(g *Graph, path string) error {
	data, err := onnx.Export(g)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
