// Measured-tuning determinism suite over the public API: a warm profile
// database must eliminate measurement entirely (zero measured runs, a
// tuned-plan hit, no schedule misses), structurally identical graphs must
// share one tuned plan via the graph fingerprint, and a weight-shape
// change must miss. The measurement clock is stubbed so the suite is
// deterministic on any machine.
package dnnfusion_test

import (
	"context"
	"math"
	"testing"

	"dnnfusion"

	"dnnfusion/internal/models"
	"dnnfusion/internal/tuner"
)

func compileTuned(t *testing.T, g *dnnfusion.Graph, db *dnnfusion.ProfileDB) *dnnfusion.Model {
	t.Helper()
	m, err := dnnfusion.Compile(g,
		dnnfusion.WithMeasuredTuning(6),
		dnnfusion.WithProfileDB(db),
		dnnfusion.WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMeasuredTuningWarmStart(t *testing.T) {
	tuner.SetClock(tuner.StepClock(1000))
	defer tuner.ResetClock()
	db := dnnfusion.NewProfileDB()

	cold := compileTuned(t, models.MicroMLP(), db)
	if cold.Stats.MeasuredRuns < 1 {
		t.Errorf("cold compile measured %d runs, want >= 1", cold.Stats.MeasuredRuns)
	}
	if cold.Stats.TunedPlanMisses != 1 || cold.Stats.TunedPlanHits != 0 {
		t.Errorf("cold compile plan hits/misses = %d/%d, want 0/1",
			cold.Stats.TunedPlanHits, cold.Stats.TunedPlanMisses)
	}
	if cold.Fingerprint == "" {
		t.Error("cold compile did not record the graph fingerprint")
	}
	if db.PlanLen() != 1 {
		t.Fatalf("database holds %d tuned plans after the cold compile, want 1", db.PlanLen())
	}

	// A fresh build of the same architecture (different graph object,
	// different weight values) warm-starts from the persisted plan with
	// zero measurement — the CI autotune gate's contract.
	warm := compileTuned(t, models.MicroMLP(), db)
	if warm.Stats.MeasuredRuns != 0 {
		t.Errorf("warm compile measured %d runs, want 0", warm.Stats.MeasuredRuns)
	}
	if warm.Stats.TunedPlanHits != 1 || warm.Stats.TunedPlanMisses != 0 {
		t.Errorf("warm compile plan hits/misses = %d/%d, want 1/0",
			warm.Stats.TunedPlanHits, warm.Stats.TunedPlanMisses)
	}
	if warm.Stats.ScheduleMisses != 0 {
		t.Errorf("warm compile reports %d schedule misses, want 0", warm.Stats.ScheduleMisses)
	}
	if warm.Stats.ScheduleLookups == 0 {
		t.Error("warm compile reports no schedule lookups; the plan replay went unrecorded")
	}
	if warm.Fingerprint != cold.Fingerprint {
		t.Errorf("structurally identical graphs fingerprint differently: %s vs %s",
			warm.Fingerprint, cold.Fingerprint)
	}

	// Same plan, same schedules → bit-identical execution.
	in := map[string]*dnnfusion.Tensor{"x": dnnfusion.Rand(16, 64)}
	a, err := cold.NewRunner().Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := warm.NewRunner().Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for name, at := range a {
		ad, bd := at.Data(), b[name].Data()
		for i := range ad {
			if math.Float32bits(ad[i]) != math.Float32bits(bd[i]) {
				t.Fatalf("output %q[%d]: cold %g != warm %g", name, i, ad[i], bd[i])
			}
		}
	}
}

func TestMeasuredTuningFingerprintShapeMiss(t *testing.T) {
	tuner.SetClock(tuner.StepClock(1000))
	defer tuner.ResetClock()
	db := dnnfusion.NewProfileDB()

	mlp := func(hidden int) *dnnfusion.Graph {
		g := dnnfusion.NewGraph("shape-probe")
		x := g.AddInput("x", dnnfusion.ShapeOf(1, 32))
		w := g.AddWeight("w", dnnfusion.Rand(32, hidden))
		g.MarkOutputAs("y", g.Apply1(dnnfusion.Relu(), g.Apply1(dnnfusion.MatMul(), x, w)))
		return g
	}

	narrow := compileTuned(t, mlp(16), db)
	wide := compileTuned(t, mlp(64), db)
	if narrow.Fingerprint == wide.Fingerprint {
		t.Error("changing a weight shape did not change the fingerprint")
	}
	if wide.Stats.TunedPlanHits != 0 || wide.Stats.TunedPlanMisses != 1 {
		t.Errorf("shape change hit the other shape's tuned plan: hits/misses = %d/%d",
			wide.Stats.TunedPlanHits, wide.Stats.TunedPlanMisses)
	}
	if db.PlanLen() != 2 {
		t.Errorf("database holds %d tuned plans, want one per shape (2)", db.PlanLen())
	}
}

func TestMeasuredTuningOffByDefault(t *testing.T) {
	m, err := dnnfusion.Compile(models.MicroMLP(), dnnfusion.WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats.MeasuredRuns != 0 || m.Stats.TunedPlanHits != 0 || m.Stats.TunedPlanMisses != 0 {
		t.Errorf("analytical compile touched the measured path: %+v", m.Stats)
	}
	if m.Fingerprint != "" {
		t.Errorf("analytical compile fingerprinted the graph: %q", m.Fingerprint)
	}
}
