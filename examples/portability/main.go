// Portability example (paper Figure 10): compile once, simulate the same
// plan on all three evaluation handsets, and show that fusion's gains grow
// on older, more resource-constrained phones — the paper's stability
// observation.
package main

import (
	"fmt"
	"log"

	"dnnfusion"
)

func main() {
	for _, modelName := range []string{"YOLO-V4", "GPT-2"} {
		g, err := dnnfusion.BuildModel(modelName)
		if err != nil {
			log.Fatal(err)
		}

		fused, err := dnnfusion.Compile(g)
		if err != nil {
			log.Fatal(err)
		}
		unfused, err := dnnfusion.Compile(g,
			dnnfusion.WithoutRewrite(), dnnfusion.WithoutFusion(), dnnfusion.WithoutBlockOpt())
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s (%d ops -> %d kernels)\n", modelName, len(g.Nodes), fused.FusedLayerCount())
		fmt.Printf("  %-22s %12s %12s %10s\n", "phone", "no-fusion", "DNNFusion", "speedup")
		for _, phone := range dnnfusion.Phones() {
			for _, dev := range []*dnnfusion.Device{phone.CPU, phone.GPU} {
				base, err := unfused.Simulate(dev)
				if err != nil {
					log.Fatal(err)
				}
				opt, err := fused.Simulate(dev)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %-22s %10.0fms %10.0fms %9.2fx\n",
					phone.Name+" "+dev.Kind.String(), base.LatencyMs, opt.LatencyMs,
					base.LatencyMs/opt.LatencyMs)
			}
		}
		fmt.Println()
	}
	fmt.Println("older phones benefit more: fewer kernels and intermediates matter most")
	fmt.Println("where launch overhead is higher and caches are smaller (paper §5.4)")
}
