// Rewriting example: the mathematical-property-based graph rewriting of
// §4.2 in isolation. Builds the exact patterns of Figure 2 / Table 4,
// applies the engine, verifies the numerics are unchanged, and prints the
// FLOPs accounting.
package main

import (
	"context"
	"fmt"
	"log"

	"dnnfusion"
)

func main() {
	// Figure 2(a): Recip(A) ⊙ Recip(A⊙B).
	g := dnnfusion.NewGraph("figure2a")
	a := g.AddInput("A", dnnfusion.ShapeOf(128, 128))
	b := g.AddInput("B", dnnfusion.ShapeOf(128, 128))
	r1 := g.Apply1(dnnfusion.Reciprocal(), a)
	ab := g.Apply1(dnnfusion.Mul(), a, b)
	r2 := g.Apply1(dnnfusion.Reciprocal(), ab)
	out := g.Apply1(dnnfusion.Mul(), r1, r2)
	g.MarkOutput(out)

	fmt.Printf("before rewriting: %d ops, %d FLOPs\n", len(g.Nodes), g.FLOPs())

	// Evaluate the original on a fixed input (positive, away from zero).
	feedA := dnnfusion.Rand(128, 128)
	feedB := dnnfusion.Rand(128, 128)
	for _, t := range []*dnnfusion.Tensor{feedA, feedB} {
		d := t.Data()
		for i := range d {
			d[i] = d[i]*0.45 + 0.55
		}
	}
	inputs := map[string]*dnnfusion.Tensor{"A": feedA, "B": feedB}
	before, err := dnnfusion.InterpretNamed(g, inputs)
	if err != nil {
		log.Fatal(err)
	}

	// Compile with rewriting only (no fusion, no block optimizations),
	// then serve one inference through a Runner.
	model, err := dnnfusion.Compile(g, dnnfusion.WithoutFusion(), dnnfusion.WithoutBlockOpt())
	if err != nil {
		log.Fatal(err)
	}
	st := model.Stats.RewriteStats
	fmt.Printf("after rewriting:  %d ops, %d FLOPs (%d rules applied)\n",
		st.NodesAfter, st.FLOPsAfter, st.Applied)
	for rule, n := range st.ByRule {
		fmt.Printf("  %-28s x%d\n", rule, n)
	}

	after, err := model.NewRunner().Run(context.Background(), inputs)
	if err != nil {
		log.Fatal(err)
	}
	outName := model.OutputNames()[0]
	var maxDiff float64
	for i := range before[outName].Data() {
		d := float64(before[outName].Data()[i] - after[outName].Data()[i])
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("numeric check: max |before-after| = %.2g (semantics preserved)\n", maxDiff)

	// The rewritten graph in Graphviz form, for the curious.
	fmt.Println("\nrewritten graph (DOT):")
	fmt.Println(model.G.DOT())
}
