// Quickstart: build a small MLP, compile it with DNNFusion, check the fused
// execution against the reference interpreter, and inspect the fusion plan,
// the generated kernel source, and the simulated mobile latency.
package main

import (
	"fmt"
	"log"

	"dnnfusion"
)

func main() {
	// 1. Build a graph: MatMul -> Add(bias) -> Relu -> MatMul -> Softmax.
	g := dnnfusion.NewGraph("quickstart-mlp")
	x := g.AddInput("x", dnnfusion.ShapeOf(8, 32))
	w1 := g.AddWeight("w1", dnnfusion.Rand(32, 64))
	b1 := g.AddWeight("b1", dnnfusion.Rand(64))
	h := g.Apply1(dnnfusion.MatMul(), x, w1)
	h = g.Apply1(dnnfusion.Add(), h, b1)
	h = g.Apply1(dnnfusion.Relu(), h)
	w2 := g.AddWeight("w2", dnnfusion.Rand(64, 10))
	out := g.Apply1(dnnfusion.MatMul(), h, w2)
	out = g.Apply1(dnnfusion.Softmax(-1), out)
	g.MarkOutput(out)

	// 2. Compile with the full pipeline.
	compiled, err := dnnfusion.Compile(g, dnnfusion.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("operators: %d  ->  fused kernels: %d\n", len(g.Nodes), compiled.FusedLayerCount())
	for _, k := range compiled.Kernels {
		fmt.Printf("  kernel %s: %d ops, %d FLOPs, layout %s\n", k.Name, k.OpCount, k.FLOPs, k.Layout)
	}

	// 3. Run it and verify against the unfused reference.
	input := dnnfusion.Rand(8, 32)
	got, err := compiled.RunInputs(input)
	if err != nil {
		log.Fatal(err)
	}
	want, err := dnnfusion.Interpret(g, map[*dnnfusion.Value]*dnnfusion.Tensor{g.Inputs[0]: input})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fused output[0][0..3]     = %.4f %.4f %.4f\n",
		got[0].At(0, 0), got[0].At(0, 1), got[0].At(0, 2))
	fmt.Printf("reference output[0][0..3] = %.4f %.4f %.4f\n",
		want[0].At(0, 0), want[0].At(0, 1), want[0].At(0, 2))

	// 4. Show the generated source of the biggest fused kernel.
	var biggest int
	for i, k := range compiled.Kernels {
		if k.OpCount > compiled.Kernels[biggest].OpCount {
			biggest = i
		}
	}
	fmt.Println("\ngenerated CPU kernel for the largest block:")
	fmt.Println(compiled.Kernels[biggest].SourceCPU)

	// 5. Simulate one inference on the phone.
	for _, dev := range []*dnnfusion.Device{dnnfusion.SnapdragonCPU(), dnnfusion.SnapdragonGPU()} {
		rep, err := compiled.Simulate(dev)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %.3f ms (%d kernels, %.0f KB moved, util %.0f%%)\n",
			dev, rep.LatencyMs, rep.Kernels, float64(rep.MemAccessBytes)/1024, rep.UtilizationPct)
	}
}
