// Quickstart: build a small MLP, compile it once into a Model, serve it
// through named-I/O Runners (including several in parallel), check the
// fused execution against the reference interpreter, and inspect the fusion
// plan, the generated kernel source, and the simulated mobile latency.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"dnnfusion"
)

func main() {
	// 1. Build a graph: MatMul -> Add(bias) -> Relu -> MatMul -> Softmax.
	g := dnnfusion.NewGraph("quickstart-mlp")
	x := g.AddInput("x", dnnfusion.ShapeOf(8, 32))
	w1 := g.AddWeight("w1", dnnfusion.Rand(32, 64))
	b1 := g.AddWeight("b1", dnnfusion.Rand(64))
	h := g.Apply1(dnnfusion.MatMul(), x, w1)
	h = g.Apply1(dnnfusion.Add(), h, b1)
	h = g.Apply1(dnnfusion.Relu(), h)
	w2 := g.AddWeight("w2", dnnfusion.Rand(64, 10))
	out := g.Apply1(dnnfusion.MatMul(), h, w2)
	out = g.Apply1(dnnfusion.Softmax(-1), out)
	g.MarkOutputAs("probs", out)

	// 2. Compile once with the full pipeline. The Model is immutable and
	// safe to share across goroutines.
	model, err := dnnfusion.Compile(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %q: inputs %v -> outputs %v\n", model.Name(), model.InputNames(), model.OutputNames())
	fmt.Printf("operators: %d  ->  fused kernels: %d\n", len(g.Nodes), model.FusedLayerCount())
	for _, k := range model.Kernels {
		fmt.Printf("  kernel %s: %d ops, %d FLOPs, layout %s\n", k.Name, k.OpCount, k.FLOPs, k.Layout)
	}

	// 3. Serve it: one Runner per goroutine, inputs and outputs by name.
	ctx := context.Background()
	input := dnnfusion.Rand(8, 32)
	outName := model.OutputNames()[0]

	runner := model.NewRunner()
	got, err := runner.Run(ctx, map[string]*dnnfusion.Tensor{"x": input})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Verify against the unfused reference interpreter.
	want, err := dnnfusion.InterpretNamed(g, map[string]*dnnfusion.Tensor{"x": input})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fused output[0][0..3]     = %.4f %.4f %.4f\n",
		got[outName].At(0, 0), got[outName].At(0, 1), got[outName].At(0, 2))
	fmt.Printf("reference output[0][0..3] = %.4f %.4f %.4f\n",
		want[outName].At(0, 0), want[outName].At(0, 1), want[outName].At(0, 2))

	// 5. Parallel serving: four goroutines, each with its own Runner over
	// the one shared Model.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := model.NewRunner()
			if _, err := r.Run(ctx, map[string]*dnnfusion.Tensor{"x": input}); err != nil {
				log.Printf("runner %d: %v", id, err)
			}
		}(i)
	}
	wg.Wait()
	fmt.Println("4 concurrent runners served over one compiled model")

	// 6. Show the generated source of the biggest fused kernel.
	var biggest int
	for i, k := range model.Kernels {
		if k.OpCount > model.Kernels[biggest].OpCount {
			biggest = i
		}
	}
	fmt.Println("\ngenerated CPU kernel for the largest block:")
	fmt.Println(model.Kernels[biggest].SourceCPU)

	// 7. Simulate one inference on the phone.
	for _, dev := range []*dnnfusion.Device{dnnfusion.SnapdragonCPU(), dnnfusion.SnapdragonGPU()} {
		rep, err := model.Simulate(dev)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %.3f ms (%d kernels, %.0f KB moved, util %.0f%%)\n",
			dev, rep.LatencyMs, rep.Kernels, float64(rep.MemAccessBytes)/1024, rep.UtilizationPct)
	}
}
