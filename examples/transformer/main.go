// Transformer example: the workloads that motivate the paper. Compiles the
// six NLP models, showing how graph rewriting shrinks exported graphs and
// how far beyond fixed-pattern fusion DNNFusion's mapping-type analysis
// reaches on extremely deep models, then simulates mobile inference.
package main

import (
	"fmt"
	"log"

	"dnnfusion"
)

func main() {
	nlp := []string{"TinyBERT", "DistilBERT", "ALBERT", "BERT-base", "MobileBERT", "GPT-2"}
	cpu := dnnfusion.SnapdragonCPU()
	gpu := dnnfusion.SnapdragonGPU()

	// Share a profiling database across compilations, as the paper's
	// deployment does (§4.3): later models reuse earlier measurements.
	db := dnnfusion.NewProfileDB()

	fmt.Printf("%-12s %7s %9s %8s %9s %9s %9s\n",
		"model", "layers", "rewrites", "kernels", "rate", "CPU ms", "GPU ms")
	for _, name := range nlp {
		g, err := dnnfusion.BuildModel(name)
		if err != nil {
			log.Fatal(err)
		}
		model, err := dnnfusion.Compile(g,
			dnnfusion.WithDevice(cpu), dnnfusion.WithProfileDB(db))
		if err != nil {
			log.Fatal(err)
		}
		cpuRep, err := model.Simulate(cpu)
		if err != nil {
			log.Fatal(err)
		}
		gpuRep, err := model.Simulate(gpu)
		if err != nil {
			log.Fatal(err)
		}
		rate := float64(len(g.Nodes)) / float64(model.FusedLayerCount())
		fmt.Printf("%-12s %7d %9d %8d %8.1fx %9.0f %9.0f\n",
			name, len(g.Nodes), model.Stats.RewriteApplied,
			model.FusedLayerCount(), rate, cpuRep.LatencyMs, gpuRep.LatencyMs)
	}
	fmt.Printf("\nprofiling database: %d entries accumulated across the six models\n", db.Len())
	fmt.Println("(deep, memory-intensive transformers fuse 5-10x — the paper's headline result)")
}
