// Object-detection example: compiles YOLO-V4 and walks through what the
// compiler did — graph rewriting (BatchNorm folding, Mish-chain cleanups),
// the fusion plan with its mapping-type decisions, kernel-cache reuse, and
// the memory effects fusion has on a mobile GPU.
package main

import (
	"fmt"
	"log"

	"dnnfusion"
)

func main() {
	g, err := dnnfusion.BuildModel("YOLO-V4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("YOLO-V4: %d operators, %.1f GFLOPs, %.0f MB intermediates\n",
		len(g.Nodes), float64(g.FLOPs())/1e9, float64(g.IntermediateBytes())/1e6)

	compiled, err := dnnfusion.Compile(g, dnnfusion.WithDevice(dnnfusion.SnapdragonCPU()))
	if err != nil {
		log.Fatal(err)
	}
	st := compiled.Stats
	fmt.Printf("graph rewriting: %d applications (%d -> %d operators)\n",
		st.RewriteApplied, st.RewriteStats.NodesBefore, st.RewriteStats.NodesAfter)
	fmt.Printf("  by category: %v\n", st.RewriteStats.ByCategory)
	fmt.Printf("fusion: %d kernels (%.1fx rate), %d green + %d yellow fusions, %d profile lookups\n",
		compiled.FusedLayerCount(),
		float64(st.RewriteStats.NodesAfter)/float64(compiled.FusedLayerCount()),
		compiled.Plan.GreenFusions, compiled.Plan.YellowFusions, compiled.Plan.ProfileQueries)

	// Largest fused blocks.
	fmt.Println("\nlargest fused blocks:")
	printed := 0
	for _, k := range compiled.Kernels {
		if k.OpCount >= 8 && printed < 5 {
			fmt.Printf("  %s (%d ops, %s, dominant %s)\n", k.Block, k.OpCount, k.Layout, k.DominantOp)
			printed++
		}
	}

	// Fusion eliminates intermediate materialization: compare unfused vs
	// fused memory traffic and latency on both devices.
	for _, dev := range []*dnnfusion.Device{dnnfusion.SnapdragonCPU(), dnnfusion.SnapdragonGPU()} {
		rep, err := compiled.Simulate(dev)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %.0f ms\n", dev, rep.LatencyMs)
		fmt.Printf("  memory accesses %.0f MB, peak memory %.0f MB, util %.0f%%\n",
			float64(rep.MemAccessBytes)/1e6, float64(rep.PeakMemBytes)/1e6, rep.UtilizationPct)
		for lvl, misses := range rep.CacheMisses {
			fmt.Printf("  %s misses: %dK\n", lvl, misses/1000)
		}
	}
}
