// Batching parity suite: a coalesced batch must be semantically invisible.
// For every batchable micro model, the outputs of one BatchRunner.RunBatch
// over N requests are pinned bit-identical to N independent Runner.Run
// calls on the base model — at one worker lane and at eight — for full and
// partial batches. The suite also pins the zero-allocation contract of the
// batched hot path and the ErrNotBatchable taxonomy.
package dnnfusion_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"dnnfusion"

	"dnnfusion/internal/models"
)

// batchableMicros lists the micro models that admit a leading batch axis.
// micro-attention is deliberately absent: its rank-2 self-attention mixes
// rows, and CompileBatch must reject it (TestCompileBatchRejectsAttention).
var batchableMicros = []struct {
	Name  string
	Build func() *dnnfusion.Graph
}{
	{"micro-cnn", models.MicroCNN},
	{"micro-mlp", models.MicroMLP},
	{"micro-elementwise", models.MicroElementwise},
	{"micro-head", models.MicroHead},
}

// microInputs builds one request's named random feeds for a model,
// deterministically varied by seed so every request in a batch differs.
func microInputs(tb testing.TB, m *dnnfusion.Model, seed uint64) map[string]*dnnfusion.Tensor {
	tb.Helper()
	in := map[string]*dnnfusion.Tensor{}
	for i, name := range m.InputNames() {
		shape, err := m.InputShape(name)
		if err != nil {
			tb.Fatal(err)
		}
		in[name] = dnnfusion.NewTensor(shape...).Rand(seed*97 + uint64(i))
	}
	return in
}

func TestBatchingParityBitExact(t *testing.T) {
	const capacity = 8
	for _, spec := range batchableMicros {
		for _, threads := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/threads=%d", spec.Name, threads), func(t *testing.T) {
				model, err := dnnfusion.Compile(spec.Build(), dnnfusion.WithThreads(threads))
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				bm, err := model.CompileBatch(capacity)
				if err != nil {
					t.Fatalf("CompileBatch: %v", err)
				}
				ctx := context.Background()
				runner := model.NewRunner()
				br := bm.NewRunner()
				for _, n := range []int{capacity, 3, 1} {
					reqs := make([]map[string]*dnnfusion.Tensor, n)
					for i := range reqs {
						reqs[i] = microInputs(t, model, uint64(n*100+i))
					}
					got, err := br.RunBatch(ctx, reqs)
					if err != nil {
						t.Fatalf("RunBatch(%d): %v", n, err)
					}
					if len(got) != n {
						t.Fatalf("RunBatch(%d) returned %d results", n, len(got))
					}
					for i, req := range reqs {
						want, err := runner.Run(ctx, req)
						if err != nil {
							t.Fatalf("sequential run %d: %v", i, err)
						}
						for name, w := range want {
							g, ok := got[i][name]
							if !ok {
								t.Fatalf("request %d missing output %q", i, name)
							}
							if !g.Shape().Equal(w.Shape()) {
								t.Fatalf("request %d output %q shape %v, want %v", i, name, g.Shape(), w.Shape())
							}
							gd, wd := g.Data(), w.Data()
							for k := range wd {
								if gd[k] != wd[k] {
									t.Fatalf("batch of %d, request %d, output %q element %d: batched %v != sequential %v (must be bit-identical)",
										n, i, name, k, gd[k], wd[k])
								}
							}
						}
						// The comparison above consumed `want` before the next
						// sequential Run recycles the runner's double buffer.
					}
				}
			})
		}
	}
}

func TestCompileBatchRejectsAttention(t *testing.T) {
	model, err := dnnfusion.Compile(models.MicroAttention())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	_, err = model.CompileBatch(8)
	if err == nil {
		t.Fatal("micro-attention must not be batchable (its transpose moves the leading axis)")
	}
	if !errors.Is(err, dnnfusion.ErrNotBatchable) {
		t.Fatalf("error %v does not wrap ErrNotBatchable", err)
	}
}

func TestCompileBatchMetadata(t *testing.T) {
	model, err := dnnfusion.Compile(models.MicroMLP())
	if err != nil {
		t.Fatal(err)
	}
	bm, err := model.CompileBatch(4)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Batch() != 4 || bm.Base() != model {
		t.Fatalf("Batch()=%d Base()==model=%v", bm.Batch(), bm.Base() == model)
	}
	shape, err := bm.Model().InputShape("x")
	if err != nil {
		t.Fatal(err)
	}
	baseShape, _ := model.InputShape("x")
	if shape[0] != 4*baseShape[0] {
		t.Fatalf("batch input leading dim %d, want %d", shape[0], 4*baseShape[0])
	}
	if got, want := bm.Model().OutputNames(), model.OutputNames(); len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("batch output names %v, want %v", got, want)
	}
	if bm.PlannedPeakBytes() <= model.PlannedPeakBytes() {
		t.Fatalf("batch arena %d bytes not larger than base %d", bm.PlannedPeakBytes(), model.PlannedPeakBytes())
	}
	if _, err := model.CompileBatch(0); !errors.Is(err, dnnfusion.ErrNotBatchable) {
		t.Fatalf("CompileBatch(0) = %v, want ErrNotBatchable", err)
	}
}

func TestBatchRunnerErrorTaxonomy(t *testing.T) {
	model, err := dnnfusion.Compile(models.MicroMLP())
	if err != nil {
		t.Fatal(err)
	}
	bm, err := model.CompileBatch(2)
	if err != nil {
		t.Fatal(err)
	}
	br := bm.NewRunner()
	ctx := context.Background()
	ok := microInputs(t, model, 1)

	if _, err := br.RunBatch(ctx, nil); !errors.Is(err, dnnfusion.ErrMissingInput) {
		t.Errorf("empty batch: %v, want ErrMissingInput", err)
	}
	over := []map[string]*dnnfusion.Tensor{ok, ok, ok}
	if _, err := br.RunBatch(ctx, over); err == nil {
		t.Error("over-capacity batch accepted")
	}
	if _, err := br.RunBatch(ctx, []map[string]*dnnfusion.Tensor{{"nope": dnnfusion.Rand(1)}}); !errors.Is(err, dnnfusion.ErrUnknownInput) {
		t.Errorf("unknown input: %v, want ErrUnknownInput", err)
	}
	if _, err := br.RunBatch(ctx, []map[string]*dnnfusion.Tensor{{}}); !errors.Is(err, dnnfusion.ErrMissingInput) {
		t.Errorf("missing input: %v, want ErrMissingInput", err)
	}
	var se *dnnfusion.ShapeError
	_, err = br.RunBatch(ctx, []map[string]*dnnfusion.Tensor{{"x": dnnfusion.Rand(2, 2)}})
	if !errors.As(err, &se) {
		t.Errorf("bad shape: %v, want *ShapeError", err)
	} else if se.Input != "x" {
		t.Errorf("ShapeError names input %q, want x", se.Input)
	}
}

// TestBatchRunnerZeroAllocSteadyState pins the acceptance claim: warmed
// batched serving adds zero allocations per batch in the execution hot
// path, for full and partial batches.
func TestBatchRunnerZeroAllocSteadyState(t *testing.T) {
	model, err := dnnfusion.Compile(models.MicroMLP())
	if err != nil {
		t.Fatal(err)
	}
	bm, err := model.CompileBatch(4)
	if err != nil {
		t.Fatal(err)
	}
	br := bm.NewRunner()
	ctx := context.Background()
	reqs := make([]map[string]*dnnfusion.Tensor, 4)
	for i := range reqs {
		reqs[i] = microInputs(t, model, uint64(40+i))
	}
	// Two warmup rounds materialize both output ring view sets.
	for i := 0; i < 2; i++ {
		if _, err := br.RunBatch(ctx, reqs); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := br.RunBatch(ctx, reqs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warmed RunBatch allocates %.2f times per batch, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if _, err := br.RunBatch(ctx, reqs[:2]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warmed partial RunBatch allocates %.2f times per batch, want 0", allocs)
	}
}

// TestBatchRunnerOutputDoubleBuffer pins the documented ownership
// contract: one RunBatch's outputs survive the next RunBatch unchanged and
// are recycled by the one after.
func TestBatchRunnerOutputDoubleBuffer(t *testing.T) {
	model, err := dnnfusion.Compile(models.MicroMLP())
	if err != nil {
		t.Fatal(err)
	}
	bm, err := model.CompileBatch(2)
	if err != nil {
		t.Fatal(err)
	}
	br := bm.NewRunner()
	ctx := context.Background()
	reqA := []map[string]*dnnfusion.Tensor{microInputs(t, model, 1), microInputs(t, model, 2)}
	reqB := []map[string]*dnnfusion.Tensor{microInputs(t, model, 3), microInputs(t, model, 4)}

	first, err := br.RunBatch(ctx, reqA)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := first[0]["y"].Clone()
	if _, err := br.RunBatch(ctx, reqB); err != nil {
		t.Fatal(err)
	}
	for k, w := range snapshot.Data() {
		if first[0]["y"].Data()[k] != w {
			t.Fatalf("output changed under the caller after one subsequent RunBatch (element %d)", k)
		}
	}
	// After Release the runner rebinds and stays correct.
	br.Release()
	again, err := br.RunBatch(ctx, reqA)
	if err != nil {
		t.Fatalf("RunBatch after Release: %v", err)
	}
	for k, w := range snapshot.Data() {
		if again[0]["y"].Data()[k] != w {
			t.Fatalf("post-Release output differs at element %d", k)
		}
	}
}

// TestCompileBatchThreadOverride pins the WithThreads contract: by default
// the variant borrows the base pool; an explicit WithThreads gives it its
// own lane count instead.
func TestCompileBatchThreadOverride(t *testing.T) {
	model, err := dnnfusion.Compile(models.MicroMLP(), dnnfusion.WithThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	bm, err := model.CompileBatch(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := bm.Model().Compiled.SharedPool(); got != model.Compiled.SharedPool() {
		t.Fatal("default CompileBatch does not borrow the base pool")
	}
	single, err := model.CompileBatch(2, dnnfusion.WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := single.Model().Compiled.SharedPool(); got == model.Compiled.SharedPool() {
		t.Fatal("WithThreads(1) override still borrows the base pool")
	}
	if n := single.Model().Compiled.SharedPool().Lanes(); n != 1 {
		t.Fatalf("WithThreads(1) variant has %d lanes, want 1", n)
	}
}
