// Allocation regression suite for the planned-arena execution path: a
// warmed Runner must serve inference with zero steady-state heap
// allocations, outputs must follow the documented double-buffer ownership
// contract, and Release must drop the arena. BenchmarkRunnerAllocs reports
// allocs/op so the number is visible in every -benchmem run (and feeds the
// exec section of dnnf-bench -json).
package dnnfusion_test

import (
	"context"
	"testing"

	"dnnfusion"

	"dnnfusion/internal/models"
)

// The fused CNN under test is models.MicroCNN — the same graph whose
// serving-path numbers dnnf-bench -json records in its exec section, so
// the gated measurement and the recorded baseline cannot drift apart.
func buildAllocCNN(tb testing.TB) *dnnfusion.Graph {
	tb.Helper()
	return models.MicroCNN()
}

func compileAllocCNN(tb testing.TB) (*dnnfusion.Model, map[string]*dnnfusion.Tensor) {
	tb.Helper()
	g := buildAllocCNN(tb)
	model, err := dnnfusion.Compile(g)
	if err != nil {
		tb.Fatal(err)
	}
	if model.FusedLayerCount() >= len(g.Nodes) {
		tb.Fatalf("alloc CNN did not fuse: %d kernels for %d ops", model.FusedLayerCount(), len(g.Nodes))
	}
	return model, map[string]*dnnfusion.Tensor{"image": dnnfusion.Rand(1, 3, 8, 8)}
}

// TestRunnerZeroAllocSteadyState is the acceptance gate: a warmed
// Runner.Run on a fused CNN performs zero steady-state heap allocations.
func TestRunnerZeroAllocSteadyState(t *testing.T) {
	model, inputs := compileAllocCNN(t)
	runner := model.NewRunner()
	ctx := context.Background()
	if _, err := runner.Run(ctx, inputs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := runner.Run(ctx, inputs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warmed Runner.Run allocates %.0f times per inference, want 0", allocs)
	}
	if model.PlannedPeakBytes() <= 0 {
		t.Errorf("PlannedPeakBytes = %d, want > 0", model.PlannedPeakBytes())
	}
}

// TestRunnerZeroAllocSteadyStateThreaded extends the gate to the parallel
// executor: with WithThreads(8) on an output large enough to dispatch
// (micro-elementwise: 262144 elements splits across lanes), the worker
// pool's wake/claim/done cycle and the per-lane Source trees must add
// zero steady-state allocations.
func TestRunnerZeroAllocSteadyStateThreaded(t *testing.T) {
	model, err := dnnfusion.Compile(models.MicroElementwise(), dnnfusion.WithThreads(8))
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]*dnnfusion.Tensor{"x": dnnfusion.Rand(32, 32, 256)}
	runner := model.NewRunner()
	ctx := context.Background()
	// Two warmup runs: the first binds arena + per-lane trees, and the
	// first parallel dispatch lazily starts the pool's workers.
	for i := 0; i < 2; i++ {
		if _, err := runner.Run(ctx, inputs); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := runner.Run(ctx, inputs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warmed threaded Runner.Run allocates %.0f times per inference, want 0", allocs)
	}
}

// TestSessionRunZeroAllocSteadyState proves the same property one layer
// down, through the Compiled session API the Runner wraps.
func TestSessionRunZeroAllocSteadyState(t *testing.T) {
	model, inputs := compileAllocCNN(t)
	sess := model.NewSession()
	feeds := map[*dnnfusion.Value]*dnnfusion.Tensor{model.G.Inputs[0]: inputs["image"]}
	ctx := context.Background()
	if _, err := sess.Run(ctx, feeds); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := sess.Run(ctx, feeds); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warmed Session.Run allocates %.0f times per inference, want 0", allocs)
	}
}

// TestRunnerZeroAllocSteadyStateProfiled extends the gate to the armed
// telemetry path: with per-kernel profiling enabled (as every serving
// process runs), a warmed Runner.Run must still perform zero steady-state
// heap allocations — the hooks pay clock reads and atomic updates only.
func TestRunnerZeroAllocSteadyStateProfiled(t *testing.T) {
	model, inputs := compileAllocCNN(t)
	runner := model.NewRunner()
	ctx := context.Background()
	if _, err := runner.Run(ctx, inputs); err != nil {
		t.Fatal(err)
	}
	dnnfusion.EnableProfiling()
	defer dnnfusion.DisableProfiling()
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := runner.Run(ctx, inputs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warmed Runner.Run with profiling armed allocates %.0f times per inference, want 0", allocs)
	}
	var runs uint64
	for _, p := range model.Profile() {
		runs += p.Runs
	}
	if runs == 0 {
		t.Error("profiling armed but no kernel runs recorded")
	}
}

// TestRunnerOutputsSurviveNextRun pins the public ownership contract:
// copy-out means the outputs of one Run remain valid and unchanged after
// the next Run on the same runner, even though no allocation happened.
func TestRunnerOutputsSurviveNextRun(t *testing.T) {
	model, inputs := compileAllocCNN(t)
	runner := model.NewRunner()
	ctx := context.Background()

	first, err := runner.Run(ctx, inputs)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float32(nil), first["probs"].Data()...)

	alt := dnnfusion.NewTensor(1, 3, 8, 8)
	alt.Fill(0.25)
	second, err := runner.Run(ctx, map[string]*dnnfusion.Tensor{"image": alt})
	if err != nil {
		t.Fatal(err)
	}
	if first["probs"] == second["probs"] {
		t.Fatal("consecutive Runs returned the same output tensor")
	}
	for i, v := range first["probs"].Data() {
		if v != want[i] {
			t.Fatalf("output changed after the next Run at %d: %g != %g", i, v, want[i])
		}
	}
	// Interpreter agreement: the zero-alloc path must stay numerically
	// identical to the reference semantics.
	ref, err := dnnfusion.InterpretNamed(buildAllocCNN(t), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ref["probs"].Data() {
		if d := float64(v - want[i]); d > 1e-4 || d < -1e-4 {
			t.Fatalf("arena output diverges from interpreter at %d", i)
		}
	}
}

// TestRunnerRelease pins the idle-memory contract at the public layer.
func TestRunnerRelease(t *testing.T) {
	model, inputs := compileAllocCNN(t)
	runner := model.NewRunner()
	ctx := context.Background()
	first, err := runner.Run(ctx, inputs)
	if err != nil {
		t.Fatal(err)
	}
	keep := append([]float32(nil), first["probs"].Data()...)
	runner.Release()
	again, err := runner.Run(ctx, inputs) // rebinds transparently
	if err != nil {
		t.Fatalf("run after Release: %v", err)
	}
	for i, v := range again["probs"].Data() {
		if v != keep[i] {
			t.Fatalf("post-Release run diverges at %d", i)
		}
	}
}

// BenchmarkRunnerAllocs is the perf-trajectory benchmark for the serving
// hot path: run with -benchmem (ReportAllocs makes it unconditional) to see
// ns/op, B/op, and allocs/op for a warmed Runner on the fused CNN. The
// same measurement backs the exec section of dnnf-bench -json.
func BenchmarkRunnerAllocs(b *testing.B) {
	model, inputs := compileAllocCNN(b)
	runner := model.NewRunner()
	ctx := context.Background()
	if _, err := runner.Run(ctx, inputs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(ctx, inputs); err != nil {
			b.Fatal(err)
		}
	}
}
