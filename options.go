package dnnfusion

import (
	"dnnfusion/internal/codegen"
	"dnnfusion/internal/core"
	"dnnfusion/internal/fusion"
)

// Option configures Compile. The zero configuration (no options) is the
// full DNNFusion pipeline — graph rewriting, profile-driven fusion, and the
// intra-/inter-block optimizations — so options only ever *narrow* or
// *parameterize* it: ablations switch passes off, deployments plug in a
// device profile, a profiling database, or a shared kernel cache.
type Option func(*core.Options)

// WithDevice resolves yellow fusion decisions against the device's cost
// model (§4.3) instead of accepting them optimistically.
func WithDevice(d *Device) Option { return func(o *core.Options) { o.Device = d } }

// WithProfileDB caches yellow-decision measurements across compilations,
// the paper's persistent profiling database. Pair it with WithDevice.
func WithProfileDB(db *ProfileDB) Option { return func(o *core.Options) { o.ProfileDB = db } }

// WithKernelCache shares generated kernel implementations across models:
// structurally identical fusion blocks reuse one emitted kernel.
func WithKernelCache(c *KernelCache) Option { return func(o *core.Options) { o.Cache = c } }

// WithoutRewrite disables the §4.2 mathematical-property-based graph
// rewriting pass (the Figure 7 ablation).
func WithoutRewrite() Option { return func(o *core.Options) { o.GraphRewrite = false } }

// WithoutFusion disables fusion plan exploration; every operator becomes
// its own kernel (the paper's OurB baseline).
func WithoutFusion() Option { return func(o *core.Options) { o.Fusion = false } }

// WithoutBlockOpt disables the §4.4.2 intra-/inter-block optimizations
// (data-movement folding and dominant-operator layout selection).
func WithoutBlockOpt() Option { return func(o *core.Options) { o.OtherOpt = false } }

// WithoutChainFusion disables the contraction-chain post-pass: MatMul/Gemm
// → (pointwise|row-softmax) → MatMul/Gemm chains then compile as separate
// kernels with a materialized intermediate, exactly as before the chain
// kernel existed. Useful to compare peak memory and latency, and to force
// the bit-exact two-pass softmax where the online (flash-attention-style)
// chain is only ULP-accurate.
func WithoutChainFusion() Option { return func(o *core.Options) { o.ChainFusion = false } }

// WithSeedPolicy selects the fusion planner's seed heuristic (§4.3 Step I);
// the default is SeedMinIRS, the paper's choice.
func WithSeedPolicy(p SeedPolicy) Option { return func(o *core.Options) { o.Seeds = p } }

// WithBlockLimits constrains fusion blocks to at most maxOps operators and
// maxInputs exterior inputs; zero keeps the planner's default for that
// limit.
func WithBlockLimits(maxOps, maxInputs int) Option {
	return func(o *core.Options) {
		o.MaxBlockOps = maxOps
		o.MaxBlockInputs = maxInputs
	}
}

// WithQuality scales simulated kernel efficiency, used to emulate baseline
// frameworks with weaker kernel implementations (1.0 is DNNFusion's own).
func WithQuality(q float64) Option { return func(o *core.Options) { o.Quality = q } }

// WithMeasuredTuning enables measured-feedback autotuning: instead of
// trusting the analytical cache model and the ECG heuristics, Compile
// enumerates candidate fusion plans (chain fusion on/off per detected
// chain, plus the forced-FuseBreak variant), pairs them with the tuner's
// top-k schedule shortlists, and scores the (plan, schedule) pairs with
// short timed runs of the real compiled kernels — at most budget
// measurements, with the analytical model as the pruning prior. Winners
// persist in the configured ProfileDB (format v4, keyed by graph
// fingerprint × device × batch size), so repeat compilations — including
// batch-capacity variants, which tune per formed batch size — warm-start
// with zero measurement. Pair it with WithProfileDB to persist across
// processes (cmd/dnnf-tune pre-tunes offline; dnnf-serve -profile loads
// the result).
//
// Budgets of 8–32 cover the micro models; budget ≤ 0 disables measured
// tuning (the default analytical path, so CI and cold-start compile
// latency are unchanged).
func WithMeasuredTuning(budget int) Option {
	return func(o *core.Options) { o.MeasureBudget = budget }
}

// WithThreads sets the CPU executor's worker-lane count: each kernel's
// output range is split into grain-sized chunks across n lanes drawn from
// one worker pool shared by all of the model's runners. n = 0 (the
// default) uses runtime.GOMAXPROCS; n = 1 disables intra-kernel
// parallelism entirely. Whatever n, a warmed Runner.Run stays
// zero-allocation and outputs keep the documented double-buffer contract.
func WithThreads(n int) Option { return func(o *core.Options) { o.Threads = n } }

// Fusion seed policies for WithSeedPolicy.
const (
	// SeedMinIRS starts from the One-to-One operator with the smallest
	// intermediate result (the paper's policy).
	SeedMinIRS = fusion.SeedMinIRS
	// SeedMaxIRS starts from the largest intermediate result (ablation).
	SeedMaxIRS = fusion.SeedMaxIRS
	// SeedNone disables seeding; operators are visited in topo order.
	SeedNone = fusion.SeedNone
)

// KernelCache deduplicates generated kernel code within and across models;
// see WithKernelCache.
type KernelCache = codegen.Cache

// NewKernelCache creates an empty kernel cache.
func NewKernelCache() *KernelCache { return codegen.NewCache() }
