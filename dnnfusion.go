// Package dnnfusion is the public API of the DNNFusion reproduction: an
// operator-fusion compiler for DNN inference (Niu et al., PLDI 2021,
// "DNNFusion: Accelerating Deep Neural Networks Execution with Advanced
// Operator Fusion") together with the substrates its evaluation needs — an
// operator library, a graph IR, a graph-rewriting engine, fusion plan
// exploration, fused-kernel code generation, a mobile-SoC simulator, the
// baseline frameworks it is compared against, and the 15-model zoo.
//
// # Quick start
//
// Build a graph, compile it once into an immutable Model, then serve it
// through per-goroutine Runners with inputs and outputs addressed by name:
//
//	g := dnnfusion.NewGraph("mymodel")
//	x := g.AddInput("x", dnnfusion.ShapeOf(1, 64))
//	w := g.AddWeight("w", dnnfusion.Rand(64, 64))
//	h := g.Apply1(dnnfusion.MatMul(), x, w)
//	g.MarkOutputAs("y", g.Apply1(dnnfusion.Relu(), h))
//
//	model, err := dnnfusion.Compile(g)                 // full pipeline
//	runner := model.NewRunner()                        // one per goroutine
//	outs, err := runner.Run(ctx, map[string]*dnnfusion.Tensor{
//		"x": dnnfusion.Rand(1, 64),
//	})
//	_ = outs["y"]
//	report, err := model.Simulate(dnnfusion.SnapdragonCPU()) // device model
//
// Compile takes functional options — WithDevice, WithProfileDB,
// WithKernelCache for deployment, WithoutRewrite / WithoutFusion /
// WithoutBlockOpt / WithSeedPolicy for the paper's ablations. A Model is
// safe for concurrent use; a Runner owns per-session state and belongs to
// one goroutine at a time. Failures wrap the package's typed errors
// (ErrUnknownInput, ErrShapeMismatch, ErrCompile, ...) for errors.Is/As
// dispatch — see errors.go.
//
// See the examples/ directory for runnable programs and cmd/dnnf-bench for
// the full evaluation harness.
package dnnfusion

import (
	"fmt"

	"dnnfusion/internal/device"
	"dnnfusion/internal/engine"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/models"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/profile"
	"dnnfusion/internal/tensor"
)

// Core graph and tensor types.
type (
	// Graph is a DNN computational graph.
	Graph = graph.Graph
	// Value is a tensor-valued edge of a Graph.
	Value = graph.Value
	// Tensor is a dense float32 tensor.
	Tensor = tensor.Tensor
	// Shape is a tensor shape.
	Shape = tensor.Shape
	// Operator is a DNN operator instance.
	Operator = ops.Operator
	// MappingType is the paper's operator classification (Table 2).
	MappingType = ops.MappingType

	// Report is a simulated-inference report (latency, memory, cache).
	Report = engine.Report
	// Device is a simulated mobile CPU or GPU.
	Device = device.Device
	// ProfileDB is the profiling-result database of §4.3.
	ProfileDB = profile.DB
	// SeedPolicy selects the fusion planner's seed heuristic.
	SeedPolicy = fusion.SeedPolicy
)

// NewGraph creates an empty computational graph.
func NewGraph(name string) *Graph { return graph.New(name) }

// ShapeOf builds a Shape from dimensions.
func ShapeOf(dims ...int) Shape { return tensor.Of(dims...) }

// NewTensor allocates a zero tensor.
func NewTensor(dims ...int) *Tensor { return tensor.New(dims...) }

// Rand allocates a tensor with deterministic pseudo-random values. The seed
// is an FNV-1a hash of the dimensions, so differently shaped tensors get
// different (but reproducible) contents — including transposed shapes like
// Rand(32, 64) versus Rand(64, 32).
func Rand(dims ...int) *Tensor {
	var h uint64 = 14695981039346656037
	for _, d := range dims {
		h ^= uint64(d)
		h *= 1099511628211
	}
	return tensor.New(dims...).Rand(h)
}

// FromSlice wraps data in a tensor of the given shape.
func FromSlice(data []float32, dims ...int) *Tensor { return tensor.FromSlice(data, dims...) }

// NewProfileDB creates an empty profiling database; compile with
// WithProfileDB (and WithDevice) to enable profile-driven yellow decisions
// that persist across compilations.
func NewProfileDB() *ProfileDB { return profile.New() }

// LoadProfileDB reads a database saved with (*ProfileDB).Save.
func LoadProfileDB(path string) (*ProfileDB, error) { return profile.Load(path) }

// Devices.
func SnapdragonCPU() *Device { return device.Snapdragon865CPU() }
func SnapdragonGPU() *Device { return device.Adreno650() }

// Phones returns the paper's three evaluation handsets (Galaxy S20, Galaxy
// S10, Honor Magic 2), each with a CPU and GPU profile.
func Phones() []device.Phone { return device.Phones() }

// BuildModel constructs one of the paper's 15 evaluation models by name
// (see ModelNames). An unrecognized name wraps ErrUnknownModel.
func BuildModel(name string) (*Graph, error) {
	g, err := models.Build(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownModel, err)
	}
	return g, nil
}

// ModelNames lists the evaluation models in Table 5 order.
func ModelNames() []string { return models.Names() }

// InterpretNamed executes a graph with the reference (unfused) operator
// implementations, with inputs and outputs addressed by name exactly like
// Runner.Run — the semantic ground truth fused execution is tested against.
func InterpretNamed(g *Graph, inputs map[string]*Tensor) (map[string]*Tensor, error) {
	byName, err := inputsByName(g)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(g.Inputs))
	for i, in := range g.Inputs {
		names[i] = in.Name
	}
	feeds := make(map[*graph.Value]*tensor.Tensor, len(inputs))
	if err := resolveNamedFeeds(inputs, byName, names, feeds); err != nil {
		return nil, err
	}
	outs, err := graph.InterpretOutputs(g, feeds)
	if err != nil {
		return nil, err
	}
	results := make(map[string]*Tensor, len(outs))
	for i, name := range outputNamesOf(g) {
		results[name] = outs[i]
	}
	return results, nil
}

// Operator constructors (a curated subset; the full set lives in
// internal/ops and is re-exported here as needed by the public examples).
func Add() Operator                    { return ops.NewAdd() }
func Sub() Operator                    { return ops.NewSub() }
func Mul() Operator                    { return ops.NewMul() }
func Div() Operator                    { return ops.NewDiv() }
func Relu() Operator                   { return ops.NewRelu() }
func Sigmoid() Operator                { return ops.NewSigmoid() }
func Tanh() Operator                   { return ops.NewTanh() }
func Exp() Operator                    { return ops.NewExp() }
func Sqrt() Operator                   { return ops.NewSqrt() }
func Reciprocal() Operator             { return ops.NewReciprocal() }
func Square() Operator                 { return ops.NewSquare() }
func MatMul() Operator                 { return ops.NewMatMul() }
func Softmax(axis int) Operator        { return ops.NewSoftmax(axis) }
func Transpose(perm ...int) Operator   { return ops.NewTranspose(perm...) }
func Reshape(dims ...int) Operator     { return ops.NewReshape(dims...) }
func Concat(axis int) Operator         { return ops.NewConcat(axis) }
func Conv(attrs ConvAttrs) Operator    { return ops.NewConv(attrs) }
func MaxPool(attrs PoolAttrs) Operator { return ops.NewMaxPool(attrs) }
func ReduceSum(keepDims bool, axes ...int) Operator {
	return ops.NewReduce(ops.ReduceSum, keepDims, axes...)
}
func ReduceMean(keepDims bool, axes ...int) Operator {
	return ops.NewReduce(ops.ReduceMean, keepDims, axes...)
}
func BatchNormalization(eps float32) Operator { return ops.NewBatchNormalization(eps) }

// ConvAttrs and PoolAttrs configure convolutions and pooling.
type (
	ConvAttrs = ops.ConvAttrs
	PoolAttrs = ops.PoolAttrs
)
