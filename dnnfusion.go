// Package dnnfusion is the public API of the DNNFusion reproduction: an
// operator-fusion compiler for DNN inference (Niu et al., PLDI 2021,
// "DNNFusion: Accelerating Deep Neural Networks Execution with Advanced
// Operator Fusion") together with the substrates its evaluation needs — an
// operator library, a graph IR, a graph-rewriting engine, fusion plan
// exploration, fused-kernel code generation, a mobile-SoC simulator, the
// baseline frameworks it is compared against, and the 15-model zoo.
//
// # Quick start
//
//	g := dnnfusion.NewGraph("mymodel")
//	x := g.AddInput("x", dnnfusion.ShapeOf(1, 64))
//	w := g.AddWeight("w", dnnfusion.Rand(64, 64))
//	h := g.Apply1(dnnfusion.MatMul(), x, w)
//	g.MarkOutput(g.Apply1(dnnfusion.Relu(), h))
//
//	compiled, err := dnnfusion.Compile(g, dnnfusion.DefaultOptions())
//	outs, err := compiled.RunInputs(input)             // numeric execution
//	report, err := compiled.Simulate(dnnfusion.SnapdragonCPU()) // device model
//
// See the examples/ directory for runnable programs and cmd/dnnf-bench for
// the full evaluation harness.
package dnnfusion

import (
	"dnnfusion/internal/core"
	"dnnfusion/internal/device"
	"dnnfusion/internal/engine"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/models"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/profile"
	"dnnfusion/internal/tensor"
)

// Core graph and tensor types.
type (
	// Graph is a DNN computational graph.
	Graph = graph.Graph
	// Value is a tensor-valued edge of a Graph.
	Value = graph.Value
	// Tensor is a dense float32 tensor.
	Tensor = tensor.Tensor
	// Shape is a tensor shape.
	Shape = tensor.Shape
	// Operator is a DNN operator instance.
	Operator = ops.Operator
	// MappingType is the paper's operator classification (Table 2).
	MappingType = ops.MappingType

	// Options configures the compilation pipeline.
	Options = core.Options
	// Compiled is a compiled model: run it numerically or simulate it.
	Compiled = core.Compiled
	// Report is a simulated-inference report (latency, memory, cache).
	Report = engine.Report
	// Device is a simulated mobile CPU or GPU.
	Device = device.Device
	// ProfileDB is the profiling-result database of §4.3.
	ProfileDB = profile.DB
	// SeedPolicy selects the fusion planner's seed heuristic.
	SeedPolicy = fusion.SeedPolicy
)

// NewGraph creates an empty computational graph.
func NewGraph(name string) *Graph { return graph.New(name) }

// ShapeOf builds a Shape from dimensions.
func ShapeOf(dims ...int) Shape { return tensor.Of(dims...) }

// NewTensor allocates a zero tensor.
func NewTensor(dims ...int) *Tensor { return tensor.New(dims...) }

// Rand allocates a tensor with deterministic pseudo-random values.
func Rand(dims ...int) *Tensor { return tensor.New(dims...).Rand(uint64(len(dims)) + 42) }

// FromSlice wraps data in a tensor of the given shape.
func FromSlice(data []float32, dims ...int) *Tensor { return tensor.FromSlice(data, dims...) }

// Compile runs the DNNFusion pipeline over g (the input graph is cloned,
// never mutated).
func Compile(g *Graph, opts Options) (*Compiled, error) { return core.Compile(g, opts) }

// DefaultOptions is the full pipeline: graph rewriting, profile-driven
// fusion, and the intra-/inter-block optimizations.
func DefaultOptions() Options { return core.Defaults() }

// NewProfileDB creates an empty profiling database; assign it to
// Options.ProfileDB (with Options.Device) to enable profile-driven yellow
// decisions that persist across compilations.
func NewProfileDB() *ProfileDB { return profile.New() }

// LoadProfileDB reads a database saved with (*ProfileDB).Save.
func LoadProfileDB(path string) (*ProfileDB, error) { return profile.Load(path) }

// Devices.
func SnapdragonCPU() *Device { return device.Snapdragon865CPU() }
func SnapdragonGPU() *Device { return device.Adreno650() }

// Phones returns the paper's three evaluation handsets (Galaxy S20, Galaxy
// S10, Honor Magic 2), each with a CPU and GPU profile.
func Phones() []device.Phone { return device.Phones() }

// BuildModel constructs one of the paper's 15 evaluation models by name
// (see ModelNames).
func BuildModel(name string) (*Graph, error) { return models.Build(name) }

// ModelNames lists the evaluation models in Table 5 order.
func ModelNames() []string { return models.Names() }

// Interpret executes a graph with the reference (unfused) operator
// implementations — the semantic ground truth fused execution is tested
// against.
func Interpret(g *Graph, feeds map[*Value]*Tensor) ([]*Tensor, error) {
	return graph.InterpretOutputs(g, feeds)
}

// Operator constructors (a curated subset; the full set lives in
// internal/ops and is re-exported here as needed by the public examples).
func Add() Operator                    { return ops.NewAdd() }
func Sub() Operator                    { return ops.NewSub() }
func Mul() Operator                    { return ops.NewMul() }
func Div() Operator                    { return ops.NewDiv() }
func Relu() Operator                   { return ops.NewRelu() }
func Sigmoid() Operator                { return ops.NewSigmoid() }
func Tanh() Operator                   { return ops.NewTanh() }
func Exp() Operator                    { return ops.NewExp() }
func Sqrt() Operator                   { return ops.NewSqrt() }
func Reciprocal() Operator             { return ops.NewReciprocal() }
func Square() Operator                 { return ops.NewSquare() }
func MatMul() Operator                 { return ops.NewMatMul() }
func Softmax(axis int) Operator        { return ops.NewSoftmax(axis) }
func Transpose(perm ...int) Operator   { return ops.NewTranspose(perm...) }
func Reshape(dims ...int) Operator     { return ops.NewReshape(dims...) }
func Concat(axis int) Operator         { return ops.NewConcat(axis) }
func Conv(attrs ConvAttrs) Operator    { return ops.NewConv(attrs) }
func MaxPool(attrs PoolAttrs) Operator { return ops.NewMaxPool(attrs) }
func ReduceSum(keepDims bool, axes ...int) Operator {
	return ops.NewReduce(ops.ReduceSum, keepDims, axes...)
}
func ReduceMean(keepDims bool, axes ...int) Operator {
	return ops.NewReduce(ops.ReduceMean, keepDims, axes...)
}
func BatchNormalization(eps float32) Operator { return ops.NewBatchNormalization(eps) }

// ConvAttrs and PoolAttrs configure convolutions and pooling.
type (
	ConvAttrs = ops.ConvAttrs
	PoolAttrs = ops.PoolAttrs
)
