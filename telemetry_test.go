// Tests for the public telemetry surface: per-kernel profiles accumulate
// only while profiling is armed, arming nests, and the reported schedules
// and shares describe the compiled kernels.
package dnnfusion_test

import (
	"context"
	"testing"

	"dnnfusion"

	"dnnfusion/internal/models"
)

func totalRuns(profile []dnnfusion.KernelProfile) uint64 {
	var runs uint64
	for _, p := range profile {
		runs += p.Runs
	}
	return runs
}

// TestProfileAccumulatesOnlyWhenArmed pins the arming contract: unarmed
// runs leave the profile untouched (the hot path stays a single atomic
// load), armed runs advance every kernel's counters, and disarming stops
// accumulation again.
func TestProfileAccumulatesOnlyWhenArmed(t *testing.T) {
	model, err := dnnfusion.Compile(models.MicroMLP())
	if err != nil {
		t.Fatal(err)
	}
	runner := model.NewRunner()
	defer runner.Release()
	ctx := context.Background()
	inputs := map[string]*dnnfusion.Tensor{"x": dnnfusion.Rand(16, 64)}

	if dnnfusion.ProfilingEnabled() {
		t.Fatal("profiling armed at test start")
	}
	for i := 0; i < 3; i++ {
		if _, err := runner.Run(ctx, inputs); err != nil {
			t.Fatal(err)
		}
	}
	if runs := totalRuns(model.Profile()); runs != 0 {
		t.Fatalf("unarmed runs recorded %d kernel executions, want 0", runs)
	}

	dnnfusion.EnableProfiling()
	if !dnnfusion.ProfilingEnabled() {
		t.Fatal("EnableProfiling did not arm")
	}
	const armedRuns = 4
	for i := 0; i < armedRuns; i++ {
		if _, err := runner.Run(ctx, inputs); err != nil {
			t.Fatal(err)
		}
	}
	dnnfusion.DisableProfiling()
	if dnnfusion.ProfilingEnabled() {
		t.Fatal("DisableProfiling did not disarm")
	}

	profile := model.Profile()
	if len(profile) == 0 {
		t.Fatal("empty profile for compiled model")
	}
	for _, p := range profile {
		if p.Runs != armedRuns {
			t.Errorf("kernel %q: %d profiled runs, want %d", p.Kernel, p.Runs, armedRuns)
		}
		if p.TotalNs <= 0 || p.MeanNs <= 0 {
			t.Errorf("kernel %q: TotalNs=%d MeanNs=%v, want > 0", p.Kernel, p.TotalNs, p.MeanNs)
		}
		if p.Kernel == "" || p.Schedule == "" {
			t.Errorf("profile row missing identity: %+v", p)
		}
		if p.Lanes < 1 {
			t.Errorf("kernel %q: lanes = %d, want >= 1", p.Kernel, p.Lanes)
		}
	}

	// Disarmed again: further runs do not advance the counters.
	if _, err := runner.Run(ctx, inputs); err != nil {
		t.Fatal(err)
	}
	if runs := totalRuns(model.Profile()); runs != uint64(armedRuns)*uint64(len(profile)) {
		t.Errorf("disarmed run advanced profile: %d total kernel runs", runs)
	}
}

// TestProfileNestsArming pins nesting: profiling stays armed until every
// Enable has been matched by a Disable, and a stray extra Disable does not
// wedge future arming.
func TestProfileNestsArming(t *testing.T) {
	dnnfusion.EnableProfiling()
	dnnfusion.EnableProfiling()
	dnnfusion.DisableProfiling()
	if !dnnfusion.ProfilingEnabled() {
		t.Error("inner Disable disarmed while outer Enable still held")
	}
	dnnfusion.DisableProfiling()
	dnnfusion.DisableProfiling() // extra: must clamp, not go negative
	if dnnfusion.ProfilingEnabled() {
		t.Error("still armed after matching Disables")
	}
	dnnfusion.EnableProfiling()
	if !dnnfusion.ProfilingEnabled() {
		t.Error("arming wedged by a stray extra Disable")
	}
	dnnfusion.DisableProfiling()
}

// TestProfileChainKernels verifies chain-fused kernels are identifiable in
// the profile and carry their producer schedule in the compact rendering.
func TestProfileChainKernels(t *testing.T) {
	model, err := dnnfusion.Compile(models.MicroAttention())
	if err != nil {
		t.Fatal(err)
	}
	runner := model.NewRunner()
	defer runner.Release()
	dnnfusion.EnableProfiling()
	defer dnnfusion.DisableProfiling()
	if _, err := runner.Run(context.Background(), map[string]*dnnfusion.Tensor{
		"tokens": dnnfusion.Rand(8, 32),
	}); err != nil {
		t.Fatal(err)
	}
	var chains int
	for _, p := range model.Profile() {
		if p.Chain {
			chains++
			if p.Runs == 0 {
				t.Errorf("chain kernel %q never profiled", p.Kernel)
			}
		}
	}
	if chains == 0 {
		t.Error("attention model profile reports no chain-fused kernels")
	}
}
