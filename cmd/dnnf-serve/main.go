// Command dnnf-serve is the HTTP serving front-end: it hosts ONNX models
// from a directory and/or the in-tree zoos behind a model repository with
// per-model dynamic request batching.
//
// Usage:
//
//	dnnf-serve                          # serve the micro zoo on :8080
//	dnnf-serve -models ./models         # serve every .onnx in a directory
//	dnnf-serve -addr :9000 -max-batch 16 -max-delay 1ms
//	dnnf-serve -micro micro-mlp,micro-cnn -prewarm
//	dnnf-serve -zoo                     # also expose the Table 5 models
//	dnnf-serve -queue 32 -max-inflight 256 -max-delay-ceiling 2ms
//	dnnf-serve -drain-timeout 10s       # graceful-shutdown budget on SIGTERM
//	dnnf-serve -profile tuned.json      # compile with dnnf-tune's tuned plans
//	dnnf-serve -profile tuned.json -tune-budget 16  # measure models not yet tuned
//
// Endpoints (see serve.Server):
//
//	GET  /healthz
//	GET  /v1/models
//	GET  /v1/models/{name}
//	POST /v1/models/{name}:predict     {"inputs": {"x": {"shape": [...], "data": [...]}}}
//	GET  /metrics                      Prometheus text exposition
//	GET  /debug/pprof/                 Go profiling (only with -pprof)
//
// Models from -models are imported lazily on first request; a file that
// fails to import answers its own requests with 422 and counts on
// /healthz as a build failure, without affecting other models. The Table 5
// zoo models are shape-only (their weights carry no data), so they serve
// metadata and simulation but fail :predict; the micro models and
// imported models with full weights execute numerically.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dnnfusion"
	"dnnfusion/serve"

	"dnnfusion/internal/models"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelDir := flag.String("models", "", "directory of .onnx files to serve (lazily imported)")
	modelList := flag.String("micro", "", "comma-separated micro-model names to serve (default: all micro models; 'none' disables)")
	zoo := flag.Bool("zoo", false, "also register the Table 5 simulation zoo (metadata only; shape-only weights cannot execute)")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatch, "dynamic batching capacity per model (1 disables)")
	maxDelay := flag.Duration("max-delay", serve.DefaultMaxDelay, "how long the first request of a batch waits for peers")
	delayCeiling := flag.Duration("max-delay-ceiling", 0, "adaptive batching: scale the coalescing wait between 0 and this ceiling by queue depth (grow under load, cut when idle); 0 keeps -max-delay fixed")
	queue := flag.Int("queue", 0, "per-model pending-request queue capacity (0 = 4×max-batch); a full queue sheds with 429")
	maxInflight := flag.Int("max-inflight", 0, "server-wide concurrent-request ceiling (0 = unlimited); beyond it requests get 503")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown budget: stop admitting (503), drain in-flight requests this long, then force-close")
	threads := flag.Int("threads", 0, "worker lanes per model (0 = GOMAXPROCS)")
	profilePath := flag.String("profile", "", "profile database to compile with (pre-tune with dnnf-tune; tuned plans warm-start compilation with zero measurement)")
	tuneBudget := flag.Int("tune-budget", 0, "measured-tuning budget per compilation (0 = analytical schedules; with -profile, models already tuned compile without measuring)")
	prewarm := flag.Bool("prewarm", false, "compile and bind serving arenas at startup instead of on first request")
	pprofOn := flag.Bool("pprof", false, "expose Go profiling under /debug/pprof/ (off by default; costs CPU and reveals internals)")
	flag.Parse()

	cfg := serve.Config{
		MaxBatch:        *maxBatch,
		MaxDelay:        *maxDelay,
		MaxDelayCeiling: *delayCeiling,
		Queue:           *queue,
		Prewarm:         *prewarm,
	}
	compileOpts := []dnnfusion.Option{dnnfusion.WithThreads(*threads)}
	if *profilePath != "" {
		db, err := dnnfusion.LoadProfileDB(*profilePath)
		if err != nil {
			log.Fatalf("loading profile database %s: %v", *profilePath, err)
		}
		log.Printf("loaded profile database %s: %d tuned plans", *profilePath, db.PlanLen())
		compileOpts = append(compileOpts, dnnfusion.WithProfileDB(db))
	}
	if *tuneBudget > 0 {
		compileOpts = append(compileOpts, dnnfusion.WithMeasuredTuning(*tuneBudget))
	}
	reg := serve.NewRegistry()
	reg.SetMaxInFlight(*maxInflight)
	registered := 0

	if *modelDir != "" {
		names, err := reg.RegisterDir(*modelDir, func(g *dnnfusion.Graph) (*dnnfusion.Model, error) {
			return dnnfusion.Compile(g, compileOpts...)
		}, cfg)
		if err != nil {
			log.Fatalf("registering model directory: %v", err)
		}
		log.Printf("registered %d models from %s: %v", len(names), *modelDir, names)
		registered += len(names)
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*modelList, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	serveMicro := !want["none"]
	delete(want, "none")
	filtered := len(want) > 0
	for _, spec := range models.MicroModels() {
		if !serveMicro {
			break
		}
		if filtered && !want[spec.Name] {
			continue
		}
		delete(want, spec.Name)
		build := spec.Build
		if _, err := reg.RegisterBuilder(spec.Name, func() (*dnnfusion.Model, error) {
			return dnnfusion.Compile(build(), compileOpts...)
		}, cfg); err != nil {
			log.Fatalf("registering %s: %v", spec.Name, err)
		}
		registered++
	}
	if len(want) > 0 {
		log.Fatalf("unknown micro models requested: %v (available: %v)", keys(want), microNames())
	}
	if *zoo {
		for _, name := range dnnfusion.ModelNames() {
			name := name
			if _, err := reg.RegisterBuilder(name, func() (*dnnfusion.Model, error) {
				g, err := dnnfusion.BuildModel(name)
				if err != nil {
					return nil, err
				}
				return dnnfusion.Compile(g, compileOpts...)
			}, cfg); err != nil {
				log.Fatalf("registering zoo model %s: %v", name, err)
			}
			registered++
		}
	}
	if registered == 0 {
		log.Fatal("no models to serve")
	}
	if *prewarm {
		start := time.Now()
		for _, name := range reg.Names() {
			h, err := reg.Resolve(name)
			if err != nil {
				continue
			}
			if _, err := h.Model(); err != nil {
				log.Printf("prewarm %s: %v", name, err)
			}
		}
		log.Printf("prewarmed %d models in %v", registered, time.Since(start).Round(time.Millisecond))
	}

	handler := serve.NewServer(reg)
	handler.Pprof = *pprofOn
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// A client that never finishes sending headers must not hold a
		// connection (and its goroutine) forever.
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		log.Printf("dnnf-serve listening on %s (%d models, max-batch %d, max-delay %v, queue %d, max-inflight %d)",
			*addr, registered, *maxBatch, *maxDelay, *queue, *maxInflight)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("listen: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	// Graceful shutdown: stop admitting first (deterministic 503s even on
	// kept-alive connections, /healthz reports "draining"), give in-flight
	// requests the drain budget, then force-close whatever remains so a
	// stuck client cannot hold the process open.
	log.Printf("draining (timeout %v)", *drainTimeout)
	handler.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain timeout exceeded, force-closing: %v", err)
		srv.Close()
	}
	reg.Close()
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func microNames() string {
	var names []string
	for _, spec := range models.MicroModels() {
		names = append(names, spec.Name)
	}
	return fmt.Sprint(names)
}
