// Command dnnf-tune pre-tunes models offline: it runs the measured
// fusion-plan × schedule search (WithMeasuredTuning) for each requested
// model and batch size and persists the winning plans in a profile
// database, so later compilations — dnnf-serve -profile, or any embedder
// passing WithProfileDB — warm-start with zero measurement.
//
// Usage:
//
//	dnnf-tune -db tuned.json                         # tune every micro model
//	dnnf-tune -db tuned.json micro-mlp micro-attention
//	dnnf-tune -db tuned.json -batch 1,8,32 micro-mlp # batcher-formed sizes too
//	dnnf-tune -db tuned.json -budget 32 model.onnx   # imported ONNX models
//	dnnf-tune -db tuned.json -fake-clock 1000        # deterministic (CI)
//
// The database is written atomically (temp file + rename), so a serving
// process re-reading it mid-tune sees the old or the new complete file,
// never a torn one. Re-running against an existing database is
// incremental: models whose plans are already stored report plan_hits=1
// measured_runs=0 and cost nothing.
//
// -fake-clock N replaces the measurement clock with a deterministic
// virtual clock advancing N nanoseconds per reading. Every candidate then
// measures identically, ties keep the analytical choice, and the written
// database is reproducible — the CI autotune gate's mode. Tuning quality
// comes from the real clock; the fake one is for determinism only.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dnnfusion"

	"dnnfusion/internal/models"
	"dnnfusion/internal/tuner"
)

func main() {
	dbPath := flag.String("db", "tuned.json", "profile database to load (if present) and atomically write back")
	budget := flag.Int("budget", 16, "measured runs allowed per (model, batch size) search")
	batches := flag.String("batch", "1", "comma-separated batch sizes to tune (sizes > 1 tune the batch-capacity variant the serving batcher executes)")
	threads := flag.Int("threads", 1, "worker lanes candidates are measured with (match the deployment)")
	gpu := flag.Bool("gpu", false, "tune for the Adreno 650 GPU profile instead of the Snapdragon 865 CPU")
	fakeClock := flag.Int64("fake-clock", 0, "if > 0, replace the measurement clock with a deterministic virtual clock advancing this many ns per reading")
	flag.Parse()

	if *budget < 1 {
		fmt.Fprintln(os.Stderr, "dnnf-tune: -budget must be at least 1")
		os.Exit(2)
	}
	var sizes []int
	for _, f := range strings.Split(*batches, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		b, err := strconv.Atoi(f)
		if err != nil || b < 1 {
			fmt.Fprintf(os.Stderr, "dnnf-tune: bad batch size %q\n", f)
			os.Exit(2)
		}
		sizes = append(sizes, b)
	}
	if len(sizes) == 0 {
		sizes = []int{1}
	}

	if *fakeClock > 0 {
		tuner.SetClock(tuner.StepClock(*fakeClock))
		defer tuner.ResetClock()
	}

	db := dnnfusion.NewProfileDB()
	if loaded, err := dnnfusion.LoadProfileDB(*dbPath); err == nil {
		db = loaded
		fmt.Fprintf(os.Stderr, "loaded %s: %d tuned plans\n", *dbPath, db.PlanLen())
	} else if !os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "dnnf-tune: loading %s: %v\n", *dbPath, err)
		os.Exit(1)
	}

	targets := flag.Args()
	if len(targets) == 0 {
		for _, spec := range models.MicroModels() {
			targets = append(targets, spec.Name)
		}
	}

	opts := []dnnfusion.Option{
		dnnfusion.WithMeasuredTuning(*budget),
		dnnfusion.WithProfileDB(db),
		dnnfusion.WithThreads(*threads),
	}
	if *gpu {
		opts = append(opts, dnnfusion.WithDevice(dnnfusion.SnapdragonGPU()))
	}

	failed := false
	for _, target := range targets {
		g, err := buildTarget(target)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnnf-tune: %s: %v\n", target, err)
			failed = true
			continue
		}
		m, err := dnnfusion.Compile(g, opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnnf-tune: compiling %s: %v\n", target, err)
			failed = true
			continue
		}
		report(g.Name, 1, m)
		for _, b := range sizes {
			if b == 1 {
				continue
			}
			bm, err := m.CompileBatch(b)
			if errors.Is(err, dnnfusion.ErrNotBatchable) {
				// Not a failure: the model serves through the per-request
				// fallback, which executes the batch-1 plan tuned above.
				fmt.Fprintf(os.Stderr, "dnnf-tune: %s batch %d: not batchable, skipped\n", target, b)
				continue
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "dnnf-tune: %s batch %d: %v\n", target, b, err)
				failed = true
				continue
			}
			report(g.Name, b, bm.Model())
		}
	}

	if err := db.Save(*dbPath); err != nil {
		fmt.Fprintf(os.Stderr, "dnnf-tune: saving %s: %v\n", *dbPath, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "saved %s: %d tuned plans\n", *dbPath, db.PlanLen())
	if failed {
		os.Exit(1)
	}
}

// report prints one greppable line per tuned (model, batch) pair.
func report(name string, batch int, m *dnnfusion.Model) {
	fmt.Printf("tuned model=%s batch=%d fingerprint=%s plan_hits=%d plan_misses=%d measured_runs=%d schedule_misses=%d tuned_differs=%v\n",
		name, batch, m.Fingerprint,
		m.Stats.TunedPlanHits, m.Stats.TunedPlanMisses,
		m.Stats.MeasuredRuns, m.Stats.ScheduleMisses, m.Stats.TunedDiffers)
}

// buildTarget resolves a model argument: a micro-model name, or a path to
// an ONNX file (the Table 5 zoo is shape-only — its weights carry no data
// — so it cannot be measured and is not accepted here).
func buildTarget(target string) (*dnnfusion.Graph, error) {
	for _, spec := range models.MicroModels() {
		if spec.Name == target {
			return spec.Build(), nil
		}
	}
	if ext := strings.ToLower(filepath.Ext(target)); ext == ".onnx" {
		data, err := os.ReadFile(target)
		if err != nil {
			return nil, err
		}
		return dnnfusion.Import(data)
	}
	var known []string
	for _, spec := range models.MicroModels() {
		known = append(known, spec.Name)
	}
	return nil, fmt.Errorf("unknown model (micro models: %s; or pass a .onnx path)", strings.Join(known, ", "))
}
