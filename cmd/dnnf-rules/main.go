// Command dnnf-rules prints the compiler's static rule tables: the operator
// classification (Table 2), the mapping-type combination matrix (Table 3),
// the graph-rewriting rule catalogue (Table 4), and the 23 code-generation
// rules per backend.
//
// Usage:
//
//	dnnf-rules -table 2
//	dnnf-rules -table 3
//	dnnf-rules -table 4
//	dnnf-rules -codegen
package main

import (
	"flag"
	"fmt"
	"os"

	"dnnfusion/internal/bench"
	"dnnfusion/internal/codegen"
	"dnnfusion/internal/rewrite"
)

func main() {
	table := flag.Int("table", 0, "paper table to print (2, 3, or 4); 0 prints all")
	cg := flag.Bool("codegen", false, "print the 23 code-generation rules per backend")
	flag.Parse()

	w := os.Stdout
	switch {
	case *cg:
		for _, b := range []codegen.Backend{codegen.CPU, codegen.GPU} {
			rules := codegen.RulesFor(b)
			fmt.Fprintf(w, "%v backend: %d code-generation rules (one per non-red Table 3 cell)\n", b, len(rules))
			for _, r := range rules {
				fmt.Fprintf(w, "  %-14s + %-14s -> %-16s [%s]\n", r.First, r.Second, r.Strategy, r.Decision)
			}
			fmt.Fprintln(w)
		}
	case *table == 2:
		bench.PrintTable2(w)
	case *table == 3:
		bench.PrintTable3(w)
	case *table == 4:
		bench.PrintTable4(w)
		fmt.Fprintln(w, "\nfull rule catalogue (matchers and the equation forms they derive):")
		for _, r := range rewrite.DefaultRules() {
			fmt.Fprintf(w, "%-14s %s\n", r.Cat, r.Name)
			for _, f := range r.Forms {
				fmt.Fprintf(w, "    %s\n", f)
			}
		}
	default:
		bench.PrintTable2(w)
		fmt.Fprintln(w)
		bench.PrintTable3(w)
		fmt.Fprintln(w)
		bench.PrintTable4(w)
	}
}
