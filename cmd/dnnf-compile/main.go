// Command dnnf-compile compiles one of the evaluation models with the
// DNNFusion pipeline and reports what the compiler did: rewriting
// statistics, the fusion plan, generated kernels (optionally their source),
// and simulated latency on the selected phone.
//
// Usage:
//
//	dnnf-compile -model GPT-2
//	dnnf-compile -model YOLO-V4 -source -top 3
//	dnnf-compile -model BERT-base -phone "Honor Magic 2"
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"dnnfusion"
	"dnnfusion/internal/device"
)

func main() {
	model := flag.String("model", "GPT-2", "model name (see dnnfusion.ModelNames)")
	phone := flag.String("phone", "Samsung Galaxy S20", "phone profile for simulation")
	source := flag.Bool("source", false, "print generated kernel source for the largest blocks")
	top := flag.Int("top", 5, "how many of the largest kernels to describe")
	noRewrite := flag.Bool("no-rewrite", false, "disable graph rewriting")
	noFusion := flag.Bool("no-fusion", false, "disable fusion (OurB)")
	flag.Parse()

	g, err := dnnfusion.BuildModel(*model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	var dev *dnnfusion.Device
	var gpuDev *dnnfusion.Device
	for _, p := range device.Phones() {
		if p.Name == *phone {
			dev, gpuDev = p.CPU, p.GPU
		}
	}
	if dev == nil {
		fmt.Fprintf(os.Stderr, "unknown phone %q\n", *phone)
		os.Exit(2)
	}

	opts := []dnnfusion.Option{dnnfusion.WithDevice(dev)}
	if *noRewrite {
		opts = append(opts, dnnfusion.WithoutRewrite())
	}
	if *noFusion {
		opts = append(opts, dnnfusion.WithoutFusion())
	}
	m, err := dnnfusion.Compile(g, opts...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d operators, %.1f GFLOPs, %.0f MB intermediates\n",
		*model, len(g.Nodes), float64(g.FLOPs())/1e9, float64(g.IntermediateBytes())/1e6)
	st := m.Stats
	if !*noRewrite {
		fmt.Printf("rewriting: %d applications in %.1f ms (%d -> %d ops, %d -> %d FLOPs)\n",
			st.RewriteApplied, st.RewriteMs,
			st.RewriteStats.NodesBefore, st.RewriteStats.NodesAfter,
			st.RewriteStats.FLOPsBefore, st.RewriteStats.FLOPsAfter)
		for cat, n := range st.RewriteStats.ByCategory {
			fmt.Printf("  %-16s %d\n", cat, n)
		}
	}
	fmt.Printf("fusion: %d kernels in %.1f ms; %d green, %d yellow, %d broken (table %d / constraint %d / cycle %d / profile %d)\n",
		m.FusedLayerCount(), st.FusionMs,
		m.Plan.GreenFusions, m.Plan.YellowFusions,
		m.Plan.BrokenByTable+m.Plan.BrokenByConstraint+m.Plan.BrokenByCycle+m.Plan.BrokenByProfile,
		m.Plan.BrokenByTable, m.Plan.BrokenByConstraint,
		m.Plan.BrokenByCycle, m.Plan.BrokenByProfile)

	ks := m.Kernels
	sort.Slice(ks, func(i, j int) bool { return ks[i].OpCount > ks[j].OpCount })
	fmt.Printf("\nlargest %d kernels:\n", *top)
	for i := 0; i < *top && i < len(ks); i++ {
		k := ks[i]
		fmt.Printf("  %s: %s (%d ops, %d FLOPs, layout %s)\n",
			k.Name, k.Block, k.OpCount, k.FLOPs, k.Layout)
		if *source {
			fmt.Println(k.SourceCPU)
		}
	}

	cpuRep, err := m.Simulate(dev)
	if err != nil {
		log.Fatal(err)
	}
	gpuRep, err := m.Simulate(gpuDev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated latency on %s: CPU %.0f ms, GPU %.0f ms\n", *phone, cpuRep.LatencyMs, gpuRep.LatencyMs)
	fmt.Printf("memory: %.0f MB accessed, %.0f MB peak\n",
		float64(cpuRep.MemAccessBytes)/1e6, float64(cpuRep.PeakMemBytes)/1e6)
}
