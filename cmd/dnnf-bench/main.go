// Command dnnf-bench regenerates the paper's tables and figures on the
// simulated mobile devices.
//
// Usage:
//
//	dnnf-bench -e all
//	dnnf-bench -e table5
//	dnnf-bench -e fig7 -e fig9b
//	dnnf-bench -json BENCH.json   # machine-readable per-model baseline
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dnnfusion"

	"dnnfusion/internal/baseline"
	"dnnfusion/internal/bench"
	"dnnfusion/internal/models"
	"dnnfusion/internal/profile"
)

// jsonModel is one model's headline numbers in the -json baseline: fusion
// counts from Table 5 and DNNFusion's simulated Snapdragon 865 latencies
// from Table 6. Successive PRs diff these files to track the perf
// trajectory.
type jsonModel struct {
	Name         string  `json:"name"`
	Operators    int     `json:"operators"`
	FusedKernels int     `json:"fused_kernels"`
	FusionRate   float64 `json:"fusion_rate"`
	IRSMB        float64 `json:"irs_mb"`
	IRSAfterMB   float64 `json:"irs_after_mb"`
	CPUMs        float64 `json:"dnnf_cpu_ms"`
	GPUMs        float64 `json:"dnnf_gpu_ms"`
}

// jsonExec is one runnable micro-model's measured serving-path numbers: a
// warmed Runner over the planned arena, timed and alloc-counted for real
// (not simulated). allocs_per_op and bytes_per_op are the zero-allocation
// headline; ns_per_op tracks single-threaded (blocked) hot-path latency
// across PRs, and ns_per_op_t8 the same kernels split over an 8-lane
// worker pool (WithThreads(8)).
type jsonExec struct {
	Name             string  `json:"name"`
	Operators        int     `json:"operators"`
	FusedKernels     int     `json:"fused_kernels"`
	PlannedPeakBytes int64   `json:"planned_peak_bytes"`
	NsPerOp          int64   `json:"ns_per_op"`
	NsPerOpT8        int64   `json:"ns_per_op_t8"`
	BytesPerOp       int64   `json:"bytes_per_op"`
	AllocsPerOp      float64 `json:"allocs_per_op"`
}

// timeRunner measures steady-state ns/op, bytes/op, and allocs/op of a
// compiled model's warmed Runner, auto-scaling the iteration count until
// the timed window is long enough to trust (blocked kernels made the micro
// models fast enough that a fixed count would be noise).
func timeRunner(g *dnnfusion.Graph, opts ...dnnfusion.Option) (nsPerOp, bytesPerOp int64, allocsPerOp float64, model *dnnfusion.Model, err error) {
	model, err = dnnfusion.Compile(g, opts...)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	inputs := map[string]*dnnfusion.Tensor{}
	for _, name := range model.InputNames() {
		shape, err := model.InputShape(name)
		if err != nil {
			return 0, 0, 0, nil, err
		}
		inputs[name] = dnnfusion.Rand(shape...)
	}
	runner := model.NewRunner()
	ctx := context.Background()
	for i := 0; i < 2; i++ { // bind arena, start pool workers
		if _, err := runner.Run(ctx, inputs); err != nil {
			return 0, 0, 0, nil, err
		}
	}
	iters := 50
	for {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := runner.Run(ctx, inputs); err != nil {
				return 0, 0, 0, nil, err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if elapsed >= 100*time.Millisecond || iters >= 200_000 {
			return elapsed.Nanoseconds() / int64(iters),
				int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
				float64(after.Mallocs-before.Mallocs) / float64(iters),
				model, nil
		}
		iters *= 4
	}
}

// measureExec records one micro model's measured serving-path numbers:
// blocked single-threaded execution (the BENCH trajectory number) plus the
// same kernels over an 8-lane worker pool.
func measureExec(build func() *dnnfusion.Graph) (jsonExec, error) {
	g := build()
	ns1, bytes1, allocs1, model, err := timeRunner(g, dnnfusion.WithThreads(1))
	if err != nil {
		return jsonExec{}, err
	}
	ns8, _, _, _, err := timeRunner(build(), dnnfusion.WithThreads(8))
	if err != nil {
		return jsonExec{}, err
	}
	return jsonExec{
		Name:             g.Name,
		Operators:        len(g.Nodes),
		FusedKernels:     model.FusedLayerCount(),
		PlannedPeakBytes: model.PlannedPeakBytes(),
		NsPerOp:          ns1,
		NsPerOpT8:        ns8,
		BytesPerOp:       bytes1,
		AllocsPerOp:      allocs1,
	}, nil
}

// jsonSummary is the -json baseline file (schema dnnf-bench/v2).
type jsonSummary struct {
	Schema string      `json:"schema"`
	Models []jsonModel `json:"models"`
	Exec   []jsonExec  `json:"exec"`
}

func buildJSONBaseline(c *bench.Context) (*jsonSummary, error) {
	byModel := map[string]*jsonModel{}
	var order []string
	for _, r := range c.Table5() {
		m := &jsonModel{
			Name:         r.Model,
			Operators:    r.Total,
			FusedKernels: r.Fused[baseline.DNNF],
			IRSMB:        r.IRSMB,
			IRSAfterMB:   r.IRSAfterMB,
		}
		if m.FusedKernels > 0 {
			m.FusionRate = float64(m.Operators) / float64(m.FusedKernels)
		}
		byModel[r.Model] = m
		order = append(order, r.Model)
	}
	for _, r := range c.Table6() {
		if m, ok := byModel[r.Model]; ok {
			m.CPUMs = r.CPU[baseline.DNNF]
			m.GPUMs = r.GPU[baseline.DNNF]
		}
	}
	summary := &jsonSummary{Schema: "dnnf-bench/v2"}
	for _, name := range order {
		summary.Models = append(summary.Models, *byModel[name])
	}
	// The exec models are shared with the allocation regression tests
	// (internal/models/micro.go), so the gated number and the recorded
	// number come from the same graphs.
	for _, spec := range models.MicroModels() {
		e, err := measureExec(spec.Build)
		if err != nil {
			return nil, fmt.Errorf("exec %s: %w", spec.Name, err)
		}
		summary.Exec = append(summary.Exec, e)
	}
	return summary, nil
}

func writeJSONBaseline(summary *jsonSummary, path string) error {
	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compareBaseline diffs the current measured-exec numbers against a prior
// -json baseline and reports per-model deltas; ok is false when any model
// regresses more than 10% in single-threaded measured ns/op. Models
// present on only one side are reported but never gate.
func compareBaseline(summary *jsonSummary, baselinePath string, w *os.File) (ok bool, err error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return false, err
	}
	var base jsonSummary
	if err := json.Unmarshal(data, &base); err != nil {
		return false, fmt.Errorf("%s: %w", baselinePath, err)
	}
	baseExec := map[string]jsonExec{}
	for _, e := range base.Exec {
		baseExec[e.Name] = e
	}
	ok = true
	gated := 0
	fmt.Fprintf(w, "measured exec vs %s (gate: >10%% ns/op regression)\n", baselinePath)
	fmt.Fprintf(w, "%-20s %14s %14s %9s %14s\n", "model", "base ns/op", "now ns/op", "delta", "now t8 ns/op")
	for _, e := range summary.Exec {
		b, have := baseExec[e.Name]
		if !have || b.NsPerOp <= 0 {
			fmt.Fprintf(w, "%-20s %14s %14d %9s %14d  (no usable baseline, not gated)\n", e.Name, "-", e.NsPerOp, "-", e.NsPerOpT8)
			delete(baseExec, e.Name)
			continue
		}
		gated++
		delta := float64(e.NsPerOp-b.NsPerOp) / float64(b.NsPerOp) * 100
		mark := ""
		if delta > 10 {
			mark = "  REGRESSION"
			ok = false
		}
		fmt.Fprintf(w, "%-20s %14d %14d %+8.1f%% %14d%s\n", e.Name, b.NsPerOp, e.NsPerOp, delta, e.NsPerOpT8, mark)
		delete(baseExec, e.Name)
	}
	for name := range baseExec {
		fmt.Fprintf(w, "%-20s  (missing from current run, not gated)\n", name)
	}
	if gated == 0 {
		// A gate that compared nothing must not green-light: seed-era
		// baselines (schema v1, no exec section) or a wholesale model
		// rename would otherwise disable the check silently.
		return false, fmt.Errorf("%s has no exec entries matching the current micro models; nothing was gated", baselinePath)
	}
	return ok, nil
}

type list []string

func (l *list) String() string     { return strings.Join(*l, ",") }
func (l *list) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var experiments list
	flag.Var(&experiments, "e", "experiment id (table1..table6, fig6..fig10, ablations, all); repeatable")
	dbPath := flag.String("db", "", "profiling database path: loaded if present, saved on exit (accumulates across runs, §4.3)")
	jsonPath := flag.String("json", "", "write a machine-readable per-model baseline (fusion counts, latency) to this path and exit")
	comparePath := flag.String("compare", "", "diff current measured-exec numbers against a prior -json baseline; exits non-zero on a >10% ns/op regression (combine with -json to also record)")
	flag.Parse()
	if len(experiments) == 0 {
		experiments = list{"all"}
	}

	c := bench.NewContext()
	if *dbPath != "" {
		if db, err := profile.Load(*dbPath); err == nil {
			c.ProfileDB = db
			fmt.Fprintf(os.Stderr, "loaded profiling database: %d entries\n", db.Len())
		}
		defer func() {
			if err := c.ProfileDB.Save(*dbPath); err != nil {
				fmt.Fprintf(os.Stderr, "saving profiling database: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "saved profiling database: %d entries\n", c.ProfileDB.Len())
		}()
	}
	// After -db so a baseline generated with a profiling database reflects
	// the profiled fusion decisions, not a cold one.
	if *jsonPath != "" || *comparePath != "" {
		if *comparePath != "" {
			// Fail before the (slow) measurement pass, not after it.
			if _, err := os.Stat(*comparePath); err != nil {
				fmt.Fprintf(os.Stderr, "comparing against %s: %v\n", *comparePath, err)
				os.Exit(1)
			}
		}
		summary, err := buildJSONBaseline(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "building baseline: %v\n", err)
			os.Exit(1)
		}
		if *jsonPath != "" {
			if err := writeJSONBaseline(summary, *jsonPath); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote baseline %s\n", *jsonPath)
		}
		if *comparePath != "" {
			ok, err := compareBaseline(summary, *comparePath, os.Stdout)
			if err != nil {
				fmt.Fprintf(os.Stderr, "comparing against %s: %v\n", *comparePath, err)
				os.Exit(1)
			}
			if !ok {
				fmt.Fprintln(os.Stderr, "measured-exec regression exceeds 10%")
				os.Exit(1)
			}
		}
		return
	}
	w := os.Stdout
	for _, e := range experiments {
		switch strings.ToLower(e) {
		case "all":
			c.PrintAll(w)
		case "table1":
			c.PrintTable1(w)
		case "table2":
			bench.PrintTable2(w)
		case "table3":
			bench.PrintTable3(w)
		case "table4":
			bench.PrintTable4(w)
		case "table5":
			c.PrintTable5(w)
		case "table6":
			c.PrintTable6(w)
		case "fig6":
			c.PrintFigure6(w)
		case "fig7":
			c.PrintFigure7(w)
		case "fig8":
			c.PrintFigure8(w)
		case "fig9a":
			c.PrintFigure9a(w)
		case "fig9b":
			c.PrintFigure9b(w)
		case "fig10":
			c.PrintFigure10(w)
		case "ablations":
			c.PrintAblations(w)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", e)
			os.Exit(2)
		}
		fmt.Fprintln(w)
	}
}
