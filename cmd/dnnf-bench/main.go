// Command dnnf-bench regenerates the paper's tables and figures on the
// simulated mobile devices.
//
// Usage:
//
//	dnnf-bench -e all
//	dnnf-bench -e table5
//	dnnf-bench -e fig7 -e fig9b
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dnnfusion/internal/bench"
	"dnnfusion/internal/profile"
)

type list []string

func (l *list) String() string     { return strings.Join(*l, ",") }
func (l *list) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var experiments list
	flag.Var(&experiments, "e", "experiment id (table1..table6, fig6..fig10, ablations, all); repeatable")
	dbPath := flag.String("db", "", "profiling database path: loaded if present, saved on exit (accumulates across runs, §4.3)")
	flag.Parse()
	if len(experiments) == 0 {
		experiments = list{"all"}
	}

	c := bench.NewContext()
	if *dbPath != "" {
		if db, err := profile.Load(*dbPath); err == nil {
			c.ProfileDB = db
			fmt.Fprintf(os.Stderr, "loaded profiling database: %d entries\n", db.Len())
		}
		defer func() {
			if err := c.ProfileDB.Save(*dbPath); err != nil {
				fmt.Fprintf(os.Stderr, "saving profiling database: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "saved profiling database: %d entries\n", c.ProfileDB.Len())
		}()
	}
	w := os.Stdout
	for _, e := range experiments {
		switch strings.ToLower(e) {
		case "all":
			c.PrintAll(w)
		case "table1":
			c.PrintTable1(w)
		case "table2":
			bench.PrintTable2(w)
		case "table3":
			bench.PrintTable3(w)
		case "table4":
			bench.PrintTable4(w)
		case "table5":
			c.PrintTable5(w)
		case "table6":
			c.PrintTable6(w)
		case "fig6":
			c.PrintFigure6(w)
		case "fig7":
			c.PrintFigure7(w)
		case "fig8":
			c.PrintFigure8(w)
		case "fig9a":
			c.PrintFigure9a(w)
		case "fig9b":
			c.PrintFigure9b(w)
		case "fig10":
			c.PrintFigure10(w)
		case "ablations":
			c.PrintAblations(w)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", e)
			os.Exit(2)
		}
		fmt.Fprintln(w)
	}
}
