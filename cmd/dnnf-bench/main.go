// Command dnnf-bench regenerates the paper's tables and figures on the
// simulated mobile devices.
//
// Usage:
//
//	dnnf-bench -e all
//	dnnf-bench -e table5
//	dnnf-bench -e fig7 -e fig9b
//	dnnf-bench -json BENCH.json   # machine-readable per-model baseline
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dnnfusion"

	"dnnfusion/internal/baseline"
	"dnnfusion/internal/bench"
	"dnnfusion/internal/models"
	"dnnfusion/internal/profile"
)

// jsonModel is one model's headline numbers in the -json baseline: fusion
// counts from Table 5 and DNNFusion's simulated Snapdragon 865 latencies
// from Table 6. Successive PRs diff these files to track the perf
// trajectory.
type jsonModel struct {
	Name         string  `json:"name"`
	Operators    int     `json:"operators"`
	FusedKernels int     `json:"fused_kernels"`
	FusionRate   float64 `json:"fusion_rate"`
	IRSMB        float64 `json:"irs_mb"`
	IRSAfterMB   float64 `json:"irs_after_mb"`
	CPUMs        float64 `json:"dnnf_cpu_ms"`
	GPUMs        float64 `json:"dnnf_gpu_ms"`
}

// jsonExec is one runnable micro-model's measured serving-path numbers: a
// warmed Runner over the planned arena, timed and alloc-counted for real
// (not simulated). allocs_per_op and bytes_per_op are the zero-allocation
// headline; ns_per_op tracks hot-path latency across PRs.
type jsonExec struct {
	Name             string  `json:"name"`
	Operators        int     `json:"operators"`
	FusedKernels     int     `json:"fused_kernels"`
	PlannedPeakBytes int64   `json:"planned_peak_bytes"`
	NsPerOp          int64   `json:"ns_per_op"`
	BytesPerOp       int64   `json:"bytes_per_op"`
	AllocsPerOp      float64 `json:"allocs_per_op"`
}

// measureExec compiles g, warms a Runner (first Run binds the arena), and
// measures steady-state ns/op, bytes/op, and allocs/op over real inference.
func measureExec(g *dnnfusion.Graph) (jsonExec, error) {
	model, err := dnnfusion.Compile(g)
	if err != nil {
		return jsonExec{}, err
	}
	inputs := map[string]*dnnfusion.Tensor{}
	for _, name := range model.InputNames() {
		shape, err := model.InputShape(name)
		if err != nil {
			return jsonExec{}, err
		}
		inputs[name] = dnnfusion.Rand(shape...)
	}
	runner := model.NewRunner()
	ctx := context.Background()
	if _, err := runner.Run(ctx, inputs); err != nil {
		return jsonExec{}, err
	}
	const iters = 200
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := runner.Run(ctx, inputs); err != nil {
			return jsonExec{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return jsonExec{
		Name:             g.Name,
		Operators:        len(g.Nodes),
		FusedKernels:     model.FusedLayerCount(),
		PlannedPeakBytes: model.PlannedPeakBytes(),
		NsPerOp:          elapsed.Nanoseconds() / iters,
		BytesPerOp:       int64(after.TotalAlloc-before.TotalAlloc) / iters,
		AllocsPerOp:      float64(after.Mallocs-before.Mallocs) / iters,
	}, nil
}

func writeJSONBaseline(c *bench.Context, path string) error {
	byModel := map[string]*jsonModel{}
	var order []string
	for _, r := range c.Table5() {
		m := &jsonModel{
			Name:         r.Model,
			Operators:    r.Total,
			FusedKernels: r.Fused[baseline.DNNF],
			IRSMB:        r.IRSMB,
			IRSAfterMB:   r.IRSAfterMB,
		}
		if m.FusedKernels > 0 {
			m.FusionRate = float64(m.Operators) / float64(m.FusedKernels)
		}
		byModel[r.Model] = m
		order = append(order, r.Model)
	}
	for _, r := range c.Table6() {
		if m, ok := byModel[r.Model]; ok {
			m.CPUMs = r.CPU[baseline.DNNF]
			m.GPUMs = r.GPU[baseline.DNNF]
		}
	}
	summary := struct {
		Schema string      `json:"schema"`
		Models []jsonModel `json:"models"`
		Exec   []jsonExec  `json:"exec"`
	}{Schema: "dnnf-bench/v2"}
	for _, name := range order {
		summary.Models = append(summary.Models, *byModel[name])
	}
	// The exec models are shared with the allocation regression tests
	// (internal/models/micro.go), so the gated number and the recorded
	// number come from the same graphs.
	for _, spec := range models.MicroModels() {
		e, err := measureExec(spec.Build())
		if err != nil {
			return fmt.Errorf("exec %s: %w", spec.Name, err)
		}
		summary.Exec = append(summary.Exec, e)
	}
	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

type list []string

func (l *list) String() string     { return strings.Join(*l, ",") }
func (l *list) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var experiments list
	flag.Var(&experiments, "e", "experiment id (table1..table6, fig6..fig10, ablations, all); repeatable")
	dbPath := flag.String("db", "", "profiling database path: loaded if present, saved on exit (accumulates across runs, §4.3)")
	jsonPath := flag.String("json", "", "write a machine-readable per-model baseline (fusion counts, latency) to this path and exit")
	flag.Parse()
	if len(experiments) == 0 {
		experiments = list{"all"}
	}

	c := bench.NewContext()
	if *dbPath != "" {
		if db, err := profile.Load(*dbPath); err == nil {
			c.ProfileDB = db
			fmt.Fprintf(os.Stderr, "loaded profiling database: %d entries\n", db.Len())
		}
		defer func() {
			if err := c.ProfileDB.Save(*dbPath); err != nil {
				fmt.Fprintf(os.Stderr, "saving profiling database: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "saved profiling database: %d entries\n", c.ProfileDB.Len())
		}()
	}
	// After -db so a baseline generated with a profiling database reflects
	// the profiled fusion decisions, not a cold one.
	if *jsonPath != "" {
		if err := writeJSONBaseline(c, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote baseline %s\n", *jsonPath)
		return
	}
	w := os.Stdout
	for _, e := range experiments {
		switch strings.ToLower(e) {
		case "all":
			c.PrintAll(w)
		case "table1":
			c.PrintTable1(w)
		case "table2":
			bench.PrintTable2(w)
		case "table3":
			bench.PrintTable3(w)
		case "table4":
			bench.PrintTable4(w)
		case "table5":
			c.PrintTable5(w)
		case "table6":
			c.PrintTable6(w)
		case "fig6":
			c.PrintFigure6(w)
		case "fig7":
			c.PrintFigure7(w)
		case "fig8":
			c.PrintFigure8(w)
		case "fig9a":
			c.PrintFigure9a(w)
		case "fig9b":
			c.PrintFigure9b(w)
		case "fig10":
			c.PrintFigure10(w)
		case "ablations":
			c.PrintAblations(w)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", e)
			os.Exit(2)
		}
		fmt.Fprintln(w)
	}
}
