// Command dnnf-bench regenerates the paper's tables and figures on the
// simulated mobile devices.
//
// Usage:
//
//	dnnf-bench -e all
//	dnnf-bench -e table5
//	dnnf-bench -e fig7 -e fig9b
//	dnnf-bench -json BENCH.json   # machine-readable per-model baseline
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"dnnfusion"
	"dnnfusion/serve"

	"dnnfusion/internal/baseline"
	"dnnfusion/internal/bench"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/models"
	"dnnfusion/internal/profile"
)

// jsonModel is one model's headline numbers in the -json baseline: fusion
// counts from Table 5 and DNNFusion's simulated Snapdragon 865 latencies
// from Table 6. Successive PRs diff these files to track the perf
// trajectory.
type jsonModel struct {
	Name         string  `json:"name"`
	Operators    int     `json:"operators"`
	FusedKernels int     `json:"fused_kernels"`
	FusionRate   float64 `json:"fusion_rate"`
	IRSMB        float64 `json:"irs_mb"`
	IRSAfterMB   float64 `json:"irs_after_mb"`
	CPUMs        float64 `json:"dnnf_cpu_ms"`
	GPUMs        float64 `json:"dnnf_gpu_ms"`
}

// jsonKernelSchedule is the tuner-selected tile schedule of one heavy
// kernel (schema v4): the GEMM-shape task it was tuned for and the chosen
// blocking, so BENCH deltas are explainable schedule by schedule. In the
// tuned_schedules section (schema v9) Tuned marks kernels whose
// measured-tuned schedule differs from the analytical choice.
type jsonKernelSchedule struct {
	Kernel   string `json:"kernel"`
	TaskM    int    `json:"task_m"`
	TaskN    int    `json:"task_n"`
	TaskK    int    `json:"task_k"`
	RowTile  int    `json:"row_tile"`
	ColPanel int    `json:"col_panel"`
	Unroll   int    `json:"unroll"`
	Tuned    bool   `json:"tuned,omitempty"`
}

// jsonChain is one detected contraction chain of an exec model (schema
// v6): its producer/consumer contractions, whether it takes the online
// (streaming-rescale softmax) path, and whether the compiled plan actually
// fused it into a streaming chain kernel. A detected-but-unfused chain is
// the signal to look at when a model's peak bytes stop improving.
type jsonChain struct {
	Producer string `json:"producer"`
	Consumer string `json:"consumer"`
	Online   bool   `json:"online"`
	Fused    bool   `json:"fused"`
}

// chainStatus lists the compiled model's detected chains with their fused
// status, from the optimized graph's ECG and the final fusion plan.
func chainStatus(model *dnnfusion.Model) []jsonChain {
	var out []jsonChain
	for _, c := range fusion.DetectChains(model.E) {
		blk := model.Plan.BlockOf(c.Consumer)
		out = append(out, jsonChain{
			Producer: fmt.Sprint(c.Producer),
			Consumer: fmt.Sprint(c.Consumer),
			Online:   c.Online,
			Fused:    blk != nil && blk.Chain != nil,
		})
	}
	return out
}

// kernelSchedules collects the selected schedules of a compiled model's
// heavy kernels, in execution-plan order.
func kernelSchedules(model *dnnfusion.Model) []jsonKernelSchedule {
	var out []jsonKernelSchedule
	for _, k := range model.Kernels {
		if k.Schedule.Zero() {
			continue
		}
		out = append(out, jsonKernelSchedule{
			Kernel: k.Name,
			TaskM:  k.TaskM, TaskN: k.TaskN, TaskK: k.TaskK,
			RowTile: k.Schedule.RowTile, ColPanel: k.Schedule.ColPanel, Unroll: k.Schedule.Unroll,
		})
	}
	return out
}

// jsonExec is one runnable micro-model's measured serving-path numbers: a
// warmed Runner over the planned arena, timed and alloc-counted for real
// (not simulated). allocs_per_op and bytes_per_op are the zero-allocation
// headline; ns_per_op tracks single-threaded (blocked) hot-path latency
// across PRs, and ns_per_op_t8 the same kernels split over an 8-lane
// worker pool (WithThreads(8)). schedules records each heavy kernel's
// tuner-selected tile schedule (schema v4); chains the model's detected
// contraction chains and whether each fused (schema v6); profile each
// kernel's measured share of execution time (schema v8), taken from
// separate profiled runs after the timed windows so arming the telemetry
// hooks cannot perturb the recorded ns_per_op.
type jsonExec struct {
	Name             string               `json:"name"`
	Operators        int                  `json:"operators"`
	FusedKernels     int                  `json:"fused_kernels"`
	PlannedPeakBytes int64                `json:"planned_peak_bytes"`
	NsPerOp          int64                `json:"ns_per_op"`
	NsPerOpT8        int64                `json:"ns_per_op_t8"`
	BytesPerOp       int64                `json:"bytes_per_op"`
	AllocsPerOp      float64              `json:"allocs_per_op"`
	Schedules        []jsonKernelSchedule `json:"schedules,omitempty"`
	Chains           []jsonChain          `json:"chains,omitempty"`
	Profile          []jsonKernelProfile  `json:"profile,omitempty"`
	// Tuned-path numbers (schema v9): the same model compiled with
	// measured tuning (WithMeasuredTuning) instead of the analytical
	// model alone. tuned_ns_per_op tracks what measurement buys;
	// tuned_measured_runs what it cost; tuned_differs whether the search
	// picked a (plan, schedule) pair the analytical model would not have;
	// tuned_schedules each kernel's winning schedule with per-kernel
	// tuned-vs-analytical marks.
	TunedNsPerOp      int64                `json:"tuned_ns_per_op,omitempty"`
	TunedMeasuredRuns int                  `json:"tuned_measured_runs,omitempty"`
	TunedDiffers      bool                 `json:"tuned_differs,omitempty"`
	TunedSchedules    []jsonKernelSchedule `json:"tuned_schedules,omitempty"`
}

// jsonKernelProfile is one kernel's row in the per-model execution profile:
// its tuner-selected schedule (compact form), mean profiled latency, and
// share of the model's total profiled execution time.
type jsonKernelProfile struct {
	Kernel   string  `json:"kernel"`
	Schedule string  `json:"schedule"`
	Chain    bool    `json:"chain,omitempty"`
	Runs     uint64  `json:"runs"`
	MeanNs   float64 `json:"mean_ns"`
	NsShare  float64 `json:"ns_share"`
}

// profileModel runs the model a fixed number of profiled iterations on a
// fresh runner and returns the per-kernel profile. Profiling is armed only
// here — after every timed window — so the telemetry hooks never tax the
// recorded benchmark numbers.
func profileModel(model *dnnfusion.Model) ([]jsonKernelProfile, error) {
	inputs := map[string]*dnnfusion.Tensor{}
	for _, name := range model.InputNames() {
		shape, err := model.InputShape(name)
		if err != nil {
			return nil, err
		}
		inputs[name] = dnnfusion.Rand(shape...)
	}
	runner := model.NewRunner()
	defer runner.Release()
	ctx := context.Background()
	dnnfusion.EnableProfiling()
	defer dnnfusion.DisableProfiling()
	for i := 0; i < 32; i++ {
		if _, err := runner.Run(ctx, inputs); err != nil {
			return nil, err
		}
	}
	profile := model.Profile()
	var total int64
	for _, p := range profile {
		total += p.TotalNs
	}
	out := make([]jsonKernelProfile, len(profile))
	for i, p := range profile {
		out[i] = jsonKernelProfile{
			Kernel:   p.Kernel,
			Schedule: p.Schedule,
			Chain:    p.Chain,
			Runs:     p.Runs,
			MeanNs:   p.MeanNs,
		}
		if total > 0 {
			out[i].NsShare = float64(p.TotalNs) / float64(total)
		}
	}
	return out, nil
}

// timeRunner measures steady-state ns/op, bytes/op, and allocs/op of a
// compiled model's warmed Runner, auto-scaling the iteration count until
// the timed window is long enough to trust (blocked kernels made the micro
// models fast enough that a fixed count would be noise).
func timeRunner(g *dnnfusion.Graph, opts ...dnnfusion.Option) (nsPerOp, bytesPerOp int64, allocsPerOp float64, model *dnnfusion.Model, err error) {
	model, err = dnnfusion.Compile(g, opts...)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	inputs := map[string]*dnnfusion.Tensor{}
	for _, name := range model.InputNames() {
		shape, err := model.InputShape(name)
		if err != nil {
			return 0, 0, 0, nil, err
		}
		inputs[name] = dnnfusion.Rand(shape...)
	}
	runner := model.NewRunner()
	ctx := context.Background()
	for i := 0; i < 2; i++ { // bind arena, start pool workers
		if _, err := runner.Run(ctx, inputs); err != nil {
			return 0, 0, 0, nil, err
		}
	}
	iters := 50
	for {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := runner.Run(ctx, inputs); err != nil {
				return 0, 0, 0, nil, err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if elapsed >= 100*time.Millisecond || iters >= 200_000 {
			nsPerOp = elapsed.Nanoseconds() / int64(iters)
			bytesPerOp = int64(after.TotalAlloc-before.TotalAlloc) / int64(iters)
			allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(iters)
			break
		}
		iters *= 4
	}
	// One window is at the mercy of machine drift (shared containers
	// throttle); re-run the sized window a few times and keep the best, so
	// the recorded trajectory number is the model's cost, not the noise's.
	for round := 1; round < 4; round++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := runner.Run(ctx, inputs); err != nil {
				return 0, 0, 0, nil, err
			}
		}
		if ns := time.Since(start).Nanoseconds() / int64(iters); ns < nsPerOp {
			nsPerOp = ns
		}
	}
	return nsPerOp, bytesPerOp, allocsPerOp, model, nil
}

// tuneBudget is the measured runs the tuned-path scenario allows each
// model's search — enough to measure every plan variant of the micro
// models plus a few schedule refinements, small enough that the scenario
// stays a minor fraction of the bench run.
const tuneBudget = 16

// measureExec records one micro model's measured serving-path numbers:
// blocked single-threaded execution (the BENCH trajectory number) plus the
// same kernels over an 8-lane worker pool.
func measureExec(build func() *dnnfusion.Graph) (jsonExec, error) {
	g := build()
	ns1, bytes1, allocs1, model, err := timeRunner(g, dnnfusion.WithThreads(1))
	if err != nil {
		return jsonExec{}, err
	}
	ns8, _, _, _, err := timeRunner(build(), dnnfusion.WithThreads(8))
	if err != nil {
		return jsonExec{}, err
	}
	// Profile after (never during) the timed windows: arming telemetry adds
	// clock reads per kernel, which must not leak into ns_per_op.
	profile, err := profileModel(model)
	if err != nil {
		return jsonExec{}, err
	}
	// Tuned path (schema v9): the same model through the measured
	// fusion-plan × schedule search, timed with the same discipline. The
	// per-kernel marks diff the winning schedules against the analytical
	// compilation above.
	nsTuned, _, _, tuned, err := timeRunner(build(), dnnfusion.WithThreads(1), dnnfusion.WithMeasuredTuning(tuneBudget))
	if err != nil {
		return jsonExec{}, fmt.Errorf("tuned path: %w", err)
	}
	analytical := map[string]jsonKernelSchedule{}
	for _, s := range kernelSchedules(model) {
		analytical[s.Kernel] = s
	}
	tunedScheds := kernelSchedules(tuned)
	for i := range tunedScheds {
		a, ok := analytical[tunedScheds[i].Kernel]
		a.Tuned = false
		tunedScheds[i].Tuned = !ok || tunedScheds[i] != a
	}
	return jsonExec{
		Name:             g.Name,
		Operators:        len(g.Nodes),
		FusedKernels:     model.FusedLayerCount(),
		PlannedPeakBytes: model.PlannedPeakBytes(),
		NsPerOp:          ns1,
		NsPerOpT8:        ns8,
		BytesPerOp:       bytes1,
		AllocsPerOp:      allocs1,
		Schedules:        kernelSchedules(model),
		Chains:           chainStatus(model),
		Profile:          profile,

		TunedNsPerOp:      nsTuned,
		TunedMeasuredRuns: tuned.Stats.MeasuredRuns,
		TunedDiffers:      tuned.Stats.TunedDiffers,
		TunedSchedules:    tunedScheds,
	}, nil
}

// jsonImport is one micro model's importer numbers (schema v5): the size
// of its self-generated ONNX fixture and the measured cost of loading it
// back — import_ns is one dnnfusion.Import call over the fixture bytes
// (parse + convert + validate), compile_ns one Compile of the imported
// graph. Together they track the cold-start cost of serving a model from
// disk rather than from an in-tree builder.
type jsonImport struct {
	Name      string `json:"name"`
	OnnxBytes int    `json:"onnx_bytes"`
	Operators int    `json:"operators"`
	ImportNs  int64  `json:"import_ns"`
	CompileNs int64  `json:"compile_ns"`
}

// measureImport exports one micro model to ONNX bytes and times the
// import and compile halves of the load path (minima over repeated
// windows, like the exec scenario).
func measureImport(build func() *graph.Graph) (jsonImport, error) {
	g := build()
	data, err := dnnfusion.Export(g)
	if err != nil {
		return jsonImport{}, err
	}
	imported, err := dnnfusion.Import(data)
	if err != nil {
		return jsonImport{}, err
	}
	out := jsonImport{Name: g.Name, OnnxBytes: len(data), Operators: len(imported.Nodes)}

	iters := 10
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := dnnfusion.Import(data); err != nil {
				return jsonImport{}, err
			}
		}
		if elapsed := time.Since(start); elapsed >= 50*time.Millisecond || iters >= 100_000 {
			out.ImportNs = elapsed.Nanoseconds() / int64(iters)
			break
		}
		iters *= 4
	}
	for round := 1; round < 4; round++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := dnnfusion.Import(data); err != nil {
				return jsonImport{}, err
			}
		}
		if ns := time.Since(start).Nanoseconds() / int64(iters); ns < out.ImportNs {
			out.ImportNs = ns
		}
	}

	for round := 0; round < 3; round++ {
		g, err := dnnfusion.Import(data)
		if err != nil {
			return jsonImport{}, err
		}
		start := time.Now()
		if _, err := dnnfusion.Compile(g, dnnfusion.WithThreads(1)); err != nil {
			return jsonImport{}, err
		}
		if ns := time.Since(start).Nanoseconds(); round == 0 || ns < out.CompileNs {
			out.CompileNs = ns
		}
	}
	return out, nil
}

// jsonBatchPoint is one (model, batch size) measurement of the micro-batch
// scenario: the same model served at batch 1/8/32 through the batching
// stack. ns_per_request is the measured per-request execution cost of a
// coalesced batch (BatchRunner.RunBatch wall time divided by batch size,
// minimum over interleaved windows so machine drift cannot bias one batch
// size); served_ns_per_request is the end-to-end per-request cost through
// serve.Host.Run with <batch> concurrent saturating clients (queueing,
// dispatch, and result delivery included), with served_mean_batch the
// coalescing the batcher actually achieved during that window.
type jsonBatchPoint struct {
	Name               string  `json:"name"`
	Batch              int     `json:"batch"`
	NsPerRequest       int64   `json:"ns_per_request"`
	ServedNsPerRequest int64   `json:"served_ns_per_request"`
	ServedMeanBatch    float64 `json:"served_mean_batch"`
	// Schedules are the batch-capacity variant's re-selected kernel
	// schedules (schema v4): batch-stacked shapes tune differently than
	// batch 1, and this is where that shows.
	Schedules []jsonKernelSchedule `json:"schedules,omitempty"`
}

// jsonSoak is one micro model's overload soak (schema v7): a small-queue
// host flooded by concurrent clients at 4x its queue capacity with mixed
// short/long deadlines. It records what the overload-control machinery
// delivers under that flood — admitted-work throughput, completed-request
// latency percentiles, and the shed/expired split — so admission-control
// changes show up as measured serving behavior, not only as pass/fail
// tests. Informational: the regression gate stays on exec ns/op (overload
// numbers on a drifting shared machine would gate on noise).
type jsonSoak struct {
	Name          string  `json:"name"`
	Clients       int     `json:"clients"`
	QueueCapacity int     `json:"queue_capacity"`
	Offered       int64   `json:"offered"`
	Completed     int64   `json:"completed"`
	Shed          int64   `json:"shed"`
	Expired       int64   `json:"expired"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Us         int64   `json:"p50_us"`
	P99Us         int64   `json:"p99_us"`
	ShedRate      float64 `json:"shed_rate"`
}

// measureSoak floods one model's host at 4x queue capacity: half the
// clients carry tight deadlines (they may expire queued), half carry
// generous ones. Every request must land in exactly one bucket; the
// serving stack guarantees that, and the scenario measures the shape of
// the split plus the latency the admitted work actually saw.
func measureSoak(build func() *dnnfusion.Graph) (jsonSoak, error) {
	model, err := dnnfusion.Compile(build(), dnnfusion.WithThreads(1))
	if err != nil {
		return jsonSoak{}, err
	}
	const queueCap = 8
	reg := serve.NewRegistry()
	defer reg.Close()
	h, err := reg.Register("soak", model, serve.Config{
		MaxBatch:        4,
		MaxDelay:        100 * time.Microsecond,
		MaxDelayCeiling: time.Millisecond,
		Queue:           queueCap,
		Prewarm:         true,
	})
	if err != nil {
		return jsonSoak{}, err
	}
	request := func(seed uint64) map[string]*dnnfusion.Tensor {
		in := map[string]*dnnfusion.Tensor{}
		for j, name := range model.InputNames() {
			shape, _ := model.InputShape(name)
			in[name] = dnnfusion.NewTensor(shape...).Rand(seed + uint64(j))
		}
		return in
	}
	res, err := h.Run(context.Background(), request(99))
	if err != nil {
		return jsonSoak{}, err
	}
	res.Release()

	const clients, rounds = 4 * queueCap, 50
	var completed, shed, expired int64
	var mu sync.Mutex
	var latencies []time.Duration
	var wg sync.WaitGroup
	var firstErr error
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req := request(uint64(1000 * (c + 1)))
			var myLat []time.Duration
			var myDone, myShed, myExp int64
			for i := 0; i < rounds; i++ {
				ctx, cancel := context.Background(), context.CancelFunc(func() {})
				if c%2 == 1 {
					ctx, cancel = context.WithTimeout(ctx, 2*time.Millisecond)
				} else {
					ctx, cancel = context.WithTimeout(ctx, time.Second)
				}
				t0 := time.Now()
				res, err := h.Run(ctx, req)
				switch {
				case err == nil:
					myDone++
					myLat = append(myLat, time.Since(t0))
					res.Release()
				case errors.Is(err, dnnfusion.ErrOverloaded):
					myShed++
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					myExp++
				default:
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
					return
				}
				cancel()
			}
			mu.Lock()
			completed += myDone
			shed += myShed
			expired += myExp
			latencies = append(latencies, myLat...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return jsonSoak{}, firstErr
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) int64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i].Microseconds()
	}
	offered := int64(clients * rounds)
	return jsonSoak{
		Name:          build().Name,
		Clients:       clients,
		QueueCapacity: queueCap,
		Offered:       offered,
		Completed:     completed,
		Shed:          shed,
		Expired:       expired,
		ThroughputRPS: float64(completed) / elapsed.Seconds(),
		P50Us:         pct(0.50),
		P99Us:         pct(0.99),
		ShedRate:      float64(shed) / float64(offered),
	}, nil
}

// jsonSummary is the -json baseline file (schema dnnf-bench/v9: v8 plus
// each exec model's measured-tuning numbers — tuned ns/op, the
// measurement cost, and per-kernel tuned-vs-analytical schedule marks;
// v8 added the per-kernel execution profile, v7 the overload soak
// scenario — serving behavior at 4x queue capacity).
// num_cpu and gomaxprocs make threaded numbers (ns_per_op_t8,
// the micro-batch scenario) self-describing: a t8 column produced on a
// 1-CPU container cannot show wall-clock parallel gains, and the file
// says so itself.
type jsonSummary struct {
	Schema     string           `json:"schema"`
	NumCPU     int              `json:"num_cpu"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Models     []jsonModel      `json:"models"`
	Exec       []jsonExec       `json:"exec"`
	MicroBatch []jsonBatchPoint `json:"micro_batch"`
	Imports    []jsonImport     `json:"import"`
	Soak       []jsonSoak       `json:"soak,omitempty"`
}

// batchSizes is the micro-batch scenario's sweep.
var batchSizes = []int{1, 8, 32}

// measureBatch runs the micro-batch scenario for one micro model: compile
// batch-capacity variants at each sweep size, measure coalesced execution
// in interleaved windows (every round touches every batch size, minima
// reported, so slow machine drift hits all sizes equally), then measure
// the served path under concurrent clients. Models that do not admit a
// leading batch axis return no points — they serve through the per-request
// fallback and have no batched cost to report.
func measureBatch(build func() *graph.Graph) ([]jsonBatchPoint, error) {
	g := build()
	model, err := dnnfusion.Compile(g, dnnfusion.WithThreads(1))
	if err != nil {
		return nil, err
	}
	maxB := batchSizes[len(batchSizes)-1]
	runners := make([]*dnnfusion.BatchRunner, len(batchSizes))
	scheds := make([][]jsonKernelSchedule, len(batchSizes))
	for i, b := range batchSizes {
		bm, err := model.CompileBatch(b)
		if errors.Is(err, dnnfusion.ErrNotBatchable) {
			return nil, nil // fallback path by design: no batched numbers
		}
		if err != nil {
			// A batchable model failing batch compilation is a regression,
			// not a fallback — surface it instead of silently dropping the
			// scenario.
			return nil, err
		}
		runners[i] = bm.NewRunner()
		scheds[i] = kernelSchedules(bm.Model())
	}
	reqs := make([]map[string]*dnnfusion.Tensor, maxB)
	for i := range reqs {
		in := map[string]*dnnfusion.Tensor{}
		for j, name := range model.InputNames() {
			shape, err := model.InputShape(name)
			if err != nil {
				return nil, err
			}
			in[name] = dnnfusion.NewTensor(shape...).Rand(uint64(17*i + j + 1))
		}
		reqs[i] = in
	}
	ctx := context.Background()
	window := func(br *dnnfusion.BatchRunner, b int) (int64, error) {
		iters := 0
		start := time.Now()
		for elapsed := time.Duration(0); elapsed < 60*time.Millisecond || iters < 2; elapsed = time.Since(start) {
			if _, err := br.RunBatch(ctx, reqs[:b]); err != nil {
				return 0, err
			}
			iters++
		}
		return time.Since(start).Nanoseconds() / int64(iters*b), nil
	}
	best := make([]int64, len(batchSizes))
	for i, b := range batchSizes {
		// Warm arenas and view rings outside the timed windows.
		for w := 0; w < 2; w++ {
			if _, err := runners[i].RunBatch(ctx, reqs[:b]); err != nil {
				return nil, err
			}
		}
		best[i] = 1 << 62
	}
	const rounds = 5
	for r := 0; r < rounds; r++ {
		for i, b := range batchSizes {
			ns, err := window(runners[i], b)
			if err != nil {
				return nil, err
			}
			if ns < best[i] {
				best[i] = ns
			}
		}
	}
	points := make([]jsonBatchPoint, len(batchSizes))
	for i, b := range batchSizes {
		served, meanBatch, err := measureServed(model, b, best[i])
		if err != nil {
			return nil, err
		}
		points[i] = jsonBatchPoint{
			Name:               g.Name,
			Batch:              b,
			NsPerRequest:       best[i],
			ServedNsPerRequest: served,
			ServedMeanBatch:    meanBatch,
			Schedules:          scheds[i],
		}
	}
	return points, nil
}

// measureServed times the full serving path: <batch> concurrent clients
// saturating one serve.Host configured with that batch capacity.
func measureServed(model *dnnfusion.Model, batch int, execNs int64) (nsPerReq int64, meanBatch float64, err error) {
	reg := serve.NewRegistry()
	defer reg.Close()
	// The coalescing window must scale with the model's batch latency, as
	// a deployment would tune it: a window far below one batch's execution
	// time fragments saturating traffic into partial batches, and the
	// padded lanes would be billed to real requests.
	delay := time.Duration(execNs*int64(batch)/4) * time.Nanosecond
	if delay < 200*time.Microsecond {
		delay = 200 * time.Microsecond
	}
	h, err := reg.Register("bench", model, serve.Config{
		MaxBatch: batch,
		MaxDelay: delay,
		Prewarm:  true,
	})
	if err != nil {
		return 0, 0, err
	}
	ctx := context.Background()
	request := func(seed uint64) map[string]*dnnfusion.Tensor {
		in := map[string]*dnnfusion.Tensor{}
		for j, name := range model.InputNames() {
			shape, _ := model.InputShape(name)
			in[name] = dnnfusion.NewTensor(shape...).Rand(seed + uint64(j))
		}
		return in
	}
	// Aim each client at ~150ms of execution so the window dwarfs startup.
	perClient := int(150 * int64(time.Millisecond) / (execNs*int64(batch) + 1))
	if perClient < 5 {
		perClient = 5
	}
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	// Warm every client path once before timing.
	res, err := h.Run(ctx, request(99))
	if err != nil {
		return 0, 0, err
	}
	res.Release()
	start := time.Now()
	for c := 0; c < batch; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req := request(uint64(1000 * (c + 1)))
			for i := 0; i < perClient; i++ {
				res, err := h.Run(ctx, req)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				res.Release()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return 0, 0, firstErr
	}
	info, err := h.Info()
	if err != nil {
		return 0, 0, err
	}
	return elapsed.Nanoseconds() / int64(batch*perClient), info.Stats.MeanBatch, nil
}

func buildJSONBaseline(c *bench.Context) (*jsonSummary, error) {
	byModel := map[string]*jsonModel{}
	var order []string
	for _, r := range c.Table5() {
		m := &jsonModel{
			Name:         r.Model,
			Operators:    r.Total,
			FusedKernels: r.Fused[baseline.DNNF],
			IRSMB:        r.IRSMB,
			IRSAfterMB:   r.IRSAfterMB,
		}
		if m.FusedKernels > 0 {
			m.FusionRate = float64(m.Operators) / float64(m.FusedKernels)
		}
		byModel[r.Model] = m
		order = append(order, r.Model)
	}
	for _, r := range c.Table6() {
		if m, ok := byModel[r.Model]; ok {
			m.CPUMs = r.CPU[baseline.DNNF]
			m.GPUMs = r.GPU[baseline.DNNF]
		}
	}
	summary := &jsonSummary{
		Schema:     "dnnf-bench/v9",
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, name := range order {
		summary.Models = append(summary.Models, *byModel[name])
	}
	// The exec models are shared with the allocation regression tests
	// (internal/models/micro.go), so the gated number and the recorded
	// number come from the same graphs.
	for _, spec := range models.MicroModels() {
		e, err := measureExec(spec.Build)
		if err != nil {
			return nil, fmt.Errorf("exec %s: %w", spec.Name, err)
		}
		summary.Exec = append(summary.Exec, e)
	}
	// The micro-batch scenario: the same models at batch 1/8/32 through
	// the batching stack (unbatchable models contribute no points).
	for _, spec := range models.MicroModels() {
		pts, err := measureBatch(spec.Build)
		if err != nil {
			return nil, fmt.Errorf("micro-batch %s: %w", spec.Name, err)
		}
		summary.MicroBatch = append(summary.MicroBatch, pts...)
	}
	// The import scenario (schema v5): each micro model through its own
	// exported ONNX fixture.
	for _, spec := range models.MicroModels() {
		imp, err := measureImport(spec.Build)
		if err != nil {
			return nil, fmt.Errorf("import %s: %w", spec.Name, err)
		}
		summary.Imports = append(summary.Imports, imp)
	}
	// The soak scenario (schema v7): each micro model flooded at 4x its
	// queue capacity with mixed deadlines.
	for _, spec := range models.MicroModels() {
		s, err := measureSoak(spec.Build)
		if err != nil {
			return nil, fmt.Errorf("soak %s: %w", spec.Name, err)
		}
		summary.Soak = append(summary.Soak, s)
	}
	return summary, nil
}

func writeJSONBaseline(summary *jsonSummary, path string) error {
	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compareBaseline diffs the current measured-exec numbers against a prior
// -json baseline and reports per-model deltas; ok is false when any model
// regresses more than threshold percent in single-threaded measured
// ns/op. Models present on only one side are reported but never gate.
func compareBaseline(summary *jsonSummary, baselinePath string, threshold float64, w *os.File) (ok bool, err error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return false, err
	}
	var base jsonSummary
	if err := json.Unmarshal(data, &base); err != nil {
		return false, fmt.Errorf("%s: %w", baselinePath, err)
	}
	baseExec := map[string]jsonExec{}
	for _, e := range base.Exec {
		baseExec[e.Name] = e
	}
	ok = true
	gated := 0
	fmt.Fprintf(w, "environment: num_cpu=%d gomaxprocs=%d", summary.NumCPU, summary.GoMaxProcs)
	if base.NumCPU > 0 {
		fmt.Fprintf(w, "; baseline num_cpu=%d gomaxprocs=%d\n", base.NumCPU, base.GoMaxProcs)
	} else {
		fmt.Fprintf(w, "; baseline (schema %s) predates cpu recording\n", base.Schema)
	}
	fmt.Fprintf(w, "measured exec vs %s (gate: >%.1f%% ns/op regression)\n", baselinePath, threshold)
	fmt.Fprintf(w, "%-20s %14s %14s %9s %10s %14s\n", "model", "base ns/op", "now ns/op", "delta", "threshold", "now t8 ns/op")
	for _, e := range summary.Exec {
		b, have := baseExec[e.Name]
		if !have || b.NsPerOp <= 0 {
			fmt.Fprintf(w, "%-20s %14s %14d %9s %10s %14d  (no usable baseline, not gated)\n", e.Name, "-", e.NsPerOp, "-", "-", e.NsPerOpT8)
			delete(baseExec, e.Name)
			continue
		}
		gated++
		delta := float64(e.NsPerOp-b.NsPerOp) / float64(b.NsPerOp) * 100
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			ok = false
		}
		fmt.Fprintf(w, "%-20s %14d %14d %+8.1f%% %9.1f%% %14d%s\n", e.Name, b.NsPerOp, e.NsPerOp, delta, threshold, e.NsPerOpT8, mark)
		delete(baseExec, e.Name)
	}
	for name := range baseExec {
		fmt.Fprintf(w, "%-20s  (missing from current run, not gated)\n", name)
	}
	if gated == 0 {
		// A gate that compared nothing must not green-light: seed-era
		// baselines (schema v1, no exec section) or a wholesale model
		// rename would otherwise disable the check silently.
		return false, fmt.Errorf("%s has no exec entries matching the current micro models; nothing was gated", baselinePath)
	}
	printTuned(summary, w)
	printMicroBatch(summary, w)
	printImports(summary, w)
	printSoak(summary, w)
	return ok, nil
}

// printTuned renders the tuned-path scenario: measured tuning versus the
// analytical compilation of the same model (informational; the regression
// gate stays on the analytical exec ns/op so tuning variance cannot gate).
func printTuned(summary *jsonSummary, w *os.File) {
	any := false
	for _, e := range summary.Exec {
		if e.TunedNsPerOp > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(w, "\ntuned-path scenario (measured fusion-plan x schedule search vs analytical)\n")
	fmt.Fprintf(w, "%-20s %14s %14s %9s %9s %8s %14s\n",
		"model", "analytical ns", "tuned ns", "delta", "searched", "differs", "tuned kernels")
	for _, e := range summary.Exec {
		if e.TunedNsPerOp <= 0 {
			continue
		}
		delta := "-"
		if e.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", float64(e.TunedNsPerOp-e.NsPerOp)/float64(e.NsPerOp)*100)
		}
		tunedKernels := 0
		for _, s := range e.TunedSchedules {
			if s.Tuned {
				tunedKernels++
			}
		}
		fmt.Fprintf(w, "%-20s %14d %14d %9s %9d %8v %7d of %-4d\n",
			e.Name, e.NsPerOp, e.TunedNsPerOp, delta, e.TunedMeasuredRuns, e.TunedDiffers, tunedKernels, len(e.TunedSchedules))
	}
}

// printSoak renders the overload soak scenario (informational; the
// regression gate stays on single-request exec ns/op).
func printSoak(summary *jsonSummary, w *os.File) {
	if len(summary.Soak) == 0 {
		return
	}
	fmt.Fprintf(w, "\nsoak scenario (flood at 4x queue capacity, mixed deadlines)\n")
	fmt.Fprintf(w, "%-20s %8s %10s %6s %8s %10s %9s %9s %9s\n",
		"model", "offered", "completed", "shed", "expired", "rps", "p50 us", "p99 us", "shed rate")
	for _, s := range summary.Soak {
		fmt.Fprintf(w, "%-20s %8d %10d %6d %8d %10.0f %9d %9d %8.1f%%\n",
			s.Name, s.Offered, s.Completed, s.Shed, s.Expired, s.ThroughputRPS, s.P50Us, s.P99Us, s.ShedRate*100)
	}
}

// printImports renders the import scenario (informational; the regression
// gate stays on single-request exec ns/op).
func printImports(summary *jsonSummary, w *os.File) {
	if len(summary.Imports) == 0 {
		return
	}
	fmt.Fprintf(w, "\nimport scenario (zoo fixtures through the ONNX importer)\n")
	fmt.Fprintf(w, "%-20s %6s %12s %14s %14s\n", "model", "ops", "onnx bytes", "import ns", "compile ns")
	for _, p := range summary.Imports {
		fmt.Fprintf(w, "%-20s %6d %12d %14d %14d\n", p.Name, p.Operators, p.OnnxBytes, p.ImportNs, p.CompileNs)
	}
}

// printMicroBatch renders the micro-batch scenario with each point's
// per-request cost relative to the same model's batch-1 point
// (informational; the regression gate stays on single-request ns/op).
func printMicroBatch(summary *jsonSummary, w *os.File) {
	if len(summary.MicroBatch) == 0 {
		return
	}
	fmt.Fprintf(w, "\nmicro-batch scenario (per-request cost through the batcher)\n")
	fmt.Fprintf(w, "%-20s %6s %14s %8s %14s %11s\n", "model", "batch", "exec ns/req", "vs b1", "served ns/req", "mean batch")
	base1 := map[string]int64{}
	for _, p := range summary.MicroBatch {
		if p.Batch == 1 {
			base1[p.Name] = p.NsPerRequest
		}
	}
	for _, p := range summary.MicroBatch {
		delta := "-"
		if b1 := base1[p.Name]; b1 > 0 && p.Batch != 1 {
			delta = fmt.Sprintf("%+.1f%%", float64(p.NsPerRequest-b1)/float64(b1)*100)
		}
		fmt.Fprintf(w, "%-20s %6d %14d %8s %14d %11.2f\n",
			p.Name, p.Batch, p.NsPerRequest, delta, p.ServedNsPerRequest, p.ServedMeanBatch)
	}
}

type list []string

func (l *list) String() string     { return strings.Join(*l, ",") }
func (l *list) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var experiments list
	flag.Var(&experiments, "e", "experiment id (table1..table6, fig6..fig10, ablations, all); repeatable")
	dbPath := flag.String("db", "", "profiling database path: loaded if present, saved on exit (accumulates across runs, §4.3)")
	jsonPath := flag.String("json", "", "write a machine-readable per-model baseline (fusion counts, latency) to this path and exit")
	comparePath := flag.String("compare", "", "diff current measured-exec numbers against a prior -json baseline; exits non-zero on an ns/op regression beyond -threshold (combine with -json to also record)")
	threshold := flag.Float64("threshold", 10, "regression gate for -compare, in percent of baseline ns/op")
	flag.Parse()
	if *threshold <= 0 {
		fmt.Fprintln(os.Stderr, "-threshold must be positive")
		os.Exit(2)
	}
	if len(experiments) == 0 {
		experiments = list{"all"}
	}

	c := bench.NewContext()
	if *dbPath != "" {
		if db, err := profile.Load(*dbPath); err == nil {
			c.ProfileDB = db
			fmt.Fprintf(os.Stderr, "loaded profiling database: %d entries\n", db.Len())
		}
		defer func() {
			if err := c.ProfileDB.Save(*dbPath); err != nil {
				fmt.Fprintf(os.Stderr, "saving profiling database: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "saved profiling database: %d entries\n", c.ProfileDB.Len())
		}()
	}
	// After -db so a baseline generated with a profiling database reflects
	// the profiled fusion decisions, not a cold one.
	if *jsonPath != "" || *comparePath != "" {
		if *comparePath != "" {
			// Fail before the (slow) measurement pass, not after it.
			if _, err := os.Stat(*comparePath); err != nil {
				fmt.Fprintf(os.Stderr, "comparing against %s: %v\n", *comparePath, err)
				os.Exit(1)
			}
		}
		summary, err := buildJSONBaseline(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "building baseline: %v\n", err)
			os.Exit(1)
		}
		if *jsonPath != "" {
			if err := writeJSONBaseline(summary, *jsonPath); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote baseline %s\n", *jsonPath)
		}
		if *comparePath != "" {
			ok, err := compareBaseline(summary, *comparePath, *threshold, os.Stdout)
			if err != nil {
				fmt.Fprintf(os.Stderr, "comparing against %s: %v\n", *comparePath, err)
				os.Exit(1)
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "measured-exec regression exceeds %.1f%%\n", *threshold)
				os.Exit(1)
			}
		}
		return
	}
	w := os.Stdout
	for _, e := range experiments {
		switch strings.ToLower(e) {
		case "all":
			c.PrintAll(w)
		case "table1":
			c.PrintTable1(w)
		case "table2":
			bench.PrintTable2(w)
		case "table3":
			bench.PrintTable3(w)
		case "table4":
			bench.PrintTable4(w)
		case "table5":
			c.PrintTable5(w)
		case "table6":
			c.PrintTable6(w)
		case "fig6":
			c.PrintFigure6(w)
		case "fig7":
			c.PrintFigure7(w)
		case "fig8":
			c.PrintFigure8(w)
		case "fig9a":
			c.PrintFigure9a(w)
		case "fig9b":
			c.PrintFigure9b(w)
		case "fig10":
			c.PrintFigure10(w)
		case "ablations":
			c.PrintAblations(w)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", e)
			os.Exit(2)
		}
		fmt.Fprintln(w)
	}
}
