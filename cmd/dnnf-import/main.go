// Command dnnf-import loads ONNX files into the compile pipeline and
// reports what arrived: model header, I/O specs, operator histogram,
// fusion-plan summary, and the planned activation peak. It is the
// inspection half of the importer; with -export it is also how the
// repository generates ONNX fixtures from the in-tree zoo instead of
// vendoring binaries.
//
// Usage:
//
//	dnnf-import model.onnx                 # import, compile, summarize
//	dnnf-import -no-compile model.onnx     # import + validate only
//	dnnf-import -export micro-mlp -o m.onnx
//	dnnf-import -export all -o fixtures/   # every zoo model into a directory
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"dnnfusion"

	"dnnfusion/internal/models"
)

func main() {
	log.SetFlags(0)
	export := flag.String("export", "", "zoo model to export instead of importing (micro or Table 5 name, or 'all')")
	out := flag.String("o", "", "output path for -export (a directory when exporting 'all')")
	noCompile := flag.Bool("no-compile", false, "stop after import + validation, skip compilation")
	threads := flag.Int("threads", 1, "worker lanes for the compiled summary")
	flag.Parse()

	if *export != "" {
		if err := runExport(*export, *out); err != nil {
			log.Fatal(err)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dnnf-import [flags] model.onnx (or -export <model> -o <path>)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := runImport(flag.Arg(0), *noCompile, *threads); err != nil {
		var ue *dnnfusion.UnsupportedOpError
		if errors.As(err, &ue) {
			log.Fatalf("%v\n\nthe %s operator is outside the supported ONNX subset; see README.md for the operator table", err, ue.Op)
		}
		log.Fatal(err)
	}
}

// zooBuilders maps every exportable zoo model name to its graph builder.
func zooBuilders() map[string]func() (*dnnfusion.Graph, error) {
	builders := map[string]func() (*dnnfusion.Graph, error){}
	for _, mm := range models.MicroModels() {
		build := mm.Build
		builders[mm.Name] = func() (*dnnfusion.Graph, error) { return build(), nil }
	}
	for _, name := range dnnfusion.ModelNames() {
		name := name
		builders[name] = func() (*dnnfusion.Graph, error) { return dnnfusion.BuildModel(name) }
	}
	return builders
}

func runExport(model, out string) error {
	builders := zooBuilders()
	if model == "all" {
		if out == "" {
			return errors.New("-export all needs -o <directory>")
		}
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
		names := make([]string, 0, len(builders))
		for name := range builders {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			path := filepath.Join(out, name+".onnx")
			if err := exportOne(builders[name], path); err != nil {
				return fmt.Errorf("exporting %s: %w", name, err)
			}
			log.Printf("wrote %s", path)
		}
		return nil
	}
	build, ok := builders[model]
	if !ok {
		return fmt.Errorf("unknown model %q (try 'all', a micro model, or a Table 5 name)", model)
	}
	if out == "" {
		out = model + ".onnx"
	}
	if err := exportOne(build, out); err != nil {
		return err
	}
	log.Printf("wrote %s", out)
	return nil
}

func exportOne(build func() (*dnnfusion.Graph, error), path string) error {
	g, err := build()
	if err != nil {
		return err
	}
	return dnnfusion.ExportFile(g, path)
}

func runImport(path string, noCompile bool, threads int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	g, err := dnnfusion.Import(data)
	if err != nil {
		return err
	}

	fmt.Printf("%s: %d bytes, model %q\n", path, len(data), g.Name)
	fmt.Printf("graph: %d operators, %d values, %.2f GFLOPs\n",
		len(g.Nodes), len(g.Values), float64(g.FLOPs())/1e9)
	for _, in := range g.Inputs {
		fmt.Printf("  input  %-20s %v\n", in.Name, in.Shape)
	}
	for _, o := range g.Outputs {
		fmt.Printf("  output %-20s %v\n", o.Name, o.Shape)
	}

	// Operator histogram, most frequent first.
	hist := map[string]int{}
	for _, n := range g.Nodes {
		hist[n.Op.Type()]++
	}
	types := make([]string, 0, len(hist))
	for t := range hist {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool {
		if hist[types[i]] != hist[types[j]] {
			return hist[types[i]] > hist[types[j]]
		}
		return types[i] < types[j]
	})
	fmt.Println("\noperator histogram:")
	for _, t := range types {
		fmt.Printf("  %-24s %d\n", t, hist[t])
	}

	if noCompile {
		fmt.Println("\nimport OK (compilation skipped)")
		return nil
	}

	m, err := dnnfusion.Compile(g, dnnfusion.WithThreads(threads))
	if err != nil {
		return err
	}
	fmt.Printf("\nfusion plan: %d operators -> %d kernels (%d green, %d yellow; broken: table %d, constraint %d, cycle %d, profile %d)\n",
		len(g.Nodes), m.FusedLayerCount(),
		m.Plan.GreenFusions, m.Plan.YellowFusions,
		m.Plan.BrokenByTable, m.Plan.BrokenByConstraint,
		m.Plan.BrokenByCycle, m.Plan.BrokenByProfile)
	fmt.Printf("planned peak activation memory: %d bytes (%.2f MB)\n",
		m.PlannedPeakBytes(), float64(m.PlannedPeakBytes())/1e6)
	return nil
}
