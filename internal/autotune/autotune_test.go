package autotune

import (
	"math"
	"testing"

	"dnnfusion/internal/codegen"
	"dnnfusion/internal/ecg"
	"dnnfusion/internal/engine"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/models"
	"dnnfusion/internal/profile"
	"dnnfusion/internal/rewrite"
	"dnnfusion/internal/tensor"
	"dnnfusion/internal/tuner"
)

func microGraphs() []struct {
	name  string
	build func() *graph.Graph
} {
	return []struct {
		name  string
		build func() *graph.Graph
	}{
		{"micro-mlp", models.MicroMLP},
		{"micro-attention", models.MicroAttention},
		{"micro-cnn", models.MicroCNN},
		{"micro-elementwise", models.MicroElementwise},
		{"micro-head", models.MicroHead},
	}
}

// buildECG mirrors the compile pipeline's graph preparation (clone +
// rewrite) so the enumerated candidate space matches what compileMeasured
// searches over.
func buildECG(t *testing.T, g *graph.Graph) *ecg.ECG {
	t.Helper()
	e := ecg.Build(g.Clone())
	if _, err := rewrite.NewDefaultEngine().Run(e); err != nil {
		t.Fatal(err)
	}
	return e
}

func testConfig() Config {
	return Config{ChainFusion: true, Threads: 1, Budget: 4,
		Measure: tuner.MeasureOptions{Window: 1, Rounds: 1, MaxIters: 4}}
}

// runCandidate executes one candidate plan once and clones its outputs.
func runCandidate(t *testing.T, e *ecg.ECG, plan *fusion.Plan, kernels []*codegen.Kernel, feeds map[*graph.Value]*tensor.Tensor) []*tensor.Tensor {
	t.Helper()
	x, err := engine.NewExecutorThreads(e, plan, kernels, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := x.NewSession()
	defer s.Release()
	outs, err := s.Run(nil, feeds)
	if err != nil {
		t.Fatal(err)
	}
	cloned := make([]*tensor.Tensor, len(outs))
	for i, o := range outs {
		cloned[i] = o.Clone()
	}
	return cloned
}

// TestEnumerateSpecs pins the shape of the candidate space: the
// analytical baseline leads, the chain axis enumerates every mask for
// small chain counts, the NoYellow variant is present, and there are no
// duplicates.
func TestEnumerateSpecs(t *testing.T) {
	e := buildECG(t, models.MicroMLP())
	nchains := len(fusion.DetectChains(e))
	if nchains == 0 {
		t.Fatal("micro-mlp detects no chain; the enumeration test needs one")
	}
	if nchains > 3 {
		t.Fatalf("micro-mlp detects %d chains; the exhaustive-mask assertion assumes <= 3", nchains)
	}
	specs := EnumerateSpecs(e, testConfig())
	full := chainMaskAll(nchains)
	if specs[0] != (Spec{ChainMask: full}) {
		t.Errorf("first spec %+v is not the analytical baseline (mask %b)", specs[0], full)
	}
	want := (1 << uint(nchains)) + 1 // all masks + the NoYellow variant
	if len(specs) != want {
		t.Errorf("enumerated %d specs for %d chains, want %d: %+v", len(specs), nchains, want, specs)
	}
	seen := map[Spec]bool{}
	hasNoYellow := false
	for _, s := range specs {
		if seen[s] {
			t.Errorf("duplicate spec %+v", s)
		}
		seen[s] = true
		if s.NoYellow {
			hasNoYellow = true
		}
	}
	if !hasNoYellow {
		t.Error("no NoYellow (forced FuseBreak) variant enumerated")
	}

	// Without chain fusion the chain axis collapses to mask 0.
	cfg := testConfig()
	cfg.ChainFusion = false
	for _, s := range EnumerateSpecs(e, cfg) {
		if s.ChainMask != 0 {
			t.Errorf("chain-fusion-off spec %+v has a nonzero mask", s)
		}
	}
}

// TestSearchDeterministicUnderStepClock: with the measurement clock
// stubbed to a fixed step, every candidate measures identically, ties
// keep the incumbent, and the search returns the analytical choice —
// twice, identically. This is the determinism contract the CI autotune
// gate relies on.
func TestSearchDeterministicUnderStepClock(t *testing.T) {
	tuner.SetClock(tuner.StepClock(1000))
	defer tuner.ResetClock()
	cfg := testConfig()
	cfg.Budget = 6
	first, err := Search(buildECG(t, models.MicroMLP()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Analytical {
		t.Errorf("frozen clock should keep the analytical choice; winner %+v", first.Spec)
	}
	if first.MeasuredRuns < 1 || first.MeasuredRuns > cfg.Budget {
		t.Errorf("MeasuredRuns = %d, want within [1, %d]", first.MeasuredRuns, cfg.Budget)
	}
	second, err := Search(buildECG(t, models.MicroMLP()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Spec != second.Spec || len(first.Tuned.Kernels) != len(second.Tuned.Kernels) {
		t.Fatalf("search not deterministic: %+v vs %+v", first.Tuned, second.Tuned)
	}
	for i := range first.Tuned.Kernels {
		a, b := first.Tuned.Kernels[i], second.Tuned.Kernels[i]
		if a.Task != b.Task || a.Schedule != b.Schedule {
			t.Errorf("kernel %d differs across searches: %+v vs %+v", i, a, b)
		}
	}
}

// TestRebuildReplaysWinner: a persisted winner rebuilds on a fresh ECG to
// the same plan shape and the same schedules, with zero measurement.
func TestRebuildReplaysWinner(t *testing.T) {
	tuner.SetClock(tuner.StepClock(1000))
	defer tuner.ResetClock()
	cfg := testConfig()
	res, err := Search(buildECG(t, models.MicroAttention()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, kernels, err := Rebuild(buildECG(t, models.MicroAttention()), cfg, res.Tuned)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Blocks) != len(res.Plan.Blocks) {
		t.Fatalf("rebuilt plan has %d blocks, search had %d", len(plan.Blocks), len(res.Plan.Blocks))
	}
	if len(kernels) != len(res.Kernels) {
		t.Fatalf("rebuilt %d kernels, search had %d", len(kernels), len(res.Kernels))
	}
	for i := range kernels {
		if kernels[i].Schedule != res.Kernels[i].Schedule || kernels[i].ProducerSchedule != res.Kernels[i].ProducerSchedule {
			t.Errorf("kernel %d schedule differs after rebuild: %+v/%+v vs %+v/%+v", i,
				kernels[i].Schedule, kernels[i].ProducerSchedule, res.Kernels[i].Schedule, res.Kernels[i].ProducerSchedule)
		}
	}
}

// TestRebuildRejectsDrift: a tampered payload (task-string drift,
// truncated kernel list) must fail instead of silently applying
// schedules to the wrong kernels.
func TestRebuildRejectsDrift(t *testing.T) {
	tuner.SetClock(tuner.StepClock(1000))
	defer tuner.ResetClock()
	cfg := testConfig()
	res, err := Search(buildECG(t, models.MicroMLP()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuned.Kernels) == 0 {
		t.Fatal("winner has no schedulable kernels to tamper with")
	}

	drifted := res.Tuned
	drifted.Kernels = append([]profile.TunedKernel(nil), res.Tuned.Kernels...)
	drifted.Kernels[0].Task = "sched|bogus|m=0,n=0,k=0"
	if _, _, err := Rebuild(buildECG(t, models.MicroMLP()), cfg, drifted); err == nil {
		t.Error("Rebuild accepted a drifted task string")
	}

	short := res.Tuned
	short.Kernels = res.Tuned.Kernels[:len(res.Tuned.Kernels)-1]
	if _, _, err := Rebuild(buildECG(t, models.MicroMLP()), cfg, short); err == nil {
		t.Error("Rebuild accepted a truncated kernel list")
	}
}

// ulp is the float32 representation distance, monotonic across zero
// (the fuzz harness's comparison, reused for candidate-plan parity).
func ulp(a, b float32) uint32 {
	ba, bb := math.Float32bits(a), math.Float32bits(b)
	if ba == bb {
		return 0
	}
	norm := func(x uint32) int64 {
		if x&0x80000000 != 0 {
			return -int64(x & 0x7fffffff)
		}
		return int64(x)
	}
	d := norm(ba) - norm(bb)
	if d < 0 {
		d = -d
	}
	return uint32(d)
}

// TestEveryCandidatePlanParity is the enumerator's numeric contract:
// every plan variant the enumerator can emit — every chain mask and the
// forced-FuseBreak variant, across the whole micro zoo — executes
// bit-exact against the reference interpreter, except plans containing
// an online-softmax chain, which stay within a fixed ULP bound (the
// online two-pass recomputation reorders the reduction).
func TestEveryCandidatePlanParity(t *testing.T) {
	const onlineULPMax = 64
	for _, m := range microGraphs() {
		t.Run(m.name, func(t *testing.T) {
			e := buildECG(t, m.build())
			cfg := testConfig()
			feeds := feedsFor(e.G, 12345)
			want, err := graph.InterpretOutputs(e.G, feeds)
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range EnumerateSpecs(e, cfg) {
				plan, kernels, err := Build(e, cfg, spec)
				if err != nil {
					t.Fatalf("spec %+v: %v", spec, err)
				}
				online := false
				for _, b := range plan.Blocks {
					if b.Chain != nil && b.Chain.Online {
						online = true
					}
				}
				got := runCandidate(t, e, plan, kernels, feeds)
				if len(got) != len(want) {
					t.Fatalf("spec %+v produced %d outputs, want %d", spec, len(got), len(want))
				}
				for oi := range want {
					wd, gd := want[oi].Data(), got[oi].Data()
					for i := range wd {
						if online {
							if u := ulp(wd[i], gd[i]); u > onlineULPMax {
								t.Fatalf("spec %+v output %d[%d]: %g vs %g (%d ULP > %d)", spec, oi, i, gd[i], wd[i], u, onlineULPMax)
							}
						} else if math.Float32bits(wd[i]) != math.Float32bits(gd[i]) {
							t.Fatalf("spec %+v output %d[%d]: %g != %g (want bit-exact)", spec, oi, i, gd[i], wd[i])
						}
					}
				}
			}
		})
	}
}
