// Package autotune closes the measured-feedback loop over the compiler:
// instead of trusting the ECG heuristics and the analytical cache model,
// it enumerates candidate fusion plans (chain fusion on/off per detected
// chain, plus the FuseBreak variant that overrides the yellow-decision
// heuristic — the FusionSpace idea of enumerating fusion decisions as a
// bit vector), pairs each plan with the tuner's top-k schedule
// candidates, and scores the (plan, schedule) pairs with short measured
// runs of the real compiled kernels. The analytical simulator is the
// prior that ranks candidates so a bounded measurement budget is spent
// on the most promising ones; winners persist in profile.DB format v4
// keyed by (graph fingerprint, device, batch size), so repeat
// compilations rebuild the winning plan deterministically with zero
// measurement.
package autotune

import (
	"fmt"

	"dnnfusion/internal/codegen"
	"dnnfusion/internal/device"
	"dnnfusion/internal/ecg"
	"dnnfusion/internal/engine"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/profile"
	"dnnfusion/internal/tensor"
	"dnnfusion/internal/tuner"
)

// Spec names one fusion-plan variant. Rebuilding a plan from a Spec is
// deterministic (GeneratePlan and FuseChainsMask are pure functions of
// the graph and options), which is what lets a persisted winner warm-
// start a later compilation without re-search.
type Spec struct {
	// ChainMask selects which detected contraction chains fuse (bit i =
	// chain i in DetectChains order).
	ChainMask uint64
	// NoYellow forces every yellow (FuseDepend) decision to break.
	NoYellow bool
	// Seeds is the planner's seed policy.
	Seeds fusion.SeedPolicy
}

// Config parameterizes one search.
type Config struct {
	// Fusion is the base planner configuration (limits, latency resolver,
	// default seed policy). Spec fields override Seeds/NoYellow per
	// candidate.
	Fusion fusion.Options
	// ChainFusion gates the chain-mask axis; when false only mask 0 is
	// enumerated, matching WithoutChainFusion.
	ChainFusion bool
	// Device is the schedule-tuning device profile.
	Device *device.Device
	// Budget caps measured candidates: every timed (plan, schedule)
	// measurement counts against it. At least one (the analytical
	// baseline) is always measured.
	Budget int
	// TopK is the per-kernel schedule shortlist length for the
	// refinement stage. Zero means 3.
	TopK int
	// Cache shares generated kernels across candidates (and with the
	// surrounding compilation).
	Cache *codegen.Cache
	// Threads/Pool mirror the final executor's worker configuration so
	// candidates are measured the way the model will run.
	Threads int
	Pool    *engine.Pool
	// Measure sizes each timed run.
	Measure tuner.MeasureOptions
	// Seed derives the deterministic random input data.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.TopK <= 0 {
		c.TopK = 3
	}
	if c.Budget < 1 {
		c.Budget = 1
	}
	if c.Device == nil {
		c.Device = device.Snapdragon865CPU()
	}
	return c
}

// Result is a search's winner, ready to slot into the compilation
// pipeline in place of the analytical plan and schedules.
type Result struct {
	Spec    Spec
	Plan    *fusion.Plan
	Kernels []*codegen.Kernel
	// MeasuredNs is the winner's measured ns/inference; MeasuredRuns the
	// measurements spent; Analytical whether the winner coincides with
	// the analytical choice (baseline plan, analytical schedules).
	MeasuredNs   int64
	MeasuredRuns int
	Analytical   bool
	// Tuned is the persistable form of the winner (the exact payload
	// Rebuild replays).
	Tuned profile.TunedPlan
}

// EnumerateSpecs spells out the candidate fusion-plan space for a graph,
// baseline (the analytical choice: every chain fused, heuristic yellow
// decisions, configured seed policy) first. With k detected chains the
// chain axis enumerates all 2^k masks for k ≤ 3, else the full mask,
// each single-chain-off mask, and the all-off mask; the NoYellow variant
// rides on the full mask. The list is deterministic and bounded — the
// measurement budget, not the enumeration, is the expensive side.
func EnumerateSpecs(e *ecg.ECG, cfg Config) []Spec {
	cfg = cfg.withDefaults()
	base := Spec{Seeds: cfg.Fusion.Seeds}
	var full uint64
	nchains := 0
	if cfg.ChainFusion {
		nchains = len(fusion.DetectChains(e))
		full = chainMaskAll(nchains)
	}
	base.ChainMask = full
	specs := []Spec{base}
	seen := map[Spec]bool{base: true}
	add := func(s Spec) {
		if !seen[s] {
			seen[s] = true
			specs = append(specs, s)
		}
	}
	if nchains > 0 {
		if nchains <= 3 {
			for mask := full; ; mask-- {
				add(Spec{ChainMask: mask, Seeds: base.Seeds})
				if mask == 0 {
					break
				}
			}
		} else {
			for i := 0; i < nchains && i < 64; i++ {
				add(Spec{ChainMask: full &^ (1 << uint(i)), Seeds: base.Seeds})
			}
			add(Spec{ChainMask: 0, Seeds: base.Seeds})
		}
	}
	add(Spec{ChainMask: full, NoYellow: true, Seeds: base.Seeds})
	return specs
}

// chainMaskAll is the full mask for n detected chains.
func chainMaskAll(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(n)) - 1
}

// build compiles one candidate: plan generation under the spec, chain
// fusion restricted to the spec's mask, and codegen. The shared ECG is
// read-only to this path, so candidates coexist.
func build(e *ecg.ECG, cfg Config, spec Spec) (*fusion.Plan, []*codegen.Kernel, error) {
	fopts := cfg.Fusion
	fopts.Seeds = spec.Seeds
	fopts.NoYellow = spec.NoYellow
	plan := fusion.GeneratePlan(e, fopts)
	if cfg.ChainFusion && spec.ChainMask != 0 {
		fusion.FuseChainsMask(e, plan, fopts, spec.ChainMask)
	}
	kernels, err := codegen.CompilePlan(e, plan, cfg.Cache)
	if err != nil {
		return nil, nil, err
	}
	return plan, kernels, nil
}

// Build compiles one candidate plan for a spec without measuring it —
// the parity suites use it to execute every plan the enumerator can
// emit against the reference interpreter.
func Build(e *ecg.ECG, cfg Config, spec Spec) (*fusion.Plan, []*codegen.Kernel, error) {
	cfg = cfg.withDefaults()
	plan, kernels, err := build(e, cfg, spec)
	if err != nil {
		return nil, nil, err
	}
	applyAnalytical(kernels, cfg.Device)
	return plan, kernels, nil
}

// applyAnalytical assigns the analytical best schedule to every
// schedulable kernel (what core's selectSchedules would pick, minus the
// profile cache) and returns how many kernels are schedulable.
func applyAnalytical(kernels []*codegen.Kernel, dev *device.Device) int {
	n := 0
	for _, k := range kernels {
		if k.Block.Chain != nil {
			if pm, pn, pk, cm, cn, ck, ok := k.ChainScheduleTasks(); ok {
				k.TaskM, k.TaskN, k.TaskK = cm, cn, ck
				res := tuner.SelectChain(
					tuner.Task{M: pm, N: pn, K: pk, Device: dev},
					tuner.Task{M: cm, N: cn, K: ck, Device: dev})
				k.Schedule, k.ProducerSchedule = res.Consumer, res.Producer
				n++
				continue
			}
		}
		if m, nn, kk, ok := k.ScheduleTask(); ok {
			k.TaskM, k.TaskN, k.TaskK = m, nn, kk
			res := tuner.Select(tuner.Task{M: m, N: nn, K: kk, Device: dev}, tuner.GAOptions{})
			k.Schedule = res.Schedule
			n++
		}
	}
	return n
}

// taskKey canonicalizes a schedulable kernel's tuning task for the
// persisted plan (and for the warm-start cross-check).
func taskKey(k *codegen.Kernel, dev *device.Device) (string, bool) {
	if k.Block.Chain != nil {
		if pm, pn, pk, cm, cn, ck, ok := k.ChainScheduleTasks(); ok {
			return profile.ChainScheduleKey(dev.Name, pm, pn, pk, cm, cn, ck), true
		}
	}
	if m, n, kk, ok := k.ScheduleTask(); ok {
		return profile.ScheduleKey(dev.Name, m, n, kk), true
	}
	return "", false
}

// snapshot captures the schedulable kernels' current schedules as the
// persistable tuned-plan payload.
func snapshot(spec Spec, kernels []*codegen.Kernel, dev *device.Device) profile.TunedPlan {
	tp := profile.TunedPlan{
		ChainMask: spec.ChainMask,
		NoYellow:  spec.NoYellow,
		Seeds:     int(spec.Seeds),
	}
	for _, k := range kernels {
		key, ok := taskKey(k, dev)
		if !ok {
			continue
		}
		tk := profile.TunedKernel{Task: key, Schedule: k.Schedule}
		if k.Block.Chain != nil {
			ps := k.ProducerSchedule
			tk.Producer = &ps
		}
		tp.Kernels = append(tp.Kernels, tk)
	}
	return tp
}

// feedsFor builds deterministic random input data for the graph: the
// measurement workload. The seed folds the caller's (fingerprint-
// derived) seed with the input index so inputs differ but runs repeat.
func feedsFor(g *graph.Graph, seed uint64) map[*graph.Value]*tensor.Tensor {
	feeds := make(map[*graph.Value]*tensor.Tensor, len(g.Inputs))
	for i, in := range g.Inputs {
		feeds[in] = tensor.NewOf(in.Shape).Rand(seed*1099511628211 + uint64(i) + 1)
	}
	return feeds
}

// measure times one candidate: a throwaway executor over the shared ECG
// (borrowing the deployment pool when one is configured, so candidates
// run on the lanes the model will use), a dedicated warmed session, and
// a short best-of-N window.
func measure(e *ecg.ECG, plan *fusion.Plan, kernels []*codegen.Kernel, cfg Config, feeds map[*graph.Value]*tensor.Tensor) (int64, error) {
	var x *engine.Executor
	var err error
	if cfg.Pool != nil {
		x, err = engine.NewExecutorPool(e, plan, kernels, cfg.Pool)
	} else {
		x, err = engine.NewExecutorThreads(e, plan, kernels, cfg.Threads)
	}
	if err != nil {
		return 0, err
	}
	run, release, err := engine.MeasureRunner(x, feeds)
	if err != nil {
		return 0, err
	}
	defer release()
	return tuner.Measure(run, cfg.Measure)
}

// prior ranks a candidate with the analytical device simulator — the
// model that used to be the only opinion, demoted to a pruning prior.
func prior(e *ecg.ECG, plan *fusion.Plan, cfg Config) float64 {
	rep, err := engine.Simulate(e, plan, cfg.Device, engine.Options{Cache: cfg.Cache})
	if err != nil {
		return 0
	}
	return rep.LatencyMs
}

// Search runs the joint fusion-plan × schedule search over a rewritten
// graph's ECG. Stage 1 enumerates plan variants, ranks them by the
// analytical prior (baseline always measured first), and measures the
// best-ranked ones with analytical schedules until half the budget is
// spent. Stage 2 spends the remaining budget refining the winning
// plan's kernel schedules greedily — heaviest kernel first, trying the
// tuner's top-k shortlist, keeping strict improvements. Ties keep the
// incumbent, so under a frozen measurement clock the search degrades to
// exactly the analytical choice.
func Search(e *ecg.ECG, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	specs := EnumerateSpecs(e, cfg)

	type cand struct {
		spec    Spec
		plan    *fusion.Plan
		kernels []*codegen.Kernel
		prior   float64
	}
	cands := make([]*cand, 0, len(specs))
	for _, spec := range specs {
		plan, kernels, err := build(e, cfg, spec)
		if err != nil {
			return nil, fmt.Errorf("autotune: candidate %+v: %w", spec, err)
		}
		applyAnalytical(kernels, cfg.Device)
		cands = append(cands, &cand{spec: spec, plan: plan, kernels: kernels, prior: prior(e, plan, cfg)})
	}
	// Prior order, baseline pinned first: it is the no-measurement
	// choice, so it must always be in the measured set (the search can
	// only ever beat it, never silently lose to it).
	base := cands[0]
	rest := append([]*cand(nil), cands[1:]...)
	for i := 1; i < len(rest); i++ {
		for j := i; j > 0 && rest[j].prior < rest[j-1].prior; j-- {
			rest[j], rest[j-1] = rest[j-1], rest[j]
		}
	}
	ordered := append([]*cand{base}, rest...)

	planBudget := cfg.Budget
	if cfg.Budget > 2 {
		planBudget = (cfg.Budget + 1) / 2
	}
	if planBudget > len(ordered) {
		planBudget = len(ordered)
	}

	feeds := feedsFor(e.G, cfg.Seed)
	runs := 0
	var best *cand
	var bestNs int64
	for _, c := range ordered[:planBudget] {
		ns, err := measure(e, c.plan, c.kernels, cfg, feeds)
		if err != nil {
			return nil, fmt.Errorf("autotune: measuring %+v: %w", c.spec, err)
		}
		runs++
		if best == nil || ns < bestNs {
			best, bestNs = c, ns
		}
	}

	scheduleDiffers := false
	remaining := cfg.Budget - runs
	if remaining > 0 && cfg.TopK > 1 {
		// Heaviest kernels first: their schedules move the most time.
		order := make([]*codegen.Kernel, len(best.kernels))
		copy(order, best.kernels)
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && order[j].FLOPs > order[j-1].FLOPs; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
	refine:
		for _, k := range order {
			if k.Block.Chain != nil {
				pm, pn, pk, cm, cn, ck, ok := k.ChainScheduleTasks()
				if !ok {
					continue
				}
				for _, alt := range tuner.SelectChainTopK(
					tuner.Task{M: pm, N: pn, K: pk, Device: cfg.Device},
					tuner.Task{M: cm, N: cn, K: ck, Device: cfg.Device}, cfg.TopK) {
					if alt.Consumer == k.Schedule && alt.Producer == k.ProducerSchedule {
						continue
					}
					if remaining <= 0 {
						break refine
					}
					prevC, prevP := k.Schedule, k.ProducerSchedule
					k.Schedule, k.ProducerSchedule = alt.Consumer, alt.Producer
					ns, err := measure(e, best.plan, best.kernels, cfg, feeds)
					if err != nil {
						return nil, fmt.Errorf("autotune: refining chain kernel %s: %w", k.Name, err)
					}
					runs++
					remaining--
					if ns < bestNs {
						bestNs = ns
						scheduleDiffers = true
					} else {
						k.Schedule, k.ProducerSchedule = prevC, prevP
					}
				}
				continue
			}
			m, n, kk, ok := k.ScheduleTask()
			if !ok {
				continue
			}
			for _, alt := range tuner.SelectTopK(tuner.Task{M: m, N: n, K: kk, Device: cfg.Device}, cfg.TopK) {
				if alt == k.Schedule {
					continue
				}
				if remaining <= 0 {
					break refine
				}
				prev := k.Schedule
				k.Schedule = alt
				ns, err := measure(e, best.plan, best.kernels, cfg, feeds)
				if err != nil {
					return nil, fmt.Errorf("autotune: refining kernel %s: %w", k.Name, err)
				}
				runs++
				remaining--
				if ns < bestNs {
					bestNs = ns
					scheduleDiffers = true
				} else {
					k.Schedule = prev
				}
			}
		}
	}

	res := &Result{
		Spec:         best.spec,
		Plan:         best.plan,
		Kernels:      best.kernels,
		MeasuredNs:   bestNs,
		MeasuredRuns: runs,
		Analytical:   best == base && !scheduleDiffers,
	}
	res.Tuned = snapshot(best.spec, best.kernels, cfg.Device)
	res.Tuned.MeasuredNs = bestNs
	res.Tuned.MeasuredRuns = runs
	res.Tuned.Analytical = res.Analytical
	return res, nil
}

// Rebuild replays a persisted winner over a freshly built (and
// rewritten) ECG with zero measurement: the plan is regenerated
// deterministically from the spec, and the stored per-kernel schedules
// are applied positionally after cross-checking each kernel's canonical
// task string. A mismatch (the graph, the planner, or the device changed
// since the plan was tuned) returns an error; the caller falls back to a
// fresh search.
func Rebuild(e *ecg.ECG, cfg Config, tp profile.TunedPlan) (*fusion.Plan, []*codegen.Kernel, error) {
	cfg = cfg.withDefaults()
	spec := Spec{ChainMask: tp.ChainMask, NoYellow: tp.NoYellow, Seeds: fusion.SeedPolicy(tp.Seeds)}
	plan, kernels, err := build(e, cfg, spec)
	if err != nil {
		return nil, nil, err
	}
	j := 0
	for _, k := range kernels {
		key, ok := taskKey(k, cfg.Device)
		if !ok {
			continue
		}
		if j >= len(tp.Kernels) {
			return nil, nil, fmt.Errorf("autotune: tuned plan has %d kernels, rebuilt plan has more", len(tp.Kernels))
		}
		tk := tp.Kernels[j]
		if tk.Task != key {
			return nil, nil, fmt.Errorf("autotune: tuned kernel %d is %q, rebuilt plan has %q", j, tk.Task, key)
		}
		k.Schedule = tk.Schedule
		if k.Block.Chain != nil {
			if tk.Producer == nil {
				return nil, nil, fmt.Errorf("autotune: tuned kernel %d (%q) misses the producer schedule", j, tk.Task)
			}
			k.ProducerSchedule = *tk.Producer
			if _, _, _, cm, cn, ck, ok := k.ChainScheduleTasks(); ok {
				k.TaskM, k.TaskN, k.TaskK = cm, cn, ck
			}
		} else if m, n, kk, ok := k.ScheduleTask(); ok {
			k.TaskM, k.TaskN, k.TaskK = m, n, kk
		}
		j++
	}
	if j != len(tp.Kernels) {
		return nil, nil, fmt.Errorf("autotune: tuned plan has %d kernels, rebuilt plan has %d", len(tp.Kernels), j)
	}
	return plan, kernels, nil
}
