package core

import (
	"testing"

	"dnnfusion/internal/graph"
	"dnnfusion/internal/models"
	"dnnfusion/internal/profile"
)

func buildMicro(name string) *graph.Graph {
	if name == "micro-mlp" {
		return models.MicroMLP()
	}
	return models.MicroAttention()
}

// TestChainFusionShrinksPlannedPeak pins the tentpole memory claim end to
// end: compiling with chain fusion merges the contraction chain of each
// micro model into one streaming kernel, and the M×N intermediate dropping
// out of the arena strictly shrinks PlannedPeakBytes.
func TestChainFusionShrinksPlannedPeak(t *testing.T) {
	for _, m := range []struct {
		name   string
		online bool
	}{
		{"micro-mlp", false},
		{"micro-attention", true},
	} {
		t.Run(m.name, func(t *testing.T) {
			off := Defaults()
			off.ChainFusion = false
			base, err := Compile(buildMicro(m.name), off)
			if err != nil {
				t.Fatal(err)
			}
			fused, err := Compile(buildMicro(m.name), Defaults())
			if err != nil {
				t.Fatal(err)
			}
			if fused.Stats.ChainFusions == 0 {
				t.Fatal("no chain fused under Defaults")
			}
			if base.Stats.ChainFusions != 0 {
				t.Fatalf("ChainFusions = %d with the pass disabled", base.Stats.ChainFusions)
			}
			if fused.HasOnlineChain() != m.online {
				t.Errorf("HasOnlineChain = %v, want %v", fused.HasOnlineChain(), m.online)
			}
			if fp, bp := fused.PlannedPeakBytes(), base.PlannedPeakBytes(); fp >= bp {
				t.Errorf("fused peak %d bytes, unfused %d — intermediate not eliminated", fp, bp)
			}
			if fk, bk := len(fused.Kernels), len(base.Kernels); fk >= bk {
				t.Errorf("fused kernel count %d, unfused %d — chain did not merge kernels", fk, bk)
			}
		})
	}
}

// TestChainScheduleCachedInProfileDB: the joint producer/consumer schedule
// of a chain kernel is a tuner search on first compile and a profile-DB
// hit on the second, under the chain-specific key space.
func TestChainScheduleCachedInProfileDB(t *testing.T) {
	db := profile.New()
	opts := Defaults()
	opts.ProfileDB = db
	first, err := Compile(buildMicro("micro-attention"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.ChainFusions == 0 {
		t.Fatal("no chain fused")
	}
	if db.ChainScheduleLen() == 0 {
		t.Fatal("first compile cached no chain schedule")
	}
	second, err := Compile(buildMicro("micro-attention"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.ScheduleMisses != 0 {
		t.Errorf("second compile missed %d schedule lookups — chain key not cached",
			second.Stats.ScheduleMisses)
	}
	// The cached pair must reproduce the searched pair on the chain kernel.
	for i, k := range second.Kernels {
		fk := first.Kernels[i]
		if k.Schedule != fk.Schedule || k.ProducerSchedule != fk.ProducerSchedule {
			t.Errorf("kernel %d schedules differ across cached recompile: %+v/%+v vs %+v/%+v",
				i, k.Schedule, k.ProducerSchedule, fk.Schedule, fk.ProducerSchedule)
		}
	}
}
