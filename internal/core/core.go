// Package core wires DNNFusion's passes into the end-to-end compiler of
// Figure 1: Extended Computational Graph construction, mathematical-
// property-based graph rewriting, light-weight profile-driven fusion plan
// exploration, and fusion code generation with the intra-/inter-block
// optimizations — plus execution (numeric) and simulation (device model)
// entry points. The root dnnfusion package re-exports this as the public
// API.
package core

import (
	"strconv"
	"time"

	"dnnfusion/internal/autotune"
	"dnnfusion/internal/codegen"
	"dnnfusion/internal/device"
	"dnnfusion/internal/ecg"
	"dnnfusion/internal/engine"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/profile"
	"dnnfusion/internal/rewrite"
	"dnnfusion/internal/tensor"
	"dnnfusion/internal/tuner"
)

// Options selects which parts of the pipeline run; the defaults (via
// Defaults) are the full DNNFusion configuration. The Figure 7 breakdown
// toggles the individual flags.
type Options struct {
	// GraphRewrite enables the §4.2 rewriting pass.
	GraphRewrite bool
	// Fusion enables fusion plan exploration; when false every operator
	// becomes its own kernel (the paper's OurB).
	Fusion bool
	// OtherOpt enables the §4.4.2 intra-/inter-block optimizations.
	OtherOpt bool
	// ChainFusion enables the contraction-chain post-pass over the fusion
	// plan: MatMul/Gemm → (pointwise|row-softmax) → MatMul/Gemm chains
	// merge into one streaming kernel that never materializes the
	// intermediate (flash-attention-style online softmax for attention
	// chains). Requires Fusion; off in the zero Options for the Figure 7
	// partial-pipeline configurations.
	ChainFusion bool
	// Seeds selects the planner's seed policy (ablation).
	Seeds fusion.SeedPolicy
	// MaxBlockOps / MaxBlockInputs forward the planner constraints.
	MaxBlockOps    int
	MaxBlockInputs int
	// Device resolves yellow fusion decisions through the cost model;
	// nil accepts them optimistically.
	Device *device.Device
	// ProfileDB caches yellow-decision measurements across compilations.
	ProfileDB *profile.DB
	// Cache shares generated kernels across models.
	Cache *codegen.Cache
	// Quality forwards the framework kernel-quality factor to simulation.
	Quality float64
	// Threads is the CPU executor's worker-lane count for intra-kernel
	// parallelism: 0 means GOMAXPROCS, 1 disables it.
	Threads int
	// Pool, when non-nil, makes the executor borrow an existing worker
	// pool instead of owning one (Threads is then ignored). Batch-capacity
	// variants of a model compile with the base model's pool here so the
	// pair shares one set of worker lanes; the caller must keep the pool's
	// owning executor reachable (see engine.NewExecutorPool).
	Pool *engine.Pool
	// MeasureBudget, when positive, replaces analytical plan and schedule
	// selection with the measured-feedback search (internal/autotune):
	// candidate fusion plans × top-k schedules scored by short timed runs
	// of the real kernels, at most MeasureBudget measurements. Winners
	// persist in ProfileDB (format v4, keyed by graph fingerprint ×
	// device × batch size) so repeat compilations warm-start with zero
	// measurement. Zero keeps the analytical path — the default, so CI
	// and cold-start latency are unchanged. Requires Fusion.
	MeasureBudget int
	// BatchSize keys measured-tuning results per formed batch size;
	// CompileBatch sets it to the variant's capacity. Zero means 1.
	BatchSize int
}

// Defaults is the full DNNFusion pipeline.
func Defaults() Options {
	return Options{GraphRewrite: true, Fusion: true, OtherOpt: true, ChainFusion: true}
}

// CompileStats reports what compilation did — the inputs to Figure 9b.
// The *Ms fields are the per-stage wall-clock timings of the pipeline
// (rewrite → fusion → codegen → schedule tuning → executor/memory
// planning), so observability layers can attribute compile cost to a
// stage.
type CompileStats struct {
	RewriteMs float64
	FusionMs  float64
	CodegenMs float64
	// TuneMs covers schedule selection (GA search + profile-DB lookups);
	// PlanMs covers executor construction: block scheduling and the arena
	// memory plan.
	TuneMs float64
	PlanMs float64
	// ProfileLookups is the number of yellow decisions; ProfileMisses is
	// how many required a fresh measurement (empty or cold database).
	ProfileLookups  int
	ProfileMisses   int
	RewriteApplied  int
	RewriteStats    rewrite.Stats
	KernelCacheHits int
	// ScheduleLookups is the number of heavy kernels whose tile schedule
	// was selected; ScheduleMisses is how many required a fresh GA search
	// (the rest hit the profile database's schedule cache).
	ScheduleLookups int
	ScheduleMisses  int
	// ChainFusions is the number of contraction chains merged into
	// streaming chain kernels.
	ChainFusions int
	// Measured-tuning accounting (Options.MeasureBudget > 0): MeasuredRuns
	// is how many timed candidate measurements this compilation spent
	// (zero on a tuned-plan warm start), TunedPlanHits/TunedPlanMisses
	// whether the profile database already held the winner, and
	// TunedDiffers whether the measured winner differs from the
	// analytical choice (a different plan variant or at least one
	// different kernel schedule).
	MeasuredRuns    int
	TunedPlanHits   int
	TunedPlanMisses int
	TunedDiffers    bool
}

// Compiled is a ready-to-run model. After Compile returns it is immutable:
// any number of goroutines may execute it concurrently through per-goroutine
// sessions (NewSession), and Simulate is safe to call concurrently as well.
type Compiled struct {
	G       *graph.Graph
	E       *ecg.ECG
	Plan    *fusion.Plan
	Kernels []*codegen.Kernel
	Opts    Options
	Stats   CompileStats
	// Fingerprint is the post-rewrite structural graph fingerprint
	// (graph.Fingerprint); set when measured tuning runs, it is the graph
	// axis of the tuned plan's profile-database key.
	Fingerprint string

	exec *engine.Executor
}

// Compile clones g and runs the configured pipeline over the clone (the
// input graph is never mutated).
func Compile(g *graph.Graph, opts Options) (*Compiled, error) {
	work := g.Clone()
	e := ecg.Build(work)
	c := &Compiled{G: work, E: e, Opts: opts}

	if opts.GraphRewrite {
		start := time.Now()
		st, err := rewrite.NewDefaultEngine().Run(e)
		if err != nil {
			return nil, err
		}
		c.Stats.RewriteStats = st
		c.Stats.RewriteApplied = st.Applied
		c.Stats.RewriteMs = float64(time.Since(start).Microseconds()) / 1000
	}

	fopts := fusion.Options{
		Seeds:          opts.Seeds,
		MaxBlockOps:    opts.MaxBlockOps,
		MaxBlockInputs: opts.MaxBlockInputs,
	}
	if opts.Device != nil {
		fopts.Latency = c.latencyFunc()
	}
	if opts.Fusion && opts.MeasureBudget > 0 {
		// Measured-feedback path: plan enumeration, codegen, and schedule
		// selection happen jointly inside the search (or the warm-start
		// rebuild), so the whole stage is attributed to TuneMs.
		cacheHitsBefore := 0
		if opts.Cache != nil {
			cacheHitsBefore = opts.Cache.Hits
		}
		start := time.Now()
		if err := c.compileMeasured(fopts); err != nil {
			return nil, err
		}
		c.Stats.TuneMs = float64(time.Since(start).Microseconds()) / 1000
		if opts.Cache != nil {
			c.Stats.KernelCacheHits = opts.Cache.Hits - cacheHitsBefore
		}
		c.Plan.MarkRemovable(e)
	} else {
		start := time.Now()
		if opts.Fusion {
			c.Plan = fusion.GeneratePlan(e, fopts)
			if opts.ChainFusion {
				fusion.FuseChains(e, c.Plan, fopts)
				c.Stats.ChainFusions = c.Plan.ChainFusions
			}
		} else {
			c.Plan = fusion.SingletonPlan(e)
		}
		c.Stats.FusionMs = float64(time.Since(start).Microseconds()) / 1000
		c.Plan.MarkRemovable(e)

		cacheHitsBefore := 0
		if opts.Cache != nil {
			cacheHitsBefore = opts.Cache.Hits
		}
		start = time.Now()
		kernels, err := codegen.CompilePlan(e, c.Plan, opts.Cache)
		if err != nil {
			return nil, err
		}
		c.Stats.CodegenMs = float64(time.Since(start).Microseconds()) / 1000
		c.Kernels = kernels
		if opts.Cache != nil {
			c.Stats.KernelCacheHits = opts.Cache.Hits - cacheHitsBefore
		}
		start = time.Now()
		c.selectSchedules()
		c.Stats.TuneMs = float64(time.Since(start).Microseconds()) / 1000
	}
	start := time.Now()
	var err error
	if opts.Pool != nil {
		c.exec, err = engine.NewExecutorPool(e, c.Plan, c.Kernels, opts.Pool)
	} else {
		c.exec, err = engine.NewExecutorThreads(e, c.Plan, c.Kernels, opts.Threads)
	}
	if err != nil {
		return nil, err
	}
	c.Stats.PlanMs = float64(time.Since(start).Microseconds()) / 1000
	return c, nil
}

// compileMeasured is the MeasureBudget > 0 plan/schedule stage: look the
// tuned plan up in the profile database by (fingerprint, device, batch)
// and rebuild it with zero measurement, or run the measured search and
// persist the winner. A stale database entry (the rebuilt plan no longer
// matches the stored kernels — planner or graph drift) falls through to
// a fresh search that overwrites it.
func (c *Compiled) compileMeasured(fopts fusion.Options) error {
	opts := c.Opts
	dev := opts.scheduleDevice()
	fp := graph.Fingerprint(c.G)
	c.Fingerprint = fp
	key := profile.PlanKey(dev.Name, fp, opts.BatchSize)
	seed, _ := strconv.ParseUint(fp, 16, 64)
	acfg := autotune.Config{
		Fusion:      fopts,
		ChainFusion: opts.ChainFusion,
		Device:      dev,
		Budget:      opts.MeasureBudget,
		Cache:       opts.Cache,
		Threads:     opts.Threads,
		Pool:        opts.Pool,
		Seed:        seed,
	}
	if opts.ProfileDB != nil {
		if tp, ok := opts.ProfileDB.LookupPlan(key); ok {
			plan, kernels, err := autotune.Rebuild(c.E, acfg, tp)
			if err == nil {
				c.Plan, c.Kernels = plan, kernels
				c.Stats.TunedPlanHits++
				c.Stats.ScheduleLookups += len(tp.Kernels)
				c.Stats.ChainFusions = plan.ChainFusions
				c.Stats.TunedDiffers = !tp.Analytical
				return nil
			}
		}
	}
	c.Stats.TunedPlanMisses++
	res, err := autotune.Search(c.E, acfg)
	if err != nil {
		return err
	}
	c.Plan, c.Kernels = res.Plan, res.Kernels
	c.Stats.MeasuredRuns = res.MeasuredRuns
	c.Stats.TunedDiffers = !res.Analytical
	c.Stats.ScheduleLookups += len(res.Tuned.Kernels)
	c.Stats.ScheduleMisses += len(res.Tuned.Kernels)
	c.Stats.ChainFusions = res.Plan.ChainFusions
	if opts.ProfileDB != nil {
		opts.ProfileDB.InsertPlan(key, res.Tuned)
	}
	return nil
}

// SharedPool returns the executor's worker pool (nil when single-threaded)
// so a batch-capacity variant can borrow it via Options.Pool.
func (c *Compiled) SharedPool() *engine.Pool { return c.exec.Pool() }

// Profile snapshots the per-kernel execution profile accumulated across
// every session while telemetry was armed (see internal/obs).
func (c *Compiled) Profile() []engine.KernelProfile { return c.exec.Profile() }

// KernelStats exposes the executor's per-kernel accounting (aligned with
// ScheduledKernels) so serving layers can attach the latency histograms to
// their metric registries.
func (c *Compiled) KernelStats() []*engine.KernelStat { return c.exec.KernelStats() }

// ScheduledKernels returns the compiled kernels in execution order — the
// index space of KernelStats and session spans.
func (c *Compiled) ScheduledKernels() []*codegen.Kernel { return c.exec.ScheduledKernels() }

// NewSession creates an independent execution session over the compiled
// kernels. The Compiled artifact is shared and immutable; each session owns
// its per-run state (a planned arena plus bound kernels), so create one
// session per serving goroutine.
func (c *Compiled) NewSession() *engine.Session { return c.exec.NewSession() }

// PlannedPeakBytes is the activation arena size every bound session
// allocates: the peak of the compile-time liveness analysis under buffer
// reuse. It excludes weights (see G.ParamBytes) and the double-buffered
// output copies.
func (c *Compiled) PlannedPeakBytes() int64 { return c.exec.PlannedPeakBytes() }

// HasOnlineChain reports whether any compiled kernel executes an online
// (streaming-rescale) softmax contraction chain — the one path that is
// ULP-bounded against the scalar oracle instead of bit-exact. Parity
// harnesses switch from exact to ULP comparison when this is true.
func (c *Compiled) HasOnlineChain() bool {
	for _, b := range c.Plan.Blocks {
		if b.Chain != nil && b.Chain.Online {
			return true
		}
	}
	return false
}

// scheduleDevice is the device whose memory hierarchy kernel schedules
// are tuned against: the compile target when one is set, else the primary
// CPU profile standing in for the host.
func (o Options) scheduleDevice() *device.Device {
	if o.Device != nil {
		return o.Device
	}
	return device.Snapdragon865CPU()
}

// selectSchedules makes the kernel schedule a compile artifact: every
// heavy kernel's tile schedule is selected by the genetic tuner against
// the device profile (§4.3–4.4 pair fusion with tuned per-kernel
// schedules), with chosen schedules cached in the profile database so
// repeat compilations skip the search — the schedule half of Figure 9b's
// caching effect. Selection is deterministic per (shape, device), so the
// same model always compiles to the same schedules. The schedule is
// applied to the kernels' Source trees at session bind time
// (codegen.BindParallel).
func (c *Compiled) selectSchedules() {
	dev := c.Opts.scheduleDevice()
	for _, k := range c.Kernels {
		if k.Block.Chain != nil {
			if pm, pn, pk, cm, cn, ck, ok := k.ChainScheduleTasks(); ok {
				k.TaskM, k.TaskN, k.TaskK = cm, cn, ck
				c.Stats.ScheduleLookups++
				key := profile.ChainScheduleKey(dev.Name, pm, pn, pk, cm, cn, ck)
				if c.Opts.ProfileDB != nil {
					if cs, hit := c.Opts.ProfileDB.LookupChainSchedule(key); hit {
						k.Schedule, k.ProducerSchedule = cs.Consumer, cs.Producer
						continue
					}
				}
				c.Stats.ScheduleMisses++
				res := tuner.SelectChain(
					tuner.Task{M: pm, N: pn, K: pk, Device: dev},
					tuner.Task{M: cm, N: cn, K: ck, Device: dev})
				k.Schedule, k.ProducerSchedule = res.Consumer, res.Producer
				if c.Opts.ProfileDB != nil {
					c.Opts.ProfileDB.InsertChainSchedule(key,
						profile.ChainSchedule{Producer: res.Producer, Consumer: res.Consumer})
				}
				continue
			}
		}
		m, n, kk, ok := k.ScheduleTask()
		if !ok {
			continue
		}
		k.TaskM, k.TaskN, k.TaskK = m, n, kk
		c.Stats.ScheduleLookups++
		key := profile.ScheduleKey(dev.Name, m, n, kk)
		if c.Opts.ProfileDB != nil {
			if s, hit := c.Opts.ProfileDB.LookupSchedule(key); hit {
				k.Schedule = s
				continue
			}
		}
		c.Stats.ScheduleMisses++
		res := tuner.Select(tuner.Task{M: m, N: n, K: kk, Device: dev}, tuner.GAOptions{})
		k.Schedule = res.Schedule
		if c.Opts.ProfileDB != nil {
			c.Opts.ProfileDB.InsertSchedule(key, res.Schedule)
		}
	}
}

// latencyFunc resolves yellow fusion decisions: profile-database lookup
// first, then a "measurement" on the device cost model (standing in for the
// paper's on-device profiling runs).
func (c *Compiled) latencyFunc() fusion.LatencyFunc {
	return func(nodes []*graph.Node) float64 {
		c.Stats.ProfileLookups++
		key := profile.KeyFor(nodes)
		if c.Opts.ProfileDB != nil {
			if ms, ok := c.Opts.ProfileDB.Lookup(key); ok {
				return ms
			}
		}
		c.Stats.ProfileMisses++
		ms := EstimateBlockLatency(c.Opts.Device, nodes)
		if c.Opts.ProfileDB != nil {
			c.Opts.ProfileDB.Insert(key, ms)
		}
		return ms
	}
}

// EstimateBlockLatency prices a hypothetical fused kernel over the node set
// without building a block: summed FLOPs, boundary traffic, heavy-op
// detection.
func EstimateBlockLatency(dev *device.Device, nodes []*graph.Node) float64 {
	inSet := make(map[*graph.Node]bool, len(nodes))
	for _, n := range nodes {
		inSet[n] = true
	}
	var w device.Work
	for _, n := range nodes {
		shapes := make([]tensor.Shape, len(n.Inputs))
		for i, in := range n.Inputs {
			shapes[i] = in.Shape
			if in.Producer == nil || !inSet[in.Producer] {
				w.ReadBytes += in.Shape.Bytes()
			}
		}
		w.FLOPs += n.Op.FLOPs(shapes)
		switch n.Op.Type() {
		case "Conv", "ConvTranspose", "MatMul", "Gemm", "Einsum":
			w.Heavy = true
		}
		switch n.Op.Mapping(shapes) {
		case ops.Shuffle, ops.OneToMany:
			w.Disruption++
		}
		for _, out := range n.Outputs {
			external := out.Kind == graph.Output
			for _, consumer := range out.Consumers {
				if !inSet[consumer] {
					external = true
				}
			}
			if external {
				w.WriteBytes += out.Shape.Bytes()
			}
		}
	}
	return dev.Price(w).TimeMs
}

// Simulate prices one inference on the device.
func (c *Compiled) Simulate(dev *device.Device) (*engine.Report, error) {
	return engine.Simulate(c.E, c.Plan, dev, engine.Options{
		OtherOpt: c.Opts.OtherOpt,
		Quality:  c.Opts.Quality,
		Cache:    c.Opts.Cache,
	})
}

// FusedLayerCount is the number of kernels after compilation.
func (c *Compiled) FusedLayerCount() int { return c.Plan.FusedLayerCount() }

// Stats recomputed on the optimized graph (Table 5's "after opt" columns).
func (c *Compiled) OptimizedStats() ecg.Stats { return c.E.ComputeStats() }
