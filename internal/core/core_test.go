package core

import (
	"testing"

	"dnnfusion/internal/device"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/profile"
	"dnnfusion/internal/tensor"
)

// buildAttentionish: a transformer-flavored micro-graph with rewritable
// redundancy (double transpose) and fusable chains.
func buildAttentionish(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("attn")
	x := g.AddInput("x", tensor.Of(8, 16))
	wq := g.AddWeight("wq", tensor.New(16, 16).Rand(1))
	q := g.Apply1(ops.NewMatMul(), x, wq)
	q = g.Apply1(ops.NewTranspose(1, 0), q)
	q = g.Apply1(ops.NewTranspose(1, 0), q) // export cruft: cancels
	q = g.Apply1(ops.NewMulConst(0.25), q)
	k := g.Apply1(ops.NewMatMul(), x, g.AddWeight("wk", tensor.New(16, 16).Rand(2)))
	scores := g.Apply1(ops.NewMatMul(), q, g.Apply1(ops.NewTranspose(1, 0), k))
	attn := g.Apply1(ops.NewSoftmax(-1), scores)
	g.MarkOutput(attn)
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	return g
}

func TestCompileFullPipeline(t *testing.T) {
	g := buildAttentionish(t)
	before := len(g.Nodes)
	c, err := Compile(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != before {
		t.Error("Compile mutated the input graph")
	}
	if c.Stats.RewriteApplied == 0 {
		t.Error("rewriting found nothing on a graph with a transpose pair")
	}
	if c.FusedLayerCount() >= len(c.G.Nodes) {
		t.Errorf("fusion produced %d kernels for %d nodes", c.FusedLayerCount(), len(c.G.Nodes))
	}
	if len(c.Kernels) != c.FusedLayerCount() {
		t.Errorf("kernels %d != blocks %d", len(c.Kernels), c.FusedLayerCount())
	}
}

func TestCompiledRunMatchesInterpreter(t *testing.T) {
	g := buildAttentionish(t)
	x := tensor.NewOf(g.Inputs[0].Shape).Rand(9)
	want, err := graph.InterpretOutputs(g, map[*graph.Value]*tensor.Tensor{g.Inputs[0]: x})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		Defaults(),
		{Fusion: true},       // no rewriting
		{GraphRewrite: true}, // no fusion
		{},                   // neither
	} {
		c, err := Compile(g, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		got, err := c.RunInputs(x)
		if err != nil {
			t.Fatalf("%+v run: %v", opts, err)
		}
		if !tensor.AllClose(got[0], want[0], 1e-4) {
			t.Errorf("opts %+v changed semantics (max diff %g)",
				opts, tensor.MaxAbsDiff(got[0], want[0]))
		}
	}
}

func TestRunInputsArityCheck(t *testing.T) {
	g := buildAttentionish(t)
	c, err := Compile(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunInputs(); err == nil {
		t.Error("RunInputs with missing inputs should fail")
	}
}

func TestProfileDBReducesMeasurements(t *testing.T) {
	g := buildAttentionish(t)
	dev := device.Snapdragon865CPU()
	db := profile.New()

	opts := Defaults()
	opts.Device = dev
	opts.ProfileDB = db
	c1, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	coldMisses := c1.Stats.ProfileMisses
	if c1.Stats.ProfileLookups == 0 {
		t.Skip("this graph produced no yellow decisions; covered by model-level tests")
	}
	// Second compilation with the warmed database.
	c2, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Stats.ProfileMisses >= coldMisses && coldMisses > 0 {
		t.Errorf("warm database did not reduce measurements: %d -> %d",
			coldMisses, c2.Stats.ProfileMisses)
	}
	if c1.FusedLayerCount() != c2.FusedLayerCount() {
		t.Error("profile database changed the plan")
	}
}

func TestSimulatePipelineOrdering(t *testing.T) {
	g := buildAttentionish(t)
	dev := device.Snapdragon865CPU()
	latency := func(opts Options) float64 {
		c, err := Compile(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.Simulate(dev)
		if err != nil {
			t.Fatal(err)
		}
		return r.LatencyMs
	}
	ourB := latency(Options{})
	gr := latency(Options{GraphRewrite: true})
	grFuse := latency(Options{GraphRewrite: true, Fusion: true})
	full := latency(Defaults())
	if gr > ourB {
		t.Errorf("rewriting slowed things down: %v > %v", gr, ourB)
	}
	if grFuse > gr {
		t.Errorf("fusion slowed things down: %v > %v", grFuse, gr)
	}
	if full > grFuse {
		t.Errorf("other optimizations slowed things down: %v > %v", full, grFuse)
	}
	if full >= ourB {
		t.Errorf("full pipeline not faster than baseline: %v >= %v", full, ourB)
	}
}

func TestEstimateBlockLatencyBoundaries(t *testing.T) {
	g := buildAttentionish(t)
	dev := device.Snapdragon865CPU()
	single := EstimateBlockLatency(dev, g.Nodes[:1])
	pair := EstimateBlockLatency(dev, g.Nodes[:2])
	if single <= 0 || pair <= 0 {
		t.Fatal("non-positive block latency")
	}
	// Fusing two ops into one kernel saves a launch: the fused estimate
	// must undercut the sum of separate estimates.
	sum := single + EstimateBlockLatency(dev, g.Nodes[1:2])
	if pair >= sum {
		t.Errorf("fused estimate %v >= split %v", pair, sum)
	}
}
