package core

import (
	"context"
	"fmt"
	"testing"

	"dnnfusion/internal/device"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/profile"
	"dnnfusion/internal/tensor"
)

// buildAttentionish: a transformer-flavored micro-graph with rewritable
// redundancy (double transpose) and fusable chains.
func buildAttentionish(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("attn")
	x := g.AddInput("x", tensor.Of(8, 16))
	wq := g.AddWeight("wq", tensor.New(16, 16).Rand(1))
	q := g.Apply1(ops.NewMatMul(), x, wq)
	q = g.Apply1(ops.NewTranspose(1, 0), q)
	q = g.Apply1(ops.NewTranspose(1, 0), q) // export cruft: cancels
	q = g.Apply1(ops.NewMulConst(0.25), q)
	k := g.Apply1(ops.NewMatMul(), x, g.AddWeight("wk", tensor.New(16, 16).Rand(2)))
	scores := g.Apply1(ops.NewMatMul(), q, g.Apply1(ops.NewTranspose(1, 0), k))
	attn := g.Apply1(ops.NewSoftmax(-1), scores)
	g.MarkOutput(attn)
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	return g
}

func TestCompileFullPipeline(t *testing.T) {
	g := buildAttentionish(t)
	before := len(g.Nodes)
	c, err := Compile(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != before {
		t.Error("Compile mutated the input graph")
	}
	if c.Stats.RewriteApplied == 0 {
		t.Error("rewriting found nothing on a graph with a transpose pair")
	}
	if c.FusedLayerCount() >= len(c.G.Nodes) {
		t.Errorf("fusion produced %d kernels for %d nodes", c.FusedLayerCount(), len(c.G.Nodes))
	}
	if len(c.Kernels) != c.FusedLayerCount() {
		t.Errorf("kernels %d != blocks %d", len(c.Kernels), c.FusedLayerCount())
	}
}

func TestCompiledRunMatchesInterpreter(t *testing.T) {
	g := buildAttentionish(t)
	x := tensor.NewOf(g.Inputs[0].Shape).Rand(9)
	want, err := graph.InterpretOutputs(g, map[*graph.Value]*tensor.Tensor{g.Inputs[0]: x})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		Defaults(),
		{Fusion: true},       // no rewriting
		{GraphRewrite: true}, // no fusion
		{},                   // neither
	} {
		c, err := Compile(g, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		got, err := c.NewSession().Run(context.Background(),
			map[*graph.Value]*tensor.Tensor{c.G.Inputs[0]: x})
		if err != nil {
			t.Fatalf("%+v run: %v", opts, err)
		}
		if !tensor.AllClose(got[0], want[0], 1e-4) {
			t.Errorf("opts %+v changed semantics (max diff %g)",
				opts, tensor.MaxAbsDiff(got[0], want[0]))
		}
	}
}

func TestSessionMissingInputCheck(t *testing.T) {
	g := buildAttentionish(t)
	c, err := Compile(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewSession().Run(context.Background(), nil); err == nil {
		t.Error("Run with missing inputs should fail")
	}
}

func TestProfileDBReducesMeasurements(t *testing.T) {
	g := buildAttentionish(t)
	dev := device.Snapdragon865CPU()
	db := profile.New()

	opts := Defaults()
	opts.Device = dev
	opts.ProfileDB = db
	c1, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	coldMisses := c1.Stats.ProfileMisses
	if c1.Stats.ProfileLookups == 0 {
		t.Skip("this graph produced no yellow decisions; covered by model-level tests")
	}
	// Second compilation with the warmed database.
	c2, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Stats.ProfileMisses >= coldMisses && coldMisses > 0 {
		t.Errorf("warm database did not reduce measurements: %d -> %d",
			coldMisses, c2.Stats.ProfileMisses)
	}
	if c1.FusedLayerCount() != c2.FusedLayerCount() {
		t.Error("profile database changed the plan")
	}
}

func TestSimulatePipelineOrdering(t *testing.T) {
	g := buildAttentionish(t)
	dev := device.Snapdragon865CPU()
	latency := func(opts Options) float64 {
		c, err := Compile(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.Simulate(dev)
		if err != nil {
			t.Fatal(err)
		}
		return r.LatencyMs
	}
	ourB := latency(Options{})
	gr := latency(Options{GraphRewrite: true})
	grFuse := latency(Options{GraphRewrite: true, Fusion: true})
	full := latency(Defaults())
	if gr > ourB {
		t.Errorf("rewriting slowed things down: %v > %v", gr, ourB)
	}
	if grFuse > gr {
		t.Errorf("fusion slowed things down: %v > %v", grFuse, gr)
	}
	if full > grFuse {
		t.Errorf("other optimizations slowed things down: %v > %v", full, grFuse)
	}
	if full >= ourB {
		t.Errorf("full pipeline not faster than baseline: %v >= %v", full, ourB)
	}
}

func TestEstimateBlockLatencyBoundaries(t *testing.T) {
	g := buildAttentionish(t)
	dev := device.Snapdragon865CPU()
	single := EstimateBlockLatency(dev, g.Nodes[:1])
	pair := EstimateBlockLatency(dev, g.Nodes[:2])
	if single <= 0 || pair <= 0 {
		t.Fatal("non-positive block latency")
	}
	// Fusing two ops into one kernel saves a launch: the fused estimate
	// must undercut the sum of separate estimates.
	sum := single + EstimateBlockLatency(dev, g.Nodes[1:2])
	if pair >= sum {
		t.Errorf("fused estimate %v >= split %v", pair, sum)
	}
}

// TestScheduleSelectionDeterministic pins the compile-artifact contract:
// compiling the same model twice yields identical tile schedules — with no
// database (selection is a pure function of shape and device), and with a
// shared profile database, where the second compilation must hit the
// schedule cache for every kernel and search nothing.
func TestScheduleSelectionDeterministic(t *testing.T) {
	schedulesOf := func(c *Compiled) []string {
		var out []string
		for _, k := range c.Kernels {
			if k.Schedule.Zero() {
				continue
			}
			out = append(out, fmt.Sprintf("%dx%dx%d:%+v", k.TaskM, k.TaskN, k.TaskK, k.Schedule))
		}
		return out
	}
	g := buildAttentionish(t)
	c1, err := Compile(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Compile(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := schedulesOf(c1), schedulesOf(c2)
	if len(s1) == 0 {
		t.Fatal("no kernel got a schedule; the attention graph has heavy kernels")
	}
	if c1.Stats.ScheduleLookups == 0 || c1.Stats.ScheduleMisses == 0 {
		t.Fatalf("stats did not record selection: %+v", c1.Stats)
	}
	if fmt.Sprint(s1) != fmt.Sprint(s2) {
		t.Fatalf("same model compiled to different schedules:\n%v\n%v", s1, s2)
	}

	db := profile.New()
	opts := Defaults()
	opts.ProfileDB = db
	c3, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c3.Stats.ScheduleMisses == 0 {
		t.Fatal("cold database should miss")
	}
	c4, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c4.Stats.ScheduleMisses != 0 {
		t.Errorf("warm database searched again: %d misses", c4.Stats.ScheduleMisses)
	}
	if c4.Stats.ScheduleLookups != c3.Stats.ScheduleLookups {
		t.Errorf("lookup counts diverge: %d vs %d", c4.Stats.ScheduleLookups, c3.Stats.ScheduleLookups)
	}
	if fmt.Sprint(schedulesOf(c3)) != fmt.Sprint(s1) {
		t.Errorf("database-backed selection diverges from pure selection:\n%v\n%v", schedulesOf(c3), s1)
	}
	if fmt.Sprint(schedulesOf(c4)) != fmt.Sprint(s1) {
		t.Errorf("cached selection diverges:\n%v\n%v", schedulesOf(c4), s1)
	}
}

// TestScheduleDeviceChangesSelection pins that WithDevice now reaches the
// kernels: a device with a different cache hierarchy may tune differently,
// and at minimum the selection must key on the device (distinct cache
// entries), so profiles from different targets never collide.
func TestScheduleDeviceKeysCache(t *testing.T) {
	g := buildAttentionish(t)
	db := profile.New()
	optsCPU := Defaults()
	optsCPU.ProfileDB = db
	optsCPU.Device = device.Snapdragon865CPU()
	if _, err := Compile(g, optsCPU); err != nil {
		t.Fatal(err)
	}
	n := db.ScheduleLen()
	if n == 0 {
		t.Fatal("no schedules cached")
	}
	optsGPU := Defaults()
	optsGPU.ProfileDB = db
	optsGPU.Device = device.Adreno650()
	if _, err := Compile(g, optsGPU); err != nil {
		t.Fatal(err)
	}
	if db.ScheduleLen() <= n {
		t.Errorf("second device reused the first device's cache entries (%d vs %d)", db.ScheduleLen(), n)
	}
}
