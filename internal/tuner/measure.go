package tuner

import (
	"sort"
	"sync/atomic"
	"time"

	"dnnfusion/internal/ops"
)

// Measured feedback: the analytical fitness surfaces in this package rank
// candidates without ever consulting the hardware. measure.go closes that
// loop — it times short best-of-N windows of a real compiled candidate
// (the dnnf-bench discipline, shrunk to tuning budgets) and exposes the
// top-k analytical candidates worth spending those measurements on. The
// clock is stubbable (faultinject-style: an atomic arm with a zero-cost
// unarmed fast path) so CI can drive measured tuning deterministically.

// epoch anchors the real clock; differences of nowNs are monotonic.
var epoch = time.Now()

// fakeClock, when armed, replaces the wall clock for every measurement.
var fakeClock atomic.Pointer[func() int64]

// nowNs reads the measurement clock in nanoseconds.
func nowNs() int64 {
	if f := fakeClock.Load(); f != nil {
		return (*f)()
	}
	return int64(time.Since(epoch))
}

// SetClock replaces the measurement clock with fn (nanoseconds, must be
// non-decreasing). Tests and CI use it to make measured tuning
// deterministic; nil restores the wall clock. Like the faultinject hook
// points, the unarmed fast path is one atomic load.
func SetClock(fn func() int64) {
	if fn == nil {
		fakeClock.Store(nil)
		return
	}
	fakeClock.Store(&fn)
}

// ResetClock restores the wall clock.
func ResetClock() { SetClock(nil) }

// clockStubbed reports whether a fake measurement clock is armed. Measure
// consults it to skip iteration auto-scaling: synthetic time carries no
// signal, so scaling a window to a synthetic length would only burn real
// kernel executions without changing any measured value.
func clockStubbed() bool { return fakeClock.Load() != nil }

// StepClock returns a deterministic virtual clock advancing stepNs per
// reading — the stub CI installs via SetClock. Under it every candidate
// measures identically, so the search's tie-breaking (first candidate in
// enumeration order, which is the analytical prior's ranking) decides,
// and runs are reproducible.
func StepClock(stepNs int64) func() int64 {
	if stepNs < 1 {
		stepNs = 1
	}
	var t atomic.Int64
	return func() int64 { return t.Add(stepNs) }
}

// MeasureOptions sizes one measurement.
type MeasureOptions struct {
	// Window is the minimum timed-window length; iterations auto-scale
	// until one window reaches it. Zero means 2ms — long enough to
	// amortize timer overhead on micro kernels, short enough that a
	// budget of tens of candidates tunes in well under a second.
	Window time.Duration
	// Rounds is how many sized windows run; the best (minimum ns/op) is
	// kept, discarding scheduler noise. Zero means 3.
	Rounds int
	// MaxIters caps the per-window iteration count during auto-scaling.
	// Zero means 65536.
	MaxIters int
}

func (o MeasureOptions) withDefaults() MeasureOptions {
	if o.Window <= 0 {
		o.Window = 2 * time.Millisecond
	}
	if o.Rounds <= 0 {
		o.Rounds = 3
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 1 << 16
	}
	return o
}

// Measure times run with the bench discipline shrunk to tuning budgets:
// one warm-up call, iterations scaled until a window reaches
// MeasureOptions.Window, then best-of-Rounds sized windows. It returns
// the winning window's ns per run.
func Measure(run func() error, o MeasureOptions) (nsPerOp int64, err error) {
	o = o.withDefaults()
	if err := run(); err != nil { // warm up: bind arenas, start pools
		return 0, err
	}
	iters := 1
	window := o.Window.Nanoseconds()
	var elapsed int64
	for {
		start := nowNs()
		for i := 0; i < iters; i++ {
			if err := run(); err != nil {
				return 0, err
			}
		}
		elapsed = nowNs() - start
		if elapsed >= window || iters >= o.MaxIters || clockStubbed() {
			break
		}
		scale := 4
		if elapsed > 0 {
			// Aim past the window in one step instead of quadrupling
			// blindly; the cap keeps a mis-ticking clock from exploding.
			if s := int(window/elapsed) + 1; s < scale {
				scale = s
			}
		}
		if scale < 2 {
			scale = 2
		}
		iters *= scale
		if iters > o.MaxIters {
			iters = o.MaxIters
		}
	}
	best := elapsed / int64(iters)
	for round := 1; round < o.Rounds; round++ {
		start := nowNs()
		for i := 0; i < iters; i++ {
			if err := run(); err != nil {
				return 0, err
			}
		}
		if ns := (nowNs() - start) / int64(iters); ns < best {
			best = ns
		}
	}
	if best < 1 {
		best = 1
	}
	return best, nil
}

// SelectTopK returns the k best distinct schedules for the task by the
// analytical fitness, best first — the measured search's shortlist. The
// schedule space is small enough (4 row tiles × 7 panels × 4 unrolls) to
// rank exhaustively, which also makes the shortlist deterministic:
// ties break toward smaller tiles, so the ordering is a pure function of
// (task, device).
func SelectTopK(t Task, k int) []ops.Schedule {
	if k < 1 {
		return nil
	}
	type scored struct {
		s     ops.Schedule
		score float64
	}
	seen := map[ops.Schedule]bool{}
	var all []scored
	for _, rt := range rowTileChoices {
		for _, cp := range colPanelChoices {
			for _, u := range unrollChoices {
				s := normalizeSchedule(t, ops.Schedule{RowTile: rt, ColPanel: cp, Unroll: u})
				if seen[s] {
					continue
				}
				seen[s] = true
				all = append(all, scored{s: s, score: ScheduleFitness(t, s)})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.score != b.score {
			return a.score > b.score
		}
		if a.s.RowTile != b.s.RowTile {
			return a.s.RowTile < b.s.RowTile
		}
		if a.s.ColPanel != b.s.ColPanel {
			return a.s.ColPanel < b.s.ColPanel
		}
		return a.s.Unroll < b.s.Unroll
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]ops.Schedule, k)
	for i := range out {
		out[i] = all[i].s
	}
	return out
}

// SelectChainTopK returns the k best distinct schedule pairs for a fused
// contraction chain, best first, ranked exhaustively like SelectChain
// (shared row tile, independent column panels).
func SelectChainTopK(prod, cons Task, k int) []ChainScheduleResult {
	if k < 1 {
		return nil
	}
	type pairKey struct{ p, c ops.Schedule }
	seen := map[pairKey]bool{}
	var all []ChainScheduleResult
	for _, rt := range rowTileChoices {
		for _, pcp := range colPanelChoices {
			ps := normalizeSchedule(prod, ops.Schedule{RowTile: rt, ColPanel: pcp, Unroll: 4})
			pScore := ScheduleFitness(prod, ps)
			for _, ccp := range colPanelChoices {
				cs := normalizeSchedule(cons, ops.Schedule{RowTile: rt, ColPanel: ccp, Unroll: 4})
				key := pairKey{ps, cs}
				if seen[key] {
					continue
				}
				seen[key] = true
				all = append(all, ChainScheduleResult{Producer: ps, Consumer: cs, Score: pScore * ScheduleFitness(cons, cs)})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Producer.RowTile != b.Producer.RowTile {
			return a.Producer.RowTile < b.Producer.RowTile
		}
		if a.Producer.ColPanel != b.Producer.ColPanel {
			return a.Producer.ColPanel < b.Producer.ColPanel
		}
		return a.Consumer.ColPanel < b.Consumer.ColPanel
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}
