package tuner

import (
	"testing"
	"testing/quick"

	"dnnfusion/internal/device"
	"dnnfusion/internal/ops"
)

func task() Task {
	return Task{M: 256, N: 256, K: 512, Device: device.Snapdragon865CPU()}
}

func TestFitnessBounds(t *testing.T) {
	f := func(mi, ni, ki, ui uint8, vec bool) bool {
		p := Params{
			TileM:     tileChoices[int(mi)%len(tileChoices)],
			TileN:     tileChoices[int(ni)%len(tileChoices)],
			TileK:     tileChoices[int(ki)%len(tileChoices)],
			Unroll:    unrollChoices[int(ui)%len(unrollChoices)],
			Vectorize: vec,
		}
		s := Fitness(task(), p)
		return s > 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if Fitness(task(), Params{}) != 0 {
		t.Error("zero tiles must score 0")
	}
}

func TestFitnessDeterministic(t *testing.T) {
	p := Params{TileM: 16, TileN: 16, TileK: 32, Unroll: 4, Vectorize: true}
	if Fitness(task(), p) != Fitness(task(), p) {
		t.Error("fitness not deterministic")
	}
}

func TestGAImprovesOverGenerations(t *testing.T) {
	res := TuneGA(task(), GAOptions{Seed: 7})
	if res.Score <= 0 {
		t.Fatal("GA found nothing")
	}
	first, last := res.History[0], res.History[len(res.History)-1]
	if last < first {
		t.Errorf("best-so-far regressed: %v -> %v", first, last)
	}
	if res.Trials != 16*12 {
		t.Errorf("trials = %d, want population*generations", res.Trials)
	}
}

func TestGABeatsRandomAtEqualBudget(t *testing.T) {
	// Averaged over seeds, GA should match or beat random search with the
	// same trial budget — the premise of the paper's fast tuning claim.
	var gaWins int
	const seeds = 7
	for s := uint64(1); s <= seeds; s++ {
		ga := TuneGA(task(), GAOptions{Seed: s})
		rnd := TuneRandom(task(), ga.Trials, s)
		if ga.Score >= rnd.Score {
			gaWins++
		}
	}
	if gaWins < seeds/2+1 {
		t.Errorf("GA won only %d/%d seed matchups", gaWins, seeds)
	}
}

func TestGAReproducible(t *testing.T) {
	a := TuneGA(task(), GAOptions{Seed: 3})
	b := TuneGA(task(), GAOptions{Seed: 3})
	if a.Best != b.Best || a.Score != b.Score {
		t.Error("same seed produced different tuning results")
	}
}

func TestRandomSearchMonotoneInBudget(t *testing.T) {
	small := TuneRandom(task(), 16, 5)
	big := TuneRandom(task(), 512, 5)
	if big.Score < small.Score {
		t.Errorf("more random trials found a worse result: %v < %v", big.Score, small.Score)
	}
}

func TestGoodTilesBeatDegenerateTiles(t *testing.T) {
	good := Fitness(task(), Params{TileM: 32, TileN: 32, TileK: 64, Unroll: 4, Vectorize: true})
	degenerate := Fitness(task(), Params{TileM: 1, TileN: 1, TileK: 1, Unroll: 1, Vectorize: false})
	if good <= degenerate {
		t.Errorf("fitness surface inverted: good %v <= degenerate %v", good, degenerate)
	}
}

// --- Schedule selection (tuner.Select) ------------------------------------

func selTask(m, n, k int) Task {
	return Task{M: m, N: n, K: k, Device: device.Snapdragon865CPU()}
}

func TestSelectDeterministic(t *testing.T) {
	a := Select(selTask(128, 96, 64), GAOptions{})
	b := Select(selTask(128, 96, 64), GAOptions{})
	if a.Schedule != b.Schedule || a.Score != b.Score {
		t.Errorf("same task selected different schedules: %+v vs %+v", a, b)
	}
}

func TestSelectNormalizedAgainstShape(t *testing.T) {
	for _, tc := range []struct{ m, n, k int }{
		{1, 16, 64}, {8, 10, 128}, {16, 96, 64}, {128, 96, 64}, {512, 8, 27}, {1000, 1000, 200},
	} {
		res := Select(selTask(tc.m, tc.n, tc.k), GAOptions{})
		s := res.Schedule
		switch s.RowTile {
		case 1, 2, 4, 8:
		default:
			t.Errorf("task %v: unsupported row tile %d", tc, s.RowTile)
		}
		if s.RowTile > tc.m {
			t.Errorf("task %v: row tile %d taller than M", tc, s.RowTile)
		}
		if s.ColPanel > tc.n || (tc.n >= 8 && s.ColPanel < 8) {
			t.Errorf("task %v: panel %d outside [8, N]", tc, s.ColPanel)
		}
		if res.Score <= 0 || res.Score > 1 {
			t.Errorf("task %v: score %v outside (0, 1]", tc, res.Score)
		}
		if res.Trials == 0 {
			t.Errorf("task %v: no trials recorded", tc)
		}
	}
}

// TestSelectTallerTilesForTallerInputs pins the batching mechanism: a
// batch-stacked (taller M) variant of the same kernel must not select a
// shorter row tile, and a single-row kernel can only select height 1.
func TestSelectTallerTilesForTallerInputs(t *testing.T) {
	single := Select(selTask(1, 16, 64), GAOptions{})
	if single.Schedule.RowTile != 1 {
		t.Errorf("M=1 selected row tile %d", single.Schedule.RowTile)
	}
	batched := Select(selTask(8, 16, 64), GAOptions{})
	if batched.Schedule.RowTile <= single.Schedule.RowTile {
		t.Errorf("batch-stacked task did not select a taller tile: %d vs %d",
			batched.Schedule.RowTile, single.Schedule.RowTile)
	}
}

func TestScheduleFitnessBounds(t *testing.T) {
	task := selTask(256, 256, 512)
	for _, rt := range rowTileChoices {
		for _, cp := range colPanelChoices {
			for _, u := range unrollChoices {
				s := ScheduleFitness(task, normalizeSchedule(task, opsSchedule(rt, cp, u)))
				if s <= 0 || s > 1 {
					t.Fatalf("fitness %v outside (0, 1] for rt=%d cp=%d u=%d", s, rt, cp, u)
				}
			}
		}
	}
	if ScheduleFitness(task, opsSchedule(0, 0, 0)) != 0 {
		t.Error("zero schedule must score 0")
	}
}

// opsSchedule is sugar for building a schedule literal in tests.
func opsSchedule(rt, cp, u int) ops.Schedule {
	return ops.Schedule{RowTile: rt, ColPanel: cp, Unroll: u}
}
