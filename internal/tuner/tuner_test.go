package tuner

import (
	"testing"
	"testing/quick"

	"dnnfusion/internal/device"
)

func task() Task {
	return Task{M: 256, N: 256, K: 512, Device: device.Snapdragon865CPU()}
}

func TestFitnessBounds(t *testing.T) {
	f := func(mi, ni, ki, ui uint8, vec bool) bool {
		p := Params{
			TileM:     tileChoices[int(mi)%len(tileChoices)],
			TileN:     tileChoices[int(ni)%len(tileChoices)],
			TileK:     tileChoices[int(ki)%len(tileChoices)],
			Unroll:    unrollChoices[int(ui)%len(unrollChoices)],
			Vectorize: vec,
		}
		s := Fitness(task(), p)
		return s > 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if Fitness(task(), Params{}) != 0 {
		t.Error("zero tiles must score 0")
	}
}

func TestFitnessDeterministic(t *testing.T) {
	p := Params{TileM: 16, TileN: 16, TileK: 32, Unroll: 4, Vectorize: true}
	if Fitness(task(), p) != Fitness(task(), p) {
		t.Error("fitness not deterministic")
	}
}

func TestGAImprovesOverGenerations(t *testing.T) {
	res := TuneGA(task(), GAOptions{Seed: 7})
	if res.Score <= 0 {
		t.Fatal("GA found nothing")
	}
	first, last := res.History[0], res.History[len(res.History)-1]
	if last < first {
		t.Errorf("best-so-far regressed: %v -> %v", first, last)
	}
	if res.Trials != 16*12 {
		t.Errorf("trials = %d, want population*generations", res.Trials)
	}
}

func TestGABeatsRandomAtEqualBudget(t *testing.T) {
	// Averaged over seeds, GA should match or beat random search with the
	// same trial budget — the premise of the paper's fast tuning claim.
	var gaWins int
	const seeds = 7
	for s := uint64(1); s <= seeds; s++ {
		ga := TuneGA(task(), GAOptions{Seed: s})
		rnd := TuneRandom(task(), ga.Trials, s)
		if ga.Score >= rnd.Score {
			gaWins++
		}
	}
	if gaWins < seeds/2+1 {
		t.Errorf("GA won only %d/%d seed matchups", gaWins, seeds)
	}
}

func TestGAReproducible(t *testing.T) {
	a := TuneGA(task(), GAOptions{Seed: 3})
	b := TuneGA(task(), GAOptions{Seed: 3})
	if a.Best != b.Best || a.Score != b.Score {
		t.Error("same seed produced different tuning results")
	}
}

func TestRandomSearchMonotoneInBudget(t *testing.T) {
	small := TuneRandom(task(), 16, 5)
	big := TuneRandom(task(), 512, 5)
	if big.Score < small.Score {
		t.Errorf("more random trials found a worse result: %v < %v", big.Score, small.Score)
	}
}

func TestGoodTilesBeatDegenerateTiles(t *testing.T) {
	good := Fitness(task(), Params{TileM: 32, TileN: 32, TileK: 64, Unroll: 4, Vectorize: true})
	degenerate := Fitness(task(), Params{TileM: 1, TileN: 1, TileK: 1, Unroll: 1, Vectorize: false})
	if good <= degenerate {
		t.Errorf("fitness surface inverted: good %v <= degenerate %v", good, degenerate)
	}
}
