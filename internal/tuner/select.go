package tuner

import (
	"math"

	"dnnfusion/internal/ops"
)

// Schedule selection: the PatDNN-inherited GA, pointed at the real heavy
// kernels instead of the abstract (TileM, TileN, TileK) surface. The
// executable kernels never tile K — every output element accumulates the
// full contraction in ascending order so results stay bit-exact with the
// scalar oracle — so the searched genes are exactly the parameters the
// blocked paths implement: register row-tile height, L1 column-panel
// width, and inner unroll. The fitness surface prices the full-K working
// set against the device's cache hierarchy (Device.CacheBytes), B-row
// reuse against the tile height, and A re-streaming against the panel
// count, so taller inputs (batch-stacked matmuls) select taller row tiles
// and narrower panels than their batch-1 shapes.

// rowTileChoices are the register-tile heights the blocked kernels
// implement as specialized loops (ops.Schedule.RowTile).
var rowTileChoices = []int{1, 2, 4, 8}

// colPanelChoices span thin L1 panels to full-width single passes.
var colPanelChoices = []int{8, 16, 32, 64, 128, 256, 512}

// ScheduleResult reports one schedule-selection run.
type ScheduleResult struct {
	Schedule ops.Schedule
	Score    float64
	Trials   int
}

// normalizeSchedule clamps a candidate against the task shape the way the
// kernels will (ops side): panels live in [8, N]. Normalizing before the
// result is stored keeps cache keys and determinism checks canonical.
func normalizeSchedule(t Task, s ops.Schedule) ops.Schedule {
	if s.ColPanel < 8 {
		s.ColPanel = 8
	}
	if s.ColPanel > t.N {
		s.ColPanel = t.N
	}
	if s.RowTile > t.M {
		// A tile taller than the whole output never engages; fall to the
		// tallest height that fits.
		for _, rt := range []int{8, 4, 2, 1} {
			if rt <= t.M {
				s.RowTile = rt
				break
			}
		}
	}
	return s
}

// ScheduleFitness scores a tile schedule for a heavy kernel task in
// (0, 1]. Deterministic, so selection results are reproducible.
func ScheduleFitness(t Task, s ops.Schedule) float64 {
	if s.RowTile < 1 || s.ColPanel < 1 || s.Unroll < 1 {
		return 0
	}
	// Working set of one pass with the full contraction resident: the
	// row-tile strip of A, the K×panel slab of B, and the output tile.
	ws := float64(s.RowTile*t.K+t.K*s.ColPanel+s.RowTile*s.ColPanel) * t.Device.BytesPerElem
	l1, l2 := t.Device.CacheBytes()
	cache := cacheScore(ws, l1, l2)
	// B rows are loaded and widened once per row tile: reuse grows with
	// tile height, saturating as the loads amortize away.
	reuseScore := 1 - 0.45/float64(s.RowTile)
	// Every column panel re-streams the A strip: more passes, more A
	// traffic.
	passes := (t.N + s.ColPanel - 1) / s.ColPanel
	passScore := 1 / (1 + 0.08*float64(passes-1))
	// Remainder loops hurt, exactly as in the abstract surface.
	divScore := rem(t.M, s.RowTile) * rem(t.N, s.ColPanel)
	// Unroll sweet spot at 4, as in Fitness.
	unrollScore := 1 - 0.08*math.Abs(math.Log2(float64(s.Unroll))-2)
	return cache * reuseScore * passScore * divScore * unrollScore
}

// taskSeed derives a deterministic GA seed from the task shape, so the
// same kernel shape tunes to the same schedule in every compilation.
func taskSeed(t Task) uint64 {
	var h uint64 = 14695981039346656037
	for _, d := range []int{t.M, t.N, t.K} {
		h ^= uint64(d)
		h *= 1099511628211
	}
	return h
}

func (r *rng) randomSchedule() ops.Schedule {
	return ops.Schedule{
		RowTile:  rowTileChoices[r.intn(len(rowTileChoices))],
		ColPanel: colPanelChoices[r.intn(len(colPanelChoices))],
		Unroll:   unrollChoices[r.intn(len(unrollChoices))],
	}
}

// Select runs the genetic tuner over tile schedules for one heavy kernel
// task and returns the best (normalized) schedule. With a zero
// GAOptions.Seed the seed derives from the task shape, making selection a
// pure function of (task, device, options) — the determinism the
// profile-database cache and repeat compilations rely on.
func Select(t Task, opts GAOptions) ScheduleResult {
	if opts.Seed == 0 {
		opts.Seed = taskSeed(t)
	}
	opts = opts.withDefaults()
	best, score, trials, _ := gaDriver(opts, (*rng).randomSchedule,
		func(s ops.Schedule) float64 { return ScheduleFitness(t, normalizeSchedule(t, s)) },
		crossoverSchedule, mutateSchedule)
	return ScheduleResult{Schedule: normalizeSchedule(t, best), Score: score, Trials: trials}
}

// ChainScheduleResult reports one joint chain-schedule selection.
type ChainScheduleResult struct {
	// Producer tiles the chain's first contraction (its ColPanel doubles
	// as the online softmax's key-panel width); Consumer tiles the second.
	Producer ops.Schedule
	Consumer ops.Schedule
	Score    float64
	Trials   int
}

// SelectChain jointly selects the two tile schedules of a fused
// contraction chain. The row tile is shared — the chain kernel pulls
// producer rows in exactly the consumer's row groups, so mismatched
// heights would re-tile at the seam — while each contraction gets its own
// column panel. The space is small enough (4 row tiles × 7 panels × 7
// panels) to search exhaustively, which keeps selection trivially
// deterministic.
func SelectChain(prod, cons Task) ChainScheduleResult {
	var best ChainScheduleResult
	for _, rt := range rowTileChoices {
		for _, pcp := range colPanelChoices {
			ps := normalizeSchedule(prod, ops.Schedule{RowTile: rt, ColPanel: pcp, Unroll: 4})
			pScore := ScheduleFitness(prod, ps)
			for _, ccp := range colPanelChoices {
				cs := normalizeSchedule(cons, ops.Schedule{RowTile: rt, ColPanel: ccp, Unroll: 4})
				score := pScore * ScheduleFitness(cons, cs)
				best.Trials++
				if score > best.Score {
					best.Producer, best.Consumer, best.Score = ps, cs, score
				}
			}
		}
	}
	return best
}

func crossoverSchedule(r *rng, a, b ops.Schedule) ops.Schedule {
	pick := func(x, y int) int {
		if r.intn(2) == 0 {
			return x
		}
		return y
	}
	return ops.Schedule{
		RowTile:  pick(a.RowTile, b.RowTile),
		ColPanel: pick(a.ColPanel, b.ColPanel),
		Unroll:   pick(a.Unroll, b.Unroll),
	}
}

func mutateSchedule(r *rng, s ops.Schedule, pct int) ops.Schedule {
	maybe := func(cur int, choices []int) int {
		if r.intn(100) < pct {
			return choices[r.intn(len(choices))]
		}
		return cur
	}
	s.RowTile = maybe(s.RowTile, rowTileChoices)
	s.ColPanel = maybe(s.ColPanel, colPanelChoices)
	s.Unroll = maybe(s.Unroll, unrollChoices)
	return s
}
