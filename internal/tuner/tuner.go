// Package tuner implements the performance auto-tuners of the compilation
// pipeline: the genetic-algorithm tuner DNNFusion inherits from PatDNN and
// a random-search tuner standing in for AutoTVM. Both search tile/unroll/
// vectorization parameters for a heavy kernel against a deterministic
// analytic response surface derived from the device profile; the GA needs
// far fewer trials to reach the same quality, which is the compilation-time
// effect Figure 9b reports.
package tuner

import (
	"math"
	"sort"

	"dnnfusion/internal/device"
)

// Params is one schedule configuration for a tiled heavy kernel.
type Params struct {
	TileM, TileN, TileK int
	Unroll              int // 1, 2, 4, 8
	Vectorize           bool
}

// Task describes the kernel being tuned.
type Task struct {
	M, N, K int // contraction dimensions (Conv is lowered to GEMM-shape)
	Device  *device.Device
}

// Fitness scores a configuration: achieved fraction of device peak in
// (0, 1]. The surface rewards tiles whose working set fits L1/L2, balanced
// tile aspect ratios, full unrolling of small remainders, and
// vectorization; it penalizes tiles that do not divide the problem.
// It is deterministic, so tuning results are reproducible.
func Fitness(t Task, p Params) float64 {
	if p.TileM <= 0 || p.TileN <= 0 || p.TileK <= 0 {
		return 0
	}
	// Working set of one tile (A, B, C panels) in bytes.
	ws := float64(p.TileM*p.TileK+p.TileK*p.TileN+p.TileM*p.TileN) * t.Device.BytesPerElem
	l1, l2 := t.Device.CacheBytes()
	cache := cacheScore(ws, l1, l2)
	// Divisibility: remainder loops hurt.
	divScore := rem(t.M, p.TileM) * rem(t.N, p.TileN) * rem(t.K, p.TileK)
	// Aspect: register-blocking prefers moderately square M×N tiles.
	aspect := float64(p.TileM) / float64(p.TileN)
	if aspect < 1 {
		aspect = 1 / aspect
	}
	aspectScore := 1 / (1 + 0.12*(aspect-1))
	// Unroll sweet spot at 4; vectorization is a flat bonus.
	unrollScore := 1 - 0.08*math.Abs(math.Log2(float64(p.Unroll))-2)
	vecScore := 0.8
	if p.Vectorize {
		vecScore = 1.0
	}
	return cache * divScore * aspectScore * unrollScore * vecScore
}

// cacheScore prices a tile working set against the L1/L2 capacities: a
// set that fills (but fits) L1 is ideal, an undersized one wastes reuse,
// L2-resident sets lose a step, and anything past L2 streams from DRAM.
// Shared by the abstract surface (Fitness) and the schedule selector
// (ScheduleFitness) so both price the same hierarchy the same way.
func cacheScore(ws, l1, l2 float64) float64 {
	switch {
	case ws <= l1/2:
		return 0.75 + 0.25*(ws/(l1/2))
	case ws <= l1:
		return 1.0
	case ws <= l2:
		return 0.7
	default:
		return 0.35
	}
}

func rem(total, tile int) float64 {
	if tile > total {
		return 0.6
	}
	r := total % tile
	if r == 0 {
		return 1
	}
	return 1 - 0.3*float64(r)/float64(tile)
}

// Result reports a tuning run.
type Result struct {
	Best    Params
	Score   float64
	Trials  int
	History []float64 // best-so-far per generation/trial batch
}

// rng is a small deterministic xorshift generator so tuning is reproducible
// without math/rand.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

var tileChoices = []int{1, 2, 4, 8, 16, 32, 64, 128}
var unrollChoices = []int{1, 2, 4, 8}

func (r *rng) randomParams() Params {
	return Params{
		TileM:     tileChoices[r.intn(len(tileChoices))],
		TileN:     tileChoices[r.intn(len(tileChoices))],
		TileK:     tileChoices[r.intn(len(tileChoices))],
		Unroll:    unrollChoices[r.intn(len(unrollChoices))],
		Vectorize: r.intn(2) == 1,
	}
}

// GAOptions configures the genetic tuner.
type GAOptions struct {
	Population  int // default 16
	Generations int // default 12
	Elite       int // default 2
	MutationPct int // default 20 (percent per gene)
	Seed        uint64
}

func (o GAOptions) withDefaults() GAOptions {
	if o.Population == 0 {
		o.Population = 16
	}
	if o.Generations == 0 {
		o.Generations = 12
	}
	if o.Elite == 0 {
		o.Elite = 2
	}
	if o.MutationPct == 0 {
		o.MutationPct = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// gaDriver is the genetic search loop shared by TuneGA (abstract tile
// parameters) and Select (executable schedules): score and track the
// best, sort fitness-descending, carry the elite, then fill the next
// generation by tournament selection, crossover, and mutation.
func gaDriver[G any](opts GAOptions, random func(*rng) G, fitness func(G) float64,
	cross func(*rng, G, G) G, mut func(*rng, G, int) G) (best G, score float64, trials int, history []float64) {
	r := newRNG(opts.Seed)
	pop := make([]G, opts.Population)
	for i := range pop {
		pop[i] = random(r)
	}
	type scored struct {
		g G
		f float64
	}
	for gen := 0; gen < opts.Generations; gen++ {
		scoredPop := make([]scored, len(pop))
		for i, g := range pop {
			f := fitness(g)
			scoredPop[i] = scored{g, f}
			trials++
			if f > score {
				score, best = f, g
			}
		}
		history = append(history, score)
		// sort.Slice is unstable but deterministic for a given input, which
		// is what reproducibility needs (and what TuneGA always used).
		sort.Slice(scoredPop, func(i, j int) bool { return scoredPop[i].f > scoredPop[j].f })
		next := make([]G, 0, len(pop))
		for i := 0; i < opts.Elite && i < len(scoredPop); i++ {
			next = append(next, scoredPop[i].g)
		}
		for len(next) < len(pop) {
			a := scoredPop[tournament(r, len(scoredPop))].g
			b := scoredPop[tournament(r, len(scoredPop))].g
			next = append(next, mut(r, cross(r, a, b), opts.MutationPct))
		}
		pop = next
	}
	return best, score, trials, history
}

// TuneGA runs the PatDNN-style genetic-algorithm tuner. Unlike AutoTVM's
// search it can start from an arbitrary number of chromosomes (§5.3) and
// converges in Population×Generations trials.
func TuneGA(t Task, opts GAOptions) Result {
	opts = opts.withDefaults()
	best, score, trials, history := gaDriver(opts, (*rng).randomParams,
		func(p Params) float64 { return Fitness(t, p) }, crossover, mutate)
	return Result{Best: best, Score: score, Trials: trials, History: history}
}

func tournament(r *rng, n int) int {
	a, b := r.intn(n), r.intn(n)
	if a < b { // scoredPop is sorted descending, lower index is fitter
		return a
	}
	return b
}

func crossover(r *rng, a, b Params) Params {
	pick := func(x, y int) int {
		if r.intn(2) == 0 {
			return x
		}
		return y
	}
	c := Params{
		TileM:  pick(a.TileM, b.TileM),
		TileN:  pick(a.TileN, b.TileN),
		TileK:  pick(a.TileK, b.TileK),
		Unroll: pick(a.Unroll, b.Unroll),
	}
	if r.intn(2) == 0 {
		c.Vectorize = a.Vectorize
	} else {
		c.Vectorize = b.Vectorize
	}
	return c
}

func mutate(r *rng, p Params, pct int) Params {
	maybe := func(cur int, choices []int) int {
		if r.intn(100) < pct {
			return choices[r.intn(len(choices))]
		}
		return cur
	}
	p.TileM = maybe(p.TileM, tileChoices)
	p.TileN = maybe(p.TileN, tileChoices)
	p.TileK = maybe(p.TileK, tileChoices)
	p.Unroll = maybe(p.Unroll, unrollChoices)
	if r.intn(100) < pct {
		p.Vectorize = !p.Vectorize
	}
	return p
}

// TuneRandom is the AutoTVM-like random search baseline: trials independent
// random configurations.
func TuneRandom(t Task, trials int, seed uint64) Result {
	r := newRNG(seed)
	res := Result{}
	for i := 0; i < trials; i++ {
		p := r.randomParams()
		s := Fitness(t, p)
		res.Trials++
		if s > res.Score {
			res.Score, res.Best = s, p
		}
		if (i+1)%16 == 0 {
			res.History = append(res.History, res.Score)
		}
	}
	return res
}
