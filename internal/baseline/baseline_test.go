package baseline

import (
	"testing"

	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// buildConvNet: Conv -> BN -> Relu -> Conv -> Relu -> Add(residual) chain.
func buildConvNet(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("convnet")
	x := g.AddInput("x", tensor.Of(1, 4, 8, 8))
	w1 := g.AddWeight("w1", tensor.New(4, 4, 3, 3).Rand(1))
	c1 := g.Apply1(ops.NewConv(ops.ConvAttrs{Pads: []int{1}}), x, w1)
	bnS := g.AddWeight("s", tensor.Full(1, 4))
	bnB := g.AddWeight("b", tensor.Full(0, 4))
	bnM := g.AddWeight("m", tensor.Full(0, 4))
	bnV := g.AddWeight("v", tensor.Full(1, 4))
	bn := g.Apply1(ops.NewBatchNormalization(1e-5), c1, bnS, bnB, bnM, bnV)
	r1 := g.Apply1(ops.NewRelu(), bn)
	w2 := g.AddWeight("w2", tensor.New(4, 4, 3, 3).Rand(2))
	c2 := g.Apply1(ops.NewConv(ops.ConvAttrs{Pads: []int{1}}), r1, w2)
	r2 := g.Apply1(ops.NewRelu(), c2)
	res := g.Apply1(ops.NewAdd(), r2, r1)
	sig := g.Apply1(ops.NewSigmoid(), res)
	mul := g.Apply1(ops.NewMul(), sig, res)
	g.MarkOutput(mul)
	if err := g.Validate(); err != nil {
		t.Fatalf("convnet invalid: %v", err)
	}
	return g
}

func TestOurBIsSingleton(t *testing.T) {
	g := buildConvNet(t)
	e, plan, err := Plan(OurB, g)
	if err != nil {
		t.Fatal(err)
	}
	// BN folding still runs (every framework folds), so the plan has one
	// block per surviving node.
	if plan.FusedLayerCount() != len(e.G.Nodes) {
		t.Errorf("OurB blocks = %d, nodes = %d", plan.FusedLayerCount(), len(e.G.Nodes))
	}
}

func TestPatternFusersOrdering(t *testing.T) {
	g := buildConvNet(t)
	counts := map[Framework]int{}
	for _, f := range []Framework{MNN, TVM, TFLite, Pytorch, OurB, OurBPlus} {
		_, plan, err := Plan(f, g)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		counts[f] = plan.FusedLayerCount()
	}
	if counts[OurB] < counts[TVM] || counts[OurB] < counts[Pytorch] {
		t.Errorf("OurB (no fusion) should have the most layers: %v", counts)
	}
	if counts[TVM] > counts[Pytorch] {
		t.Errorf("TVM's richer patterns should fuse at least as much as Pytorch: %v", counts)
	}
	if counts[OurBPlus] != counts[TVM] {
		t.Errorf("OurB+ uses TVM's pattern set: %v", counts)
	}
	for f, c := range counts {
		if f == OurB {
			continue
		}
		if c >= counts[OurB] {
			t.Errorf("%s did not fuse anything: %d vs OurB %d", f, c, counts[OurB])
		}
	}
}

func TestPatternFuseSemanticsPreserved(t *testing.T) {
	g := buildConvNet(t)
	feeds := map[*graph.Value]*tensor.Tensor{g.Inputs[0]: tensor.NewOf(g.Inputs[0].Shape).Rand(3)}
	want, err := graph.InterpretOutputs(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Framework{MNN, TVM, TFLite, Pytorch, OurBPlus} {
		e, plan, err := Plan(f, g)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		// The plan's graph is a clone; re-key the feeds by position.
		cfeeds := map[*graph.Value]*tensor.Tensor{e.G.Inputs[0]: feeds[g.Inputs[0]]}
		got, err := graph.InterpretOutputs(e.G, cfeeds)
		if err != nil {
			t.Fatalf("%s interpret: %v", f, err)
		}
		if !tensor.AllClose(got[0], want[0], 1e-3) {
			t.Errorf("%s changed model semantics (max diff %g)",
				f, tensor.MaxAbsDiff(got[0], want[0]))
		}
		_ = plan
	}
}

func TestTVMFusesConvEpilogues(t *testing.T) {
	g := buildConvNet(t)
	e, plan, err := Plan(TVM, g)
	if err != nil {
		t.Fatal(err)
	}
	// After BN folding: Conv -> Relu must be one block.
	for _, n := range e.G.Nodes {
		if n.Op.Type() == "Conv" {
			b := plan.BlockOf(n)
			if b.Size() < 2 {
				t.Errorf("TVM left Conv unfused: %v", b)
			}
		}
	}
}

func TestQualityOrdering(t *testing.T) {
	// OurB and friends share the best kernels; Pytorch's are the weakest.
	if Quality(OurB) != 1.0 || Quality(DNNF) != 1.0 {
		t.Error("our baselines must have quality 1.0")
	}
	for _, f := range []Framework{MNN, TVM, TFLite, Pytorch} {
		if Quality(f) >= 1.0 {
			t.Errorf("%s quality %v should be below OurB", f, Quality(f))
		}
	}
	if Quality(Pytorch) >= Quality(MNN) {
		t.Error("Pytorch-Mobile should have the weakest kernels")
	}
}

func TestTASOOptimize(t *testing.T) {
	// TASO substitutions simplify but do not fuse.
	g := graph.New("taso")
	x := g.AddInput("x", tensor.Of(4, 4))
	v := g.Apply1(ops.NewNeg(), g.Apply1(ops.NewNeg(), x))
	w1 := g.AddWeight("w1", tensor.New(4, 4).Rand(1))
	w2 := g.AddWeight("w2", tensor.New(4, 4).Rand(2))
	l := g.Apply1(ops.NewMatMul(), v, w1)
	r := g.Apply1(ops.NewMatMul(), v, w2)
	out := g.Apply1(ops.NewAdd(), l, r)
	g.MarkOutput(out)
	opt, st, err := TASOOptimize(g)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied == 0 {
		t.Error("TASO applied no substitutions")
	}
	if len(opt.Nodes) >= len(g.Nodes) {
		t.Errorf("TASO did not shrink the graph: %d -> %d", len(g.Nodes), len(opt.Nodes))
	}
	if len(g.Nodes) != 5 {
		t.Errorf("original graph mutated: %d nodes", len(g.Nodes))
	}
}

func TestSupportMatrix(t *testing.T) {
	// DNNFusion is the only engine supporting everything (§5.2).
	for _, m := range []string{"Faster R-CNN", "Mask R-CNN", "S3D", "GPT-2"} {
		if s := Supports(DNNF, m); !s.CPU || !s.GPU {
			t.Errorf("DNNF must support %s", m)
		}
	}
	if s := Supports(MNN, "GPT-2"); s.CPU || s.GPU {
		t.Error("MNN does not support GPT-2")
	}
	if s := Supports(TVM, "GPT-2"); s.CPU || !s.FusionCount {
		t.Error("TVM: GPT-2 layer counts only (laptop build)")
	}
	if s := Supports(TFLite, "BERT-base"); !s.CPU || s.GPU {
		t.Error("TFLite runs BERT-base on CPU only")
	}
	if s := Supports(Pytorch, "VGG-16"); !s.CPU || s.GPU {
		t.Error("Pytorch-Mobile has no GPU support in the comparison")
	}
}
