// Package baseline emulates the frameworks DNNFusion is compared against:
// the four end-to-end mobile engines (MNN, TVM, TensorFlow-Lite,
// Pytorch-Mobile) with their published fixed-pattern fusion strategies, the
// paper's own ablation baselines (OurB: no fusion; OurB+: OurB with
// TVM-style fixed-pattern fusion), and a TASO-like graph-substitution
// optimizer (Figure 6).
//
// Each framework is reduced to the two things the paper's comparison
// isolates: (1) which producer→consumer chains its pattern set can fuse,
// and (2) a kernel-quality factor for its generated code (the paper
// establishes OurB ≥ all four frameworks even without fusion). Everything
// executes on the same device simulator, so differences in the results come
// from fusion capability exactly as they do in the paper.
package baseline

import (
	"dnnfusion/internal/ecg"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/rewrite"
)

// Framework identifies an execution engine configuration.
type Framework string

const (
	MNN      Framework = "MNN"
	TVM      Framework = "TVM"
	TFLite   Framework = "TFLite"
	Pytorch  Framework = "Pytorch"
	OurB     Framework = "OurB"
	OurBPlus Framework = "OurB+"
	DNNF     Framework = "DNNF"
)

// Frameworks lists the comparison order of Tables 5 and 6.
func Frameworks() []Framework {
	return []Framework{MNN, TVM, TFLite, Pytorch, OurB, OurBPlus, DNNF}
}

// patternConfig parameterizes a fixed-pattern chain fuser.
type patternConfig struct {
	// maxEpilogue bounds the One-to-One operators fused after a heavy op
	// (Conv/GEMM): 1 covers conv+relu, 2 covers conv+bias+act, larger
	// values approximate TVM's unbounded injective epilogues.
	maxEpilogue int
	// elementwiseChains allows fusing chains of pure One-to-One ops (not
	// anchored on a heavy op), up to this length; 0 disables.
	elementwiseChains int
	// allowMovement lets Reorganize/Shuffle ops join epilogues (TVM's
	// injective class includes them; the mobile engines' patterns don't).
	allowMovement bool
	// foldBN runs Conv+BatchNorm folding (and constant folding) first,
	// which every production framework does.
	foldBN bool
}

// Quality returns the framework kernel-quality factor (fraction of OurB's
// kernel efficiency); calibrated so OurB outperforms all four frameworks
// without fusion, as the paper establishes for PatDNN.
func Quality(f Framework) float64 {
	switch f {
	case MNN:
		return 0.93
	case TVM:
		return 0.88
	case TFLite:
		return 0.85
	case Pytorch:
		return 0.72
	default: // OurB, OurB+, DNNF share the PatDNN kernel library
		return 1.0
	}
}

func configOf(f Framework) patternConfig {
	switch f {
	case MNN:
		return patternConfig{maxEpilogue: 2, elementwiseChains: 2, foldBN: true}
	case TVM, OurBPlus:
		return patternConfig{maxEpilogue: 8, elementwiseChains: 8, allowMovement: true, foldBN: true}
	case TFLite:
		return patternConfig{maxEpilogue: 2, foldBN: true}
	case Pytorch:
		return patternConfig{maxEpilogue: 1, foldBN: true}
	case OurB:
		return patternConfig{} // no fusion at all
	default:
		panic("baseline: configOf called for DNNF; use internal/core")
	}
}

// Plan runs the framework's optimizer over (a clone of) g and returns the
// annotated graph and fusion plan.
func Plan(f Framework, g *graph.Graph) (*ecg.ECG, *fusion.Plan, error) {
	cfg := configOf(f)
	work := g.Clone()
	e := ecg.Build(work)
	if cfg.foldBN {
		if _, err := rewrite.NewEngine(foldingRules()).Run(e); err != nil {
			return nil, nil, err
		}
	}
	if f == OurB {
		return e, fusion.SingletonPlan(e), nil
	}
	plan, err := patternFuse(e, cfg)
	if err != nil {
		return nil, nil, err
	}
	return e, plan, nil
}

// foldingRules is the conservative rewrite subset every framework ships:
// constant folding and Conv+BN folding only.
func foldingRules() []*rewrite.Rule {
	var out []*rewrite.Rule
	for _, r := range rewrite.DefaultRules() {
		if r.Cat == rewrite.Folding {
			out = append(out, r)
		}
	}
	return out
}

// patternFuse is the shared greedy chain fuser: it walks the graph in
// topological order and grows producer→consumer chains allowed by the
// pattern configuration. Only single-consumer edges fuse (fixed patterns
// never duplicate work), which is the restriction that caps the baseline
// frameworks' fusion rates on deep models.
func patternFuse(e *ecg.ECG, cfg patternConfig) (*fusion.Plan, error) {
	assigned := map[*graph.Node]bool{}
	var groups [][]*graph.Node
	order := e.G.TopoSort()

	chainNext := func(n *graph.Node) *graph.Node {
		if len(n.Outputs) != 1 {
			return nil
		}
		out := n.Outputs[0]
		if out.Kind == graph.Output || len(out.Consumers) != 1 {
			return nil
		}
		next := out.Consumers[0]
		if assigned[next] {
			return nil
		}
		return next
	}
	lightOK := func(n *graph.Node) bool {
		switch e.Mapping(n) {
		case ops.OneToOne:
			return true
		case ops.Reorganize, ops.Shuffle:
			return cfg.allowMovement
		}
		return false
	}

	for _, n := range order {
		if assigned[n] {
			continue
		}
		group := []*graph.Node{n}
		assigned[n] = true
		cur := n
		if isHeavy(n) && cfg.maxEpilogue > 0 {
			for len(group)-1 < cfg.maxEpilogue {
				next := chainNext(cur)
				if next == nil || !lightOK(next) {
					break
				}
				group = append(group, next)
				assigned[next] = true
				cur = next
			}
		} else if cfg.elementwiseChains > 1 && lightOK(n) && e.Mapping(n) == ops.OneToOne {
			for len(group) < cfg.elementwiseChains {
				next := chainNext(cur)
				if next == nil || !lightOK(next) || isHeavy(next) {
					break
				}
				group = append(group, next)
				assigned[next] = true
				cur = next
			}
		}
		groups = append(groups, group)
	}
	return fusion.BuildPlan(e, groups)
}

func isHeavy(n *graph.Node) bool {
	switch n.Op.Type() {
	case "Conv", "ConvTranspose", "MatMul", "Gemm", "Einsum":
		return true
	}
	return false
}

// TASOOptimize applies TASO-style graph substitutions — the full algebraic
// rewrite set, decoupled from any fusion awareness — and returns the
// optimized clone. Figure 6 executes its output under the TFLite engine.
func TASOOptimize(g *graph.Graph) (*graph.Graph, rewrite.Stats, error) {
	work := g.Clone()
	e := ecg.Build(work)
	st, err := rewrite.NewDefaultEngine().Run(e)
	if err != nil {
		return nil, st, err
	}
	return work, st, nil
}
