package baseline

// Model support matrices of the four frameworks, transcribed from the '-'
// cells of Tables 5 and 6. DNNFusion, OurB and OurB+ support every model on
// both CPU and GPU (the paper's central capability claim).

// Support describes a framework's ability to run a model.
type Support struct {
	CPU bool // mobile CPU execution (Table 6)
	GPU bool // mobile GPU execution (Table 6)
	// FusionCount: layer counts are reported in Table 5 even when mobile
	// execution is unsupported (TVM's transformer numbers come from a
	// laptop build, marked † in the paper).
	FusionCount bool
}

var supportMatrix = map[Framework]map[string]Support{
	MNN: {
		"EfficientNet-B0": {true, true, true},
		"VGG-16":          {true, true, true},
		"MobileNetV1-SSD": {true, true, true},
		"YOLO-V4":         {true, true, true},
		"C3D":             {true, false, true},
		"U-Net":           {true, true, true},
	},
	TVM: {
		"EfficientNet-B0": {true, true, true},
		"VGG-16":          {true, true, true},
		"MobileNetV1-SSD": {true, true, true},
		"YOLO-V4":         {true, true, true},
		"C3D":             {true, false, true},
		"U-Net":           {true, true, true},
		// Transformers: layer counts only (laptop build, † in Table 5).
		"TinyBERT":   {false, false, true},
		"DistilBERT": {false, false, true},
		"ALBERT":     {false, false, true},
		"BERT-base":  {false, false, true},
		"MobileBERT": {false, false, true},
		"GPT-2":      {false, false, true},
	},
	TFLite: {
		"EfficientNet-B0": {true, true, true},
		"VGG-16":          {true, true, true},
		"MobileNetV1-SSD": {true, true, true},
		"YOLO-V4":         {true, true, true},
		"U-Net":           {true, true, true},
		// Transformers run on mobile CPU only.
		"TinyBERT":   {true, false, true},
		"DistilBERT": {true, false, true},
		"ALBERT":     {true, false, true},
		"BERT-base":  {true, false, true},
		"MobileBERT": {true, false, true},
		"GPT-2":      {true, false, true},
	},
	Pytorch: {
		"EfficientNet-B0": {true, false, true},
		"VGG-16":          {true, false, true},
		"MobileNetV1-SSD": {true, false, true},
		"YOLO-V4":         {true, false, true},
		"C3D":             {true, false, true},
		"S3D":             {true, false, true},
	},
}

// Supports reports whether the framework handles the model; OurB, OurB+ and
// DNNF support everything.
func Supports(f Framework, model string) Support {
	switch f {
	case OurB, OurBPlus, DNNF:
		return Support{true, true, true}
	}
	return supportMatrix[f][model]
}
