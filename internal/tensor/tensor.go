package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	shape   Shape
	strides []int
	data    []float32
}

// New allocates a zero-filled tensor of the given shape.
func New(dims ...int) *Tensor {
	s := Shape(dims)
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &Tensor{shape: s.Clone(), strides: s.Strides(), data: make([]float32, s.NumElements())}
}

// NewOf allocates a zero-filled tensor with shape s.
func NewOf(s Shape) *Tensor { return New(s...) }

// FromSlice wraps data (not copied) in a tensor of the given shape.
// The data length must equal the shape's element count.
func FromSlice(data []float32, dims ...int) *Tensor {
	s := Shape(dims)
	if len(data) != s.NumElements() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)",
			len(data), s, s.NumElements()))
	}
	return &Tensor{shape: s.Clone(), strides: s.Strides(), data: data}
}

// ViewOf wraps data (not copied) in a tensor of shape s. It is the
// view-over-slab constructor the planned-arena executor uses: the returned
// header aliases a slot of a session's arena, so writing through the tensor
// writes the arena and no per-inference allocation happens. The data length
// must equal the shape's element count.
func ViewOf(data []float32, s Shape) *Tensor { return FromSlice(data, s...) }

// Scalar returns a rank-0 tensor holding v.
func Scalar(v float32) *Tensor {
	t := New()
	t.data[0] = v
	return t
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float32, dims ...int) *Tensor {
	t := New(dims...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Shape returns the tensor's shape. Callers must not mutate it.
func (t *Tensor) Shape() Shape { return t.shape }

// Data returns the backing slice in row-major order.
func (t *Tensor) Data() []float32 { return t.data }

// NumElements returns the number of elements.
func (t *Tensor) NumElements() int { return len(t.data) }

// Bytes returns the storage size in bytes.
func (t *Tensor) Bytes() int64 { return int64(len(t.data)) * 4 }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

// AtOffset returns the element at a flat row-major offset.
func (t *Tensor) AtOffset(off int) float32 { return t.data[off] }

// SetOffset stores v at a flat row-major offset.
func (t *Tensor) SetOffset(off int, v float32) { t.data[off] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, v := range idx {
		if v < 0 || v >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off += v * t.strides[i]
	}
	return off
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := NewOf(t.shape)
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape of equal
// element count.
func (t *Tensor) Reshape(dims ...int) *Tensor {
	s := Shape(dims)
	if s.NumElements() != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, s))
	}
	return &Tensor{shape: s.Clone(), strides: s.Strides(), data: t.data}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Rand fills the tensor with deterministic pseudo-random values in (-1, 1)
// derived from seed, and returns t. It uses a simple xorshift generator so
// model weights are reproducible without importing math/rand in hot paths.
func (t *Tensor) Rand(seed uint64) *Tensor {
	x := seed*2862933555777941757 + 3037000493
	if x == 0 {
		x = 0x9E3779B97F4A7C15
	}
	for i := range t.data {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		// Map to (-1, 1) with 24 bits of mantissa.
		t.data[i] = float32(int64(x>>40)-1<<23) / (1 << 23)
	}
	return t
}

// AllClose reports whether a and b have the same shape and all elements are
// within tol of each other (absolute or relative, whichever is looser).
func AllClose(a, b *Tensor, tol float64) bool {
	if !a.shape.Equal(b.shape) {
		return false
	}
	for i := range a.data {
		x, y := float64(a.data[i]), float64(b.data[i])
		if math.IsNaN(x) != math.IsNaN(y) {
			return false
		}
		if math.IsNaN(x) {
			continue
		}
		diff := math.Abs(x - y)
		if diff > tol && diff > tol*math.Max(math.Abs(x), math.Abs(y)) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum absolute element difference between a and b,
// which must have equal shapes.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !a.shape.Equal(b.shape) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.shape, b.shape))
	}
	var m float64
	for i := range a.data {
		d := math.Abs(float64(a.data[i]) - float64(b.data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func (t *Tensor) String() string {
	if len(t.data) <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v[%v %v %v ...]", t.shape, t.data[0], t.data[1], t.data[2])
}
