// Package tensor provides the dense tensor substrate used throughout the
// DNNFusion reproduction: shapes, row-major strides, NumPy-style
// broadcasting, and float32 tensors with reference indexing.
//
// All operator semantics in internal/ops, the fusion code generator in
// internal/codegen, and the model builders in internal/models are defined in
// terms of this package. Only float32 data is supported; boolean results are
// encoded as 0/1 and integer-valued tensors (indices, shifts) are stored as
// whole-number float32 values, which is exact below 2^24.
package tensor

import (
	"fmt"
	"strings"
)

// Shape is the dimensions of a tensor, outermost first.
// A nil or empty Shape denotes a scalar.
type Shape []int

// NumElements returns the total number of elements, 1 for a scalar.
func (s Shape) NumElements() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Equal reports whether s and o have identical dimensions.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s Shape) Clone() Shape {
	if s == nil {
		return nil
	}
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Valid reports whether every dimension is positive.
func (s Shape) Valid() bool {
	for _, d := range s {
		if d <= 0 {
			return false
		}
	}
	return true
}

// Strides returns row-major strides for s. A scalar returns an empty slice.
func (s Shape) Strides() []int {
	st := make([]int, len(s))
	acc := 1
	for i := len(s) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= s[i]
	}
	return st
}

// Bytes returns the size in bytes of a float32 tensor of this shape.
func (s Shape) Bytes() int64 { return int64(s.NumElements()) * 4 }

func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "[" + strings.Join(parts, "x") + "]"
}

// Of is a convenience constructor: tensor.Of(1, 3, 224, 224).
func Of(dims ...int) Shape { return Shape(dims) }

// Ravel converts a multi-dimensional index into a flat row-major offset.
// The index must have the same rank as the shape and be in range.
func (s Shape) Ravel(idx []int) int {
	off := 0
	for i, d := range s {
		off = off*d + idx[i]
	}
	return off
}

// Unravel converts a flat row-major offset into a multi-dimensional index,
// writing into dst (which must have rank(s) entries) and returning it.
func (s Shape) Unravel(off int, dst []int) []int {
	for i := len(s) - 1; i >= 0; i-- {
		dst[i] = off % s[i]
		off /= s[i]
	}
	return dst
}

// Iterate calls fn for every index of the shape in row-major order.
// The index slice is reused between calls; fn must not retain it.
func (s Shape) Iterate(fn func(idx []int)) {
	n := s.NumElements()
	idx := make([]int, len(s))
	for off := 0; off < n; off++ {
		s.Unravel(off, idx)
		fn(idx)
	}
}

// Normalize resolves a possibly negative axis (Python-style) against rank r.
// It returns the normalized axis and whether it was in range.
func NormalizeAxis(axis, rank int) (int, bool) {
	if axis < 0 {
		axis += rank
	}
	if axis < 0 || axis >= rank {
		return 0, false
	}
	return axis, true
}
