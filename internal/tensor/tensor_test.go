package tensor

import (
	"testing"
	"testing/quick"
)

func TestShapeBasics(t *testing.T) {
	s := Of(2, 3, 4)
	if got := s.NumElements(); got != 24 {
		t.Errorf("NumElements = %d, want 24", got)
	}
	if got := s.Rank(); got != 3 {
		t.Errorf("Rank = %d, want 3", got)
	}
	if !s.Equal(Of(2, 3, 4)) {
		t.Error("Equal returned false for identical shapes")
	}
	if s.Equal(Of(2, 3)) || s.Equal(Of(2, 3, 5)) {
		t.Error("Equal returned true for different shapes")
	}
	if got := s.String(); got != "[2x3x4]" {
		t.Errorf("String = %q", got)
	}
	if got := s.Bytes(); got != 96 {
		t.Errorf("Bytes = %d, want 96", got)
	}
}

func TestScalarShape(t *testing.T) {
	var s Shape
	if s.NumElements() != 1 {
		t.Errorf("scalar NumElements = %d, want 1", s.NumElements())
	}
	sc := Scalar(3)
	if sc.At() != 3 {
		t.Errorf("Scalar At = %v, want 3", sc.At())
	}
}

func TestStrides(t *testing.T) {
	s := Of(2, 3, 4)
	st := s.Strides()
	want := []int{12, 4, 1}
	for i := range want {
		if st[i] != want[i] {
			t.Fatalf("Strides = %v, want %v", st, want)
		}
	}
}

func TestRavelUnravelRoundTrip(t *testing.T) {
	s := Of(3, 4, 5)
	idx := make([]int, 3)
	for off := 0; off < s.NumElements(); off++ {
		s.Unravel(off, idx)
		if got := s.Ravel(idx); got != off {
			t.Fatalf("Ravel(Unravel(%d)) = %d", off, got)
		}
	}
}

func TestIterateOrder(t *testing.T) {
	s := Of(2, 2)
	var seen [][2]int
	s.Iterate(func(idx []int) { seen = append(seen, [2]int{idx[0], idx[1]}) })
	want := [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	if len(seen) != len(want) {
		t.Fatalf("Iterate visited %d indices, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("Iterate order %v, want %v", seen, want)
		}
	}
}

func TestAtSet(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if got := x.At(1, 2); got != 7 {
		t.Errorf("At(1,2) = %v, want 7", got)
	}
	if got := x.AtOffset(5); got != 7 {
		t.Errorf("AtOffset(5) = %v, want 7", got)
	}
}

func TestIndexPanics(t *testing.T) {
	x := New(2, 3)
	for _, idx := range [][]int{{2, 0}, {0, 3}, {-1, 0}, {0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%v) did not panic", idx)
				}
			}()
			x.At(idx...)
		}()
	}
}

func TestFromSliceAndReshape(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	if y.At(2, 1) != 6 {
		t.Errorf("Reshape view At(2,1) = %v, want 6", y.At(2, 1))
	}
	y.Set(9, 0, 0)
	if x.At(0, 0) != 9 {
		t.Error("Reshape should share underlying data")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Reshape to wrong size did not panic")
			}
		}()
		x.Reshape(4, 2)
	}()
}

func TestCloneIndependence(t *testing.T) {
	x := Full(2, 2, 2)
	y := x.Clone()
	y.Set(5, 0, 0)
	if x.At(0, 0) != 2 {
		t.Error("Clone shares data with original")
	}
}

func TestRandDeterministic(t *testing.T) {
	a := New(100).Rand(42)
	b := New(100).Rand(42)
	c := New(100).Rand(43)
	if MaxAbsDiff(a, b) != 0 {
		t.Error("Rand with same seed differs")
	}
	if MaxAbsDiff(a, c) == 0 {
		t.Error("Rand with different seeds identical")
	}
	for i, v := range a.Data() {
		if v < -1 || v >= 1 {
			t.Fatalf("Rand value %v at %d outside (-1,1)", v, i)
		}
	}
}

func TestBroadcastShapes(t *testing.T) {
	cases := []struct {
		a, b, want Shape
		err        bool
	}{
		{Of(2, 3), Of(2, 3), Of(2, 3), false},
		{Of(2, 3), Of(3), Of(2, 3), false},
		{Of(2, 1), Of(1, 3), Of(2, 3), false},
		{Of(4, 1, 5), Of(3, 1), Of(4, 3, 5), false},
		{nil, Of(2, 2), Of(2, 2), false},
		{Of(2, 3), Of(2, 4), nil, true},
	}
	for _, c := range cases {
		got, err := BroadcastShapes(c.a, c.b)
		if c.err {
			if err == nil {
				t.Errorf("BroadcastShapes(%v,%v) expected error", c.a, c.b)
			}
			continue
		}
		if err != nil {
			t.Errorf("BroadcastShapes(%v,%v) error: %v", c.a, c.b, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("BroadcastShapes(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestBroadcastIndex(t *testing.T) {
	in := Of(1, 3)
	dst := make([]int, 2)
	got := BroadcastIndex([]int{5, 2}, in, dst)
	if got[0] != 0 || got[1] != 2 {
		t.Errorf("BroadcastIndex = %v, want [0 2]", got)
	}
	// Lower-rank input aligns right.
	in2 := Of(4)
	dst2 := make([]int, 1)
	got2 := BroadcastIndex([]int{7, 3}, in2, dst2)
	if got2[0] != 3 {
		t.Errorf("BroadcastIndex lower rank = %v, want [3]", got2)
	}
}

func TestAllClose(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{1, 2, 3.0000001}, 3)
	if !AllClose(a, b, 1e-4) {
		t.Error("AllClose rejected nearly equal tensors")
	}
	c := FromSlice([]float32{1, 2, 4}, 3)
	if AllClose(a, c, 1e-4) {
		t.Error("AllClose accepted differing tensors")
	}
	d := FromSlice([]float32{1, 2}, 2)
	if AllClose(a, d, 1e-4) {
		t.Error("AllClose accepted different shapes")
	}
}

// Property: broadcasting is commutative and idempotent against the result.
func TestBroadcastProperties(t *testing.T) {
	gen := func(dims []uint8) Shape {
		s := make(Shape, 0, 3)
		for _, d := range dims {
			s = append(s, int(d%3)+1)
			if len(s) == 3 {
				break
			}
		}
		return s
	}
	f := func(da, db []uint8) bool {
		a, b := gen(da), gen(db)
		ab, err1 := BroadcastShapes(a, b)
		ba, err2 := BroadcastShapes(b, a)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		if !ab.Equal(ba) {
			return false
		}
		// Broadcasting the result with either input is a fixed point.
		again, err := BroadcastShapes(ab, a)
		return err == nil && again.Equal(ab)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Ravel is a bijection between indices and [0, NumElements).
func TestRavelBijectionProperty(t *testing.T) {
	f := func(d1, d2, d3 uint8) bool {
		s := Of(int(d1%4)+1, int(d2%4)+1, int(d3%4)+1)
		seen := make(map[int]bool)
		idx := make([]int, 3)
		for off := 0; off < s.NumElements(); off++ {
			s.Unravel(off, idx)
			r := s.Ravel(idx)
			if r != off || seen[r] {
				return false
			}
			seen[r] = true
		}
		return len(seen) == s.NumElements()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
