package tensor

import "fmt"

// BroadcastShapes computes the NumPy-style broadcast of two shapes.
// Dimensions are aligned from the right; a dimension broadcasts against an
// equal dimension or against 1.
func BroadcastShapes(a, b Shape) (Shape, error) {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(Shape, n)
	for i := 0; i < n; i++ {
		da, db := 1, 1
		if i < len(a) {
			da = a[len(a)-1-i]
		}
		if i < len(b) {
			db = b[len(b)-1-i]
		}
		switch {
		case da == db:
			out[n-1-i] = da
		case da == 1:
			out[n-1-i] = db
		case db == 1:
			out[n-1-i] = da
		default:
			return nil, fmt.Errorf("tensor: cannot broadcast %v with %v", a, b)
		}
	}
	return out, nil
}

// BroadcastAll folds BroadcastShapes over a list of shapes.
func BroadcastAll(shapes ...Shape) (Shape, error) {
	if len(shapes) == 0 {
		return nil, fmt.Errorf("tensor: no shapes to broadcast")
	}
	out := shapes[0].Clone()
	for _, s := range shapes[1:] {
		var err error
		out, err = BroadcastShapes(out, s)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// IsBroadcastExpansion reports whether mapping from into out requires actual
// expansion (i.e. from has fewer elements than out under broadcasting). This
// is what distinguishes a One-to-One elementwise op from its One-to-Many
// broadcast variant in the paper's classification.
func IsBroadcastExpansion(from, out Shape) bool {
	return from.NumElements() < out.NumElements()
}

// BroadcastIndex maps an index into the broadcast output shape back to an
// index into the (possibly lower-rank or size-1) input shape `in`, writing
// into dst and returning it. dst must have len(in) capacity.
func BroadcastIndex(outIdx []int, in Shape, dst []int) []int {
	dst = dst[:len(in)]
	offset := len(outIdx) - len(in)
	for i := range in {
		v := outIdx[offset+i]
		if in[i] == 1 {
			v = 0
		}
		dst[i] = v
	}
	return dst
}

// BroadcastOffset maps a flat offset in the output shape to a flat offset in
// the input shape under broadcasting. Slower than precomputing strides but
// convenient for reference implementations.
func BroadcastOffset(out Shape, off int, in Shape) int {
	outIdx := make([]int, len(out))
	out.Unravel(off, outIdx)
	inIdx := make([]int, len(in))
	BroadcastIndex(outIdx, in, inIdx)
	return in.Ravel(inIdx)
}
