package rewrite

import (
	"fmt"
	"math"

	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// Folding rules: compile-time evaluation of constant subgraphs and the
// classic Conv+BatchNormalization weight folding.

// constFoldLimit bounds the FLOPs a compile-time evaluation may spend so
// rewriting stays light-weight.
const constFoldLimit = 1 << 22

// ruleConstFold evaluates operators whose inputs are all compile-time
// constants, replacing them with weight values.
func ruleConstFold() *Rule {
	return &Rule{
		Name:  "fold-constants",
		Cat:   Folding,
		Forms: []string{"op(c1, ..., ck) → eval(op)(c1, ..., ck) for constant ci"},
		Match: func(c *Ctx, n *graph.Node) []*Application {
			if len(n.Inputs) == 0 {
				return nil
			}
			var removedBytes int64
			for _, in := range n.Inputs {
				if !in.IsConst() {
					return nil
				}
			}
			for _, out := range n.Outputs {
				if out.Kind == graph.Output {
					return nil // keep graph outputs producer-backed
				}
				removedBytes += out.Shape.Bytes()
			}
			fl := nodeFLOPs(n)
			if fl > constFoldLimit {
				return nil
			}
			app := &Application{
				Rule:       "fold-constants",
				Cat:        Folding,
				Root:       n,
				DeltaFLOPs: fl,
				DeltaBytes: removedBytes,
				apply: func(c *Ctx) error {
					ins := make([]*tensor.Tensor, len(n.Inputs))
					for i, in := range n.Inputs {
						ins[i] = in.Data
					}
					outs, err := ops.Eval(n.Op, ins)
					if err != nil {
						return err
					}
					for o, out := range n.Outputs {
						cv := c.newConst(outs[o])
						if err := c.G.ReplaceAllUses(out, cv); err != nil {
							return err
						}
					}
					return nil
				},
			}
			return []*Application{app}
		},
	}
}

// ruleConvBatchNormFold: BatchNormalization(Conv(X, W, b)) → Conv(X, W', b')
// with W'ₘ = Wₘ·sₘ and b' = (b − mean)·s + bias, s = scale/√(var+eps). The
// BatchNorm disappears entirely; this is the folding every mobile framework
// performs and the paper's rewriter subsumes.
func ruleConvBatchNormFold() *Rule {
	return &Rule{
		Name:  "fold-conv-batchnorm",
		Cat:   Folding,
		Forms: []string{"BatchNorm(Conv(X, W, b)) → Conv(X, W·s, (b−μ)·s + β)"},
		Match: func(c *Ctx, n *graph.Node) []*Application {
			eps, isBN := ops.BatchNormEps(n.Op)
			if !isBN {
				return nil
			}
			convNode, ok := isUnaryOf(n.Inputs[0], "Conv")
			if !ok {
				return nil
			}
			w := convNode.Inputs[1]
			if w.Kind != graph.Weight {
				return nil
			}
			var bias *graph.Value
			if len(convNode.Inputs) == 3 {
				bias = convNode.Inputs[2]
				if bias.Kind != graph.Weight {
					return nil
				}
			}
			numeric := w.Data != nil && (bias == nil || bias.Data != nil)
			for _, p := range n.Inputs[1:] {
				if p.Kind != graph.Weight {
					return nil
				}
				if p.Data == nil {
					numeric = false
				}
			}
			scale, beta, mean, variance := n.Inputs[1], n.Inputs[2], n.Inputs[3], n.Inputs[4]
			convOp := convNode.Op
			x := convNode.Inputs[0]
			app := &Application{
				Rule:       "fold-conv-batchnorm",
				Cat:        Folding,
				Root:       n,
				DeltaFLOPs: nodeFLOPs(n),
				DeltaBytes: out0(convNode).Shape.Bytes(),
				apply: func(c *Ctx) error {
					m := w.Shape[0]
					if !numeric {
						// Shape-only weights: fold symbolically by
						// replacing Conv+BN with one Conv over fresh
						// placeholder parameters (computed at deploy
						// time in the paper's system).
						c.nextConst++
						wV := c.G.AddWeightShape(fmt.Sprintf("rewrite_const_%d", c.nextConst), w.Shape)
						c.nextConst++
						bV := c.G.AddWeightShape(fmt.Sprintf("rewrite_const_%d", c.nextConst), tensor.Of(m))
						outs, err := c.G.Apply(convOp, x, wV, bV)
						if err != nil {
							return err
						}
						return replaceWith(c, n, outs[0])
					}
					s := make([]float32, m)
					for i := 0; i < m; i++ {
						s[i] = scale.Data.At(i) / float32(math.Sqrt(float64(variance.Data.At(i))+float64(eps)))
					}
					// W'ₘ = Wₘ·sₘ over the output-channel dimension.
					wNew := w.Data.Clone()
					perOut := w.Shape.NumElements() / m
					for i := 0; i < m; i++ {
						for k := 0; k < perOut; k++ {
							off := i*perOut + k
							wNew.SetOffset(off, wNew.AtOffset(off)*s[i])
						}
					}
					bNew := tensor.New(m)
					for i := 0; i < m; i++ {
						b0 := float32(0)
						if bias != nil {
							b0 = bias.Data.At(i)
						}
						bNew.Set((b0-mean.Data.At(i))*s[i]+beta.Data.At(i), i)
					}
					wV := c.newConst(wNew)
					bV := c.newConst(bNew)
					outs, err := c.G.Apply(convOp, x, wV, bV)
					if err != nil {
						return err
					}
					return replaceWith(c, n, outs[0])
				},
			}
			// Pricing: BN removed; conv cost changes only by the bias add
			// when the original conv had none.
			if bias == nil {
				app.DeltaFLOPs -= int64(out0(convNode).Shape.NumElements())
			}
			return []*Application{app}
		},
	}
}
