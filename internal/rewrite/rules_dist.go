package rewrite

import (
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// Distributive-family rules (Table 4, second block, and Figure 2b).

func valueShapes(vs []*graph.Value) []tensor.Shape {
	out := make([]tensor.Shape, len(vs))
	for i, v := range vs {
		out[i] = v.Shape
	}
	return out
}

// ruleAddFactorCommon: X⊙A + X⊙B → X⊙(A+B), flattening single-use Add
// chains to find the shared factor; also handles the implicit-one form
// X + X⊙B → X⊙(B+1) (no FLOPs gain, but X is loaded once — the paper's §
// case).
func ruleAddFactorCommon() *Rule {
	return &Rule{
		Name: "dist-add-factor-common",
		Cat:  Distributive,
		Forms: []string{
			"A⊙C + A⊙B → A⊙(C+B)",
			"A + A⊙B → A⊙(B+1)",
			"A·B⊙C + (A·B)⊙D → A·B⊙(C+D)",
		},
		Match: func(c *Ctx, n *graph.Node) []*Application {
			if !addChainRoot(n) {
				return nil
			}
			leaves := factorChain(n, "Add", maxChainDepth)
			interior := chainNodes(n, "Add", maxChainDepth)
			type fact struct {
				mul          *graph.Node // nil for the implicit-one form
				shared, rest *graph.Value
			}
			facts := make([][]fact, len(leaves))
			for li, l := range leaves {
				if m, ok := isUnaryOf(l, "Mul"); ok {
					a, b := m.Inputs[0], m.Inputs[1]
					facts[li] = append(facts[li], fact{m, a, b}, fact{m, b, a})
				}
				facts[li] = append(facts[li], fact{nil, l, nil})
			}
			for i := 0; i < len(leaves); i++ {
				for j := i + 1; j < len(leaves); j++ {
					for _, fi := range facts[i] {
						for _, fj := range facts[j] {
							if fi.shared != fj.shared || (fi.mul == nil && fj.mul == nil) {
								continue
							}
							if app := buildAddFactorApp(n, leaves, interior, i, j, fi.mul, fj.mul, fi.shared, fi.rest, fj.rest); app != nil {
								return []*Application{app}
							}
						}
					}
				}
			}
			return nil
		},
	}
}

// addChainRoot mirrors mulChainRoot for Add chains.
func addChainRoot(n *graph.Node) bool {
	if !opIs(n, "Add") {
		return false
	}
	out := out0(n)
	if out.Kind == graph.Output {
		return true
	}
	if len(out.Consumers) == 1 && opIs(out.Consumers[0], "Add") {
		return false
	}
	return true
}

func buildAddFactorApp(root *graph.Node, leaves []*graph.Value, interior []*graph.Node,
	i, j int, mulI, mulJ *graph.Node, shared, restI, restJ *graph.Value) *Application {

	removed := append([]*graph.Node(nil), interior...)
	if mulI != nil {
		removed = append(removed, mulI)
	}
	if mulJ != nil {
		removed = append(removed, mulJ)
	}
	removedFLOPs := sumFLOPs(removed)
	var removedBytes int64
	for _, n := range removed {
		removedBytes += out0(n).Shape.Bytes()
	}

	// Replacement: shared ⊙ inner, inner = restI + restJ (or rest + 1).
	var innerOp ops.Operator
	var innerIns []*graph.Value
	implicitOne := false
	switch {
	case restI != nil && restJ != nil:
		innerOp = ops.NewAdd()
		innerIns = []*graph.Value{restI, restJ}
	case restI != nil:
		innerOp, innerIns, implicitOne = ops.NewAddConst(1), []*graph.Value{restI}, true
	default:
		innerOp, innerIns, implicitOne = ops.NewAddConst(1), []*graph.Value{restJ}, true
	}
	innerShapes, err := innerOp.InferShapes(valueShapes(innerIns))
	if err != nil {
		return nil
	}
	mul := ops.NewMul()
	mulIn := []tensor.Shape{shared.Shape, innerShapes[0]}
	prodShape, err := mul.InferShapes(mulIn)
	if err != nil {
		return nil
	}

	var keep []*graph.Value
	for k, l := range leaves {
		if k != i && k != j {
			keep = append(keep, l)
		}
	}
	tailShapes := append([]tensor.Shape{prodShape[0]}, valueShapes(keep)...)

	addedFLOPs := plannedFLOPs(innerOp, innerIns...) + mul.FLOPs(mulIn) +
		chainFLOPsShapes(ops.NewAdd, tailShapes)
	addedBytes := innerShapes[0].Bytes() + prodShape[0].Bytes() +
		chainBytesShapes(ops.NewAdd, tailShapes)

	app := &Application{
		Rule:       "dist-add-factor-common",
		Cat:        Distributive,
		Root:       root,
		DeltaFLOPs: removedFLOPs - addedFLOPs,
		DeltaBytes: removedBytes - addedBytes,
		apply: func(c *Ctx) error {
			inner, err := c.G.Apply(innerOp, innerIns...)
			if err != nil {
				return err
			}
			prod, err := c.G.Apply(mul, shared, inner[0])
			if err != nil {
				return err
			}
			out, err := rebuildChain(c, ops.NewAdd, append([]*graph.Value{prod[0]}, keep...))
			if err != nil {
				return err
			}
			return replaceWith(c, root, out)
		},
	}
	if implicitOne && app.DeltaFLOPs == 0 && app.DeltaBytes == 0 {
		// A + A⊙B → A⊙(B+1): FLOPs and bytes unchanged but A is loaded
		// once instead of twice (the paper applies it; see Table 4 §).
		app.DeltaBytes = 1
	}
	return app
}

// ruleLinearOpCommon: MatMul(A,C) + MatMul(B,C) → MatMul(A+B, C) and the
// shared-left / Conv variants (Figure 2b right: two GEMMs merged through
// distributivity). The contraction is performed once.
func ruleLinearOpCommon() *Rule {
	return &Rule{
		Name: "dist-contraction-common",
		Cat:  Distributive,
		Forms: []string{
			"GEMM(A,C) + GEMM(B,C) → GEMM(A+B, C)",
			"GEMM(A,B) + GEMM(A,C) → GEMM(A, B+C)",
			"Conv(X1,W) + Conv(X2,W) → Conv(X1+X2, W)",
		},
		Match: func(c *Ctx, n *graph.Node) []*Application {
			if !opIs(n, "Add") {
				return nil
			}
			l, r := n.Inputs[0], n.Inputs[1]
			pl, pr := producer(l), producer(r)
			if pl == nil || pr == nil || pl == pr || !singleUse(l) || !singleUse(r) {
				return nil
			}
			if pl.Op.Type() != pr.Op.Type() {
				return nil
			}
			switch pl.Op.Type() {
			case "MatMul":
			case "Conv":
				if pl.Op.AttrKey() != pr.Op.AttrKey() || len(pl.Inputs) != len(pr.Inputs) {
					return nil
				}
			default:
				return nil
			}
			// Find the shared operand slot.
			for slot := 0; slot < 2; slot++ {
				other := 1 - slot
				if pl.Inputs[slot] != pr.Inputs[slot] {
					continue
				}
				if !pl.Inputs[other].Shape.Equal(pr.Inputs[other].Shape) {
					continue
				}
				if pl.Op.Type() == "Conv" && slot != 1 {
					continue // only a shared weight slot is linear for Conv
				}
				if pl.Op.Type() == "Conv" && len(pl.Inputs) == 3 {
					// A shared bias would be double-counted in
					// Conv(X1+X2, W, b); restrict to bias-free convs.
					continue
				}
				shared := pl.Inputs[slot]
				a, b := pl.Inputs[other], pr.Inputs[other]
				op := pl.Op
				removed := sumFLOPs([]*graph.Node{pl, pr, n})
				add := ops.NewAdd()
				sumFL := plannedFLOPs(add, a, b)
				var newIns []*graph.Value
				_ = newIns
				var opFL int64
				if slot == 0 {
					opFL = op.FLOPs([]tensor.Shape{shared.Shape, a.Shape})
				} else {
					opFL = op.FLOPs(valueShapes(append([]*graph.Value{a}, pl.Inputs[1:]...)))
				}
				added := sumFL + opFL
				slotCopy, conv := slot, pl.Op.Type() == "Conv"
				app := &Application{
					Rule:       "dist-contraction-common",
					Cat:        Distributive,
					Root:       n,
					DeltaFLOPs: removed - added,
					DeltaBytes: out0(pl).Shape.Bytes(),
					apply: func(c *Ctx) error {
						sum, err := c.G.Apply(add, a, b)
						if err != nil {
							return err
						}
						var ins []*graph.Value
						if slotCopy == 0 {
							ins = []*graph.Value{shared, sum[0]}
						} else {
							ins = []*graph.Value{sum[0], shared}
						}
						if conv && len(pl.Inputs) == 3 {
							ins = append(ins, pl.Inputs[2])
						}
						out, err := c.G.Apply(op, ins...)
						if err != nil {
							return err
						}
						return replaceWith(c, n, out[0])
					},
				}
				return []*Application{app}
			}
			return nil
		},
	}
}

// ruleSquareMinusFactor: Square(S) − S⊙C → S⊙(S−C) and the Add variant
// (Table 4: Square(A+B) − (A+B)⊙C → (A+B)⊙(A+B−C) with S = A+B).
func ruleSquareMinusFactor() *Rule {
	match := func(c *Ctx, n *graph.Node, opType string, mkInner func() ops.Operator) []*Application {
		if !opIs(n, opType) {
			return nil
		}
		sq, ok := isUnaryOf(n.Inputs[0], "Square")
		if !ok {
			return nil
		}
		mulNode, ok := isUnaryOf(n.Inputs[1], "Mul")
		if !ok {
			return nil
		}
		s := unaryArg(sq)
		var other *graph.Value
		switch {
		case mulNode.Inputs[0] == s:
			other = mulNode.Inputs[1]
		case mulNode.Inputs[1] == s:
			other = mulNode.Inputs[0]
		default:
			return nil
		}
		removed := sumFLOPs([]*graph.Node{sq, mulNode, n})
		removedBytes := out0(sq).Shape.Bytes() + out0(mulNode).Shape.Bytes()
		inner := mkInner()
		innerFL := plannedFLOPs(inner, s, other)
		innerShape, err := inner.InferShapes([]tensor.Shape{s.Shape, other.Shape})
		if err != nil {
			return nil
		}
		mul := ops.NewMul()
		mulFL := mul.FLOPs([]tensor.Shape{s.Shape, innerShape[0]})
		app := &Application{
			Rule:       "dist-square-minus-factor",
			Cat:        Distributive,
			Root:       n,
			DeltaFLOPs: removed - innerFL - mulFL,
			DeltaBytes: removedBytes - innerShape[0].Bytes() - out0(n).Shape.Bytes(),
			apply: func(c *Ctx) error {
				iv, err := c.G.Apply(inner, s, other)
				if err != nil {
					return err
				}
				out, err := c.G.Apply(mul, s, iv[0])
				if err != nil {
					return err
				}
				return replaceWith(c, n, out[0])
			},
		}
		return []*Application{app}
	}
	return &Rule{
		Name: "dist-square-minus-factor",
		Cat:  Distributive,
		Forms: []string{
			"Square(A+B) − (A+B)⊙C → (A+B)⊙(A+B−C)",
			"Square(S) + S⊙C → S⊙(S+C)",
		},
		Match: func(c *Ctx, n *graph.Node) []*Application {
			if apps := match(c, n, "Sub", ops.NewSub); apps != nil {
				return apps
			}
			return match(c, n, "Add", ops.NewAdd)
		},
	}
}
