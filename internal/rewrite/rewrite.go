// Package rewrite implements DNNFusion's mathematical-property-based graph
// rewriting (paper §4.2): strength-reduction-style rules over tensor
// operators, driven by associative, distributive and commutative properties,
// applied greedily by FLOPs reduction until fixpoint.
//
// The engine mirrors the paper's search strategy: the ECG is partitioned at
// operators that have none of the three properties (partition points);
// within each partition all rule matches are collected and the one with the
// largest #FLOPs reduction is applied, repeating until no rule matches.
package rewrite

import (
	"fmt"
	"sort"

	"dnnfusion/internal/ecg"
	"dnnfusion/internal/graph"
)

// Category classifies a rule per the paper's Table 4, plus the
// data-movement and folding families of §4.4.2/Figure 5.
type Category int

const (
	Associative Category = iota
	Distributive
	Commutative
	Simplification // identity/strength reduction (Exp∘Log, Recip∘Recip, ...)
	Folding        // constant folding, Conv+BatchNorm folding
)

var categoryNames = [...]string{"Associative", "Distributive", "Commutative", "Simplification", "Folding"}

func (c Category) String() string { return categoryNames[c] }

// Ctx gives rules access to the graph being rewritten.
type Ctx struct {
	E *ecg.ECG
	G *graph.Graph
	// fresh names for constants materialized by rules
	nextConst int
}

// Application is one possible rewrite at a specific site.
type Application struct {
	Rule string
	Cat  Category
	Root *graph.Node
	// DeltaFLOPs is the exact FLOPs reduction (removed minus added);
	// zero-delta applications are allowed when DeltaBytes is positive or
	// the rule is marked memory-beneficial (the paper's § rules).
	DeltaFLOPs int64
	// DeltaBytes is the intermediate-bytes reduction.
	DeltaBytes int64
	apply      func(*Ctx) error
}

func (a *Application) String() string {
	return fmt.Sprintf("%s@%v (ΔFLOPs=%d, Δbytes=%d)", a.Rule, a.Root, a.DeltaFLOPs, a.DeltaBytes)
}

// beneficial reports whether applying gains anything under the paper's
// FLOPs-first metric.
func (a *Application) beneficial() bool {
	if a.DeltaFLOPs > 0 {
		return true
	}
	return a.DeltaFLOPs == 0 && a.DeltaBytes > 0
}

// Rule is a local pattern matcher.
type Rule struct {
	Name string
	Cat  Category
	// Forms lists the concrete equation instances the matcher covers
	// (the paper reports 45/38/66 derived rules; Forms makes our
	// equivalent enumeration explicit and printable in Table 4).
	Forms []string
	Match func(c *Ctx, n *graph.Node) []*Application
}

// Stats summarizes one rewriting run.
type Stats struct {
	Applied        int
	ByCategory     map[Category]int
	ByRule         map[string]int
	FLOPsBefore    int64
	FLOPsAfter     int64
	BytesBefore    int64
	BytesAfter     int64
	NodesBefore    int
	NodesAfter     int
	PartitionCount int
}

// Engine drives rule application.
type Engine struct {
	rules []*Rule
}

// NewEngine creates an engine with the given rules (use DefaultRules for
// the paper's full set).
func NewEngine(rules []*Rule) *Engine { return &Engine{rules: rules} }

// Rules returns the engine's rule set.
func (e *Engine) Rules() []*Rule { return e.rules }

// Run rewrites the graph to fixpoint and returns statistics.
func (e *Engine) Run(ec *ecg.ECG) (Stats, error) {
	g := ec.G
	c := &Ctx{E: ec, G: g}
	st := Stats{
		ByCategory:     map[Category]int{},
		ByRule:         map[string]int{},
		FLOPsBefore:    g.FLOPs(),
		BytesBefore:    g.IntermediateBytes(),
		NodesBefore:    len(g.Nodes),
		PartitionCount: len(Partitions(ec)),
	}
	// Safety cap: every application strictly reduces (FLOPs, bytes) or is
	// once-safe, but defend against a buggy rule oscillating.
	maxIters := 10*len(g.Nodes) + 100
	for iter := 0; iter < maxIters; iter++ {
		best := e.bestApplication(c)
		if best == nil {
			break
		}
		if err := best.apply(c); err != nil {
			return st, fmt.Errorf("rewrite %s: %w", best.Rule, err)
		}
		g.EliminateDeadNodes()
		ec.Refresh()
		st.Applied++
		st.ByCategory[best.Cat]++
		st.ByRule[best.Rule]++
	}
	st.FLOPsAfter = g.FLOPs()
	st.BytesAfter = g.IntermediateBytes()
	st.NodesAfter = len(g.Nodes)
	if err := g.Validate(); err != nil {
		return st, fmt.Errorf("rewrite: graph invalid after rewriting: %w", err)
	}
	return st, nil
}

func (e *Engine) bestApplication(c *Ctx) *Application {
	var best *Application
	for _, n := range c.G.Nodes {
		for _, r := range e.rules {
			for _, app := range r.Match(c, n) {
				if app == nil || !app.beneficial() {
					continue
				}
				if best == nil || app.DeltaFLOPs > best.DeltaFLOPs ||
					(app.DeltaFLOPs == best.DeltaFLOPs && app.DeltaBytes > best.DeltaBytes) {
					best = app
				}
			}
		}
	}
	return best
}

// Partitions computes the paper's sub-graphs: connected components over
// nodes that carry at least one mathematical property, using operators with
// no properties as partition points. Associative/commutative matching is
// NP-complete in general; bounding it to these components keeps the search
// tractable (§4.2).
func Partitions(ec *ecg.ECG) [][]*graph.Node {
	inPartition := func(n *graph.Node) bool {
		return !n.Op.Properties().None()
	}
	visited := map[*graph.Node]bool{}
	var parts [][]*graph.Node
	for _, start := range ec.G.Nodes {
		if visited[start] || !inPartition(start) {
			continue
		}
		var comp []*graph.Node
		stack := []*graph.Node{start}
		visited[start] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, n)
			neighbors := func(m *graph.Node) {
				if m != nil && !visited[m] && inPartition(m) {
					visited[m] = true
					stack = append(stack, m)
				}
			}
			for _, in := range n.Inputs {
				neighbors(in.Producer)
			}
			for _, out := range n.Outputs {
				for _, consumer := range out.Consumers {
					neighbors(consumer)
				}
			}
		}
		parts = append(parts, comp)
	}
	sort.Slice(parts, func(i, j int) bool { return len(parts[i]) > len(parts[j]) })
	return parts
}
