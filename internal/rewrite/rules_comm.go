package rewrite

import (
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
)

// Commutative-family rules (Table 4, third block, and Figure 2c):
// reordering operators across reductions and data shuffles to shrink the
// tensor an operator is applied to.

// ruleReduceHomogeneousCommute: ReduceSum(f(A)) → f(ReduceSum(A)) for
// homogeneous elementwise f (BitShift, Neg, MulConst, ...). The paper's
// headline example is ReduceSum(BitShift(A)) → BitShift(ReduceSum(A)):
// f moves from the m×n input to the reduced output.
func ruleReduceHomogeneousCommute() *Rule {
	forms := []string{}
	for _, u := range []string{"BitShift", "Neg", "MulConst", "Cast", "Identity"} {
		forms = append(forms,
			"ReduceSum("+u+"(A)) → "+u+"(ReduceSum(A))",
			"ReduceMean("+u+"(A)) → "+u+"(ReduceMean(A))")
	}
	return &Rule{
		Name:  "comm-reduce-homogeneous",
		Cat:   Commutative,
		Forms: forms,
		Match: func(c *Ctx, n *graph.Node) []*Application {
			kind, _, _, ok := ops.ReduceInfo(n.Op)
			if !ok || (kind != ops.ReduceSum && kind != ops.ReduceMean) {
				return nil
			}
			in := n.Inputs[0]
			u := producer(in)
			if u == nil || !singleUse(in) || !homogeneousUnary(u) {
				return nil
			}
			a := unaryArg(u)
			reduceOp := n.Op
			unaryOp := u.Op
			// f now runs on the reduced tensor instead of the full input.
			delta := elems(a) - elems(out0(n))
			app := &Application{
				Rule:       "comm-reduce-homogeneous",
				Cat:        Commutative,
				Root:       n,
				DeltaFLOPs: delta,
				DeltaBytes: out0(u).Shape.Bytes() - out0(n).Shape.Bytes(),
				apply: func(c *Ctx) error {
					red, err := c.G.Apply(reduceOp, a)
					if err != nil {
						return err
					}
					out, err := c.G.Apply(unaryOp, red[0])
					if err != nil {
						return err
					}
					return replaceWith(c, n, out[0])
				},
			}
			return []*Application{app}
		},
	}
}

// ruleReduceProdExp: ReduceProd(Exp(A)) → Exp(ReduceSum(A)) (Table 4 last
// row): the exponential moves to the reduced tensor.
func ruleReduceProdExp() *Rule {
	return &Rule{
		Name:  "comm-reduceprod-exp",
		Cat:   Commutative,
		Forms: []string{"ReduceProd(Exp(A)) → Exp(ReduceSum(A))"},
		Match: func(c *Ctx, n *graph.Node) []*Application {
			kind, keep, axes, ok := ops.ReduceInfo(n.Op)
			if !ok || kind != ops.ReduceProd {
				return nil
			}
			expNode, isExp := isUnaryOf(n.Inputs[0], "Exp")
			if !isExp {
				return nil
			}
			a := unaryArg(expNode)
			app := &Application{
				Rule:       "comm-reduceprod-exp",
				Cat:        Commutative,
				Root:       n,
				DeltaFLOPs: elems(a) - elems(out0(n)),
				DeltaBytes: out0(expNode).Shape.Bytes() - out0(n).Shape.Bytes(),
				apply: func(c *Ctx) error {
					red, err := c.G.Apply(ops.NewReduce(ops.ReduceSum, keep, axes...), a)
					if err != nil {
						return err
					}
					out, err := c.G.Apply(ops.NewExp(), red[0])
					if err != nil {
						return err
					}
					return replaceWith(c, n, out[0])
				},
			}
			return []*Application{app}
		},
	}
}

// ruleTransposeIntoMatMul: MatMul(A, Transpose(B)) → MatMulᵀ(A, B) when the
// transpose swaps only the last two dimensions — the attention Q·Kᵀ
// pattern. The transpose's materialization disappears into the
// contraction's index order (a data-movement elimination in the spirit of
// Figure 5, applied at the operator level).
func ruleTransposeIntoMatMul() *Rule {
	// lastTwoSwap reports whether perm swaps exactly the trailing pair.
	lastTwoSwap := func(perm []int) bool {
		n := len(perm)
		if n < 2 {
			return false
		}
		for i := 0; i < n-2; i++ {
			if perm[i] != i {
				return false
			}
		}
		return perm[n-2] == n-1 && perm[n-1] == n-2
	}
	return &Rule{
		Name: "comm-transpose-into-matmul",
		Cat:  Commutative,
		Forms: []string{
			"MatMul(A, Transpose(B)) → MatMul[transB](A, B)",
			"MatMul(Transpose(A), B) → MatMul[transA](A, B)",
			"MatMul(Transpose(A), Transpose(B)) → MatMul[transA,transB](A, B)",
		},
		Match: func(c *Ctx, n *graph.Node) []*Application {
			transA, transB, isMM := ops.MatMulTrans(n.Op)
			if !isMM {
				return nil
			}
			var removed []*graph.Node
			var removedBytes int64
			ins := []*graph.Value{n.Inputs[0], n.Inputs[1]}
			newTransA, newTransB := transA, transB
			if !transA {
				if tn, ok := isUnaryOf(ins[0], "Transpose"); ok && lastTwoSwap(ops.TransposePerm(tn.Op)) {
					removed = append(removed, tn)
					removedBytes += out0(tn).Shape.Bytes()
					ins[0] = unaryArg(tn)
					newTransA = true
				}
			}
			if !transB {
				if tn, ok := isUnaryOf(ins[1], "Transpose"); ok && lastTwoSwap(ops.TransposePerm(tn.Op)) {
					removed = append(removed, tn)
					removedBytes += out0(tn).Shape.Bytes()
					ins[1] = unaryArg(tn)
					newTransB = true
				}
			}
			if len(removed) == 0 {
				return nil
			}
			a, b := ins[0], ins[1]
			app := &Application{
				Rule:       "comm-transpose-into-matmul",
				Cat:        Commutative,
				Root:       n,
				DeltaFLOPs: 0,
				DeltaBytes: removedBytes,
				apply: func(c *Ctx) error {
					outs, err := c.G.Apply(ops.NewMatMulT(newTransA, newTransB), a, b)
					if err != nil {
						return err
					}
					return replaceWith(c, n, outs[0])
				},
			}
			return []*Application{app}
		},
	}
}

// ruleTransposeSink: Transpose(f(Transpose(A))) → f'(A) or
// f'(Transpose'(A)) for unary elementwise f — elementwise operators commute
// with shuffles, letting adjacent transposes compose (and often cancel).
func ruleTransposeSink() *Rule {
	return &Rule{
		Name: "comm-transpose-sink",
		Cat:  Commutative,
		Forms: []string{
			"Transpose(f(Transpose(A))) → f(A) when the permutations cancel",
			"Transpose(f(Transpose(A))) → f(Transpose∘Transpose(A)) otherwise",
		},
		Match: func(c *Ctx, n *graph.Node) []*Application {
			outerPerm := ops.TransposePerm(n.Op)
			if outerPerm == nil {
				return nil
			}
			u := producer(n.Inputs[0])
			if u == nil || !singleUse(n.Inputs[0]) {
				return nil
			}
			pw, isPW := u.Op.(ops.Pointwise)
			if !isPW || pw.Arity() != 1 {
				return nil
			}
			inner, isT := isUnaryOf(unaryArg(u), "Transpose")
			if !isT {
				return nil
			}
			innerPerm := ops.TransposePerm(inner.Op)
			a := unaryArg(inner)
			// Composite permutation: out[i] = mid[outerPerm[i]],
			// mid[j] = a[innerPerm[j]] → out[i] = a[innerPerm[outerPerm[i]]].
			composed := make([]int, len(outerPerm))
			identity := true
			for i := range outerPerm {
				composed[i] = innerPerm[outerPerm[i]]
				if composed[i] != i {
					identity = false
				}
			}
			unaryOp := u.Op
			removedBytes := out0(inner).Shape.Bytes() + out0(u).Shape.Bytes() + out0(n).Shape.Bytes()
			addedBytes := out0(n).Shape.Bytes() // the relocated unary's output
			if !identity {
				addedBytes += a.Shape.Bytes()
			}
			app := &Application{
				Rule:       "comm-transpose-sink",
				Cat:        Commutative,
				Root:       n,
				DeltaFLOPs: 0,
				DeltaBytes: removedBytes - addedBytes,
				apply: func(c *Ctx) error {
					src := a
					if !identity {
						tr, err := c.G.Apply(ops.NewTranspose(composed...), a)
						if err != nil {
							return err
						}
						src = tr[0]
					}
					out, err := c.G.Apply(unaryOp, src)
					if err != nil {
						return err
					}
					return replaceWith(c, n, out[0])
				},
			}
			return []*Application{app}
		},
	}
}
