package rewrite

import (
	"math"
	"testing"

	"dnnfusion/internal/ecg"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// runAndCompare rewrites g and checks the outputs are numerically unchanged
// for a random positive input (positive to stay inside the fast-math domain
// of Sqrt/Log rules). Returns the stats.
func runAndCompare(t *testing.T, g *graph.Graph) Stats {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid before rewriting: %v", err)
	}
	feeds := map[*graph.Value]*tensor.Tensor{}
	for i, in := range g.Inputs {
		x := tensor.NewOf(in.Shape).Rand(uint64(100 + i))
		for off, v := range x.Data() {
			x.Data()[off] = v*0.45 + 0.55 // (0.1, 1.0)
		}
		feeds[in] = x
	}
	before, err := graph.InterpretOutputs(g, feeds)
	if err != nil {
		t.Fatalf("interpret before: %v", err)
	}
	e := ecg.Build(g)
	st, err := NewDefaultEngine().Run(e)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	after, err := graph.InterpretOutputs(g, feeds)
	if err != nil {
		t.Fatalf("interpret after: %v", err)
	}
	for i := range before {
		if !tensor.AllClose(before[i], after[i], 1e-3) {
			t.Fatalf("output %d changed by rewriting (max diff %g)",
				i, tensor.MaxAbsDiff(before[i], after[i]))
		}
	}
	return st
}

func TestRecipMulRecip(t *testing.T) {
	// Figure 2a: Recip(A) ⊙ Recip(A⊙B) — normalizes to Recip(Square(A)⊙B).
	g := graph.New("recip")
	a := g.AddInput("a", tensor.Of(4, 5))
	b := g.AddInput("b", tensor.Of(4, 5))
	r1 := g.Apply1(ops.NewReciprocal(), a)
	ab := g.Apply1(ops.NewMul(), a, b)
	r2 := g.Apply1(ops.NewReciprocal(), ab)
	out := g.Apply1(ops.NewMul(), r1, r2)
	g.MarkOutput(out)
	st := runAndCompare(t, g)
	if st.Applied == 0 {
		t.Error("no rewrites applied to the Figure 2a pattern")
	}
}

func TestSqrtPairElimination(t *testing.T) {
	// Table 4: (A⊙√B)⊙(√B⊙C) → A⊙B⊙C with two distinct Sqrt nodes.
	g := graph.New("sqrtpair")
	a := g.AddInput("a", tensor.Of(3, 4))
	b := g.AddInput("b", tensor.Of(3, 4))
	cc := g.AddInput("c", tensor.Of(3, 4))
	s1 := g.Apply1(ops.NewSqrt(), b)
	s2 := g.Apply1(ops.NewSqrt(), b)
	l := g.Apply1(ops.NewMul(), a, s1)
	r := g.Apply1(ops.NewMul(), s2, cc)
	out := g.Apply1(ops.NewMul(), l, r)
	g.MarkOutput(out)
	flopsBefore := g.FLOPs()
	st := runAndCompare(t, g)
	if st.ByRule["assoc-mul-sqrt-pair"] == 0 {
		t.Errorf("sqrt-pair rule not applied: %v", st.ByRule)
	}
	if g.FLOPs() >= flopsBefore {
		t.Errorf("FLOPs not reduced: %d -> %d", flopsBefore, g.FLOPs())
	}
	// No Sqrt should remain.
	for _, n := range g.Nodes {
		if n.Op.Type() == "Sqrt" {
			t.Error("Sqrt survived the rewrite")
		}
	}
}

func TestAbsMulAbs(t *testing.T) {
	// Table 4: Abs(A)⊙B⊙Abs(C) → Abs(A⊙C)⊙B (4mn → 3mn).
	g := graph.New("absmul")
	a := g.AddInput("a", tensor.Of(4, 4))
	b := g.AddInput("b", tensor.Of(4, 4))
	cc := g.AddInput("c", tensor.Of(4, 4))
	m1 := g.Apply1(ops.NewMul(), g.Apply1(ops.NewAbs(), a), b)
	out := g.Apply1(ops.NewMul(), m1, g.Apply1(ops.NewAbs(), cc))
	g.MarkOutput(out)
	before := g.FLOPs()
	st := runAndCompare(t, g)
	if st.ByRule["assoc-mul-abs-pair"] == 0 {
		t.Errorf("abs-pair rule not applied: %v", st.ByRule)
	}
	if want := before - 16; g.FLOPs() != want {
		t.Errorf("FLOPs = %d, want %d (4mn→3mn)", g.FLOPs(), want)
	}
}

func TestSharedReduceSumSquared(t *testing.T) {
	// Table 4: (A⊙ReduceSum(B))⊙(ReduceSum(B)⊙C) with a shared reduce →
	// the shared factor is squared once at reduced size.
	g := graph.New("redshare")
	a := g.AddInput("a", tensor.Of(6, 8))
	b := g.AddInput("b", tensor.Of(6, 8))
	cc := g.AddInput("c", tensor.Of(6, 8))
	rs := g.Apply1(ops.NewReduce(ops.ReduceSum, true, 1), b) // [6,1]
	l := g.Apply1(ops.NewMul(), a, rs)
	r := g.Apply1(ops.NewMul(), rs, cc)
	out := g.Apply1(ops.NewMul(), l, r)
	g.MarkOutput(out)
	before := g.FLOPs()
	st := runAndCompare(t, g)
	if st.ByRule["assoc-mul-dup-factor"] == 0 {
		t.Errorf("dup-factor rule not applied: %v", st.ByRule)
	}
	if g.FLOPs() >= before {
		t.Errorf("FLOPs not reduced: %d -> %d", before, g.FLOPs())
	}
	// A Square node at the reduced shape must exist.
	foundSquare := false
	for _, n := range g.Nodes {
		if n.Op.Type() == "Square" && n.Outputs[0].Shape.Equal(tensor.Of(6, 1)) {
			foundSquare = true
		}
	}
	if !foundSquare {
		t.Error("expected Square at the reduced shape")
	}
}

func TestDistributiveCommonFactor(t *testing.T) {
	// Figure 2b: A·B⊙C + (A·B)⊙D → A·B⊙(C+D).
	g := graph.New("dist")
	x := g.AddInput("x", tensor.Of(5, 5))
	cw := g.AddWeight("cw", tensor.New(5, 5).Rand(1))
	dw := g.AddWeight("dw", tensor.New(5, 5).Rand(2))
	l := g.Apply1(ops.NewMul(), x, cw)
	r := g.Apply1(ops.NewMul(), x, dw)
	out := g.Apply1(ops.NewAdd(), l, r)
	g.MarkOutput(out)
	before := g.FLOPs()
	st := runAndCompare(t, g)
	if st.ByRule["dist-add-factor-common"] == 0 {
		t.Errorf("distributive rule not applied: %v", st.ByRule)
	}
	// 3mn → 2mn... and then constant folding merges cw+dw into one weight,
	// leaving a single Mul (mn).
	if g.FLOPs() >= before {
		t.Errorf("FLOPs not reduced: %d -> %d", before, g.FLOPs())
	}
}

func TestDistributiveImplicitOne(t *testing.T) {
	// Table 4: A + A⊙B → A⊙(B+1).
	g := graph.New("distone")
	a := g.AddInput("a", tensor.Of(4, 4))
	b := g.AddInput("b", tensor.Of(4, 4))
	out := g.Apply1(ops.NewAdd(), a, g.Apply1(ops.NewMul(), a, b))
	g.MarkOutput(out)
	st := runAndCompare(t, g)
	if st.ByRule["dist-add-factor-common"] == 0 {
		t.Errorf("implicit-one distributive form not applied: %v", st.ByRule)
	}
	found := false
	for _, n := range g.Nodes {
		if n.Op.Type() == "AddConst" {
			found = true
		}
	}
	if !found {
		t.Error("expected an AddConst(+1) node")
	}
}

func TestMatMulCommonOperand(t *testing.T) {
	// Figure 2b right: GEMM(A,W) + GEMM(B,W) → GEMM(A+B, W).
	g := graph.New("gemmshare")
	a := g.AddInput("a", tensor.Of(4, 6))
	b := g.AddInput("b", tensor.Of(4, 6))
	w := g.AddWeight("w", tensor.New(6, 3).Rand(7))
	l := g.Apply1(ops.NewMatMul(), a, w)
	r := g.Apply1(ops.NewMatMul(), b, w)
	out := g.Apply1(ops.NewAdd(), l, r)
	g.MarkOutput(out)
	before := g.FLOPs()
	st := runAndCompare(t, g)
	if st.ByRule["dist-contraction-common"] == 0 {
		t.Errorf("contraction-common rule not applied: %v", st.ByRule)
	}
	// One MatMul must remain instead of two.
	count := 0
	for _, n := range g.Nodes {
		if n.Op.Type() == "MatMul" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("MatMul count = %d, want 1", count)
	}
	if g.FLOPs() >= before {
		t.Errorf("FLOPs not reduced: %d -> %d", before, g.FLOPs())
	}
}

func TestSquareMinusFactor(t *testing.T) {
	// Table 4: Square(A+B) − (A+B)⊙C → (A+B)⊙(A+B−C).
	g := graph.New("sqminus")
	a := g.AddInput("a", tensor.Of(3, 3))
	b := g.AddInput("b", tensor.Of(3, 3))
	cc := g.AddInput("c", tensor.Of(3, 3))
	s := g.Apply1(ops.NewAdd(), a, b)
	sq := g.Apply1(ops.NewSquare(), s)
	m := g.Apply1(ops.NewMul(), s, cc)
	out := g.Apply1(ops.NewSub(), sq, m)
	g.MarkOutput(out)
	before := g.FLOPs()
	st := runAndCompare(t, g)
	if st.ByRule["dist-square-minus-factor"] == 0 {
		t.Errorf("square-minus rule not applied: %v", st.ByRule)
	}
	if g.FLOPs() >= before {
		t.Errorf("FLOPs not reduced: %d -> %d", before, g.FLOPs())
	}
}

func TestReduceBitShiftCommute(t *testing.T) {
	// Figure 2c: ReduceSum(BitShift(A)) → BitShift(ReduceSum(A)).
	g := graph.New("commute")
	a := g.AddInput("a", tensor.Of(8, 16))
	sh := g.Apply1(ops.NewBitShift(2), a)
	out := g.Apply1(ops.NewReduce(ops.ReduceSum, false, 1), sh)
	g.MarkOutput(out)
	before := g.FLOPs() // 2mn
	st := runAndCompare(t, g)
	if st.ByRule["comm-reduce-homogeneous"] == 0 {
		t.Errorf("commute rule not applied: %v", st.ByRule)
	}
	// mn + m after.
	if want := int64(8*16 + 8); g.FLOPs() != want {
		t.Errorf("FLOPs = %d, want %d (was %d)", g.FLOPs(), want, before)
	}
	// BitShift must now consume the reduced tensor.
	for _, n := range g.Nodes {
		if n.Op.Type() == "BitShift" && !n.Inputs[0].Shape.Equal(tensor.Of(8)) {
			t.Errorf("BitShift input shape = %v, want [8]", n.Inputs[0].Shape)
		}
	}
}

func TestReduceProdExp(t *testing.T) {
	// Table 4: ReduceProd(Exp(A)) → Exp(ReduceSum(A)).
	g := graph.New("prodexp")
	a := g.AddInput("a", tensor.Of(4, 6))
	ex := g.Apply1(ops.NewExp(), a)
	out := g.Apply1(ops.NewReduce(ops.ReduceProd, false, 1), ex)
	g.MarkOutput(out)
	st := runAndCompare(t, g)
	if st.ByRule["comm-reduceprod-exp"] == 0 {
		t.Errorf("reduceprod-exp rule not applied: %v", st.ByRule)
	}
	for _, n := range g.Nodes {
		if n.Op.Type() == "ReduceProd" {
			t.Error("ReduceProd survived")
		}
	}
}

func TestTransposeIntoMatMul(t *testing.T) {
	// The attention pattern: scores = Q · Transpose(K).
	g := graph.New("qkt")
	q := g.AddInput("q", tensor.Of(2, 4, 5))
	k := g.AddInput("k", tensor.Of(2, 4, 5))
	kt := g.Apply1(ops.NewTranspose(0, 2, 1), k)
	scores := g.Apply1(ops.NewMatMul(), q, kt)
	g.MarkOutput(scores)
	st := runAndCompare(t, g)
	if st.ByRule["comm-transpose-into-matmul"] == 0 {
		t.Errorf("transpose-into-matmul not applied: %v", st.ByRule)
	}
	for _, n := range g.Nodes {
		if n.Op.Type() == "Transpose" {
			t.Error("Transpose survived folding into MatMul")
		}
		if n.Op.Type() == "MatMul" {
			if _, tb, _ := ops.MatMulTrans(n.Op); !tb {
				t.Error("MatMul did not absorb transB")
			}
		}
	}
}

func TestMatMulTTransAVariant(t *testing.T) {
	g := graph.New("atb")
	a := g.AddInput("a", tensor.Of(4, 3))
	b := g.AddInput("b", tensor.Of(4, 5))
	at := g.Apply1(ops.NewTranspose(1, 0), a)
	out := g.Apply1(ops.NewMatMul(), at, b)
	g.MarkOutput(out)
	st := runAndCompare(t, g)
	if st.ByRule["comm-transpose-into-matmul"] == 0 {
		t.Errorf("transA folding not applied: %v", st.ByRule)
	}
}

func TestInversePairs(t *testing.T) {
	g := graph.New("inverse")
	a := g.AddInput("a", tensor.Of(10))
	v := g.Apply1(ops.NewLog(), a)
	v = g.Apply1(ops.NewExp(), v) // Exp(Log(a)) == a
	v = g.Apply1(ops.NewNeg(), v)
	v = g.Apply1(ops.NewNeg(), v) // Neg(Neg(x)) == x
	out := g.Apply1(ops.NewRelu(), v)
	g.MarkOutput(out)
	st := runAndCompare(t, g)
	if st.ByRule["simplify-inverse-pair"] < 2 {
		t.Errorf("inverse pairs applied %d times, want 2", st.ByRule["simplify-inverse-pair"])
	}
	if len(g.Nodes) != 1 {
		t.Errorf("nodes after simplification = %d, want 1 (Relu)", len(g.Nodes))
	}
}

func TestTransposeCancellation(t *testing.T) {
	// Transpose -> Relu -> Transpose with inverse perms collapses to Relu.
	g := graph.New("transpose")
	a := g.AddInput("a", tensor.Of(2, 3, 4))
	t1 := g.Apply1(ops.NewTranspose(2, 0, 1), a)
	r := g.Apply1(ops.NewRelu(), t1)
	t2 := g.Apply1(ops.NewTranspose(1, 2, 0), r)
	g.MarkOutput(t2)
	st := runAndCompare(t, g)
	if st.ByRule["comm-transpose-sink"] == 0 {
		t.Errorf("transpose-sink not applied: %v", st.ByRule)
	}
	for _, n := range g.Nodes {
		if n.Op.Type() == "Transpose" {
			t.Error("Transpose survived cancellation")
		}
	}
	if len(g.Nodes) != 1 {
		t.Errorf("nodes = %d, want 1", len(g.Nodes))
	}
}

func TestTransposeComposePair(t *testing.T) {
	g := graph.New("tt")
	a := g.AddInput("a", tensor.Of(2, 3, 4))
	t1 := g.Apply1(ops.NewTranspose(1, 2, 0), a)
	t2 := g.Apply1(ops.NewTranspose(2, 0, 1), t1) // composes to identity
	out := g.Apply1(ops.NewExp(), t2)
	g.MarkOutput(out)
	st := runAndCompare(t, g)
	if st.ByRule["simplify-transpose-compose"] == 0 {
		t.Errorf("transpose-compose not applied: %v", st.ByRule)
	}
}

func TestReorganizeCompose(t *testing.T) {
	g := graph.New("reorg")
	a := g.AddInput("a", tensor.Of(2, 3, 4))
	v := g.Apply1(ops.NewReshape(6, 4), a)
	v = g.Apply1(ops.NewReshape(2, 12), v)
	v = g.Apply1(ops.NewReshape(2, 3, 4), v) // round trip
	out := g.Apply1(ops.NewRelu(), v)
	g.MarkOutput(out)
	st := runAndCompare(t, g)
	if st.ByRule["simplify-reorganize-compose"] == 0 {
		t.Errorf("reorganize-compose not applied: %v", st.ByRule)
	}
	for _, n := range g.Nodes {
		if n.Op.Type() == "Reshape" {
			t.Error("Reshape survived round-trip composition")
		}
	}
}

func TestConstantFolding(t *testing.T) {
	g := graph.New("fold")
	x := g.AddInput("x", tensor.Of(3))
	w1 := g.AddWeight("w1", tensor.FromSlice([]float32{1, 2, 3}, 3))
	w2 := g.AddWeight("w2", tensor.FromSlice([]float32{4, 5, 6}, 3))
	wsum := g.Apply1(ops.NewAdd(), w1, w2) // constant subgraph
	out := g.Apply1(ops.NewMul(), x, wsum)
	g.MarkOutput(out)
	st := runAndCompare(t, g)
	if st.ByRule["fold-constants"] == 0 {
		t.Errorf("constant folding not applied: %v", st.ByRule)
	}
	if len(g.Nodes) != 1 {
		t.Errorf("nodes = %d, want 1 (the Mul)", len(g.Nodes))
	}
}

func TestConvBatchNormFold(t *testing.T) {
	g := graph.New("convbn")
	x := g.AddInput("x", tensor.Of(1, 2, 5, 5))
	w := g.AddWeight("w", tensor.New(3, 2, 3, 3).Rand(1))
	conv := g.Apply1(ops.NewConv(ops.ConvAttrs{Pads: []int{1}}), x, w)
	scale := g.AddWeight("scale", tensor.FromSlice([]float32{1, 2, 0.5}, 3))
	beta := g.AddWeight("beta", tensor.FromSlice([]float32{0.1, -0.2, 0.3}, 3))
	mean := g.AddWeight("mean", tensor.FromSlice([]float32{0.05, -0.1, 0.2}, 3))
	vr := g.AddWeight("var", tensor.FromSlice([]float32{1, 0.5, 2}, 3))
	bn := g.Apply1(ops.NewBatchNormalization(1e-5), conv, scale, beta, mean, vr)
	g.MarkOutput(bn)
	st := runAndCompare(t, g)
	if st.ByRule["fold-conv-batchnorm"] == 0 {
		t.Errorf("conv-bn folding not applied: %v", st.ByRule)
	}
	for _, n := range g.Nodes {
		if n.Op.Type() == "BatchNormalization" {
			t.Error("BatchNormalization survived folding")
		}
	}
	if len(g.Nodes) != 1 || g.Nodes[0].Op.Type() != "Conv" {
		t.Errorf("expected a single folded Conv, got %d nodes", len(g.Nodes))
	}
	if len(g.Nodes[0].Inputs) != 3 {
		t.Error("folded Conv should carry a bias input")
	}
}

func TestEngineTerminatesOnRandomChains(t *testing.T) {
	// Deep chains of property-carrying ops must reach fixpoint quickly and
	// preserve semantics — a smoke test against oscillating rules.
	g := graph.New("deepchain")
	x := g.AddInput("x", tensor.Of(4, 4))
	v := x
	mk := []func() ops.Operator{
		ops.NewAbs, ops.NewExp, ops.NewLog, ops.NewNeg, ops.NewNeg,
		func() ops.Operator { return ops.NewBitShift(1) },
		ops.NewSqrt, ops.NewSquare, ops.NewReciprocal, ops.NewReciprocal,
	}
	for i := 0; i < 30; i++ {
		v = g.Apply1(mk[i%len(mk)](), v)
	}
	out := g.Apply1(ops.NewReduce(ops.ReduceSum, false, 1), v)
	g.MarkOutput(out)
	st := runAndCompare(t, g)
	if st.NodesAfter >= st.NodesBefore {
		t.Errorf("no simplification on a chain full of inverse pairs: %d -> %d",
			st.NodesBefore, st.NodesAfter)
	}
}

func TestPartitions(t *testing.T) {
	// Relu (no properties) must split partitions.
	g := graph.New("parts")
	x := g.AddInput("x", tensor.Of(4))
	a := g.Apply1(ops.NewAdd(), x, x)
	r := g.Apply1(ops.NewRelu(), a)
	b := g.Apply1(ops.NewMul(), r, r)
	cc := g.Apply1(ops.NewAdd(), b, r)
	g.MarkOutput(cc)
	e := ecg.Build(g)
	parts := Partitions(e)
	if len(parts) != 2 {
		t.Fatalf("partitions = %d, want 2 (split at Relu)", len(parts))
	}
	for _, p := range parts {
		for _, n := range p {
			if n.Op.Properties().None() {
				t.Errorf("partition contains property-free op %v", n)
			}
		}
	}
}

func TestCensus(t *testing.T) {
	rules := DefaultRules()
	census := Census(rules)
	totalMatchers, totalForms := 0, 0
	for _, c := range census {
		totalMatchers += c.Matchers
		totalForms += c.Forms
	}
	if totalMatchers != len(rules) {
		t.Errorf("census matchers = %d, want %d", totalMatchers, len(rules))
	}
	if totalForms < 25 {
		t.Errorf("derived forms = %d, want a substantial catalogue", totalForms)
	}
	// All three paper categories must be populated.
	for _, c := range census {
		if (c.Category == Associative || c.Category == Distributive || c.Category == Commutative) && c.Matchers == 0 {
			t.Errorf("category %v empty", c.Category)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	g := graph.New("stats")
	a := g.AddInput("a", tensor.Of(8))
	v := g.Apply1(ops.NewNeg(), g.Apply1(ops.NewNeg(), a))
	g.MarkOutput(v)
	e := ecg.Build(g)
	st, err := NewDefaultEngine().Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != st.ByRule["simplify-inverse-pair"] {
		t.Errorf("Applied=%d inconsistent with ByRule=%v", st.Applied, st.ByRule)
	}
	if st.FLOPsAfter >= st.FLOPsBefore {
		t.Errorf("FLOPs accounting wrong: %d -> %d", st.FLOPsBefore, st.FLOPsAfter)
	}
	if math.Abs(float64(st.NodesBefore-st.NodesAfter)) < 1 {
		t.Error("node counts not updated")
	}
}
