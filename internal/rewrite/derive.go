package rewrite

// DefaultRules assembles the full rule set in the paper's categories. Each
// Rule is a generic matcher; Rule.Forms enumerates the concrete derived
// equation instances it covers, which is what Table 4 prints and counts
// (the paper derives 45/38/66 rules per category with a comparable scheme).
func DefaultRules() []*Rule {
	return []*Rule{
		// Associative.
		ruleMulDupFactor(),
		ruleMulSqrtPair(),
		ruleMulAbsPair(),
		ruleMulRecipPair(),
		ruleMulConstFold(),
		// Distributive.
		ruleAddFactorCommon(),
		ruleLinearOpCommon(),
		ruleSquareMinusFactor(),
		// Commutative.
		ruleReduceHomogeneousCommute(),
		ruleReduceProdExp(),
		ruleTransposeSink(),
		ruleTransposeIntoMatMul(),
		// Simplification (strength reduction / data movement).
		ruleInversePairs(),
		ruleReorganizeCompose(),
		ruleTransposeCompose(),
		ruleIdentityElim(),
		ruleAddDup(),
		// Folding.
		ruleConstFold(),
		ruleConvBatchNormFold(),
	}
}

// NewDefaultEngine returns an engine loaded with DefaultRules.
func NewDefaultEngine() *Engine { return NewEngine(DefaultRules()) }

// RuleCensus tallies matcher and derived-form counts by category, printed by
// the Table 4 harness.
type RuleCensus struct {
	Category Category
	Matchers int
	Forms    int
}

// Census summarizes a rule set by category.
func Census(rules []*Rule) []RuleCensus {
	idx := map[Category]*RuleCensus{}
	order := []Category{Associative, Distributive, Commutative, Simplification, Folding}
	for _, cat := range order {
		idx[cat] = &RuleCensus{Category: cat}
	}
	for _, r := range rules {
		c := idx[r.Cat]
		c.Matchers++
		c.Forms += len(r.Forms)
	}
	out := make([]RuleCensus, 0, len(order))
	for _, cat := range order {
		out = append(out, *idx[cat])
	}
	return out
}
