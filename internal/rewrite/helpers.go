package rewrite

import (
	"fmt"

	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// Matching helpers shared by the rule files.

// producer returns the node producing v, or nil for inputs/weights.
func producer(v *graph.Value) *graph.Node { return v.Producer }

// singleUse reports whether v is consumed exactly once and is not a graph
// output — the condition under which rewriting may consume it destructively.
func singleUse(v *graph.Value) bool {
	return len(v.Consumers) == 1 && v.Kind != graph.Output
}

// opIs reports whether n applies an operator of the given type.
func opIs(n *graph.Node, t string) bool { return n != nil && n.Op.Type() == t }

// unaryArg returns the single input of a unary node.
func unaryArg(n *graph.Node) *graph.Value { return n.Inputs[0] }

// elems returns the element count of a value.
func elems(v *graph.Value) int64 { return int64(v.Shape.NumElements()) }

// out0 returns the node's first output value.
func out0(n *graph.Node) *graph.Value { return n.Outputs[0] }

// nodeFLOPs computes the FLOPs of n for its concrete shapes.
func nodeFLOPs(n *graph.Node) int64 {
	shapes := make([]tensor.Shape, len(n.Inputs))
	for i, in := range n.Inputs {
		shapes[i] = in.Shape
	}
	return n.Op.FLOPs(shapes)
}

// plannedFLOPs computes what op would cost over the given inputs without
// adding it to the graph, letting rules price replacements exactly.
func plannedFLOPs(op ops.Operator, inputs ...*graph.Value) int64 {
	shapes := make([]tensor.Shape, len(inputs))
	for i, in := range inputs {
		shapes[i] = in.Shape
	}
	return op.FLOPs(shapes)
}

// replaceWith rewires all uses of the root node's output to newOut.
func replaceWith(c *Ctx, root *graph.Node, newOut *graph.Value) error {
	return c.G.ReplaceAllUses(out0(root), newOut)
}

// factorChain flattens a tree of single-use binary nodes of type opType
// (Mul or Add) rooted at n into its leaf operands — the
// associative-commutative normalization the paper's matcher needs. The root
// node itself is not required to be single-use. Returns nil if n is not an
// opType node. Depth is capped to keep matching linear.
func factorChain(n *graph.Node, opType string, maxDepth int) []*graph.Value {
	if !opIs(n, opType) {
		return nil
	}
	var leaves []*graph.Value
	var walk func(v *graph.Value, depth int)
	walk = func(v *graph.Value, depth int) {
		p := producer(v)
		if depth < maxDepth && p != nil && opIs(p, opType) && singleUse(v) {
			walk(p.Inputs[0], depth+1)
			walk(p.Inputs[1], depth+1)
			return
		}
		leaves = append(leaves, v)
	}
	walk(n.Inputs[0], 1)
	walk(n.Inputs[1], 1)
	return leaves
}

// rebuildChain folds values into a left-leaning chain of binary mkOp nodes
// and returns the final value. A single value is returned unchanged.
func rebuildChain(c *Ctx, mkOp func() ops.Operator, values []*graph.Value) (*graph.Value, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("rewrite: empty chain")
	}
	acc := values[0]
	for _, v := range values[1:] {
		outs, err := c.G.Apply(mkOp(), acc, v)
		if err != nil {
			return nil, err
		}
		acc = outs[0]
	}
	return acc, nil
}

// chainFLOPs prices the left-leaning chain rebuildChain would create.
func chainFLOPs(mkOp func() ops.Operator, values []*graph.Value) int64 {
	if len(values) < 2 {
		return 0
	}
	var total int64
	accShape := values[0].Shape
	for _, v := range values[1:] {
		op := mkOp()
		total += op.FLOPs([]tensor.Shape{accShape, v.Shape})
		outShapes, err := op.InferShapes([]tensor.Shape{accShape, v.Shape})
		if err != nil {
			return total
		}
		accShape = outShapes[0]
	}
	return total
}

// chainNodes collects the single-use interior nodes of a factor chain so
// their FLOPs can be credited as removed.
func chainNodes(n *graph.Node, opType string, maxDepth int) []*graph.Node {
	var nodes []*graph.Node
	var walk func(n *graph.Node, depth int)
	walk = func(n *graph.Node, depth int) {
		nodes = append(nodes, n)
		if depth >= maxDepth {
			return
		}
		for _, in := range n.Inputs {
			p := producer(in)
			if p != nil && opIs(p, opType) && singleUse(in) {
				walk(p, depth+1)
			}
		}
	}
	walk(n, 1)
	return nodes
}

// sumFLOPs totals nodeFLOPs over nodes.
func sumFLOPs(nodes []*graph.Node) int64 {
	var total int64
	for _, n := range nodes {
		total += nodeFLOPs(n)
	}
	return total
}

// newConst materializes a compile-time constant in the graph.
func (c *Ctx) newConst(t *tensor.Tensor) *graph.Value {
	c.nextConst++
	return c.G.AddConstant(fmt.Sprintf("rewrite_const_%d", c.nextConst), t)
}

// isUnaryOf reports whether v is produced by a single-use node of the given
// operator type, returning that node. Despite the name it applies to any
// arity; unaryArg is only meaningful when the matched operator is unary.
func isUnaryOf(v *graph.Value, t string) (*graph.Node, bool) {
	p := producer(v)
	if p != nil && opIs(p, t) && singleUse(v) {
		return p, true
	}
	return nil, false
}

// homogeneousUnary reports whether the node applies an elementwise function
// with f(x+y) == f(x)+f(y) (so it commutes with ReduceSum/ReduceMean):
// Neg, BitShift, MulConst, Identity, Cast.
func homogeneousUnary(n *graph.Node) bool {
	switch n.Op.Type() {
	case "Neg", "BitShift", "MulConst", "Identity", "Cast":
		return true
	}
	return false
}
