package rewrite

import (
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// Associative-family rules (Table 4, first block). The matcher flattens
// chains of single-use Mul nodes into factor lists — the AC-normalization
// that makes associative/commutative matching tractable inside a partition —
// and rewrites pairs of factors.

// mulChainRoot matches only the root of a Mul chain so nested Mul nodes do
// not produce overlapping applications.
func mulChainRoot(n *graph.Node) bool {
	if !opIs(n, "Mul") {
		return false
	}
	out := out0(n)
	if out.Kind == graph.Output {
		return true
	}
	for _, c := range out.Consumers {
		if opIs(c, "Mul") && len(out.Consumers) == 1 {
			return false
		}
	}
	return true
}

const maxChainDepth = 6

// factorRewrite describes replacing a set of factor positions with a new
// factor built at apply time.
type factorRewrite struct {
	remove   []int // indices into the factor list
	newShape tensor.Shape
	build    func(c *Ctx) (*graph.Value, error)
	// extraRemoved are single-use producer nodes consumed by the rewrite
	// (e.g. the Abs nodes of an Abs·Abs merge).
	extraRemoved []*graph.Node
	addedFLOPs   int64
	addedBytes   int64
}

// applyFactorRewrite rebuilds the Mul chain with the rewrite applied.
func applyFactorRewrite(rule string, cat Category, c *Ctx, root *graph.Node,
	leaves []*graph.Value, interior []*graph.Node, fr *factorRewrite) *Application {

	removedNodes := append(append([]*graph.Node(nil), interior...), fr.extraRemoved...)
	removedFLOPs := sumFLOPs(removedNodes)
	var removedBytes int64
	for _, n := range removedNodes {
		for _, o := range n.Outputs {
			removedBytes += o.Shape.Bytes()
		}
	}

	isRemoved := make(map[int]bool, len(fr.remove))
	for _, i := range fr.remove {
		isRemoved[i] = true
	}
	newShapes := []tensor.Shape{fr.newShape}
	for i, l := range leaves {
		if !isRemoved[i] {
			newShapes = append(newShapes, l.Shape)
		}
	}
	addedFLOPs := fr.addedFLOPs + chainFLOPsShapes(ops.NewMul, newShapes)
	addedBytes := fr.addedBytes + chainBytesShapes(ops.NewMul, newShapes)

	return &Application{
		Rule:       rule,
		Cat:        cat,
		Root:       root,
		DeltaFLOPs: removedFLOPs - addedFLOPs,
		DeltaBytes: removedBytes - addedBytes,
		apply: func(c *Ctx) error {
			newLeaf, err := fr.build(c)
			if err != nil {
				return err
			}
			factors := []*graph.Value{newLeaf}
			for i, l := range leaves {
				if !isRemoved[i] {
					factors = append(factors, l)
				}
			}
			out, err := rebuildChain(c, ops.NewMul, factors)
			if err != nil {
				return err
			}
			return replaceWith(c, root, out)
		},
	}
}

// chainFLOPsShapes prices a left-leaning chain over the given shapes.
func chainFLOPsShapes(mk func() ops.Operator, shapes []tensor.Shape) int64 {
	if len(shapes) < 2 {
		return 0
	}
	var total int64
	acc := shapes[0]
	for _, s := range shapes[1:] {
		op := mk()
		total += op.FLOPs([]tensor.Shape{acc, s})
		outs, err := op.InferShapes([]tensor.Shape{acc, s})
		if err != nil {
			return total
		}
		acc = outs[0]
	}
	return total
}

// chainBytesShapes totals the intermediate bytes the chain would allocate.
func chainBytesShapes(mk func() ops.Operator, shapes []tensor.Shape) int64 {
	if len(shapes) < 2 {
		return 0
	}
	var total int64
	acc := shapes[0]
	for _, s := range shapes[1:] {
		op := mk()
		outs, err := op.InferShapes([]tensor.Shape{acc, s})
		if err != nil {
			return total
		}
		acc = outs[0]
		total += acc.Bytes()
	}
	return total
}

// ruleMulDupFactor: X ⊙ A ⊙ X → Square(X) ⊙ A. This is the paper's
// (A⊙ReduceSum(B))⊙(ReduceSum(B)⊙C) → A⊙Square(ReduceSum(B))⊙C: the shared
// factor is squared once at its own (often reduced) size instead of
// participating in two full-size multiplies.
func ruleMulDupFactor() *Rule {
	return &Rule{
		Name: "assoc-mul-dup-factor",
		Cat:  Associative,
		Forms: []string{
			"X⊙A⊙X → Square(X)⊙A",
			"(A⊙ReduceSum(B))⊙(ReduceSum(B)⊙C) → A⊙Square(ReduceSum(B))⊙C",
			"(A⊙GEMM(B,W))⊙(GEMM(B,W)⊙C) → A⊙Square(GEMM(B,W))⊙C",
		},
		Match: func(c *Ctx, n *graph.Node) []*Application {
			if !mulChainRoot(n) {
				return nil
			}
			leaves := factorChain(n, "Mul", maxChainDepth)
			if len(leaves) < 3 {
				// x⊙x alone only renames Mul to Square; require a
				// third factor so a full-size multiply is removed.
				return nil
			}
			interior := chainNodes(n, "Mul", maxChainDepth)
			for i := 0; i < len(leaves); i++ {
				for j := i + 1; j < len(leaves); j++ {
					if leaves[i] != leaves[j] {
						continue
					}
					x := leaves[i]
					sq := ops.NewSquare()
					fr := &factorRewrite{
						remove:     []int{i, j},
						newShape:   x.Shape,
						addedFLOPs: plannedFLOPs(sq, x),
						addedBytes: x.Shape.Bytes(),
						build: func(c *Ctx) (*graph.Value, error) {
							outs, err := c.G.Apply(sq, x)
							if err != nil {
								return nil, err
							}
							return outs[0], nil
						},
					}
					return []*Application{applyFactorRewrite("assoc-mul-dup-factor", Associative, c, n, leaves, interior, fr)}
				}
			}
			return nil
		},
	}
}

// ruleMulSqrtPair: (A⊙√B)⊙(√B⊙C) → A⊙B⊙C when the two square roots are
// distinct single-use nodes over the same operand (fast-math: assumes the
// operand of √ is non-negative, as DNN compilers do).
func ruleMulSqrtPair() *Rule {
	return &Rule{
		Name:  "assoc-mul-sqrt-pair",
		Cat:   Associative,
		Forms: []string{"(A⊙√B)⊙(√B⊙C) → A⊙B⊙C"},
		Match: func(c *Ctx, n *graph.Node) []*Application {
			if !mulChainRoot(n) {
				return nil
			}
			leaves := factorChain(n, "Mul", maxChainDepth)
			interior := chainNodes(n, "Mul", maxChainDepth)
			for i := 0; i < len(leaves); i++ {
				si, ok := isUnaryOf(leaves[i], "Sqrt")
				if !ok {
					continue
				}
				for j := i + 1; j < len(leaves); j++ {
					sj, ok := isUnaryOf(leaves[j], "Sqrt")
					if !ok || si == sj || unaryArg(si) != unaryArg(sj) {
						continue
					}
					b := unaryArg(si)
					fr := &factorRewrite{
						remove:       []int{i, j},
						newShape:     b.Shape,
						extraRemoved: []*graph.Node{si, sj},
						build: func(c *Ctx) (*graph.Value, error) {
							return b, nil
						},
					}
					return []*Application{applyFactorRewrite("assoc-mul-sqrt-pair", Associative, c, n, leaves, interior, fr)}
				}
			}
			return nil
		},
	}
}

// ruleMulAbsPair: Abs(A)⊙B⊙Abs(C) → Abs(A⊙C)⊙B (paper Table 4 row 3,
// combining the commutative swap with associativity).
func ruleMulAbsPair() *Rule {
	return &Rule{
		Name:  "assoc-mul-abs-pair",
		Cat:   Associative,
		Forms: []string{"Abs(A)⊙B⊙Abs(C) → Abs(A⊙C)⊙B", "Abs(A)⊙Abs(C) → Abs(A⊙C)"},
		Match: func(c *Ctx, n *graph.Node) []*Application {
			if !mulChainRoot(n) {
				return nil
			}
			leaves := factorChain(n, "Mul", maxChainDepth)
			interior := chainNodes(n, "Mul", maxChainDepth)
			for i := 0; i < len(leaves); i++ {
				ai, ok := isUnaryOf(leaves[i], "Abs")
				if !ok {
					continue
				}
				for j := i + 1; j < len(leaves); j++ {
					aj, ok := isUnaryOf(leaves[j], "Abs")
					if !ok || ai == aj {
						continue
					}
					x, y := unaryArg(ai), unaryArg(aj)
					merged, err := tensor.BroadcastShapes(x.Shape, y.Shape)
					if err != nil {
						continue
					}
					mul, abs := ops.NewMul(), ops.NewAbs()
					fr := &factorRewrite{
						remove:       []int{i, j},
						newShape:     merged,
						extraRemoved: []*graph.Node{ai, aj},
						addedFLOPs:   plannedFLOPs(mul, x, y) + int64(merged.NumElements()),
						addedBytes:   2 * merged.Bytes(),
						build: func(c *Ctx) (*graph.Value, error) {
							prod, err := c.G.Apply(mul, x, y)
							if err != nil {
								return nil, err
							}
							outs, err := c.G.Apply(abs, prod[0])
							if err != nil {
								return nil, err
							}
							return outs[0], nil
						},
					}
					return []*Application{applyFactorRewrite("assoc-mul-abs-pair", Associative, c, n, leaves, interior, fr)}
				}
			}
			return nil
		},
	}
}

// ruleMulRecipPair: Recip(A)⊙Recip(B) → Recip(A⊙B); together with the
// dup-factor rule this derives the paper's Recip(A)⊙Recip(A⊙B) →
// Square(Recip(A))⊙Recip(B) family (both normal forms cost 4mn → 3mn here).
func ruleMulRecipPair() *Rule {
	return &Rule{
		Name:  "assoc-mul-recip-pair",
		Cat:   Associative,
		Forms: []string{"Recip(A)⊙Recip(B) → Recip(A⊙B)", "Recip(A)⊙Recip(A⊙B) → Recip(Square(A)⊙B)"},
		Match: func(c *Ctx, n *graph.Node) []*Application {
			if !mulChainRoot(n) {
				return nil
			}
			leaves := factorChain(n, "Mul", maxChainDepth)
			interior := chainNodes(n, "Mul", maxChainDepth)
			for i := 0; i < len(leaves); i++ {
				ri, ok := isUnaryOf(leaves[i], "Reciprocal")
				if !ok {
					continue
				}
				for j := i + 1; j < len(leaves); j++ {
					rj, ok := isUnaryOf(leaves[j], "Reciprocal")
					if !ok || ri == rj {
						continue
					}
					x, y := unaryArg(ri), unaryArg(rj)
					merged, err := tensor.BroadcastShapes(x.Shape, y.Shape)
					if err != nil {
						continue
					}
					mul, recip := ops.NewMul(), ops.NewReciprocal()
					fr := &factorRewrite{
						remove:       []int{i, j},
						newShape:     merged,
						extraRemoved: []*graph.Node{ri, rj},
						addedFLOPs:   plannedFLOPs(mul, x, y) + int64(merged.NumElements()),
						addedBytes:   2 * merged.Bytes(),
						build: func(c *Ctx) (*graph.Value, error) {
							prod, err := c.G.Apply(mul, x, y)
							if err != nil {
								return nil, err
							}
							outs, err := c.G.Apply(recip, prod[0])
							if err != nil {
								return nil, err
							}
							return outs[0], nil
						},
					}
					return []*Application{applyFactorRewrite("assoc-mul-recip-pair", Associative, c, n, leaves, interior, fr)}
				}
			}
			return nil
		},
	}
}

// ruleMulConstFold: constant factors of a Mul chain are multiplied at
// compile time (associativity + commutativity moving constants together).
func ruleMulConstFold() *Rule {
	return &Rule{
		Name:  "assoc-mul-const-fold",
		Cat:   Associative,
		Forms: []string{"A⊙c1⊙c2 → A⊙(c1·c2)", "A⊙c1⊙B⊙c2 → A⊙B⊙(c1·c2)"},
		Match: func(c *Ctx, n *graph.Node) []*Application {
			if !mulChainRoot(n) {
				return nil
			}
			leaves := factorChain(n, "Mul", maxChainDepth)
			interior := chainNodes(n, "Mul", maxChainDepth)
			var consts []int
			for i, l := range leaves {
				if l.IsConst() {
					consts = append(consts, i)
				}
			}
			if len(consts) < 2 {
				return nil
			}
			a, b := leaves[consts[0]], leaves[consts[1]]
			merged, err := tensor.BroadcastShapes(a.Shape, b.Shape)
			if err != nil {
				return nil
			}
			fr := &factorRewrite{
				remove:   []int{consts[0], consts[1]},
				newShape: merged,
				build: func(c *Ctx) (*graph.Value, error) {
					prod, err := ops.Eval1(ops.NewMul(), a.Data, b.Data)
					if err != nil {
						return nil, err
					}
					return c.newConst(prod), nil
				},
			}
			return []*Application{applyFactorRewrite("assoc-mul-const-fold", Associative, c, n, leaves, interior, fr)}
		},
	}
}
