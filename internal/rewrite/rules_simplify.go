package rewrite

import (
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
)

// Simplification rules: inverse-pair elimination and data-movement
// composition — the tensor-level analogue of classical strength reduction
// (§4.2) plus the data-based rewriting of Figure 5.

// ruleInversePairs eliminates f(g(A)) when f∘g is the identity (or Abs).
func ruleInversePairs() *Rule {
	type pair struct {
		outer, inner string
		absResult    bool // Sqrt(Square(A)) → Abs(A)
	}
	pairs := []pair{
		{"Exp", "Log", false},
		{"Log", "Exp", false},
		{"Neg", "Neg", false},
		{"Reciprocal", "Reciprocal", false},
		{"Not", "Not", false},
		{"Square", "Sqrt", false}, // fast-math: assumes A >= 0
		{"Sqrt", "Square", true},
	}
	forms := make([]string, 0, len(pairs))
	for _, p := range pairs {
		res := "A"
		if p.absResult {
			res = "Abs(A)"
		}
		forms = append(forms, p.outer+"("+p.inner+"(A)) → "+res)
	}
	return &Rule{
		Name:  "simplify-inverse-pair",
		Cat:   Simplification,
		Forms: forms,
		Match: func(c *Ctx, n *graph.Node) []*Application {
			for _, p := range pairs {
				if !opIs(n, p.outer) {
					continue
				}
				inner, ok := isUnaryOf(n.Inputs[0], p.inner)
				if !ok {
					continue
				}
				a := unaryArg(inner)
				removed := sumFLOPs([]*graph.Node{n, inner})
				removedBytes := out0(inner).Shape.Bytes() + out0(n).Shape.Bytes()
				abs := p.absResult
				app := &Application{
					Rule:       "simplify-inverse-pair",
					Cat:        Simplification,
					Root:       n,
					DeltaFLOPs: removed,
					DeltaBytes: removedBytes,
					apply: func(c *Ctx) error {
						res := a
						if abs {
							outs, err := c.G.Apply(ops.NewAbs(), a)
							if err != nil {
								return err
							}
							res = outs[0]
						}
						return replaceWith(c, n, res)
					},
				}
				if abs {
					app.DeltaFLOPs -= elems(a)
					app.DeltaBytes -= a.Shape.Bytes()
				}
				return []*Application{app}
			}
			return nil
		},
	}
}

// isReorganize reports whether the node's operator is Reorganize-class.
func isReorganize(n *graph.Node) bool {
	switch n.Op.Type() {
	case "Reshape", "Flatten", "Squeeze", "Unsqueeze":
		return true
	}
	return false
}

// ruleReorganizeCompose: chains of Reshape/Flatten/Squeeze/Unsqueeze
// collapse into a single Reshape (or disappear when the shape round-trips) —
// Figure 5's "data transportation" elimination.
func ruleReorganizeCompose() *Rule {
	return &Rule{
		Name: "simplify-reorganize-compose",
		Cat:  Simplification,
		Forms: []string{
			"Reshape(Reshape(A)) → Reshape(A)",
			"Reshape_s(A: s) → A",
			"Squeeze(Unsqueeze(A)) → A",
		},
		Match: func(c *Ctx, n *graph.Node) []*Application {
			if !isReorganize(n) {
				return nil
			}
			in := n.Inputs[0]
			outShape := out0(n).Shape

			// Identity reorganize: output shape equals input shape.
			if in.Shape.Equal(outShape) {
				return []*Application{{
					Rule:       "simplify-reorganize-compose",
					Cat:        Simplification,
					Root:       n,
					DeltaBytes: outShape.Bytes(),
					apply: func(c *Ctx) error {
						return replaceWith(c, n, in)
					},
				}}
			}

			inner := producer(in)
			if inner == nil || !singleUse(in) || !isReorganize(inner) {
				return nil
			}
			a := inner.Inputs[0]
			app := &Application{
				Rule:       "simplify-reorganize-compose",
				Cat:        Simplification,
				Root:       n,
				DeltaBytes: out0(inner).Shape.Bytes(),
				apply: func(c *Ctx) error {
					if a.Shape.Equal(outShape) {
						return replaceWith(c, n, a)
					}
					outs, err := c.G.Apply(ops.NewReshape(outShape...), a)
					if err != nil {
						return err
					}
					return replaceWith(c, n, outs[0])
				},
			}
			return []*Application{app}
		},
	}
}

// ruleTransposeCompose: Transpose(Transpose(A)) composes into one Transpose
// or cancels entirely.
func ruleTransposeCompose() *Rule {
	return &Rule{
		Name: "simplify-transpose-compose",
		Cat:  Simplification,
		Forms: []string{
			"Transpose_p(Transpose_q(A)) → Transpose_{q∘p}(A)",
			"Transpose_p(Transpose_p⁻¹(A)) → A",
		},
		Match: func(c *Ctx, n *graph.Node) []*Application {
			outerPerm := ops.TransposePerm(n.Op)
			if outerPerm == nil {
				return nil
			}
			inner, ok := isUnaryOf(n.Inputs[0], "Transpose")
			if !ok {
				return nil
			}
			innerPerm := ops.TransposePerm(inner.Op)
			a := unaryArg(inner)
			composed := make([]int, len(outerPerm))
			identity := true
			for i := range outerPerm {
				composed[i] = innerPerm[outerPerm[i]]
				if composed[i] != i {
					identity = false
				}
			}
			delta := out0(inner).Shape.Bytes()
			if identity {
				delta += out0(n).Shape.Bytes()
			}
			app := &Application{
				Rule:       "simplify-transpose-compose",
				Cat:        Simplification,
				Root:       n,
				DeltaBytes: delta,
				apply: func(c *Ctx) error {
					if identity {
						return replaceWith(c, n, a)
					}
					outs, err := c.G.Apply(ops.NewTranspose(composed...), a)
					if err != nil {
						return err
					}
					return replaceWith(c, n, outs[0])
				},
			}
			return []*Application{app}
		},
	}
}

// ruleIdentityElim removes Identity and (same-type) Cast operators —
// exported graphs are littered with them and they cost a full tensor copy
// each when executed as kernels.
func ruleIdentityElim() *Rule {
	return &Rule{
		Name:  "simplify-identity-elim",
		Cat:   Simplification,
		Forms: []string{"Identity(A) → A", "Cast(A) → A (same dtype)"},
		Match: func(c *Ctx, n *graph.Node) []*Application {
			if !opIs(n, "Identity") && !opIs(n, "Cast") {
				return nil
			}
			in := n.Inputs[0]
			return []*Application{{
				Rule:       "simplify-identity-elim",
				Cat:        Simplification,
				Root:       n,
				DeltaBytes: out0(n).Shape.Bytes(),
				apply: func(c *Ctx) error {
					return replaceWith(c, n, in)
				},
			}}
		},
	}
}

// ruleAddDup: A + A → BitShift(A, 1) (a multiply-free doubling; zero FLOPs
// delta but one fewer full-size load, mirroring the paper's ‡ note that
// commutativity-driven rewrites pay off by enabling later rules).
func ruleAddDup() *Rule {
	return &Rule{
		Name:  "simplify-add-dup",
		Cat:   Simplification,
		Forms: []string{"A + A → BitShift(A, 1)"},
		Match: func(c *Ctx, n *graph.Node) []*Application {
			if !opIs(n, "Add") || n.Inputs[0] != n.Inputs[1] {
				return nil
			}
			a := n.Inputs[0]
			app := &Application{
				Rule:       "simplify-add-dup",
				Cat:        Simplification,
				Root:       n,
				DeltaFLOPs: 0,
				DeltaBytes: 1, // loads A once instead of twice
				apply: func(c *Ctx) error {
					outs, err := c.G.Apply(ops.NewBitShift(1), a)
					if err != nil {
						return err
					}
					return replaceWith(c, n, outs[0])
				},
			}
			return []*Application{app}
		},
	}
}
