package ops

import (
	"testing"

	"dnnfusion/internal/tensor"
)

// Schedule parity suite: every schedule a tuner could select — and a few
// it never would — must leave LoadBlock bit-identical to the scalar Load
// oracle on every heavy source, including heavy producers nested under
// fused elementwise chains and row-wise softmax (whose staging stripes the
// schedule realigns). The grid deliberately includes unsupported row-tile
// heights (normalized down) and panels wider than N (clamped).

// scheduleGrid is the test matrix of schedules.
var scheduleGrid = []Schedule{
	{RowTile: 1, ColPanel: 8, Unroll: 1},
	{RowTile: 2, ColPanel: 16, Unroll: 2},
	{RowTile: 3, ColPanel: 33, Unroll: 4}, // normalizes to height 2
	{RowTile: 4, ColPanel: 64, Unroll: 4},
	{RowTile: 8, ColPanel: 512, Unroll: 8},
	{RowTile: 16, ColPanel: 4, Unroll: 4}, // height rounds to 8, panel to 8
}

// assertScheduleGridParity applies every schedule in the grid to a fresh
// copy of the source (built by mk) and checks block↔scalar parity.
func assertScheduleGridParity(t *testing.T, name string, mk func() Source) {
	t.Helper()
	for _, sched := range scheduleGrid {
		src := mk()
		ApplySchedule(src, sched)
		assertBlockParity(t, name, src)
	}
}

func TestScheduleGridParityMatMul(t *testing.T) {
	b := randSource(61, 12, 9)
	assertScheduleGridParity(t, "MatMul 17x12", func() Source {
		return virtualize(t, NewMatMul(), randSource(60, 17, 12), b)
	})
	assertScheduleGridParity(t, "MatMul 16x12 exact tiles", func() Source {
		return virtualize(t, NewMatMul(), randSource(62, 16, 12), b)
	})
	assertScheduleGridParity(t, "MatMul transA", func() Source {
		return virtualize(t, NewMatMulT(true, false), randSource(63, 12, 17), b)
	})
	assertScheduleGridParity(t, "MatMul transB", func() Source {
		return virtualize(t, NewMatMulT(false, true), randSource(64, 17, 12), randSource(65, 9, 12))
	})
	assertScheduleGridParity(t, "MatMul batched broadcast", func() Source {
		return virtualize(t, NewMatMul(), randSource(66, 2, 1, 9, 12), randSource(67, 3, 12, 9))
	})
	assertScheduleGridParity(t, "MatMul staged A", func() Source {
		return virtualize(t, NewMatMul(),
			virtualize(t, NewRelu(), randSource(68, 17, 12)), b)
	})
}

func TestScheduleGridParityGemm(t *testing.T) {
	a := randSource(70, 18, 7)
	b := randSource(71, 7, 11)
	c := randSource(72, 11)
	assertScheduleGridParity(t, "Gemm alpha/beta/C", func() Source {
		return virtualize(t, NewGemm(1.5, 0.5, false, false), a, b, c)
	})
	assertScheduleGridParity(t, "Gemm no C", func() Source {
		return virtualize(t, NewGemm(2, 0, false, false), a, b)
	})
	assertScheduleGridParity(t, "Gemm transA", func() Source {
		return virtualize(t, NewGemm(1, 1, true, false), randSource(73, 7, 18), b)
	})
	assertScheduleGridParity(t, "Gemm transB", func() Source {
		return virtualize(t, NewGemm(1, 1, false, true), a, randSource(74, 11, 7), c)
	})
	assertScheduleGridParity(t, "Gemm staged", func() Source {
		return virtualize(t, NewGemm(1, 1, false, false), virtualize(t, NewSigmoid(), a), b, c)
	})
}

func TestScheduleGridParityFusedConsumers(t *testing.T) {
	// The schedule-sensitive cases: a heavy producer pulled through a
	// fused elementwise chain's staging stripes, and through row-wise
	// softmax's row staging — the paths ApplySchedule re-aligns.
	w := randSource(81, 12, 20)
	bias := randSource(82, 20)
	assertScheduleGridParity(t, "relu(matmul+bias) chain", func() Source {
		mm := virtualize(t, NewMatMul(), randSource(80, 25, 12), w)
		return virtualize(t, NewRelu(), virtualize(t, NewAdd(), mm, bias))
	})
	assertScheduleGridParity(t, "softmax over matmul", func() Source {
		mm := virtualize(t, NewMatMul(), randSource(83, 25, 12), w)
		return virtualize(t, NewSoftmax(-1), mm)
	})
	assertScheduleGridParity(t, "reshape over matmul", func() Source {
		mm := virtualize(t, NewMatMul(), randSource(84, 25, 12), w)
		return virtualize(t, NewReshape(25*20), mm)
	})
}

func TestScheduleGridParityConvPool(t *testing.T) {
	x := randSource(90, 2, 4, 9, 9)
	w := randSource(91, 6, 4, 3, 3)
	attrs := ConvAttrs{Strides: []int{2, 2}, Pads: []int{1, 1}}
	assertScheduleGridParity(t, "Conv", func() Source {
		return virtualize(t, NewConv(attrs), x, w, randSource(92, 6))
	})
	assertScheduleGridParity(t, "MaxPool", func() Source {
		return virtualize(t, NewMaxPool(PoolAttrs{Kernel: []int{3, 3}, Strides: []int{2, 2}, Pads: []int{1, 1}}), x)
	})
}

func TestScheduleNormalization(t *testing.T) {
	for rt, want := range map[int]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 4, 5: 4, 7: 4, 8: 8, 9: 8, 64: 8} {
		if got := normalizeRowTile(rt); got != want {
			t.Errorf("normalizeRowTile(%d) = %d, want %d", rt, got, want)
		}
	}
	if got := normalizeColPanel(4, 100); got != 8 {
		t.Errorf("normalizeColPanel(4, 100) = %d, want 8", got)
	}
	if got := normalizeColPanel(512, 96); got != 96 {
		t.Errorf("normalizeColPanel(512, 96) = %d, want 96", got)
	}
	if got := normalizeColPanel(64, 4); got != 4 {
		t.Errorf("normalizeColPanel(64, 4) = %d, want 4", got)
	}
}

// TestTileSpanAlignment pins the lane-splitting contract: after a schedule
// is applied, TileSpan is a whole number of output rows times the row
// tile, and it propagates through order-preserving wrappers (elementwise
// chains, reorganize views).
func TestTileSpanAlignment(t *testing.T) {
	mm := virtualize(t, NewMatMul(), randSource(100, 16, 12), randSource(101, 12, 20))
	ApplySchedule(mm, Schedule{RowTile: 4, ColPanel: 16, Unroll: 4})
	if got := TileSpan(mm); got != 4*20 {
		t.Errorf("matmul TileSpan = %d, want %d", got, 4*20)
	}
	chain := virtualize(t, NewRelu(), virtualize(t, NewAdd(),
		virtualize(t, NewMatMul(), randSource(102, 16, 12), randSource(103, 12, 20)),
		randSource(104, 20)))
	ApplySchedule(chain, Schedule{RowTile: 8, ColPanel: 16, Unroll: 4})
	if got := TileSpan(chain); got != 8*20 {
		t.Errorf("chain TileSpan = %d, want %d", got, 8*20)
	}
	soft := virtualize(t, NewSoftmax(-1),
		virtualize(t, NewMatMul(), randSource(105, 16, 12), randSource(106, 12, 20)))
	ApplySchedule(soft, Schedule{RowTile: 2, ColPanel: 16, Unroll: 4})
	if got := TileSpan(soft); got != 2*20 {
		t.Errorf("softmax TileSpan = %d, want %d", got, 2*20)
	}
}

// TestScheduleTaskDims pins the GEMM-shape lowering the tuner searches.
func TestScheduleTaskDims(t *testing.T) {
	m, n, k, ok := ScheduleTaskDims(NewMatMul(), []tensor.Shape{tensor.Of(3, 17, 12), tensor.Of(12, 9)})
	if !ok || m != 17 || n != 9 || k != 12 {
		t.Errorf("matmul task = %d,%d,%d,%v", m, n, k, ok)
	}
	m, n, k, ok = ScheduleTaskDims(NewGemm(1, 1, true, false), []tensor.Shape{tensor.Of(12, 17), tensor.Of(12, 9)})
	if !ok || m != 17 || n != 9 || k != 12 {
		t.Errorf("gemm task = %d,%d,%d,%v", m, n, k, ok)
	}
	// Conv [2,4,9,9] with 6 3x3 filters, stride 2, pad 1 → out [2,6,5,5]:
	// im2col rows 2*25, columns 6, contraction 4*9.
	m, n, k, ok = ScheduleTaskDims(NewConv(ConvAttrs{Strides: []int{2, 2}, Pads: []int{1, 1}}),
		[]tensor.Shape{tensor.Of(2, 4, 9, 9), tensor.Of(6, 4, 3, 3)})
	if !ok || m != 50 || n != 6 || k != 36 {
		t.Errorf("conv task = %d,%d,%d,%v", m, n, k, ok)
	}
	if _, _, _, ok := ScheduleTaskDims(NewEinsum("ab,bc->ac"), []tensor.Shape{tensor.Of(4, 5), tensor.Of(5, 6)}); ok {
		t.Error("einsum should not report a schedulable task")
	}
	if _, _, _, ok := ScheduleTaskDims(NewRelu(), []tensor.Shape{tensor.Of(4, 5)}); ok {
		t.Error("light operators should not report a schedulable task")
	}
}
