package ops

import (
	"dnnfusion/internal/tensor"
)

// BlockSource is the blocked fast path of Source: LoadBlock fills dst with
// the n elements starting at flat row-major offset off of the logical
// tensor, without per-element index unravelling or virtual dispatch. A
// Source advertises the fast path by implementing this interface; the
// executor falls back to scalar Load for sources that don't (genuinely
// gather-like index patterns: Transpose, Gather, Expand, ...).
//
// LoadBlock must produce bit-identical values to calling Load on every
// covered index: the scalar tree-walk remains the semantic oracle, the
// block path is only a faster evaluation order over contiguous memory.
// The one documented exception is chainSource's online-softmax path
// (softmax(scores)·V fused flash-attention style): its streaming-rescale
// recurrence reassociates the exp/sum, so it matches the oracle within a
// few ULPs rather than bit-for-bit — still deterministic for a fixed
// schedule, and independent of the requested block ranges. Every
// softmax-free chain remains bit-exact.
// Like Load, LoadBlock may use internal scratch, so a BlockSource belongs
// to one goroutine at a time; parallel executors compose one Source tree
// per worker.
type BlockSource interface {
	Source
	LoadBlock(dst []float32, off, n int)
}

// AsBlock returns the blocked fast path of s when it has one.
func AsBlock(s Source) (BlockSource, bool) {
	b, ok := s.(BlockSource)
	return b, ok
}

// FlatData returns the row-major backing slice of a Source whose elements
// are exactly a materialized slice: a tensor, or a Reorganize view
// (Reshape/Flatten/Squeeze/Unsqueeze) over one. Heavy operators (MatMul,
// Conv, Pool) use it to run tiled flat loops directly over operand memory.
func FlatData(s Source) ([]float32, bool) {
	switch v := s.(type) {
	case tensorSource:
		return v.t.Data(), true
	case *reorganizeBlockSource:
		return FlatData(v.ins[0])
	}
	return nil, false
}

// blockLen is the elementwise streaming granularity: per-input staging
// buffers are this long, so a chain of fused elementwise operators
// processes blockLen-element stripes that stay in L1.
const blockLen = 512

// stageElemCap bounds the per-session scratch a heavy operator (MatMul,
// Gemm, Conv, Pool) allocates to stage a non-flat operand; beyond it the
// scalar pull-model path wins on memory footprint.
const stageElemCap = 1 << 20

// flatOrStage resolves a heavy operator's operand for flat inner loops:
// the operand's own row-major backing when it is flat, or — when the
// operand is a fused blocked producer — a per-session staging buffer of
// elems elements, filled from the producer at execution time so the
// multiply-accumulate still streams contiguous memory ("operand tiles
// materialized once" instead of one virtual Load per accumulation step).
// ok is false when the operand is neither flat nor blocked, or too large
// to stage.
func flatOrStage(s Source, elems int) (data []float32, stage BlockSource, ok bool) {
	if d, isFlat := FlatData(s); isFlat {
		return d, nil, true
	}
	if blk, isBlk := AsBlock(s); isBlk && elems <= stageElemCap {
		return make([]float32, elems), blk, true
	}
	return nil, nil, false
}

// loadPeriodic fills dst with elements [off, off+len(dst)) of the infinite
// periodic extension of src (period elements long). This is how suffix
// broadcasting (e.g. a [C] bias against an [N,C] activation) streams: the
// input's flat data simply repeats every period elements.
func loadPeriodic(src BlockSource, dst []float32, off, period int) {
	for len(dst) > 0 {
		p := off % period
		run := period - p
		if run > len(dst) {
			run = len(dst)
		}
		src.LoadBlock(dst[:run], p, run)
		dst = dst[run:]
		off += run
	}
}

// suffixPeriod reports whether in broadcasts against out purely as a
// trailing-suffix repeat: every leading dimension of in (right-aligned
// against out) is 1 and the remaining dimensions equal out's suffix. The
// returned period is in.NumElements(): flat input offset = flat output
// offset % period. Shapes equal to out return period == out.NumElements()
// (plain streaming); single-element shapes return period 1.
func suffixPeriod(in, out tensor.Shape) (int, bool) {
	if in.Rank() > out.Rank() {
		return 0, false
	}
	shift := out.Rank() - in.Rank()
	i := in.Rank() - 1
	// The matched suffix: trailing dims equal to out's.
	for ; i >= 0 && in[i] == out[shift+i]; i-- {
	}
	// Everything left of it must be a broadcast 1; a non-1 dim there (or a
	// 1 wedged between non-1 matched dims) breaks flat periodicity.
	for ; i >= 0; i-- {
		if in[i] != 1 {
			return 0, false
		}
	}
	return in.NumElements(), true
}

// HasStagedOperand reports whether any source in the tree stages a fused
// producer into per-session scratch at LoadBlock time (a heavy operator
// over a non-flat operand). Staging is re-streamed on every LoadBlock
// call, so the parallel executor widens chunks for such outputs to at
// most one per worker lane — otherwise chunk-count would multiply the
// producer's evaluation work.
func HasStagedOperand(s Source) bool {
	switch v := s.(type) {
	case *chainSource:
		// The producer streams incrementally per row group (not re-staged
		// whole per call), so it does not count as staged by itself; B
		// staging and staged operands deeper in either tree do.
		if v.bStage != nil {
			return true
		}
		if v.c != nil && HasStagedOperand(v.c) {
			return true
		}
		return HasStagedOperand(v.prod)
	case *matmulBlockSource:
		return v.aStage != nil || v.bStage != nil || HasStagedOperand(v.a) || HasStagedOperand(v.b)
	case *gemmBlockSource:
		if v.aStage != nil || v.bStage != nil {
			return true
		}
		if v.c != nil && HasStagedOperand(v.c) {
			return true
		}
		return HasStagedOperand(v.a) || HasStagedOperand(v.b)
	case *convBlockSource:
		return v.xStage != nil || v.wStage != nil || v.biasStage != nil ||
			HasStagedOperand(v.x) || HasStagedOperand(v.w)
	case *poolBlockSource:
		return v.xStage != nil || HasStagedOperand(v.in)
	case *pointwiseBlockSource:
		for _, in := range v.ins {
			if HasStagedOperand(in) {
				return true
			}
		}
	case *reorganizeBlockSource:
		return HasStagedOperand(v.ins[0])
	case *sliceBlockSource:
		return HasStagedOperand(v.ins[0])
	case *softmaxBlockSource:
		return HasStagedOperand(v.in)
	}
	return false
}

// incIndex advances idx to the next row-major index of shape, wrapping to
// all-zero after the last one.
func incIndex(shape tensor.Shape, idx []int) {
	for d := len(shape) - 1; d >= 0; d-- {
		idx[d]++
		if idx[d] < shape[d] {
			return
		}
		idx[d] = 0
	}
}
