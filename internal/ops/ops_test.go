package ops

import (
	"math"
	"testing"
	"testing/quick"

	"dnnfusion/internal/tensor"
)

func mustEval1(t *testing.T, op Operator, ins ...*tensor.Tensor) *tensor.Tensor {
	t.Helper()
	out, err := Eval1(op, ins...)
	if err != nil {
		t.Fatalf("%s eval: %v", op.Type(), err)
	}
	return out
}

func TestUnaryValues(t *testing.T) {
	x := tensor.FromSlice([]float32{-2, -0.5, 0, 1, 4}, 5)
	cases := []struct {
		op   Operator
		want []float32
	}{
		{NewRelu(), []float32{0, 0, 0, 1, 4}},
		{NewAbs(), []float32{2, 0.5, 0, 1, 4}},
		{NewNeg(), []float32{2, 0.5, 0, -1, -4}},
		{NewSquare(), []float32{4, 0.25, 0, 1, 16}},
		{NewLeakyRelu(0.1), []float32{-0.2, -0.05, 0, 1, 4}},
		{NewClip(-1, 2), []float32{-1, -0.5, 0, 1, 2}},
		{NewCeil(), []float32{-2, 0, 0, 1, 4}},
		{NewFloor(), []float32{-2, -1, 0, 1, 4}},
		{NewNot(), []float32{0, 0, 1, 0, 0}},
		{NewIdentity(), []float32{-2, -0.5, 0, 1, 4}},
		{NewCast(), []float32{-2, -0.5, 0, 1, 4}},
		{NewBitShift(2), []float32{-8, -2, 0, 4, 16}},
		{NewBitShift(-1), []float32{-1, -0.25, 0, 0.5, 2}},
		{NewAddConst(3), []float32{1, 2.5, 3, 4, 7}},
		{NewMulConst(2), []float32{-4, -1, 0, 2, 8}},
		{NewPowConst(2), []float32{4, 0.25, 0, 1, 16}},
	}
	for _, c := range cases {
		got := mustEval1(t, c.op, x)
		want := tensor.FromSlice(c.want, 5)
		if !tensor.AllClose(got, want, 1e-6) {
			t.Errorf("%s(%v) = %v, want %v", c.op.Type(), x.Data(), got.Data(), c.want)
		}
	}
}

func TestTranscendentalValues(t *testing.T) {
	x := tensor.FromSlice([]float32{0.25, 1, 2}, 3)
	checks := []struct {
		op Operator
		f  func(float64) float64
	}{
		{NewExp(), math.Exp},
		{NewLog(), math.Log},
		{NewSqrt(), math.Sqrt},
		{NewSin(), math.Sin},
		{NewCos(), math.Cos},
		{NewTanh(), math.Tanh},
		{NewErf(), math.Erf},
		{NewReciprocal(), func(v float64) float64 { return 1 / v }},
		{NewSigmoid(), func(v float64) float64 { return 1 / (1 + math.Exp(-v)) }},
		{NewSoftplus(), func(v float64) float64 { return math.Log1p(math.Exp(v)) }},
	}
	for _, c := range checks {
		got := mustEval1(t, c.op, x)
		for i, v := range x.Data() {
			want := float32(c.f(float64(v)))
			if math.Abs(float64(got.Data()[i]-want)) > 1e-5 {
				t.Errorf("%s(%v) = %v, want %v", c.op.Type(), v, got.Data()[i], want)
			}
		}
	}
}

func TestBinaryValues(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2, 3, 4}, 4)
	b := tensor.FromSlice([]float32{4, 3, 2, 2}, 4)
	cases := []struct {
		op   Operator
		want []float32
	}{
		{NewAdd(), []float32{5, 5, 5, 6}},
		{NewSub(), []float32{-3, -1, 1, 2}},
		{NewMul(), []float32{4, 6, 6, 8}},
		{NewDiv(), []float32{0.25, 2.0 / 3, 1.5, 2}},
		{NewMin(), []float32{1, 2, 2, 2}},
		{NewMax(), []float32{4, 3, 3, 4}},
		{NewGreater(), []float32{0, 0, 1, 1}},
		{NewEqual(), []float32{0, 0, 0, 0}},
		{NewPow(), []float32{1, 8, 9, 16}},
	}
	for _, c := range cases {
		got := mustEval1(t, c.op, a, b)
		want := tensor.FromSlice(c.want, 4)
		if !tensor.AllClose(got, want, 1e-5) {
			t.Errorf("%s = %v, want %v", c.op.Type(), got.Data(), c.want)
		}
	}
}

func TestBroadcastAddAndMapping(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := tensor.FromSlice([]float32{10, 20, 30}, 3)
	got := mustEval1(t, NewAdd(), a, b)
	want := tensor.FromSlice([]float32{11, 22, 33, 14, 25, 36}, 2, 3)
	if !tensor.AllClose(got, want, 0) {
		t.Errorf("broadcast Add = %v, want %v", got.Data(), want.Data())
	}
	// Same-shape Add is One-to-One; broadcast Add is One-to-Many (Table 2).
	add := NewAdd()
	if m := add.Mapping([]tensor.Shape{tensor.Of(2, 3), tensor.Of(2, 3)}); m != OneToOne {
		t.Errorf("same-shape Add mapping = %v, want One-to-One", m)
	}
	if m := add.Mapping([]tensor.Shape{tensor.Of(2, 3), tensor.Of(3)}); m != OneToMany {
		t.Errorf("broadcast Add mapping = %v, want One-to-Many", m)
	}
}

func TestWhere(t *testing.T) {
	cond := tensor.FromSlice([]float32{1, 0, 1}, 3)
	a := tensor.FromSlice([]float32{10, 20, 30}, 3)
	b := tensor.FromSlice([]float32{-1, -2, -3}, 3)
	got := mustEval1(t, NewWhere(), cond, a, b)
	want := tensor.FromSlice([]float32{10, -2, 30}, 3)
	if !tensor.AllClose(got, want, 0) {
		t.Errorf("Where = %v, want %v", got.Data(), want.Data())
	}
}

func TestPRelu(t *testing.T) {
	x := tensor.FromSlice([]float32{-2, 3}, 2)
	slope := tensor.FromSlice([]float32{0.5}, 1)
	got := mustEval1(t, NewPRelu(), x, slope)
	want := tensor.FromSlice([]float32{-1, 3}, 2)
	if !tensor.AllClose(got, want, 0) {
		t.Errorf("PRelu = %v, want %v", got.Data(), want.Data())
	}
}

func TestTranspose(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	got := mustEval1(t, NewTranspose(1, 0), x)
	if !got.Shape().Equal(tensor.Of(3, 2)) {
		t.Fatalf("Transpose shape = %v", got.Shape())
	}
	want := tensor.FromSlice([]float32{1, 4, 2, 5, 3, 6}, 3, 2)
	if !tensor.AllClose(got, want, 0) {
		t.Errorf("Transpose = %v, want %v", got.Data(), want.Data())
	}
	if p := TransposePerm(NewTranspose(1, 0)); len(p) != 2 || p[0] != 1 {
		t.Errorf("TransposePerm = %v", p)
	}
}

func TestTransposeInverseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		x := tensor.New(2, 3, 4).Rand(seed)
		perm := []int{2, 0, 1}
		inv := []int{1, 2, 0}
		y := mustEval1(t, NewTranspose(perm...), x)
		z := mustEval1(t, NewTranspose(inv...), y)
		return tensor.AllClose(x, z, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestReshapeFamily(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	r := mustEval1(t, NewReshape(3, -1), x)
	if !r.Shape().Equal(tensor.Of(3, 2)) {
		t.Fatalf("Reshape shape = %v", r.Shape())
	}
	// Reshape preserves row-major order (unlike Transpose).
	want := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	if !tensor.AllClose(r, want, 0) {
		t.Errorf("Reshape = %v, want row-major order preserved", r.Data())
	}
	fl := mustEval1(t, NewFlatten(1), tensor.New(2, 3, 4))
	if !fl.Shape().Equal(tensor.Of(2, 12)) {
		t.Errorf("Flatten shape = %v", fl.Shape())
	}
	sq := mustEval1(t, NewSqueeze(), tensor.New(1, 3, 1, 2))
	if !sq.Shape().Equal(tensor.Of(3, 2)) {
		t.Errorf("Squeeze shape = %v", sq.Shape())
	}
	us := mustEval1(t, NewUnsqueeze(0, 2), tensor.New(3, 2))
	if !us.Shape().Equal(tensor.Of(1, 3, 1, 2)) {
		t.Errorf("Unsqueeze shape = %v", us.Shape())
	}
}

func TestSliceSplitConcat(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8}, 2, 4)
	sl := mustEval1(t, NewSlice([]int{1}, []int{1}, []int{3}), x)
	want := tensor.FromSlice([]float32{2, 3, 6, 7}, 2, 2)
	if !tensor.AllClose(sl, want, 0) {
		t.Errorf("Slice = %v, want %v", sl.Data(), want.Data())
	}

	outs, err := Eval(NewSplit(1, 1, 3), []*tensor.Tensor{x})
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if !outs[0].Shape().Equal(tensor.Of(2, 1)) || !outs[1].Shape().Equal(tensor.Of(2, 3)) {
		t.Fatalf("Split shapes = %v, %v", outs[0].Shape(), outs[1].Shape())
	}
	if outs[1].At(1, 2) != 8 {
		t.Errorf("Split[1][1,2] = %v, want 8", outs[1].At(1, 2))
	}

	cc := mustEval1(t, NewConcat(1), outs[0], outs[1])
	if !tensor.AllClose(cc, x, 0) {
		t.Errorf("Concat(Split(x)) != x: %v", cc.Data())
	}
}

// Property: Split followed by Concat along the same axis is the identity.
func TestSplitConcatRoundTripProperty(t *testing.T) {
	f := func(seed uint64, axisRaw uint8) bool {
		x := tensor.New(4, 6).Rand(seed)
		axis := int(axisRaw % 2)
		n := x.Shape()[axis]
		split := NewSplit(axis, 1, n-1)
		parts, err := Eval(split, []*tensor.Tensor{x})
		if err != nil {
			return false
		}
		back, err := Eval1(NewConcat(axis), parts...)
		if err != nil {
			return false
		}
		return tensor.AllClose(back, x, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExpand(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2}, 2, 1)
	got := mustEval1(t, NewExpand(2, 3), x)
	want := tensor.FromSlice([]float32{1, 1, 1, 2, 2, 2}, 2, 3)
	if !tensor.AllClose(got, want, 0) {
		t.Errorf("Expand = %v, want %v", got.Data(), want.Data())
	}
	if NewExpand(2, 3).Mapping(nil) != OneToMany {
		t.Error("Expand mapping should be One-to-Many")
	}
}

func TestGather(t *testing.T) {
	data := tensor.FromSlice([]float32{10, 11, 20, 21, 30, 31}, 3, 2)
	idx := tensor.FromSlice([]float32{2, 0}, 2)
	got := mustEval1(t, NewGather(0), data, idx)
	want := tensor.FromSlice([]float32{30, 31, 10, 11}, 2, 2)
	if !tensor.AllClose(got, want, 0) {
		t.Errorf("Gather = %v, want %v", got.Data(), want.Data())
	}
	// Gather along axis 1.
	got2 := mustEval1(t, NewGather(1), data, tensor.FromSlice([]float32{1}, 1))
	if !got2.Shape().Equal(tensor.Of(3, 1)) || got2.At(2, 0) != 31 {
		t.Errorf("Gather axis1 = %v %v", got2.Shape(), got2.Data())
	}
}

func TestResizeUpsample(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	got := mustEval1(t, NewUpsample(2), x)
	if !got.Shape().Equal(tensor.Of(1, 1, 4, 4)) {
		t.Fatalf("Upsample shape = %v", got.Shape())
	}
	if got.At(0, 0, 0, 1) != 1 || got.At(0, 0, 3, 3) != 4 || got.At(0, 0, 1, 2) != 2 {
		t.Errorf("Upsample nearest values wrong: %v", got.Data())
	}
}

func TestDepthToSpaceInverse(t *testing.T) {
	x := tensor.New(1, 8, 2, 3).Rand(7)
	d2s := mustEval1(t, NewDepthToSpace(2), x)
	if !d2s.Shape().Equal(tensor.Of(1, 2, 4, 6)) {
		t.Fatalf("DepthToSpace shape = %v", d2s.Shape())
	}
	back := mustEval1(t, NewSpaceToDepth(2), d2s)
	if !tensor.AllClose(back, x, 0) {
		t.Error("SpaceToDepth(DepthToSpace(x)) != x")
	}
}

func TestCatalogConsistency(t *testing.T) {
	byGroup := map[MappingType]int{}
	for _, entry := range Catalog() {
		op := entry.Make()
		if got := op.Mapping(nil); got != entry.Mapping {
			t.Errorf("%s: catalog mapping %v, live mapping %v", entry.Name, entry.Mapping, got)
		}
		if op.Type() != entry.Name && entry.Name != "Gemm" { // Gemm alias kept
			if op.Type() != entry.Name {
				t.Errorf("catalog name %q != op type %q", entry.Name, op.Type())
			}
		}
		byGroup[entry.Mapping]++
	}
	// Paper Table 2 has entries in all five classes.
	for _, m := range AllMappingTypes() {
		if byGroup[m] == 0 {
			t.Errorf("no catalog entries with mapping %v", m)
		}
	}
	if byGroup[OneToOne] < 20 {
		t.Errorf("One-to-One group too small: %d", byGroup[OneToOne])
	}
}

func TestMovementOpsHaveZeroFLOPs(t *testing.T) {
	shapes := []tensor.Shape{tensor.Of(2, 4)}
	for _, op := range []Operator{
		NewReshape(4, 2), NewFlatten(1), NewTranspose(1, 0),
		NewSlice([]int{0}, []int{0}, []int{1}), NewConcat(0),
	} {
		if f := op.FLOPs(shapes); f != 0 {
			t.Errorf("%s FLOPs = %d, want 0 (pure data movement)", op.Type(), f)
		}
	}
}

func TestKeyStability(t *testing.T) {
	a := Key(NewConv(ConvAttrs{Strides: []int{2}, Pads: []int{1}}))
	b := Key(NewConv(ConvAttrs{Strides: []int{2}, Pads: []int{1}}))
	c := Key(NewConv(ConvAttrs{Strides: []int{1}, Pads: []int{1}}))
	if a != b {
		t.Errorf("identical ops have different keys: %q vs %q", a, b)
	}
	if a == c {
		t.Errorf("different ops share key %q", a)
	}
}

// Property: for every catalog op with a simple unary/binary signature, the
// materialized eval shape matches InferShapes.
func TestEvalShapeMatchesInference(t *testing.T) {
	x := tensor.New(2, 4).Rand(3)
	y := tensor.New(2, 4).Rand(4)
	for _, entry := range Catalog() {
		op := entry.Make()
		var ins []*tensor.Tensor
		switch {
		case op.Type() == "Gather" || op.Type() == "Where" || op.Type() == "Conv" ||
			op.Type() == "ConvTranspose" || op.Type() == "BatchNormalization" ||
			op.Type() == "InstanceNormalization" || op.Type() == "AveragePool" ||
			op.Type() == "MaxPool" || op.Type() == "GlobalAveragePool" ||
			op.Type() == "Upsample" || op.Type() == "Resize" || op.Type() == "DepthToSpace" ||
			op.Type() == "SpaceToDepth":
			continue // exercised in dedicated tests with proper shapes
		case isPointwiseArity(op, 2) || op.Type() == "MatMul" || op.Type() == "Gemm" || op.Type() == "Einsum":
			if op.Type() == "Einsum" {
				ins = []*tensor.Tensor{tensor.New(2, 4).Rand(1), tensor.New(4, 3).Rand(2)}
			} else if op.Type() == "MatMul" || op.Type() == "Gemm" {
				ins = []*tensor.Tensor{tensor.New(2, 4).Rand(1), tensor.New(4, 3).Rand(2)}
			} else {
				ins = []*tensor.Tensor{x, y}
			}
		case op.Type() == "Expand":
			ins = []*tensor.Tensor{tensor.New(2, 1).Rand(5)}
		default:
			ins = []*tensor.Tensor{x}
		}
		shapes := make([]tensor.Shape, len(ins))
		for i := range ins {
			shapes[i] = ins[i].Shape()
		}
		want, err := op.InferShapes(shapes)
		if err != nil {
			t.Errorf("%s InferShapes(%v): %v", op.Type(), shapes, err)
			continue
		}
		outs, err := Eval(op, ins)
		if err != nil {
			t.Errorf("%s Eval: %v", op.Type(), err)
			continue
		}
		for i := range outs {
			if !outs[i].Shape().Equal(want[i]) {
				t.Errorf("%s output %d shape %v, inferred %v", op.Type(), i, outs[i].Shape(), want[i])
			}
		}
	}
}

func isPointwiseArity(op Operator, n int) bool {
	p, ok := op.(Pointwise)
	return ok && p.Arity() == n
}

func TestShapeInferenceErrors(t *testing.T) {
	cases := []struct {
		op Operator
		in []tensor.Shape
	}{
		{NewAdd(), []tensor.Shape{tensor.Of(2, 3), tensor.Of(2, 4)}},
		{NewAdd(), []tensor.Shape{tensor.Of(2)}},
		{NewMatMul(), []tensor.Shape{tensor.Of(2, 3), tensor.Of(4, 5)}},
		{NewTranspose(0, 1, 2), []tensor.Shape{tensor.Of(2, 3)}},
		{NewTranspose(0, 0), []tensor.Shape{tensor.Of(2, 3)}},
		{NewConcat(0), []tensor.Shape{tensor.Of(2, 3), tensor.Of(2, 4)}},
		{NewSplit(0, 1, 2), []tensor.Shape{tensor.Of(4, 3)}},
		{NewReshape(5, 5), []tensor.Shape{tensor.Of(2, 3)}},
		{NewSqueeze(0), []tensor.Shape{tensor.Of(2, 3)}},
		{NewSlice([]int{0}, []int{3}, []int{2}), []tensor.Shape{tensor.Of(4)}},
		{NewGather(5), []tensor.Shape{tensor.Of(2, 3), tensor.Of(1)}},
		{NewConv(ConvAttrs{}), []tensor.Shape{tensor.Of(1, 3, 8, 8), tensor.Of(4, 2, 3, 3)}},
	}
	for _, c := range cases {
		if _, err := c.op.InferShapes(c.in); err == nil {
			t.Errorf("%s.InferShapes(%v) succeeded, want error", c.op.Type(), c.in)
		}
	}
}
