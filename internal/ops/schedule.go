package ops

import (
	"fmt"

	"dnnfusion/internal/tensor"
)

// Schedule is the tile schedule of a heavy kernel — the compile-time
// artifact the tuner selects per kernel shape and device (§4.3–4.4 pair
// fusion with tuned per-kernel schedules). It parameterizes the blocked
// fast paths that used to hard-code their blocking: the register row tile
// and L1 column panel of MatMul/Gemm, and the lane-splitting granularity
// of Conv/Pool. The contraction (K) axis is never tiled: every output
// element accumulates over the full K range in ascending order, so any
// schedule stays bit-for-bit equal to the scalar oracle.
type Schedule struct {
	// RowTile is the register-tile height: how many output rows one tile
	// accumulates together, streaming each B row once per tile. The
	// blocked paths implement heights 1, 2, 4, and 8 as specialized
	// loops; other values round down to the nearest supported height.
	RowTile int `json:"row_tile"`
	// ColPanel is the column-panel width in output columns: the slice of
	// B kept hot across all row tiles of a pass. Clamped to [8, N].
	ColPanel int `json:"col_panel"`
	// Unroll is the inner-loop unroll factor selected by the tuner. The
	// in-process CPU path leaves unrolling to the Go compiler; the factor
	// is recorded for the emitted kernel source and for bench
	// explainability.
	Unroll int `json:"unroll"`
}

// Zero reports an unset schedule (no tuner ran for the kernel).
func (s Schedule) Zero() bool { return s.RowTile == 0 && s.ColPanel == 0 && s.Unroll == 0 }

// String renders the schedule compactly for profiles and bench output:
// "rt4/cp128/u4", or "default" for the zero schedule (the operators'
// built-in blocking).
func (s Schedule) String() string {
	if s.Zero() {
		return "default"
	}
	return fmt.Sprintf("rt%d/cp%d/u%d", s.RowTile, s.ColPanel, s.Unroll)
}

// DefaultSchedule is the schedule the blocked paths assume when no tuner
// ran: the pre-schedule hard-coded blocking (4-row tiles, ~16KiB column
// panels of a K-row B panel, unroll 4), kept as the fallback so
// Virtualize-without-compile callers see unchanged behavior.
func DefaultSchedule(k int) Schedule {
	if k < 1 {
		k = 1
	}
	return Schedule{RowTile: 4, ColPanel: 4096 / k, Unroll: 4}
}

// normalizeRowTile rounds a requested row-tile height down to the nearest
// height the specialized loops implement (1, 2, 4, or 8 — the set
// mulTileAcc has register-resident accumulation loops for).
func normalizeRowTile(rt int) int {
	switch {
	case rt >= 8:
		return 8
	case rt >= 4:
		return 4
	case rt >= 2:
		return 2
	default:
		return 1
	}
}

// normalizeColPanel clamps a requested column-panel width to [8, n]: below
// 8 columns the panel loop's bookkeeping outweighs the locality, and a
// panel cannot be wider than the output.
func normalizeColPanel(cp, n int) int {
	if cp < 8 {
		cp = 8
	}
	if cp > n {
		cp = n
	}
	return cp
}

// ApplySchedule walks a composed Source tree and configures every heavy
// blocked source (MatMul, Gemm, Conv, Pool) with the kernel's selected
// schedule, resizing accumulator scratch as needed. It is called at bind
// time — once per session per lane — so the steady-state hot path still
// allocates nothing. A zero schedule leaves the defaults in place.
func ApplySchedule(s Source, sched Schedule) {
	applySchedule(s, sched, sched)
}

// ApplyChainSchedule configures a chain-fused kernel's source tree with two
// schedules: cons tiles the chain's consumer contraction (and everything
// outside the chain), prod tiles the chain's producer — its column panel
// doubles as the online softmax's key-panel (rescale) width. Non-chain
// sources see cons, exactly as ApplySchedule.
func ApplyChainSchedule(s Source, cons, prod Schedule) {
	if prod.Zero() {
		prod = cons
	}
	applySchedule(s, cons, prod)
}

func applySchedule(s Source, sched, chainProd Schedule) {
	if sched.Zero() {
		return
	}
	switch v := s.(type) {
	case *chainSource:
		v.setSchedules(sched, chainProd)
		applySchedule(v.prod, chainProd, chainProd)
		if v.bStage != nil {
			applySchedule(v.bStage, sched, chainProd)
		}
		if v.c != nil {
			applySchedule(v.c, sched, chainProd)
		}
	case *matmulBlockSource:
		v.setSchedule(sched)
		applySchedule(v.a, sched, chainProd)
		applySchedule(v.b, sched, chainProd)
	case *gemmBlockSource:
		v.setSchedule(sched)
		applySchedule(v.a, sched, chainProd)
		applySchedule(v.b, sched, chainProd)
		if v.c != nil {
			applySchedule(v.c, sched, chainProd)
		}
	case *convBlockSource:
		v.sched = sched
		applySchedule(v.x, sched, chainProd)
		applySchedule(v.w, sched, chainProd)
	case *poolBlockSource:
		v.sched = sched
		applySchedule(v.in, sched, chainProd)
	case *pointwiseBlockSource:
		for _, in := range v.ins {
			applySchedule(in, sched, chainProd)
		}
		// A heavy producer under this chain is pulled through staging
		// stripes: align the stripe with the producer's row tile so the
		// staging loads keep it on the tiled path (a fixed 512-element
		// stripe would chop a tall tile into tile-defeating slivers).
		span := 0
		for i := range v.blkIns {
			in := &v.blkIns[i]
			if in.kind == pwStream {
				if sp := TileSpan(in.blk); sp > span {
					span = sp
				}
			}
		}
		if span > 0 && span <= maxStripeElems {
			v.span = span
			v.stripe = (blockLen + span - 1) / span * span
			for i := range v.blkIns {
				in := &v.blkIns[i]
				if in.buf != nil && len(in.buf) < v.stripe {
					in.buf = make([]float32, v.stripe)
				}
			}
		}
	case *reorganizeBlockSource:
		applySchedule(v.ins[0], sched, chainProd)
	case *sliceBlockSource:
		applySchedule(v.ins[0], sched, chainProd)
	case *softmaxBlockSource:
		applySchedule(v.in, sched, chainProd)
		// Same alignment for row-wise softmax: stage whole producer row
		// tiles (the tile span is a multiple of the row length when the
		// producer is a matmul over the same innermost axis).
		d := v.axisDim
		if span := TileSpan(v.blk); span > 0 && span%d == 0 && span <= maxStripeElems {
			v.group = span / d
			if len(v.rowBuf) < span {
				v.rowBuf = make([]float32, span)
			}
		}
	}
}

// maxStripeElems bounds the per-input staging growth schedule alignment
// may request: past 64K elements (256 KiB) the stripe no longer lives in
// cache and the alignment would cost more than the tile path saves.
const maxStripeElems = 1 << 16

// TileSpan is the preferred parallel-chunk alignment of a source's output
// range, in elements: when the executor splits the output across worker
// lanes, chunks sized in multiples of the span start at row-tile
// boundaries, so no lane's chunk degrades the tiled path to single-row
// evaluation mid-tile. Zero means the source has no alignment preference.
func TileSpan(s Source) int {
	switch v := s.(type) {
	case *chainSource:
		return v.rowTile * v.n
	case *matmulBlockSource:
		return v.rowTile * v.n
	case *gemmBlockSource:
		return v.rowTile * v.n
	case *convBlockSource:
		return normalizeRowTile(v.sched.RowTile) * v.shape[v.shape.Rank()-1]
	case *poolBlockSource:
		return normalizeRowTile(v.sched.RowTile) * v.shape[v.shape.Rank()-1]
	case *reorganizeBlockSource:
		// Reorganize preserves flat order: the producer's alignment is the
		// view's alignment.
		return TileSpan(v.ins[0])
	case *pointwiseBlockSource:
		// The chain preserves flat order; its alignment is the heavy
		// producer's (recorded when the schedule was applied).
		return v.span
	case *softmaxBlockSource:
		if v.group > 1 {
			return v.group * v.axisDim
		}
	}
	return 0
}

// ScheduleTaskDims lowers a heavy operator to the GEMM-shape tuning task
// the schedule selector searches: M output rows × N output columns with a
// K-long contraction. Batched matmuls report per-matrix dims (the row tile
// works within one batch matrix); Conv lowers im2col-style (output
// positions × output channels, contracting C/groups × kernel volume).
// ok is false for operators whose blocked path has no tile parameters to
// select (Einsum and ConvTranspose keep scalar evaluation).
func ScheduleTaskDims(op Operator, in []tensor.Shape) (m, n, k int, ok bool) {
	switch v := op.(type) {
	case *matmul:
		if len(in) != 2 {
			return 0, 0, 0, false
		}
		_, mm, kk, nn, err := v.dims(in[0], in[1])
		if err != nil {
			return 0, 0, 0, false
		}
		return mm, nn, kk, true
	case *gemm:
		if len(in) < 2 {
			return 0, 0, 0, false
		}
		mm, kk, nn, err := v.dims(in)
		if err != nil {
			return 0, 0, 0, false
		}
		return mm, nn, kk, true
	case *conv:
		out, a, err := v.outShape(in)
		if err != nil {
			return 0, 0, 0, false
		}
		spatial := 1
		for i := 2; i < out.Rank(); i++ {
			spatial *= out[i]
		}
		kernel := 1
		for i := 2; i < in[1].Rank(); i++ {
			kernel *= in[1][i]
		}
		return out[0] * spatial, out[1], (in[0][1] / a.Groups) * kernel, true
	}
	return 0, 0, 0, false
}

// mulTileAcc accumulates the rt×w output tile with corner (row a0/ai, col
// jLo) into acc (rt rows of w float64 accumulators, cleared here): K-outer,
// so each B row segment is loaded — and widened to float64 — once per tile
// rather than once per output row. Every accumulator still sums its
// products in ascending-k order, so the tile is bit-for-bit equal to rt
// independent scalar rows. The supported row-tile heights are specialized
// so the per-k A values live in registers.
func mulTileAcc(rt int, aData []float32, a0, ai, ak, kk int, bData []float32, bBase, bRS, jLo int, acc []float64, w int) {
	acc = acc[: rt*w : rt*w]
	for t := range acc {
		acc[t] = 0
	}
	switch rt {
	case 2:
		a1 := a0 + ai
		c0, c1 := acc[:w:w], acc[w:2*w:2*w]
		for k := 0; k < kk; k++ {
			ko := k * ak
			v0 := float64(aData[a0+ko])
			v1 := float64(aData[a1+ko])
			base := bBase + k*bRS + jLo
			bRow := bData[base : base+w]
			for t, bv := range bRow {
				b64 := float64(bv)
				c0[t] += v0 * b64
				c1[t] += v1 * b64
			}
		}
	case 4:
		a1, a2, a3 := a0+ai, a0+2*ai, a0+3*ai
		c0, c1, c2, c3 := acc[:w:w], acc[w:2*w:2*w], acc[2*w:3*w:3*w], acc[3*w:4*w:4*w]
		for k := 0; k < kk; k++ {
			ko := k * ak
			v0 := float64(aData[a0+ko])
			v1 := float64(aData[a1+ko])
			v2 := float64(aData[a2+ko])
			v3 := float64(aData[a3+ko])
			base := bBase + k*bRS + jLo
			bRow := bData[base : base+w]
			for t, bv := range bRow {
				b64 := float64(bv)
				c0[t] += v0 * b64
				c1[t] += v1 * b64
				c2[t] += v2 * b64
				c3[t] += v3 * b64
			}
		}
	case 8:
		a1, a2, a3 := a0+ai, a0+2*ai, a0+3*ai
		a4, a5, a6, a7 := a0+4*ai, a0+5*ai, a0+6*ai, a0+7*ai
		c0, c1, c2, c3 := acc[:w:w], acc[w:2*w:2*w], acc[2*w:3*w:3*w], acc[3*w:4*w:4*w]
		c4, c5, c6, c7 := acc[4*w:5*w:5*w], acc[5*w:6*w:6*w], acc[6*w:7*w:7*w], acc[7*w:8*w:8*w]
		for k := 0; k < kk; k++ {
			ko := k * ak
			v0 := float64(aData[a0+ko])
			v1 := float64(aData[a1+ko])
			v2 := float64(aData[a2+ko])
			v3 := float64(aData[a3+ko])
			v4 := float64(aData[a4+ko])
			v5 := float64(aData[a5+ko])
			v6 := float64(aData[a6+ko])
			v7 := float64(aData[a7+ko])
			base := bBase + k*bRS + jLo
			bRow := bData[base : base+w]
			for t, bv := range bRow {
				b64 := float64(bv)
				c0[t] += v0 * b64
				c1[t] += v1 * b64
				c2[t] += v2 * b64
				c3[t] += v3 * b64
				c4[t] += v4 * b64
				c5[t] += v5 * b64
				c6[t] += v6 * b64
				c7[t] += v7 * b64
			}
		}
	default:
		// Unspecialized heights (callers normalize, so this is a safety
		// net): per-row streaming, still ascending-k per accumulator.
		for k := 0; k < kk; k++ {
			ko := k * ak
			base := bBase + k*bRS + jLo
			bRow := bData[base : base+w]
			for r := 0; r < rt; r++ {
				av := float64(aData[a0+r*ai+ko])
				c := acc[r*w : r*w+w]
				for t, bv := range bRow {
					c[t] += av * float64(bv)
				}
			}
		}
	}
}
