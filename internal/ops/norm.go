package ops

import (
	"fmt"
	"math"

	"dnnfusion/internal/tensor"
)

// NewBatchNormalization returns inference-mode batch normalization:
// y = scale*(x-mean)/sqrt(var+eps) + bias with per-channel parameters
// (inputs: X[N,C,..], scale[C], bias[C], mean[C], var[C]). The paper's
// Table 2 classifies it One-to-One: each output element depends on exactly
// one input element (the per-channel parameters are compile-time constants).
func NewBatchNormalization(eps float32) Operator { return &batchnorm{eps: eps} }

type batchnorm struct{ eps float32 }

// BatchNormEps extracts the epsilon of a BatchNormalization operator; ok is
// false for other operators. Used by the Conv+BatchNorm folding rewrite.
func BatchNormEps(op Operator) (float32, bool) {
	b, isBN := op.(*batchnorm)
	if !isBN {
		return 0, false
	}
	return b.eps, true
}

func (b *batchnorm) Type() string                          { return "BatchNormalization" }
func (b *batchnorm) NumOutputs() int                       { return 1 }
func (b *batchnorm) AttrKey() string                       { return fmt.Sprintf("eps=%g", b.eps) }
func (b *batchnorm) Properties() Properties                { return Properties{Linear: true} }
func (b *batchnorm) Mapping(in []tensor.Shape) MappingType { return OneToOne }

func (b *batchnorm) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	if len(in) != 5 {
		return nil, errInputs("BatchNormalization", "5", len(in))
	}
	x := in[0]
	if x.Rank() < 2 {
		return nil, fmt.Errorf("BatchNormalization: input %v must have a channel dim", x)
	}
	c := x[1]
	for i := 1; i < 5; i++ {
		if in[i].Rank() != 1 || in[i][0] != c {
			return nil, fmt.Errorf("BatchNormalization: param %d shape %v, want [%d]", i, in[i], c)
		}
	}
	return []tensor.Shape{x.Clone()}, nil
}

func (b *batchnorm) FLOPs(in []tensor.Shape) int64 {
	// Folded into a per-channel multiply-add at inference: 2 per element.
	return 2 * int64(in[0].NumElements())
}

func (b *batchnorm) Virtualize(ins []Source, outNo int) (Source, error) {
	if outNo != 0 {
		return nil, fmt.Errorf("BatchNormalization: output %d out of range", outNo)
	}
	if len(ins) != 5 {
		return nil, errInputs("BatchNormalization", "5", len(ins))
	}
	return &batchnormSource{
		x: ins[0], scale: ins[1], bias: ins[2], mean: ins[3], variance: ins[4],
		eps: b.eps, cBuf: make([]int, 1),
	}, nil
}

type batchnormSource struct {
	x, scale, bias, mean, variance Source
	eps                            float32
	cBuf                           []int
}

func (s *batchnormSource) Shape() tensor.Shape { return s.x.Shape() }

func (s *batchnormSource) Load(idx []int) float32 {
	s.cBuf[0] = idx[1]
	m := float64(s.mean.Load(s.cBuf))
	v := float64(s.variance.Load(s.cBuf))
	sc := float64(s.scale.Load(s.cBuf))
	bi := float64(s.bias.Load(s.cBuf))
	x := float64(s.x.Load(idx))
	return float32(sc*(x-m)/math.Sqrt(v+float64(s.eps)) + bi)
}

// NewInstanceNormalization normalizes each (batch, channel) slice over its
// spatial dimensions: inputs X[N,C,S..], scale[C], bias[C].
// Many-to-Many per Table 2 (the mean/variance couple all spatial elements).
func NewInstanceNormalization(eps float32) Operator { return &instancenorm{eps: eps} }

type instancenorm struct{ eps float32 }

func (n *instancenorm) Type() string                          { return "InstanceNormalization" }
func (n *instancenorm) NumOutputs() int                       { return 1 }
func (n *instancenorm) AttrKey() string                       { return fmt.Sprintf("eps=%g", n.eps) }
func (n *instancenorm) Properties() Properties                { return Properties{} }
func (n *instancenorm) Mapping(in []tensor.Shape) MappingType { return ManyToMany }

func (n *instancenorm) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	if len(in) != 3 {
		return nil, errInputs("InstanceNormalization", "3", len(in))
	}
	x := in[0]
	if x.Rank() < 3 {
		return nil, fmt.Errorf("InstanceNormalization: input %v must have spatial dims", x)
	}
	for i := 1; i < 3; i++ {
		if in[i].Rank() != 1 || in[i][0] != x[1] {
			return nil, fmt.Errorf("InstanceNormalization: param %d shape %v, want [%d]", i, in[i], x[1])
		}
	}
	return []tensor.Shape{x.Clone()}, nil
}

func (n *instancenorm) FLOPs(in []tensor.Shape) int64 {
	// Mean pass + variance pass + normalize: ~4 per element.
	return 4 * int64(in[0].NumElements())
}

func (n *instancenorm) Virtualize(ins []Source, outNo int) (Source, error) {
	if outNo != 0 {
		return nil, fmt.Errorf("InstanceNormalization: output %d out of range", outNo)
	}
	if len(ins) != 3 {
		return nil, errInputs("InstanceNormalization", "3", len(ins))
	}
	return &instancenormSource{
		x: ins[0], scale: ins[1], bias: ins[2], eps: n.eps,
		buf:  make([]int, ins[0].Shape().Rank()),
		cBuf: make([]int, 1),
	}, nil
}

type instancenormSource struct {
	x, scale, bias Source
	eps            float32
	buf            []int
	cBuf           []int
}

func (s *instancenormSource) Shape() tensor.Shape { return s.x.Shape() }

func (s *instancenormSource) Load(idx []int) float32 {
	xShape := s.x.Shape()
	spatialCount := 1
	for i := 2; i < xShape.Rank(); i++ {
		spatialCount *= xShape[i]
	}
	s.buf[0], s.buf[1] = idx[0], idx[1]
	var sum, sumSq float64
	for sp := 0; sp < spatialCount; sp++ {
		rem := sp
		for i := xShape.Rank() - 1; i >= 2; i-- {
			s.buf[i] = rem % xShape[i]
			rem /= xShape[i]
		}
		v := float64(s.x.Load(s.buf))
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(spatialCount)
	variance := sumSq/float64(spatialCount) - mean*mean
	s.cBuf[0] = idx[1]
	sc := float64(s.scale.Load(s.cBuf))
	bi := float64(s.bias.Load(s.cBuf))
	x := float64(s.x.Load(idx))
	return float32(sc*(x-mean)/math.Sqrt(variance+float64(s.eps)) + bi)
}
