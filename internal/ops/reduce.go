package ops

import (
	"fmt"
	"math"

	"dnnfusion/internal/tensor"
)

// ReduceKind selects the reduction performed by a Reduce operator.
type ReduceKind int

const (
	ReduceSum ReduceKind = iota
	ReduceMean
	ReduceProd
	ReduceMax
	ReduceMin
)

var reduceNames = [...]string{"ReduceSum", "ReduceMean", "ReduceProd", "ReduceMax", "ReduceMin"}

func (k ReduceKind) String() string { return reduceNames[k] }

// NewReduce reduces along the given axes (Many-to-Many per Table 2). With
// keepDims the reduced axes remain as size-1 dimensions. Sum and Mean are
// linear, which licenses the paper's commutative-family rewrites
// (e.g. ReduceProd(Exp(A)) → Exp(ReduceSum(A))).
func NewReduce(kind ReduceKind, keepDims bool, axes ...int) Operator {
	return &reduce{kind: kind, keepDims: keepDims, axes: append([]int(nil), axes...)}
}

type reduce struct {
	kind     ReduceKind
	keepDims bool
	axes     []int
}

func (r *reduce) Type() string    { return r.kind.String() }
func (r *reduce) NumOutputs() int { return 1 }
func (r *reduce) AttrKey() string {
	return fmt.Sprintf("axes=%v,keep=%t", r.axes, r.keepDims)
}
func (r *reduce) Properties() Properties {
	if r.kind == ReduceSum || r.kind == ReduceMean {
		return Properties{Linear: true}
	}
	return Properties{}
}
func (r *reduce) Mapping(in []tensor.Shape) MappingType { return ManyToMany }

// Axes returns the reduction axes (for rewrite-rule inspection).
func (r *reduce) Axes() []int { return r.axes }

// Kind returns the reduction kind.
func (r *reduce) Kind() ReduceKind { return r.kind }

// ReduceInfo extracts the reduction parameters of a Reduce operator; ok is
// false for other operators. The rewriter uses it to rebuild equivalent
// reductions (e.g. ReduceProd(Exp(A)) → Exp(ReduceSum(A))).
func ReduceInfo(op Operator) (kind ReduceKind, keepDims bool, axes []int, ok bool) {
	r, isReduce := op.(*reduce)
	if !isReduce {
		return 0, false, nil, false
	}
	return r.kind, r.keepDims, append([]int(nil), r.axes...), true
}

func (r *reduce) resolveAxes(rank int) (map[int]bool, error) {
	red := make(map[int]bool)
	if len(r.axes) == 0 {
		for i := 0; i < rank; i++ {
			red[i] = true
		}
		return red, nil
	}
	for _, a := range r.axes {
		na, ok := tensor.NormalizeAxis(a, rank)
		if !ok {
			return nil, fmt.Errorf("%s: axis %d out of range for rank %d", r.Type(), a, rank)
		}
		red[na] = true
	}
	return red, nil
}

func (r *reduce) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	if len(in) != 1 {
		return nil, errInputs(r.Type(), "1", len(in))
	}
	red, err := r.resolveAxes(in[0].Rank())
	if err != nil {
		return nil, err
	}
	out := make(tensor.Shape, 0, in[0].Rank())
	for i, d := range in[0] {
		if red[i] {
			if r.keepDims {
				out = append(out, 1)
			}
		} else {
			out = append(out, d)
		}
	}
	return []tensor.Shape{out}, nil
}

func (r *reduce) FLOPs(in []tensor.Shape) int64 {
	// One combine per input element (the paper's m*n convention for a
	// reduction over an m×n input).
	return int64(in[0].NumElements())
}

func (r *reduce) Virtualize(ins []Source, outNo int) (Source, error) {
	if outNo != 0 {
		return nil, fmt.Errorf("%s: output %d out of range", r.Type(), outNo)
	}
	if len(ins) != 1 {
		return nil, errInputs(r.Type(), "1", len(ins))
	}
	inShape := ins[0].Shape()
	red, err := r.resolveAxes(inShape.Rank())
	if err != nil {
		return nil, err
	}
	outs, err := r.InferShapes([]tensor.Shape{inShape})
	if err != nil {
		return nil, err
	}
	redAxes := make([]int, 0, len(red))
	for i := 0; i < inShape.Rank(); i++ {
		if red[i] {
			redAxes = append(redAxes, i)
		}
	}
	count := 1
	for _, a := range redAxes {
		count *= inShape[a]
	}
	return &reduceSource{
		op:      r,
		shape:   outs[0],
		in:      ins[0],
		inShape: inShape,
		red:     red,
		redAxes: redAxes,
		count:   count,
		buf:     make([]int, inShape.Rank()),
	}, nil
}

type reduceSource struct {
	op      *reduce
	shape   tensor.Shape
	in      Source
	inShape tensor.Shape
	red     map[int]bool
	redAxes []int
	// count is the reduced-element count, hoisted from Load.
	count int
	buf   []int
}

func (s *reduceSource) Shape() tensor.Shape { return s.shape }

func (s *reduceSource) Load(outIdx []int) float32 {
	// Scatter the kept output indices into the input index buffer.
	j := 0
	for i := 0; i < s.inShape.Rank(); i++ {
		if s.red[i] {
			s.buf[i] = 0
			if s.op.keepDims {
				j++
			}
		} else {
			s.buf[i] = outIdx[j]
			j++
		}
	}
	count := s.count
	var acc float64
	switch s.op.kind {
	case ReduceProd:
		acc = 1
	case ReduceMax:
		acc = math.Inf(-1)
	case ReduceMin:
		acc = math.Inf(1)
	}
	for n := 0; n < count; n++ {
		// Decode n into the reduced axes of the input index.
		rem := n
		for i := len(s.redAxes) - 1; i >= 0; i-- {
			a := s.redAxes[i]
			s.buf[a] = rem % s.inShape[a]
			rem /= s.inShape[a]
		}
		v := float64(s.in.Load(s.buf))
		switch s.op.kind {
		case ReduceSum, ReduceMean:
			acc += v
		case ReduceProd:
			acc *= v
		case ReduceMax:
			acc = math.Max(acc, v)
		case ReduceMin:
			acc = math.Min(acc, v)
		}
	}
	if s.op.kind == ReduceMean {
		acc /= float64(count)
	}
	return float32(acc)
}

// NewCumSum computes the inclusive cumulative sum along axis (Many-to-Many).
func NewCumSum(axis int) Operator { return &cumsum{axis: axis} }

type cumsum struct{ axis int }

func (c *cumsum) Type() string                          { return "CumSum" }
func (c *cumsum) NumOutputs() int                       { return 1 }
func (c *cumsum) AttrKey() string                       { return fmt.Sprintf("axis=%d", c.axis) }
func (c *cumsum) Properties() Properties                { return Properties{Linear: true} }
func (c *cumsum) Mapping(in []tensor.Shape) MappingType { return ManyToMany }
func (c *cumsum) FLOPs(in []tensor.Shape) int64         { return int64(in[0].NumElements()) }
func (c *cumsum) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	if len(in) != 1 {
		return nil, errInputs("CumSum", "1", len(in))
	}
	if _, ok := tensor.NormalizeAxis(c.axis, in[0].Rank()); !ok {
		return nil, fmt.Errorf("CumSum: axis %d out of range for %v", c.axis, in[0])
	}
	return []tensor.Shape{in[0].Clone()}, nil
}

func (c *cumsum) Virtualize(ins []Source, outNo int) (Source, error) {
	if outNo != 0 || len(ins) != 1 {
		return nil, errInputs("CumSum", "1", len(ins))
	}
	ax, ok := tensor.NormalizeAxis(c.axis, ins[0].Shape().Rank())
	if !ok {
		return nil, fmt.Errorf("CumSum: axis %d out of range for %v", c.axis, ins[0].Shape())
	}
	return &cumsumSource{in: ins[0], axis: ax, buf: make([]int, ins[0].Shape().Rank())}, nil
}

type cumsumSource struct {
	in   Source
	axis int
	buf  []int
}

func (s *cumsumSource) Shape() tensor.Shape { return s.in.Shape() }

func (s *cumsumSource) Load(idx []int) float32 {
	copy(s.buf, idx)
	var acc float64
	for i := 0; i <= idx[s.axis]; i++ {
		s.buf[s.axis] = i
		acc += float64(s.in.Load(s.buf))
	}
	return float32(acc)
}

// NewSoftmax computes softmax along axis with the usual max-subtraction for
// numerical stability (Many-to-Many).
func NewSoftmax(axis int) Operator { return &softmax{axis: axis, log: false} }

// NewLogSoftmax computes log-softmax along axis.
func NewLogSoftmax(axis int) Operator { return &softmax{axis: axis, log: true} }

type softmax struct {
	axis int
	log  bool
}

func (s *softmax) Type() string {
	if s.log {
		return "LogSoftmax"
	}
	return "Softmax"
}
func (s *softmax) NumOutputs() int                       { return 1 }
func (s *softmax) AttrKey() string                       { return fmt.Sprintf("axis=%d", s.axis) }
func (s *softmax) Properties() Properties                { return Properties{} }
func (s *softmax) Mapping(in []tensor.Shape) MappingType { return ManyToMany }
func (s *softmax) FLOPs(in []tensor.Shape) int64 {
	// max pass + sub/exp + sum pass + div: ~4 ops per element.
	return 4 * int64(in[0].NumElements())
}

func (s *softmax) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	if len(in) != 1 {
		return nil, errInputs(s.Type(), "1", len(in))
	}
	if _, ok := tensor.NormalizeAxis(s.axis, in[0].Rank()); !ok {
		return nil, fmt.Errorf("%s: axis %d out of range for %v", s.Type(), s.axis, in[0])
	}
	return []tensor.Shape{in[0].Clone()}, nil
}

func (s *softmax) Virtualize(ins []Source, outNo int) (Source, error) {
	if outNo != 0 || len(ins) != 1 {
		return nil, errInputs(s.Type(), "1", len(ins))
	}
	inShape := ins[0].Shape()
	ax, ok := tensor.NormalizeAxis(s.axis, inShape.Rank())
	if !ok {
		return nil, fmt.Errorf("%s: axis %d out of range for %v", s.Type(), s.axis, inShape)
	}
	src := &softmaxSource{
		in: ins[0], shape: inShape, axis: ax, axisDim: inShape[ax],
		log: s.log, buf: make([]int, inShape.Rank()),
	}
	// Row-wise fast path: softmax over the innermost axis of a blocked
	// input computes each contiguous row's max and sum once instead of
	// twice per element.
	if ax == inShape.Rank()-1 && inShape.Rank() >= 1 {
		if blk, ok := AsBlock(ins[0]); ok {
			return &softmaxBlockSource{
				softmaxSource: *src,
				blk:           blk,
				rowBuf:        make([]float32, inShape[ax]),
			}, nil
		}
	}
	return src, nil
}

type softmaxSource struct {
	in    Source
	shape tensor.Shape
	axis  int
	// axisDim is the softmax-axis length, hoisted from Load.
	axisDim int
	log     bool
	buf     []int
}

func (s *softmaxSource) Shape() tensor.Shape { return s.shape }

// softmaxBlockSource streams innermost-axis softmax row by row: each
// contiguous input row is staged once into rowBuf, its max and exp-sum are
// computed once, and every covered element of the row is normalized from
// the staged values — versus the scalar path's two full row passes per
// element. The max/sum accumulation order matches softmaxSource.Load, so
// results are bit-for-bit equal.
type softmaxBlockSource struct {
	softmaxSource
	blk    BlockSource
	rowBuf []float32
	// group is how many input rows one producer load stages (default 1).
	// ApplySchedule aligns it with a heavy producer's row tile, so a
	// matmul feeding this softmax is pulled in whole tiles instead of
	// tile-defeating single rows.
	group int
}

func (s *softmaxBlockSource) LoadBlock(dst []float32, off, n int) {
	d := s.axisDim
	g := s.group
	if g < 1 {
		g = 1
	}
	span := g * d
	total := s.shape.NumElements()
	stagedLo := -1 // staging never survives a call: inputs change between runs
	for n > 0 {
		j := off % d
		rowStart := off - j
		gLo := rowStart - rowStart%span
		if gLo != stagedLo {
			gN := span
			if gLo+gN > total {
				gN = total - gLo
			}
			s.blk.LoadBlock(s.rowBuf[:gN], gLo, gN)
			stagedLo = gLo
		}
		row := s.rowBuf[rowStart-gLo : rowStart-gLo+d]
		run := d - j
		if run > n {
			run = n
		}
		maxV := math.Inf(-1)
		for _, v := range row {
			maxV = math.Max(maxV, float64(v))
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v) - maxV)
		}
		if s.log {
			logSum := math.Log(sum)
			for t := 0; t < run; t++ {
				dst[t] = float32(float64(row[j+t]) - maxV - logSum)
			}
		} else {
			for t := 0; t < run; t++ {
				dst[t] = float32(math.Exp(float64(row[j+t])-maxV) / sum)
			}
		}
		dst = dst[run:]
		off += run
		n -= run
	}
}

func (s *softmaxSource) Load(idx []int) float32 {
	n := s.axisDim
	copy(s.buf, idx)
	maxV := math.Inf(-1)
	for i := 0; i < n; i++ {
		s.buf[s.axis] = i
		maxV = math.Max(maxV, float64(s.in.Load(s.buf)))
	}
	var sum float64
	for i := 0; i < n; i++ {
		s.buf[s.axis] = i
		sum += math.Exp(float64(s.in.Load(s.buf)) - maxV)
	}
	x := float64(s.in.Load(idx)) - maxV
	if s.log {
		return float32(x - math.Log(sum))
	}
	return float32(math.Exp(x) / sum)
}
