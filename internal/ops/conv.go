package ops

import (
	"fmt"

	"dnnfusion/internal/tensor"
)

// ConvAttrs configures Conv and ConvTranspose. Slices are per spatial
// dimension; nil means 1 (strides, dilations) or 0 (pads). Pads are
// symmetric (same padding at both ends of each spatial dimension).
type ConvAttrs struct {
	Strides   []int
	Pads      []int
	Dilations []int
	Groups    int
}

func (a ConvAttrs) normalized(spatial int) ConvAttrs {
	out := ConvAttrs{Groups: a.Groups}
	if out.Groups == 0 {
		out.Groups = 1
	}
	// fill expands a per-spatial-dim attribute: nil means the default for
	// every dimension, a single value replicates across dimensions.
	fill := func(src []int, def int) []int {
		dst := make([]int, spatial)
		for i := range dst {
			switch {
			case len(src) == 0:
				dst[i] = def
			case len(src) == 1:
				dst[i] = src[0]
			default:
				dst[i] = src[i]
			}
		}
		return dst
	}
	out.Strides = fill(a.Strides, 1)
	out.Pads = fill(a.Pads, 0)
	out.Dilations = fill(a.Dilations, 1)
	return out
}

func (a ConvAttrs) key() string {
	return fmt.Sprintf("s=%v,p=%v,d=%v,g=%d", a.Strides, a.Pads, a.Dilations, a.Groups)
}

// NewConv returns an N-dimensional convolution (2-D for CNNs, 3-D for the
// paper's C3D/S3D models). Input is [N, C, S1..Sk], weight is
// [M, C/groups, K1..Kk], and an optional third input is a bias of shape [M].
// Many-to-Many per Table 2.
func NewConv(attrs ConvAttrs) Operator { return &conv{attrs: attrs} }

type conv struct{ attrs ConvAttrs }

func (c *conv) Type() string                          { return "Conv" }
func (c *conv) NumOutputs() int                       { return 1 }
func (c *conv) AttrKey() string                       { return c.attrs.key() }
func (c *conv) Properties() Properties                { return Properties{Linear: true} }
func (c *conv) Mapping(in []tensor.Shape) MappingType { return ManyToMany }

func (c *conv) outShape(in []tensor.Shape) (tensor.Shape, ConvAttrs, error) {
	if len(in) != 2 && len(in) != 3 {
		return nil, ConvAttrs{}, errInputs("Conv", "2 or 3", len(in))
	}
	x, w := in[0], in[1]
	if x.Rank() < 3 || w.Rank() != x.Rank() {
		return nil, ConvAttrs{}, fmt.Errorf("Conv: invalid ranks %v, %v", x, w)
	}
	spatial := x.Rank() - 2
	a := c.attrs.normalized(spatial)
	n, ch := x[0], x[1]
	m := w[0]
	if ch%a.Groups != 0 || m%a.Groups != 0 || w[1] != ch/a.Groups {
		return nil, ConvAttrs{}, fmt.Errorf("Conv: channel/group mismatch x=%v w=%v groups=%d", x, w, a.Groups)
	}
	if len(in) == 3 && !(in[2].Rank() == 1 && in[2][0] == m) {
		return nil, ConvAttrs{}, fmt.Errorf("Conv: bias shape %v does not match M=%d", in[2], m)
	}
	out := tensor.Shape{n, m}
	for i := 0; i < spatial; i++ {
		s := (x[2+i]+2*a.Pads[i]-a.Dilations[i]*(w[2+i]-1)-1)/a.Strides[i] + 1
		if s <= 0 {
			return nil, ConvAttrs{}, fmt.Errorf("Conv: non-positive output dim for x=%v w=%v %s", x, w, a.key())
		}
		out = append(out, s)
	}
	return out, a, nil
}

func (c *conv) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	out, _, err := c.outShape(in)
	if err != nil {
		return nil, err
	}
	return []tensor.Shape{out}, nil
}

func (c *conv) FLOPs(in []tensor.Shape) int64 {
	out, a, err := c.outShape(in)
	if err != nil {
		return 0
	}
	w := in[1]
	kernel := int64(1)
	for i := 2; i < w.Rank(); i++ {
		kernel *= int64(w[i])
	}
	f := 2 * int64(out.NumElements()) * int64(in[0][1]/a.Groups) * kernel
	if len(in) == 3 {
		f += int64(out.NumElements())
	}
	return f
}

func (c *conv) Virtualize(ins []Source, outNo int) (Source, error) {
	if outNo != 0 {
		return nil, fmt.Errorf("Conv: output %d out of range", outNo)
	}
	shapes := make([]tensor.Shape, len(ins))
	for i := range ins {
		shapes[i] = ins[i].Shape()
	}
	out, a, err := c.outShape(shapes)
	if err != nil {
		return nil, err
	}
	src := &convSource{
		shape: out,
		x:     ins[0],
		w:     ins[1],
		a:     a,
		xBuf:  make([]int, shapes[0].Rank()),
		wBuf:  make([]int, shapes[1].Rank()),
		bBuf:  make([]int, 1),
	}
	if len(ins) == 3 {
		src.bias = ins[2]
	}
	return src, nil
}

type convSource struct {
	shape tensor.Shape
	x, w  Source
	bias  Source
	a     ConvAttrs
	xBuf  []int
	wBuf  []int
	bBuf  []int
}

func (s *convSource) Shape() tensor.Shape { return s.shape }

func (s *convSource) Load(idx []int) float32 {
	xShape, wShape := s.x.Shape(), s.w.Shape()
	spatial := xShape.Rank() - 2
	n, m := idx[0], idx[1]
	cPerGroup := xShape[1] / s.a.Groups
	mPerGroup := wShape[0] / s.a.Groups
	group := m / mPerGroup
	s.xBuf[0] = n
	s.wBuf[0] = m
	kernel := 1
	for i := 0; i < spatial; i++ {
		kernel *= wShape[2+i]
	}
	var acc float64
	for ci := 0; ci < cPerGroup; ci++ {
		s.xBuf[1] = group*cPerGroup + ci
		s.wBuf[1] = ci
		for kp := 0; kp < kernel; kp++ {
			rem := kp
			ok := true
			for i := spatial - 1; i >= 0; i-- {
				k := rem % wShape[2+i]
				rem /= wShape[2+i]
				pos := idx[2+i]*s.a.Strides[i] - s.a.Pads[i] + k*s.a.Dilations[i]
				if pos < 0 || pos >= xShape[2+i] {
					ok = false
					break
				}
				s.xBuf[2+i] = pos
				s.wBuf[2+i] = k
			}
			if !ok {
				continue
			}
			acc += float64(s.x.Load(s.xBuf)) * float64(s.w.Load(s.wBuf))
		}
	}
	if s.bias != nil {
		s.bBuf[0] = m
		acc += float64(s.bias.Load(s.bBuf))
	}
	return float32(acc)
}

// NewConvTranspose returns the transposed (fractionally-strided) convolution
// used by the paper's U-Net. Input [N, C, S..], weight [C, M/groups, K..],
// optional bias [M]. Many-to-Many per Table 2.
func NewConvTranspose(attrs ConvAttrs) Operator { return &convT{attrs: attrs} }

type convT struct{ attrs ConvAttrs }

func (c *convT) Type() string                          { return "ConvTranspose" }
func (c *convT) NumOutputs() int                       { return 1 }
func (c *convT) AttrKey() string                       { return c.attrs.key() }
func (c *convT) Properties() Properties                { return Properties{Linear: true} }
func (c *convT) Mapping(in []tensor.Shape) MappingType { return ManyToMany }

func (c *convT) outShape(in []tensor.Shape) (tensor.Shape, ConvAttrs, int, error) {
	if len(in) != 2 && len(in) != 3 {
		return nil, ConvAttrs{}, 0, errInputs("ConvTranspose", "2 or 3", len(in))
	}
	x, w := in[0], in[1]
	if x.Rank() < 3 || w.Rank() != x.Rank() {
		return nil, ConvAttrs{}, 0, fmt.Errorf("ConvTranspose: invalid ranks %v, %v", x, w)
	}
	spatial := x.Rank() - 2
	a := c.attrs.normalized(spatial)
	if x[1] != w[0] || x[1]%a.Groups != 0 {
		return nil, ConvAttrs{}, 0, fmt.Errorf("ConvTranspose: channel mismatch x=%v w=%v", x, w)
	}
	m := w[1] * a.Groups
	out := tensor.Shape{x[0], m}
	for i := 0; i < spatial; i++ {
		s := (x[2+i]-1)*a.Strides[i] - 2*a.Pads[i] + a.Dilations[i]*(w[2+i]-1) + 1
		if s <= 0 {
			return nil, ConvAttrs{}, 0, fmt.Errorf("ConvTranspose: non-positive output dim")
		}
		out = append(out, s)
	}
	return out, a, m, nil
}

func (c *convT) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	out, _, _, err := c.outShape(in)
	if err != nil {
		return nil, err
	}
	return []tensor.Shape{out}, nil
}

func (c *convT) FLOPs(in []tensor.Shape) int64 {
	_, a, _, err := c.outShape(in)
	if err != nil {
		return 0
	}
	w := in[1]
	kernel := int64(1)
	for i := 2; i < w.Rank(); i++ {
		kernel *= int64(w[i])
	}
	// Every input element contributes to kernel positions for M/g outputs.
	return 2 * int64(in[0].NumElements()) * int64(w[1]) * kernel / int64(a.Groups) * int64(a.Groups)
}

func (c *convT) Virtualize(ins []Source, outNo int) (Source, error) {
	if outNo != 0 {
		return nil, fmt.Errorf("ConvTranspose: output %d out of range", outNo)
	}
	shapes := make([]tensor.Shape, len(ins))
	for i := range ins {
		shapes[i] = ins[i].Shape()
	}
	out, a, _, err := c.outShape(shapes)
	if err != nil {
		return nil, err
	}
	src := &convTSource{
		shape: out,
		x:     ins[0],
		w:     ins[1],
		a:     a,
		xBuf:  make([]int, shapes[0].Rank()),
		wBuf:  make([]int, shapes[1].Rank()),
		bBuf:  make([]int, 1),
	}
	if len(ins) == 3 {
		src.bias = ins[2]
	}
	return src, nil
}

type convTSource struct {
	shape tensor.Shape
	x, w  Source
	bias  Source
	a     ConvAttrs
	xBuf  []int
	wBuf  []int
	bBuf  []int
}

func (s *convTSource) Shape() tensor.Shape { return s.shape }

func (s *convTSource) Load(idx []int) float32 {
	xShape, wShape := s.x.Shape(), s.w.Shape()
	spatial := xShape.Rank() - 2
	n, m := idx[0], idx[1]
	mPerGroup := wShape[1]
	group := m / mPerGroup
	cPerGroup := xShape[1] / s.a.Groups
	s.xBuf[0] = n
	s.wBuf[1] = m % mPerGroup
	kernel := 1
	for i := 0; i < spatial; i++ {
		kernel *= wShape[2+i]
	}
	var acc float64
	for ci := 0; ci < cPerGroup; ci++ {
		c := group*cPerGroup + ci
		s.xBuf[1] = c
		s.wBuf[0] = c
		for kp := 0; kp < kernel; kp++ {
			rem := kp
			ok := true
			for i := spatial - 1; i >= 0; i-- {
				k := rem % wShape[2+i]
				rem /= wShape[2+i]
				num := idx[2+i] + s.a.Pads[i] - k*s.a.Dilations[i]
				if num < 0 || num%s.a.Strides[i] != 0 {
					ok = false
					break
				}
				pos := num / s.a.Strides[i]
				if pos >= xShape[2+i] {
					ok = false
					break
				}
				s.xBuf[2+i] = pos
				s.wBuf[2+i] = k
			}
			if !ok {
				continue
			}
			acc += float64(s.x.Load(s.xBuf)) * float64(s.w.Load(s.wBuf))
		}
	}
	if s.bias != nil {
		s.bBuf[0] = m
		acc += float64(s.bias.Load(s.bBuf))
	}
	return float32(acc)
}
