package ops

import (
	"fmt"

	"dnnfusion/internal/tensor"
)

// ConvAttrs configures Conv and ConvTranspose. Slices are per spatial
// dimension; nil means 1 (strides, dilations) or 0 (pads). Pads are
// symmetric (same padding at both ends of each spatial dimension).
type ConvAttrs struct {
	Strides   []int
	Pads      []int
	Dilations []int
	Groups    int
}

func (a ConvAttrs) normalized(spatial int) ConvAttrs {
	out := ConvAttrs{Groups: a.Groups}
	if out.Groups == 0 {
		out.Groups = 1
	}
	// fill expands a per-spatial-dim attribute: nil means the default for
	// every dimension, a single value replicates across dimensions.
	fill := func(src []int, def int) []int {
		dst := make([]int, spatial)
		for i := range dst {
			switch {
			case len(src) == 0:
				dst[i] = def
			case len(src) == 1:
				dst[i] = src[0]
			default:
				dst[i] = src[i]
			}
		}
		return dst
	}
	out.Strides = fill(a.Strides, 1)
	out.Pads = fill(a.Pads, 0)
	out.Dilations = fill(a.Dilations, 1)
	return out
}

func (a ConvAttrs) key() string {
	return fmt.Sprintf("s=%v,p=%v,d=%v,g=%d", a.Strides, a.Pads, a.Dilations, a.Groups)
}

// NewConv returns an N-dimensional convolution (2-D for CNNs, 3-D for the
// paper's C3D/S3D models). Input is [N, C, S1..Sk], weight is
// [M, C/groups, K1..Kk], and an optional third input is a bias of shape [M].
// Many-to-Many per Table 2.
func NewConv(attrs ConvAttrs) Operator { return &conv{attrs: attrs} }

type conv struct{ attrs ConvAttrs }

func (c *conv) Type() string                          { return "Conv" }
func (c *conv) NumOutputs() int                       { return 1 }
func (c *conv) AttrKey() string                       { return c.attrs.key() }
func (c *conv) Properties() Properties                { return Properties{Linear: true} }
func (c *conv) Mapping(in []tensor.Shape) MappingType { return ManyToMany }

func (c *conv) outShape(in []tensor.Shape) (tensor.Shape, ConvAttrs, error) {
	if len(in) != 2 && len(in) != 3 {
		return nil, ConvAttrs{}, errInputs("Conv", "2 or 3", len(in))
	}
	x, w := in[0], in[1]
	if x.Rank() < 3 || w.Rank() != x.Rank() {
		return nil, ConvAttrs{}, fmt.Errorf("Conv: invalid ranks %v, %v", x, w)
	}
	spatial := x.Rank() - 2
	a := c.attrs.normalized(spatial)
	n, ch := x[0], x[1]
	m := w[0]
	if ch%a.Groups != 0 || m%a.Groups != 0 || w[1] != ch/a.Groups {
		return nil, ConvAttrs{}, fmt.Errorf("Conv: channel/group mismatch x=%v w=%v groups=%d", x, w, a.Groups)
	}
	if len(in) == 3 && !(in[2].Rank() == 1 && in[2][0] == m) {
		return nil, ConvAttrs{}, fmt.Errorf("Conv: bias shape %v does not match M=%d", in[2], m)
	}
	out := tensor.Shape{n, m}
	for i := 0; i < spatial; i++ {
		s := (x[2+i]+2*a.Pads[i]-a.Dilations[i]*(w[2+i]-1)-1)/a.Strides[i] + 1
		if s <= 0 {
			return nil, ConvAttrs{}, fmt.Errorf("Conv: non-positive output dim for x=%v w=%v %s", x, w, a.key())
		}
		out = append(out, s)
	}
	return out, a, nil
}

func (c *conv) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	out, _, err := c.outShape(in)
	if err != nil {
		return nil, err
	}
	return []tensor.Shape{out}, nil
}

func (c *conv) FLOPs(in []tensor.Shape) int64 {
	out, a, err := c.outShape(in)
	if err != nil {
		return 0
	}
	w := in[1]
	kernel := int64(1)
	for i := 2; i < w.Rank(); i++ {
		kernel *= int64(w[i])
	}
	f := 2 * int64(out.NumElements()) * int64(in[0][1]/a.Groups) * kernel
	if len(in) == 3 {
		f += int64(out.NumElements())
	}
	return f
}

func (c *conv) Virtualize(ins []Source, outNo int) (Source, error) {
	if outNo != 0 {
		return nil, fmt.Errorf("Conv: output %d out of range", outNo)
	}
	shapes := make([]tensor.Shape, len(ins))
	for i := range ins {
		shapes[i] = ins[i].Shape()
	}
	out, a, err := c.outShape(shapes)
	if err != nil {
		return nil, err
	}
	src := &convSource{
		shape:     out,
		x:         ins[0],
		w:         ins[1],
		a:         a,
		xShape:    shapes[0],
		wShape:    shapes[1],
		spatial:   shapes[0].Rank() - 2,
		cPerGroup: shapes[0][1] / a.Groups,
		mPerGroup: shapes[1][0] / a.Groups,
		xBuf:      make([]int, shapes[0].Rank()),
		wBuf:      make([]int, shapes[1].Rank()),
		bBuf:      make([]int, 1),
	}
	src.kernel = 1
	for i := 0; i < src.spatial; i++ {
		src.kernel *= shapes[1][2+i]
	}
	if len(ins) == 3 {
		src.bias = ins[2]
	}
	return blockedConv(src), nil
}

// blockedConv upgrades a conv source to flat inner loops when its operands
// expose flat data or can be staged into per-session scratch: the
// multiply-accumulate runs over raw slices with precomputed strides
// instead of virtual Loads through index buffers. Accumulation order
// matches the scalar path, so results are bit-for-bit equal.
func blockedConv(s *convSource) Source {
	xData, xStage, ok := flatOrStage(s.x, s.xShape.NumElements())
	if !ok {
		return s
	}
	wData, wStage, ok := flatOrStage(s.w, s.wShape.NumElements())
	if !ok {
		return s
	}
	blk := &convBlockSource{
		convSource: *s,
		xData:      xData,
		wData:      wData,
		xStage:     xStage,
		wStage:     wStage,
		xStrides:   s.xShape.Strides(),
		wStrides:   s.wShape.Strides(),
		idxBuf:     make([]int, s.shape.Rank()),
		// The conv task's GEMM-shape contraction is C/g × kernel volume;
		// tuned kernels override via ApplySchedule.
		sched: DefaultSchedule(s.cPerGroup * s.kernel),
	}
	if s.bias != nil {
		biasData, biasStage, ok := flatOrStage(s.bias, s.wShape[0])
		if !ok {
			return s
		}
		blk.biasData = biasData
		blk.biasStage = biasStage
	}
	return blk
}

type convSource struct {
	shape tensor.Shape
	x, w  Source
	bias  Source
	a     ConvAttrs
	// Shapes and derived constants hoisted from Load to Virtualize time.
	xShape, wShape       tensor.Shape
	spatial              int
	cPerGroup, mPerGroup int
	kernel               int
	xBuf                 []int
	wBuf                 []int
	bBuf                 []int
}

func (s *convSource) Shape() tensor.Shape { return s.shape }

func (s *convSource) Load(idx []int) float32 {
	xShape, wShape := s.xShape, s.wShape
	spatial := s.spatial
	n, m := idx[0], idx[1]
	cPerGroup := s.cPerGroup
	group := m / s.mPerGroup
	s.xBuf[0] = n
	s.wBuf[0] = m
	kernel := s.kernel
	var acc float64
	for ci := 0; ci < cPerGroup; ci++ {
		s.xBuf[1] = group*cPerGroup + ci
		s.wBuf[1] = ci
		for kp := 0; kp < kernel; kp++ {
			rem := kp
			ok := true
			for i := spatial - 1; i >= 0; i-- {
				k := rem % wShape[2+i]
				rem /= wShape[2+i]
				pos := idx[2+i]*s.a.Strides[i] - s.a.Pads[i] + k*s.a.Dilations[i]
				if pos < 0 || pos >= xShape[2+i] {
					ok = false
					break
				}
				s.xBuf[2+i] = pos
				s.wBuf[2+i] = k
			}
			if !ok {
				continue
			}
			acc += float64(s.x.Load(s.xBuf)) * float64(s.w.Load(s.wBuf))
		}
	}
	if s.bias != nil {
		s.bBuf[0] = m
		acc += float64(s.bias.Load(s.bBuf))
	}
	return float32(acc)
}

// convBlockSource walks the requested output range with a row-major
// odometer and computes every element with flat multiply-accumulate loops
// over the operand slices.
type convBlockSource struct {
	convSource
	xData, wData, biasData    []float32
	xStage, wStage, biasStage BlockSource
	xStrides, wStrides        []int
	idxBuf                    []int
	// sched carries the kernel's tile schedule; conv keeps its odometer
	// evaluation (every element's accumulation order is fixed by the
	// scalar oracle) but exposes the schedule's row tile as its parallel
	// chunk alignment (TileSpan), so worker lanes split on whole
	// output-row groups.
	sched Schedule
}

func (s *convBlockSource) LoadBlock(dst []float32, off, n int) {
	// Staged operands (fused producers) are re-streamed on every call:
	// inputs change between runs, and a call never outlives one kernel
	// execution.
	if s.xStage != nil {
		s.xStage.LoadBlock(s.xData, 0, len(s.xData))
	}
	if s.wStage != nil {
		s.wStage.LoadBlock(s.wData, 0, len(s.wData))
	}
	if s.biasStage != nil {
		s.biasStage.LoadBlock(s.biasData, 0, len(s.biasData))
	}
	idx := s.idxBuf
	s.shape.Unravel(off, idx)
	for t := 0; t < n; t++ {
		dst[t] = s.eval(idx)
		incIndex(s.shape, idx)
	}
}

// eval is convSource.Load with every operand access lowered to flat
// slices; the ci-outer / kernel-position-inner loop order is identical.
func (s *convBlockSource) eval(idx []int) float32 {
	n, m := idx[0], idx[1]
	group := m / s.mPerGroup
	xN := n * s.xStrides[0]
	wM := m * s.wStrides[0]
	var acc float64
	for ci := 0; ci < s.cPerGroup; ci++ {
		xBase := xN + (group*s.cPerGroup+ci)*s.xStrides[1]
		wBase := wM + ci*s.wStrides[1]
		for kp := 0; kp < s.kernel; kp++ {
			rem := kp
			ok := true
			xOff, wOff := xBase, wBase
			for i := s.spatial - 1; i >= 0; i-- {
				k := rem % s.wShape[2+i]
				rem /= s.wShape[2+i]
				pos := idx[2+i]*s.a.Strides[i] - s.a.Pads[i] + k*s.a.Dilations[i]
				if pos < 0 || pos >= s.xShape[2+i] {
					ok = false
					break
				}
				xOff += pos * s.xStrides[2+i]
				wOff += k * s.wStrides[2+i]
			}
			if !ok {
				continue
			}
			acc += float64(s.xData[xOff]) * float64(s.wData[wOff])
		}
	}
	if s.biasData != nil {
		acc += float64(s.biasData[m])
	}
	return float32(acc)
}

// NewConvTranspose returns the transposed (fractionally-strided) convolution
// used by the paper's U-Net. Input [N, C, S..], weight [C, M/groups, K..],
// optional bias [M]. Many-to-Many per Table 2.
func NewConvTranspose(attrs ConvAttrs) Operator { return &convT{attrs: attrs} }

type convT struct{ attrs ConvAttrs }

func (c *convT) Type() string                          { return "ConvTranspose" }
func (c *convT) NumOutputs() int                       { return 1 }
func (c *convT) AttrKey() string                       { return c.attrs.key() }
func (c *convT) Properties() Properties                { return Properties{Linear: true} }
func (c *convT) Mapping(in []tensor.Shape) MappingType { return ManyToMany }

func (c *convT) outShape(in []tensor.Shape) (tensor.Shape, ConvAttrs, int, error) {
	if len(in) != 2 && len(in) != 3 {
		return nil, ConvAttrs{}, 0, errInputs("ConvTranspose", "2 or 3", len(in))
	}
	x, w := in[0], in[1]
	if x.Rank() < 3 || w.Rank() != x.Rank() {
		return nil, ConvAttrs{}, 0, fmt.Errorf("ConvTranspose: invalid ranks %v, %v", x, w)
	}
	spatial := x.Rank() - 2
	a := c.attrs.normalized(spatial)
	if x[1] != w[0] || x[1]%a.Groups != 0 {
		return nil, ConvAttrs{}, 0, fmt.Errorf("ConvTranspose: channel mismatch x=%v w=%v", x, w)
	}
	m := w[1] * a.Groups
	out := tensor.Shape{x[0], m}
	for i := 0; i < spatial; i++ {
		s := (x[2+i]-1)*a.Strides[i] - 2*a.Pads[i] + a.Dilations[i]*(w[2+i]-1) + 1
		if s <= 0 {
			return nil, ConvAttrs{}, 0, fmt.Errorf("ConvTranspose: non-positive output dim")
		}
		out = append(out, s)
	}
	return out, a, m, nil
}

func (c *convT) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	out, _, _, err := c.outShape(in)
	if err != nil {
		return nil, err
	}
	return []tensor.Shape{out}, nil
}

func (c *convT) FLOPs(in []tensor.Shape) int64 {
	_, a, _, err := c.outShape(in)
	if err != nil {
		return 0
	}
	w := in[1]
	kernel := int64(1)
	for i := 2; i < w.Rank(); i++ {
		kernel *= int64(w[i])
	}
	// Every input element contributes to kernel positions for M/g outputs.
	return 2 * int64(in[0].NumElements()) * int64(w[1]) * kernel / int64(a.Groups) * int64(a.Groups)
}

func (c *convT) Virtualize(ins []Source, outNo int) (Source, error) {
	if outNo != 0 {
		return nil, fmt.Errorf("ConvTranspose: output %d out of range", outNo)
	}
	shapes := make([]tensor.Shape, len(ins))
	for i := range ins {
		shapes[i] = ins[i].Shape()
	}
	out, a, _, err := c.outShape(shapes)
	if err != nil {
		return nil, err
	}
	src := &convTSource{
		shape:     out,
		x:         ins[0],
		w:         ins[1],
		a:         a,
		xShape:    shapes[0],
		wShape:    shapes[1],
		spatial:   shapes[0].Rank() - 2,
		mPerGroup: shapes[1][1],
		cPerGroup: shapes[0][1] / a.Groups,
		xBuf:      make([]int, shapes[0].Rank()),
		wBuf:      make([]int, shapes[1].Rank()),
		bBuf:      make([]int, 1),
	}
	src.kernel = 1
	for i := 0; i < src.spatial; i++ {
		src.kernel *= shapes[1][2+i]
	}
	if len(ins) == 3 {
		src.bias = ins[2]
	}
	return src, nil
}

type convTSource struct {
	shape tensor.Shape
	x, w  Source
	bias  Source
	a     ConvAttrs
	// Shapes and derived constants hoisted from Load to Virtualize time.
	xShape, wShape       tensor.Shape
	spatial              int
	mPerGroup, cPerGroup int
	kernel               int
	xBuf                 []int
	wBuf                 []int
	bBuf                 []int
}

func (s *convTSource) Shape() tensor.Shape { return s.shape }

func (s *convTSource) Load(idx []int) float32 {
	xShape, wShape := s.xShape, s.wShape
	spatial := s.spatial
	n, m := idx[0], idx[1]
	mPerGroup := s.mPerGroup
	group := m / mPerGroup
	cPerGroup := s.cPerGroup
	s.xBuf[0] = n
	s.wBuf[1] = m % mPerGroup
	kernel := s.kernel
	var acc float64
	for ci := 0; ci < cPerGroup; ci++ {
		c := group*cPerGroup + ci
		s.xBuf[1] = c
		s.wBuf[0] = c
		for kp := 0; kp < kernel; kp++ {
			rem := kp
			ok := true
			for i := spatial - 1; i >= 0; i-- {
				k := rem % wShape[2+i]
				rem /= wShape[2+i]
				num := idx[2+i] + s.a.Pads[i] - k*s.a.Dilations[i]
				if num < 0 || num%s.a.Strides[i] != 0 {
					ok = false
					break
				}
				pos := num / s.a.Strides[i]
				if pos >= xShape[2+i] {
					ok = false
					break
				}
				s.xBuf[2+i] = pos
				s.wBuf[2+i] = k
			}
			if !ok {
				continue
			}
			acc += float64(s.x.Load(s.xBuf)) * float64(s.w.Load(s.wBuf))
		}
	}
	if s.bias != nil {
		s.bBuf[0] = m
		acc += float64(s.bias.Load(s.bBuf))
	}
	return float32(acc)
}
