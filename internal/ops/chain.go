package ops

import (
	"math"

	"dnnfusion/internal/tensor"
)

// chainSource is the fused contraction-chain kernel: a MatMul/Gemm whose A
// operand is itself rooted in a blocked contraction (optionally through
// fused pointwise stages and/or a row softmax). Instead of staging the
// whole M×K intermediate, it pulls rowTile-high row groups of the producer
// on demand and contracts them against B immediately, so the intermediate
// never exists outside an L1-sized panel.
//
// Two paths:
//
//   - exact: A rows are the producer's own float32 outputs (bit-identical
//     to what the unfused pipeline would have materialized), contracted
//     with the same ascending-k float64 accumulation as mulTileAcc — the
//     result is bit-for-bit equal to the scalar oracle.
//
//   - online: when A is a non-log innermost-axis softmax over a
//     contraction, the softmax is folded into the second contraction with
//     the streaming-rescale (flash-attention) recurrence: raw score rows
//     are pulled, and per key panel the running max m and running sum l
//     rescale the float64 accumulators by exp(m_old−m_new). The result is
//     mathematically identical but not bit-identical to the two-pass
//     softmax — this is the one documented exception to the LoadBlock
//     bit-exactness contract, bounded to a few ULPs by the float64
//     accumulation (see BlockSource).
//
// Every LoadBlock request computes whole row groups over all n output
// columns, so the produced bits are independent of how the engine splits
// the output range across lanes.
type chainSource struct {
	// scalar is the original pull-model source (matmulSource/gemmSource):
	// the semantic reference for Shape/Load and the parity oracle.
	scalar Source
	shape  tensor.Shape

	// Consumer contraction dims: out is (batch..., m, n), contracting k.
	m, n, k int

	// prod streams A row groups: the producer's blocked tree on the exact
	// path, or the raw pre-softmax score tree on the online path.
	prod   BlockSource
	online bool

	// B operand: flat backing or per-call staging, as in matmulBlockSource.
	bData        []float32
	bStage       BlockSource
	bRS          int
	outBatch     tensor.Shape
	bBatchStride []int
	batchBuf     []int
	// aMatElems is m*k, one batch matrix's footprint in prod's flat space.
	aMatElems int

	// Optional Gemm epilogue: out = alpha*acc + beta*C.
	epilogue    bool
	alpha, beta float64
	c           Source
	cShape      tensor.Shape
	cBuf        []int
	idx2        []int

	// Schedules: cons tiles the consumer (rowTile rows × jb output
	// columns); prodSched's column panel becomes the online path's key
	// panel kp (the rescale cadence over the contraction axis).
	sched, prodSched Schedule
	rowTile          int
	jb               int
	kp               int

	aBuf   []float32 // rowTile*k staged producer rows
	outBuf []float32 // rowTile*n scratch for partially-requested groups
	acc    []float64 // rowTile*n float64 accumulators
	mRun   []float64 // online running max per group row
	lRun   []float64 // online running exp-sum per group row
}

func (s *chainSource) Shape() tensor.Shape    { return s.shape }
func (s *chainSource) Load(idx []int) float32 { return s.scalar.Load(idx) }

// setSchedules installs the consumer and producer tile schedules,
// normalizing both against the chain's shape and sizing scratch.
func (s *chainSource) setSchedules(cons, prod Schedule) {
	s.sched, s.prodSched = cons, prod
	s.rowTile = normalizeRowTile(cons.RowTile)
	s.jb = normalizeColPanel(cons.ColPanel, s.n)
	s.kp = normalizeColPanel(prod.ColPanel, s.k)
	if need := s.rowTile * s.k; len(s.aBuf) < need {
		s.aBuf = make([]float32, need)
	}
	if need := s.rowTile * s.n; len(s.outBuf) < need {
		s.outBuf = make([]float32, need)
	}
	if need := s.rowTile * s.n; len(s.acc) < need {
		s.acc = make([]float64, need)
	}
	if len(s.mRun) < s.rowTile {
		s.mRun = make([]float64, s.rowTile)
		s.lRun = make([]float64, s.rowTile)
	}
}

func (s *chainSource) LoadBlock(dst []float32, off, n int) {
	mn := s.m * s.n
	stagedBatch := -1 // staging never survives a call: inputs change between runs
	bBase := 0
	for n > 0 {
		batch := off / mn
		rem := off % mn
		i := rem / s.n
		j := rem % s.n
		if batch != stagedBatch {
			bBase = 0
			if len(s.batchBuf) > 0 {
				s.outBatch.Unravel(batch, s.batchBuf)
				for d, v := range s.batchBuf {
					bBase += v * s.bBatchStride[d]
				}
			}
			if s.bStage != nil {
				s.bStage.LoadBlock(s.bData, bBase, len(s.bData))
				bBase = 0
			}
			stagedBatch = batch
		}
		// Whole row groups only: the group anchored below i is computed
		// across all n columns regardless of the requested sub-range, so
		// results never depend on lane splits or block boundaries.
		rt := s.rowTile
		i0 := i - i%rt
		g := rt
		if i0+g > s.m {
			g = s.m - i0
		}
		span := g * s.n
		lo := (i-i0)*s.n + j
		if lo == 0 && n >= span {
			s.computeGroup(dst[:span], batch, bBase, i0, g)
			dst = dst[span:]
			off += span
			n -= span
			continue
		}
		s.computeGroup(s.outBuf[:span], batch, bBase, i0, g)
		run := span - lo
		if run > n {
			run = n
		}
		copy(dst[:run], s.outBuf[lo:lo+run])
		dst = dst[run:]
		off += run
		n -= run
	}
}

// computeGroup fills out (g rows × n columns, contiguous) with output rows
// [i0, i0+g) of one batch matrix, pulling the producer rows first.
func (s *chainSource) computeGroup(out []float32, batch, bBase, i0, g int) {
	s.prod.LoadBlock(s.aBuf[:g*s.k], batch*s.aMatElems+i0*s.k, g*s.k)
	if s.online {
		s.groupOnline(out, bBase, i0, g)
	} else {
		s.groupExact(out, bBase, i0, g)
	}
}

// groupExact contracts the staged producer rows against B with the same
// ascending-k float64 accumulation as mulTileAcc — bit-identical to the
// unfused pipeline (the staged rows are the producer's exact outputs).
func (s *chainSource) groupExact(out []float32, bBase, i0, g int) {
	for j0 := 0; j0 < s.n; j0 += s.jb {
		w := s.n - j0
		if w > s.jb {
			w = s.jb
		}
		mulTileAcc(g, s.aBuf, 0, s.k, 1, s.k, s.bData, bBase, s.bRS, j0, s.acc, w)
		for r := 0; r < g; r++ {
			row := out[r*s.n+j0 : r*s.n+j0+w]
			c := s.acc[r*w : r*w+w]
			if !s.epilogue {
				for t := 0; t < w; t++ {
					row[t] = float32(c[t])
				}
				continue
			}
			for t := 0; t < w; t++ {
				acc := c[t] * s.alpha
				if s.c != nil {
					s.idx2[0], s.idx2[1] = i0+r, j0+t
					b := tensor.BroadcastIndex(s.idx2, s.cShape, s.cBuf)
					acc += s.beta * float64(s.c.Load(b))
				}
				row[t] = float32(acc)
			}
		}
	}
}

// groupOnline is the streaming-rescale softmax contraction: per key panel
// of kp raw scores, the running max and exp-sum are updated and the
// accumulators rescaled by exp(m_old−m_new), so softmax(scores)·B is
// computed in one pass without materializing the probabilities.
func (s *chainSource) groupOnline(out []float32, bBase, i0, g int) {
	n, k := s.n, s.k
	acc := s.acc[:g*n]
	for t := range acc {
		acc[t] = 0
	}
	for r := 0; r < g; r++ {
		s.mRun[r] = math.Inf(-1)
		s.lRun[r] = 0
	}
	for k0 := 0; k0 < k; k0 += s.kp {
		wk := k - k0
		if wk > s.kp {
			wk = s.kp
		}
		for r := 0; r < g; r++ {
			row := s.aBuf[r*k+k0 : r*k+k0+wk]
			pm := math.Inf(-1)
			for _, v := range row {
				pm = math.Max(pm, float64(v))
			}
			m := s.mRun[r]
			a := acc[r*n : r*n+n]
			if pm > m {
				// Guard m = −Inf: exp(−Inf − pm) would poison the (all
				// zero) accumulators with NaN on the first panel.
				if !math.IsInf(m, -1) {
					scale := math.Exp(m - pm)
					s.lRun[r] *= scale
					for t := range a {
						a[t] *= scale
					}
				}
				m = pm
				s.mRun[r] = pm
			}
			l := s.lRun[r]
			for kk, v := range row {
				p := math.Exp(float64(v) - m)
				l += p
				bRow := s.bData[bBase+(k0+kk)*s.bRS : bBase+(k0+kk)*s.bRS+n]
				for t, bv := range bRow {
					a[t] += p * float64(bv)
				}
			}
			s.lRun[r] = l
		}
	}
	for r := 0; r < g; r++ {
		inv := 1 / s.lRun[r]
		a := acc[r*n : r*n+n]
		row := out[r*n : r*n+n]
		if !s.epilogue {
			for t := 0; t < n; t++ {
				row[t] = float32(a[t] * inv)
			}
			continue
		}
		for t := 0; t < n; t++ {
			v := a[t] * inv * s.alpha
			if s.c != nil {
				s.idx2[0], s.idx2[1] = i0+r, t
				b := tensor.BroadcastIndex(s.idx2, s.cShape, s.cBuf)
				v += s.beta * float64(s.c.Load(b))
			}
			row[t] = float32(v)
		}
	}
}

// contractionRooted reports whether a blocked source tree is rooted in a
// heavy contraction (MatMul/Gemm or an already-fused chain), possibly
// through fused pointwise, softmax, or reorganize stages — the legality
// condition for streaming it as a chain producer.
func contractionRooted(s Source) bool {
	switch v := s.(type) {
	case *matmulBlockSource, *gemmBlockSource, *chainSource:
		return true
	case *softmaxBlockSource:
		return contractionRooted(v.blk)
	case *reorganizeBlockSource:
		return contractionRooted(v.ins[0])
	case *pointwiseBlockSource:
		for i := range v.blkIns {
			in := &v.blkIns[i]
			if in.kind == pwStream && contractionRooted(in.blk) {
				return true
			}
		}
	}
	return false
}

// chainProducer classifies a consumer's A operand: a non-log innermost
// softmax directly over a contraction streams online (prod = the raw score
// tree); any other contraction-rooted blocked tree streams exactly (prod =
// the tree itself, including a log-softmax — its rows are computed with
// the exact two-pass recurrence).
func chainProducer(a Source) (prod BlockSource, online, ok bool) {
	if sm, isSM := a.(*softmaxBlockSource); isSM && !sm.log && contractionRooted(sm.blk) {
		return sm.blk, true, true
	}
	if blk, isBlk := AsBlock(a); isBlk && contractionRooted(a) {
		return blk, false, true
	}
	return nil, false, false
}

// chainMatMul upgrades a matmul whose A operand is a fused contraction
// chain to the streaming chainSource. nil when the shape is not chainable
// (transposed operands, broadcast A batch, unstageable B).
func chainMatMul(s *matmulSource) *chainSource {
	if s.transA || s.transB {
		return nil
	}
	prod, online, ok := chainProducer(s.a)
	if !ok {
		return nil
	}
	out := s.shape
	outBatch := out[:out.Rank()-2]
	// A's batch dims must equal the output batch exactly (no broadcast):
	// the producer's flat space is then batch-major over m×k matrices.
	if s.ar-2 != outBatch.Rank() || !tensor.Shape(s.aShape[:s.ar-2]).Equal(outBatch) {
		return nil
	}
	bData, bStage, ok := flatOrStage(s.b, s.k*s.n)
	if !ok {
		return nil
	}
	c := &chainSource{
		scalar:       s,
		shape:        out,
		m:            s.m,
		n:            s.n,
		k:            s.k,
		prod:         prod,
		online:       online,
		bData:        bData,
		bStage:       bStage,
		bRS:          s.bShape[s.br-1],
		outBatch:     outBatch,
		bBatchStride: batchStrides(s.bShape, outBatch),
		batchBuf:     make([]int, outBatch.Rank()),
		aMatElems:    s.m * s.k,
	}
	c.setSchedules(DefaultSchedule(s.k), DefaultSchedule(s.k))
	return c
}

// chainGemm mirrors chainMatMul for the rank-2 Gemm, carrying the
// alpha/beta/C epilogue through the chain.
func chainGemm(s *gemmSource, shapes []tensor.Shape) *chainSource {
	if s.op.transA || s.op.transB {
		return nil
	}
	prod, online, ok := chainProducer(s.a)
	if !ok {
		return nil
	}
	bData, bStage, ok := flatOrStage(s.b, shapes[1].NumElements())
	if !ok {
		return nil
	}
	m := s.shape[0]
	c := &chainSource{
		scalar:    s,
		shape:     s.shape,
		m:         m,
		n:         s.n,
		k:         s.k,
		prod:      prod,
		online:    online,
		bData:     bData,
		bStage:    bStage,
		bRS:       shapes[1][1],
		outBatch:  tensor.Shape{},
		aMatElems: m * s.k,
		epilogue:  s.op.alpha != 1 || s.c != nil,
		alpha:     float64(s.op.alpha),
		beta:      float64(s.op.beta),
		cShape:    s.cShape,
	}
	if s.c != nil {
		c.c = s.c
		c.cBuf = make([]int, s.cShape.Rank())
	}
	c.idx2 = make([]int, 2)
	c.setSchedules(DefaultSchedule(s.k), DefaultSchedule(s.k))
	return c
}
