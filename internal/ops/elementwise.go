package ops

import (
	"fmt"
	"math"

	"dnnfusion/internal/tensor"
)

// pointwise is the shared implementation of elementwise operators: the
// output element at idx is fn applied to the broadcast-aligned input
// elements. With equal input/output shapes this is the paper's One-to-One
// class; when any input is expanded by broadcasting it is classified
// One-to-Many ("Elementwise w/ broadcast" in Table 2).
type pointwise struct {
	name  string
	arity int
	fn    func(args []float32) float32
	// fn1/fn2 are the direct unary/binary forms of fn, set by
	// newUnary/newBinary: the blocked inner loop calls them without
	// staging an args slice per element, which is most of the remaining
	// per-element cost of a fused elementwise chain.
	fn1     func(float32) float32
	fn2     func(a, b float32) float32
	props   Properties
	attrKey string
	// flopsPerElem is usually 1 (the paper's Table 4 convention).
	flopsPerElem int64
	// attrs holds structured attributes for introspection (Attr), mirroring
	// the attrKey contents of parameterized operators (Clip, LeakyRelu,
	// AddConst, ...). nil for attribute-free operators.
	attrs map[string]any
}

func (p *pointwise) Type() string           { return p.name }
func (p *pointwise) NumOutputs() int        { return 1 }
func (p *pointwise) Properties() Properties { return p.props }
func (p *pointwise) AttrKey() string        { return p.attrKey }

func (p *pointwise) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	if len(in) != p.arity {
		return nil, errInputs(p.name, fmt.Sprint(p.arity), len(in))
	}
	out, err := tensor.BroadcastAll(in...)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.name, err)
	}
	return []tensor.Shape{out}, nil
}

func (p *pointwise) Mapping(in []tensor.Shape) MappingType {
	if in == nil {
		return OneToOne
	}
	out, err := tensor.BroadcastAll(in...)
	if err != nil {
		return OneToOne
	}
	for _, s := range in {
		if tensor.IsBroadcastExpansion(s, out) {
			return OneToMany
		}
	}
	return OneToOne
}

func (p *pointwise) FLOPs(in []tensor.Shape) int64 {
	out, err := tensor.BroadcastAll(in...)
	if err != nil {
		return 0
	}
	return p.flopsPerElem * int64(out.NumElements())
}

func (p *pointwise) Virtualize(ins []Source, outNo int) (Source, error) {
	if outNo != 0 {
		return nil, fmt.Errorf("%s: output %d out of range", p.name, outNo)
	}
	if len(ins) != p.arity {
		return nil, errInputs(p.name, fmt.Sprint(p.arity), len(ins))
	}
	shapes := make([]tensor.Shape, len(ins))
	for i, s := range ins {
		shapes[i] = s.Shape()
	}
	out, err := tensor.BroadcastAll(shapes...)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.name, err)
	}
	src := &pointwiseSource{
		shape:    out,
		ins:      ins,
		inShapes: shapes,
		fn:       p.fn,
		args:     make([]float32, len(ins)),
		bufs:     make([][]int, len(ins)),
	}
	for i := range ins {
		src.bufs[i] = make([]int, ins[i].Shape().Rank())
	}
	return blockedPointwise(p, src), nil
}

// blockedPointwise upgrades a pointwise source to its blocked form when
// every input can stream flat memory: same-shape inputs stream directly,
// single-element inputs load once per block, and suffix broadcasts (a [C]
// bias against [N,C]) stream periodically. Any other broadcast pattern
// (middle-axis expansion) keeps the scalar source.
func blockedPointwise(p *pointwise, s *pointwiseSource) Source {
	ins := make([]pwBlockInput, len(s.ins))
	for i, in := range s.ins {
		inShape := s.inShapes[i]
		if inShape.NumElements() == 1 {
			ins[i] = pwBlockInput{kind: pwScalar, src: in, idx: make([]int, inShape.Rank())}
			continue
		}
		blk, ok := AsBlock(in)
		if !ok {
			return s
		}
		period, ok := suffixPeriod(inShape, s.shape)
		if !ok {
			return s
		}
		if period == s.shape.NumElements() {
			// Streaming input: alias flat backing directly (tensors,
			// arena views, reshaped weights) so the inner loop reads the
			// operand in place; only lazy producers stage into a buffer.
			if data, isFlat := FlatData(in); isFlat {
				ins[i] = pwBlockInput{kind: pwFlat, data: data}
				continue
			}
			ins[i] = pwBlockInput{kind: pwStream, blk: blk, buf: make([]float32, blockLen)}
			continue
		}
		ins[i] = pwBlockInput{kind: pwPeriod, blk: blk, period: period, buf: make([]float32, blockLen)}
	}
	return &pointwiseBlockSource{pointwiseSource: *s, fn1: p.fn1, fn2: p.fn2, blkIns: ins}
}

type pwInKind uint8

const (
	pwFlat   pwInKind = iota // flat-backed stream: read the backing in place
	pwStream                 // blocked producer: stage a stripe, flat order matches
	pwScalar                 // single-element input, loaded once per block
	pwPeriod                 // suffix broadcast: input repeats every period
)

type pwBlockInput struct {
	kind   pwInKind
	blk    BlockSource
	src    Source    // pwScalar only
	idx    []int     // pwScalar only: all-zero index scratch
	data   []float32 // pwFlat only: the operand's row-major backing
	period int
	val    float32
	buf    []float32
	// cur is the current stripe: an alias of data for pwFlat, the staged
	// buf otherwise. Set per stripe by LoadBlock.
	cur []float32
}

// pointwiseBlockSource evaluates a fused elementwise chain over flat
// blockLen stripes: inputs are staged into per-input buffers (weights,
// arena views, and blocked producers stream without any index math), then
// the scalar function runs over the stripe — through the direct
// unary/binary form when the operator has one, so the common chain spends
// one call per element instead of staging an args slice. Load keeps the
// scalar semantics for the reference path.
type pointwiseBlockSource struct {
	pointwiseSource
	fn1    func(float32) float32
	fn2    func(a, b float32) float32
	blkIns []pwBlockInput
	// stripe is the streaming granularity: blockLen by default, rounded up
	// to a whole number of a heavy producer's row tiles by ApplySchedule so
	// the chain's staging loads keep the producer on its tiled path. span
	// is that producer tile span (0 when none), forwarded by TileSpan.
	stripe int
	span   int
}

func (s *pointwiseBlockSource) LoadBlock(dst []float32, off, n int) {
	stripe := s.stripe
	if stripe < 1 {
		stripe = blockLen
	}
	for n > 0 {
		c := n
		if c > stripe {
			c = stripe
		}
		for i := range s.blkIns {
			in := &s.blkIns[i]
			switch in.kind {
			case pwFlat:
				in.cur = in.data[off : off+c]
			case pwStream:
				in.blk.LoadBlock(in.buf[:c], off, c)
				in.cur = in.buf[:c]
			case pwScalar:
				in.val = in.src.Load(in.idx)
			case pwPeriod:
				loadPeriodic(in.blk, in.buf[:c], off, in.period)
				in.cur = in.buf[:c]
			}
		}
		s.evalStripe(dst[:c], c)
		dst = dst[c:]
		off += c
		n -= c
	}
}

// evalStripe applies the operator to one staged stripe of c elements.
func (s *pointwiseBlockSource) evalStripe(dst []float32, c int) {
	switch {
	case s.fn1 != nil:
		in := &s.blkIns[0]
		if in.kind == pwScalar {
			v := s.fn1(in.val)
			for j := 0; j < c; j++ {
				dst[j] = v
			}
			return
		}
		buf := in.cur
		for j := 0; j < c; j++ {
			dst[j] = s.fn1(buf[j])
		}
	case s.fn2 != nil:
		a, b := &s.blkIns[0], &s.blkIns[1]
		switch {
		case a.kind == pwScalar && b.kind == pwScalar:
			v := s.fn2(a.val, b.val)
			for j := 0; j < c; j++ {
				dst[j] = v
			}
		case a.kind == pwScalar:
			av, bb := a.val, b.cur
			for j := 0; j < c; j++ {
				dst[j] = s.fn2(av, bb[j])
			}
		case b.kind == pwScalar:
			ab, bv := a.cur, b.val
			for j := 0; j < c; j++ {
				dst[j] = s.fn2(ab[j], bv)
			}
		default:
			ab, bb := a.cur, b.cur
			for j := 0; j < c; j++ {
				dst[j] = s.fn2(ab[j], bb[j])
			}
		}
	default:
		args := s.args
		for j := 0; j < c; j++ {
			for i := range s.blkIns {
				in := &s.blkIns[i]
				if in.kind == pwScalar {
					args[i] = in.val
				} else {
					args[i] = in.cur[j]
				}
			}
			dst[j] = s.fn(args)
		}
	}
}

// ScalarFunc exposes the elementwise function for code generation.
func (p *pointwise) ScalarFunc() func(args []float32) float32 { return p.fn }

// Arity returns the number of inputs of the pointwise operator.
func (p *pointwise) Arity() int { return p.arity }

// Pointwise is implemented by elementwise operators; the code generator uses
// it when composing One-to-One operators into fused scalar expressions.
type Pointwise interface {
	ScalarFunc() func(args []float32) float32
	Arity() int
}

type pointwiseSource struct {
	shape tensor.Shape
	ins   []Source
	// inShapes are the input shapes hoisted at Virtualize time so Load
	// never re-queries them.
	inShapes []tensor.Shape
	fn       func(args []float32) float32
	args     []float32
	bufs     [][]int
}

func (s *pointwiseSource) Shape() tensor.Shape { return s.shape }

func (s *pointwiseSource) Load(idx []int) float32 {
	for i, in := range s.ins {
		b := tensor.BroadcastIndex(idx, s.inShapes[i], s.bufs[i])
		s.args[i] = in.Load(b)
	}
	return s.fn(s.args)
}

// --- Unary operators -------------------------------------------------------

func newUnary(name string, f func(float32) float32, props Properties) Operator {
	return &pointwise{
		name:         name,
		arity:        1,
		fn:           func(a []float32) float32 { return f(a[0]) },
		fn1:          f,
		props:        props,
		flopsPerElem: 1,
	}
}

func f64(f func(float64) float64) func(float32) float32 {
	return func(x float32) float32 { return float32(f(float64(x))) }
}

var linear = Properties{Linear: true}

// Unary elementwise operator constructors (One-to-One in Table 2).
func NewRelu() Operator {
	return newUnary("Relu", func(x float32) float32 { return maxf(x, 0) }, Properties{})
}
func NewAbs() Operator {
	return newUnary("Abs", func(x float32) float32 { return absf(x) }, Properties{})
}
func NewNeg() Operator   { return newUnary("Neg", func(x float32) float32 { return -x }, linear) }
func NewExp() Operator   { return newUnary("Exp", f64(math.Exp), Properties{}) }
func NewLog() Operator   { return newUnary("Log", f64(math.Log), Properties{}) }
func NewSqrt() Operator  { return newUnary("Sqrt", f64(math.Sqrt), Properties{}) }
func NewErf() Operator   { return newUnary("Erf", f64(math.Erf), Properties{}) }
func NewSin() Operator   { return newUnary("Sin", f64(math.Sin), Properties{}) }
func NewCos() Operator   { return newUnary("Cos", f64(math.Cos), Properties{}) }
func NewAsin() Operator  { return newUnary("Asin", f64(math.Asin), Properties{}) }
func NewTanh() Operator  { return newUnary("Tanh", f64(math.Tanh), Properties{}) }
func NewCeil() Operator  { return newUnary("Ceil", f64(math.Ceil), Properties{}) }
func NewFloor() Operator { return newUnary("Floor", f64(math.Floor), Properties{}) }
func NewRound() Operator { return newUnary("Round", f64(math.RoundToEven), Properties{}) }
func NewSquare() Operator {
	return newUnary("Square", func(x float32) float32 { return x * x }, Properties{})
}
func NewReciprocal() Operator {
	return newUnary("Reciprocal", func(x float32) float32 { return 1 / x }, Properties{})
}
func NewSigmoid() Operator {
	return newUnary("Sigmoid", func(x float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(x))))
	}, Properties{})
}
func NewSoftplus() Operator {
	return newUnary("Softplus", func(x float32) float32 {
		return float32(math.Log1p(math.Exp(float64(x))))
	}, Properties{})
}
func NewNot() Operator {
	return newUnary("Not", func(x float32) float32 {
		if x == 0 {
			return 1
		}
		return 0
	}, Properties{})
}

// NewIdentity returns the no-op operator (used when rewrites eliminate work).
func NewIdentity() Operator {
	op := newUnary("Identity", func(x float32) float32 { return x }, linear).(*pointwise)
	op.flopsPerElem = 0
	return op
}

// NewCast models ONNX Cast; with a single float32 dtype it is an identity
// but is kept as a distinct One-to-One operator as in Table 2.
func NewCast() Operator {
	op := newUnary("Cast", func(x float32) float32 { return x }, linear).(*pointwise)
	op.flopsPerElem = 0
	return op
}

// NewLeakyRelu returns LeakyRelu with the given negative slope.
func NewLeakyRelu(alpha float32) Operator {
	op := newUnary("LeakyRelu", func(x float32) float32 {
		if x < 0 {
			return alpha * x
		}
		return x
	}, Properties{}).(*pointwise)
	op.attrKey = fmt.Sprintf("alpha=%g", alpha)
	op.attrs = map[string]any{"alpha": alpha}
	return op
}

// NewClip clamps elements into [min, max].
func NewClip(min, max float32) Operator {
	op := newUnary("Clip", func(x float32) float32 {
		return minf(maxf(x, min), max)
	}, Properties{}).(*pointwise)
	op.attrKey = fmt.Sprintf("min=%g,max=%g", min, max)
	op.attrs = map[string]any{"min": min, "max": max}
	return op
}

// NewBitShift shifts the integer value of each element left (positive k) or
// right (negative k) by |k| bits; on float data this is an exact multiply or
// divide by 2^|k|. Left shift is linear, which is what licenses the paper's
// ReduceSum(BitShift(A)) → BitShift(ReduceSum(A)) commutation.
func NewBitShift(k int) Operator {
	scale := float32(1)
	for i := 0; i < k; i++ {
		scale *= 2
	}
	for i := 0; i > k; i-- {
		scale /= 2
	}
	op := newUnary("BitShift", func(x float32) float32 { return x * scale }, linear).(*pointwise)
	op.attrKey = fmt.Sprintf("k=%d", k)
	return op
}

// NewPowConst raises each element to a constant power (Pow with a scalar
// exponent, the form transformer LayerNorm decompositions use).
func NewPowConst(p float32) Operator {
	op := newUnary("Pow", func(x float32) float32 {
		if p == 2 {
			return x * x
		}
		return float32(math.Pow(float64(x), float64(p)))
	}, Properties{}).(*pointwise)
	op.attrKey = fmt.Sprintf("p=%g", p)
	op.attrs = map[string]any{"p": p}
	return op
}

// NewAddConst adds a scalar constant elementwise (e.g. the "+1" produced by
// the distributive rewrite A + A⊙B → A⊙(B+1)).
func NewAddConst(c float32) Operator {
	op := newUnary("AddConst", func(x float32) float32 { return x + c }, linear).(*pointwise)
	op.attrKey = fmt.Sprintf("c=%g", c)
	op.attrs = map[string]any{"c": c}
	return op
}

// NewMulConst multiplies by a scalar constant elementwise.
func NewMulConst(c float32) Operator {
	op := newUnary("MulConst", func(x float32) float32 { return x * c }, linear).(*pointwise)
	op.attrKey = fmt.Sprintf("c=%g", c)
	op.attrs = map[string]any{"c": c}
	return op
}

// --- Binary and ternary operators ------------------------------------------

func newBinary(name string, f func(a, b float32) float32, props Properties) Operator {
	return &pointwise{
		name:         name,
		arity:        2,
		fn:           func(a []float32) float32 { return f(a[0], a[1]) },
		fn2:          f,
		props:        props,
		flopsPerElem: 1,
	}
}

var (
	addProps = Properties{Associative: true, Commutative: true, Linear: true}
	mulProps = Properties{Associative: true, Commutative: true, Distributive: true}
)

func NewAdd() Operator {
	return newBinary("Add", func(a, b float32) float32 { return a + b }, addProps)
}
func NewSub() Operator {
	return newBinary("Sub", func(a, b float32) float32 { return a - b }, Properties{Linear: true})
}
func NewMul() Operator {
	return newBinary("Mul", func(a, b float32) float32 { return a * b }, mulProps)
}
func NewDiv() Operator {
	return newBinary("Div", func(a, b float32) float32 { return a / b }, Properties{})
}
func NewMin() Operator {
	return newBinary("Min", minf, Properties{Associative: true, Commutative: true})
}
func NewMax() Operator {
	return newBinary("Max", maxf, Properties{Associative: true, Commutative: true})
}
func NewPow() Operator {
	return newBinary("PowT", func(a, b float32) float32 {
		return float32(math.Pow(float64(a), float64(b)))
	}, Properties{})
}
func NewGreater() Operator {
	return newBinary("Greater", func(a, b float32) float32 {
		if a > b {
			return 1
		}
		return 0
	}, Properties{})
}
func NewEqual() Operator {
	return newBinary("Equal", func(a, b float32) float32 {
		if a == b {
			return 1
		}
		return 0
	}, Properties{Commutative: true})
}

// NewPRelu is the parametric Relu: x when x>=0, slope*x otherwise, with the
// slope tensor broadcast against x.
func NewPRelu() Operator {
	return newBinary("PRelu", func(x, s float32) float32 {
		if x < 0 {
			return s * x
		}
		return x
	}, Properties{})
}

// NewWhere selects elementwise between two tensors by a 0/1 condition.
func NewWhere() Operator {
	return &pointwise{
		name:  "Where",
		arity: 3,
		fn: func(a []float32) float32 {
			if a[0] != 0 {
				return a[1]
			}
			return a[2]
		},
		flopsPerElem: 1,
	}
}

func maxf(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func absf(a float32) float32 {
	if a < 0 {
		return -a
	}
	return a
}
