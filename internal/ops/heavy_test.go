package ops

import (
	"math"
	"testing"
	"testing/quick"

	"dnnfusion/internal/tensor"
)

func TestMatMul2D(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := tensor.FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	got := mustEval1(t, NewMatMul(), a, b)
	want := tensor.FromSlice([]float32{58, 64, 139, 154}, 2, 2)
	if !tensor.AllClose(got, want, 1e-5) {
		t.Errorf("MatMul = %v, want %v", got.Data(), want.Data())
	}
	if f := NewMatMul().FLOPs([]tensor.Shape{a.Shape(), b.Shape()}); f != 2*2*3*2 {
		t.Errorf("MatMul FLOPs = %d, want 24", f)
	}
}

func TestMatMulBatchBroadcast(t *testing.T) {
	a := tensor.New(3, 2, 4).Rand(1)
	b := tensor.New(1, 4, 5).Rand(2)
	got := mustEval1(t, NewMatMul(), a, b)
	if !got.Shape().Equal(tensor.Of(3, 2, 5)) {
		t.Fatalf("batched MatMul shape = %v", got.Shape())
	}
	// Check batch 2 against a manual 2-D multiply.
	for i := 0; i < 2; i++ {
		for j := 0; j < 5; j++ {
			var want float64
			for k := 0; k < 4; k++ {
				want += float64(a.At(2, i, k)) * float64(b.At(0, k, j))
			}
			if math.Abs(float64(got.At(2, i, j))-want) > 1e-5 {
				t.Fatalf("batched MatMul[2,%d,%d] = %v, want %v", i, j, got.At(2, i, j), want)
			}
		}
	}
}

func TestGemmTransposeAndBias(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2) // A^T is 2x3
	b := tensor.FromSlice([]float32{1, 0, 0, 1, 1, 1}, 3, 2)
	c := tensor.FromSlice([]float32{10, 20}, 2)
	got := mustEval1(t, NewGemm(1, 1, true, false), a, b, c)
	// A^T = [[1,3,5],[2,4,6]]; A^T*B = [[1+5, 3+5],[2+6, 4+6]] = [[6,8],[8,10]]
	want := tensor.FromSlice([]float32{16, 28, 18, 30}, 2, 2)
	if !tensor.AllClose(got, want, 1e-5) {
		t.Errorf("Gemm = %v, want %v", got.Data(), want.Data())
	}
}

// Property: MatMul distributes over addition (linearity), the algebraic fact
// the paper's distributive rewrites on GEMM rely on (Figure 2b).
func TestMatMulDistributiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a := tensor.New(3, 4).Rand(seed)
		b := tensor.New(3, 4).Rand(seed + 1)
		c := tensor.New(4, 2).Rand(seed + 2)
		mm := NewMatMul()
		ab, _ := Eval1(NewAdd(), a, b)
		lhs, _ := Eval1(mm, ab, c)
		ac, _ := Eval1(mm, a, c)
		bc, _ := Eval1(mm, b, c)
		rhs, _ := Eval1(NewAdd(), ac, bc)
		return tensor.AllClose(lhs, rhs, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEinsumMatchesMatMul(t *testing.T) {
	a := tensor.New(4, 3).Rand(11)
	b := tensor.New(3, 5).Rand(12)
	em := mustEval1(t, NewEinsum("ij,jk->ik"), a, b)
	mm := mustEval1(t, NewMatMul(), a, b)
	if !tensor.AllClose(em, mm, 1e-5) {
		t.Errorf("Einsum ij,jk->ik != MatMul (max diff %g)", tensor.MaxAbsDiff(em, mm))
	}
	// Attention-style contraction with batch and head dims.
	q := tensor.New(2, 2, 3, 4).Rand(13)
	k := tensor.New(2, 2, 5, 4).Rand(14)
	scores := mustEval1(t, NewEinsum("bhqd,bhkd->bhqk"), q, k)
	if !scores.Shape().Equal(tensor.Of(2, 2, 3, 5)) {
		t.Fatalf("einsum attention shape = %v", scores.Shape())
	}
	var want float64
	for d := 0; d < 4; d++ {
		want += float64(q.At(1, 0, 2, d)) * float64(k.At(1, 0, 4, d))
	}
	if math.Abs(float64(scores.At(1, 0, 2, 4))-want) > 1e-5 {
		t.Errorf("einsum attention value = %v, want %v", scores.At(1, 0, 2, 4), want)
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 1x1x3x3 input, 1x1x2x2 kernel of ones: each output = window sum.
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	w := tensor.Full(1, 1, 1, 2, 2)
	got := mustEval1(t, NewConv(ConvAttrs{}), x, w)
	want := tensor.FromSlice([]float32{12, 16, 24, 28}, 1, 1, 2, 2)
	if !tensor.AllClose(got, want, 1e-5) {
		t.Errorf("Conv = %v, want %v", got.Data(), want.Data())
	}
}

func TestConv2DStridePadBias(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	w := tensor.Full(1, 1, 1, 3, 3)
	bias := tensor.FromSlice([]float32{100}, 1)
	got := mustEval1(t, NewConv(ConvAttrs{Strides: []int{2}, Pads: []int{1}}), x, w, bias)
	if !got.Shape().Equal(tensor.Of(1, 1, 2, 2)) {
		t.Fatalf("Conv stride/pad shape = %v", got.Shape())
	}
	// Top-left padded window covers elements {1,2,4,5} = 12, plus bias.
	if got.At(0, 0, 0, 0) != 112 {
		t.Errorf("Conv[0,0,0,0] = %v, want 112", got.At(0, 0, 0, 0))
	}
}

func TestConvGroupsDepthwise(t *testing.T) {
	// Depthwise conv: groups == channels; each channel convolved separately.
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4, // channel 0
		10, 20, 30, 40, // channel 1
	}, 1, 2, 2, 2)
	w := tensor.FromSlice([]float32{1, 1, 1, 1, 2, 2, 2, 2}, 2, 1, 2, 2)
	got := mustEval1(t, NewConv(ConvAttrs{Groups: 2}), x, w)
	want := tensor.FromSlice([]float32{10, 200}, 1, 2, 1, 1)
	if !tensor.AllClose(got, want, 1e-5) {
		t.Errorf("depthwise Conv = %v, want %v", got.Data(), want.Data())
	}
}

func TestConv3D(t *testing.T) {
	x := tensor.Full(1, 1, 1, 2, 2, 2)
	w := tensor.Full(1, 1, 1, 2, 2, 2)
	got := mustEval1(t, NewConv(ConvAttrs{}), x, w)
	if !got.Shape().Equal(tensor.Of(1, 1, 1, 1, 1)) || got.At(0, 0, 0, 0, 0) != 8 {
		t.Errorf("Conv3D = %v %v, want [1x1x1x1x1] 8", got.Shape(), got.Data())
	}
}

func TestConvTransposeInvertsStride(t *testing.T) {
	// ConvTranspose with a delta kernel scatters inputs at stride positions.
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	w := tensor.FromSlice([]float32{1}, 1, 1, 1, 1)
	got := mustEval1(t, NewConvTranspose(ConvAttrs{Strides: []int{2}}), x, w)
	if !got.Shape().Equal(tensor.Of(1, 1, 3, 3)) {
		t.Fatalf("ConvTranspose shape = %v", got.Shape())
	}
	if got.At(0, 0, 0, 0) != 1 || got.At(0, 0, 0, 2) != 2 || got.At(0, 0, 2, 2) != 4 || got.At(0, 0, 1, 1) != 0 {
		t.Errorf("ConvTranspose values wrong: %v", got.Data())
	}
}

func TestConvTransposeMatchesGradShape(t *testing.T) {
	// ConvTranspose output shape must invert Conv's shape formula.
	x := tensor.New(1, 3, 8, 8).Rand(5)
	w := tensor.New(3, 4, 3, 3).Rand(6)
	op := NewConvTranspose(ConvAttrs{Strides: []int{2}, Pads: []int{1}})
	got := mustEval1(t, op, x, w)
	if !got.Shape().Equal(tensor.Of(1, 4, 15, 15)) {
		t.Errorf("ConvTranspose shape = %v, want [1x4x15x15]", got.Shape())
	}
}

func TestMaxAveragePool(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	mp := mustEval1(t, NewMaxPool(PoolAttrs{Kernel: []int{2}, Strides: []int{1}}), x)
	wantM := tensor.FromSlice([]float32{5, 6, 8, 9}, 1, 1, 2, 2)
	if !tensor.AllClose(mp, wantM, 0) {
		t.Errorf("MaxPool = %v, want %v", mp.Data(), wantM.Data())
	}
	ap := mustEval1(t, NewAveragePool(PoolAttrs{Kernel: []int{2}, Strides: []int{1}}), x)
	wantA := tensor.FromSlice([]float32{3, 4, 6, 7}, 1, 1, 2, 2)
	if !tensor.AllClose(ap, wantA, 1e-5) {
		t.Errorf("AveragePool = %v, want %v", ap.Data(), wantA.Data())
	}
	gap := mustEval1(t, NewGlobalAveragePool(), x)
	if !gap.Shape().Equal(tensor.Of(1, 1, 1, 1)) || gap.At(0, 0, 0, 0) != 5 {
		t.Errorf("GlobalAveragePool = %v %v", gap.Shape(), gap.Data())
	}
}

func TestAveragePoolPadExcluded(t *testing.T) {
	x := tensor.FromSlice([]float32{4}, 1, 1, 1, 1)
	ap := mustEval1(t, NewAveragePool(PoolAttrs{Kernel: []int{2}, Strides: []int{1}, Pads: []int{1}}), x)
	// Every window holds only the single real element; padding excluded.
	for _, v := range ap.Data() {
		if v != 4 {
			t.Fatalf("AveragePool count_include_pad=false violated: %v", ap.Data())
		}
	}
}

func TestReduceKinds(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	cases := []struct {
		kind ReduceKind
		axis int
		want []float32
		dims tensor.Shape
	}{
		{ReduceSum, 1, []float32{6, 15}, tensor.Of(2)},
		{ReduceMean, 1, []float32{2, 5}, tensor.Of(2)},
		{ReduceProd, 1, []float32{6, 120}, tensor.Of(2)},
		{ReduceMax, 0, []float32{4, 5, 6}, tensor.Of(3)},
		{ReduceMin, 0, []float32{1, 2, 3}, tensor.Of(3)},
	}
	for _, c := range cases {
		got := mustEval1(t, NewReduce(c.kind, false, c.axis), x)
		if !got.Shape().Equal(c.dims) {
			t.Errorf("%v shape = %v, want %v", c.kind, got.Shape(), c.dims)
			continue
		}
		want := tensor.FromSlice(c.want, c.dims...)
		if !tensor.AllClose(got, want, 1e-5) {
			t.Errorf("%v = %v, want %v", c.kind, got.Data(), c.want)
		}
	}
	// keepDims preserves rank.
	kd := mustEval1(t, NewReduce(ReduceSum, true, 1), x)
	if !kd.Shape().Equal(tensor.Of(2, 1)) {
		t.Errorf("keepDims shape = %v, want [2x1]", kd.Shape())
	}
	// Reduce over all axes.
	all := mustEval1(t, NewReduce(ReduceSum, false), x)
	if all.Shape().Rank() != 0 || all.At() != 21 {
		t.Errorf("full reduce = %v %v", all.Shape(), all.Data())
	}
}

// Property: ReduceSum is linear — the algebraic fact behind the paper's
// commutative rewrites (ReduceSum(BitShift(A)) == BitShift(ReduceSum(A))).
func TestReduceSumLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a := tensor.New(3, 5).Rand(seed)
		b := tensor.New(3, 5).Rand(seed + 9)
		rs := NewReduce(ReduceSum, false, 1)
		ab, _ := Eval1(NewAdd(), a, b)
		lhs, _ := Eval1(rs, ab)
		ra, _ := Eval1(rs, a)
		rb, _ := Eval1(rs, b)
		rhs, _ := Eval1(NewAdd(), ra, rb)
		return tensor.AllClose(lhs, rhs, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCumSum(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 4)
	got := mustEval1(t, NewCumSum(0), x)
	want := tensor.FromSlice([]float32{1, 3, 6, 10}, 4)
	if !tensor.AllClose(got, want, 1e-6) {
		t.Errorf("CumSum = %v, want %v", got.Data(), want.Data())
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	x := tensor.New(3, 7).Rand(21)
	sm := mustEval1(t, NewSoftmax(-1), x)
	for i := 0; i < 3; i++ {
		var sum float64
		for j := 0; j < 7; j++ {
			v := float64(sm.At(i, j))
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v outside [0,1]", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("softmax row %d sums to %v", i, sum)
		}
	}
	// LogSoftmax == log(Softmax).
	lsm := mustEval1(t, NewLogSoftmax(-1), x)
	for off, v := range sm.Data() {
		if math.Abs(math.Log(float64(v))-float64(lsm.Data()[off])) > 1e-5 {
			t.Fatalf("LogSoftmax mismatch at %d", off)
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	x := tensor.FromSlice([]float32{1000, 1001, 1002}, 3)
	sm := mustEval1(t, NewSoftmax(0), x)
	for _, v := range sm.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax not stable on large inputs: %v", sm.Data())
		}
	}
}

func TestBatchNormalization(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	scale := tensor.FromSlice([]float32{2, 1}, 2)
	bias := tensor.FromSlice([]float32{0, 10}, 2)
	mean := tensor.FromSlice([]float32{1, 3}, 2)
	variance := tensor.FromSlice([]float32{4, 1}, 2)
	got := mustEval1(t, NewBatchNormalization(0), x, scale, bias, mean, variance)
	// ch0: 2*(x-1)/2 = x-1 → {0,1}; ch1: (x-3)/1+10 → {10,11}.
	want := tensor.FromSlice([]float32{0, 1, 10, 11}, 1, 2, 2)
	if !tensor.AllClose(got, want, 1e-5) {
		t.Errorf("BatchNormalization = %v, want %v", got.Data(), want.Data())
	}
}

func TestInstanceNormalization(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 3, 2, 2}, 1, 1, 4)
	scale := tensor.FromSlice([]float32{1}, 1)
	bias := tensor.FromSlice([]float32{0}, 1)
	got := mustEval1(t, NewInstanceNormalization(1e-9), x, scale, bias)
	// mean=2, var=0.5 → normalized {-sqrt2, sqrt2, 0, 0}.
	s := float32(math.Sqrt(2))
	want := tensor.FromSlice([]float32{-s, s, 0, 0}, 1, 1, 4)
	if !tensor.AllClose(got, want, 1e-3) {
		t.Errorf("InstanceNormalization = %v, want %v", got.Data(), want.Data())
	}
	// Output mean ~0 and variance ~1 for random input.
	r := tensor.New(1, 2, 9).Rand(8)
	out := mustEval1(t, NewInstanceNormalization(1e-9), r,
		tensor.Full(1, 2), tensor.Full(0, 2))
	for c := 0; c < 2; c++ {
		var sum float64
		for i := 0; i < 9; i++ {
			sum += float64(out.At(0, c, i))
		}
		if math.Abs(sum/9) > 1e-4 {
			t.Errorf("InstanceNorm channel %d mean = %v, want ~0", c, sum/9)
		}
	}
}

func TestFLOPsConventions(t *testing.T) {
	// Conv FLOPs = 2 * out_elems * Cin/g * kernel (paper-style MAC counting).
	conv := NewConv(ConvAttrs{})
	in := []tensor.Shape{tensor.Of(1, 3, 8, 8), tensor.Of(16, 3, 3, 3)}
	out := 1 * 16 * 6 * 6
	if f := conv.FLOPs(in); f != int64(2*out*3*9) {
		t.Errorf("Conv FLOPs = %d, want %d", f, 2*out*3*9)
	}
	// Elementwise unary = 1 FLOP per element.
	if f := NewExp().FLOPs([]tensor.Shape{tensor.Of(4, 5)}); f != 20 {
		t.Errorf("Exp FLOPs = %d, want 20", f)
	}
	// Reduce = 1 FLOP per input element.
	if f := NewReduce(ReduceSum, false, 1).FLOPs([]tensor.Shape{tensor.Of(4, 5)}); f != 20 {
		t.Errorf("ReduceSum FLOPs = %d, want 20", f)
	}
}
