package ops

import (
	"fmt"

	"dnnfusion/internal/tensor"
)

// NewMatMul returns the batched matrix product with ONNX semantics: the last
// two dimensions are multiplied, leading (batch) dimensions broadcast.
// Many-to-Many per Table 2 (listed there as GEMM).
func NewMatMul() Operator { return &matmul{} }

// NewMatMulT returns a batched matrix product with transposed-operand
// flags: the last two dimensions of A and/or B are read swapped without
// materializing the transpose. The rewriter folds adjacent Transpose
// operators into these flags (the attention Q·Kᵀ pattern).
func NewMatMulT(transA, transB bool) Operator { return &matmul{transA: transA, transB: transB} }

type matmul struct {
	transA, transB bool
}

func (m *matmul) Type() string    { return "MatMul" }
func (m *matmul) NumOutputs() int { return 1 }
func (m *matmul) AttrKey() string {
	if !m.transA && !m.transB {
		return ""
	}
	return fmt.Sprintf("transA=%t,transB=%t", m.transA, m.transB)
}
func (m *matmul) Properties() Properties                { return Properties{Linear: true} }
func (m *matmul) Mapping(in []tensor.Shape) MappingType { return ManyToMany }

// MatMulTrans reports the transpose flags of a MatMul operator.
func MatMulTrans(op Operator) (transA, transB, ok bool) {
	mm, isMM := op.(*matmul)
	if !isMM {
		return false, false, false
	}
	return mm.transA, mm.transB, true
}

func (m *matmul) dims(a, b tensor.Shape) (batch tensor.Shape, mm, kk, nn int, err error) {
	if a.Rank() < 2 || b.Rank() < 2 {
		return nil, 0, 0, 0, fmt.Errorf("MatMul: inputs must have rank >= 2, got %v and %v", a, b)
	}
	mm, kk = a[a.Rank()-2], a[a.Rank()-1]
	if m.transA {
		mm, kk = kk, mm
	}
	kb, nn := b[b.Rank()-2], b[b.Rank()-1]
	if m.transB {
		kb, nn = nn, kb
	}
	if kk != kb {
		return nil, 0, 0, 0, fmt.Errorf("MatMul: inner dims mismatch %v x %v", a, b)
	}
	batch, err = tensor.BroadcastShapes(a[:a.Rank()-2], b[:b.Rank()-2])
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("MatMul: batch dims: %w", err)
	}
	return batch, mm, kk, nn, nil
}

func matmulShapes(a, b tensor.Shape) (batch tensor.Shape, mm, kk, nn int, err error) {
	return (&matmul{}).dims(a, b)
}

func (m *matmul) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	if len(in) != 2 {
		return nil, errInputs("MatMul", "2", len(in))
	}
	batch, mm, _, nn, err := m.dims(in[0], in[1])
	if err != nil {
		return nil, err
	}
	out := append(batch.Clone(), mm, nn)
	return []tensor.Shape{out}, nil
}

func (m *matmul) FLOPs(in []tensor.Shape) int64 {
	batch, mm, kk, nn, err := m.dims(in[0], in[1])
	if err != nil {
		return 0
	}
	return 2 * int64(batch.NumElements()) * int64(mm) * int64(kk) * int64(nn)
}

func (m *matmul) Virtualize(ins []Source, outNo int) (Source, error) {
	if outNo != 0 {
		return nil, fmt.Errorf("MatMul: output %d out of range", outNo)
	}
	if len(ins) != 2 {
		return nil, errInputs("MatMul", "2", len(ins))
	}
	a, b := ins[0].Shape(), ins[1].Shape()
	batch, mm, kk, nn, err := m.dims(a, b)
	if err != nil {
		return nil, err
	}
	out := append(batch.Clone(), mm, nn)
	src := &matmulSource{
		shape:  out,
		a:      ins[0],
		b:      ins[1],
		aShape: a,
		bShape: b,
		ar:     a.Rank(),
		br:     b.Rank(),
		k:      kk,
		m:      mm,
		n:      nn,
		transA: m.transA,
		transB: m.transB,
		aBuf:   make([]int, a.Rank()),
		bBuf:   make([]int, b.Rank()),
	}
	return blockedMatMul(src), nil
}

// blockedMatMul upgrades a matmul source to the tiled flat-loop form when
// both operands expose flat row-major data (materialized tensors or
// Reorganize views over them) — the common case at fusion-block
// boundaries, where operands are weights or planned arena slots — or can
// be staged into per-session scratch (fused blocked producers). Operands
// behind genuinely scalar sources keep the pull-model form.
func blockedMatMul(s *matmulSource) Source {
	// A fused contraction chain (A rooted in another MatMul/Gemm inside the
	// same block) streams row groups instead of staging the whole A matrix.
	if c := chainMatMul(s); c != nil {
		return c
	}
	aData, aStage, ok := flatOrStage(s.a, s.m*s.k)
	if !ok {
		return s
	}
	bData, bStage, ok := flatOrStage(s.b, s.k*s.n)
	if !ok {
		return s
	}
	out := s.shape
	outBatch := out[:out.Rank()-2]
	blk := &matmulBlockSource{
		matmulSource: *s,
		aData:        aData,
		bData:        bData,
		aStage:       aStage,
		bStage:       bStage,
		aRS:          s.aShape[s.ar-1],
		bRS:          s.bShape[s.br-1],
		outBatch:     outBatch,
		aBatchStride: batchStrides(s.aShape, outBatch),
		bBatchStride: batchStrides(s.bShape, outBatch),
		batchBuf:     make([]int, outBatch.Rank()),
	}
	// Tuned kernels override this at bind time via ApplySchedule; the
	// default reproduces the pre-schedule blocking.
	blk.setSchedule(DefaultSchedule(s.k))
	return blk
}

// batchStrides maps each output batch dimension to the element stride of
// the corresponding operand dimension (0 when the operand broadcasts it or
// lacks it).
func batchStrides(opShape tensor.Shape, outBatch tensor.Shape) []int {
	strides := opShape.Strides()
	batchRank := opShape.Rank() - 2
	out := make([]int, outBatch.Rank())
	for d := range out {
		od := d - (outBatch.Rank() - batchRank)
		if od >= 0 && opShape[od] > 1 {
			out[d] = strides[od]
		}
	}
	return out
}

type matmulSource struct {
	shape tensor.Shape
	a, b  Source
	// Operand shapes and ranks are hoisted to Virtualize time; Load must
	// never recompute them (it runs once per output element per K step on
	// the scalar path).
	aShape, bShape tensor.Shape
	ar, br         int
	k, m, n        int
	transA, transB bool
	aBuf           []int
	bBuf           []int
}

func (s *matmulSource) Shape() tensor.Shape { return s.shape }

func (s *matmulSource) Load(idx []int) float32 {
	ar, br, or := s.ar, s.br, len(idx)
	// Broadcast the batch part of the output index into each input.
	for i := 0; i < ar-2; i++ {
		v := idx[or-ar+i]
		if s.aShape[i] == 1 {
			v = 0
		}
		s.aBuf[i] = v
	}
	for i := 0; i < br-2; i++ {
		v := idx[or-br+i]
		if s.bShape[i] == 1 {
			v = 0
		}
		s.bBuf[i] = v
	}
	var acc float64
	for k := 0; k < s.k; k++ {
		ai, aj := idx[or-2], k
		if s.transA {
			ai, aj = aj, ai
		}
		s.aBuf[ar-2], s.aBuf[ar-1] = ai, aj
		bi, bj := k, idx[or-1]
		if s.transB {
			bi, bj = bj, bi
		}
		s.bBuf[br-2], s.bBuf[br-1] = bi, bj
		acc += float64(s.a.Load(s.aBuf)) * float64(s.b.Load(s.bBuf))
	}
	return float32(acc)
}

// matmulBlockSource computes output rows with flat loops over operand
// memory: one base-offset computation per row, then pure data streaming —
// no virtual Loads, no index buffers, no per-element shape math.
// Accumulation order over K is identical to the scalar path, so results
// are bit-for-bit equal.
type matmulBlockSource struct {
	matmulSource
	// aData/bData are the operands' flat backing, or (when aStage/bStage
	// is set) per-session scratch the staged operand matrix is streamed
	// into once per batch per LoadBlock call.
	aData, bData   []float32
	aStage, bStage BlockSource
	// aRS/bRS are the physical row strides (last-dimension sizes).
	aRS, bRS                   int
	outBatch                   tensor.Shape
	aBatchStride, bBatchStride []int
	batchBuf                   []int
	// sched is the kernel's tile schedule; rowTile and jb are its
	// normalized register-tile height and column-panel width, and acc holds
	// rowTile accumulator rows of n entries (the single-row path uses the
	// first n).
	sched   Schedule
	rowTile int
	jb      int
	acc     []float64
}

// setSchedule installs a tile schedule, normalizing it against this
// matmul's shape and sizing the accumulator scratch for the row tile.
func (s *matmulBlockSource) setSchedule(sched Schedule) {
	s.sched = sched
	s.rowTile = normalizeRowTile(sched.RowTile)
	s.jb = normalizeColPanel(sched.ColPanel, s.n)
	if need := s.rowTile * s.n; len(s.acc) < need {
		s.acc = make([]float64, need)
	}
}

func (s *matmulBlockSource) LoadBlock(dst []float32, off, n int) {
	mn := s.m * s.n
	stagedBatch := -1 // staging never survives a LoadBlock call: inputs change between runs
	for n > 0 {
		batch := off / mn
		rem := off % mn
		i := rem / s.n
		jLo := rem % s.n
		run := s.n - jLo
		if run > n {
			run = n
		}
		s.outBatch.Unravel(batch, s.batchBuf)
		aBase, bBase := 0, 0
		for d, v := range s.batchBuf {
			aBase += v * s.aBatchStride[d]
			bBase += v * s.bBatchStride[d]
		}
		if batch != stagedBatch {
			if s.aStage != nil {
				s.aStage.LoadBlock(s.aData, aBase, len(s.aData))
			}
			if s.bStage != nil {
				s.bStage.LoadBlock(s.bData, bBase, len(s.bData))
			}
			stagedBatch = batch
		}
		if s.aStage != nil {
			aBase = 0
		}
		if s.bStage != nil {
			bBase = 0
		}
		// At a row boundary with at least one full row tile of this batch
		// matrix ahead, take the blocked path: rowTile-high tiles stream
		// each B row once per tile (dividing B loads and float64 widenings
		// by the tile height), and a column-panel loop keeps the active B
		// panel cache-resident across every row tile, so tall
		// (batch-stacked) matmuls do not thrash B between tiles. Tile
		// height and panel width come from the kernel's schedule
		// (setSchedule); per-element accumulation order is unchanged
		// (ascending k) — bit-identical to mulRow.
		rt := s.rowTile
		if rt > 1 && !s.transB && jLo == 0 && i+rt <= s.m && n >= rt*s.n {
			rows := n / s.n
			if avail := s.m - i; rows > avail {
				rows = avail
			}
			rows -= rows % rt
			jb := s.jb
			for j0 := 0; j0 < s.n; j0 += jb {
				w := s.n - j0
				if w > jb {
					w = jb
				}
				for r := 0; r < rows; r += rt {
					s.mulTile(dst[r*s.n+j0:], aBase, bBase, i+r, j0, w, rt)
				}
			}
			adv := rows * s.n
			dst = dst[adv:]
			off += adv
			n -= adv
			continue
		}
		s.mulRow(dst[:run], aBase, bBase, i, jLo, run)
		dst = dst[run:]
		off += run
		n -= run
	}
}

// mulTile computes the rt×w output tile with corner (i, jLo) of one batch
// matrix via mulTileAcc. dst addresses element (i, jLo) and is written with
// row stride s.n. Each accumulator still sums in ascending-k order.
func (s *matmulBlockSource) mulTile(dst []float32, aBase, bBase, i, jLo, w, rt int) {
	ai, ak := s.aRS, 1
	if s.transA {
		ai, ak = 1, s.aRS
	}
	acc := s.acc
	mulTileAcc(rt, s.aData, aBase+i*ai, ai, ak, s.k, s.bData, bBase, s.bRS, jLo, acc, w)
	for r := 0; r < rt; r++ {
		row := dst[r*s.n : r*s.n+w]
		c := acc[r*w : r*w+w]
		for t := 0; t < w; t++ {
			row[t] = float32(c[t])
		}
	}
}

// mulRow fills dst with output elements (i, jLo..jLo+w) of one batch
// matrix.
func (s *matmulBlockSource) mulRow(dst []float32, aBase, bBase, i, jLo, w int) {
	ai, ak := s.aRS, 1
	if s.transA {
		ai, ak = 1, s.aRS
	}
	aOff := aBase + i*ai
	if s.transB {
		// b is (j, k): each output element is a contiguous dot product.
		for t := 0; t < w; t++ {
			bOff := bBase + (jLo+t)*s.bRS
			var acc float64
			for k := 0; k < s.k; k++ {
				acc += float64(s.aData[aOff+k*ak]) * float64(s.bData[bOff+k])
			}
			dst[t] = float32(acc)
		}
		return
	}
	// b is (k, j): accumulate the whole row tile streaming b's rows, K
	// outer — each acc[t] still sums in ascending-k order.
	acc := s.acc[:w]
	for t := range acc {
		acc[t] = 0
	}
	for k := 0; k < s.k; k++ {
		av := float64(s.aData[aOff+k*ak])
		bRow := s.bData[bBase+k*s.bRS+jLo:]
		for t := 0; t < w; t++ {
			acc[t] += av * float64(bRow[t])
		}
	}
	for t := 0; t < w; t++ {
		dst[t] = float32(acc[t])
	}
}

// NewGemm returns the ONNX Gemm operator: alpha*op(A)*op(B) + beta*C where C
// broadcasts over the result. A and B must be rank 2.
func NewGemm(alpha, beta float32, transA, transB bool) Operator {
	return &gemm{alpha: alpha, beta: beta, transA: transA, transB: transB}
}

type gemm struct {
	alpha, beta    float32
	transA, transB bool
}

func (g *gemm) Type() string    { return "Gemm" }
func (g *gemm) NumOutputs() int { return 1 }
func (g *gemm) AttrKey() string {
	return fmt.Sprintf("alpha=%g,beta=%g,transA=%t,transB=%t", g.alpha, g.beta, g.transA, g.transB)
}
func (g *gemm) Properties() Properties                { return Properties{Linear: true} }
func (g *gemm) Mapping(in []tensor.Shape) MappingType { return ManyToMany }

func (g *gemm) dims(in []tensor.Shape) (m, k, n int, err error) {
	a, b := in[0], in[1]
	if a.Rank() != 2 || b.Rank() != 2 {
		return 0, 0, 0, fmt.Errorf("Gemm: A and B must be rank 2, got %v and %v", a, b)
	}
	m, k = a[0], a[1]
	if g.transA {
		m, k = k, m
	}
	kb, n := b[0], b[1]
	if g.transB {
		kb, n = n, kb
	}
	if k != kb {
		return 0, 0, 0, fmt.Errorf("Gemm: inner dims mismatch %v x %v", a, b)
	}
	return m, k, n, nil
}

func (g *gemm) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	if len(in) != 2 && len(in) != 3 {
		return nil, errInputs("Gemm", "2 or 3", len(in))
	}
	m, _, n, err := g.dims(in)
	if err != nil {
		return nil, err
	}
	if len(in) == 3 {
		if _, err := tensor.BroadcastShapes(in[2], tensor.Of(m, n)); err != nil {
			return nil, fmt.Errorf("Gemm: C: %w", err)
		}
	}
	return []tensor.Shape{tensor.Of(m, n)}, nil
}

func (g *gemm) FLOPs(in []tensor.Shape) int64 {
	m, k, n, err := g.dims(in)
	if err != nil {
		return 0
	}
	f := 2 * int64(m) * int64(k) * int64(n)
	if len(in) == 3 {
		f += 2 * int64(m) * int64(n)
	}
	return f
}

func (g *gemm) Virtualize(ins []Source, outNo int) (Source, error) {
	if outNo != 0 {
		return nil, fmt.Errorf("Gemm: output %d out of range", outNo)
	}
	shapes := make([]tensor.Shape, len(ins))
	for i := range ins {
		shapes[i] = ins[i].Shape()
	}
	if _, err := g.InferShapes(shapes); err != nil {
		return nil, err
	}
	m, k, n, _ := g.dims(shapes)
	src := &gemmSource{
		op:    g,
		shape: tensor.Of(m, n),
		a:     ins[0],
		b:     ins[1],
		k:     k,
		n:     n,
		buf2:  make([]int, 2),
	}
	if len(ins) == 3 {
		src.c = ins[2]
		src.cShape = shapes[2]
		src.cBuf = make([]int, shapes[2].Rank())
	}
	return blockedGemm(src, shapes), nil
}

// blockedGemm mirrors blockedMatMul for the rank-2 Gemm: flat tiled loops
// when A and B are flat-backed or stageable. The C addend is loaded per
// element through the scalar path (one Load per output element, not per K
// step).
func blockedGemm(s *gemmSource, shapes []tensor.Shape) Source {
	if c := chainGemm(s, shapes); c != nil {
		return c
	}
	aData, aStage, ok := flatOrStage(s.a, shapes[0].NumElements())
	if !ok {
		return s
	}
	bData, bStage, ok := flatOrStage(s.b, shapes[1].NumElements())
	if !ok {
		return s
	}
	blk := &gemmBlockSource{
		gemmSource: *s,
		aData:      aData,
		bData:      bData,
		aStage:     aStage,
		bStage:     bStage,
		aRS:        shapes[0][1],
		bRS:        shapes[1][1],
		m:          s.shape[0],
		idx2:       make([]int, 2),
	}
	// The pre-schedule Gemm streamed single rows with no panel loop; that
	// stays the default, and tuned kernels raise it via ApplySchedule.
	blk.setSchedule(Schedule{RowTile: 1, ColPanel: s.n, Unroll: 4})
	return blk
}

type gemmSource struct {
	op    *gemm
	shape tensor.Shape
	a, b  Source
	c     Source
	// cShape is hoisted at Virtualize time so Load never re-queries it.
	cShape tensor.Shape
	k, n   int
	buf2   []int
	cBuf   []int
}

func (s *gemmSource) Shape() tensor.Shape { return s.shape }

func (s *gemmSource) Load(idx []int) float32 {
	i, j := idx[0], idx[1]
	var acc float64
	for k := 0; k < s.k; k++ {
		ai, aj := i, k
		if s.op.transA {
			ai, aj = k, i
		}
		s.buf2[0], s.buf2[1] = ai, aj
		av := float64(s.a.Load(s.buf2))
		bi, bj := k, j
		if s.op.transB {
			bi, bj = j, k
		}
		s.buf2[0], s.buf2[1] = bi, bj
		acc += av * float64(s.b.Load(s.buf2))
	}
	acc *= float64(s.op.alpha)
	if s.c != nil {
		b := tensor.BroadcastIndex(idx, s.cShape, s.cBuf)
		acc += float64(s.op.beta) * float64(s.c.Load(b))
	}
	return float32(acc)
}

// gemmBlockSource is the flat tiled Gemm; accumulation order matches the
// scalar path bit-for-bit.
type gemmBlockSource struct {
	gemmSource
	aData, bData   []float32
	aStage, bStage BlockSource
	aRS, bRS       int
	m              int
	idx2           []int
	// Schedule state mirrors matmulBlockSource: rowTile accumulator rows
	// of n entries, column panels of jb output columns.
	sched   Schedule
	rowTile int
	jb      int
	acc     []float64
}

// setSchedule installs a tile schedule, normalizing it against this Gemm's
// shape and sizing the accumulator scratch for the row tile.
func (s *gemmBlockSource) setSchedule(sched Schedule) {
	s.sched = sched
	s.rowTile = normalizeRowTile(sched.RowTile)
	s.jb = normalizeColPanel(sched.ColPanel, s.n)
	if need := s.rowTile * s.n; len(s.acc) < need {
		s.acc = make([]float64, need)
	}
}

func (s *gemmBlockSource) LoadBlock(dst []float32, off, n int) {
	// Staged operands are re-streamed on every call: inputs change
	// between runs, and a call never outlives one kernel execution.
	if s.aStage != nil {
		s.aStage.LoadBlock(s.aData, 0, len(s.aData))
	}
	if s.bStage != nil {
		s.bStage.LoadBlock(s.bData, 0, len(s.bData))
	}
	for n > 0 {
		i := off / s.n
		jLo := off % s.n
		// Row-aligned with a full row tile ahead: the schedule's blocked
		// path, exactly as in matmulBlockSource.LoadBlock.
		rt := s.rowTile
		if rt > 1 && !s.op.transB && jLo == 0 && i+rt <= s.m && n >= rt*s.n {
			rows := n / s.n
			if avail := s.m - i; rows > avail {
				rows = avail
			}
			rows -= rows % rt
			jb := s.jb
			for j0 := 0; j0 < s.n; j0 += jb {
				w := s.n - j0
				if w > jb {
					w = jb
				}
				for r := 0; r < rows; r += rt {
					s.mulTile(dst[r*s.n+j0:], i+r, j0, w, rt)
				}
			}
			adv := rows * s.n
			dst = dst[adv:]
			off += adv
			n -= adv
			continue
		}
		run := s.n - jLo
		if run > n {
			run = n
		}
		s.mulRow(dst[:run], i, jLo, run)
		dst = dst[run:]
		off += run
		n -= run
	}
}

// mulTile computes the rt×w tile with corner (i, jLo) via mulTileAcc, then
// applies the Gemm epilogue (alpha scale, beta·C addend) per element — the
// same order as mulRow, so results stay bit-identical.
func (s *gemmBlockSource) mulTile(dst []float32, i, jLo, w, rt int) {
	ai, ak := s.aRS, 1
	if s.op.transA {
		ai, ak = 1, s.aRS
	}
	acc := s.acc
	mulTileAcc(rt, s.aData, i*ai, ai, ak, s.k, s.bData, 0, s.bRS, jLo, acc, w)
	alpha := float64(s.op.alpha)
	for r := 0; r < rt; r++ {
		row := dst[r*s.n : r*s.n+w]
		c := acc[r*w : r*w+w]
		for t := 0; t < w; t++ {
			a := c[t] * alpha
			if s.c != nil {
				s.idx2[0], s.idx2[1] = i+r, jLo+t
				b := tensor.BroadcastIndex(s.idx2, s.cShape, s.cBuf)
				a += float64(s.op.beta) * float64(s.c.Load(b))
			}
			row[t] = float32(a)
		}
	}
}

func (s *gemmBlockSource) mulRow(dst []float32, i, jLo, w int) {
	ai, ak := s.aRS, 1
	if s.op.transA {
		ai, ak = 1, s.aRS
	}
	aOff := i * ai
	alpha := float64(s.op.alpha)
	acc := s.acc[:w]
	if s.op.transB {
		for t := 0; t < w; t++ {
			bOff := (jLo + t) * s.bRS
			var a float64
			for k := 0; k < s.k; k++ {
				a += float64(s.aData[aOff+k*ak]) * float64(s.bData[bOff+k])
			}
			acc[t] = a
		}
	} else {
		for t := range acc {
			acc[t] = 0
		}
		for k := 0; k < s.k; k++ {
			av := float64(s.aData[aOff+k*ak])
			bRow := s.bData[k*s.bRS+jLo:]
			for t := 0; t < w; t++ {
				acc[t] += av * float64(bRow[t])
			}
		}
	}
	for t := 0; t < w; t++ {
		a := acc[t] * alpha
		if s.c != nil {
			s.idx2[0], s.idx2[1] = i, jLo+t
			b := tensor.BroadcastIndex(s.idx2, s.cShape, s.cBuf)
			a += float64(s.op.beta) * float64(s.c.Load(b))
		}
		dst[t] = float32(a)
	}
}

// NewEinsum supports the two-operand einsum forms used by transformer
// attention ("bhqd,bhkd->bhqk" and "bhqk,bhkd->bhqd" style): each output
// label comes from one or both inputs, and labels present only in the inputs
// are contracted. Many-to-Many per Table 2.
func NewEinsum(spec string) Operator { return &einsum{spec: spec} }

type einsum struct{ spec string }

func (e *einsum) Type() string                          { return "Einsum" }
func (e *einsum) NumOutputs() int                       { return 1 }
func (e *einsum) AttrKey() string                       { return "spec=" + e.spec }
func (e *einsum) Properties() Properties                { return Properties{Linear: true} }
func (e *einsum) Mapping(in []tensor.Shape) MappingType { return ManyToMany }

type einsumPlan struct {
	inLabels  [2]string
	outLabels string
	dims      map[byte]int
	contract  []byte
	outShape  tensor.Shape
}

func (e *einsum) plan(in []tensor.Shape) (*einsumPlan, error) {
	if len(in) != 2 {
		return nil, errInputs("Einsum", "2", len(in))
	}
	// Parse "ab,bc->ac".
	arrow := -1
	comma := -1
	for i := 0; i < len(e.spec); i++ {
		if e.spec[i] == ',' {
			comma = i
		}
		if e.spec[i] == '-' && i+1 < len(e.spec) && e.spec[i+1] == '>' {
			arrow = i
		}
	}
	if comma < 0 || arrow < 0 || comma > arrow {
		return nil, fmt.Errorf("Einsum: bad spec %q", e.spec)
	}
	p := &einsumPlan{}
	p.inLabels[0] = e.spec[:comma]
	p.inLabels[1] = e.spec[comma+1 : arrow]
	p.outLabels = e.spec[arrow+2:]
	p.dims = make(map[byte]int)
	for i, labels := range p.inLabels {
		if len(labels) != in[i].Rank() {
			return nil, fmt.Errorf("Einsum: labels %q do not match %v", labels, in[i])
		}
		for j := 0; j < len(labels); j++ {
			l := labels[j]
			if d, ok := p.dims[l]; ok && d != in[i][j] {
				return nil, fmt.Errorf("Einsum: dim mismatch for label %c", l)
			}
			p.dims[l] = in[i][j]
		}
	}
	inOut := make(map[byte]bool)
	for j := 0; j < len(p.outLabels); j++ {
		l := p.outLabels[j]
		if _, ok := p.dims[l]; !ok {
			return nil, fmt.Errorf("Einsum: output label %c not in inputs", l)
		}
		inOut[l] = true
		p.outShape = append(p.outShape, p.dims[l])
	}
	seen := map[byte]bool{}
	for _, labels := range p.inLabels {
		for j := 0; j < len(labels); j++ {
			l := labels[j]
			if !inOut[l] && !seen[l] {
				seen[l] = true
				p.contract = append(p.contract, l)
			}
		}
	}
	return p, nil
}

func (e *einsum) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	p, err := e.plan(in)
	if err != nil {
		return nil, err
	}
	return []tensor.Shape{p.outShape}, nil
}

func (e *einsum) FLOPs(in []tensor.Shape) int64 {
	p, err := e.plan(in)
	if err != nil {
		return 0
	}
	c := int64(1)
	for _, l := range p.contract {
		c *= int64(p.dims[l])
	}
	return 2 * int64(p.outShape.NumElements()) * c
}

func (e *einsum) Virtualize(ins []Source, outNo int) (Source, error) {
	if outNo != 0 {
		return nil, fmt.Errorf("Einsum: output %d out of range", outNo)
	}
	shapes := []tensor.Shape{ins[0].Shape(), ins[1].Shape()}
	p, err := e.plan(shapes)
	if err != nil {
		return nil, err
	}
	total := 1
	for _, l := range p.contract {
		total *= p.dims[l]
	}
	return &einsumSource{
		plan:          p,
		ins:           [2]Source{ins[0], ins[1]},
		bufs:          [2][]int{make([]int, shapes[0].Rank()), make([]int, shapes[1].Rank())},
		contractTotal: total,
	}, nil
}

type einsumSource struct {
	plan *einsumPlan
	ins  [2]Source
	bufs [2][]int
	// contractTotal is the contracted iteration count, hoisted from Load.
	contractTotal int
	// assign holds the current value of every label (indexed by label
	// byte), replacing a per-Load map so fused Loads are allocation-free.
	assign [256]int
}

func (s *einsumSource) Shape() tensor.Shape { return s.plan.outShape }

func (s *einsumSource) Load(idx []int) float32 {
	p := s.plan
	assign := &s.assign
	for j := 0; j < len(p.outLabels); j++ {
		assign[p.outLabels[j]] = idx[j]
	}
	total := s.contractTotal
	var acc float64
	for n := 0; n < total; n++ {
		rem := n
		for i := len(p.contract) - 1; i >= 0; i-- {
			l := p.contract[i]
			assign[l] = rem % p.dims[l]
			rem /= p.dims[l]
		}
		prod := 1.0
		for i := 0; i < 2; i++ {
			labels := p.inLabels[i]
			buf := s.bufs[i]
			for j := 0; j < len(labels); j++ {
				buf[j] = assign[labels[j]]
			}
			prod *= float64(s.ins[i].Load(buf))
		}
		acc += prod
	}
	return float32(acc)
}
