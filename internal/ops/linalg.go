package ops

import (
	"fmt"

	"dnnfusion/internal/tensor"
)

// NewMatMul returns the batched matrix product with ONNX semantics: the last
// two dimensions are multiplied, leading (batch) dimensions broadcast.
// Many-to-Many per Table 2 (listed there as GEMM).
func NewMatMul() Operator { return &matmul{} }

// NewMatMulT returns a batched matrix product with transposed-operand
// flags: the last two dimensions of A and/or B are read swapped without
// materializing the transpose. The rewriter folds adjacent Transpose
// operators into these flags (the attention Q·Kᵀ pattern).
func NewMatMulT(transA, transB bool) Operator { return &matmul{transA: transA, transB: transB} }

type matmul struct {
	transA, transB bool
}

func (m *matmul) Type() string    { return "MatMul" }
func (m *matmul) NumOutputs() int { return 1 }
func (m *matmul) AttrKey() string {
	if !m.transA && !m.transB {
		return ""
	}
	return fmt.Sprintf("transA=%t,transB=%t", m.transA, m.transB)
}
func (m *matmul) Properties() Properties                { return Properties{Linear: true} }
func (m *matmul) Mapping(in []tensor.Shape) MappingType { return ManyToMany }

// MatMulTrans reports the transpose flags of a MatMul operator.
func MatMulTrans(op Operator) (transA, transB, ok bool) {
	mm, isMM := op.(*matmul)
	if !isMM {
		return false, false, false
	}
	return mm.transA, mm.transB, true
}

func (m *matmul) dims(a, b tensor.Shape) (batch tensor.Shape, mm, kk, nn int, err error) {
	if a.Rank() < 2 || b.Rank() < 2 {
		return nil, 0, 0, 0, fmt.Errorf("MatMul: inputs must have rank >= 2, got %v and %v", a, b)
	}
	mm, kk = a[a.Rank()-2], a[a.Rank()-1]
	if m.transA {
		mm, kk = kk, mm
	}
	kb, nn := b[b.Rank()-2], b[b.Rank()-1]
	if m.transB {
		kb, nn = nn, kb
	}
	if kk != kb {
		return nil, 0, 0, 0, fmt.Errorf("MatMul: inner dims mismatch %v x %v", a, b)
	}
	batch, err = tensor.BroadcastShapes(a[:a.Rank()-2], b[:b.Rank()-2])
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("MatMul: batch dims: %w", err)
	}
	return batch, mm, kk, nn, nil
}

func matmulShapes(a, b tensor.Shape) (batch tensor.Shape, mm, kk, nn int, err error) {
	return (&matmul{}).dims(a, b)
}

func (m *matmul) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	if len(in) != 2 {
		return nil, errInputs("MatMul", "2", len(in))
	}
	batch, mm, _, nn, err := m.dims(in[0], in[1])
	if err != nil {
		return nil, err
	}
	out := append(batch.Clone(), mm, nn)
	return []tensor.Shape{out}, nil
}

func (m *matmul) FLOPs(in []tensor.Shape) int64 {
	batch, mm, kk, nn, err := m.dims(in[0], in[1])
	if err != nil {
		return 0
	}
	return 2 * int64(batch.NumElements()) * int64(mm) * int64(kk) * int64(nn)
}

func (m *matmul) Virtualize(ins []Source, outNo int) (Source, error) {
	if outNo != 0 {
		return nil, fmt.Errorf("MatMul: output %d out of range", outNo)
	}
	if len(ins) != 2 {
		return nil, errInputs("MatMul", "2", len(ins))
	}
	a, b := ins[0].Shape(), ins[1].Shape()
	batch, mm, kk, nn, err := m.dims(a, b)
	if err != nil {
		return nil, err
	}
	out := append(batch.Clone(), mm, nn)
	return &matmulSource{
		shape:  out,
		a:      ins[0],
		b:      ins[1],
		k:      kk,
		transA: m.transA,
		transB: m.transB,
		aBuf:   make([]int, a.Rank()),
		bBuf:   make([]int, b.Rank()),
	}, nil
}

type matmulSource struct {
	shape          tensor.Shape
	a, b           Source
	k              int
	transA, transB bool
	aBuf           []int
	bBuf           []int
}

func (s *matmulSource) Shape() tensor.Shape { return s.shape }

func (s *matmulSource) Load(idx []int) float32 {
	aShape, bShape := s.a.Shape(), s.b.Shape()
	ar, br, or := aShape.Rank(), bShape.Rank(), len(idx)
	// Broadcast the batch part of the output index into each input.
	for i := 0; i < ar-2; i++ {
		v := idx[or-ar+i]
		if aShape[i] == 1 {
			v = 0
		}
		s.aBuf[i] = v
	}
	for i := 0; i < br-2; i++ {
		v := idx[or-br+i]
		if bShape[i] == 1 {
			v = 0
		}
		s.bBuf[i] = v
	}
	var acc float64
	for k := 0; k < s.k; k++ {
		ai, aj := idx[or-2], k
		if s.transA {
			ai, aj = aj, ai
		}
		s.aBuf[ar-2], s.aBuf[ar-1] = ai, aj
		bi, bj := k, idx[or-1]
		if s.transB {
			bi, bj = bj, bi
		}
		s.bBuf[br-2], s.bBuf[br-1] = bi, bj
		acc += float64(s.a.Load(s.aBuf)) * float64(s.b.Load(s.bBuf))
	}
	return float32(acc)
}

// NewGemm returns the ONNX Gemm operator: alpha*op(A)*op(B) + beta*C where C
// broadcasts over the result. A and B must be rank 2.
func NewGemm(alpha, beta float32, transA, transB bool) Operator {
	return &gemm{alpha: alpha, beta: beta, transA: transA, transB: transB}
}

type gemm struct {
	alpha, beta    float32
	transA, transB bool
}

func (g *gemm) Type() string    { return "Gemm" }
func (g *gemm) NumOutputs() int { return 1 }
func (g *gemm) AttrKey() string {
	return fmt.Sprintf("alpha=%g,beta=%g,transA=%t,transB=%t", g.alpha, g.beta, g.transA, g.transB)
}
func (g *gemm) Properties() Properties                { return Properties{Linear: true} }
func (g *gemm) Mapping(in []tensor.Shape) MappingType { return ManyToMany }

func (g *gemm) dims(in []tensor.Shape) (m, k, n int, err error) {
	a, b := in[0], in[1]
	if a.Rank() != 2 || b.Rank() != 2 {
		return 0, 0, 0, fmt.Errorf("Gemm: A and B must be rank 2, got %v and %v", a, b)
	}
	m, k = a[0], a[1]
	if g.transA {
		m, k = k, m
	}
	kb, n := b[0], b[1]
	if g.transB {
		kb, n = n, kb
	}
	if k != kb {
		return 0, 0, 0, fmt.Errorf("Gemm: inner dims mismatch %v x %v", a, b)
	}
	return m, k, n, nil
}

func (g *gemm) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	if len(in) != 2 && len(in) != 3 {
		return nil, errInputs("Gemm", "2 or 3", len(in))
	}
	m, _, n, err := g.dims(in)
	if err != nil {
		return nil, err
	}
	if len(in) == 3 {
		if _, err := tensor.BroadcastShapes(in[2], tensor.Of(m, n)); err != nil {
			return nil, fmt.Errorf("Gemm: C: %w", err)
		}
	}
	return []tensor.Shape{tensor.Of(m, n)}, nil
}

func (g *gemm) FLOPs(in []tensor.Shape) int64 {
	m, k, n, err := g.dims(in)
	if err != nil {
		return 0
	}
	f := 2 * int64(m) * int64(k) * int64(n)
	if len(in) == 3 {
		f += 2 * int64(m) * int64(n)
	}
	return f
}

func (g *gemm) Virtualize(ins []Source, outNo int) (Source, error) {
	if outNo != 0 {
		return nil, fmt.Errorf("Gemm: output %d out of range", outNo)
	}
	shapes := make([]tensor.Shape, len(ins))
	for i := range ins {
		shapes[i] = ins[i].Shape()
	}
	if _, err := g.InferShapes(shapes); err != nil {
		return nil, err
	}
	m, k, n, _ := g.dims(shapes)
	src := &gemmSource{
		op:    g,
		shape: tensor.Of(m, n),
		a:     ins[0],
		b:     ins[1],
		k:     k,
		buf2:  make([]int, 2),
	}
	if len(ins) == 3 {
		src.c = ins[2]
		src.cBuf = make([]int, ins[2].Shape().Rank())
	}
	return src, nil
}

type gemmSource struct {
	op    *gemm
	shape tensor.Shape
	a, b  Source
	c     Source
	k     int
	buf2  []int
	cBuf  []int
}

func (s *gemmSource) Shape() tensor.Shape { return s.shape }

func (s *gemmSource) Load(idx []int) float32 {
	i, j := idx[0], idx[1]
	var acc float64
	for k := 0; k < s.k; k++ {
		ai, aj := i, k
		if s.op.transA {
			ai, aj = k, i
		}
		s.buf2[0], s.buf2[1] = ai, aj
		av := float64(s.a.Load(s.buf2))
		bi, bj := k, j
		if s.op.transB {
			bi, bj = j, k
		}
		s.buf2[0], s.buf2[1] = bi, bj
		acc += av * float64(s.b.Load(s.buf2))
	}
	acc *= float64(s.op.alpha)
	if s.c != nil {
		b := tensor.BroadcastIndex(idx, s.c.Shape(), s.cBuf)
		acc += float64(s.op.beta) * float64(s.c.Load(b))
	}
	return float32(acc)
}

// NewEinsum supports the two-operand einsum forms used by transformer
// attention ("bhqd,bhkd->bhqk" and "bhqk,bhkd->bhqd" style): each output
// label comes from one or both inputs, and labels present only in the inputs
// are contracted. Many-to-Many per Table 2.
func NewEinsum(spec string) Operator { return &einsum{spec: spec} }

type einsum struct{ spec string }

func (e *einsum) Type() string                          { return "Einsum" }
func (e *einsum) NumOutputs() int                       { return 1 }
func (e *einsum) AttrKey() string                       { return "spec=" + e.spec }
func (e *einsum) Properties() Properties                { return Properties{Linear: true} }
func (e *einsum) Mapping(in []tensor.Shape) MappingType { return ManyToMany }

type einsumPlan struct {
	inLabels  [2]string
	outLabels string
	dims      map[byte]int
	contract  []byte
	outShape  tensor.Shape
}

func (e *einsum) plan(in []tensor.Shape) (*einsumPlan, error) {
	if len(in) != 2 {
		return nil, errInputs("Einsum", "2", len(in))
	}
	// Parse "ab,bc->ac".
	arrow := -1
	comma := -1
	for i := 0; i < len(e.spec); i++ {
		if e.spec[i] == ',' {
			comma = i
		}
		if e.spec[i] == '-' && i+1 < len(e.spec) && e.spec[i+1] == '>' {
			arrow = i
		}
	}
	if comma < 0 || arrow < 0 || comma > arrow {
		return nil, fmt.Errorf("Einsum: bad spec %q", e.spec)
	}
	p := &einsumPlan{}
	p.inLabels[0] = e.spec[:comma]
	p.inLabels[1] = e.spec[comma+1 : arrow]
	p.outLabels = e.spec[arrow+2:]
	p.dims = make(map[byte]int)
	for i, labels := range p.inLabels {
		if len(labels) != in[i].Rank() {
			return nil, fmt.Errorf("Einsum: labels %q do not match %v", labels, in[i])
		}
		for j := 0; j < len(labels); j++ {
			l := labels[j]
			if d, ok := p.dims[l]; ok && d != in[i][j] {
				return nil, fmt.Errorf("Einsum: dim mismatch for label %c", l)
			}
			p.dims[l] = in[i][j]
		}
	}
	inOut := make(map[byte]bool)
	for j := 0; j < len(p.outLabels); j++ {
		l := p.outLabels[j]
		if _, ok := p.dims[l]; !ok {
			return nil, fmt.Errorf("Einsum: output label %c not in inputs", l)
		}
		inOut[l] = true
		p.outShape = append(p.outShape, p.dims[l])
	}
	seen := map[byte]bool{}
	for _, labels := range p.inLabels {
		for j := 0; j < len(labels); j++ {
			l := labels[j]
			if !inOut[l] && !seen[l] {
				seen[l] = true
				p.contract = append(p.contract, l)
			}
		}
	}
	return p, nil
}

func (e *einsum) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	p, err := e.plan(in)
	if err != nil {
		return nil, err
	}
	return []tensor.Shape{p.outShape}, nil
}

func (e *einsum) FLOPs(in []tensor.Shape) int64 {
	p, err := e.plan(in)
	if err != nil {
		return 0
	}
	c := int64(1)
	for _, l := range p.contract {
		c *= int64(p.dims[l])
	}
	return 2 * int64(p.outShape.NumElements()) * c
}

func (e *einsum) Virtualize(ins []Source, outNo int) (Source, error) {
	if outNo != 0 {
		return nil, fmt.Errorf("Einsum: output %d out of range", outNo)
	}
	shapes := []tensor.Shape{ins[0].Shape(), ins[1].Shape()}
	p, err := e.plan(shapes)
	if err != nil {
		return nil, err
	}
	return &einsumSource{
		plan: p,
		ins:  [2]Source{ins[0], ins[1]},
		bufs: [2][]int{make([]int, shapes[0].Rank()), make([]int, shapes[1].Rank())},
	}, nil
}

type einsumSource struct {
	plan *einsumPlan
	ins  [2]Source
	bufs [2][]int
	// assign holds the current value of every label (indexed by label
	// byte), replacing a per-Load map so fused Loads are allocation-free.
	assign [256]int
}

func (s *einsumSource) Shape() tensor.Shape { return s.plan.outShape }

func (s *einsumSource) Load(idx []int) float32 {
	p := s.plan
	assign := &s.assign
	for j := 0; j < len(p.outLabels); j++ {
		assign[p.outLabels[j]] = idx[j]
	}
	total := 1
	for _, l := range p.contract {
		total *= p.dims[l]
	}
	var acc float64
	for n := 0; n < total; n++ {
		rem := n
		for i := len(p.contract) - 1; i >= 0; i-- {
			l := p.contract[i]
			assign[l] = rem % p.dims[l]
			rem /= p.dims[l]
		}
		prod := 1.0
		for i := 0; i < 2; i++ {
			labels := p.inLabels[i]
			buf := s.bufs[i]
			for j := 0; j < len(labels); j++ {
				buf[j] = assign[labels[j]]
			}
			prod *= float64(s.ins[i].Load(buf))
		}
		acc += prod
	}
	return float32(acc)
}
