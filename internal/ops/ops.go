// Package ops implements the DNN operator library underlying DNNFusion.
//
// Every operator carries the metadata the paper's compiler passes need:
//
//   - a mapping type (Table 2): One-to-One, One-to-Many, Many-to-Many,
//     Reorganize, or Shuffle, describing the input→output element mapping;
//   - mathematical properties (associative / commutative / distributive /
//     linear) used by the graph-rewriting pass;
//   - shape inference and FLOPs estimation used by the fusion planner and
//     the device cost model;
//   - a Virtualize hook that builds a lazy, pull-model Source for its
//     output. Fused kernels are compositions of Sources: only fusion-block
//     boundaries are ever materialized, which is exactly the intermediate-
//     result elimination operator fusion is after.
//
// The reference (unfused) evaluation of an operator is derived from
// Virtualize by materializing each output, so fused and unfused execution
// share one semantics definition and can be checked against each other.
package ops

import (
	"fmt"

	"dnnfusion/internal/tensor"
)

// MappingType classifies the input/output element mapping of an operator
// (paper §3.1, Table 2). The order of the constants is the paper's
// "transformation impedance" complexity order (footnote 1): One-to-One <
// Reorganize < Shuffle < One-to-Many < Many-to-Many.
type MappingType int

const (
	// OneToOne maps each output element to exactly one input element per
	// input (e.g. Add, Relu, Concat, Slice).
	OneToOne MappingType = iota
	// Reorganize changes dimensionality without reordering data
	// (Reshape, Flatten, Squeeze, Unsqueeze).
	Reorganize
	// Shuffle permutes data order (Transpose, DepthToSpace, SpaceToDepth).
	Shuffle
	// OneToMany maps one input element to several output elements
	// (Expand, Gather, Resize, broadcast elementwise).
	OneToMany
	// ManyToMany maps several input elements to each output element
	// (Conv, GEMM, Pool, Reduce, Softmax); includes Many-to-One.
	ManyToMany
)

var mappingNames = [...]string{"One-to-One", "Reorganize", "Shuffle", "One-to-Many", "Many-to-Many"}

func (m MappingType) String() string {
	if m < 0 || int(m) >= len(mappingNames) {
		return fmt.Sprintf("MappingType(%d)", int(m))
	}
	return mappingNames[m]
}

// AllMappingTypes lists the five types in impedance order.
func AllMappingTypes() []MappingType {
	return []MappingType{OneToOne, Reorganize, Shuffle, OneToMany, ManyToMany}
}

// Properties are the mathematical properties graph rewriting exploits
// (paper §4.2). An operator with none of them set acts as a partition point
// for the rewrite engine's pattern search.
type Properties struct {
	// Associative: op(op(a,b),c) == op(a,op(b,c)) (Add, Mul, Min, Max).
	Associative bool
	// Commutative: op(a,b) == op(b,a).
	Commutative bool
	// Distributive: a⊙(b+c) == a⊙b + a⊙c holds with this op as ⊙ (Mul).
	Distributive bool
	// Linear: the op commutes with addition and scalar multiplication
	// (Neg, left BitShift, ReduceSum, ReduceMean, Transpose, Reshape...),
	// enabling the commutative-family rewrites such as
	// ReduceSum(BitShift(A)) → BitShift(ReduceSum(A)).
	Linear bool
}

// None reports whether no property is set (rewrite partition point).
func (p Properties) None() bool {
	return !p.Associative && !p.Commutative && !p.Distributive && !p.Linear
}

// Source provides the elements of a logical tensor by index. Materialized
// tensors, lazy views over other Sources, and fused operator pipelines all
// implement it; fused kernels are Source compositions that are only
// materialized at fusion-block boundaries.
//
// Load may use internal scratch buffers, so Sources are not safe for
// concurrent use. The index slice passed to Load is owned by the caller and
// must not be retained.
type Source interface {
	Shape() tensor.Shape
	Load(idx []int) float32
}

// Operator is a single DNN operator instance (type + attributes).
type Operator interface {
	// Type returns the ONNX-style operator name, e.g. "Conv".
	Type() string
	// NumOutputs returns how many output tensors the operator produces.
	NumOutputs() int
	// InferShapes computes output shapes from input shapes.
	InferShapes(in []tensor.Shape) ([]tensor.Shape, error)
	// Mapping classifies the operator per Table 2. For shape-sensitive
	// operators (elementwise with broadcasting) the classification uses
	// the given input shapes; in == nil returns the canonical
	// classification used in the paper's Table 2.
	Mapping(in []tensor.Shape) MappingType
	// FLOPs estimates the floating-point operations for the given input
	// shapes, following the paper's conventions (one FLOP per produced
	// element for elementwise operators, zero for pure data movement).
	FLOPs(in []tensor.Shape) int64
	// Properties reports the operator's mathematical properties.
	Properties() Properties
	// Virtualize builds a lazy Source computing output outNo over the
	// given input Sources. The input shapes must already be valid for
	// this operator.
	Virtualize(ins []Source, outNo int) (Source, error)
	// AttrKey returns a stable encoding of the operator's attributes,
	// used for kernel-cache and profile-database keys.
	AttrKey() string
}

// tensorSource adapts a materialized tensor to the Source interface.
type tensorSource struct{ t *tensor.Tensor }

func (s tensorSource) Shape() tensor.Shape    { return s.t.Shape() }
func (s tensorSource) Load(idx []int) float32 { return s.t.At(idx...) }

// LoadBlock copies a contiguous run of the tensor's row-major data;
// materialized tensors are the leaves every blocked fast path bottoms out
// in.
func (s tensorSource) LoadBlock(dst []float32, off, n int) {
	copy(dst, s.t.Data()[off:off+n])
}

// AsSource wraps a materialized tensor as a Source.
func AsSource(t *tensor.Tensor) Source { return tensorSource{t} }

// AsTensor unwraps a Source created by AsSource, or returns nil.
func AsTensor(s Source) *tensor.Tensor {
	if ts, ok := s.(tensorSource); ok {
		return ts.t
	}
	return nil
}

// Materialize evaluates src into a freshly allocated tensor.
func Materialize(src Source) *tensor.Tensor {
	if t := AsTensor(src); t != nil {
		return t.Clone()
	}
	out := tensor.NewOf(src.Shape())
	MaterializeInto(src, out, make([]int, src.Shape().Rank()))
	return out
}

// MaterializeRange evaluates elements [lo, hi) of src's row-major order
// into dst.Data()[lo:hi]. It takes the blocked fast path when src exposes
// one (no per-element Unravel or virtual dispatch), falling back to the
// scalar tree-walk otherwise. idx is caller-owned scratch of at least src's
// rank, used only on the scalar fallback. This is the executor's inner
// loop: the parallel executor covers an output by calling it on disjoint
// ranges from different workers, each with its own Source tree and idx.
func MaterializeRange(src Source, dst *tensor.Tensor, idx []int, lo, hi int) {
	if hi <= lo {
		return
	}
	data := dst.Data()[lo:hi]
	if t := AsTensor(src); t != nil {
		copy(data, t.Data()[lo:hi])
		return
	}
	if blk, ok := AsBlock(src); ok {
		blk.LoadBlock(data, lo, hi-lo)
		return
	}
	shape := src.Shape()
	idx = idx[:shape.Rank()]
	shape.Unravel(lo, idx)
	for i := range data {
		data[i] = src.Load(idx)
		incIndex(shape, idx)
	}
}

// MaterializeInto evaluates src into dst, whose shape must equal src's,
// one scalar Load per element. It deliberately ignores blocked fast paths:
// this is the reference (oracle) evaluation order that LoadBlock
// implementations are checked against. idx is caller-owned scratch of at
// least src's rank, so a caller that reuses dst and idx across evaluations
// performs no allocation here; Sources themselves must not allocate per
// Load for that to hold.
func MaterializeInto(src Source, dst *tensor.Tensor, idx []int) {
	if t := AsTensor(src); t != nil {
		copy(dst.Data(), t.Data())
		return
	}
	shape := src.Shape()
	data := dst.Data()
	idx = idx[:shape.Rank()]
	for off := range data {
		shape.Unravel(off, idx)
		data[off] = src.Load(idx)
	}
}

// Eval runs op on materialized inputs, returning materialized outputs.
// This is the reference (unfused) execution path.
func Eval(op Operator, ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
	srcs := make([]Source, len(ins))
	shapes := make([]tensor.Shape, len(ins))
	for i, t := range ins {
		srcs[i] = AsSource(t)
		shapes[i] = t.Shape()
	}
	if _, err := op.InferShapes(shapes); err != nil {
		return nil, fmt.Errorf("ops: %s shape inference: %w", op.Type(), err)
	}
	outs := make([]*tensor.Tensor, op.NumOutputs())
	for o := range outs {
		src, err := op.Virtualize(srcs, o)
		if err != nil {
			return nil, fmt.Errorf("ops: %s virtualize: %w", op.Type(), err)
		}
		outs[o] = Materialize(src)
	}
	return outs, nil
}

// Eval1 is Eval for the common single-output case.
func Eval1(op Operator, ins ...*tensor.Tensor) (*tensor.Tensor, error) {
	outs, err := Eval(op, ins)
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// Key returns the stable identity of an operator instance: its type plus
// attribute encoding. Two operators with equal Keys have identical semantics.
func Key(op Operator) string {
	a := op.AttrKey()
	if a == "" {
		return op.Type()
	}
	return op.Type() + "[" + a + "]"
}

func shapesString(shapes []tensor.Shape) string {
	out := ""
	for i, s := range shapes {
		if i > 0 {
			out += ","
		}
		out += s.String()
	}
	return out
}

func errInputs(op string, want string, got int) error {
	return fmt.Errorf("ops: %s expects %s inputs, got %d", op, want, got)
}
