package ops

// Typed attribute accessors over the operator catalog. The ONNX exporter
// (internal/onnx) reconstructs each operator's ONNX attributes from these;
// they complement the generic Attr and the accessors that predate them
// (TransposePerm, MatMulTrans, ReduceInfo, BatchNormEps).

// ConvInfo extracts the attributes of a Conv or ConvTranspose.
func ConvInfo(op Operator) (attrs ConvAttrs, transposed, ok bool) {
	switch c := op.(type) {
	case *conv:
		return c.attrs, false, true
	case *convT:
		return c.attrs, true, true
	}
	return ConvAttrs{}, false, false
}

// PoolInfo extracts the attributes of a pooling operator.
func PoolInfo(op Operator) (attrs PoolAttrs, avg, global, ok bool) {
	p, isPool := op.(*pool)
	if !isPool {
		return PoolAttrs{}, false, false, false
	}
	return p.attrs, p.avg, p.global, true
}

// GemmInfo extracts the attributes of a Gemm.
func GemmInfo(op Operator) (alpha, beta float32, transA, transB, ok bool) {
	g, isGemm := op.(*gemm)
	if !isGemm {
		return 0, 0, false, false, false
	}
	return g.alpha, g.beta, g.transA, g.transB, true
}

// SoftmaxInfo extracts the axis of a Softmax or LogSoftmax.
func SoftmaxInfo(op Operator) (axis int, log, ok bool) {
	s, isSM := op.(*softmax)
	if !isSM {
		return 0, false, false
	}
	return s.axis, s.log, true
}

// GatherAxis extracts the axis of a Gather.
func GatherAxis(op Operator) (int, bool) {
	g, isGather := op.(*gather)
	if !isGather {
		return 0, false
	}
	return g.axis, true
}

// InstanceNormEps extracts the epsilon of an InstanceNormalization.
func InstanceNormEps(op Operator) (float32, bool) {
	n, isIN := op.(*instancenorm)
	if !isIN {
		return 0, false
	}
	return n.eps, true
}

// attrFloat reads a float32 attribute stashed by a constructor.
func attrFloat(op Operator, key string) (float32, bool) {
	v, ok := Attr(op, key).(float32)
	return v, ok
}

// attrInt reads an int attribute stashed by a constructor.
func attrInt(op Operator, key string) (int, bool) {
	v, ok := Attr(op, key).(int)
	return v, ok
}

// attrInts reads an []int attribute stashed by a constructor.
func attrInts(op Operator, key string) ([]int, bool) {
	v, ok := Attr(op, key).([]int)
	return v, ok
}

// ScalarConst extracts the constant of AddConst, MulConst, or the
// scalar-exponent Pow (NewPowConst). kind is the operator Type().
func ScalarConst(op Operator) (kind string, c float32, ok bool) {
	switch op.Type() {
	case "AddConst", "MulConst":
		c, ok = attrFloat(op, "c")
	case "Pow":
		c, ok = attrFloat(op, "p")
	default:
		return "", 0, false
	}
	return op.Type(), c, ok
}

// ClipRange extracts the [min, max] bounds of a Clip.
func ClipRange(op Operator) (min, max float32, ok bool) {
	if op.Type() != "Clip" {
		return 0, 0, false
	}
	min, ok1 := attrFloat(op, "min")
	max, ok2 := attrFloat(op, "max")
	return min, max, ok1 && ok2
}

// LeakyReluAlpha extracts the negative slope of a LeakyRelu.
func LeakyReluAlpha(op Operator) (float32, bool) {
	if op.Type() != "LeakyRelu" {
		return 0, false
	}
	return attrFloat(op, "alpha")
}

// ReshapeTarget extracts a Reshape's target shape (may contain -1).
func ReshapeTarget(op Operator) ([]int, bool) {
	if op.Type() != "Reshape" {
		return nil, false
	}
	return attrInts(op, "shape")
}

// FlattenAxis extracts a Flatten's split axis.
func FlattenAxis(op Operator) (int, bool) {
	if op.Type() != "Flatten" {
		return 0, false
	}
	return attrInt(op, "axis")
}

// SqueezeAxes extracts a Squeeze's axes (empty slice = drop all size-1).
func SqueezeAxes(op Operator) ([]int, bool) {
	if op.Type() != "Squeeze" {
		return nil, false
	}
	return attrInts(op, "axes")
}

// UnsqueezeAxes extracts an Unsqueeze's inserted axes.
func UnsqueezeAxes(op Operator) ([]int, bool) {
	if op.Type() != "Unsqueeze" {
		return nil, false
	}
	return attrInts(op, "axes")
}

// SliceInfo extracts a Slice's per-axis ranges.
func SliceInfo(op Operator) (axes, starts, ends []int, ok bool) {
	if op.Type() != "Slice" {
		return nil, nil, nil, false
	}
	axes, ok1 := attrInts(op, "axes")
	starts, ok2 := attrInts(op, "starts")
	ends, ok3 := attrInts(op, "ends")
	return axes, starts, ends, ok1 && ok2 && ok3
}

// ConcatAxis extracts a Concat's axis.
func ConcatAxis(op Operator) (int, bool) {
	if op.Type() != "Concat" {
		return 0, false
	}
	return attrInt(op, "axis")
}

// SplitInfo extracts a Split's axis and output sizes.
func SplitInfo(op Operator) (axis int, sizes []int, ok bool) {
	if op.Type() != "Split" {
		return 0, nil, false
	}
	axis, ok1 := attrInt(op, "axis")
	sizes, ok2 := attrInts(op, "sizes")
	return axis, sizes, ok1 && ok2
}

// ExpandTarget extracts an Expand's broadcast target shape.
func ExpandTarget(op Operator) ([]int, bool) {
	if op.Type() != "Expand" {
		return nil, false
	}
	return attrInts(op, "shape")
}

// ResizeScales extracts the per-dimension integer scales of a Resize or
// Upsample.
func ResizeScales(op Operator) ([]int, bool) {
	if op.Type() != "Resize" && op.Type() != "Upsample" {
		return nil, false
	}
	return attrInts(op, "scales")
}

// BlockSize extracts the block size of DepthToSpace or SpaceToDepth.
func BlockSize(op Operator) (int, bool) {
	if op.Type() != "DepthToSpace" && op.Type() != "SpaceToDepth" {
		return 0, false
	}
	return attrInt(op, "block")
}
