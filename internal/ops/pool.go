package ops

import (
	"fmt"
	"math"

	"dnnfusion/internal/tensor"
)

// PoolAttrs configures MaxPool and AveragePool; semantics match ConvAttrs.
type PoolAttrs struct {
	Kernel  []int
	Strides []int
	Pads    []int
}

// NewMaxPool returns the N-dimensional max pooling operator
// (Many-to-Many per Table 2).
func NewMaxPool(attrs PoolAttrs) Operator { return &pool{attrs: attrs, avg: false} }

// NewAveragePool returns the N-dimensional average pooling operator with
// count_include_pad=false semantics (padding excluded from the divisor).
func NewAveragePool(attrs PoolAttrs) Operator { return &pool{attrs: attrs, avg: true} }

// NewGlobalAveragePool averages over all spatial dimensions, keeping them as
// size-1 dims ([N, C, S..] → [N, C, 1..]).
func NewGlobalAveragePool() Operator { return &pool{global: true, avg: true} }

type pool struct {
	attrs  PoolAttrs
	avg    bool
	global bool
}

func (p *pool) Type() string {
	switch {
	case p.global:
		return "GlobalAveragePool"
	case p.avg:
		return "AveragePool"
	default:
		return "MaxPool"
	}
}
func (p *pool) NumOutputs() int { return 1 }
func (p *pool) AttrKey() string {
	if p.global {
		return ""
	}
	return fmt.Sprintf("k=%v,s=%v,p=%v", p.attrs.Kernel, p.attrs.Strides, p.attrs.Pads)
}
func (p *pool) Properties() Properties {
	if p.avg {
		return Properties{Linear: true}
	}
	return Properties{}
}
func (p *pool) Mapping(in []tensor.Shape) MappingType { return ManyToMany }

func (p *pool) resolved(x tensor.Shape) (kernel, strides, pads []int, err error) {
	spatial := x.Rank() - 2
	if spatial < 1 {
		return nil, nil, nil, fmt.Errorf("%s: input %v must have spatial dims", p.Type(), x)
	}
	if p.global {
		kernel = append([]int(nil), x[2:]...)
		strides = make([]int, spatial)
		pads = make([]int, spatial)
		for i := range strides {
			strides[i] = 1
		}
		return kernel, strides, pads, nil
	}
	a := ConvAttrs{Strides: p.attrs.Strides, Pads: p.attrs.Pads}.normalized(spatial)
	kernel = ConvAttrs{Strides: p.attrs.Kernel}.normalized(spatial).Strides
	return kernel, a.Strides, a.Pads, nil
}

func (p *pool) outShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) != 1 {
		return nil, errInputs(p.Type(), "1", len(in))
	}
	x := in[0]
	kernel, strides, pads, err := p.resolved(x)
	if err != nil {
		return nil, err
	}
	out := tensor.Shape{x[0], x[1]}
	for i := 0; i < x.Rank()-2; i++ {
		s := (x[2+i]+2*pads[i]-kernel[i])/strides[i] + 1
		if s <= 0 {
			return nil, fmt.Errorf("%s: non-positive output dim for %v", p.Type(), x)
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *pool) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	out, err := p.outShape(in)
	if err != nil {
		return nil, err
	}
	return []tensor.Shape{out}, nil
}

func (p *pool) FLOPs(in []tensor.Shape) int64 {
	out, err := p.outShape(in)
	if err != nil {
		return 0
	}
	kernel, _, _, _ := p.resolved(in[0])
	k := int64(1)
	for _, d := range kernel {
		k *= int64(d)
	}
	return int64(out.NumElements()) * k
}

func (p *pool) Virtualize(ins []Source, outNo int) (Source, error) {
	if outNo != 0 || len(ins) != 1 {
		return nil, errInputs(p.Type(), "1", len(ins))
	}
	x := ins[0].Shape()
	out, err := p.outShape([]tensor.Shape{x})
	if err != nil {
		return nil, err
	}
	kernel, strides, pads, _ := p.resolved(x)
	src := &poolSource{
		shape:   out,
		in:      ins[0],
		avg:     p.avg,
		kernel:  kernel,
		strides: strides,
		pads:    pads,
		xShape:  x,
		spatial: x.Rank() - 2,
		buf:     make([]int, x.Rank()),
	}
	src.total = 1
	for _, k := range kernel {
		src.total *= k
	}
	return blockedPool(src), nil
}

// blockedPool upgrades a pooling source to flat window loops when the
// input exposes flat data or can be staged into per-session scratch; the
// window iteration order matches the scalar path, so results are
// bit-for-bit equal.
func blockedPool(s *poolSource) Source {
	xData, xStage, ok := flatOrStage(s.in, s.xShape.NumElements())
	if !ok {
		return s
	}
	return &poolBlockSource{
		poolSource: *s,
		xData:      xData,
		xStage:     xStage,
		xStrides:   s.xShape.Strides(),
		idxBuf:     make([]int, s.shape.Rank()),
		sched:      DefaultSchedule(s.total),
	}
}

type poolSource struct {
	shape   tensor.Shape
	in      Source
	avg     bool
	kernel  []int
	strides []int
	pads    []int
	// Shape and window size hoisted from Load to Virtualize time.
	xShape  tensor.Shape
	spatial int
	total   int
	buf     []int
}

func (s *poolSource) Shape() tensor.Shape { return s.shape }

func (s *poolSource) Load(idx []int) float32 {
	xShape := s.xShape
	spatial := s.spatial
	s.buf[0], s.buf[1] = idx[0], idx[1]
	total := s.total
	acc := math.Inf(-1)
	sum, count := 0.0, 0
	for kp := 0; kp < total; kp++ {
		rem := kp
		ok := true
		for i := spatial - 1; i >= 0; i-- {
			k := rem % s.kernel[i]
			rem /= s.kernel[i]
			pos := idx[2+i]*s.strides[i] - s.pads[i] + k
			if pos < 0 || pos >= xShape[2+i] {
				ok = false
				break
			}
			s.buf[2+i] = pos
		}
		if !ok {
			continue
		}
		v := float64(s.in.Load(s.buf))
		sum += v
		count++
		acc = math.Max(acc, v)
	}
	if s.avg {
		if count == 0 {
			return 0
		}
		return float32(sum / float64(count))
	}
	return float32(acc)
}

// poolBlockSource walks the requested output range with a row-major
// odometer and evaluates every window over the flat input slice.
type poolBlockSource struct {
	poolSource
	xData    []float32
	xStage   BlockSource
	xStrides []int
	idxBuf   []int
	// sched is the kernel's tile schedule; like conv, pooling keeps its
	// odometer evaluation and uses the schedule only for parallel chunk
	// alignment (TileSpan).
	sched Schedule
}

func (s *poolBlockSource) LoadBlock(dst []float32, off, n int) {
	if s.xStage != nil {
		// Re-streamed every call: inputs change between runs.
		s.xStage.LoadBlock(s.xData, 0, len(s.xData))
	}
	idx := s.idxBuf
	s.shape.Unravel(off, idx)
	for t := 0; t < n; t++ {
		dst[t] = s.eval(idx)
		incIndex(s.shape, idx)
	}
}

func (s *poolBlockSource) eval(idx []int) float32 {
	base := idx[0]*s.xStrides[0] + idx[1]*s.xStrides[1]
	acc := math.Inf(-1)
	sum, count := 0.0, 0
	for kp := 0; kp < s.total; kp++ {
		rem := kp
		ok := true
		xOff := base
		for i := s.spatial - 1; i >= 0; i-- {
			k := rem % s.kernel[i]
			rem /= s.kernel[i]
			pos := idx[2+i]*s.strides[i] - s.pads[i] + k
			if pos < 0 || pos >= s.xShape[2+i] {
				ok = false
				break
			}
			xOff += pos * s.xStrides[2+i]
		}
		if !ok {
			continue
		}
		v := float64(s.xData[xOff])
		sum += v
		count++
		acc = math.Max(acc, v)
	}
	if s.avg {
		if count == 0 {
			return 0
		}
		return float32(sum / float64(count))
	}
	return float32(acc)
}
