package ops

import (
	"math"
	"testing"

	"dnnfusion/internal/tensor"
)

// Edge-case coverage for operator semantics beyond the happy paths.

func TestGatherNegativeIndices(t *testing.T) {
	data := tensor.FromSlice([]float32{10, 20, 30}, 3)
	idx := tensor.FromSlice([]float32{-1, 0}, 2)
	got := mustEval1(t, NewGather(0), data, idx)
	want := tensor.FromSlice([]float32{30, 10}, 2)
	if !tensor.AllClose(got, want, 0) {
		t.Errorf("Gather with negative index = %v, want %v", got.Data(), want.Data())
	}
}

func TestSoftmaxAxisZero(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	sm := mustEval1(t, NewSoftmax(0), x)
	// Columns sum to one.
	for j := 0; j < 2; j++ {
		sum := float64(sm.At(0, j)) + float64(sm.At(1, j))
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("column %d sums to %v", j, sum)
		}
	}
}

func TestReduceMultipleAxesKeepDims(t *testing.T) {
	x := tensor.New(2, 3, 4).Rand(5)
	got := mustEval1(t, NewReduce(ReduceSum, true, 0, 2), x)
	if !got.Shape().Equal(tensor.Of(1, 3, 1)) {
		t.Fatalf("shape = %v, want [1x3x1]", got.Shape())
	}
	var want float64
	for i := 0; i < 2; i++ {
		for k := 0; k < 4; k++ {
			want += float64(x.At(i, 1, k))
		}
	}
	if math.Abs(float64(got.At(0, 1, 0))-want) > 1e-4 {
		t.Errorf("reduced value = %v, want %v", got.At(0, 1, 0), want)
	}
}

func TestCumSum2DAxis0(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	got := mustEval1(t, NewCumSum(0), x)
	want := tensor.FromSlice([]float32{1, 2, 4, 6}, 2, 2)
	if !tensor.AllClose(got, want, 1e-6) {
		t.Errorf("CumSum axis0 = %v, want %v", got.Data(), want.Data())
	}
}

func TestConcatThreeInputs(t *testing.T) {
	a := tensor.FromSlice([]float32{1}, 1, 1)
	b := tensor.FromSlice([]float32{2, 3}, 1, 2)
	c := tensor.FromSlice([]float32{4}, 1, 1)
	got := mustEval1(t, NewConcat(1), a, b, c)
	want := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 4)
	if !tensor.AllClose(got, want, 0) {
		t.Errorf("Concat3 = %v, want %v", got.Data(), want.Data())
	}
}

func TestSliceNegativeBounds(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 5}, 5)
	got := mustEval1(t, NewSlice([]int{0}, []int{-3}, []int{-1}), x)
	want := tensor.FromSlice([]float32{3, 4}, 2)
	if !tensor.AllClose(got, want, 0) {
		t.Errorf("negative Slice = %v, want %v", got.Data(), want.Data())
	}
}

func TestEinsumErrors(t *testing.T) {
	shapes2 := []tensor.Shape{tensor.Of(2, 3), tensor.Of(3, 4)}
	for _, spec := range []string{"nonsense", "ab,bc", "ab,bc->ax", "abc,bc->ac"} {
		if _, err := NewEinsum(spec).InferShapes(shapes2); err == nil {
			t.Errorf("Einsum(%q) accepted invalid spec/shapes", spec)
		}
	}
	// Outer product (no contraction).
	outer := mustEval1(t, NewEinsum("a,b->ab"),
		tensor.FromSlice([]float32{1, 2}, 2), tensor.FromSlice([]float32{3, 4, 5}, 3))
	if !outer.Shape().Equal(tensor.Of(2, 3)) || outer.At(1, 2) != 10 {
		t.Errorf("einsum outer product wrong: %v %v", outer.Shape(), outer.Data())
	}
}

func TestGemmArityErrors(t *testing.T) {
	g := NewGemm(1, 1, false, false)
	if _, err := g.InferShapes([]tensor.Shape{tensor.Of(2, 3)}); err == nil {
		t.Error("Gemm with one input accepted")
	}
	if _, err := g.InferShapes([]tensor.Shape{tensor.Of(2, 3, 4), tensor.Of(4, 5)}); err == nil {
		t.Error("Gemm with rank-3 A accepted")
	}
	if _, err := g.InferShapes([]tensor.Shape{tensor.Of(2, 3), tensor.Of(4, 5), tensor.Of(9, 9)}); err == nil {
		t.Error("Gemm with non-broadcastable C accepted")
	}
}

func TestDepthToSpaceErrors(t *testing.T) {
	if _, err := NewDepthToSpace(2).InferShapes([]tensor.Shape{tensor.Of(1, 3, 4, 4)}); err == nil {
		t.Error("DepthToSpace with C not divisible by b^2 accepted")
	}
	if _, err := NewSpaceToDepth(2).InferShapes([]tensor.Shape{tensor.Of(1, 3, 5, 4)}); err == nil {
		t.Error("SpaceToDepth with odd H accepted")
	}
}

func TestExpandInvalid(t *testing.T) {
	if _, err := NewExpand(2, 3).InferShapes([]tensor.Shape{tensor.Of(4)}); err == nil {
		t.Error("Expand of incompatible shape accepted")
	}
	// Expand may not shrink.
	if _, err := NewExpand(1, 3).InferShapes([]tensor.Shape{tensor.Of(2, 3)}); err == nil {
		t.Error("Expand that shrinks accepted")
	}
}

func TestPoolTooLargeKernel(t *testing.T) {
	p := NewMaxPool(PoolAttrs{Kernel: []int{5}})
	if _, err := p.InferShapes([]tensor.Shape{tensor.Of(1, 1, 3, 3)}); err == nil {
		t.Error("pool with kernel larger than input accepted")
	}
}

func TestGlobalAveragePool3D(t *testing.T) {
	x := tensor.Full(2, 1, 3, 2, 2, 2)
	got := mustEval1(t, NewGlobalAveragePool(), x)
	if !got.Shape().Equal(tensor.Of(1, 3, 1, 1, 1)) {
		t.Fatalf("GAP 3D shape = %v", got.Shape())
	}
	for _, v := range got.Data() {
		if v != 2 {
			t.Fatalf("GAP of constant tensor = %v, want 2", v)
		}
	}
}

func TestWhereBroadcast(t *testing.T) {
	cond := tensor.FromSlice([]float32{1, 0}, 2, 1)
	a := tensor.FromSlice([]float32{10, 20, 30}, 3)
	b := tensor.FromSlice([]float32{-1, -2, -3}, 3)
	got := mustEval1(t, NewWhere(), cond, a, b)
	if !got.Shape().Equal(tensor.Of(2, 3)) {
		t.Fatalf("Where broadcast shape = %v", got.Shape())
	}
	if got.At(0, 1) != 20 || got.At(1, 1) != -2 {
		t.Errorf("Where broadcast values wrong: %v", got.Data())
	}
}

func TestConvDilation(t *testing.T) {
	// Dilated 2x2 kernel over a 3x3 input samples the corners.
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	w := tensor.Full(1, 1, 1, 2, 2)
	got := mustEval1(t, NewConv(ConvAttrs{Dilations: []int{2}}), x, w)
	if !got.Shape().Equal(tensor.Of(1, 1, 1, 1)) {
		t.Fatalf("dilated conv shape = %v", got.Shape())
	}
	if got.At(0, 0, 0, 0) != 1+3+7+9 {
		t.Errorf("dilated conv = %v, want 20", got.At(0, 0, 0, 0))
	}
}

func TestConvGroupsMismatch(t *testing.T) {
	conv := NewConv(ConvAttrs{Groups: 3})
	in := []tensor.Shape{tensor.Of(1, 4, 8, 8), tensor.Of(6, 2, 3, 3)}
	if _, err := conv.InferShapes(in); err == nil {
		t.Error("Conv with channels not divisible by groups accepted")
	}
}

func TestBitShiftExactness(t *testing.T) {
	// Left shifts on whole numbers must be exact under the float encoding.
	x := tensor.FromSlice([]float32{1, 3, 1000, 123456}, 4)
	got := mustEval1(t, NewBitShift(3), x)
	for i, v := range x.Data() {
		if got.Data()[i] != v*8 {
			t.Errorf("BitShift(3) inexact at %d: %v", i, got.Data()[i])
		}
	}
}

func TestIdentityAndCastZeroFLOPs(t *testing.T) {
	for _, op := range []Operator{NewIdentity(), NewCast()} {
		if f := op.FLOPs([]tensor.Shape{tensor.Of(100)}); f != 0 {
			t.Errorf("%s FLOPs = %d, want 0", op.Type(), f)
		}
	}
}

func TestMovementAttrKeysDistinct(t *testing.T) {
	keys := map[string]bool{}
	for _, op := range []Operator{
		NewSlice([]int{0}, []int{0}, []int{1}),
		NewSlice([]int{0}, []int{1}, []int{2}),
		NewTranspose(0, 1),
		NewTranspose(1, 0),
		NewSplit(0, 1, 2),
		NewSplit(1, 1, 2),
		NewReshape(2, 3),
		NewReshape(3, 2),
	} {
		k := Key(op)
		if keys[k] {
			t.Errorf("duplicate key %q", k)
		}
		keys[k] = true
	}
}

func TestSharedSourceReentrancy(t *testing.T) {
	// A single Source consumed by two parents (shared subtree) must not
	// corrupt its scratch buffers across interleaved Loads.
	x := tensor.New(4, 4).Rand(3)
	sq, err := NewSquare().Virtualize([]Source{AsSource(x)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	add, err := NewAdd().Virtualize([]Source{sq, sq}, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := Materialize(add)
	for off, v := range x.Data() {
		want := 2 * v * v
		if math.Abs(float64(out.Data()[off]-want)) > 1e-5 {
			t.Fatalf("shared source corrupted at %d: %v != %v", off, out.Data()[off], want)
		}
	}
}
