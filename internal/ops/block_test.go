package ops

import (
	"math"
	"testing"

	"dnnfusion/internal/tensor"
)

// Block parity suite: every BlockSource must produce bit-identical values
// to the scalar Load tree-walk on the same source, at every offset and
// chunking. The scalar path is the oracle (ops.MaterializeInto keeps using
// it); LoadBlock is only a faster evaluation order.

// loadAll evaluates src one scalar Load per element — the oracle order.
func loadAll(src Source) []float32 {
	shape := src.Shape()
	out := make([]float32, shape.NumElements())
	idx := make([]int, shape.Rank())
	for off := range out {
		shape.Unravel(off, idx)
		out[off] = src.Load(idx)
	}
	return out
}

// assertBlockParity checks LoadBlock against the scalar oracle as one
// whole-range call and as a sweep of misaligned chunkings (the shapes
// parallel grain splitting produces).
func assertBlockParity(t *testing.T, name string, src Source) {
	t.Helper()
	blk, ok := AsBlock(src)
	if !ok {
		t.Fatalf("%s: source %T does not implement BlockSource", name, src)
	}
	want := loadAll(src)
	n := len(want)
	check := func(label string, got []float32) {
		t.Helper()
		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("%s (%s): element %d = %v, scalar oracle says %v", name, label, i, got[i], want[i])
			}
		}
	}
	whole := make([]float32, n)
	blk.LoadBlock(whole, 0, n)
	check("whole range", whole)
	for _, chunk := range []int{1, 3, 7, n/3 + 1} {
		if chunk <= 0 {
			continue
		}
		got := make([]float32, n)
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			blk.LoadBlock(got[lo:hi], lo, hi-lo)
		}
		check("chunked", got)
	}
}

// virtualize composes a source via the operator, failing the test on error.
func virtualize(t *testing.T, op Operator, ins ...Source) Source {
	t.Helper()
	src, err := op.Virtualize(ins, 0)
	if err != nil {
		t.Fatalf("%s: Virtualize: %v", op.Type(), err)
	}
	return src
}

func randSource(seed uint64, dims ...int) Source {
	return AsSource(tensor.New(dims...).Rand(seed))
}

func TestBlockParityPointwise(t *testing.T) {
	x := randSource(1, 4, 6, 8)
	y := randSource(2, 4, 6, 8)
	bias := randSource(3, 8)   // suffix broadcast
	scalar := randSource(4, 1) // single element
	scalar0 := AsSource(tensor.Scalar(2.5))

	add := virtualize(t, NewAdd(), x, y)
	assertBlockParity(t, "Add same-shape", add)
	assertBlockParity(t, "Add suffix-broadcast bias", virtualize(t, NewAdd(), x, bias))
	assertBlockParity(t, "Mul scalar[1]", virtualize(t, NewMul(), x, scalar))
	assertBlockParity(t, "Mul scalar rank-0", virtualize(t, NewMul(), x, scalar0))
	assertBlockParity(t, "trailing-suffix [6 8]", virtualize(t, NewAdd(), x, randSource(5, 6, 8)))

	// Fused chain: sigmoid(relu(x+bias)*y) streams end to end.
	chain := virtualize(t, NewSigmoid(), virtualize(t, NewMul(), virtualize(t, NewRelu(), virtualize(t, NewAdd(), x, bias)), y))
	assertBlockParity(t, "fused elementwise chain", chain)

	// Middle-axis broadcast cannot stream flat: must stay scalar.
	mid := virtualize(t, NewAdd(), x, randSource(6, 4, 1, 8))
	if _, ok := AsBlock(mid); ok {
		t.Fatalf("middle-axis broadcast upgraded to BlockSource; its flat orders diverge")
	}
}

func TestBlockParityMovement(t *testing.T) {
	x := randSource(10, 3, 4, 5)
	assertBlockParity(t, "Reshape", virtualize(t, NewReshape(4, 15), x))
	assertBlockParity(t, "Flatten", virtualize(t, NewFlatten(1), x))
	assertBlockParity(t, "Squeeze", virtualize(t, NewSqueeze(0), randSource(11, 1, 4, 5)))
	assertBlockParity(t, "Unsqueeze", virtualize(t, NewUnsqueeze(1), x))
	assertBlockParity(t, "Slice", virtualize(t, NewSlice([]int{1, 2}, []int{1, 1}, []int{3, 4}), x))
	// Reorganize over a fused producer streams through it.
	chain := virtualize(t, NewReshape(60), virtualize(t, NewRelu(), x))
	assertBlockParity(t, "Reshape over fused chain", chain)
	// Transpose is genuinely gather-like: stays scalar.
	if _, ok := AsBlock(virtualize(t, NewTranspose(2, 0, 1), x)); ok {
		t.Fatalf("Transpose upgraded to BlockSource; its access pattern is not flat")
	}
}

func TestBlockParityMatMul(t *testing.T) {
	a := randSource(20, 7, 5)
	b := randSource(21, 5, 6)
	assertBlockParity(t, "MatMul 2D", virtualize(t, NewMatMul(), a, b))
	assertBlockParity(t, "MatMul transA", virtualize(t, NewMatMulT(true, false), randSource(22, 5, 7), b))
	assertBlockParity(t, "MatMul transB", virtualize(t, NewMatMulT(false, true), a, randSource(23, 6, 5)))
	assertBlockParity(t, "MatMul transAB", virtualize(t, NewMatMulT(true, true), randSource(24, 5, 7), randSource(25, 6, 5)))

	// Batched with broadcast: a [2,1,4,5] against b [3,5,6] -> [2,3,4,6].
	assertBlockParity(t, "MatMul batch broadcast",
		virtualize(t, NewMatMul(), randSource(26, 2, 1, 4, 5), randSource(27, 3, 5, 6)))

	// Staged operand: a fused elementwise producer feeds A, so A has no
	// flat backing and must be staged into per-session scratch.
	aChain := virtualize(t, NewRelu(), virtualize(t, NewAdd(), a, randSource(28, 7, 5)))
	staged := virtualize(t, NewMatMul(), aChain, b)
	if _, ok := staged.(*matmulBlockSource); !ok {
		t.Fatalf("MatMul over fused producer is %T, want staged matmulBlockSource", staged)
	}
	assertBlockParity(t, "MatMul staged A", staged)
	bChain := virtualize(t, NewSigmoid(), b)
	assertBlockParity(t, "MatMul staged B", virtualize(t, NewMatMul(), a, bChain))
	assertBlockParity(t, "MatMul staged batch",
		virtualize(t, NewMatMul(), virtualize(t, NewRelu(), randSource(29, 2, 4, 5)), bChain))
}

func TestBlockParityGemm(t *testing.T) {
	a := randSource(30, 6, 4)
	b := randSource(31, 4, 5)
	c := randSource(32, 5) // broadcast addend
	assertBlockParity(t, "Gemm", virtualize(t, NewGemm(1.5, 0.5, false, false), a, b, c))
	assertBlockParity(t, "Gemm transB", virtualize(t, NewGemm(1, 1, false, true), a, randSource(33, 5, 4), c))
	assertBlockParity(t, "Gemm transA", virtualize(t, NewGemm(2, 0, true, false), randSource(34, 4, 6), b))
	assertBlockParity(t, "Gemm staged",
		virtualize(t, NewGemm(1, 1, false, false), virtualize(t, NewRelu(), a), b, c))
}

func TestBlockParityConvPool(t *testing.T) {
	x := randSource(40, 2, 4, 9, 9)
	w := randSource(41, 6, 4, 3, 3)
	bias := randSource(42, 6)
	attrs := ConvAttrs{Strides: []int{2, 2}, Pads: []int{1, 1}, Dilations: []int{1, 1}, Groups: 1}
	assertBlockParity(t, "Conv", virtualize(t, NewConv(attrs), x, w, bias))
	assertBlockParity(t, "Conv dilated", virtualize(t, NewConv(ConvAttrs{Pads: []int{2, 2}, Dilations: []int{2, 2}}), x, w))
	assertBlockParity(t, "Conv grouped",
		virtualize(t, NewConv(ConvAttrs{Groups: 2}), x, randSource(43, 6, 2, 3, 3)))
	// Staged x: a fused producer feeds the convolution.
	assertBlockParity(t, "Conv staged x",
		virtualize(t, NewConv(attrs), virtualize(t, NewRelu(), x), w, bias))

	assertBlockParity(t, "MaxPool", virtualize(t, NewMaxPool(PoolAttrs{Kernel: []int{3, 3}, Strides: []int{2, 2}, Pads: []int{1, 1}}), x))
	assertBlockParity(t, "AveragePool", virtualize(t, NewAveragePool(PoolAttrs{Kernel: []int{2, 2}, Strides: []int{2, 2}}), x))
	assertBlockParity(t, "GlobalAveragePool", virtualize(t, NewGlobalAveragePool(), x))
	assertBlockParity(t, "MaxPool staged", virtualize(t, NewMaxPool(PoolAttrs{Kernel: []int{2, 2}, Strides: []int{1, 1}}), virtualize(t, NewSigmoid(), x)))
}

func TestBlockParitySoftmax(t *testing.T) {
	x := randSource(50, 3, 4, 7)
	assertBlockParity(t, "Softmax innermost", virtualize(t, NewSoftmax(-1), x))
	assertBlockParity(t, "LogSoftmax innermost", virtualize(t, NewLogSoftmax(2), x))
	assertBlockParity(t, "Softmax over fused chain", virtualize(t, NewSoftmax(-1), virtualize(t, NewRelu(), x)))
	// Non-innermost softmax has no flat row order: stays scalar.
	if _, ok := AsBlock(virtualize(t, NewSoftmax(1), x)); ok {
		t.Fatalf("non-innermost Softmax upgraded to BlockSource")
	}
}

// TestMaterializeRangeScalarFallback pins the parallel executor's scalar
// fallback: a gather-like source evaluated by MaterializeRange over
// disjoint ranges must agree with the oracle.
func TestMaterializeRangeScalarFallback(t *testing.T) {
	x := randSource(60, 4, 5, 6)
	tr := virtualize(t, NewTranspose(2, 1, 0), x)
	want := loadAll(tr)
	dst := tensor.NewOf(tr.Shape())
	idx := make([]int, tr.Shape().Rank())
	for _, split := range []int{1, 17, 40, len(want)} {
		for i := range dst.Data() {
			dst.Data()[i] = math.Float32frombits(0x7fc00001) // poison NaN
		}
		for lo := 0; lo < len(want); lo += split {
			hi := lo + split
			if hi > len(want) {
				hi = len(want)
			}
			MaterializeRange(tr, dst, idx, lo, hi)
		}
		for i, v := range dst.Data() {
			if math.Float32bits(v) != math.Float32bits(want[i]) {
				t.Fatalf("split %d: element %d = %v, want %v", split, i, v, want[i])
			}
		}
	}
}

// TestBlockParityMatMulRowTile targets the multi-row tile (mulRows4):
// matrices tall enough for several 4-row tiles plus a remainder row, under
// whole-range and misaligned chunked evaluation, across transA, batching,
// and staged operands. Batched serving leans on this being bit-exact — a
// batch-capacity matmul is just a taller matmul.
func TestBlockParityMatMulRowTile(t *testing.T) {
	b := randSource(41, 12, 9)
	assertBlockParity(t, "MatMul 17x12 (tiles+remainder)",
		virtualize(t, NewMatMul(), randSource(40, 17, 12), b))
	assertBlockParity(t, "MatMul 16x12 (exact tiles)",
		virtualize(t, NewMatMul(), randSource(42, 16, 12), b))
	assertBlockParity(t, "MatMul 3x12 (below tile)",
		virtualize(t, NewMatMul(), randSource(43, 3, 12), b))
	assertBlockParity(t, "MatMul tall transA",
		virtualize(t, NewMatMulT(true, false), randSource(44, 12, 17), b))
	assertBlockParity(t, "MatMul tall batched",
		virtualize(t, NewMatMul(), randSource(45, 3, 10, 12), b))
	assertBlockParity(t, "MatMul tall staged A",
		virtualize(t, NewMatMul(), virtualize(t, NewRelu(), randSource(46, 17, 12)), b))
}
