package ops

import (
	"fmt"

	"dnnfusion/internal/tensor"
)

// movement is the shared implementation of pure data-movement operators:
// every output element is a copy of exactly one input element, located by an
// index transform. Covers the paper's Reorganize and Shuffle classes, the
// index-remapping One-to-One operators (Slice, Split, Concat), and the
// copying One-to-Many operators (Expand, Resize, Upsample). FLOPs are zero;
// the cost of these operators is entirely memory traffic, which is why the
// intra-block optimization (Figure 5) folds them into index changes.
type movement struct {
	name       string
	arity      int // -1 for variadic (Concat)
	numOutputs int
	mapping    MappingType
	attrKey    string
	props      Properties
	infer      func(in []tensor.Shape) ([]tensor.Shape, error)
	// mapIndex maps an index of output outNo to (input number, input index).
	// dst is scratch of the selected input's rank.
	mapIndex func(in []tensor.Shape, outNo int, outIdx []int, dst []int) (int, []int)
	// bindMapIndex, when set, specializes mapIndex for fixed input shapes.
	// Virtualize calls it once so shape-dependent work (output-shape
	// inference, slice-range resolution) happens at bind time and Load is
	// allocation-free — a precondition for the zero-allocation execution
	// path.
	bindMapIndex func(in []tensor.Shape, outNo int) (func(outIdx, dst []int) (int, []int), error)
	// attrs holds structured attributes for rewrite-rule inspection.
	attrs map[string]any
}

// Attr returns a structured attribute of a data-movement or pointwise
// operator (e.g. the permutation of a Transpose) or nil when absent.
func Attr(op Operator, key string) any {
	switch o := op.(type) {
	case *movement:
		return o.attrs[key]
	case *pointwise:
		return o.attrs[key]
	}
	return nil
}

func (m *movement) Type() string           { return m.name }
func (m *movement) NumOutputs() int        { return m.numOutputs }
func (m *movement) Properties() Properties { return m.props }
func (m *movement) AttrKey() string        { return m.attrKey }
func (m *movement) FLOPs(in []tensor.Shape) int64 {
	return 0
}

func (m *movement) Mapping(in []tensor.Shape) MappingType { return m.mapping }

func (m *movement) checkArity(n int) error {
	if m.arity >= 0 && n != m.arity {
		return errInputs(m.name, fmt.Sprint(m.arity), n)
	}
	if m.arity < 0 && n < 1 {
		return errInputs(m.name, ">=1", n)
	}
	return nil
}

func (m *movement) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	if err := m.checkArity(len(in)); err != nil {
		return nil, err
	}
	return m.infer(in)
}

// IndexMapper is implemented by data-movement operators. The code generator
// uses it to fold movement into index arithmetic instead of materializing
// (intra-block optimization, Figure 5).
type IndexMapper interface {
	MapIndex(in []tensor.Shape, outNo int, outIdx []int, dst []int) (int, []int)
}

func (m *movement) MapIndex(in []tensor.Shape, outNo int, outIdx []int, dst []int) (int, []int) {
	return m.mapIndex(in, outNo, outIdx, dst)
}

func (m *movement) Virtualize(ins []Source, outNo int) (Source, error) {
	if err := m.checkArity(len(ins)); err != nil {
		return nil, err
	}
	if outNo < 0 || outNo >= m.numOutputs {
		return nil, fmt.Errorf("%s: output %d out of range", m.name, outNo)
	}
	shapes := make([]tensor.Shape, len(ins))
	maxRank := 0
	for i, s := range ins {
		shapes[i] = s.Shape()
		if r := s.Shape().Rank(); r > maxRank {
			maxRank = r
		}
	}
	outs, err := m.infer(shapes)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", m.name, err)
	}
	src := &movementSource{
		op:    m,
		shape: outs[outNo],
		outNo: outNo,
		ins:   ins,
		inSh:  shapes,
		buf:   make([]int, maxRank),
	}
	if m.bindMapIndex != nil {
		fn, err := m.bindMapIndex(shapes, outNo)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.name, err)
		}
		src.mapFn = fn
	}
	return m.blocked(src), nil
}

// blocked upgrades a movement source to a blocked one when its index map
// is affine enough to stream contiguous runs: Reorganize ops are flat
// identities, and Slice shifts whole innermost rows. Shuffle and
// One-to-Many movement (Transpose, Expand, Resize, ...) stay scalar —
// their access patterns are genuinely gather-like.
func (m *movement) blocked(src *movementSource) Source {
	blk, ok := AsBlock(src.ins[0])
	if !ok {
		return src
	}
	switch {
	case m.mapping == Reorganize:
		// Output flat offset == input flat offset: delegate wholesale.
		return &reorganizeBlockSource{movementSource: *src, blk: blk}
	case m.name == "Slice" && src.shape.Rank() >= 1:
		starts, err := sliceStarts(m, src.inSh[0])
		if err != nil {
			return src
		}
		return &sliceBlockSource{
			movementSource: *src,
			blk:            blk,
			starts:         starts,
			idxBuf:         make([]int, src.shape.Rank()),
		}
	}
	return src
}

// sliceStarts resolves a Slice operator's per-axis start offsets.
func sliceStarts(m *movement, in tensor.Shape) ([]int, error) {
	resolve, ok := m.attrs["resolve"].(func(tensor.Shape) ([]int, []int, error))
	if !ok {
		return nil, fmt.Errorf("Slice: no resolver")
	}
	starts, _, err := resolve(in)
	return starts, err
}

// reorganizeBlockSource streams a Reshape/Flatten/Squeeze/Unsqueeze:
// the flat data is untouched, so blocks pass straight through.
type reorganizeBlockSource struct {
	movementSource
	blk BlockSource
}

func (s *reorganizeBlockSource) LoadBlock(dst []float32, off, n int) {
	s.blk.LoadBlock(dst, off, n)
}

// sliceBlockSource streams a Slice row by row: within an innermost output
// row the input offsets are contiguous, so each covered row segment is one
// block load at a shifted base offset.
type sliceBlockSource struct {
	movementSource
	blk    BlockSource
	starts []int
	idxBuf []int
}

func (s *sliceBlockSource) LoadBlock(dst []float32, off, n int) {
	out := s.shape
	in := s.inSh[0]
	rowLen := out[out.Rank()-1]
	for n > 0 {
		j := off % rowLen
		run := rowLen - j
		if run > n {
			run = n
		}
		out.Unravel(off, s.idxBuf)
		for i := range s.idxBuf {
			s.idxBuf[i] += s.starts[i]
		}
		s.blk.LoadBlock(dst[:run], in.Ravel(s.idxBuf), run)
		dst = dst[run:]
		off += run
		n -= run
	}
}

type movementSource struct {
	op    *movement
	shape tensor.Shape
	outNo int
	ins   []Source
	inSh  []tensor.Shape
	buf   []int
	// mapFn is the shape-specialized index transform (see bindMapIndex);
	// nil falls back to the operator's generic mapIndex.
	mapFn func(outIdx, dst []int) (int, []int)
}

func (s *movementSource) Shape() tensor.Shape { return s.shape }

func (s *movementSource) Load(idx []int) float32 {
	if s.mapFn != nil {
		sel, inIdx := s.mapFn(idx, s.buf)
		return s.ins[sel].Load(inIdx)
	}
	sel, inIdx := s.op.mapIndex(s.inSh, s.outNo, idx, s.buf)
	return s.ins[sel].Load(inIdx)
}

// flatRemap is the shared index transform of all Reorganize operators:
// row-major flatten of the output index, unravelled into the input shape.
func flatRemap(in []tensor.Shape, out tensor.Shape) func([]tensor.Shape, int, []int, []int) (int, []int) {
	return func(inShapes []tensor.Shape, _ int, outIdx []int, dst []int) (int, []int) {
		return 0, inShapes[0].Unravel(out.Ravel(outIdx), dst[:inShapes[0].Rank()])
	}
}

// reorganize builds a Reorganize-class operator given its shape function.
func reorganize(name, attrKey string, infer func(tensor.Shape) (tensor.Shape, error)) Operator {
	m := &movement{
		name:       name,
		arity:      1,
		numOutputs: 1,
		mapping:    Reorganize,
		attrKey:    attrKey,
		props:      Properties{Linear: true},
	}
	m.infer = func(in []tensor.Shape) ([]tensor.Shape, error) {
		out, err := infer(in[0])
		if err != nil {
			return nil, err
		}
		return []tensor.Shape{out}, nil
	}
	m.mapIndex = func(inShapes []tensor.Shape, _ int, outIdx []int, dst []int) (int, []int) {
		out, _ := infer(inShapes[0])
		return 0, inShapes[0].Unravel(out.Ravel(outIdx), dst[:inShapes[0].Rank()])
	}
	// Shape inference per Load allocates; resolve the output shape once per
	// Source so fused Loads stay allocation-free.
	m.bindMapIndex = func(inShapes []tensor.Shape, _ int) (func([]int, []int) (int, []int), error) {
		out, err := infer(inShapes[0])
		if err != nil {
			return nil, err
		}
		in := inShapes[0]
		return func(outIdx, dst []int) (int, []int) {
			return 0, in.Unravel(out.Ravel(outIdx), dst[:in.Rank()])
		}, nil
	}
	return m
}

// NewReshape reshapes to the target shape; one dimension may be -1 to infer.
func NewReshape(target ...int) Operator {
	t := tensor.Shape(target).Clone()
	op := reorganize("Reshape", fmt.Sprintf("shape=%v", t), func(in tensor.Shape) (tensor.Shape, error) {
		out := t.Clone()
		infer := -1
		known := 1
		for i, d := range out {
			if d == -1 {
				if infer >= 0 {
					return nil, fmt.Errorf("Reshape: multiple -1 dims in %v", t)
				}
				infer = i
			} else {
				known *= d
			}
		}
		n := in.NumElements()
		if infer >= 0 {
			if known == 0 || n%known != 0 {
				return nil, fmt.Errorf("Reshape: cannot infer dim for %v from %v", t, in)
			}
			out[infer] = n / known
		}
		if out.NumElements() != n {
			return nil, fmt.Errorf("Reshape: %v incompatible with input %v", t, in)
		}
		return out, nil
	}).(*movement)
	op.attrs = map[string]any{"shape": []int(t)}
	return op
}

// NewFlatten flattens into a 2-D tensor splitting at axis.
func NewFlatten(axis int) Operator {
	op := reorganize("Flatten", fmt.Sprintf("axis=%d", axis), func(in tensor.Shape) (tensor.Shape, error) {
		ax, ok := tensor.NormalizeAxis(axis, in.Rank()+1)
		if !ok {
			return nil, fmt.Errorf("Flatten: axis %d out of range for %v", axis, in)
		}
		a, b := 1, 1
		for i, d := range in {
			if i < ax {
				a *= d
			} else {
				b *= d
			}
		}
		return tensor.Of(a, b), nil
	}).(*movement)
	op.attrs = map[string]any{"axis": axis}
	return op
}

// NewSqueeze removes the given size-1 axes (all size-1 axes if none given).
func NewSqueeze(axes ...int) Operator {
	ax := append([]int{}, axes...)
	op := reorganize("Squeeze", fmt.Sprintf("axes=%v", axes), func(in tensor.Shape) (tensor.Shape, error) {
		drop := make(map[int]bool)
		if len(axes) == 0 {
			for i, d := range in {
				if d == 1 {
					drop[i] = true
				}
			}
		}
		for _, a := range axes {
			ax, ok := tensor.NormalizeAxis(a, in.Rank())
			if !ok || in[ax] != 1 {
				return nil, fmt.Errorf("Squeeze: axis %d invalid for %v", a, in)
			}
			drop[ax] = true
		}
		out := make(tensor.Shape, 0, in.Rank())
		for i, d := range in {
			if !drop[i] {
				out = append(out, d)
			}
		}
		return out, nil
	}).(*movement)
	op.attrs = map[string]any{"axes": ax}
	return op
}

// NewUnsqueeze inserts size-1 dimensions at the given output axes.
func NewUnsqueeze(axes ...int) Operator {
	ax := append([]int{}, axes...)
	op := reorganize("Unsqueeze", fmt.Sprintf("axes=%v", axes), func(in tensor.Shape) (tensor.Shape, error) {
		outRank := in.Rank() + len(axes)
		ins := make(map[int]bool)
		for _, a := range axes {
			ax, ok := tensor.NormalizeAxis(a, outRank)
			if !ok || ins[ax] {
				return nil, fmt.Errorf("Unsqueeze: axis %d invalid for %v", a, in)
			}
			ins[ax] = true
		}
		out := make(tensor.Shape, 0, outRank)
		j := 0
		for i := 0; i < outRank; i++ {
			if ins[i] {
				out = append(out, 1)
			} else {
				out = append(out, in[j])
				j++
			}
		}
		return out, nil
	}).(*movement)
	op.attrs = map[string]any{"axes": ax}
	return op
}

// NewTranspose permutes dimensions; output dim i is input dim perm[i].
func NewTranspose(perm ...int) Operator {
	p := append([]int(nil), perm...)
	m := &movement{
		name:       "Transpose",
		arity:      1,
		numOutputs: 1,
		mapping:    Shuffle,
		attrKey:    fmt.Sprintf("perm=%v", p),
		props:      Properties{Linear: true},
		attrs:      map[string]any{"perm": p},
	}
	m.infer = func(in []tensor.Shape) ([]tensor.Shape, error) {
		s := in[0]
		if len(p) != s.Rank() {
			return nil, fmt.Errorf("Transpose: perm %v does not match rank of %v", p, s)
		}
		seen := make([]bool, s.Rank())
		out := make(tensor.Shape, s.Rank())
		for i, ax := range p {
			if ax < 0 || ax >= s.Rank() || seen[ax] {
				return nil, fmt.Errorf("Transpose: invalid perm %v for %v", p, s)
			}
			seen[ax] = true
			out[i] = s[ax]
		}
		return []tensor.Shape{out}, nil
	}
	m.mapIndex = func(in []tensor.Shape, _ int, outIdx []int, dst []int) (int, []int) {
		d := dst[:len(p)]
		for i, ax := range p {
			d[ax] = outIdx[i]
		}
		return 0, d
	}
	return m
}

// TransposePerm returns the permutation of a Transpose operator, or nil if
// op is not a Transpose.
func TransposePerm(op Operator) []int {
	if op.Type() != "Transpose" {
		return nil
	}
	p, _ := Attr(op, "perm").([]int)
	return p
}

// NewDepthToSpace rearranges depth into spatial blocks (DCR mode, NCHW).
func NewDepthToSpace(block int) Operator {
	m := &movement{
		name:       "DepthToSpace",
		arity:      1,
		numOutputs: 1,
		mapping:    Shuffle,
		attrKey:    fmt.Sprintf("block=%d", block),
		props:      Properties{Linear: true},
		attrs:      map[string]any{"block": block},
	}
	m.infer = func(in []tensor.Shape) ([]tensor.Shape, error) {
		s := in[0]
		if s.Rank() != 4 || s[1]%(block*block) != 0 {
			return nil, fmt.Errorf("DepthToSpace: invalid input %v for block %d", s, block)
		}
		return []tensor.Shape{tensor.Of(s[0], s[1]/(block*block), s[2]*block, s[3]*block)}, nil
	}
	m.mapIndex = func(in []tensor.Shape, _ int, o []int, dst []int) (int, []int) {
		cOut := in[0][1] / (block * block)
		h, bh := o[2]/block, o[2]%block
		w, bw := o[3]/block, o[3]%block
		d := dst[:4]
		d[0], d[1], d[2], d[3] = o[0], (bh*block+bw)*cOut+o[1], h, w
		return 0, d
	}
	return m
}

// NewSpaceToDepth rearranges spatial blocks into depth (NCHW).
func NewSpaceToDepth(block int) Operator {
	m := &movement{
		name:       "SpaceToDepth",
		arity:      1,
		numOutputs: 1,
		mapping:    Shuffle,
		attrKey:    fmt.Sprintf("block=%d", block),
		props:      Properties{Linear: true},
		attrs:      map[string]any{"block": block},
	}
	m.infer = func(in []tensor.Shape) ([]tensor.Shape, error) {
		s := in[0]
		if s.Rank() != 4 || s[2]%block != 0 || s[3]%block != 0 {
			return nil, fmt.Errorf("SpaceToDepth: invalid input %v for block %d", s, block)
		}
		return []tensor.Shape{tensor.Of(s[0], s[1]*block*block, s[2]/block, s[3]/block)}, nil
	}
	m.mapIndex = func(in []tensor.Shape, _ int, o []int, dst []int) (int, []int) {
		cIn := in[0][1]
		blk := o[1] / cIn
		bh, bw := blk/block, blk%block
		d := dst[:4]
		d[0], d[1], d[2], d[3] = o[0], o[1]%cIn, o[2]*block+bh, o[3]*block+bw
		return 0, d
	}
	return m
}

// NewSlice extracts [start, end) with unit step along each of the given
// axes. Negative indices are resolved against the dimension size.
func NewSlice(axes, starts, ends []int) Operator {
	ax := append([]int(nil), axes...)
	st := append([]int(nil), starts...)
	en := append([]int(nil), ends...)
	resolve := func(s tensor.Shape) (starts, sizes []int, err error) {
		starts = make([]int, s.Rank())
		sizes = append([]int(nil), s...)
		for i, a := range ax {
			na, ok := tensor.NormalizeAxis(a, s.Rank())
			if !ok {
				return nil, nil, fmt.Errorf("Slice: axis %d out of range for %v", a, s)
			}
			b, e := st[i], en[i]
			if b < 0 {
				b += s[na]
			}
			if e < 0 {
				e += s[na]
			}
			if e > s[na] {
				e = s[na]
			}
			if b < 0 || b >= e {
				return nil, nil, fmt.Errorf("Slice: empty or invalid range [%d,%d) on axis %d of %v", b, e, na, s)
			}
			starts[na] = b
			sizes[na] = e - b
		}
		return starts, sizes, nil
	}
	m := &movement{
		name:       "Slice",
		arity:      1,
		numOutputs: 1,
		mapping:    OneToOne,
		attrKey:    fmt.Sprintf("axes=%v,starts=%v,ends=%v", ax, st, en),
		props:      Properties{Linear: true},
		// The blocked fast path re-resolves start offsets at bind time.
		attrs: map[string]any{
			"axes": ax, "starts": st, "ends": en,
			"resolve": func(s tensor.Shape) ([]int, []int, error) {
				return resolve(s)
			},
		},
	}
	m.infer = func(in []tensor.Shape) ([]tensor.Shape, error) {
		_, sizes, err := resolve(in[0])
		if err != nil {
			return nil, err
		}
		return []tensor.Shape{sizes}, nil
	}
	m.mapIndex = func(in []tensor.Shape, _ int, o []int, dst []int) (int, []int) {
		starts, _, _ := resolve(in[0])
		d := dst[:len(o)]
		for i := range o {
			d[i] = o[i] + starts[i]
		}
		return 0, d
	}
	// Range resolution per Load allocates; do it once per Source.
	m.bindMapIndex = func(in []tensor.Shape, _ int) (func([]int, []int) (int, []int), error) {
		starts, _, err := resolve(in[0])
		if err != nil {
			return nil, err
		}
		return func(o, dst []int) (int, []int) {
			d := dst[:len(o)]
			for i := range o {
				d[i] = o[i] + starts[i]
			}
			return 0, d
		}, nil
	}
	return m
}

// NewSplit splits the input along axis into len(sizes) outputs.
func NewSplit(axis int, sizes ...int) Operator {
	sz := append([]int(nil), sizes...)
	m := &movement{
		name:       "Split",
		arity:      1,
		numOutputs: len(sz),
		mapping:    OneToOne,
		attrKey:    fmt.Sprintf("axis=%d,sizes=%v", axis, sz),
		props:      Properties{Linear: true},
		attrs:      map[string]any{"axis": axis, "sizes": sz},
	}
	m.infer = func(in []tensor.Shape) ([]tensor.Shape, error) {
		s := in[0]
		na, ok := tensor.NormalizeAxis(axis, s.Rank())
		if !ok {
			return nil, fmt.Errorf("Split: axis %d out of range for %v", axis, s)
		}
		total := 0
		outs := make([]tensor.Shape, len(sz))
		for i, n := range sz {
			total += n
			o := s.Clone()
			o[na] = n
			outs[i] = o
		}
		if total != s[na] {
			return nil, fmt.Errorf("Split: sizes %v do not sum to dim %d of %v", sz, s[na], s)
		}
		return outs, nil
	}
	m.mapIndex = func(in []tensor.Shape, outNo int, o []int, dst []int) (int, []int) {
		na, _ := tensor.NormalizeAxis(axis, in[0].Rank())
		off := 0
		for i := 0; i < outNo; i++ {
			off += sz[i]
		}
		d := dst[:len(o)]
		copy(d, o)
		d[na] += off
		return 0, d
	}
	return m
}

// NewConcat concatenates its inputs along axis.
func NewConcat(axis int) Operator {
	m := &movement{
		name:       "Concat",
		arity:      -1,
		numOutputs: 1,
		mapping:    OneToOne,
		attrKey:    fmt.Sprintf("axis=%d", axis),
		props:      Properties{Linear: true},
		attrs:      map[string]any{"axis": axis},
	}
	m.infer = func(in []tensor.Shape) ([]tensor.Shape, error) {
		na, ok := tensor.NormalizeAxis(axis, in[0].Rank())
		if !ok {
			return nil, fmt.Errorf("Concat: axis %d out of range for %v", axis, in[0])
		}
		out := in[0].Clone()
		for _, s := range in[1:] {
			if s.Rank() != out.Rank() {
				return nil, fmt.Errorf("Concat: rank mismatch %v vs %v", in[0], s)
			}
			for i := range s {
				if i == na {
					continue
				}
				if s[i] != out[i] {
					return nil, fmt.Errorf("Concat: dim %d mismatch %v vs %v", i, in[0], s)
				}
			}
			out[na] += s[na]
		}
		return []tensor.Shape{out}, nil
	}
	m.mapIndex = func(in []tensor.Shape, _ int, o []int, dst []int) (int, []int) {
		na, _ := tensor.NormalizeAxis(axis, in[0].Rank())
		pos := o[na]
		for sel, s := range in {
			if pos < s[na] {
				d := dst[:len(o)]
				copy(d, o)
				d[na] = pos
				return sel, d
			}
			pos -= s[na]
		}
		panic("Concat: index out of range")
	}
	return m
}

// NewExpand broadcasts the input to the target shape (One-to-Many).
func NewExpand(target ...int) Operator {
	t := tensor.Shape(target).Clone()
	m := &movement{
		name:       "Expand",
		arity:      1,
		numOutputs: 1,
		mapping:    OneToMany,
		attrKey:    fmt.Sprintf("shape=%v", t),
		props:      Properties{Linear: true},
		attrs:      map[string]any{"shape": []int(t)},
	}
	m.infer = func(in []tensor.Shape) ([]tensor.Shape, error) {
		out, err := tensor.BroadcastShapes(in[0], t)
		if err != nil {
			return nil, fmt.Errorf("Expand: %w", err)
		}
		if !out.Equal(t) {
			return nil, fmt.Errorf("Expand: input %v does not broadcast to %v", in[0], t)
		}
		return []tensor.Shape{out}, nil
	}
	m.mapIndex = func(in []tensor.Shape, _ int, o []int, dst []int) (int, []int) {
		return 0, tensor.BroadcastIndex(o, in[0], dst[:in[0].Rank()])
	}
	return m
}

// NewResize scales spatial dimensions by integer factors using
// nearest-neighbor interpolation (mode used by the paper's detection
// models). scales has one entry per input dimension.
func NewResize(scales ...int) Operator {
	sc := append([]int(nil), scales...)
	m := &movement{
		name:       "Resize",
		arity:      1,
		numOutputs: 1,
		mapping:    OneToMany,
		attrKey:    fmt.Sprintf("scales=%v", sc),
		props:      Properties{Linear: true},
		attrs:      map[string]any{"scales": sc},
	}
	m.infer = func(in []tensor.Shape) ([]tensor.Shape, error) {
		s := in[0]
		if s.Rank() != len(sc) {
			return nil, fmt.Errorf("Resize: scales %v do not match rank of %v", sc, s)
		}
		out := make(tensor.Shape, s.Rank())
		for i, d := range s {
			if sc[i] < 1 {
				return nil, fmt.Errorf("Resize: invalid scale %d", sc[i])
			}
			out[i] = d * sc[i]
		}
		return []tensor.Shape{out}, nil
	}
	m.mapIndex = func(in []tensor.Shape, _ int, o []int, dst []int) (int, []int) {
		d := dst[:len(o)]
		for i := range o {
			d[i] = o[i] / sc[i]
		}
		return 0, d
	}
	return m
}

// NewUpsample is Resize restricted to NCHW spatial upsampling by factor f.
func NewUpsample(f int) Operator {
	op := NewResize(1, 1, f, f).(*movement)
	op.name = "Upsample"
	op.attrKey = fmt.Sprintf("f=%d", f)
	op.attrs["f"] = f
	return op
}

// NewGather gathers slices of the data input (input 0) along axis using the
// integer-valued indices input (input 1). Classified One-to-Many: one input
// element may be copied to many output positions.
func NewGather(axis int) Operator {
	return &gather{axis: axis}
}

type gather struct{ axis int }

func (g *gather) Type() string           { return "Gather" }
func (g *gather) NumOutputs() int        { return 1 }
func (g *gather) Properties() Properties { return Properties{Linear: true} }
func (g *gather) AttrKey() string        { return fmt.Sprintf("axis=%d", g.axis) }
func (g *gather) FLOPs(in []tensor.Shape) int64 {
	return 0
}
func (g *gather) Mapping(in []tensor.Shape) MappingType { return OneToMany }

func (g *gather) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	if len(in) != 2 {
		return nil, errInputs("Gather", "2", len(in))
	}
	data, idx := in[0], in[1]
	ax, ok := tensor.NormalizeAxis(g.axis, data.Rank())
	if !ok {
		return nil, fmt.Errorf("Gather: axis %d out of range for %v", g.axis, data)
	}
	out := make(tensor.Shape, 0, data.Rank()-1+idx.Rank())
	out = append(out, data[:ax]...)
	out = append(out, idx...)
	out = append(out, data[ax+1:]...)
	return []tensor.Shape{out}, nil
}

func (g *gather) Virtualize(ins []Source, outNo int) (Source, error) {
	if outNo != 0 {
		return nil, fmt.Errorf("Gather: output %d out of range", outNo)
	}
	if len(ins) != 2 {
		return nil, errInputs("Gather", "2", len(ins))
	}
	shapes := []tensor.Shape{ins[0].Shape(), ins[1].Shape()}
	outs, err := g.InferShapes(shapes)
	if err != nil {
		return nil, err
	}
	ax, _ := tensor.NormalizeAxis(g.axis, shapes[0].Rank())
	return &gatherSource{
		shape:   outs[0],
		data:    ins[0],
		index:   ins[1],
		axis:    ax,
		axisDim: shapes[0][ax],
		dBuf:    make([]int, shapes[0].Rank()),
		iBuf:    make([]int, shapes[1].Rank()),
		idxLen:  shapes[1].Rank(),
	}, nil
}

type gatherSource struct {
	shape tensor.Shape
	data  Source
	index Source
	axis  int
	// axisDim is the gathered-axis length, hoisted from Load so negative
	// indices resolve without re-querying the data source's shape.
	axisDim int
	dBuf    []int
	iBuf    []int
	idxLen  int
}

func (s *gatherSource) Shape() tensor.Shape { return s.shape }

func (s *gatherSource) Load(o []int) float32 {
	copy(s.iBuf, o[s.axis:s.axis+s.idxLen])
	gi := int(s.index.Load(s.iBuf))
	if gi < 0 {
		gi += s.axisDim
	}
	copy(s.dBuf[:s.axis], o[:s.axis])
	s.dBuf[s.axis] = gi
	copy(s.dBuf[s.axis+1:], o[s.axis+s.idxLen:])
	return s.data.Load(s.dBuf)
}
