package ops

// CatalogEntry describes one operator's canonical classification, mirroring
// the paper's Table 2.
type CatalogEntry struct {
	Name    string
	Mapping MappingType
	// Representative marks the example operators the paper highlights.
	Representative bool
	// Make builds a default instance of the operator for testing and for
	// rendering Table 2 from live metadata rather than a hardcoded list.
	Make func() Operator
}

// Catalog returns the full operator classification, grouped as in Table 2.
// Every entry's Mapping is cross-checked against the live operator's
// Mapping(nil) in tests, so the table cannot drift from the implementation.
func Catalog() []CatalogEntry {
	e := func(name string, rep bool, mk func() Operator) CatalogEntry {
		return CatalogEntry{Name: name, Mapping: mk().Mapping(nil), Representative: rep, Make: mk}
	}
	return []CatalogEntry{
		// One-to-One.
		e("Add", true, NewAdd),
		e("Sub", false, NewSub),
		e("Mul", false, NewMul),
		e("Div", false, NewDiv),
		e("Asin", false, NewAsin),
		e("BatchNormalization", false, func() Operator { return NewBatchNormalization(1e-5) }),
		e("BitShift", false, func() Operator { return NewBitShift(1) }),
		e("Cast", false, NewCast),
		e("Ceil", false, NewCeil),
		e("Clip", false, func() Operator { return NewClip(0, 6) }),
		e("Concat", false, func() Operator { return NewConcat(1) }),
		e("Cos", false, NewCos),
		e("Erf", false, NewErf),
		e("Exp", false, NewExp),
		e("Greater", false, NewGreater),
		e("LeakyRelu", false, func() Operator { return NewLeakyRelu(0.1) }),
		e("Log", false, NewLog),
		e("Not", false, NewNot),
		e("PRelu", false, NewPRelu),
		e("Reciprocal", false, NewReciprocal),
		e("Relu", true, NewRelu),
		e("Round", false, NewRound),
		e("Sigmoid", false, NewSigmoid),
		e("Sin", false, NewSin),
		e("Slice", false, func() Operator { return NewSlice([]int{0}, []int{0}, []int{1}) }),
		e("Split", false, func() Operator { return NewSplit(0, 1, 1) }),
		e("Sqrt", false, NewSqrt),
		e("Square", false, NewSquare),
		e("Tanh", false, NewTanh),
		e("Where", false, NewWhere),
		// One-to-Many.
		e("Expand", true, func() Operator { return NewExpand(2, 2) }),
		e("Gather", false, func() Operator { return NewGather(0) }),
		e("Resize", false, func() Operator { return NewResize(1, 1, 2, 2) }),
		e("Upsample", false, func() Operator { return NewUpsample(2) }),
		// Many-to-Many.
		e("AveragePool", false, func() Operator { return NewAveragePool(PoolAttrs{Kernel: []int{2}}) }),
		e("Conv", true, func() Operator { return NewConv(ConvAttrs{}) }),
		e("ConvTranspose", false, func() Operator { return NewConvTranspose(ConvAttrs{}) }),
		e("CumSum", false, func() Operator { return NewCumSum(0) }),
		e("Einsum", false, func() Operator { return NewEinsum("ab,bc->ac") }),
		e("Gemm", true, func() Operator { return NewGemm(1, 1, false, false) }),
		e("GlobalAveragePool", false, NewGlobalAveragePool),
		e("InstanceNormalization", false, func() Operator { return NewInstanceNormalization(1e-5) }),
		e("MatMul", false, NewMatMul),
		e("MaxPool", false, func() Operator { return NewMaxPool(PoolAttrs{Kernel: []int{2}}) }),
		e("ReduceMean", false, func() Operator { return NewReduce(ReduceMean, false, -1) }),
		e("ReduceProd", false, func() Operator { return NewReduce(ReduceProd, false, -1) }),
		e("ReduceSum", false, func() Operator { return NewReduce(ReduceSum, false, -1) }),
		e("Softmax", false, func() Operator { return NewSoftmax(-1) }),
		// Reorganize.
		e("Flatten", false, func() Operator { return NewFlatten(1) }),
		e("Reshape", true, func() Operator { return NewReshape(-1) }),
		e("Squeeze", false, func() Operator { return NewSqueeze() }),
		e("Unsqueeze", false, func() Operator { return NewUnsqueeze(0) }),
		// Shuffle.
		e("DepthToSpace", false, func() Operator { return NewDepthToSpace(2) }),
		e("SpaceToDepth", false, func() Operator { return NewSpaceToDepth(2) }),
		e("Transpose", true, func() Operator { return NewTranspose(1, 0) }),
	}
}
