// Package device is the analytical mobile-SoC simulator standing in for the
// paper's physical phones (Samsung Galaxy S20/S10, Honor Magic 2).
//
// The paper's performance effects all flow through quantities DNNFusion's
// compiler controls: the number of kernels (launch/dispatch overhead), the
// bytes of materialized intermediate results (memory bandwidth, cache and
// TLB misses), and per-kernel work (utilization). The simulator prices a
// kernel from exactly those counts with a roofline model over a cache
// hierarchy, so optimizations that reduce the counts reduce the simulated
// latency the way they reduce wall-clock on hardware. Absolute numbers are
// calibrated to the same order of magnitude as the paper's tables but are
// not expected to match; comparisons (who wins, by how much, where
// crossovers fall) are the reproduction target.
package device

import "fmt"

// Kind distinguishes CPU-style from GPU-style execution.
type Kind int

const (
	CPU Kind = iota
	GPU
)

func (k Kind) String() string {
	if k == GPU {
		return "GPU"
	}
	return "CPU"
}

// CacheLevel is one level of the data-cache or TLB hierarchy.
type CacheLevel struct {
	Name      string
	SizeBytes int64 // for TLBs: entries × page size (coverage)
	LineBytes int64
}

// Device is a mobile CPU or GPU profile.
type Device struct {
	Name string // e.g. "Snapdragon 865 CPU"
	SoC  string
	Kind Kind

	// PeakGFLOPS is the attainable peak of the unit (fp32 for CPU, fp16
	// for GPU, matching the paper's precision choices).
	PeakGFLOPS float64
	// HeavyEff / LightEff are the fractions of peak that compute-bound
	// (Conv/GEMM) and memory-bound (elementwise) kernels reach.
	HeavyEff float64
	LightEff float64
	// DRAMBandwidthGBs is sustained DRAM bandwidth for this unit.
	DRAMBandwidthGBs float64
	// KernelLaunchMs is per-kernel dispatch cost (thread-pool wake-up on
	// CPU, command-queue launch on GPU — the paper's "kernel launch
	// overhead" that makes deep unfused models GPU-hostile).
	KernelLaunchMs float64
	// BytesPerElem is the storage width (4 for fp32 CPU, 2 for fp16 GPU).
	BytesPerElem float64

	Caches []CacheLevel
	TLBs   []CacheLevel
}

// CacheBytes returns the L1 and L2 data-cache capacities the tuners price
// tile working sets against — hoisted here so the GA tuner and the
// schedule selector score the same memory hierarchy. Sparse profiles
// degrade conventionally rather than fail: no L2 level falls back to 4×
// L1, and a profile with no cache levels at all (a minimal hand-built
// Device) falls back to a 32 KiB L1, so compiling against it never
// panics.
func (d *Device) CacheBytes() (l1, l2 float64) {
	if len(d.Caches) == 0 {
		return 32 << 10, 4 * (32 << 10)
	}
	l1 = float64(d.Caches[0].SizeBytes)
	l2 = l1 * 4
	if len(d.Caches) > 1 {
		l2 = float64(d.Caches[1].SizeBytes)
	}
	return l1, l2
}

// Work describes one kernel for costing. All counts come from the compiler
// (internal/codegen) or the per-node fallback for unfused execution.
type Work struct {
	FLOPs int64
	// ReadBytes/WriteBytes are the kernel's boundary traffic in fp32
	// bytes (the device scales them by BytesPerElem/4).
	ReadBytes  int64
	WriteBytes int64
	// Heavy marks compute-bound kernels (contains Conv/GEMM-class work).
	Heavy bool
	// LayoutOptimized applies the inter-block data-format optimization's
	// efficiency bonus (§4.4.2) to heavy kernels.
	LayoutOptimized bool
	// ExtraMovementBytes is interior data-movement traffic that was NOT
	// folded into index arithmetic (charged when the intra-block
	// optimization is disabled).
	ExtraMovementBytes int64
	// Disruption counts access-order-disrupting operators (Shuffle,
	// One-to-Many) fused into a heavy kernel: they turn the contraction's
	// continuous reads into strided ones (the effect behind Table 3's
	// yellow cells). Each one costs heavy kernels a slice of efficiency.
	Disruption int
	// Quality scales kernel efficiency; baseline frameworks with weaker
	// generated kernels use values below 1. Zero means 1.
	Quality float64
}

// Cost is the priced kernel.
type Cost struct {
	TimeMs     float64
	ComputeMs  float64
	MemoryMs   float64
	OverheadMs float64
	DRAMBytes  int64
	// CacheMisses / TLBMisses are indexed like Device.Caches / TLBs.
	CacheMisses []int64
	TLBMisses   []int64
}

// layoutBonus is the heavy-kernel efficiency gain from the dominant-operator
// layout selection (§4.4.2); it is the main component of the paper's
// "other fusion-related optimizations" speedup.
const layoutBonus = 1.35

// disruptionPenalty is the per-operator efficiency loss when a shuffle or
// expanding operator is fused into a compute-bound kernel, destroying its
// continuous access pattern (§3.2's profitability discussion).
const disruptionPenalty = 0.82

// Price costs a single kernel on the device.
func (d *Device) Price(w Work) Cost {
	quality := w.Quality
	if quality == 0 {
		quality = 1
	}
	scale := d.BytesPerElem / 4
	traffic := float64(w.ReadBytes+w.WriteBytes+w.ExtraMovementBytes) * scale

	eff := d.LightEff
	if w.Heavy {
		eff = d.HeavyEff
		if w.LayoutOptimized {
			eff *= layoutBonus
		}
		for i := 0; i < w.Disruption; i++ {
			eff *= disruptionPenalty
		}
	}
	eff *= quality

	computeMs := float64(w.FLOPs) / (d.PeakGFLOPS * eff * 1e6)
	memoryMs := traffic / (d.DRAMBandwidthGBs * 1e6)
	c := Cost{
		ComputeMs:  computeMs,
		MemoryMs:   memoryMs,
		OverheadMs: d.KernelLaunchMs,
		DRAMBytes:  int64(traffic),
	}
	// Roofline: compute and memory overlap; dispatch does not.
	c.TimeMs = c.OverheadMs + maxf(computeMs, memoryMs)

	// Cache misses: every level sees the kernel's streaming traffic; the
	// fraction missing at a level grows as the working set outgrows it.
	ws := traffic
	for _, lvl := range d.Caches {
		lines := traffic / float64(lvl.LineBytes)
		frac := ws / (ws + float64(lvl.SizeBytes))
		if frac < 0.02 {
			frac = 0.02
		}
		c.CacheMisses = append(c.CacheMisses, int64(lines*frac))
	}
	for _, lvl := range d.TLBs {
		pages := traffic / float64(lvl.LineBytes)
		frac := ws / (ws + float64(lvl.SizeBytes))
		if frac < 0.02 {
			frac = 0.02
		}
		c.TLBMisses = append(c.TLBMisses, int64(pages*frac))
	}
	return c
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func (d *Device) String() string { return fmt.Sprintf("%s (%s)", d.Name, d.Kind) }

// --- Profiles of the paper's three phones ----------------------------------

const page = 4096

// Snapdragon865CPU models the Kryo 585 octa-core CPU of the Galaxy S20.
func Snapdragon865CPU() *Device {
	return &Device{
		Name: "Snapdragon 865 CPU", SoC: "Snapdragon 865", Kind: CPU,
		PeakGFLOPS: 230, HeavyEff: 0.50, LightEff: 0.06,
		DRAMBandwidthGBs: 14, KernelLaunchMs: 0.15, BytesPerElem: 4,
		Caches: []CacheLevel{
			{"L1", 384 << 10, 64},
			{"L2", 1280 << 10, 64},
			{"L3", 4 << 20, 64},
		},
		TLBs: []CacheLevel{
			{"L1-TLB", 192 * page, page},
			{"L2-TLB", 2048 * page, page},
		},
	}
}

// Adreno650 models the Galaxy S20's GPU (fp16 execution).
func Adreno650() *Device {
	return &Device{
		Name: "Adreno 650 GPU", SoC: "Snapdragon 865", Kind: GPU,
		PeakGFLOPS: 1100, HeavyEff: 0.40, LightEff: 0.05,
		DRAMBandwidthGBs: 28, KernelLaunchMs: 0.35, BytesPerElem: 2,
		Caches: []CacheLevel{
			{"L1", 128 << 10, 64},
			{"L2", 1536 << 10, 64},
		},
		TLBs: nil, // the profiler reports no GPU TLB counters (Figure 8)
	}
}

// Snapdragon855CPU models the Kryo 485 CPU of the Galaxy S10.
func Snapdragon855CPU() *Device {
	d := Snapdragon865CPU()
	d.Name, d.SoC = "Snapdragon 855 CPU", "Snapdragon 855"
	d.PeakGFLOPS, d.DRAMBandwidthGBs, d.KernelLaunchMs = 185, 12, 0.18
	d.Caches[2].SizeBytes = 2 << 20
	return d
}

// Adreno640 models the Galaxy S10's GPU.
func Adreno640() *Device {
	d := Adreno650()
	d.Name, d.SoC = "Adreno 640 GPU", "Snapdragon 855"
	d.PeakGFLOPS, d.DRAMBandwidthGBs, d.KernelLaunchMs = 850, 23, 0.40
	return d
}

// Kirin980CPU models the Honor Magic 2's ARM octa-core CPU.
func Kirin980CPU() *Device {
	d := Snapdragon865CPU()
	d.Name, d.SoC = "Kirin 980 CPU", "Kirin 980"
	d.PeakGFLOPS, d.DRAMBandwidthGBs, d.KernelLaunchMs = 170, 11, 0.20
	d.Caches[2].SizeBytes = 4 << 20
	return d
}

// MaliG76 models the Honor Magic 2's GPU.
func MaliG76() *Device {
	d := Adreno650()
	d.Name, d.SoC = "Mali-G76 GPU", "Kirin 980"
	d.PeakGFLOPS, d.DRAMBandwidthGBs, d.KernelLaunchMs = 700, 20, 0.50
	return d
}

// Phone groups a named handset's CPU and GPU, as used in the portability
// evaluation (Figure 10).
type Phone struct {
	Name string
	CPU  *Device
	GPU  *Device
}

// Phones returns the paper's three evaluation handsets; the Galaxy S20 is
// the primary device of Tables 1 and 6.
func Phones() []Phone {
	return []Phone{
		{"Samsung Galaxy S20", Snapdragon865CPU(), Adreno650()},
		{"Samsung Galaxy S10", Snapdragon855CPU(), Adreno640()},
		{"Honor Magic 2", Kirin980CPU(), MaliG76()},
	}
}
