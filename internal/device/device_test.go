package device

import (
	"testing"
	"testing/quick"
)

func TestProfilesSanity(t *testing.T) {
	for _, p := range Phones() {
		for _, d := range []*Device{p.CPU, p.GPU} {
			if d.PeakGFLOPS <= 0 || d.DRAMBandwidthGBs <= 0 || d.KernelLaunchMs <= 0 {
				t.Errorf("%s: non-positive parameters", d)
			}
			if d.HeavyEff <= d.LightEff {
				t.Errorf("%s: heavy efficiency must exceed light", d)
			}
			if len(d.Caches) == 0 {
				t.Errorf("%s: no cache levels", d)
			}
			for i := 1; i < len(d.Caches); i++ {
				if d.Caches[i].SizeBytes <= d.Caches[i-1].SizeBytes {
					t.Errorf("%s: cache sizes not increasing", d)
				}
			}
		}
		if p.CPU.Kind != CPU || p.GPU.Kind != GPU {
			t.Errorf("%s: kinds mixed up", p.Name)
		}
	}
	// GPU launch overhead exceeds CPU dispatch (the paper's kernel-launch
	// argument for why fusion helps GPUs more).
	if Adreno650().KernelLaunchMs <= Snapdragon865CPU().KernelLaunchMs {
		t.Error("GPU launch overhead should exceed CPU dispatch overhead")
	}
	// Newer SoCs are faster (Figure 10's premise).
	if Snapdragon855CPU().PeakGFLOPS >= Snapdragon865CPU().PeakGFLOPS {
		t.Error("S855 should be slower than S865")
	}
	if Kirin980CPU().PeakGFLOPS >= Snapdragon855CPU().PeakGFLOPS {
		t.Error("Kirin 980 should be slower than S855")
	}
}

func TestPriceComponents(t *testing.T) {
	d := Snapdragon865CPU()
	w := Work{FLOPs: 1 << 28, ReadBytes: 1 << 24, WriteBytes: 1 << 24, Heavy: true}
	c := d.Price(w)
	if c.TimeMs <= 0 || c.ComputeMs <= 0 || c.MemoryMs <= 0 {
		t.Fatalf("non-positive cost components: %+v", c)
	}
	if c.TimeMs < c.OverheadMs {
		t.Error("total time below launch overhead")
	}
	// Roofline: total = overhead + max(compute, memory).
	want := c.OverheadMs + c.ComputeMs
	if c.MemoryMs > c.ComputeMs {
		want = c.OverheadMs + c.MemoryMs
	}
	if c.TimeMs != want {
		t.Errorf("roofline broken: %v != %v", c.TimeMs, want)
	}
	if len(c.CacheMisses) != len(d.Caches) || len(c.TLBMisses) != len(d.TLBs) {
		t.Error("miss vectors do not match hierarchy")
	}
	// Misses decrease with cache level size.
	for i := 1; i < len(c.CacheMisses); i++ {
		if c.CacheMisses[i] > c.CacheMisses[i-1] {
			t.Errorf("misses increase with level: %v", c.CacheMisses)
		}
	}
}

func TestDisruptionPenalty(t *testing.T) {
	d := Snapdragon865CPU()
	base := Work{FLOPs: 1 << 28, ReadBytes: 1 << 20, WriteBytes: 1 << 20, Heavy: true}
	disrupted := base
	disrupted.Disruption = 2
	if d.Price(disrupted).ComputeMs <= d.Price(base).ComputeMs {
		t.Error("disruption should slow heavy kernels")
	}
	// Light kernels are bandwidth-bound; disruption leaves compute alone.
	light := Work{FLOPs: 1 << 20, ReadBytes: 1 << 20, WriteBytes: 1 << 20, Disruption: 3}
	lightBase := light
	lightBase.Disruption = 0
	if d.Price(light).ComputeMs != d.Price(lightBase).ComputeMs {
		t.Error("disruption should not affect light kernels")
	}
}

func TestGPUUsesFP16Traffic(t *testing.T) {
	cpu := Snapdragon865CPU()
	gpu := Adreno650()
	w := Work{FLOPs: 1, ReadBytes: 1 << 20, WriteBytes: 1 << 20}
	if gpu.Price(w).DRAMBytes >= cpu.Price(w).DRAMBytes {
		t.Error("GPU fp16 traffic should be below CPU fp32 traffic")
	}
}

// Property: pricing is monotone in every work dimension.
func TestPriceMonotoneProperty(t *testing.T) {
	d := Snapdragon865CPU()
	f := func(flopsRaw, bytesRaw uint32) bool {
		flops := int64(flopsRaw)%1e9 + 1
		bytes := int64(bytesRaw)%1e8 + 1
		small := d.Price(Work{FLOPs: flops, ReadBytes: bytes, WriteBytes: bytes})
		big := d.Price(Work{FLOPs: flops * 2, ReadBytes: bytes * 2, WriteBytes: bytes * 2})
		return big.TimeMs >= small.TimeMs && big.DRAMBytes >= small.DRAMBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
