package graph

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the graph in Graphviz format for inspection; fused plans and
// rewritten graphs in the examples are emitted with it.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", g.Name)
	for _, v := range g.Inputs {
		fmt.Fprintf(&b, "  v%d [label=%q, shape=ellipse];\n", v.ID, fmt.Sprintf("%s %s", v.Name, v.Shape))
	}
	for _, n := range g.Nodes {
		label := n.Op.Type()
		if k := n.Op.AttrKey(); k != "" {
			label += "\\n" + k
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", n.ID, label)
		for _, in := range n.Inputs {
			switch {
			case in.Producer != nil:
				fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", in.Producer.ID, n.ID, in.Shape.String())
			case in.Kind == Input:
				fmt.Fprintf(&b, "  v%d -> n%d;\n", in.ID, n.ID)
			default: // weight: rendered as a small dot to reduce clutter
				fmt.Fprintf(&b, "  w%d [label=%q, shape=point];\n  w%d -> n%d;\n",
					in.ID, in.Name, in.ID, n.ID)
			}
		}
	}
	for i, out := range g.Outputs {
		fmt.Fprintf(&b, "  out%d [label=%q, shape=ellipse];\n", i, fmt.Sprintf("out %s", out.Shape))
		if out.Producer != nil {
			fmt.Fprintf(&b, "  n%d -> out%d;\n", out.Producer.ID, i)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Summary returns a one-line-per-op-type census of the graph, useful for
// comparing layer counts before and after optimization.
func (g *Graph) Summary() string {
	counts := map[string]int{}
	for _, n := range g.Nodes {
		counts[n.Op.Type()]++
	}
	types := make([]string, 0, len(counts))
	for t := range counts {
		types = append(types, t)
	}
	sort.Strings(types)
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d nodes, %d values\n", g.Name, len(g.Nodes), len(g.Values))
	for _, t := range types {
		fmt.Fprintf(&b, "  %-24s %d\n", t, counts[t])
	}
	return b.String()
}
