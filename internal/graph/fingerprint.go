package graph

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Fingerprint canonicalizes a graph's structure into a short stable hash:
// operator types and attributes, every value's shape and kind, and the
// wiring between them (as value indices in topological encounter order).
// Value and graph names are excluded, so two independently built graphs
// with the same structure share a fingerprint, while any change to an
// operator, an attribute, the topology, or a shape — including a weight
// shape — produces a different one.
//
// The fingerprint keys measured-tuning results in profile.DB (per graph ×
// device × batch size), so it must be a pure function of structure: no
// pointers, no map iteration order, no weight *data* (tuning cost does not
// depend on values, and hashing megabytes of weights per compile would).
func Fingerprint(g *Graph) string {
	var sb strings.Builder
	idx := map[*Value]int{}
	id := func(v *Value) int {
		i, ok := idx[v]
		if !ok {
			i = len(idx)
			idx[v] = i
			// Each value is described once, at first encounter.
			fmt.Fprintf(&sb, "v%d:%s:%s;", i, v.Kind, v.Shape)
		}
		return i
	}
	for _, v := range g.Inputs {
		id(v)
	}
	for _, n := range g.TopoSort() {
		sb.WriteString(n.Op.Type())
		if a := n.Op.AttrKey(); a != "" {
			sb.WriteString("[" + a + "]")
		}
		sb.WriteString("(")
		for i, in := range n.Inputs {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, "v%d", id(in))
		}
		sb.WriteString(")->(")
		for i, out := range n.Outputs {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, "v%d", id(out))
		}
		sb.WriteString(");")
	}
	sb.WriteString("out:")
	for i, v := range g.Outputs {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "v%d", id(v))
	}
	h := fnv.New64a()
	h.Write([]byte(sb.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}
