package graph

import (
	"strings"
	"testing"

	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// batchMLP is a leading-axis-batchable two-layer network.
func batchMLP() *Graph {
	g := New("mlp")
	x := g.AddInput("x", tensor.Of(4, 8))
	w1 := g.AddWeight("w1", tensor.New(8, 6).Rand(1))
	b1 := g.AddWeight("b1", tensor.New(6).Rand(2))
	v := g.Apply1(ops.NewMatMul(), x, w1)
	v = g.Apply1(ops.NewAdd(), v, b1)
	v = g.Apply1(ops.NewRelu(), v)
	g.MarkOutputAs("y", g.Apply1(ops.NewSoftmax(-1), v))
	return g
}

func TestWithLeadingBatchScalesShapes(t *testing.T) {
	g := batchMLP()
	bg, err := WithLeadingBatch(g, 3)
	if err != nil {
		t.Fatalf("WithLeadingBatch: %v", err)
	}
	if err := bg.Validate(); err != nil {
		t.Fatalf("batched graph invalid: %v", err)
	}
	if got, want := bg.Inputs[0].Shape, tensor.Of(12, 8); !got.Equal(want) {
		t.Fatalf("batched input shape %v, want %v", got, want)
	}
	if got, want := bg.Outputs[0].Shape, tensor.Of(12, 6); !got.Equal(want) {
		t.Fatalf("batched output shape %v, want %v", got, want)
	}
	if bg.Inputs[0].Name != "x" || bg.Outputs[0].Name != "y" {
		t.Fatalf("batched I/O names %q/%q, want x/y", bg.Inputs[0].Name, bg.Outputs[0].Name)
	}
}

func TestWithLeadingBatchSharesWeightData(t *testing.T) {
	g := batchMLP()
	bg, err := WithLeadingBatch(g, 4)
	if err != nil {
		t.Fatalf("WithLeadingBatch: %v", err)
	}
	base := map[string]*tensor.Tensor{}
	for _, v := range g.Values {
		if v.Kind == Weight {
			base[v.Name] = v.Data
		}
	}
	shared := 0
	for _, v := range bg.Values {
		if v.Kind != Weight {
			continue
		}
		if v.Data != base[v.Name] {
			t.Fatalf("weight %q data was copied, want shared backing", v.Name)
		}
		shared++
	}
	if shared != len(base) || shared == 0 {
		t.Fatalf("shared %d weights, want %d", shared, len(base))
	}
}

func TestWithLeadingBatchIdentity(t *testing.T) {
	g := batchMLP()
	bg, err := WithLeadingBatch(g, 1)
	if err != nil {
		t.Fatalf("WithLeadingBatch(1): %v", err)
	}
	for i, in := range g.Inputs {
		if !bg.Inputs[i].Shape.Equal(in.Shape) {
			t.Fatalf("batch-1 input %d shape %v, want %v", i, bg.Inputs[i].Shape, in.Shape)
		}
	}
}

func TestWithLeadingBatchRejectsFixedReshape(t *testing.T) {
	g := New("fixed-reshape")
	x := g.AddInput("x", tensor.Of(2, 6))
	g.MarkOutputAs("y", g.Apply1(ops.NewReshape(3, 4), x))
	if _, err := WithLeadingBatch(g, 2); err == nil {
		t.Fatal("fixed-extent Reshape must not admit a leading batch axis")
	}
}

func TestWithLeadingBatchRejectsRank2Transpose(t *testing.T) {
	// Transposing the batch axis into a contracted position changes which
	// rows mix: the micro-attention pattern. The scores matmul stops
	// scaling along the leading axis, which the structural check rejects.
	g := New("transpose")
	x := g.AddInput("x", tensor.Of(8, 8))
	xt := g.Apply1(ops.NewTranspose(1, 0), x)
	g.MarkOutputAs("y", g.Apply1(ops.NewMatMul(), x, xt))
	if _, err := WithLeadingBatch(g, 2); err == nil {
		t.Fatal("rank-2 self-attention pattern must not admit a leading batch axis")
	}
}

func TestWithLeadingBatchRejectsFullReduce(t *testing.T) {
	g := New("full-reduce")
	x := g.AddInput("x", tensor.Of(4, 4))
	g.MarkOutputAs("y", g.Apply1(ops.NewReduce(ops.ReduceSum, false), x))
	_, err := WithLeadingBatch(g, 2)
	if err == nil {
		t.Fatal("rank-0 full reduction must not admit a leading batch axis")
	}
	if !strings.Contains(err.Error(), "batch:") {
		t.Fatalf("error %q does not carry the batch: prefix", err)
	}
}

func TestWithLeadingBatchRejectsWeightOutput(t *testing.T) {
	g := New("weight-out")
	g.AddInput("x", tensor.Of(2, 2))
	w := g.AddWeight("w", tensor.New(2, 2).Rand(3))
	g.MarkOutput(w)
	if _, err := WithLeadingBatch(g, 2); err == nil {
		t.Fatal("weight-aliased output must not admit a leading batch axis")
	}
}

func TestWithLeadingBatchRejectsBadSizes(t *testing.T) {
	if _, err := WithLeadingBatch(nil, 2); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := WithLeadingBatch(batchMLP(), 0); err == nil {
		t.Fatal("batch 0 accepted")
	}
}
