package graph

import (
	"fmt"

	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// Interpret executes the graph node by node with the reference operator
// implementations, materializing every intermediate. It is the semantic
// ground truth that fused execution (internal/engine) and graph rewriting
// (internal/rewrite) are tested against.
func Interpret(g *Graph, feeds map[*Value]*tensor.Tensor) (map[*Value]*tensor.Tensor, error) {
	env := make(map[*Value]*tensor.Tensor, len(g.Values))
	for _, v := range g.Values {
		if v.Kind == Weight {
			if v.Data == nil {
				return nil, fmt.Errorf("graph: weight %v has no data", v)
			}
			env[v] = v.Data
		}
	}
	for _, in := range g.Inputs {
		t, ok := feeds[in]
		if !ok {
			return nil, fmt.Errorf("graph: missing feed for input %v", in)
		}
		if !t.Shape().Equal(in.Shape) {
			return nil, fmt.Errorf("graph: feed for %v has shape %v", in, t.Shape())
		}
		env[in] = t
	}
	for _, n := range g.TopoSort() {
		ins := make([]*tensor.Tensor, len(n.Inputs))
		for i, in := range n.Inputs {
			t, ok := env[in]
			if !ok {
				return nil, fmt.Errorf("graph: %v input %v not computed", n, in)
			}
			ins[i] = t
		}
		outs, err := ops.Eval(n.Op, ins)
		if err != nil {
			return nil, fmt.Errorf("graph: %v: %w", n, err)
		}
		for o, out := range n.Outputs {
			env[out] = outs[o]
		}
	}
	results := make(map[*Value]*tensor.Tensor, len(g.Outputs))
	for _, out := range g.Outputs {
		t, ok := env[out]
		if !ok {
			return nil, fmt.Errorf("graph: output %v not computed", out)
		}
		results[out] = t
	}
	return results, nil
}

// InterpretOutputs is Interpret returning outputs in declaration order.
func InterpretOutputs(g *Graph, feeds map[*Value]*tensor.Tensor) ([]*tensor.Tensor, error) {
	m, err := Interpret(g, feeds)
	if err != nil {
		return nil, err
	}
	outs := make([]*tensor.Tensor, len(g.Outputs))
	for i, v := range g.Outputs {
		outs[i] = m[v]
	}
	return outs, nil
}
