package graph

import (
	"strings"
	"testing"

	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// buildDiamond constructs x -> Relu -> {Exp, Neg} -> Add -> out.
func buildDiamond(t *testing.T) (*Graph, *Value) {
	t.Helper()
	g := New("diamond")
	x := g.AddInput("x", tensor.Of(2, 3))
	r := g.Apply1(ops.NewRelu(), x)
	e := g.Apply1(ops.NewExp(), r)
	n := g.Apply1(ops.NewNeg(), r)
	out := g.Apply1(ops.NewAdd(), e, n)
	g.MarkOutput(out)
	if err := g.Validate(); err != nil {
		t.Fatalf("diamond invalid: %v", err)
	}
	return g, out
}

func TestApplyAndValidate(t *testing.T) {
	g, out := buildDiamond(t)
	if len(g.Nodes) != 4 {
		t.Errorf("nodes = %d, want 4", len(g.Nodes))
	}
	if out.Kind != Output {
		t.Errorf("out kind = %v, want output", out.Kind)
	}
	if len(g.Inputs) != 1 || len(g.Outputs) != 1 {
		t.Errorf("inputs/outputs = %d/%d", len(g.Inputs), len(g.Outputs))
	}
}

func TestApplyShapeError(t *testing.T) {
	g := New("bad")
	a := g.AddInput("a", tensor.Of(2, 3))
	b := g.AddInput("b", tensor.Of(2, 4))
	if _, err := g.Apply(ops.NewAdd(), a, b); err == nil {
		t.Fatal("Apply with mismatched shapes succeeded")
	}
}

func TestTopoSortRespectsDeps(t *testing.T) {
	g, _ := buildDiamond(t)
	order := g.TopoSort()
	pos := map[*Node]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if in.Producer != nil && pos[in.Producer] >= pos[n] {
				t.Fatalf("topo order violates dependency %v -> %v", in.Producer, n)
			}
		}
	}
}

func TestReplaceAllUses(t *testing.T) {
	g := New("replace")
	x := g.AddInput("x", tensor.Of(4))
	a := g.Apply1(ops.NewRelu(), x)
	b := g.Apply1(ops.NewExp(), a)
	g.MarkOutput(b)

	// Replace the Relu output with x directly (identity elimination).
	if err := g.ReplaceAllUses(a, x); err != nil {
		t.Fatalf("ReplaceAllUses: %v", err)
	}
	if removed := g.EliminateDeadNodes(); removed != 1 {
		t.Errorf("EliminateDeadNodes removed %d, want 1 (the Relu)", removed)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid after surgery: %v", err)
	}
	if len(g.Nodes) != 1 || g.Nodes[0].Op.Type() != "Exp" {
		t.Errorf("unexpected nodes after surgery: %v", g.Nodes)
	}
	if g.Nodes[0].Inputs[0] != x {
		t.Error("Exp not rewired to x")
	}
}

func TestReplaceAllUsesShapeMismatch(t *testing.T) {
	g := New("replace-bad")
	x := g.AddInput("x", tensor.Of(4))
	y := g.AddInput("y", tensor.Of(5))
	a := g.Apply1(ops.NewRelu(), x)
	if err := g.ReplaceAllUses(a, y); err == nil {
		t.Fatal("ReplaceAllUses with shape mismatch succeeded")
	}
}

func TestRemoveNodeGuards(t *testing.T) {
	g, _ := buildDiamond(t)
	relu := g.Nodes[0]
	if err := g.RemoveNode(relu); err == nil {
		t.Fatal("RemoveNode of still-consumed node succeeded")
	}
	addNode := g.Nodes[3]
	if err := g.RemoveNode(addNode); err == nil {
		t.Fatal("RemoveNode of output-producing node succeeded")
	}
}

func TestCloneIsolation(t *testing.T) {
	g, _ := buildDiamond(t)
	c := g.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	if len(c.Nodes) != len(g.Nodes) || len(c.Values) != len(g.Values) {
		t.Fatalf("clone size mismatch")
	}
	// Surgery on the clone must not affect the original.
	reluOut := c.Nodes[0].Outputs[0]
	_ = c.ReplaceAllUses(reluOut, c.Inputs[0])
	c.EliminateDeadNodes()
	if len(g.Nodes) != 4 {
		t.Errorf("original mutated by clone surgery: %d nodes", len(g.Nodes))
	}
	if err := g.Validate(); err != nil {
		t.Errorf("original invalid after clone surgery: %v", err)
	}
}

func TestCloneSharesWeights(t *testing.T) {
	g := New("weights")
	w := g.AddWeight("w", tensor.Full(2, 3))
	x := g.AddInput("x", tensor.Of(3))
	out := g.Apply1(ops.NewMul(), x, w)
	g.MarkOutput(out)
	c := g.Clone()
	var cw *Value
	for _, v := range c.Values {
		if v.Kind == Weight {
			cw = v
		}
	}
	if cw == nil || cw.Data != w.Data {
		t.Error("clone should share weight tensor storage")
	}
}

func TestFLOPsAndBytes(t *testing.T) {
	g := New("flops")
	x := g.AddInput("x", tensor.Of(4, 8))
	w := g.AddWeight("w", tensor.New(8, 2).Rand(1))
	mm := g.Apply1(ops.NewMatMul(), x, w)
	out := g.Apply1(ops.NewRelu(), mm)
	g.MarkOutput(out)
	if got := g.FLOPs(); got != 2*4*8*2+8 {
		t.Errorf("FLOPs = %d, want %d", got, 2*4*8*2+8)
	}
	if got := g.ParamBytes(); got != 8*2*4 {
		t.Errorf("ParamBytes = %d, want 64", got)
	}
	// Two produced values: MatMul out (4x2) and Relu out (4x2).
	if got := g.IntermediateBytes(); got != 2*4*2*4 {
		t.Errorf("IntermediateBytes = %d, want 64", got)
	}
}

func TestDOTAndSummary(t *testing.T) {
	g, _ := buildDiamond(t)
	dot := g.DOT()
	for _, want := range []string{"digraph", "Relu", "Add", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	sum := g.Summary()
	if !strings.Contains(sum, "Relu") || !strings.Contains(sum, "4 nodes") {
		t.Errorf("Summary = %q", sum)
	}
}

func TestMultiOutputSplit(t *testing.T) {
	g := New("split")
	x := g.AddInput("x", tensor.Of(4, 6))
	outs, err := g.Apply(ops.NewSplit(1, 2, 4), x)
	if err != nil {
		t.Fatalf("Apply split: %v", err)
	}
	if len(outs) != 2 {
		t.Fatalf("split outputs = %d", len(outs))
	}
	a := g.Apply1(ops.NewRelu(), outs[0])
	b := g.Apply1(ops.NewRelu(), outs[1])
	g.MarkOutput(a, b)
	if err := g.Validate(); err != nil {
		t.Fatalf("split graph invalid: %v", err)
	}
	if outs[0].ProducerOut != 0 || outs[1].ProducerOut != 1 {
		t.Error("ProducerOut slots wrong")
	}
}
