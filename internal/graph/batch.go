package graph

import (
	"fmt"

	"dnnfusion/internal/tensor"
)

// WithLeadingBatch rebuilds g with every input's leading axis scaled by n —
// the graph-level half of batched serving: n same-shape requests stacked
// along the leading axis run as one inference. Weights are shared with g
// (same backing tensors, no copies), every node is re-applied so operator
// shape inference validates the scaled shapes, and value/output names are
// preserved so the batched graph keeps the original's named I/O.
//
// The transform is structural, not semantic: it fails unless every value in
// the graph scales exactly along its leading axis (shape [d0, d1, ...]
// becomes [n*d0, d1, ...]), which rejects operators that hard-code the
// leading extent (a Reshape to a fixed row count, a rank-2 Transpose that
// moves the batch axis into a contracted dimension, a reduction over axis
// 0). Operators that mix rows without changing shape — a Softmax over axis
// 0 — pass this check but are semantically wrong to batch; callers that
// need a guarantee must compare a batched run against sequential runs
// (serve does this as a registration-time parity check).
func WithLeadingBatch(g *Graph, n int) (*Graph, error) {
	if g == nil {
		return nil, fmt.Errorf("batch: nil graph")
	}
	if n < 1 {
		return nil, fmt.Errorf("batch: batch size %d < 1", n)
	}
	out := New(g.Name)
	vm := make(map[*Value]*Value, len(g.Values))
	for _, in := range g.Inputs {
		if in.Shape.Rank() == 0 {
			return nil, fmt.Errorf("batch: input %q is rank-0; no leading axis to batch along", in.Name)
		}
		vm[in] = out.AddInput(in.Name, scaleLeading(in.Shape, n))
	}
	// Weights keep their shapes and share their backing data: batching
	// stacks activations, never parameters.
	for _, v := range g.Values {
		if v.Kind != Weight {
			continue
		}
		if v.Data != nil {
			vm[v] = out.AddWeight(v.Name, v.Data)
		} else {
			vm[v] = out.AddWeightShape(v.Name, v.Shape)
		}
	}
	for _, node := range g.TopoSort() {
		ins := make([]*Value, len(node.Inputs))
		for i, in := range node.Inputs {
			nv, ok := vm[in]
			if !ok {
				return nil, fmt.Errorf("batch: %v consumes unreachable value %v", node, in)
			}
			ins[i] = nv
		}
		outs, err := out.Apply(node.Op, ins...)
		if err != nil {
			return nil, fmt.Errorf("batch: %v does not admit a leading batch axis: %w", node, err)
		}
		for i, o := range node.Outputs {
			if o.Shape.Rank() == 0 {
				// A rank-0 value has no batch axis: the operator collapsed
				// the batch dimension (e.g. a full reduction), so per-request
				// results are unrecoverable.
				return nil, fmt.Errorf("batch: %v output %d is rank-0; the leading batch axis was collapsed", node, i)
			}
			want := scaleLeading(o.Shape, n)
			if !outs[i].Shape.Equal(want) {
				return nil, fmt.Errorf("batch: %v output %d has shape %v at batch %d, want %v — the operator does not scale along the leading axis",
					node, i, outs[i].Shape, n, want)
			}
			outs[i].Name = o.Name
			vm[o] = outs[i]
		}
	}
	for _, o := range g.Outputs {
		nv, ok := vm[o]
		if !ok {
			return nil, fmt.Errorf("batch: output %v has no batched counterpart", o)
		}
		if nv.Kind == Weight {
			// A weight-aliased output keeps its unscaled shape, so a
			// batched run could not return per-request segments of it.
			return nil, fmt.Errorf("batch: output %v is a weight; it has no batch axis", o)
		}
		out.MarkOutput(nv)
	}
	return out, nil
}

// scaleLeading returns s with its leading dimension multiplied by n.
// Rank-0 shapes have no leading axis and are returned unscaled (callers
// reject them where that matters).
func scaleLeading(s tensor.Shape, n int) tensor.Shape {
	if s.Rank() == 0 {
		return s.Clone()
	}
	out := s.Clone()
	out[0] *= n
	return out
}
