package graph

import (
	"fmt"

	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// Graph surgery used by the rewriting pass (internal/rewrite): replacing
// subgraphs, removing dead nodes, and cloning graphs so the same model can
// be optimized by several independent compilers (Table 5/6 run seven
// configurations per model).

// ReplaceAllUses rewires every consumer of old to read from new instead, and
// transfers output status. Shapes must match.
func (g *Graph) ReplaceAllUses(old, new *Value) error {
	if !old.Shape.Equal(new.Shape) {
		return fmt.Errorf("graph: ReplaceAllUses shape mismatch %v vs %v", old, new)
	}
	if old == new {
		return nil
	}
	for _, c := range old.Consumers {
		for i, in := range c.Inputs {
			if in == old {
				c.Inputs[i] = new
			}
		}
		new.Consumers = append(new.Consumers, c)
	}
	old.Consumers = nil
	for i, out := range g.Outputs {
		if out == old {
			g.Outputs[i] = new
			if new.Kind == Intermediate {
				new.Kind = Output
			}
			if old.Kind == Output {
				old.Kind = Intermediate
			}
		}
	}
	return nil
}

// RemoveNode detaches n from the graph. Its outputs must be unused.
func (g *Graph) RemoveNode(n *Node) error {
	for _, out := range n.Outputs {
		if len(out.Consumers) > 0 {
			return fmt.Errorf("graph: RemoveNode %v: output %v still consumed", n, out)
		}
		for _, gout := range g.Outputs {
			if gout == out {
				return fmt.Errorf("graph: RemoveNode %v: output %v is a graph output", n, out)
			}
		}
	}
	for _, in := range n.Inputs {
		in.Consumers = removeNode(in.Consumers, n)
	}
	g.Nodes = removeNode(g.Nodes, n)
	for _, out := range n.Outputs {
		g.Values = removeValue(g.Values, out)
	}
	return nil
}

// EliminateDeadNodes repeatedly removes nodes whose outputs are unused and
// are not graph outputs, plus orphaned weight values. Returns the number of
// nodes removed.
func (g *Graph) EliminateDeadNodes() int {
	removed := 0
	for {
		progress := false
		for _, n := range append([]*Node(nil), g.Nodes...) {
			dead := true
			for _, out := range n.Outputs {
				if len(out.Consumers) > 0 || out.Kind == Output {
					dead = false
					break
				}
			}
			if dead {
				if err := g.RemoveNode(n); err == nil {
					removed++
					progress = true
				}
			}
		}
		if !progress {
			return removed
		}
	}
}

// AddConstant registers a compile-time constant tensor as a weight value;
// rewriting uses it when folding computations.
func (g *Graph) AddConstant(name string, t *tensor.Tensor) *Value {
	return g.AddWeight(name, t)
}

// Clone deep-copies the graph structure. Weight tensors are shared (they
// are immutable), everything else is copied, so independent optimizers can
// mutate clones freely.
func (g *Graph) Clone() *Graph {
	out := New(g.Name)
	out.nextValue = g.nextValue
	out.nextNode = g.nextNode
	valueMap := make(map[*Value]*Value, len(g.Values))
	for _, v := range g.Values {
		nv := &Value{
			ID: v.ID, Name: v.Name, Shape: v.Shape.Clone(),
			Kind: v.Kind, ProducerOut: v.ProducerOut, Data: v.Data,
		}
		valueMap[v] = nv
		out.Values = append(out.Values, nv)
	}
	nodeMap := make(map[*Node]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		nn := &Node{ID: n.ID, Name: n.Name, Op: n.Op}
		for _, in := range n.Inputs {
			nn.Inputs = append(nn.Inputs, valueMap[in])
		}
		for _, o := range n.Outputs {
			nn.Outputs = append(nn.Outputs, valueMap[o])
			valueMap[o].Producer = nn
		}
		nodeMap[n] = nn
		out.Nodes = append(out.Nodes, nn)
	}
	for _, v := range g.Values {
		for _, c := range v.Consumers {
			valueMap[v].Consumers = append(valueMap[v].Consumers, nodeMap[c])
		}
	}
	for _, in := range g.Inputs {
		out.Inputs = append(out.Inputs, valueMap[in])
	}
	for _, o := range g.Outputs {
		out.Outputs = append(out.Outputs, valueMap[o])
	}
	return out
}

// InsertAfter builds a node applying op to inputs, gives it a fresh name
// with the given hint, and returns its outputs. It is Apply with a
// rewrite-friendly name.
func (g *Graph) InsertAfter(hint string, op ops.Operator, inputs ...*Value) ([]*Value, error) {
	outs, err := g.Apply(op, inputs...)
	if err != nil {
		return nil, err
	}
	n := outs[0].Producer
	n.Name = fmt.Sprintf("%s_%s", hint, n.Name)
	return outs, nil
}

func removeNode(s []*Node, n *Node) []*Node {
	out := s[:0]
	for _, x := range s {
		if x != n {
			out = append(out, x)
		}
	}
	return out
}

func removeValue(s []*Value, v *Value) []*Value {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
