package graph

import (
	"testing"

	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// fpGraph builds a small matmul→relu graph with a hidden×out weight; the
// tests vary the weight shape to probe fingerprint sensitivity.
func fpGraph(name string, hidden int) *Graph {
	g := New(name)
	x := g.AddInput("x", tensor.Of(4, 8))
	w := g.AddWeight("w", tensor.New(8, hidden).Rand(7))
	v := g.Apply1(ops.NewMatMul(), x, w)
	v = g.Apply1(ops.NewRelu(), v)
	g.MarkOutput(v)
	return g
}

func TestFingerprintStructuralIdentity(t *testing.T) {
	a := Fingerprint(fpGraph("a", 16))
	b := Fingerprint(fpGraph("b", 16)) // fresh build, different name, same structure
	if a != b {
		t.Errorf("structurally identical graphs fingerprint differently: %s vs %s", a, b)
	}
	if got := Fingerprint(fpGraph("a", 16)); got != a {
		t.Errorf("fingerprint not deterministic: %s vs %s", got, a)
	}
	if len(a) != 16 {
		t.Errorf("fingerprint %q is not a 16-hex-digit hash", a)
	}
}

func TestFingerprintWeightShapeSensitivity(t *testing.T) {
	a := Fingerprint(fpGraph("a", 16))
	b := Fingerprint(fpGraph("a", 32)) // same ops and topology, wider weight
	if a == b {
		t.Error("changing a weight shape did not change the fingerprint")
	}
}

func TestFingerprintWeightDataInsensitivity(t *testing.T) {
	g1 := fpGraph("a", 16)
	g2 := fpGraph("a", 16)
	for i := range g2.Nodes[0].Inputs[1].Data.Data() {
		g2.Nodes[0].Inputs[1].Data.Data()[i] *= 2
	}
	if Fingerprint(g1) != Fingerprint(g2) {
		t.Error("weight data (not shape) changed the fingerprint")
	}
}

func TestFingerprintOpSensitivity(t *testing.T) {
	g := New("a")
	x := g.AddInput("x", tensor.Of(4, 8))
	w := g.AddWeight("w", tensor.New(8, 16).Rand(7))
	v := g.Apply1(ops.NewMatMul(), x, w)
	g.MarkOutput(g.Apply1(ops.NewSigmoid(), v))
	if Fingerprint(g) == Fingerprint(fpGraph("a", 16)) {
		t.Error("different activation ops share a fingerprint")
	}
}
