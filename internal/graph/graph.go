// Package graph implements the computational-graph IR that DNNFusion
// consumes: a DAG of operator nodes connected by tensor-valued edges
// ("values"). The Extended Computational Graph of the paper
// (internal/ecg) annotates this IR with mapping types and properties.
package graph

import (
	"fmt"

	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// ValueKind distinguishes the roles a value can play.
type ValueKind int

const (
	// Input is a runtime-supplied model input.
	Input ValueKind = iota
	// Weight is a compile-time constant (model parameter).
	Weight
	// Intermediate is produced by a node and consumed internally.
	Intermediate
	// Output is a model output (also produced by a node).
	Output
)

var kindNames = [...]string{"input", "weight", "intermediate", "output"}

func (k ValueKind) String() string { return kindNames[k] }

// Value is a tensor-valued edge of the graph.
type Value struct {
	ID          int
	Name        string
	Shape       tensor.Shape
	Kind        ValueKind
	Producer    *Node // nil for Input and Weight values
	ProducerOut int   // which output slot of Producer
	Consumers   []*Node
	// Data holds the constant tensor for Weight values (and for
	// constants materialized by rewriting); nil otherwise.
	Data *tensor.Tensor
}

// IsConst reports whether the value is known at compile time.
func (v *Value) IsConst() bool { return v.Kind == Weight && v.Data != nil }

func (v *Value) String() string {
	return fmt.Sprintf("%s#%d%s", v.Name, v.ID, v.Shape)
}

// Node is an operator application.
type Node struct {
	ID      int
	Name    string
	Op      ops.Operator
	Inputs  []*Value
	Outputs []*Value
}

func (n *Node) String() string {
	return fmt.Sprintf("%s#%d", n.Op.Type(), n.ID)
}

// Graph is a DAG of nodes. Nodes and Values are kept in creation order;
// TopoSort produces a dependency-respecting schedule after surgery.
type Graph struct {
	Name    string
	Nodes   []*Node
	Values  []*Value
	Inputs  []*Value
	Outputs []*Value

	nextValue int
	nextNode  int
}

// New creates an empty graph.
func New(name string) *Graph { return &Graph{Name: name} }

func (g *Graph) newValue(name string, shape tensor.Shape, kind ValueKind) *Value {
	v := &Value{ID: g.nextValue, Name: name, Shape: shape.Clone(), Kind: kind}
	g.nextValue++
	g.Values = append(g.Values, v)
	return v
}

// AddInput declares a runtime input of the given shape.
func (g *Graph) AddInput(name string, shape tensor.Shape) *Value {
	v := g.newValue(name, shape, Input)
	g.Inputs = append(g.Inputs, v)
	return v
}

// AddWeight declares a compile-time constant holding t.
func (g *Graph) AddWeight(name string, t *tensor.Tensor) *Value {
	v := g.newValue(name, t.Shape(), Weight)
	v.Data = t
	return v
}

// AddWeightShape declares a compile-time constant by shape only, without
// backing data. The model zoo uses it for large parameters: the simulator
// and all compiler passes work from shapes, so gigabytes of random weights
// are never allocated. Such weights cannot be constant-folded numerically
// or executed; small graphs needing numeric execution use AddWeight.
func (g *Graph) AddWeightShape(name string, shape tensor.Shape) *Value {
	return g.newValue(name, shape, Weight)
}

// Apply adds a node computing op over the given inputs, inferring output
// shapes, and returns the freshly created output values.
func (g *Graph) Apply(op ops.Operator, inputs ...*Value) ([]*Value, error) {
	shapes := make([]tensor.Shape, len(inputs))
	for i, in := range inputs {
		if in == nil {
			return nil, fmt.Errorf("graph: nil input %d to %s", i, op.Type())
		}
		shapes[i] = in.Shape
	}
	outShapes, err := op.InferShapes(shapes)
	if err != nil {
		return nil, fmt.Errorf("graph: %s: %w", op.Type(), err)
	}
	n := &Node{ID: g.nextNode, Op: op, Inputs: append([]*Value(nil), inputs...)}
	n.Name = fmt.Sprintf("%s_%d", op.Type(), n.ID)
	g.nextNode++
	for o, s := range outShapes {
		v := g.newValue(fmt.Sprintf("%s_out%d", n.Name, o), s, Intermediate)
		v.Producer = n
		v.ProducerOut = o
		n.Outputs = append(n.Outputs, v)
	}
	for _, in := range inputs {
		in.Consumers = append(in.Consumers, n)
	}
	g.Nodes = append(g.Nodes, n)
	return n.Outputs, nil
}

// Apply1 is Apply for single-output operators; it panics on error, which is
// the right trade-off for the model builders where shapes are static.
func (g *Graph) Apply1(op ops.Operator, inputs ...*Value) *Value {
	outs, err := g.Apply(op, inputs...)
	if err != nil {
		panic(err)
	}
	if len(outs) != 1 {
		panic(fmt.Sprintf("graph: Apply1 on %s with %d outputs", op.Type(), len(outs)))
	}
	return outs[0]
}

// MarkOutput declares v a model output.
func (g *Graph) MarkOutput(vs ...*Value) {
	for _, v := range vs {
		if v.Kind == Intermediate {
			v.Kind = Output
		}
		g.Outputs = append(g.Outputs, v)
	}
}

// MarkOutputAs renames v and declares it a model output, giving the value
// a stable public name for the serving API's named I/O (by default outputs
// carry generated internal names like "Softmax_4_out0"). Inputs and
// weights keep their declared names — renaming an input here would break
// its name-keyed feeds — so for those only the marking applies.
func (g *Graph) MarkOutputAs(name string, v *Value) {
	if v.Producer != nil {
		v.Name = name
	}
	g.MarkOutput(v)
}

// TopoSort returns the nodes in a dependency-respecting order. It panics if
// the graph contains a cycle (Validate reports it as an error instead).
func (g *Graph) TopoSort() []*Node {
	order, err := g.topoSort()
	if err != nil {
		panic(err)
	}
	return order
}

func (g *Graph) topoSort() ([]*Node, error) {
	pending := make(map[*Node]int, len(g.Nodes))
	var ready []*Node
	for _, n := range g.Nodes {
		deps := 0
		for _, in := range n.Inputs {
			if in.Producer != nil {
				deps++
			}
		}
		pending[n] = deps
		if deps == 0 {
			ready = append(ready, n)
		}
	}
	order := make([]*Node, 0, len(g.Nodes))
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		for _, out := range n.Outputs {
			for _, c := range out.Consumers {
				pending[c]--
				if pending[c] == 0 {
					ready = append(ready, c)
				}
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("graph %q: cycle detected (%d of %d nodes scheduled)",
			g.Name, len(order), len(g.Nodes))
	}
	return order, nil
}

// Validate checks structural invariants: consistent producer/consumer links,
// inferable shapes, and acyclicity.
func (g *Graph) Validate() error {
	if _, err := g.topoSort(); err != nil {
		return err
	}
	for _, n := range g.Nodes {
		shapes := make([]tensor.Shape, len(n.Inputs))
		for i, in := range n.Inputs {
			shapes[i] = in.Shape
			found := false
			for _, c := range in.Consumers {
				if c == n {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("graph %q: %v missing consumer link to %v", g.Name, in, n)
			}
		}
		outShapes, err := n.Op.InferShapes(shapes)
		if err != nil {
			return fmt.Errorf("graph %q: %v: %w", g.Name, n, err)
		}
		if len(outShapes) != len(n.Outputs) {
			return fmt.Errorf("graph %q: %v output arity mismatch", g.Name, n)
		}
		for o, out := range n.Outputs {
			if !out.Shape.Equal(outShapes[o]) {
				return fmt.Errorf("graph %q: %v output %d shape %v, inferred %v",
					g.Name, n, o, out.Shape, outShapes[o])
			}
			if out.Producer != n || out.ProducerOut != o {
				return fmt.Errorf("graph %q: %v output %d producer link broken", g.Name, n, o)
			}
		}
	}
	for _, out := range g.Outputs {
		if out.Producer == nil && out.Kind != Input && out.Kind != Weight {
			return fmt.Errorf("graph %q: output %v has no producer", g.Name, out)
		}
	}
	return nil
}

// FLOPs totals the operator FLOPs over the whole graph.
func (g *Graph) FLOPs() int64 {
	var total int64
	for _, n := range g.Nodes {
		shapes := make([]tensor.Shape, len(n.Inputs))
		for i, in := range n.Inputs {
			shapes[i] = in.Shape
		}
		total += n.Op.FLOPs(shapes)
	}
	return total
}

// ParamBytes totals the weight bytes of the graph.
func (g *Graph) ParamBytes() int64 {
	var total int64
	for _, v := range g.Values {
		if v.Kind == Weight {
			total += v.Shape.Bytes()
		}
	}
	return total
}

// IntermediateBytes totals the bytes of every node-produced value — the
// paper's "IRS size" before optimization.
func (g *Graph) IntermediateBytes() int64 {
	var total int64
	for _, v := range g.Values {
		if v.Producer != nil {
			total += v.Shape.Bytes()
		}
	}
	return total
}

// InputShapes returns the declared shapes of the graph inputs.
func (g *Graph) InputShapes() []tensor.Shape {
	out := make([]tensor.Shape, len(g.Inputs))
	for i, v := range g.Inputs {
		out[i] = v.Shape
	}
	return out
}
