package fusion

import (
	"fmt"

	"dnnfusion/internal/ecg"
	"dnnfusion/internal/graph"
)

// BuildPlan constructs a Plan from explicit node groups. The baseline
// fixed-pattern fusers (internal/baseline) use it to express their pattern
// matches, and SingletonPlan uses it for the no-fusion configuration, so
// every execution mode flows through the same Block/Plan machinery.
// Groups must partition the graph's nodes.
func BuildPlan(e *ecg.ECG, groups [][]*graph.Node) (*Plan, error) {
	plan := &Plan{blockOf: make(map[*graph.Node]*Block, len(e.G.Nodes))}
	seen := make(map[*graph.Node]bool, len(e.G.Nodes))
	for i, nodes := range groups {
		if len(nodes) == 0 {
			return nil, fmt.Errorf("fusion: empty group %d", i)
		}
		b := &Block{
			ID:      i,
			Seed:    nodes[0],
			Nodes:   append([]*graph.Node(nil), nodes...),
			nodeSet: make(map[*graph.Node]bool, len(nodes)),
		}
		b.Mapping = e.Mapping(nodes[0])
		for j, n := range nodes {
			if seen[n] {
				return nil, fmt.Errorf("fusion: node %v in two groups", n)
			}
			seen[n] = true
			b.nodeSet[n] = true
			plan.blockOf[n] = b
			if j > 0 {
				b.Mapping, _ = Combine(b.Mapping, e.Mapping(n))
			}
		}
		plan.Blocks = append(plan.Blocks, b)
	}
	if len(seen) != len(e.G.Nodes) {
		return nil, fmt.Errorf("fusion: groups cover %d of %d nodes", len(seen), len(e.G.Nodes))
	}
	sortBlocksTopo(plan, e.G.TopoSort())
	return plan, nil
}

// SingletonPlan puts every operator in its own block — the paper's OurB
// (no-fusion) configuration.
func SingletonPlan(e *ecg.ECG) *Plan {
	groups := make([][]*graph.Node, 0, len(e.G.Nodes))
	for _, n := range e.G.TopoSort() {
		groups = append(groups, []*graph.Node{n})
	}
	plan, err := BuildPlan(e, groups)
	if err != nil {
		// Unreachable: singleton groups always partition the graph.
		panic(err)
	}
	return plan
}
