package fusion

import (
	"fmt"
	"sort"
	"strings"

	"dnnfusion/internal/ecg"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
)

// SeedPolicy selects fusion seed operators (§4.3 Step I). The paper's
// policy is MinIRS; the others exist for the ablation benchmarks.
type SeedPolicy int

const (
	// SeedMinIRS picks the One-to-One operator with the smallest
	// intermediate result first (the paper's heuristic).
	SeedMinIRS SeedPolicy = iota
	// SeedMaxIRS picks the largest intermediate result first (ablation).
	SeedMaxIRS
	// SeedNone disables seeding: every unfused op is visited in topo
	// order (ablation; approximates pattern-free greedy fusion).
	SeedNone
)

// LatencyFunc estimates the latency (in milliseconds) of executing the given
// nodes as a single fused kernel. The fusion planner calls it for yellow
// (fuse_depend) decisions; internal/core wires it to the device cost model
// through the profiling database.
type LatencyFunc func(nodes []*graph.Node) float64

// Options tunes plan generation.
type Options struct {
	// MaxBlockOps bounds operators per block (constraint analysis,
	// Listing 1 step 2.2). Zero means the default of 40.
	MaxBlockOps int
	// MaxBlockInputs bounds distinct exterior inputs per block, a proxy
	// for register pressure. Zero means the default of 24.
	MaxBlockInputs int
	// Latency resolves yellow decisions; nil accepts them optimistically.
	Latency LatencyFunc
	// Seeds selects the seed policy.
	Seeds SeedPolicy
	// NoYellow forces every yellow (FuseDepend) decision to break instead
	// of consulting Latency — the "FuseBreak variant" axis of the
	// measured-tuning plan space (internal/autotune), where the static
	// heuristic's opinion is just one candidate among the measured ones.
	NoYellow bool
}

func (o Options) withDefaults() Options {
	if o.MaxBlockOps == 0 {
		o.MaxBlockOps = 40
	}
	if o.MaxBlockInputs == 0 {
		o.MaxBlockInputs = 24
	}
	return o
}

// Block is a candidate fusion block: a connected set of operators compiled
// into one kernel.
type Block struct {
	ID    int
	Seed  *graph.Node
	Nodes []*graph.Node
	// Mapping is the fused operator's mapping type, evolved via Combine.
	Mapping ops.MappingType
	// Chain is set when the block was formed by contraction-chain fusion
	// (FuseChains): two ManyToMany contractions sharing one block, a
	// deliberate exception to Table 3 executed by the streaming chain
	// kernel instead of pairwise loop fusion.
	Chain   *Chain
	nodeSet map[*graph.Node]bool
}

// Contains reports whether n belongs to the block.
func (b *Block) Contains(n *graph.Node) bool { return b.nodeSet[n] }

// Size returns the number of fused operators.
func (b *Block) Size() int { return len(b.Nodes) }

// Inputs returns the distinct exterior input values of the block
// (runtime inputs, weights, and other blocks' outputs).
func (b *Block) Inputs() []*graph.Value {
	var out []*graph.Value
	seen := map[*graph.Value]bool{}
	for _, n := range b.Nodes {
		for _, in := range n.Inputs {
			if in.Producer != nil && b.nodeSet[in.Producer] {
				continue
			}
			if !seen[in] {
				seen[in] = true
				out = append(out, in)
			}
		}
	}
	return out
}

// Outputs returns the block's values that must be materialized: values
// consumed outside the block or that are graph outputs.
func (b *Block) Outputs() []*graph.Value {
	var out []*graph.Value
	for _, n := range b.Nodes {
		for _, v := range n.Outputs {
			if v.Kind == graph.Output {
				out = append(out, v)
				continue
			}
			external := false
			for _, c := range v.Consumers {
				if !b.nodeSet[c] {
					external = true
					break
				}
			}
			if external {
				out = append(out, v)
			}
		}
	}
	return out
}

func (b *Block) String() string {
	names := make([]string, len(b.Nodes))
	for i, n := range b.Nodes {
		names[i] = n.Op.Type()
	}
	return fmt.Sprintf("block#%d{%s}", b.ID, strings.Join(names, "+"))
}

// Plan is a complete fusion plan: a partition of the graph's nodes into
// blocks, plus planning statistics.
type Plan struct {
	Blocks  []*Block
	blockOf map[*graph.Node]*Block

	// ProfileQueries counts yellow decisions resolved via Latency.
	ProfileQueries int
	// GreenFusions and YellowFusions count accepted fusions by decision.
	GreenFusions  int
	YellowFusions int
	// BrokenByTable, BrokenByConstraint, BrokenByCycle, BrokenByProfile
	// count rejected fusion attempts by cause.
	BrokenByTable      int
	BrokenByConstraint int
	BrokenByCycle      int
	BrokenByProfile    int
	// ChainFusions counts contraction chains merged by FuseChains.
	ChainFusions int
}

// BlockOf returns the block containing n.
func (p *Plan) BlockOf(n *graph.Node) *Block { return p.blockOf[n] }

// FusedLayerCount is the number of kernels after fusion (Table 5's "layer
// count after opt").
func (p *Plan) FusedLayerCount() int { return len(p.Blocks) }

// IRSBytesAfter totals the bytes of values still materialized under the
// plan (Table 5's "IRS size after opt").
func (p *Plan) IRSBytesAfter() int64 {
	var total int64
	for _, b := range p.Blocks {
		for _, v := range b.Outputs() {
			total += v.Shape.Bytes()
		}
	}
	return total
}

// MarkRemovable sets IR_removable in the ECG for every value whose
// consumers are all fused with its producer (paper §3.2).
func (p *Plan) MarkRemovable(e *ecg.ECG) int {
	removed := 0
	for _, b := range p.Blocks {
		for _, n := range b.Nodes {
			for _, v := range n.Outputs {
				if v.Kind == graph.Output {
					continue
				}
				removable := true
				for _, c := range v.Consumers {
					if !b.nodeSet[c] {
						removable = false
						break
					}
				}
				if info, ok := e.Value[v]; ok && removable {
					info.IRRemovable = true
					removed++
				}
			}
		}
	}
	return removed
}

// planner carries the in-progress state of Listing 1.
type planner struct {
	e       *ecg.ECG
	opts    Options
	plan    *Plan
	unfused map[*graph.Node]bool
	nextID  int
}

// GeneratePlan runs the fusion plan exploration algorithm (Listing 1) over
// the annotated graph.
func GeneratePlan(e *ecg.ECG, opts Options) *Plan {
	p := &planner{
		e:       e,
		opts:    opts.withDefaults(),
		plan:    &Plan{blockOf: make(map[*graph.Node]*Block)},
		unfused: make(map[*graph.Node]bool, len(e.G.Nodes)),
	}
	order := e.G.TopoSort()
	for _, n := range order {
		p.unfused[n] = true
	}

	// Step 1: iterate seeds until exhausted.
	for {
		seed := p.generateSeed(order)
		if seed == nil {
			break
		}
		block := p.newBlock(seed)
		// Step 2: propagate along successors.
		for _, succ := range successors(seed) {
			p.fuseSuccessor(block, succ)
		}
		// Step 3: propagate along predecessors.
		for _, pred := range predecessors(seed) {
			p.fusePredecessor(block, pred)
		}
	}

	// Remaining operators become singleton blocks in topo order.
	for _, n := range order {
		if p.unfused[n] {
			p.newBlock(n)
		}
	}
	// Blocks were created seed-first; order them topologically for
	// consumers (the engine re-sorts anyway, but deterministic output
	// helps tests and printing).
	sortBlocksTopo(p.plan, order)
	return p.plan
}

// generateSeed implements Listing 1 lines 1-5 for the configured policy.
func (p *planner) generateSeed(order []*graph.Node) *graph.Node {
	var best *graph.Node
	var bestBytes int64
	for _, n := range order {
		if !p.unfused[n] {
			continue
		}
		if p.opts.Seeds == SeedNone {
			return n
		}
		if p.e.Mapping(n) != ops.OneToOne {
			continue
		}
		var bytes int64
		for _, out := range n.Outputs {
			bytes += out.Shape.Bytes()
		}
		if best == nil ||
			(p.opts.Seeds == SeedMinIRS && bytes < bestBytes) ||
			(p.opts.Seeds == SeedMaxIRS && bytes > bestBytes) {
			best = n
			bestBytes = bytes
		}
	}
	if best == nil && p.opts.Seeds != SeedNone {
		// No One-to-One ops left; fall back to any unfused op so every
		// node still gets explored (deep models always have seeds).
		for _, n := range order {
			if p.unfused[n] {
				return n
			}
		}
	}
	return best
}

func (p *planner) newBlock(seed *graph.Node) *Block {
	b := &Block{
		ID:      p.nextID,
		Seed:    seed,
		Nodes:   []*graph.Node{seed},
		Mapping: p.e.Mapping(seed),
		nodeSet: map[*graph.Node]bool{seed: true},
	}
	p.nextID++
	p.plan.Blocks = append(p.plan.Blocks, b)
	p.plan.blockOf[seed] = b
	delete(p.unfused, seed)
	return b
}

func (p *planner) admit(b *Block, n *graph.Node, newMapping ops.MappingType, d Decision) {
	b.Nodes = append(b.Nodes, n)
	b.nodeSet[n] = true
	b.Mapping = newMapping
	p.plan.blockOf[n] = b
	delete(p.unfused, n)
	if d == FuseThrough {
		p.plan.GreenFusions++
	} else {
		p.plan.YellowFusions++
	}
}

// fuseSuccessor implements Listing 1 lines 7-24.
func (p *planner) fuseSuccessor(b *Block, succ *graph.Node) {
	if !p.unfused[succ] || b.Contains(succ) {
		return
	}
	// Step 2.1: mapping type analysis against the block's evolved type.
	newMapping, d := Combine(b.Mapping, p.e.Mapping(succ))
	if d == FuseBreak {
		p.plan.BrokenByTable++
		return
	}
	// Step 2.2: constraint analysis (register pressure / block size).
	if !p.checkConstraints(b, succ) {
		p.plan.BrokenByConstraint++
		return
	}
	if p.wouldCreateCycle(b, succ) {
		p.plan.BrokenByCycle++
		return
	}
	// Step 2.3: profile-based selection for yellow decisions.
	if d == FuseDepend && !p.profitable(b, succ) {
		p.plan.BrokenByProfile++
		return
	}
	p.admit(b, succ, newMapping, d)
	// Step 2.4: recurse to the successor's successors.
	for _, next := range successors(succ) {
		p.fuseSuccessor(b, next)
	}
}

// fusePredecessor mirrors fuseSuccessor along the predecessor direction
// (Listing 1 lines 27-28); the combination order is reversed.
func (p *planner) fusePredecessor(b *Block, pred *graph.Node) {
	if !p.unfused[pred] || b.Contains(pred) {
		return
	}
	newMapping, d := Combine(p.e.Mapping(pred), b.Mapping)
	if d == FuseBreak {
		p.plan.BrokenByTable++
		return
	}
	if !p.checkConstraints(b, pred) {
		p.plan.BrokenByConstraint++
		return
	}
	if p.wouldCreateCycle(b, pred) {
		p.plan.BrokenByCycle++
		return
	}
	if d == FuseDepend && !p.profitable(b, pred) {
		p.plan.BrokenByProfile++
		return
	}
	p.admit(b, pred, newMapping, d)
	for _, prev := range predecessors(pred) {
		p.fusePredecessor(b, prev)
	}
}

// checkConstraints is Listing 1 step 2.2: reject fusions that would exceed
// the block-size or register-pressure thresholds.
func (p *planner) checkConstraints(b *Block, candidate *graph.Node) bool {
	if b.Size()+1 > p.opts.MaxBlockOps {
		return false
	}
	// Count distinct exterior inputs with the candidate admitted.
	seen := map[*graph.Value]bool{}
	inputs := 0
	member := func(n *graph.Node) bool { return b.nodeSet[n] || n == candidate }
	count := func(n *graph.Node) {
		for _, in := range n.Inputs {
			if in.Producer != nil && member(in.Producer) {
				continue
			}
			if !seen[in] {
				seen[in] = true
				inputs++
			}
		}
	}
	for _, n := range b.Nodes {
		count(n)
	}
	count(candidate)
	return inputs <= p.opts.MaxBlockInputs
}

// profitable is Listing 1 step 2.3: fuse only if the fused kernel is
// predicted no slower than running the block and the candidate separately.
func (p *planner) profitable(b *Block, candidate *graph.Node) bool {
	if p.opts.NoYellow {
		return false
	}
	if p.opts.Latency == nil {
		return true
	}
	p.plan.ProfileQueries++
	fused := append(append([]*graph.Node(nil), b.Nodes...), candidate)
	tFused := p.opts.Latency(fused)
	tSplit := p.opts.Latency(b.Nodes) + p.opts.Latency([]*graph.Node{candidate})
	return tFused <= tSplit
}

// wouldCreateCycle reports whether admitting candidate would create a
// dependency cycle at kernel granularity: a path block → … → block that
// leaves the set. Exterior traversal must treat already-committed blocks as
// atomic supernodes — entering any member of a committed block reaches the
// whole block, because it executes as one kernel. (Without the expansion,
// two blocks can be individually convex at the node level yet cyclic at the
// block level; found by the randomized integration tests.)
func (p *planner) wouldCreateCycle(b *Block, candidate *graph.Node) bool {
	inSet := func(n *graph.Node) bool { return b.nodeSet[n] || n == candidate }
	var stack []*graph.Node
	visited := map[*graph.Node]bool{}
	push := func(n *graph.Node) {
		if visited[n] || inSet(n) {
			return
		}
		visited[n] = true
		stack = append(stack, n)
		// Atomic-block expansion: reaching one member of a committed
		// block reaches all of it.
		if other := p.plan.blockOf[n]; other != nil {
			for _, sib := range other.Nodes {
				if !visited[sib] && !inSet(sib) {
					visited[sib] = true
					stack = append(stack, sib)
				}
			}
		}
	}
	for _, n := range append([]*graph.Node{candidate}, b.Nodes...) {
		for _, out := range n.Outputs {
			for _, c := range out.Consumers {
				push(c)
			}
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, out := range n.Outputs {
			for _, c := range out.Consumers {
				if inSet(c) {
					return true
				}
				push(c)
			}
		}
	}
	return false
}

func successors(n *graph.Node) []*graph.Node {
	var out []*graph.Node
	seen := map[*graph.Node]bool{}
	for _, v := range n.Outputs {
		for _, c := range v.Consumers {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

func predecessors(n *graph.Node) []*graph.Node {
	var out []*graph.Node
	seen := map[*graph.Node]bool{}
	for _, v := range n.Inputs {
		if v.Producer != nil && !seen[v.Producer] {
			seen[v.Producer] = true
			out = append(out, v.Producer)
		}
	}
	return out
}

// sortBlocksTopo orders blocks by the topological position of their
// earliest node, which is a valid block-level schedule because blocks are
// convex (cycle checks guarantee it).
func sortBlocksTopo(p *Plan, order []*graph.Node) {
	pos := make(map[*graph.Node]int, len(order))
	for i, n := range order {
		pos[n] = i
	}
	sort.SliceStable(p.Blocks, func(i, j int) bool {
		return minPos(p.Blocks[i], pos) < minPos(p.Blocks[j], pos)
	})
	for i, b := range p.Blocks {
		b.ID = i
	}
}

func minPos(b *Block, pos map[*graph.Node]int) int {
	m := int(^uint(0) >> 1)
	for _, n := range b.Nodes {
		if pos[n] < m {
			m = pos[n]
		}
	}
	return m
}
