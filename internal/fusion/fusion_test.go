package fusion

import (
	"testing"
	"testing/quick"

	"dnnfusion/internal/ecg"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

func TestCombineTableCounts(t *testing.T) {
	green, yellow, red := TableCounts()
	if green != 13 || yellow != 10 || red != 2 {
		t.Errorf("Table 3 colors = %d green, %d yellow, %d red; want 13/10/2", green, yellow, red)
	}
	// 23 code-generation rules = the non-red cells (paper §4.4.1).
	if green+yellow != 23 {
		t.Errorf("non-red cells = %d, want 23", green+yellow)
	}
}

func TestCombineKeyCells(t *testing.T) {
	cases := []struct {
		first, second ops.MappingType
		wantType      ops.MappingType
		wantDecision  Decision
	}{
		// One-to-One fuses with everything (Add+GEMM example).
		{ops.OneToOne, ops.ManyToMany, ops.ManyToMany, FuseThrough},
		{ops.ManyToMany, ops.OneToOne, ops.ManyToMany, FuseThrough},
		{ops.OneToOne, ops.OneToOne, ops.OneToOne, FuseThrough},
		// Conv followed by Conv is red.
		{ops.ManyToMany, ops.ManyToMany, ops.ManyToMany, FuseBreak},
		// Expand followed by Conv is red.
		{ops.OneToMany, ops.ManyToMany, ops.ManyToMany, FuseBreak},
		// Conv followed by Expand/Resize requires profiling.
		{ops.ManyToMany, ops.OneToMany, ops.ManyToMany, FuseDepend},
		// Expand with Transpose (One-to-Many + Shuffle) requires profiling.
		{ops.OneToMany, ops.Shuffle, ops.OneToMany, FuseDepend},
		// Transpose + Div is green, result Shuffle (§4.4.1 example).
		{ops.Shuffle, ops.OneToOne, ops.Shuffle, FuseThrough},
		// Reorganize chains compose freely.
		{ops.Reorganize, ops.Reorganize, ops.Reorganize, FuseThrough},
		{ops.Shuffle, ops.Reorganize, ops.Reorganize, FuseThrough},
	}
	for _, c := range cases {
		gotType, gotDecision := Combine(c.first, c.second)
		if gotType != c.wantType || gotDecision != c.wantDecision {
			t.Errorf("Combine(%v, %v) = (%v, %v), want (%v, %v)",
				c.first, c.second, gotType, gotDecision, c.wantType, c.wantDecision)
		}
	}
}

// Property: the paper's impedance rules — One-to-One never changes the
// partner's type; One-to-Many/Many-to-Many always dominate the result.
func TestCombineImpedanceProperty(t *testing.T) {
	f := func(raw uint8) bool {
		m := ops.MappingType(int(raw) % 5)
		r1, _ := Combine(ops.OneToOne, m)
		r2, _ := Combine(m, ops.OneToOne)
		if r1 != m || r2 != m {
			return false
		}
		rm, _ := Combine(m, ops.ManyToMany)
		if rm != ops.ManyToMany {
			return false
		}
		ro, _ := Combine(ops.ManyToMany, m)
		return ro == ops.ManyToMany
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// buildFig3 reproduces the example of Figure 3:
// GEMM -> Add -> Conv -> Relu -> Mul -> Sub with Add as the seed.
func buildFig3(t *testing.T) (*graph.Graph, *ecg.ECG) {
	t.Helper()
	g := graph.New("fig3")
	x := g.AddInput("x", tensor.Of(8, 9))
	wg := g.AddWeight("wg", tensor.New(9, 9).Rand(1))
	gemm := g.Apply1(ops.NewMatMul(), x, wg)
	b := g.AddWeight("b", tensor.New(8, 9).Rand(2))
	add := g.Apply1(ops.NewAdd(), gemm, b)
	r := g.Apply1(ops.NewReshape(1, 1, 8, 9), add)
	wc := g.AddWeight("wc", tensor.New(1, 1, 3, 3).Rand(3))
	conv := g.Apply1(ops.NewConv(ops.ConvAttrs{Pads: []int{1}}), r, wc)
	relu := g.Apply1(ops.NewRelu(), conv)
	m := g.AddWeight("m", tensor.New(1, 1, 8, 9).Rand(4))
	mul := g.Apply1(ops.NewMul(), relu, m)
	sub := g.Apply1(ops.NewSub(), mul, m)
	g.MarkOutput(sub)
	if err := g.Validate(); err != nil {
		t.Fatalf("fig3 invalid: %v", err)
	}
	return g, ecg.Build(g)
}

func TestPlanFig3(t *testing.T) {
	g, e := buildFig3(t)
	plan := GeneratePlan(e, Options{})

	// Every node belongs to exactly one block.
	covered := map[*graph.Node]bool{}
	for _, b := range plan.Blocks {
		for _, n := range b.Nodes {
			if covered[n] {
				t.Fatalf("node %v in two blocks", n)
			}
			covered[n] = true
			if plan.BlockOf(n) != b {
				t.Fatalf("BlockOf(%v) inconsistent", n)
			}
		}
	}
	if len(covered) != len(g.Nodes) {
		t.Fatalf("plan covers %d of %d nodes", len(covered), len(g.Nodes))
	}

	// Add/Reshape/Conv/Relu/Mul/Sub should fuse into one Many-to-Many
	// block; MatMul must stay out (Many-to-Many + Many-to-Many is red).
	var convBlock, gemmBlock *Block
	for _, n := range g.Nodes {
		switch n.Op.Type() {
		case "Conv":
			convBlock = plan.BlockOf(n)
		case "MatMul":
			gemmBlock = plan.BlockOf(n)
		}
	}
	if convBlock == gemmBlock {
		t.Fatal("GEMM fused with Conv block; Table 3 forbids Many-to-Many pairs")
	}
	if convBlock.Size() != 6 {
		t.Errorf("conv block size = %d (%v), want 6", convBlock.Size(), convBlock)
	}
	if convBlock.Mapping != ops.ManyToMany {
		t.Errorf("conv block mapping = %v, want Many-to-Many", convBlock.Mapping)
	}
	if plan.FusedLayerCount() != 2 {
		t.Errorf("fused layers = %d, want 2", plan.FusedLayerCount())
	}
}

func TestPlanSeedIsMinIRSOneToOne(t *testing.T) {
	g := graph.New("seeds")
	big := g.AddInput("big", tensor.Of(64, 64))
	small := g.AddInput("small", tensor.Of(2, 2))
	rBig := g.Apply1(ops.NewRelu(), big)
	rSmall := g.Apply1(ops.NewRelu(), small)
	g.MarkOutput(rBig, rSmall)
	e := ecg.Build(g)
	p := &planner{e: e, opts: Options{}.withDefaults(), plan: &Plan{blockOf: map[*graph.Node]*Block{}}, unfused: map[*graph.Node]bool{}}
	order := g.TopoSort()
	for _, n := range order {
		p.unfused[n] = true
	}
	seed := p.generateSeed(order)
	if seed == nil || seed.Outputs[0] != rSmall {
		t.Errorf("seed = %v, want the small Relu (min IRS)", seed)
	}
}

func TestPlanIRSReduction(t *testing.T) {
	g, e := buildFig3(t)
	plan := GeneratePlan(e, Options{})
	before := g.IntermediateBytes()
	after := plan.IRSBytesAfter()
	if after >= before {
		t.Errorf("IRS after fusion %d >= before %d", after, before)
	}
	removed := plan.MarkRemovable(e)
	if removed == 0 {
		t.Error("no IR_removable values marked")
	}
}

func TestPlanConstraintBreaks(t *testing.T) {
	// A long chain of One-to-One ops with a tiny MaxBlockOps must split.
	g := graph.New("chain")
	x := g.AddInput("x", tensor.Of(4))
	v := x
	for i := 0; i < 10; i++ {
		v = g.Apply1(ops.NewRelu(), v)
	}
	g.MarkOutput(v)
	e := ecg.Build(g)
	plan := GeneratePlan(e, Options{MaxBlockOps: 3})
	if len(plan.Blocks) < 3 {
		t.Errorf("blocks = %d, want >= 3 with MaxBlockOps=3", len(plan.Blocks))
	}
	if plan.BrokenByConstraint == 0 {
		t.Error("expected constraint breaks")
	}
	for _, b := range plan.Blocks {
		if b.Size() > 3 {
			t.Errorf("block %v exceeds MaxBlockOps", b)
		}
	}
}

func TestPlanRegisterPressureConstraint(t *testing.T) {
	// A tree of adds over many distinct inputs exceeds MaxBlockInputs.
	g := graph.New("manyinputs")
	var leaves []*graph.Value
	for i := 0; i < 8; i++ {
		leaves = append(leaves, g.AddInput("x", tensor.Of(4)))
	}
	sum := leaves[0]
	for _, l := range leaves[1:] {
		sum = g.Apply1(ops.NewAdd(), sum, l)
	}
	g.MarkOutput(sum)
	e := ecg.Build(g)
	plan := GeneratePlan(e, Options{MaxBlockInputs: 4})
	for _, b := range plan.Blocks {
		if got := len(b.Inputs()); got > 4 {
			t.Errorf("block %v has %d inputs, cap 4", b, got)
		}
	}
	if len(plan.Blocks) < 2 {
		t.Error("expected the add tree to split under input cap")
	}
}

func TestPlanCycleLegality(t *testing.T) {
	// x -> Relu -> Softmax -> Add, with Relu also feeding Add directly.
	// Fusing Relu and Add into one block while Softmax stays outside
	// would create block -> Softmax -> block; the planner must refuse.
	g := graph.New("cycle")
	x := g.AddInput("x", tensor.Of(4, 4))
	relu := g.Apply1(ops.NewRelu(), x)
	sm := g.Apply1(ops.NewSoftmax(-1), relu)
	add := g.Apply1(ops.NewAdd(), relu, sm)
	g.MarkOutput(add)
	e := ecg.Build(g)
	plan := GeneratePlan(e, Options{})
	var reluB, smB, addB *Block
	for _, n := range g.Nodes {
		switch n.Op.Type() {
		case "Relu":
			reluB = plan.BlockOf(n)
		case "Softmax":
			smB = plan.BlockOf(n)
		case "Add":
			addB = plan.BlockOf(n)
		}
	}
	if reluB == addB && smB != reluB {
		t.Fatal("planner fused Relu and Add around an unfused Softmax (cycle)")
	}
	// Blocks must form a DAG: verify via engine-style ordering.
	for _, b := range plan.Blocks {
		for _, in := range b.Inputs() {
			if in.Producer != nil && plan.BlockOf(in.Producer) == b {
				t.Fatal("block input produced by itself")
			}
		}
	}
}

func TestPlanBlockLevelCycleLegality(t *testing.T) {
	// Regression test for the atomic-block convexity bug found by the
	// randomized integration tests: two blocks can be individually convex
	// at the node level yet cyclic at the block level.
	//
	//	x -> A1(Relu) -> M1(Softmax) -> A2(Mul with A1)   [A1, A2 fuse]
	//	A2 -> M2(Softmax) -> A3(Add with M1 output)
	//
	// If {M1-side consumers} and {M2-side consumers} end up in one block B
	// while the Softmaxes stay singletons, B -> Softmax -> B cycles arise
	// unless exterior traversal expands committed blocks atomically.
	g := graph.New("blockcycle")
	x := g.AddInput("x", tensor.Of(4, 4))
	a1 := g.Apply1(ops.NewRelu(), x)
	m1 := g.Apply1(ops.NewSoftmax(-1), a1)
	a2 := g.Apply1(ops.NewMul(), a1, m1)
	m2 := g.Apply1(ops.NewSoftmax(-1), a2)
	a3 := g.Apply1(ops.NewAdd(), m2, m1)
	g.MarkOutput(a3)
	e := ecg.Build(g)
	plan := GeneratePlan(e, Options{})

	// Kernel-level schedule must exist: verify by Kahn over block deps.
	deps := map[*Block]map[*Block]bool{}
	for _, b := range plan.Blocks {
		deps[b] = map[*Block]bool{}
		for _, in := range b.Inputs() {
			if in.Producer != nil {
				if p := plan.BlockOf(in.Producer); p != b {
					deps[b][p] = true
				}
			}
		}
	}
	done := map[*Block]bool{}
	for round := 0; round < len(plan.Blocks); round++ {
		for _, b := range plan.Blocks {
			if done[b] {
				continue
			}
			ready := true
			for d := range deps[b] {
				if !done[d] {
					ready = false
				}
			}
			if ready {
				done[b] = true
			}
		}
	}
	if len(done) != len(plan.Blocks) {
		t.Fatalf("block-level cycle: scheduled %d of %d blocks", len(done), len(plan.Blocks))
	}
}

func TestPlanYellowUsesLatency(t *testing.T) {
	// Conv -> Transpose is yellow (Many-to-Many + Shuffle). A latency
	// function that punishes fused blocks must keep them separate.
	build := func() (*graph.Graph, *ecg.ECG) {
		g := graph.New("yellow")
		x := g.AddInput("x", tensor.Of(1, 2, 4, 4))
		w := g.AddWeight("w", tensor.New(2, 2, 3, 3).Rand(1))
		c := g.Apply1(ops.NewConv(ops.ConvAttrs{Pads: []int{1}}), x, w)
		tr := g.Apply1(ops.NewTranspose(0, 2, 3, 1), c)
		g.MarkOutput(tr)
		return g, ecg.Build(g)
	}

	_, e1 := build()
	accept := GeneratePlan(e1, Options{Latency: func(nodes []*graph.Node) float64 {
		return 1 // fusing never hurts
	}})
	if accept.FusedLayerCount() != 1 {
		t.Errorf("accepting latency: %d blocks, want 1", accept.FusedLayerCount())
	}
	if accept.ProfileQueries == 0 {
		t.Error("yellow fusion did not consult the latency function")
	}

	_, e2 := build()
	reject := GeneratePlan(e2, Options{Latency: func(nodes []*graph.Node) float64 {
		return float64(len(nodes) * len(nodes)) // superlinear: fusing hurts
	}})
	if reject.FusedLayerCount() != 2 {
		t.Errorf("rejecting latency: %d blocks, want 2", reject.FusedLayerCount())
	}
	if reject.BrokenByProfile == 0 {
		t.Error("expected a profile-based rejection")
	}
}

func TestSeedPolicyAblation(t *testing.T) {
	_, e := buildFig3(t)
	base := GeneratePlan(e, Options{Seeds: SeedMinIRS})
	_, e2 := buildFig3(t)
	none := GeneratePlan(e2, Options{Seeds: SeedNone})
	if base.FusedLayerCount() > none.FusedLayerCount() {
		t.Errorf("paper seed policy (%d blocks) should fuse at least as well as no seeds (%d)",
			base.FusedLayerCount(), none.FusedLayerCount())
	}
}

func TestBlockInputsOutputs(t *testing.T) {
	g, e := buildFig3(t)
	plan := GeneratePlan(e, Options{})
	for _, b := range plan.Blocks {
		for _, in := range b.Inputs() {
			if in.Producer != nil && b.Contains(in.Producer) {
				t.Errorf("block input %v produced inside block", in)
			}
		}
		outs := b.Outputs()
		if len(outs) == 0 {
			t.Errorf("block %v has no outputs", b)
		}
	}
	_ = g
}
