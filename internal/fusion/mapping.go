// Package fusion implements DNNFusion's fusion analysis and plan generation:
// the mapping-type combination table (paper Table 3) and the light-weight
// profile-driven fusion plan exploration algorithm (paper §4.3, Listing 1).
package fusion

import "dnnfusion/internal/ops"

// Decision classifies the fusion of two mapping types (the colors of
// Table 3).
type Decision int

const (
	// FuseThrough (green): legal and profitable; fuse without further
	// analysis.
	FuseThrough Decision = iota
	// FuseDepend (yellow): legal, but profitability requires profiling
	// (a profile-database lookup or an on-line measurement).
	FuseDepend
	// FuseBreak (red): illegal or clearly unprofitable; abort.
	FuseBreak
)

var decisionNames = [...]string{"fuse_through", "fuse_depend", "fuse_break"}

func (d Decision) String() string { return decisionNames[d] }

// combineCell is one cell of Table 3.
type combineCell struct {
	result   ops.MappingType
	decision Decision
}

// combineTable is Table 3. Rows are the first operator's mapping type,
// columns the second's, in impedance order (One-to-One, Reorganize,
// Shuffle, One-to-Many, Many-to-Many).
//
// The structure follows the paper's "transformation impedance" rules
// (§3.2): One-to-One never changes the other type; Reorganize and Shuffle
// absorb One-to-One and, when paired with each other, resolve to
// Reorganize; One-to-Many and Many-to-Many dominate everything. The colors
// give 13 green, 10 yellow and 2 red cells; the paper's 23 code-generation
// rules per backend correspond exactly to the 23 non-red cells.
var combineTable = [5][5]combineCell{
	// First op: One-to-One — fusing with anything is profitable (green).
	ops.OneToOne: {
		ops.OneToOne:   {ops.OneToOne, FuseThrough},
		ops.Reorganize: {ops.Reorganize, FuseThrough},
		ops.Shuffle:    {ops.Shuffle, FuseThrough},
		ops.OneToMany:  {ops.OneToMany, FuseThrough},
		ops.ManyToMany: {ops.ManyToMany, FuseThrough},
	},
	// First op: Reorganize — index composition with One-to-One/Reorganize/
	// Shuffle is free (green); against expanding or reducing ops the data
	// access order may degrade, so profile (yellow).
	ops.Reorganize: {
		ops.OneToOne:   {ops.Reorganize, FuseThrough},
		ops.Reorganize: {ops.Reorganize, FuseThrough},
		ops.Shuffle:    {ops.Reorganize, FuseThrough},
		ops.OneToMany:  {ops.OneToMany, FuseDepend},
		ops.ManyToMany: {ops.ManyToMany, FuseDepend},
	},
	// First op: Shuffle — same reasoning as Reorganize (the paper's
	// Expand/Transpose example is the yellow case).
	ops.Shuffle: {
		ops.OneToOne:   {ops.Shuffle, FuseThrough},
		ops.Reorganize: {ops.Reorganize, FuseThrough},
		ops.Shuffle:    {ops.Shuffle, FuseThrough},
		ops.OneToMany:  {ops.OneToMany, FuseDepend},
		ops.ManyToMany: {ops.ManyToMany, FuseDepend},
	},
	// First op: One-to-Many — feeding a Many-to-Many op distributes the
	// continuous input the compute op wants (Expand→Conv), so red;
	// other combinations may introduce data copies, so profile.
	ops.OneToMany: {
		ops.OneToOne:   {ops.OneToMany, FuseThrough},
		ops.Reorganize: {ops.OneToMany, FuseDepend},
		ops.Shuffle:    {ops.OneToMany, FuseDepend},
		ops.OneToMany:  {ops.OneToMany, FuseDepend},
		ops.ManyToMany: {ops.ManyToMany, FuseBreak},
	},
	// First op: Many-to-Many — epilogue fusion with One-to-One is the
	// classic profitable case (Conv+ReLU, GEMM+Add); Many-to-Many with
	// Many-to-Many (Conv→Conv) wrecks register/cache usage, so red;
	// the rest require profiling (Conv→Expand vs Conv→Resize example).
	ops.ManyToMany: {
		ops.OneToOne:   {ops.ManyToMany, FuseThrough},
		ops.Reorganize: {ops.ManyToMany, FuseDepend},
		ops.Shuffle:    {ops.ManyToMany, FuseDepend},
		ops.OneToMany:  {ops.ManyToMany, FuseDepend},
		ops.ManyToMany: {ops.ManyToMany, FuseBreak},
	},
}

// Combine returns the mapping type of the operator resulting from fusing
// first followed by second, and the fusion decision (Table 3).
func Combine(first, second ops.MappingType) (ops.MappingType, Decision) {
	c := combineTable[first][second]
	return c.result, c.decision
}

// TableCounts tallies the decision colors of the 25 cells; the paper's
// Table 3 implies 13 green, 10 yellow, 2 red (23 code-generation rules, one
// per non-red cell).
func TableCounts() (green, yellow, red int) {
	for _, row := range combineTable {
		for _, c := range row {
			switch c.decision {
			case FuseThrough:
				green++
			case FuseDepend:
				yellow++
			case FuseBreak:
				red++
			}
		}
	}
	return
}
