package fusion

import (
	"sort"

	"dnnfusion/internal/ecg"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// Chain is one fusable contraction chain: a MatMul/Gemm producer feeding a
// MatMul/Gemm consumer's A operand through zero or more single-consumer
// shape-preserving middle stages (pointwise activations/bias adds and/or a
// row softmax). Table 3 marks Combine(ManyToMany, ManyToMany) as FuseBreak
// for pairwise loop fusion; chain fusion is the deliberate exception,
// executed by the streaming chain kernel (ops chainSource) that pulls
// producer row tiles into the consumer so the intermediate never
// materializes.
type Chain struct {
	// Producer is the first contraction, Consumer the second; Middle lists
	// the stages between them ordered producer → consumer.
	Producer *graph.Node
	Consumer *graph.Node
	Middle   []*graph.Node
	// Online is true when the stage directly feeding the consumer is a
	// non-log innermost-axis softmax: the kernel folds it into the second
	// contraction with the streaming-rescale (flash-attention) recurrence,
	// trading bit-exactness for a few-ULP tolerance. Softmax-free chains
	// stream exactly.
	Online bool
}

// Nodes returns the chain's members ordered producer → consumer.
func (c *Chain) Nodes() []*graph.Node {
	out := make([]*graph.Node, 0, len(c.Middle)+2)
	out = append(out, c.Producer)
	for i := len(c.Middle) - 1; i >= 0; i-- {
		out = append(out, c.Middle[i])
	}
	return append(out, c.Consumer)
}

// DetectChains finds every legal contraction chain in the graph, in
// topological order of the consumer. Legality mirrors the chain kernel's
// own engagement conditions, so a detected chain actually streams:
//
//   - consumer is MatMul/Gemm with untransposed operands whose A-side
//     batch dimensions equal the output's exactly (batch-polymorphic but
//     not A-broadcast);
//   - every intermediate value on the A path has a single consumer and is
//     not a graph output (streaming it would skip its materialization);
//   - middle stages preserve the streamed operand's shape: pointwise ops
//     (other operands may broadcast onto it) or an innermost-axis softmax;
//   - the chain is rooted at another MatMul/Gemm.
func DetectChains(e *ecg.ECG) []*Chain {
	var out []*Chain
	for _, n := range e.G.TopoSort() {
		if c := chainEndingAt(n); c != nil {
			out = append(out, c)
		}
	}
	return out
}

// chainProducerNode reports whether n can root a chain: any MatMul or
// Gemm — its own transposes are internal to how it computes, not to how
// its output streams.
func chainProducerNode(n *graph.Node) bool {
	if _, _, ok := ops.MatMulTrans(n.Op); ok {
		return true
	}
	_, _, _, _, ok := ops.GemmInfo(n.Op)
	return ok
}

// chainConsumerNode reports whether n can terminate a chain: an
// untransposed MatMul or Gemm (the chain kernel streams its A operand in
// row-major row groups, which a transposed read order would defeat).
func chainConsumerNode(n *graph.Node) bool {
	if ta, tb, ok := ops.MatMulTrans(n.Op); ok {
		return !ta && !tb
	}
	if _, _, ta, tb, ok := ops.GemmInfo(n.Op); ok {
		return !ta && !tb
	}
	return false
}

func chainEndingAt(consumer *graph.Node) *Chain {
	if !chainConsumerNode(consumer) || len(consumer.Inputs) < 2 {
		return nil
	}
	out := consumer.Outputs[0].Shape
	a := consumer.Inputs[0].Shape
	// A's batch part must equal the output batch exactly: the streamed
	// producer is then batch-major over per-matrix row groups.
	if a.Rank() != out.Rank() || !a[:a.Rank()-2].Equal(out[:out.Rank()-2]) {
		return nil
	}
	c := &Chain{Consumer: consumer}
	v := consumer.Inputs[0]
	for {
		if v.Kind != graph.Intermediate || len(v.Consumers) != 1 || v.Producer == nil {
			return nil
		}
		p := v.Producer
		if len(p.Outputs) != 1 {
			return nil
		}
		if chainProducerNode(p) {
			c.Producer = p
			return c
		}
		next, ok := chainMiddle(p, v)
		if !ok {
			return nil
		}
		c.Middle = append(c.Middle, p)
		if len(c.Middle) == 1 {
			if _, log, isSM := ops.SoftmaxInfo(p.Op); isSM && !log {
				c.Online = true
			}
		}
		v = next
	}
}

// chainMiddle checks whether node p (producing value v) is a legal middle
// stage and returns the input value the chain continues through.
func chainMiddle(p *graph.Node, v *graph.Value) (*graph.Value, bool) {
	if axis, _, ok := ops.SoftmaxInfo(p.Op); ok {
		// Softmax must be over the innermost axis: only then is each
		// streamed row self-contained.
		ax, axOK := tensor.NormalizeAxis(axis, v.Shape.Rank())
		if !axOK || ax != v.Shape.Rank()-1 {
			return nil, false
		}
		return p.Inputs[0], true
	}
	if _, ok := p.Op.(ops.Pointwise); !ok {
		return nil, false
	}
	// The chain continues through the first input whose shape equals the
	// stage's output — the streamed operand; other inputs may broadcast.
	for _, in := range p.Inputs {
		if in.Shape.Equal(v.Shape) {
			return in, true
		}
	}
	return nil, false
}

// FuseChains is the chain-fusion post-pass over a generated plan: for each
// detected chain whose members span multiple blocks, the blocks are merged
// into one chain block (respecting the block-size, input-count, and
// convexity constraints), so codegen compiles them as a single streaming
// kernel and the planner drops the intermediate from the arena. Returns
// the chains actually fused, consumer-topo-ordered.
func FuseChains(e *ecg.ECG, p *Plan, opts Options) []*Chain {
	return FuseChainsMask(e, p, opts, ^uint64(0))
}

// FuseChainsMask is FuseChains restricted to a subset of the detected
// chains: bit i of mask selects chain i in DetectChains order (consumer-
// topo order, which is deterministic, so a mask names the same chains in
// every compilation of the same graph). The measured-tuning plan
// enumerator uses it to spell out chain-fusion on/off per chain; a full
// mask is exactly FuseChains. Chains past bit 63 follow bit 63.
func FuseChainsMask(e *ecg.ECG, p *Plan, opts Options, mask uint64) []*Chain {
	opts = opts.withDefaults()
	order := e.G.TopoSort()
	pos := make(map[*graph.Node]int, len(order))
	for i, n := range order {
		pos[n] = i
	}
	var fused []*Chain
	for i, c := range DetectChains(e) {
		bit := i
		if bit > 63 {
			bit = 63
		}
		if mask&(1<<uint(bit)) == 0 {
			continue
		}
		if p.fuseChain(c, opts, pos) {
			fused = append(fused, c)
			p.ChainFusions++
		}
	}
	if len(fused) > 0 {
		sortBlocksTopo(p, order)
	}
	return fused
}

// fuseChain merges the blocks containing the chain's members into the
// consumer's block. A block already carrying a chain is never merged again
// (one streaming chain per kernel).
func (p *Plan) fuseChain(c *Chain, opts Options, pos map[*graph.Node]int) bool {
	members := c.Nodes()
	blockSet := map[*Block]bool{}
	for _, n := range members {
		b := p.blockOf[n]
		if b == nil || b.Chain != nil {
			return false
		}
		blockSet[b] = true
	}
	if len(blockSet) < 2 {
		// Already one block (can't happen with today's Table 3, but stay
		// safe): just tag it so codegen emits the chain rule.
		for b := range blockSet {
			if b.Chain == nil {
				b.Chain = c
				return true
			}
		}
		return false
	}
	union := map[*graph.Node]bool{}
	total := 0
	for b := range blockSet {
		total += b.Size()
		for _, n := range b.Nodes {
			union[n] = true
		}
	}
	if total > opts.MaxBlockOps {
		return false
	}
	seen := map[*graph.Value]bool{}
	inputs := 0
	for b := range blockSet {
		for _, n := range b.Nodes {
			for _, in := range n.Inputs {
				if in.Producer != nil && union[in.Producer] {
					continue
				}
				if !seen[in] {
					seen[in] = true
					inputs++
				}
			}
		}
	}
	if inputs > opts.MaxBlockInputs {
		return false
	}
	if p.mergeWouldCycle(union) {
		return false
	}
	target := p.blockOf[c.Consumer]
	merged := make([]*graph.Node, 0, total)
	for n := range union {
		merged = append(merged, n)
	}
	sort.Slice(merged, func(i, j int) bool { return pos[merged[i]] < pos[merged[j]] })
	target.Nodes = merged
	target.Mapping = ops.ManyToMany
	target.Chain = c
	for _, n := range merged {
		target.nodeSet[n] = true
		p.blockOf[n] = target
	}
	kept := p.Blocks[:0]
	for _, b := range p.Blocks {
		if b == target || !blockSet[b] {
			kept = append(kept, b)
		}
	}
	p.Blocks = kept
	return true
}

// mergeWouldCycle reports whether merging the union set into one block
// would create a block-level dependency cycle: a path union → exterior →
// union, with committed blocks expanded atomically (as in
// wouldCreateCycle).
func (p *Plan) mergeWouldCycle(union map[*graph.Node]bool) bool {
	var stack []*graph.Node
	visited := map[*graph.Node]bool{}
	push := func(n *graph.Node) {
		if visited[n] || union[n] {
			return
		}
		visited[n] = true
		stack = append(stack, n)
		if other := p.blockOf[n]; other != nil {
			for _, sib := range other.Nodes {
				if !visited[sib] && !union[sib] {
					visited[sib] = true
					stack = append(stack, sib)
				}
			}
		}
	}
	for n := range union {
		for _, out := range n.Outputs {
			for _, c := range out.Consumers {
				push(c)
			}
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, out := range n.Outputs {
			for _, c := range out.Consumers {
				if union[c] {
					return true
				}
				push(c)
			}
		}
	}
	return false
}
