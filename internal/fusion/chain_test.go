package fusion

import (
	"testing"

	"dnnfusion/internal/ecg"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// attentionChainGraph is the canonical online-chain shape: scores softmax
// context, with Q/K/V projections above it.
func attentionChainGraph() *graph.Graph {
	g := graph.New("attn-chain")
	x := g.AddInput("x", tensor.Of(8, 16))
	q := g.Apply1(ops.NewMatMul(), x, g.AddWeightShape("wq", tensor.Of(16, 16)))
	k := g.Apply1(ops.NewMatMul(), x, g.AddWeightShape("wk", tensor.Of(16, 16)))
	v := g.Apply1(ops.NewMatMul(), x, g.AddWeightShape("wv", tensor.Of(16, 16)))
	scores := g.Apply1(ops.NewMatMulT(false, true), q, k)
	probs := g.Apply1(ops.NewSoftmax(-1), scores)
	g.MarkOutput(g.Apply1(ops.NewMatMul(), probs, v))
	return g
}

// mlpChainGraph is the exact-chain shape: matmul, bias, relu, matmul.
func mlpChainGraph() *graph.Graph {
	g := graph.New("mlp-chain")
	x := g.AddInput("x", tensor.Of(8, 16))
	h := g.Apply1(ops.NewMatMul(), x, g.AddWeightShape("w1", tensor.Of(16, 32)))
	h = g.Apply1(ops.NewAdd(), h, g.AddWeightShape("b1", tensor.Of(32)))
	h = g.Apply1(ops.NewRelu(), h)
	g.MarkOutput(g.Apply1(ops.NewMatMul(), h, g.AddWeightShape("w2", tensor.Of(32, 8))))
	return g
}

func TestDetectChainsAttention(t *testing.T) {
	g := attentionChainGraph()
	chains := DetectChains(ecg.Build(g))
	if len(chains) != 1 {
		t.Fatalf("detected %d chains, want 1", len(chains))
	}
	c := chains[0]
	if !c.Online {
		t.Error("softmax chain not classified online")
	}
	// The producer is the transposed scores matmul: producer-side
	// transposes are internal to how it computes and must not block
	// detection (this is exactly the attention shape after rewriting).
	if ta, tb, ok := ops.MatMulTrans(c.Producer.Op); !ok || ta || !tb {
		t.Errorf("producer %v is not the transposed-key scores matmul", c.Producer)
	}
	nodes := c.Nodes()
	if len(nodes) != 3 || nodes[0] != c.Producer || nodes[2] != c.Consumer {
		t.Errorf("chain nodes %v not ordered producer→middle→consumer", nodes)
	}
}

func TestDetectChainsMLPExact(t *testing.T) {
	g := mlpChainGraph()
	chains := DetectChains(ecg.Build(g))
	if len(chains) != 1 {
		t.Fatalf("detected %d chains, want 1", len(chains))
	}
	c := chains[0]
	if c.Online {
		t.Error("softmax-free chain classified online")
	}
	if len(c.Middle) != 2 {
		t.Errorf("middle stages %v, want bias add + relu", c.Middle)
	}
}

func TestDetectChainsLogSoftmaxStreamsExactly(t *testing.T) {
	g := graph.New("log-sm")
	x := g.AddInput("x", tensor.Of(8, 16))
	s := g.Apply1(ops.NewMatMul(), x, g.AddWeightShape("w1", tensor.Of(16, 16)))
	p := g.Apply1(ops.NewLogSoftmax(-1), s)
	g.MarkOutput(g.Apply1(ops.NewMatMul(), p, g.AddWeightShape("w2", tensor.Of(16, 16))))
	chains := DetectChains(ecg.Build(g))
	if len(chains) != 1 {
		t.Fatalf("detected %d chains, want 1", len(chains))
	}
	if chains[0].Online {
		t.Error("log-softmax chain classified online; it must take the exact streaming path")
	}
}

// TestDetectChainsRejections pins the legality boundary: each variation
// breaks exactly one engagement condition and must yield no chain.
func TestDetectChainsRejections(t *testing.T) {
	cases := []struct {
		name  string
		build func() *graph.Graph
	}{
		{"transposed consumer", func() *graph.Graph {
			g := graph.New("t")
			x := g.AddInput("x", tensor.Of(8, 16))
			s := g.Apply1(ops.NewMatMul(), x, g.AddWeightShape("w1", tensor.Of(16, 16)))
			p := g.Apply1(ops.NewSoftmax(-1), s)
			g.MarkOutput(g.Apply1(ops.NewMatMulT(false, true), p, g.AddWeightShape("w2", tensor.Of(16, 16))))
			return g
		}},
		{"fan-out intermediate", func() *graph.Graph {
			g := graph.New("f")
			x := g.AddInput("x", tensor.Of(8, 16))
			s := g.Apply1(ops.NewMatMul(), x, g.AddWeightShape("w1", tensor.Of(16, 16)))
			p := g.Apply1(ops.NewSoftmax(-1), s)
			g.MarkOutput(g.Apply1(ops.NewMatMul(), p, g.AddWeightShape("w2", tensor.Of(16, 16))))
			g.MarkOutput(g.Apply1(ops.NewRelu(), p)) // second consumer of probs
			return g
		}},
		{"axis-0 softmax", func() *graph.Graph {
			g := graph.New("a0")
			x := g.AddInput("x", tensor.Of(8, 16))
			s := g.Apply1(ops.NewMatMul(), x, g.AddWeightShape("w1", tensor.Of(16, 16)))
			p := g.Apply1(ops.NewSoftmax(0), s)
			g.MarkOutput(g.Apply1(ops.NewMatMul(), p, g.AddWeightShape("w2", tensor.Of(16, 16))))
			return g
		}},
		{"intermediate is graph output", func() *graph.Graph {
			g := graph.New("o")
			x := g.AddInput("x", tensor.Of(8, 16))
			s := g.Apply1(ops.NewMatMul(), x, g.AddWeightShape("w1", tensor.Of(16, 16)))
			p := g.Apply1(ops.NewSoftmax(-1), s)
			g.MarkOutput(p) // streaming it would skip its materialization
			g.MarkOutput(g.Apply1(ops.NewMatMul(), p, g.AddWeightShape("w2", tensor.Of(16, 16))))
			return g
		}},
		{"no contraction root", func() *graph.Graph {
			g := graph.New("r")
			x := g.AddInput("x", tensor.Of(8, 16))
			p := g.Apply1(ops.NewSoftmax(-1), g.Apply1(ops.NewRelu(), x))
			g.MarkOutput(g.Apply1(ops.NewMatMul(), p, g.AddWeightShape("w2", tensor.Of(16, 16))))
			return g
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if chains := DetectChains(ecg.Build(tc.build())); len(chains) != 0 {
				t.Errorf("detected %d chains, want none", len(chains))
			}
		})
	}
}

// TestFuseChainsMergesBlocks checks the post-pass invariants: the chain's
// members end up in one block tagged with the chain, the plan still
// partitions the graph, and the counter reflects the merge.
func TestFuseChainsMergesBlocks(t *testing.T) {
	for _, build := range []func() *graph.Graph{attentionChainGraph, mlpChainGraph} {
		g := build()
		e := ecg.Build(g)
		p := GeneratePlan(e, Options{})
		chains := FuseChains(e, p, Options{})
		if len(chains) != 1 {
			t.Fatalf("%s: fused %d chains, want 1", g.Name, len(chains))
		}
		if p.ChainFusions != 1 {
			t.Errorf("%s: ChainFusions = %d, want 1", g.Name, p.ChainFusions)
		}
		c := chains[0]
		blk := p.BlockOf(c.Consumer)
		if blk == nil || blk.Chain != c {
			t.Fatalf("%s: consumer block not tagged with the chain", g.Name)
		}
		for _, n := range c.Nodes() {
			if p.BlockOf(n) != blk {
				t.Errorf("%s: chain member %v outside the chain block", g.Name, n)
			}
		}
		seen := map[*graph.Node]bool{}
		for _, b := range p.Blocks {
			for _, n := range b.Nodes {
				if seen[n] {
					t.Fatalf("%s: node %v in two blocks after chain fusion", g.Name, n)
				}
				seen[n] = true
			}
		}
		if len(seen) != len(g.Nodes) {
			t.Errorf("%s: plan covers %d/%d nodes after chain fusion", g.Name, len(seen), len(g.Nodes))
		}
	}
}
