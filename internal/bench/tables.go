package bench

import (
	"dnnfusion/internal/baseline"
	"dnnfusion/internal/device"
	"dnnfusion/internal/ecg"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/models"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/rewrite"
	"dnnfusion/internal/tensor"
)

// --- Table 1: the motivating study ------------------------------------------

// Table1Row correlates depth with achieved throughput on the mobile GPU
// under fixed-pattern fusion (OurB+), reproducing the paper's observation
// that deeper models run at a fraction of the FLOPs/s of shallow ones.
type Table1Row struct {
	Model       string
	TotalLayers int
	IRSizeMB    float64
	GFLOPs      float64
	SpeedGFLOPS float64
}

// Table1 regenerates Table 1 (VGG-16, YOLO-V4, DistilBERT, MobileBERT,
// GPT-2 on the Adreno 650 under OurB+).
func (c *Context) Table1() []Table1Row {
	gpu := device.Adreno650()
	var rows []Table1Row
	for _, name := range []string{"VGG-16", "YOLO-V4", "DistilBERT", "MobileBERT", "GPT-2"} {
		g := c.Model(name)
		e := ecg.Build(g)
		st := e.ComputeStats()
		rep, ok := c.SimulateFramework(baseline.OurBPlus, name, gpu)
		if !ok {
			continue
		}
		rows = append(rows, Table1Row{
			Model:       name,
			TotalLayers: st.Total,
			IRSizeMB:    float64(st.IRSBytes) / 1e6,
			GFLOPs:      float64(st.FLOPs) / 1e9,
			SpeedGFLOPS: float64(st.FLOPs) / 1e6 / rep.LatencyMs,
		})
	}
	return rows
}

// --- Table 2: operator classification ----------------------------------------

// Table2Group is one mapping-type row of Table 2.
type Table2Group struct {
	Mapping         ops.MappingType
	Operators       []string
	Representatives []string
}

// Table2 regenerates the operator classification from the live registry.
func Table2() []Table2Group {
	byType := map[ops.MappingType]*Table2Group{}
	var order []ops.MappingType
	for _, m := range ops.AllMappingTypes() {
		byType[m] = &Table2Group{Mapping: m}
		order = append(order, m)
	}
	for _, e := range ops.Catalog() {
		grp := byType[e.Mapping]
		grp.Operators = append(grp.Operators, e.Name)
		if e.Representative {
			grp.Representatives = append(grp.Representatives, e.Name)
		}
	}
	out := make([]Table2Group, 0, len(order))
	for _, m := range order {
		out = append(out, *byType[m])
	}
	return out
}

// --- Table 3: mapping type analysis ------------------------------------------

// Table3Cell is one cell of the fusion combination matrix.
type Table3Cell struct {
	First, Second ops.MappingType
	Result        ops.MappingType
	Decision      fusion.Decision
}

// Table3 regenerates the 5×5 combination matrix.
func Table3() [][]Table3Cell {
	types := ops.AllMappingTypes()
	out := make([][]Table3Cell, len(types))
	for i, first := range types {
		out[i] = make([]Table3Cell, len(types))
		for j, second := range types {
			r, d := fusion.Combine(first, second)
			out[i][j] = Table3Cell{first, second, r, d}
		}
	}
	return out
}

// --- Table 4: graph rewriting rules ------------------------------------------

// Table4Row verifies one representative rewriting rule end to end: the
// pattern is built as a real graph, rewritten, and the measured FLOPs are
// reported next to the paper's symbolic counts.
type Table4Row struct {
	Property    string
	Pattern     string
	Rewritten   string
	FLOPsBefore int64
	FLOPsAfter  int64
	Applied     int
}

// table4Case builds a pattern graph over m×n inputs.
type table4Case struct {
	property string
	pattern  string
	result   string
	build    func() *graph.Graph
}

func table4Cases() []table4Case {
	const m, n = 64, 64
	in := func(g *graph.Graph, name string) *graph.Value {
		return g.AddInput(name, tensor.Of(m, n))
	}
	return []table4Case{
		{"Associative", "Recip(A) ⊙ Recip(A⊙B)", "Recip(Square(A)⊙B)", func() *graph.Graph {
			g := graph.New("t4a1")
			a, b := in(g, "A"), in(g, "B")
			out := g.Apply1(ops.NewMul(),
				g.Apply1(ops.NewReciprocal(), a),
				g.Apply1(ops.NewReciprocal(), g.Apply1(ops.NewMul(), a, b)))
			g.MarkOutput(out)
			return g
		}},
		{"Associative", "(A⊙√B) ⊙ (√B⊙C)", "A⊙B⊙C", func() *graph.Graph {
			g := graph.New("t4a2")
			a, b, cc := in(g, "A"), in(g, "B"), in(g, "C")
			l := g.Apply1(ops.NewMul(), a, g.Apply1(ops.NewSqrt(), b))
			r := g.Apply1(ops.NewMul(), g.Apply1(ops.NewSqrt(), b), cc)
			g.MarkOutput(g.Apply1(ops.NewMul(), l, r))
			return g
		}},
		{"Associative", "Abs(A)⊙B⊙Abs(C)", "Abs(A⊙C)⊙B", func() *graph.Graph {
			g := graph.New("t4a3")
			a, b, cc := in(g, "A"), in(g, "B"), in(g, "C")
			l := g.Apply1(ops.NewMul(), g.Apply1(ops.NewAbs(), a), b)
			g.MarkOutput(g.Apply1(ops.NewMul(), l, g.Apply1(ops.NewAbs(), cc)))
			return g
		}},
		{"Associative", "(A⊙ReduceSum(B))⊙(ReduceSum(B)⊙C)", "A⊙Square(ReduceSum(B))⊙C", func() *graph.Graph {
			g := graph.New("t4a4")
			a, b, cc := in(g, "A"), in(g, "B"), in(g, "C")
			rs := g.Apply1(ops.NewReduce(ops.ReduceSum, true, 1), b)
			l := g.Apply1(ops.NewMul(), a, rs)
			r := g.Apply1(ops.NewMul(), rs, cc)
			g.MarkOutput(g.Apply1(ops.NewMul(), l, r))
			return g
		}},
		{"Distributive", "A⊙C + A⊙B", "A⊙(C+B)", func() *graph.Graph {
			g := graph.New("t4d1")
			a, b, cc := in(g, "A"), in(g, "B"), in(g, "C")
			g.MarkOutput(g.Apply1(ops.NewAdd(),
				g.Apply1(ops.NewMul(), a, cc), g.Apply1(ops.NewMul(), a, b)))
			return g
		}},
		{"Distributive", "A + A⊙B", "A⊙(B+1)", func() *graph.Graph {
			g := graph.New("t4d2")
			a, b := in(g, "A"), in(g, "B")
			g.MarkOutput(g.Apply1(ops.NewAdd(), a, g.Apply1(ops.NewMul(), a, b)))
			return g
		}},
		{"Distributive", "Square(A+B) − (A+B)⊙C", "(A+B)⊙(A+B−C)", func() *graph.Graph {
			g := graph.New("t4d3")
			a, b, cc := in(g, "A"), in(g, "B"), in(g, "C")
			s := g.Apply1(ops.NewAdd(), a, b)
			g.MarkOutput(g.Apply1(ops.NewSub(),
				g.Apply1(ops.NewSquare(), s), g.Apply1(ops.NewMul(), s, cc)))
			return g
		}},
		{"Commutative", "ReduceSum(BitShift(A))", "BitShift(ReduceSum(A))", func() *graph.Graph {
			g := graph.New("t4c1")
			a := in(g, "A")
			g.MarkOutput(g.Apply1(ops.NewReduce(ops.ReduceSum, false, 1),
				g.Apply1(ops.NewBitShift(2), a)))
			return g
		}},
		{"Commutative", "ReduceProd(Exp(A))", "Exp(ReduceSum(A))", func() *graph.Graph {
			g := graph.New("t4c2")
			a := in(g, "A")
			g.MarkOutput(g.Apply1(ops.NewReduce(ops.ReduceProd, false, 1),
				g.Apply1(ops.NewExp(), a)))
			return g
		}},
	}
}

// Table4 runs the representative rewrite patterns and reports measured
// FLOPs before/after, plus the rule census (the paper's 45/38/66 counts).
func Table4() ([]Table4Row, []rewrite.RuleCensus) {
	var rows []Table4Row
	for _, tc := range table4Cases() {
		g := tc.build()
		before := g.FLOPs()
		e := ecg.Build(g)
		st, err := rewrite.NewDefaultEngine().Run(e)
		if err != nil {
			panic(err)
		}
		rows = append(rows, Table4Row{
			Property:    tc.property,
			Pattern:     tc.pattern,
			Rewritten:   tc.result,
			FLOPsBefore: before,
			FLOPsAfter:  g.FLOPs(),
			Applied:     st.Applied,
		})
	}
	return rows, rewrite.Census(rewrite.DefaultRules())
}

// --- Table 5: fusion rate ----------------------------------------------------

// Table5Row reports layer counts before/after fusion per framework.
type Table5Row struct {
	Model      string
	Type       string
	Task       string
	CIL        int
	MIL        int
	Total      int
	IRSMB      float64
	Fused      map[baseline.Framework]int // -1 = unsupported
	IRSAfterMB float64                    // DNNFusion's plan
}

// Table5 regenerates the fusion-rate evaluation over all 15 models.
func (c *Context) Table5() []Table5Row {
	var rows []Table5Row
	for _, spec := range models.All() {
		g := c.Model(spec.Name)
		st := ecg.Build(g).ComputeStats()
		row := Table5Row{
			Model: spec.Name, Type: spec.Type, Task: spec.Task,
			CIL: st.CIL, MIL: st.MIL, Total: st.Total,
			IRSMB: float64(st.IRSBytes) / 1e6,
			Fused: map[baseline.Framework]int{},
		}
		for _, f := range []baseline.Framework{baseline.MNN, baseline.TVM, baseline.TFLite, baseline.Pytorch} {
			if !baseline.Supports(f, spec.Name).FusionCount {
				row.Fused[f] = -1
				continue
			}
			_, plan := c.Baseline(f, spec.Name)
			row.Fused[f] = plan.FusedLayerCount()
		}
		comp := c.DNNF(spec.Name)
		row.Fused[baseline.DNNF] = comp.FusedLayerCount()
		row.IRSAfterMB = float64(comp.Plan.IRSBytesAfter()) / 1e6
		rows = append(rows, row)
	}
	return rows
}

// --- Table 6: inference latency ----------------------------------------------

// Table6Row reports CPU and GPU latency per framework; -1 = unsupported.
type Table6Row struct {
	Model   string
	ParamsM float64
	GFLOPs  float64
	CPU     map[baseline.Framework]float64
	GPU     map[baseline.Framework]float64
}

// Table6 regenerates the latency comparison on the Snapdragon 865.
func (c *Context) Table6() []Table6Row {
	cpu := device.Snapdragon865CPU()
	gpu := device.Adreno650()
	var rows []Table6Row
	for _, spec := range models.All() {
		g := c.Model(spec.Name)
		row := Table6Row{
			Model:   spec.Name,
			ParamsM: float64(g.ParamBytes()) / 4e6,
			GFLOPs:  float64(g.FLOPs()) / 1e9,
			CPU:     map[baseline.Framework]float64{},
			GPU:     map[baseline.Framework]float64{},
		}
		for _, f := range baseline.Frameworks() {
			if rep, ok := c.SimulateFramework(f, spec.Name, cpu); ok {
				row.CPU[f] = rep.LatencyMs
			} else {
				row.CPU[f] = -1
			}
			if rep, ok := c.SimulateFramework(f, spec.Name, gpu); ok {
				row.GPU[f] = rep.LatencyMs
			} else {
				row.GPU[f] = -1
			}
		}
		rows = append(rows, row)
	}
	return rows
}
