package bench

import (
	"dnnfusion/internal/core"
	"dnnfusion/internal/device"
	"dnnfusion/internal/fusion"
)

// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// returns rows comparing the paper's choice against alternatives on a
// representative model set.

// AblationRow compares one configuration against the paper's default.
type AblationRow struct {
	Model       string
	Config      string
	LatencyMs   float64
	FusedLayers int
}

var ablationModels = []string{"EfficientNet-B0", "YOLO-V4", "GPT-2"}

func (c *Context) ablate(model string, mutate func(*core.Options), label string) AblationRow {
	opts := core.Defaults()
	cpu := device.Snapdragon865CPU()
	opts.Device = cpu
	mutate(&opts)
	comp, err := core.Compile(c.Model(model), opts)
	if err != nil {
		panic(err)
	}
	rep, err := comp.Simulate(cpu)
	if err != nil {
		panic(err)
	}
	return AblationRow{Model: model, Config: label, LatencyMs: rep.LatencyMs, FusedLayers: comp.FusedLayerCount()}
}

// AblationSeedPolicy compares the paper's min-IRS One-to-One seeding against
// max-IRS and no seeding (§4.3 Step I).
func (c *Context) AblationSeedPolicy() []AblationRow {
	var rows []AblationRow
	for _, m := range ablationModels {
		rows = append(rows,
			c.ablate(m, func(o *core.Options) { o.Seeds = fusion.SeedMinIRS }, "seed=min-IRS (paper)"),
			c.ablate(m, func(o *core.Options) { o.Seeds = fusion.SeedMaxIRS }, "seed=max-IRS"),
			c.ablate(m, func(o *core.Options) { o.Seeds = fusion.SeedNone }, "seed=none"),
		)
	}
	return rows
}

// AblationConstraint sweeps the register-pressure constraint threshold
// (Listing 1 step 2.2).
func (c *Context) AblationConstraint() []AblationRow {
	var rows []AblationRow
	for _, m := range ablationModels {
		for _, cap := range []int{2, 4, 8, 24, 48} {
			capCopy := cap
			rows = append(rows, c.ablate(m, func(o *core.Options) {
				o.MaxBlockInputs = capCopy
			}, "max-inputs="+itoa(capCopy)))
		}
	}
	return rows
}

// AblationProfileDB compares yellow decisions resolved by the cost model
// against optimistic acceptance (no profiling).
func (c *Context) AblationProfileDB() []AblationRow {
	var rows []AblationRow
	for _, m := range ablationModels {
		rows = append(rows,
			c.ablate(m, func(o *core.Options) {}, "profiled yellow (paper)"),
			c.ablate(m, func(o *core.Options) { o.Device = nil }, "optimistic yellow"),
		)
	}
	return rows
}

// AblationLayout compares the dominant-operator layout selection (§4.4.2)
// against no layout optimization.
func (c *Context) AblationLayout() []AblationRow {
	var rows []AblationRow
	for _, m := range ablationModels {
		rows = append(rows,
			c.ablate(m, func(o *core.Options) { o.OtherOpt = true }, "layout=dominant-op (paper)"),
			c.ablate(m, func(o *core.Options) { o.OtherOpt = false }, "layout=off"),
		)
	}
	return rows
}

// AblationRewrite compares full rewriting against folding-only rewriting.
func (c *Context) AblationRewrite() []AblationRow {
	var rows []AblationRow
	for _, m := range ablationModels {
		rows = append(rows,
			c.ablate(m, func(o *core.Options) { o.GraphRewrite = true }, "rewrite=full (paper)"),
			c.ablate(m, func(o *core.Options) { o.GraphRewrite = false }, "rewrite=off"),
		)
	}
	return rows
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
