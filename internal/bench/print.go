package bench

import (
	"fmt"
	"io"
	"strings"

	"dnnfusion/internal/baseline"
	"dnnfusion/internal/fusion"
)

// Printers render each experiment in the same shape the paper reports.

func fmtMs(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}

func fmtCount(v int) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

// PrintTable1 renders the motivating study.
func (c *Context) PrintTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: computation, layer count and execution efficiency (Adreno 650, OurB+)")
	fmt.Fprintf(w, "%-14s %8s %9s %8s %14s\n", "Model", "#Layers", "IR size", "#FLOPS", "Speed")
	for _, r := range c.Table1() {
		fmt.Fprintf(w, "%-14s %8d %8.0fM %7.1fB %12.0fG FLOPs/s\n",
			r.Model, r.TotalLayers, r.IRSizeMB, r.GFLOPs, r.SpeedGFLOPS)
	}
}

// PrintTable2 renders the operator classification.
func PrintTable2(w io.Writer) {
	fmt.Fprintln(w, "Table 2: classification of DNN operators in mapping types")
	for _, g := range Table2() {
		fmt.Fprintf(w, "%-14s (%2d ops) %s\n", g.Mapping, len(g.Operators), strings.Join(g.Operators, ", "))
		if len(g.Representatives) > 0 {
			fmt.Fprintf(w, "%-14s   representatives: %s\n", "", strings.Join(g.Representatives, ", "))
		}
	}
}

// PrintTable3 renders the combination matrix.
func PrintTable3(w io.Writer) {
	fmt.Fprintln(w, "Table 3: mapping type analysis (result / decision)")
	matrix := Table3()
	fmt.Fprintf(w, "%-14s", "first\\second")
	for _, cell := range matrix[0] {
		fmt.Fprintf(w, " %-14s", cell.Second)
	}
	fmt.Fprintln(w)
	for _, row := range matrix {
		fmt.Fprintf(w, "%-14s", row[0].First)
		for _, cell := range row {
			mark := map[fusion.Decision]string{
				fusion.FuseThrough: "G", fusion.FuseDepend: "Y", fusion.FuseBreak: "R",
			}[cell.Decision]
			fmt.Fprintf(w, " %-12s %s", abbrevMapping(cell.Result), mark)
		}
		fmt.Fprintln(w)
	}
	g, y, r := fusion.TableCounts()
	fmt.Fprintf(w, "colors: %d green (fuse), %d yellow (profile), %d red (break)\n", g, y, r)
}

func abbrevMapping(s fmt.Stringer) string {
	return strings.ReplaceAll(s.String(), "-to-", "-")
}

// PrintTable4 renders the rewriting rules with measured FLOPs.
func PrintTable4(w io.Writer) {
	rows, census := Table4()
	fmt.Fprintln(w, "Table 4: graph rewriting with mathematical properties (measured on 64x64 inputs)")
	fmt.Fprintf(w, "%-13s %-38s %-30s %9s %9s\n", "Property", "Without rewriting", "With rewriting", "#FLOPs", "#FLOPs'")
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %-38s %-30s %9d %9d\n",
			r.Property, r.Pattern, r.Rewritten, r.FLOPsBefore, r.FLOPsAfter)
	}
	fmt.Fprintln(w, "rule census (matchers / derived forms):")
	for _, ce := range census {
		fmt.Fprintf(w, "  %-14s %2d matchers, %2d forms\n", ce.Category, ce.Matchers, ce.Forms)
	}
}

// PrintTable5 renders the fusion-rate evaluation.
func (c *Context) PrintTable5(w io.Writer) {
	fmt.Fprintln(w, "Table 5: fusion rate evaluation (layer counts before/after optimization)")
	fmt.Fprintf(w, "%-16s %5s %5s %6s %8s | %6s %6s %6s %7s %6s | %9s %8s\n",
		"Model", "#CIL", "#MIL", "#Total", "IRS", "MNN", "TVM", "TFLite", "Pytorch", "DNNF", "IRS after", "rate")
	for _, r := range c.Table5() {
		rate := float64(r.Total) / float64(r.Fused[baseline.DNNF])
		fmt.Fprintf(w, "%-16s %5d %5d %6d %7.0fM | %6s %6s %6s %7s %6d | %8.0fM %7.1fx\n",
			r.Model, r.CIL, r.MIL, r.Total, r.IRSMB,
			fmtCount(r.Fused[baseline.MNN]), fmtCount(r.Fused[baseline.TVM]),
			fmtCount(r.Fused[baseline.TFLite]), fmtCount(r.Fused[baseline.Pytorch]),
			r.Fused[baseline.DNNF], r.IRSAfterMB, rate)
	}
}

// PrintTable6 renders the latency comparison.
func (c *Context) PrintTable6(w io.Writer) {
	fmt.Fprintln(w, "Table 6: inference latency (ms) on Snapdragon 865 (CPU / GPU)")
	fws := baseline.Frameworks()
	fmt.Fprintf(w, "%-16s %7s %7s", "Model", "Params", "GFLOPs")
	for _, f := range fws {
		fmt.Fprintf(w, " %11s", f)
	}
	fmt.Fprintln(w)
	for _, r := range c.Table6() {
		fmt.Fprintf(w, "%-16s %6.0fM %7.1f", r.Model, r.ParamsM, r.GFLOPs)
		for _, f := range fws {
			fmt.Fprintf(w, " %5s/%-5s", fmtMs(r.CPU[f]), fmtMs(r.GPU[f]))
		}
		fmt.Fprintln(w)
	}
}

// PrintFigure6 renders the TASO comparison.
func (c *Context) PrintFigure6(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: speedup over TASO-optimized execution (TFLite engine, mobile CPU)")
	for _, r := range c.Figure6() {
		fmt.Fprintf(w, "%-16s TASO %7.0fms  DNNF %7.0fms  speedup %.2fx\n",
			r.Model, r.TASOLatencyMs, r.DNNFLatencyMs, r.Speedup)
	}
}

// PrintFigure7 renders the optimization breakdown.
func (c *Context) PrintFigure7(w io.Writer) {
	fmt.Fprintln(w, "Figure 7: optimization breakdown (speedup over OurB)")
	fmt.Fprintf(w, "%-16s %-4s %6s %9s %15s %12s %20s\n",
		"Model", "Dev", "GR", "GR+Fuse", "GR+Fuse+Other", "Fuse+Other", "fused layers GR/noGR")
	for _, r := range c.Figure7() {
		fmt.Fprintf(w, "%-16s %-4s %5.2fx %8.2fx %14.2fx %11.2fx %10d/%d\n",
			r.Model, r.Device, r.GR, r.GRFuse, r.GRFuseOther, r.FuseOther,
			r.FusedLayersWithGR, r.FusedLayersWithoutGR)
	}
}

// PrintFigure8 renders the memory/cache analysis.
func (c *Context) PrintFigure8(w io.Writer) {
	fmt.Fprintln(w, "Figure 8: memory and cache analysis, YOLO-V4 (normalized to DNNF)")
	for _, r := range c.Figure8() {
		fmt.Fprintf(w, "%-4s %-8s MA %7.0fMB (%.2fx)  MC %7.0fMB (%.2fx)  misses:",
			r.Device, r.Framework, r.MemAccessMB, r.NormVsDNNF, r.MemConsumpMB, r.ConsumpVsDNNF)
		for _, lvl := range []string{"L1", "L2", "L3"} {
			if v, ok := r.CacheMisses[lvl]; ok {
				fmt.Fprintf(w, " %s=%dK", lvl, v/1000)
			}
		}
		for _, lvl := range []string{"L1-TLB", "L2-TLB"} {
			if v, ok := r.TLBMisses[lvl]; ok {
				fmt.Fprintf(w, " %s=%dK", lvl, v/1000)
			}
		}
		fmt.Fprintln(w)
	}
}

// PrintFigure9a renders utilization.
func (c *Context) PrintFigure9a(w io.Writer) {
	fmt.Fprintln(w, "Figure 9a: CPU and GPU utilization, YOLO-V4")
	for _, r := range c.Figure9a() {
		fmt.Fprintf(w, "%-4s %-8s %5.1f%%\n", r.Device, r.Framework, r.UtilizationPct)
	}
}

// PrintFigure9b renders compilation time.
func (c *Context) PrintFigure9b(w io.Writer) {
	fmt.Fprintln(w, "Figure 9b: compilation time, YOLO-V4 on mobile CPU (modeled minutes)")
	for _, r := range c.Figure9b() {
		total := r.FusionMin + r.ProfilingMin + r.TuningMin
		fmt.Fprintf(w, "%-14s fusion %6.2fm  profiling %6.1fm (%d entries)  tuning %6.1fm (%d trials)  total %6.1fm\n",
			r.Config, r.FusionMin, r.ProfilingMin, r.ProfileEntries, r.TuningMin, r.TuningTrials, total)
	}
}

// PrintFigure10 renders portability.
func (c *Context) PrintFigure10(w io.Writer) {
	fmt.Fprintln(w, "Figure 10: portability (CPU/GPU ms)")
	for _, r := range c.Figure10() {
		fmt.Fprintf(w, "%-20s %-8s %-8s %7s / %-7s\n",
			r.Phone, r.Model, r.Framework, fmtMs(r.CPUms), fmtMs(r.GPUms))
	}
}

// PrintAblations renders all ablation studies.
func (c *Context) PrintAblations(w io.Writer) {
	print := func(title string, rows []AblationRow) {
		fmt.Fprintln(w, title)
		for _, r := range rows {
			fmt.Fprintf(w, "  %-16s %-26s %8.1fms %5d kernels\n", r.Model, r.Config, r.LatencyMs, r.FusedLayers)
		}
	}
	print("Ablation: seed policy", c.AblationSeedPolicy())
	print("Ablation: constraint threshold", c.AblationConstraint())
	print("Ablation: yellow-decision profiling", c.AblationProfileDB())
	print("Ablation: layout selection", c.AblationLayout())
	print("Ablation: graph rewriting", c.AblationRewrite())
}

// PrintAll runs every experiment.
func (c *Context) PrintAll(w io.Writer) {
	c.PrintTable1(w)
	fmt.Fprintln(w)
	PrintTable2(w)
	fmt.Fprintln(w)
	PrintTable3(w)
	fmt.Fprintln(w)
	PrintTable4(w)
	fmt.Fprintln(w)
	c.PrintTable5(w)
	fmt.Fprintln(w)
	c.PrintTable6(w)
	fmt.Fprintln(w)
	c.PrintFigure6(w)
	fmt.Fprintln(w)
	c.PrintFigure7(w)
	fmt.Fprintln(w)
	c.PrintFigure8(w)
	fmt.Fprintln(w)
	c.PrintFigure9a(w)
	fmt.Fprintln(w)
	c.PrintFigure9b(w)
	fmt.Fprintln(w)
	c.PrintFigure10(w)
	fmt.Fprintln(w)
	c.PrintAblations(w)
}
