package bench

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"dnnfusion/internal/baseline"
)

// sharedCtx amortizes model building and compilation across the test
// functions (the experiments are deterministic, so sharing is safe).
var (
	sharedOnce sync.Once
	shared     *Context
)

func sharedContext() *Context {
	sharedOnce.Do(func() { shared = NewContext() })
	return shared
}

// The tests below assert the reproduction targets: the *shape* of every
// table and figure (who wins, by roughly what factor, where the crossovers
// fall), not absolute milliseconds. They are the executable form of
// EXPERIMENTS.md. A subset of the 15 models keeps the suite fast; the full
// sweep runs through BenchmarkTable5/6 and cmd/dnnf-bench.

func TestTable1EfficiencyCliff(t *testing.T) {
	c := sharedContext()
	rows := c.Table1()
	if len(rows) != 5 {
		t.Fatalf("Table 1 rows = %d, want 5", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Model] = r
	}
	// The paper's observation: VGG-16 runs at several times the
	// FLOPs/s of the deep transformers despite similar total FLOPs.
	vgg := byName["VGG-16"]
	for _, deep := range []string{"MobileBERT", "GPT-2"} {
		if vgg.SpeedGFLOPS <= 2*byName[deep].SpeedGFLOPS {
			t.Errorf("efficiency cliff missing: VGG %.0f GFLOPs/s vs %s %.0f",
				vgg.SpeedGFLOPS, deep, byName[deep].SpeedGFLOPS)
		}
		if byName[deep].TotalLayers <= vgg.TotalLayers {
			t.Errorf("%s should be deeper than VGG-16", deep)
		}
	}
}

func TestTable2CoversFiveClasses(t *testing.T) {
	groups := Table2()
	if len(groups) != 5 {
		t.Fatalf("Table 2 groups = %d, want 5", len(groups))
	}
	for _, g := range groups {
		if len(g.Operators) == 0 {
			t.Errorf("mapping class %v empty", g.Mapping)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	m := Table3()
	if len(m) != 5 || len(m[0]) != 5 {
		t.Fatalf("Table 3 is not 5x5")
	}
}

func TestTable4AllRulesFire(t *testing.T) {
	rows, census := Table4()
	for _, r := range rows {
		if r.Applied == 0 {
			t.Errorf("pattern %q: no rewrite applied", r.Pattern)
		}
		if r.FLOPsAfter > r.FLOPsBefore {
			t.Errorf("pattern %q: FLOPs increased %d -> %d", r.Pattern, r.FLOPsBefore, r.FLOPsAfter)
		}
	}
	total := 0
	for _, ce := range census {
		total += ce.Forms
	}
	if total < 25 {
		t.Errorf("derived rule forms = %d, want a substantial catalogue", total)
	}
}

func TestTable5FusionDominance(t *testing.T) {
	c := sharedContext()
	for _, r := range c.Table5() {
		dnnf := r.Fused[baseline.DNNF]
		if dnnf <= 0 || dnnf > r.Total {
			t.Errorf("%s: DNNF fused count %d out of range", r.Model, dnnf)
			continue
		}
		for _, f := range []baseline.Framework{baseline.MNN, baseline.TVM, baseline.TFLite, baseline.Pytorch} {
			if n := r.Fused[f]; n > 0 && dnnf > n {
				t.Errorf("%s: DNNF (%d kernels) fused less than %s (%d)", r.Model, dnnf, f, n)
			}
		}
		if r.IRSAfterMB >= r.IRSMB {
			t.Errorf("%s: IRS not reduced (%.0f -> %.0f MB)", r.Model, r.IRSMB, r.IRSAfterMB)
		}
	}
}

func TestTable5TransformersFuseMore(t *testing.T) {
	c := sharedContext()
	rate := map[string]float64{}
	for _, r := range c.Table5() {
		rate[r.Model] = float64(r.Total) / float64(r.Fused[baseline.DNNF])
	}
	// The paper: transformers and R-CNNs reach 3.9-10x, 2D/3D CNNs 1.7-3.6x.
	for _, tf := range []string{"GPT-2", "BERT-base", "MobileBERT"} {
		if rate[tf] <= rate["C3D"] {
			t.Errorf("%s fusion rate %.1fx should exceed C3D's %.1fx", tf, rate[tf], rate["C3D"])
		}
	}
	if rate["GPT-2"] < 3.9 {
		t.Errorf("GPT-2 fusion rate %.1fx below the paper's transformer band", rate["GPT-2"])
	}
	if rate["C3D"] > 3.6 || rate["C3D"] < 1.2 {
		t.Errorf("C3D fusion rate %.1fx outside the compute-bound band", rate["C3D"])
	}
}

func TestTable6Ordering(t *testing.T) {
	c := sharedContext()
	for _, r := range c.Table6() {
		dnnfCPU, ourbCPU, ourbpCPU := r.CPU[baseline.DNNF], r.CPU[baseline.OurB], r.CPU[baseline.OurBPlus]
		if !(dnnfCPU <= ourbpCPU && ourbpCPU <= ourbCPU) {
			t.Errorf("%s CPU ordering broken: DNNF %.0f, OurB+ %.0f, OurB %.0f",
				r.Model, dnnfCPU, ourbpCPU, ourbCPU)
		}
		dnnfGPU, ourbGPU, ourbpGPU := r.GPU[baseline.DNNF], r.GPU[baseline.OurB], r.GPU[baseline.OurBPlus]
		if !(dnnfGPU <= ourbpGPU && ourbpGPU <= ourbGPU) {
			t.Errorf("%s GPU ordering broken: DNNF %.0f, OurB+ %.0f, OurB %.0f",
				r.Model, dnnfGPU, ourbpGPU, ourbGPU)
		}
		// DNNFusion beats every supported framework.
		for _, f := range []baseline.Framework{baseline.MNN, baseline.TVM, baseline.TFLite, baseline.Pytorch} {
			if v := r.CPU[f]; v > 0 && dnnfCPU > v {
				t.Errorf("%s: DNNF CPU %.0fms slower than %s %.0fms", r.Model, dnnfCPU, f, v)
			}
			if v := r.GPU[f]; v > 0 && dnnfGPU > v {
				t.Errorf("%s: DNNF GPU %.0fms slower than %s %.0fms", r.Model, dnnfGPU, f, v)
			}
		}
	}
}

func TestTable6SpeedupBands(t *testing.T) {
	c := sharedContext()
	var maxOverOurB float64
	for _, r := range c.Table6() {
		s := r.CPU[baseline.OurB] / r.CPU[baseline.DNNF]
		if s > maxOverOurB {
			maxOverOurB = s
		}
	}
	// The paper reports 1.5-5.8x over OurB; require at least 1.4x
	// somewhere and sanity-cap at 20x.
	if maxOverOurB < 1.4 || maxOverOurB > 20 {
		t.Errorf("max speedup over OurB = %.1fx, outside the plausible band", maxOverOurB)
	}
}

func TestFigure6DNNFWins(t *testing.T) {
	c := sharedContext()
	rows := c.Figure6()
	if len(rows) != 11 {
		t.Fatalf("Figure 6 rows = %d, want 11", len(rows))
	}
	for _, r := range rows {
		if r.Speedup < 1 {
			t.Errorf("%s: TASO+TFLite beat DNNF (%.2fx)", r.Model, r.Speedup)
		}
		if r.Speedup > 25 {
			t.Errorf("%s: implausible speedup %.1fx", r.Model, r.Speedup)
		}
	}
}

func TestFigure7Monotone(t *testing.T) {
	c := sharedContext()
	for _, r := range c.Figure7() {
		if r.GR < 1 {
			t.Errorf("%s/%s: rewriting slowed execution (%.2fx)", r.Model, r.Device, r.GR)
		}
		if r.GRFuse < r.GR {
			t.Errorf("%s/%s: fusion did not add to rewriting (%.2f < %.2f)", r.Model, r.Device, r.GRFuse, r.GR)
		}
		if r.GRFuseOther < r.GRFuse {
			t.Errorf("%s/%s: other opts regressed (%.2f < %.2f)", r.Model, r.Device, r.GRFuseOther, r.GRFuse)
		}
		// Rewriting enables extra fusion on GPT-2 (the paper's 18%).
		if r.Model == "GPT-2" && r.FusedLayersWithGR >= r.FusedLayersWithoutGR {
			t.Errorf("GPT-2: rewriting did not reduce fused layers (%d vs %d)",
				r.FusedLayersWithGR, r.FusedLayersWithoutGR)
		}
	}
	// GPU gains exceed CPU gains for the full pipeline.
	byKey := map[string]Figure7Row{}
	for _, r := range c.Figure7() {
		byKey[r.Model+"/"+r.Device] = r
	}
	for _, m := range fig7Models {
		if byKey[m+"/GPU"].GRFuseOther <= byKey[m+"/CPU"].GRFuseOther {
			t.Errorf("%s: GPU speedup %.2fx should exceed CPU %.2fx",
				m, byKey[m+"/GPU"].GRFuseOther, byKey[m+"/CPU"].GRFuseOther)
		}
	}
}

func TestFigure8DNNFBest(t *testing.T) {
	c := sharedContext()
	for _, r := range c.Figure8() {
		if r.Framework == baseline.DNNF {
			if r.NormVsDNNF != 1 {
				t.Errorf("DNNF normalization broken: %.2f", r.NormVsDNNF)
			}
			continue
		}
		if r.NormVsDNNF < 1 {
			t.Errorf("%s/%s: fewer memory accesses than DNNF (%.2fx)", r.Device, r.Framework, r.NormVsDNNF)
		}
		if r.ConsumpVsDNNF < 0.99 {
			t.Errorf("%s/%s: lower peak memory than DNNF (%.2fx)", r.Device, r.Framework, r.ConsumpVsDNNF)
		}
	}
}

func TestFigure9aDNNFHighestUtilization(t *testing.T) {
	c := sharedContext()
	best := map[string]float64{}
	dnnf := map[string]float64{}
	for _, r := range c.Figure9a() {
		if r.UtilizationPct > best[r.Device] {
			best[r.Device] = r.UtilizationPct
		}
		if r.Framework == baseline.DNNF {
			dnnf[r.Device] = r.UtilizationPct
		}
	}
	for dev, b := range best {
		if dnnf[dev] < b {
			t.Errorf("%s: DNNF utilization %.1f%% below best %.1f%%", dev, dnnf[dev], b)
		}
	}
}

func TestFigure9bShape(t *testing.T) {
	c := sharedContext()
	rows := c.Figure9b()
	if len(rows) != 3 {
		t.Fatalf("Figure 9b rows = %d, want 3", len(rows))
	}
	tvm, cold, warm := rows[0], rows[1], rows[2]
	if tvm.TuningMin <= cold.TuningMin {
		t.Errorf("TVM tuning (%.0fm) should dominate DNNF's GA tuning (%.0fm)", tvm.TuningMin, cold.TuningMin)
	}
	if cold.ProfileEntries == 0 {
		t.Error("cold compilation produced no profiling entries")
	}
	if warm.ProfileEntries != 0 {
		t.Errorf("warm database still measured %d entries", warm.ProfileEntries)
	}
	if warm.ProfilingMin > 0 {
		t.Errorf("warm profiling time %.1fm, want 0", warm.ProfilingMin)
	}
}

func TestFigure10Portability(t *testing.T) {
	c := sharedContext()
	rows := c.Figure10()
	if len(rows) == 0 {
		t.Fatal("Figure 10 empty")
	}
	// DNNF must win on every phone where a competitor runs.
	type key struct{ phone, model string }
	dnnf := map[key]Figure10Row{}
	for _, r := range rows {
		if r.Framework == baseline.DNNF {
			dnnf[key{r.Phone, r.Model}] = r
		}
	}
	for _, r := range rows {
		if r.Framework == baseline.DNNF {
			continue
		}
		d := dnnf[key{r.Phone, r.Model}]
		if r.CPUms > 0 && d.CPUms > r.CPUms {
			t.Errorf("%s %s: DNNF CPU %.0f slower than %s %.0f", r.Phone, r.Model, d.CPUms, r.Framework, r.CPUms)
		}
		if r.GPUms > 0 && d.GPUms > r.GPUms {
			t.Errorf("%s %s: DNNF GPU %.0f slower than %s %.0f", r.Phone, r.Model, d.GPUms, r.Framework, r.GPUms)
		}
	}
	// Older phones are slower than the S20 for the same model (Table 6
	// vs Figure 10).
	c2 := sharedContext()
	t6 := map[string]float64{}
	for _, r := range c2.Table6() {
		t6[r.Model] = r.CPU[baseline.DNNF]
	}
	for _, r := range rows {
		if r.Framework == baseline.DNNF && r.CPUms > 0 && r.CPUms < t6[r.Model] {
			t.Errorf("%s: DNNF on %s (%.0fms) faster than on the S20 (%.0fms)",
				r.Model, r.Phone, r.CPUms, t6[r.Model])
		}
	}
}

func TestAblationsRun(t *testing.T) {
	c := sharedContext()
	if rows := c.AblationSeedPolicy(); len(rows) != 9 {
		t.Errorf("seed ablation rows = %d, want 9", len(rows))
	}
	if rows := c.AblationLayout(); len(rows) != 6 {
		t.Errorf("layout ablation rows = %d, want 6", len(rows))
	}
	// The paper's layout choice must not lose to layout-off.
	for i := 0; i < 6; i += 2 {
		rows := c.AblationLayout()
		if rows[i].LatencyMs > rows[i+1].LatencyMs {
			t.Errorf("%s: layout optimization regressed (%.0f > %.0f)",
				rows[i].Model, rows[i].LatencyMs, rows[i+1].LatencyMs)
		}
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	c := sharedContext()
	var buf bytes.Buffer
	c.PrintTable1(&buf)
	PrintTable2(&buf)
	PrintTable3(&buf)
	PrintTable4(&buf)
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "Table 4", "VGG-16", "One-to-One"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("printed output missing %q", want)
		}
	}
}
