// Package bench regenerates every table and figure of the paper's
// evaluation (§5) on the simulated devices: Tables 1-6, Figures 6-10, and
// the design-choice ablations called out in DESIGN.md. Each experiment has
// a generator returning typed rows and a printer producing the same
// rows/series the paper reports.
package bench

import (
	"fmt"
	"time"

	"dnnfusion/internal/baseline"
	"dnnfusion/internal/codegen"
	"dnnfusion/internal/core"
	"dnnfusion/internal/device"
	"dnnfusion/internal/ecg"
	"dnnfusion/internal/engine"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/models"
	"dnnfusion/internal/profile"
	"dnnfusion/internal/tuner"
)

// Context caches models, plans, compilations and the cross-model kernel
// cache and profiling database, so the full evaluation suite runs in
// seconds and mirrors the paper's amortized compilation setup.
type Context struct {
	KernelCache *codegen.Cache
	ProfileDB   *profile.DB

	graphs    map[string]*graph.Graph
	baselines map[string]*baselinePlan
	dnnf      map[string]*core.Compiled
}

type baselinePlan struct {
	e    *ecg.ECG
	plan *fusion.Plan
}

// NewContext creates a fresh evaluation context.
func NewContext() *Context {
	return &Context{
		KernelCache: codegen.NewCache(),
		ProfileDB:   profile.New(),
		graphs:      map[string]*graph.Graph{},
		baselines:   map[string]*baselinePlan{},
		dnnf:        map[string]*core.Compiled{},
	}
}

// Model returns (building and caching) the named model graph.
func (c *Context) Model(name string) *graph.Graph {
	if g, ok := c.graphs[name]; ok {
		return g
	}
	g, err := models.Build(name)
	if err != nil {
		panic(err)
	}
	c.graphs[name] = g
	return g
}

// Baseline returns the framework's optimized plan for the model.
func (c *Context) Baseline(f baseline.Framework, model string) (*ecg.ECG, *fusion.Plan) {
	key := string(f) + "/" + model
	if bp, ok := c.baselines[key]; ok {
		return bp.e, bp.plan
	}
	e, plan, err := baseline.Plan(f, c.Model(model))
	if err != nil {
		panic(fmt.Sprintf("baseline %s on %s: %v", f, model, err))
	}
	c.baselines[key] = &baselinePlan{e, plan}
	return e, plan
}

// DNNF returns the full-pipeline compilation of the model (yellow decisions
// resolved on the primary CPU through the shared profiling database).
func (c *Context) DNNF(model string) *core.Compiled {
	if comp, ok := c.dnnf[model]; ok {
		return comp
	}
	opts := core.Defaults()
	opts.Device = device.Snapdragon865CPU()
	opts.ProfileDB = c.ProfileDB
	opts.Cache = c.KernelCache
	comp, err := core.Compile(c.Model(model), opts)
	if err != nil {
		panic(fmt.Sprintf("DNNF compile %s: %v", model, err))
	}
	c.dnnf[model] = comp
	return comp
}

// SimulateFramework prices one inference of the model under the framework
// on the device; ok is false when the framework does not support the model
// on that device kind.
func (c *Context) SimulateFramework(f baseline.Framework, model string, dev *device.Device) (*engine.Report, bool) {
	sup := baseline.Supports(f, model)
	if dev.Kind == device.CPU && !sup.CPU {
		return nil, false
	}
	if dev.Kind == device.GPU && !sup.GPU {
		return nil, false
	}
	if f == baseline.DNNF {
		rep, err := c.DNNF(model).Simulate(dev)
		if err != nil {
			panic(err)
		}
		return rep, true
	}
	e, plan := c.Baseline(f, model)
	rep, err := engine.Simulate(e, plan, dev, engine.Options{
		// OurB+ shares DNNFusion's kernel library but not the §4.4.2
		// optimizations; the four frameworks get their quality factors.
		OtherOpt: false,
		Quality:  baseline.Quality(f),
	})
	if err != nil {
		panic(err)
	}
	return rep, true
}

// dnnfVariant compiles the model with a partial pipeline (Figure 7).
func (c *Context) dnnfVariant(model string, gr, fuse, other bool) *core.Compiled {
	opts := core.Options{GraphRewrite: gr, Fusion: fuse, OtherOpt: other}
	opts.Device = device.Snapdragon865CPU()
	opts.ProfileDB = c.ProfileDB
	comp, err := core.Compile(c.Model(model), opts)
	if err != nil {
		panic(err)
	}
	return comp
}

// tuningTasks extracts the distinct heavy-kernel shapes of a graph — the
// units the auto-tuner optimizes (Figure 9b's tuning cost driver).
func tuningTasks(g *graph.Graph, dev *device.Device) []tuner.Task {
	seen := map[[3]int]bool{}
	var tasks []tuner.Task
	add := func(m, n, k int) {
		key := [3]int{m, n, k}
		if m <= 0 || n <= 0 || k <= 0 || seen[key] {
			return
		}
		seen[key] = true
		tasks = append(tasks, tuner.Task{M: m, N: n, K: k, Device: dev})
	}
	for _, nd := range g.Nodes {
		switch nd.Op.Type() {
		case "Conv", "ConvTranspose":
			out := nd.Outputs[0].Shape
			w := nd.Inputs[1].Shape
			spatial := 1
			for _, d := range out[2:] {
				spatial *= d
			}
			kdim := 1
			for _, d := range w[1:] {
				kdim *= d
			}
			add(out[1], spatial, kdim)
		case "MatMul", "Gemm":
			a, bShape := nd.Inputs[0].Shape, nd.Inputs[1].Shape
			if a.Rank() >= 2 && bShape.Rank() >= 2 {
				add(a[a.Rank()-2], bShape[bShape.Rank()-1], a[a.Rank()-1])
			}
		}
	}
	return tasks
}

// timeIt returns the wall-clock milliseconds of fn.
func timeIt(fn func()) float64 {
	start := time.Now()
	fn()
	return float64(time.Since(start).Microseconds()) / 1000
}
