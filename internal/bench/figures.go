package bench

import (
	"dnnfusion/internal/baseline"
	"dnnfusion/internal/core"
	"dnnfusion/internal/device"
	"dnnfusion/internal/engine"
	"dnnfusion/internal/profile"
	"dnnfusion/internal/tuner"
)

// --- Figure 6: speedup over TASO --------------------------------------------

// Figure6Row is the DNNFusion-over-TASO speedup on the mobile CPU for one
// of the eleven TFLite-supported models.
type Figure6Row struct {
	Model         string
	TASOLatencyMs float64
	DNNFLatencyMs float64
	Speedup       float64
}

// fig6Models are the eleven models TFLite supports (Figure 6's x-axis).
var fig6Models = []string{
	"EfficientNet-B0", "VGG-16", "MobileNetV1-SSD", "YOLO-V4", "U-Net",
	"TinyBERT", "DistilBERT", "ALBERT", "BERT-base", "MobileBERT", "GPT-2",
}

// Figure6 optimizes each model with the TASO-like substitution pass,
// executes it under the TFLite engine on the CPU, and compares against
// DNNFusion.
func (c *Context) Figure6() []Figure6Row {
	cpu := device.Snapdragon865CPU()
	var rows []Figure6Row
	for _, name := range fig6Models {
		opt, _, err := baseline.TASOOptimize(c.Model(name))
		if err != nil {
			panic(err)
		}
		e, plan, err := baseline.Plan(baseline.TFLite, opt)
		if err != nil {
			panic(err)
		}
		rep, err := engine.Simulate(e, plan, cpu, engine.Options{Quality: baseline.Quality(baseline.TFLite)})
		if err != nil {
			panic(err)
		}
		dnnf, err := c.DNNF(name).Simulate(cpu)
		if err != nil {
			panic(err)
		}
		rows = append(rows, Figure6Row{
			Model:         name,
			TASOLatencyMs: rep.LatencyMs,
			DNNFLatencyMs: dnnf.LatencyMs,
			Speedup:       rep.LatencyMs / dnnf.LatencyMs,
		})
	}
	return rows
}

// --- Figure 7: optimization breakdown ----------------------------------------

// Figure7Row is the incremental speedup over OurB of the pipeline stages
// for one model on one device.
type Figure7Row struct {
	Model  string
	Device string
	// Speedups over OurB: graph rewriting alone; + fusion; + other
	// optimizations; and fusion+other without rewriting (the paper's
	// orange bar isolating rewriting's contribution).
	GR          float64
	GRFuse      float64
	GRFuseOther float64
	FuseOther   float64
	// FusedLayersWithGR / WithoutGR quantify the "18% fewer fused
	// layers" effect of rewriting on fusion.
	FusedLayersWithGR    int
	FusedLayersWithoutGR int
}

var fig7Models = []string{"EfficientNet-B0", "YOLO-V4", "S3D", "GPT-2"}

// Figure7 regenerates the optimization breakdown for both devices.
func (c *Context) Figure7() []Figure7Row {
	var rows []Figure7Row
	for _, dev := range []*device.Device{device.Snapdragon865CPU(), device.Adreno650()} {
		for _, name := range fig7Models {
			sim := func(gr, fuse, other bool) (*engine.Report, int) {
				comp := c.dnnfVariant(name, gr, fuse, other)
				rep, err := comp.Simulate(dev)
				if err != nil {
					panic(err)
				}
				return rep, comp.FusedLayerCount()
			}
			base, _ := sim(false, false, false)
			gr, _ := sim(true, false, false)
			grFuse, fusedWith := sim(true, true, false)
			grFuseOther, _ := sim(true, true, true)
			fuseOther, fusedWithout := sim(false, true, true)
			rows = append(rows, Figure7Row{
				Model:                name,
				Device:               dev.Kind.String(),
				GR:                   base.LatencyMs / gr.LatencyMs,
				GRFuse:               base.LatencyMs / grFuse.LatencyMs,
				GRFuseOther:          base.LatencyMs / grFuseOther.LatencyMs,
				FuseOther:            base.LatencyMs / fuseOther.LatencyMs,
				FusedLayersWithGR:    fusedWith,
				FusedLayersWithoutGR: fusedWithout,
			})
		}
	}
	return rows
}

// --- Figure 8: memory and cache ----------------------------------------------

// Figure8Row holds memory and cache-miss counters for YOLO-V4 under one
// framework, plus the same values normalized to DNNFusion.
type Figure8Row struct {
	Framework     baseline.Framework
	Device        string
	MemAccessMB   float64
	MemConsumpMB  float64
	CacheMisses   map[string]int64
	TLBMisses     map[string]int64
	NormVsDNNF    float64 // memory accesses normalized to DNNF
	ConsumpVsDNNF float64
}

// Figure8 regenerates the memory/cache analysis on YOLO-V4.
func (c *Context) Figure8() []Figure8Row {
	const model = "YOLO-V4"
	var rows []Figure8Row
	for _, dev := range []*device.Device{device.Snapdragon865CPU(), device.Adreno650()} {
		dnnf, _ := c.SimulateFramework(baseline.DNNF, model, dev)
		order := []baseline.Framework{baseline.MNN, baseline.TVM, baseline.TFLite, baseline.Pytorch, baseline.DNNF}
		for _, f := range order {
			rep, ok := c.SimulateFramework(f, model, dev)
			if !ok {
				continue
			}
			rows = append(rows, Figure8Row{
				Framework:     f,
				Device:        dev.Kind.String(),
				MemAccessMB:   float64(rep.MemAccessBytes) / 1e6,
				MemConsumpMB:  float64(rep.PeakMemBytes) / 1e6,
				CacheMisses:   rep.CacheMisses,
				TLBMisses:     rep.TLBMisses,
				NormVsDNNF:    float64(rep.MemAccessBytes) / float64(dnnf.MemAccessBytes),
				ConsumpVsDNNF: float64(rep.PeakMemBytes) / float64(dnnf.PeakMemBytes),
			})
		}
	}
	return rows
}

// --- Figure 9a: utilization ---------------------------------------------------

// Figure9aRow is device utilization under one framework on YOLO-V4.
type Figure9aRow struct {
	Framework      baseline.Framework
	Device         string
	UtilizationPct float64
}

// Figure9a regenerates the CPU/GPU utilization comparison.
func (c *Context) Figure9a() []Figure9aRow {
	const model = "YOLO-V4"
	var rows []Figure9aRow
	for _, dev := range []*device.Device{device.Snapdragon865CPU(), device.Adreno650()} {
		for _, f := range []baseline.Framework{baseline.MNN, baseline.TVM, baseline.TFLite, baseline.Pytorch, baseline.DNNF} {
			rep, ok := c.SimulateFramework(f, model, dev)
			if !ok {
				continue
			}
			rows = append(rows, Figure9aRow{f, dev.Kind.String(), rep.UtilizationPct})
		}
	}
	return rows
}

// --- Figure 9b: compilation time ----------------------------------------------

// Figure9bRow is the compilation-time breakdown of one configuration for
// YOLO-V4 on the mobile CPU, in modeled minutes (the per-measurement and
// per-trial costs are on-device constants; the counts are real).
type Figure9bRow struct {
	Config       string
	FusionMin    float64
	ProfilingMin float64
	TuningMin    float64
	// Counts backing the model.
	ProfileEntries int
	TuningTrials   int
}

// Per-unit on-device costs (seconds): one profiling measurement of an
// operator combination, and one tuning trial (build + flash + run).
const (
	perProfileSec    = 5.0
	perTrialSec      = 0.8
	tvmTrialsPerTask = 800 // AutoTVM-style random search budget per task
)

// Figure9b regenerates the compilation-time comparison: TVM, DNNFusion
// without a pre-existing profiling database, and DNNFusion with one.
func (c *Context) Figure9b() []Figure9bRow {
	const model = "YOLO-V4"
	cpu := device.Snapdragon865CPU()
	g := c.Model(model)
	tasks := tuningTasks(g, cpu)

	// TVM: pattern fusion (fast) + random-search tuning.
	var tvmFusionMs float64
	tvmFusionMs = timeIt(func() { _, _ = c.Baseline(baseline.TVM, model) })
	tvmTrials := 0
	for _, t := range tasks {
		res := tuner.TuneRandom(t, tvmTrialsPerTask, 11)
		tvmTrials += res.Trials
	}

	// DNNFusion without database: fusion + profiling (all misses) + GA tuning.
	dnnfCompile := func(db *profile.DB) (fusionMs float64, misses int) {
		opts := core.Defaults()
		opts.Device = cpu
		opts.ProfileDB = db
		var comp *core.Compiled
		fusionMs = timeIt(func() {
			var err error
			comp, err = core.Compile(g, opts)
			if err != nil {
				panic(err)
			}
		})
		return fusionMs, comp.Stats.ProfileMisses
	}
	coldDB := profile.New()
	fusionMsCold, misses := dnnfCompile(coldDB)
	gaTrials := 0
	for _, t := range tasks {
		res := tuner.TuneGA(t, tuner.GAOptions{Seed: 11})
		gaTrials += res.Trials
	}

	// DNNFusion with the (now warm) database.
	fusionMsWarm, warmMisses := dnnfCompile(coldDB)

	return []Figure9bRow{
		{
			Config:       "TVM",
			FusionMin:    tvmFusionMs / 60000,
			ProfilingMin: 0,
			TuningMin:    float64(tvmTrials) * perTrialSec / 60,
			TuningTrials: tvmTrials,
		},
		{
			Config:         "DNNF (w/o db)",
			FusionMin:      fusionMsCold / 60000,
			ProfilingMin:   float64(misses) * perProfileSec / 60,
			TuningMin:      float64(gaTrials) * perTrialSec / 60,
			ProfileEntries: misses,
			TuningTrials:   gaTrials,
		},
		{
			Config:         "DNNF (w/ db)",
			FusionMin:      fusionMsWarm / 60000,
			ProfilingMin:   float64(warmMisses) * perProfileSec / 60,
			TuningMin:      float64(gaTrials) * perTrialSec / 60,
			ProfileEntries: warmMisses,
			TuningTrials:   gaTrials,
		},
	}
}

// --- Figure 10: portability ----------------------------------------------------

// Figure10Row is one model × phone × framework latency pair.
type Figure10Row struct {
	Phone     string
	Model     string
	Framework baseline.Framework
	CPUms     float64 // -1 unsupported
	GPUms     float64
}

// Figure10 regenerates the portability evaluation (YOLO-V4 and GPT-2 on the
// Galaxy S10 and the Honor Magic 2).
func (c *Context) Figure10() []Figure10Row {
	var rows []Figure10Row
	for _, phone := range device.Phones()[1:] { // S10 and Magic 2
		for _, model := range []string{"YOLO-V4", "GPT-2"} {
			for _, f := range []baseline.Framework{baseline.MNN, baseline.TVM, baseline.TFLite, baseline.Pytorch, baseline.DNNF} {
				row := Figure10Row{Phone: phone.Name, Model: model, Framework: f, CPUms: -1, GPUms: -1}
				if rep, ok := c.SimulateFramework(f, model, phone.CPU); ok {
					row.CPUms = rep.LatencyMs
				}
				if rep, ok := c.SimulateFramework(f, model, phone.GPU); ok {
					row.GPUms = rep.LatencyMs
				}
				rows = append(rows, row)
			}
		}
	}
	return rows
}
