// Package obs is the dependency-free telemetry core of the serving stack:
// atomic counters, gauges, and fixed-bucket latency histograms collected in
// a Registry that renders Prometheus text exposition format (0.0.4).
//
// The package follows internal/faultinject's armed/unarmed discipline: hot
// paths that would pay per-operation timing (the engine's per-kernel spans)
// gate on Armed(), which is a single atomic load. With nothing armed the
// instrumentation is a no-op and the warmed inference path stays at zero
// allocations per run; arming adds only clock reads and atomic updates —
// still zero allocations — so telemetry can run in production.
//
// Metric instruments are standalone values: a Histogram can be owned by an
// executor and attached to a serving registry later (Registry.Attach), so
// one instrument feeds both the owner's aggregation and the /metrics
// surface without double accounting.
package obs

import (
	"fmt"
	"math"
	"sync/atomic"
)

// armed counts active arm requests (Arm/Disarm nest); 0 keeps instrumented
// hot paths on their no-op fast path, exactly like faultinject.active.
var armed atomic.Int32

// Arm enables armed-gated instrumentation (per-kernel execution spans).
// Calls nest: telemetry stays armed until every Arm has been matched by a
// Disarm.
func Arm() { armed.Add(1) }

// Disarm undoes one Arm. Extra Disarms are ignored rather than driving the
// count negative, so a defensive double-disarm cannot mask a later Arm.
func Disarm() {
	for {
		cur := armed.Load()
		if cur <= 0 {
			return
		}
		if armed.CompareAndSwap(cur, cur-1) {
			return
		}
	}
}

// Armed reports whether any arm request is active. It is a single atomic
// load — instrumented hot paths call it per operation.
func Armed() bool { return armed.Load() > 0 }

// Counter is a monotonically increasing counter. The zero value is unusable
// on its own metrics surface — obtain counters from a Registry — but the
// methods work on any non-nil Counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down, stored as IEEE bits in
// one atomic word.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (atomically, CAS loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket latency histogram: per-bucket atomic counts
// over ascending upper bounds plus a +Inf overflow bucket, a total count,
// and a CAS-maintained float64 sum. Observe allocates nothing, so armed
// hot paths can record into it directly.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1, per-bucket (not cumulative)
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram creates a histogram over the given ascending upper bounds
// (the +Inf bucket is implicit; pass none for a count/sum-only histogram).
// It panics on unsorted or non-finite bounds — bucket layouts are static
// program configuration, not runtime input.
func NewHistogram(bounds ...float64) *Histogram {
	own := make([]float64, len(bounds))
	copy(own, bounds)
	for i, b := range own {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: histogram bound %v is not finite", b))
		}
		if i > 0 && b <= own[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %v", b))
		}
	}
	return &Histogram{bounds: own, counts: make([]atomic.Uint64, len(own)+1)}
}

// Observe records one value. It performs no allocation: a linear bucket
// scan (bucket sets are small), two atomic adds, and a CAS loop on the sum.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the histogram's upper bounds (without the implicit +Inf).
// The returned slice is shared and must not be mutated.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// snapshotCumulative reads the per-bucket counts once and returns them as
// cumulative values plus their total. Deriving the total from the same
// reads (instead of h.count) makes an exported histogram internally
// consistent even while writers race the scrape: the +Inf bucket always
// equals the reported _count.
func (h *Histogram) snapshotCumulative(dst []uint64) (cumulative []uint64, total uint64) {
	dst = dst[:0]
	for i := range h.counts {
		total += h.counts[i].Load()
		dst = append(dst, total)
	}
	return dst, total
}

// Default bucket layouts, in seconds (histograms record seconds so the
// exposition follows the Prometheus base-unit convention).
var (
	// LatencyBuckets covers request-level latencies: 1µs to 2.5s.
	LatencyBuckets = []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
	}
	// KernelBuckets covers per-kernel execution times: 100ns to 100ms.
	KernelBuckets = []float64{
		1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,
	}
	// BatchBuckets covers coalesced batch sizes.
	BatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64}
)
