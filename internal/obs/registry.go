package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry collects named metric families and renders them in Prometheus
// text exposition format. Instruments are get-or-create: asking for the
// same (name, labels) twice returns the same instrument, so every layer
// that touches a metric shares one source of truth. A registry is safe for
// concurrent use; scrapes may race updates (the exporter keeps each
// histogram internally consistent).
//
// Registries are values, not process globals: each serving repository owns
// one, so tests and multi-tenant processes never share counters.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help, typ string
	series          map[string]*series // keyed by rendered label suffix
}

// series is one labeled sample within a family; exactly one of the
// instrument fields is set, matching the family type.
type series struct {
	labels  string // rendered `{k="v",...}` suffix, "" when unlabeled
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// NewRegistry creates an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter registered under name with the given label
// pairs ("key", "value", ...), creating it on first use. It panics on an
// invalid name, mismatched label pairs, or a name already registered as a
// different metric type — all programmer errors.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getOrCreateLocked(name, help, "counter", labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge registered under name with the given label pairs,
// creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getOrCreateLocked(name, help, "gauge", labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a callback gauge: fn is called at scrape time (under
// the registry lock — it must not call back into the registry). Re-
// registering the same (name, labels) replaces the callback, so a serving
// host that is evicted and re-registered publishes its live state, not a
// closed predecessor's.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getOrCreateLocked(name, help, "gauge", labels)
	s.gauge = nil
	s.gaugeFn = fn
}

// Histogram returns the histogram registered under name with the given
// label pairs, creating it with the given bucket bounds on first use (the
// bounds of an existing histogram are kept).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getOrCreateLocked(name, help, "histogram", labels)
	if s.hist == nil {
		s.hist = NewHistogram(buckets...)
	}
	return s.hist
}

// Attach registers an externally owned histogram under (name, labels),
// replacing any previous instrument there. It is how per-kernel histograms
// owned by an executor appear on a serving registry's /metrics without
// double accounting.
func (r *Registry) Attach(name, help string, h *Histogram, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getOrCreateLocked(name, help, "histogram", labels)
	s.hist = h
}

// getOrCreateLocked resolves (name, labels) to its series, creating family
// and series as needed. Callers hold r.mu: instrument assignment on the
// returned series must happen under the same critical section that created
// it, or concurrent get-or-creates race on the instrument pointer.
func (r *Registry) getOrCreateLocked(name, help, typ string, labels []string) *series {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	suffix := renderLabels(labels)
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	s := f.series[suffix]
	if s == nil {
		s = &series{labels: suffix}
		f.series[suffix] = s
	}
	return s
}

// renderLabels validates alternating key/value label pairs and renders the
// canonical `{k="v",...}` suffix (keys sorted, values escaped), which
// doubles as the series identity.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !validLabelName(labels[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", labels[i]))
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" || strings.ContainsRune(name, ':') {
		return false
	}
	return validMetricName(name)
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// WritePrometheus renders every registered family in text exposition
// format 0.0.4: families sorted by name, series sorted by label suffix,
// histograms expanded into cumulative `_bucket` samples plus `_sum` and
// `_count`. Counter and bucket values print as exact decimal integers so
// scrapers (and the in-tree parser tests) never see scientific notation
// for counts.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf []uint64
	for _, name := range names {
		f := r.families[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			var err error
			switch {
			case s.counter != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, strconv.FormatUint(s.counter.Value(), 10))
			case s.gaugeFn != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.gaugeFn()))
			case s.gauge != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.gauge.Value()))
			case s.hist != nil:
				buf, err = writeHistogram(w, f.name, s.labels, s.hist, buf)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram, buf []uint64) ([]uint64, error) {
	cumulative, total := h.snapshotCumulative(buf)
	for i, bound := range h.bounds {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %s\n",
			name, mergeLE(labels, formatFloat(bound)), strconv.FormatUint(cumulative[i], 10)); err != nil {
			return cumulative, err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %s\n", name, mergeLE(labels, "+Inf"), strconv.FormatUint(total, 10)); err != nil {
		return cumulative, err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum())); err != nil {
		return cumulative, err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %s\n", name, labels, strconv.FormatUint(total, 10))
	return cumulative, err
}

// mergeLE appends the le bucket label to an existing label suffix.
func mergeLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(help string) string {
	help = strings.ReplaceAll(help, "\\", `\\`)
	return strings.ReplaceAll(help, "\n", `\n`)
}
