package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestObsCounterGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_total", "a counter"); again != c {
		t.Fatal("get-or-create returned a different counter for the same name")
	}
	if labeled := r.Counter("test_total", "a counter", "model", "m"); labeled == c {
		t.Fatal("different label set returned the same counter")
	}

	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestObsHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)
	for _, v := range []float64{0.0005, 0.001, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-5.0565) > 1e-9 {
		t.Fatalf("sum = %v, want 5.0565", got)
	}
	cumulative, total := h.snapshotCumulative(nil)
	want := []uint64{2, 3, 4, 5} // le=0.001 catches 0.0005 and the boundary 0.001
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
	for i, w := range want {
		if cumulative[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (%v)", i, cumulative[i], w, cumulative)
		}
	}
}

func TestObsHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{{2, 1}, {1, 1}, {math.Inf(1)}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestObsArmingNests(t *testing.T) {
	if Armed() {
		t.Fatal("armed before any Arm (leaked from another test?)")
	}
	Arm()
	Arm()
	if !Armed() {
		t.Fatal("not armed after Arm")
	}
	Disarm()
	if !Armed() {
		t.Fatal("nested arm released by a single Disarm")
	}
	Disarm()
	if Armed() {
		t.Fatal("still armed after matching Disarms")
	}
	Disarm() // extra disarm must not drive the count negative…
	Arm()
	if !Armed() {
		t.Fatal("Arm after an extra Disarm did not arm")
	}
	Disarm()
}

func TestObsPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests served.", "code", "200").Add(3)
	r.Counter("app_requests_total", "Requests served.", "code", "503").Add(1)
	r.Gauge("app_depth", "Queue depth.").Set(2)
	r.GaugeFunc("app_fn", "Callback gauge.", func() float64 { return 7.5 })
	h := r.Histogram("app_latency_seconds", "Latency.", []float64{0.01, 0.1}, "model", `a"b\c`)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP app_requests_total Requests served.\n# TYPE app_requests_total counter\n",
		`app_requests_total{code="200"} 3`,
		`app_requests_total{code="503"} 1`,
		"# TYPE app_depth gauge",
		"app_depth 2",
		"app_fn 7.5",
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{model="a\"b\\c",le="0.01"} 1`,
		`app_latency_seconds_bucket{model="a\"b\\c",le="0.1"} 2`,
		`app_latency_seconds_bucket{model="a\"b\\c",le="+Inf"} 3`,
		`app_latency_seconds_count{model="a\"b\\c"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Families must appear in sorted order and exactly once.
	if strings.Count(out, "# TYPE app_requests_total") != 1 {
		t.Error("family header repeated")
	}
	if strings.Index(out, "# TYPE app_depth") > strings.Index(out, "# TYPE app_fn") {
		t.Error("families not sorted by name")
	}
	// Counters render as exact decimal integers even at large magnitudes.
	r2 := NewRegistry()
	r2.Counter("big_total", "big").Add(2_000_000)
	b.Reset()
	if err := r2.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "big_total 2000000\n") {
		t.Errorf("large counter not decimal: %q", b.String())
	}
}

func TestObsLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", "b", "2", "a", "1")
	b := r.Counter("x_total", "x", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order changed series identity")
	}
}

func TestObsInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "h") // registered as a counter for the mismatch case
	for _, fn := range []func(){
		func() { r.Counter("9bad", "h") },
		func() { r.Counter("has space", "h") },
		func() { r.Counter("ok_total", "h", "bad-label", "v") },
		func() { r.Counter("ok_total", "h", "odd") },
		func() { r.Gauge("ok_total", "h") }, // type mismatch with the counter
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestObsConcurrentScrapeRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "c")
	h := r.Histogram("race_seconds", "h", LatencyBuckets)
	g := r.Gauge("race_gauge", "g")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed float64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(seed)
				h.Observe(seed / 1000)
			}
		}(float64(i + 1))
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		// The histogram must be internally consistent within one scrape
		// even while writers race it: +Inf bucket == _count.
		out := b.String()
		var inf, count string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, `race_seconds_bucket{le="+Inf"}`) {
				inf = strings.Fields(line)[1]
			}
			if strings.HasPrefix(line, "race_seconds_count") {
				count = strings.Fields(line)[1]
			}
		}
		if inf == "" || inf != count {
			t.Fatalf("scrape %d: +Inf bucket %q != count %q", i, inf, count)
		}
	}
	close(stop)
	wg.Wait()
}
