package profile

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dnnfusion/internal/ops"
)

// Format-migration coverage for the version-4 database: every older
// fixture loads with its sections intact (and the missing ones empty), a
// version from the future fails with the typed error, and saving a
// loaded v4 file back is byte-stable.

func writeFixture(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadV1IntoV4(t *testing.T) {
	db, err := Load(writeFixture(t, "v1.json", `{"version":1,"entries":{"combo":2.5}}`))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := db.Lookup("combo"); !ok || v != 2.5 {
		t.Errorf("v1 entry lost: %v, %v", v, ok)
	}
	if db.ScheduleLen() != 0 || db.ChainScheduleLen() != 0 || db.PlanLen() != 0 {
		t.Error("v1 file should load with the newer sections empty")
	}
}

func TestLoadV2IntoV4(t *testing.T) {
	db, err := Load(writeFixture(t, "v2.json",
		`{"version":2,"entries":{"combo":1},"schedules":{"sched|dev|m=8,n=8,k=8":{"row_tile":4,"col_panel":8,"unroll":4}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := db.LookupSchedule("sched|dev|m=8,n=8,k=8"); !ok || s != (ops.Schedule{RowTile: 4, ColPanel: 8, Unroll: 4}) {
		t.Errorf("v2 schedule lost: %+v, %v", s, ok)
	}
	if db.ChainScheduleLen() != 0 || db.PlanLen() != 0 {
		t.Error("v2 file should load with chain schedules and plans empty")
	}
}

func TestLoadV3IntoV4(t *testing.T) {
	db, err := Load(writeFixture(t, "v3.json",
		`{"version":3,"entries":{},"chain_schedules":{"chain|dev|p=8x8x8,c=8x8x8":{"producer":{"row_tile":2,"col_panel":8,"unroll":4},"consumer":{"row_tile":2,"col_panel":16,"unroll":4}}}}`))
	if err != nil {
		t.Fatal(err)
	}
	cs, ok := db.LookupChainSchedule("chain|dev|p=8x8x8,c=8x8x8")
	if !ok || cs.Consumer.ColPanel != 16 {
		t.Errorf("v3 chain schedule lost: %+v, %v", cs, ok)
	}
	if db.PlanLen() != 0 {
		t.Error("v3 file should load with plans empty")
	}
	// Re-saving a migrated file writes the current version.
	path := filepath.Join(t.TempDir(), "up.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"version": 4`)) {
		t.Errorf("migrated save is not version 4:\n%s", data)
	}
}

func TestLoadUnknownFutureVersionFails(t *testing.T) {
	path := writeFixture(t, "v99.json", `{"version":99,"entries":{"k":1}}`)
	_, err := Load(path)
	if err == nil {
		t.Fatal("loading a future version succeeded")
	}
	if !errors.Is(err, ErrVersion) {
		t.Errorf("error %v does not match ErrVersion", err)
	}
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("error %T is not a *VersionError", err)
	}
	if ve.Version != 99 || ve.Path != path {
		t.Errorf("VersionError = %+v, want version 99 at %s", ve, path)
	}
}

func TestV4RoundTripByteStable(t *testing.T) {
	db := New()
	db.Insert("combo", 1.25)
	db.InsertSchedule(ScheduleKey("dev", 16, 96, 64), ops.Schedule{RowTile: 8, ColPanel: 96, Unroll: 4})
	db.InsertChainSchedule(ChainScheduleKey("dev", 8, 8, 32, 8, 32, 8), ChainSchedule{
		Producer: ops.Schedule{RowTile: 8, ColPanel: 8, Unroll: 4},
		Consumer: ops.Schedule{RowTile: 8, ColPanel: 32, Unroll: 4},
	})
	prod := ops.Schedule{RowTile: 4, ColPanel: 32, Unroll: 4}
	db.InsertPlan(PlanKey("dev", "00f1e2d3c4b5a697", 1), TunedPlan{
		ChainMask:    1,
		NoYellow:     true,
		Kernels:      []TunedKernel{{Task: "sched|dev|m=16,n=96,k=64", Schedule: ops.Schedule{RowTile: 4, ColPanel: 96, Unroll: 4}, Producer: &prod}},
		MeasuredNs:   12345,
		MeasuredRuns: 7,
	})
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.json")
	if err := db.Save(p1); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(p1)
	if err != nil {
		t.Fatal(err)
	}
	p2 := filepath.Join(dir, "b.json")
	if err := loaded.Save(p2); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("v4 round trip is not byte-stable:\n--- first\n%s\n--- second\n%s", b1, b2)
	}
}

func TestPlanRoundTrip(t *testing.T) {
	db := New()
	key := PlanKey("Snapdragon 865 CPU", "deadbeefdeadbeef", 8)
	tp := TunedPlan{ChainMask: 3, Seeds: 1, MeasuredNs: 999, MeasuredRuns: 4, Analytical: true,
		Kernels: []TunedKernel{{Task: "sched|d|m=1,n=2,k=3", Schedule: ops.Schedule{RowTile: 1, ColPanel: 8, Unroll: 2}}}}
	db.InsertPlan(key, tp)
	path := filepath.Join(t.TempDir(), "p.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := back.LookupPlan(key)
	if !ok {
		t.Fatal("plan lost in round trip")
	}
	if got.ChainMask != 3 || got.Seeds != 1 || got.MeasuredNs != 999 || !got.Analytical || len(got.Kernels) != 1 {
		t.Errorf("plan mangled: %+v", got)
	}
	if got.Kernels[0] != tp.Kernels[0] {
		t.Errorf("kernel slot mangled: %+v", got.Kernels[0])
	}
	if back.PlanHits != 1 || back.PlanMisses != 0 {
		t.Errorf("plan counters = %d/%d, want 1/0", back.PlanHits, back.PlanMisses)
	}
	if _, ok := back.LookupPlan(PlanKey("d", "0", 1)); ok {
		t.Error("missing plan key should miss")
	}
}

// TestSaveAtomicReplace: Save must replace the destination atomically —
// no torn temp content at the destination path mid-write, and the temp
// file must not survive. (The rename guarantees a concurrent reader sees
// the old or the new complete file; this pins the mechanism.)
func TestSaveAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shared.json")
	db := New()
	db.Insert("a", 1)
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db.Insert("b", 2)
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "shared.json" {
			t.Errorf("stray file %q left next to the database", e.Name())
		}
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Errorf("replaced database has %d entries, want 2", back.Len())
	}
}
