// Package profile implements DNNFusion's profiling result database (§4.3):
// latencies of operator combinations collected offline and keyed by
// operator types, attributes, and shapes. Yellow (fuse_depend) decisions in
// the fusion planner consult it; a hit avoids a measurement, which is what
// collapses the "Profiling" bar of Figure 9b. The database persists as JSON
// so it accumulates across models and compilations (the paper reports ~22K
// entries after compiling all 15 models).
package profile

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
)

// DB is a latency and schedule database. Safe for concurrent use.
type DB struct {
	mu      sync.Mutex
	entries map[string]float64
	// schedules caches tuner-selected tile schedules per kernel shape and
	// device (ScheduleKey), so repeat compilations skip the GA search —
	// the schedule half of Figure 9b's caching effect.
	schedules map[string]ops.Schedule
	// chainSchedules caches jointly tuned chain-kernel schedule pairs
	// (ChainScheduleKey).
	chainSchedules map[string]ChainSchedule
	// plans stores measured-tuning winners — a whole-graph fusion-plan
	// spec plus per-kernel schedules — keyed by PlanKey (graph
	// fingerprint × device × batch size), so repeat compilations with
	// measured tuning enabled warm-start with zero measurement.
	plans map[string]TunedPlan

	// Hits/Misses count latency lookups; Measurements counts inserts that
	// came from fresh measurements (not a bulk load). ScheduleHits/
	// ScheduleMisses count schedule lookups the same way, and PlanHits/
	// PlanMisses tuned-plan lookups.
	Hits           int
	Misses         int
	Measurements   int
	ScheduleHits   int
	ScheduleMisses int
	PlanHits       int
	PlanMisses     int
}

// New returns an empty database.
func New() *DB {
	return &DB{
		entries:        map[string]float64{},
		schedules:      map[string]ops.Schedule{},
		chainSchedules: map[string]ChainSchedule{},
		plans:          map[string]TunedPlan{},
	}
}

// Len returns the number of stored entries.
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.entries)
}

// Lookup returns the stored latency for key.
func (db *DB) Lookup(key string) (float64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	v, ok := db.entries[key]
	if ok {
		db.Hits++
	} else {
		db.Misses++
	}
	return v, ok
}

// Insert stores a measured latency.
func (db *DB) Insert(key string, latencyMs float64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.entries[key]; !ok {
		db.Measurements++
	}
	db.entries[key] = latencyMs
}

// ResetStats clears the hit/miss/measurement counters but keeps entries.
func (db *DB) ResetStats() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.Hits, db.Misses, db.Measurements = 0, 0, 0
	db.ScheduleHits, db.ScheduleMisses = 0, 0
	db.PlanHits, db.PlanMisses = 0, 0
}

// ScheduleKey canonicalizes one heavy-kernel tuning task: device identity
// plus the GEMM-shape contraction dimensions. Kernels with the same shape
// on the same device share one tuned schedule across models.
func ScheduleKey(deviceName string, m, n, k int) string {
	return fmt.Sprintf("sched|%s|m=%d,n=%d,k=%d", deviceName, m, n, k)
}

// LookupSchedule returns the cached tuned schedule for key.
func (db *DB) LookupSchedule(key string) (ops.Schedule, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.schedules[key]
	if ok {
		db.ScheduleHits++
	} else {
		db.ScheduleMisses++
	}
	return s, ok
}

// InsertSchedule stores a tuned schedule.
func (db *DB) InsertSchedule(key string, s ops.Schedule) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.schedules[key] = s
}

// ScheduleLen returns the number of cached schedules.
func (db *DB) ScheduleLen() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.schedules)
}

// ChainSchedule is a jointly tuned schedule pair for a fused contraction
// chain: Producer tiles the first contraction, Consumer the second.
type ChainSchedule struct {
	Producer ops.Schedule `json:"producer"`
	Consumer ops.Schedule `json:"consumer"`
}

// ChainScheduleKey canonicalizes one chain-kernel tuning task: device
// identity plus both contractions' GEMM shapes.
func ChainScheduleKey(deviceName string, pm, pn, pk, cm, cn, ck int) string {
	return fmt.Sprintf("chain|%s|p=%dx%dx%d,c=%dx%dx%d", deviceName, pm, pn, pk, cm, cn, ck)
}

// LookupChainSchedule returns the cached chain schedule pair for key.
func (db *DB) LookupChainSchedule(key string) (ChainSchedule, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.chainSchedules[key]
	if ok {
		db.ScheduleHits++
	} else {
		db.ScheduleMisses++
	}
	return s, ok
}

// InsertChainSchedule stores a tuned chain schedule pair.
func (db *DB) InsertChainSchedule(key string, s ChainSchedule) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.chainSchedules[key] = s
}

// ChainScheduleLen returns the number of cached chain schedule pairs.
func (db *DB) ChainScheduleLen() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.chainSchedules)
}

// TunedKernel is one schedulable kernel's slot in a tuned plan. Task is
// the kernel's canonical tuning-task string (recorded when the plan was
// measured); on warm start it cross-checks that the deterministically
// rebuilt plan produced the same kernel in the same position before the
// stored schedule is applied.
type TunedKernel struct {
	Task     string        `json:"task"`
	Schedule ops.Schedule  `json:"schedule"`
	Producer *ops.Schedule `json:"producer,omitempty"`
}

// TunedPlan is a measured-tuning winner: the fusion-plan variant that won
// the short measured runs plus the per-kernel schedules it won with.
// ChainMask selects which detected contraction chains fuse (bit i = chain
// i in consumer-topo order); NoYellow forces every yellow (FuseDepend)
// decision to break instead of consulting the latency heuristic; Seeds is
// the planner seed policy. Rebuilding the plan from these fields is
// deterministic, so the whole compiled artifact is reproducible from the
// database without re-measurement.
type TunedPlan struct {
	ChainMask uint64        `json:"chain_mask"`
	NoYellow  bool          `json:"no_yellow,omitempty"`
	Seeds     int           `json:"seeds,omitempty"`
	Kernels   []TunedKernel `json:"kernels,omitempty"`
	// MeasuredNs is the winner's measured ns/inference; MeasuredRuns how
	// many candidate measurements the search spent; Analytical whether the
	// winner coincides with the analytical choice (plan and schedules).
	MeasuredNs   int64 `json:"measured_ns"`
	MeasuredRuns int   `json:"measured_runs"`
	Analytical   bool  `json:"analytical,omitempty"`
}

// PlanKey canonicalizes one measured-tuning task: graph fingerprint
// (graph.Fingerprint of the post-rewrite graph), device identity, and the
// batch size the graph was compiled for — the three axes a tuned plan is
// conditioned on.
func PlanKey(deviceName, fingerprint string, batch int) string {
	if batch < 1 {
		batch = 1
	}
	return fmt.Sprintf("plan|%s|fp=%s|b=%d", deviceName, fingerprint, batch)
}

// LookupPlan returns the stored tuned plan for key.
func (db *DB) LookupPlan(key string) (TunedPlan, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	p, ok := db.plans[key]
	if ok {
		db.PlanHits++
	} else {
		db.PlanMisses++
	}
	return p, ok
}

// InsertPlan stores a measured-tuning winner.
func (db *DB) InsertPlan(key string, p TunedPlan) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.plans[key] = p
}

// PlanLen returns the number of stored tuned plans.
func (db *DB) PlanLen() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.plans)
}

// KeyFor canonicalizes a candidate fusion-block node list: operator types,
// attributes, and input/output shapes, independent of value names, so the
// same combination measured in one model is reused in another.
func KeyFor(nodes []*graph.Node) string {
	parts := make([]string, 0, len(nodes))
	for _, n := range nodes {
		var sb strings.Builder
		sb.WriteString(n.Op.Type())
		if a := n.Op.AttrKey(); a != "" {
			sb.WriteString("[" + a + "]")
		}
		sb.WriteString("(")
		for i, in := range n.Inputs {
			if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(in.Shape.String())
		}
		sb.WriteString(")->")
		for i, out := range n.Outputs {
			if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(out.Shape.String())
		}
		parts = append(parts, sb.String())
	}
	sort.Strings(parts) // combination identity, not schedule identity
	return strings.Join(parts, ";")
}

// FormatVersion is the on-disk format this build writes (and the newest
// it understands).
const FormatVersion = 4

// ErrVersion reports a database written by a newer build than this one.
// Callers match it with errors.Is; the concrete *VersionError carries the
// offending path and version.
var ErrVersion = errors.New("profile: unsupported database version")

// VersionError is the typed failure for a database file whose version is
// newer than FormatVersion. Loading it partially could silently drop the
// newer sections (and a subsequent Save would destroy them), so Load
// refuses instead.
type VersionError struct {
	Path    string
	Version int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("profile: %s: version %d is newer than supported version %d", e.Path, e.Version, FormatVersion)
}

func (e *VersionError) Unwrap() error { return ErrVersion }

// fileFormat is the on-disk representation. Version 2 added the tuned
// schedule cache, version 3 the chain-schedule cache, version 4 the
// measured-tuning plan table; older files load with the missing sections
// empty. Versions newer than FormatVersion fail with a *VersionError.
type fileFormat struct {
	Version        int                      `json:"version"`
	Entries        map[string]float64       `json:"entries"`
	Schedules      map[string]ops.Schedule  `json:"schedules,omitempty"`
	ChainSchedules map[string]ChainSchedule `json:"chain_schedules,omitempty"`
	Plans          map[string]TunedPlan     `json:"plans,omitempty"`
}

// Save writes the database as JSON, atomically: the bytes land in a
// temporary file in the destination directory and replace the target with
// os.Rename, so a concurrent reader (a serving process sharing the file
// with dnnf-tune) sees either the old complete database or the new one,
// never torn JSON. The marshalled form is canonical — map keys sort — so
// saving an unchanged database is byte-stable.
func (db *DB) Save(path string) error {
	db.mu.Lock()
	ff := fileFormat{
		Version:        FormatVersion,
		Entries:        make(map[string]float64, len(db.entries)),
		Schedules:      make(map[string]ops.Schedule, len(db.schedules)),
		ChainSchedules: make(map[string]ChainSchedule, len(db.chainSchedules)),
		Plans:          make(map[string]TunedPlan, len(db.plans)),
	}
	for k, v := range db.entries {
		ff.Entries[k] = v
	}
	for k, v := range db.schedules {
		ff.Schedules[k] = v
	}
	for k, v := range db.chainSchedules {
		ff.ChainSchedules[k] = v
	}
	for k, v := range db.plans {
		ff.Plans[k] = v
	}
	db.mu.Unlock()
	data, err := json.MarshalIndent(ff, "", " ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// Load reads a database written by Save (any version up to FormatVersion;
// newer versions fail with a *VersionError).
func Load(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ff fileFormat
	if err := json.Unmarshal(data, &ff); err != nil {
		return nil, fmt.Errorf("profile: %s: %w", path, err)
	}
	if ff.Version > FormatVersion {
		return nil, &VersionError{Path: path, Version: ff.Version}
	}
	db := New()
	for k, v := range ff.Entries {
		db.entries[k] = v
	}
	for k, v := range ff.Schedules {
		db.schedules[k] = v
	}
	for k, v := range ff.ChainSchedules {
		db.chainSchedules[k] = v
	}
	for k, v := range ff.Plans {
		db.plans[k] = v
	}
	return db, nil
}
