// Package profile implements DNNFusion's profiling result database (§4.3):
// latencies of operator combinations collected offline and keyed by
// operator types, attributes, and shapes. Yellow (fuse_depend) decisions in
// the fusion planner consult it; a hit avoids a measurement, which is what
// collapses the "Profiling" bar of Figure 9b. The database persists as JSON
// so it accumulates across models and compilations (the paper reports ~22K
// entries after compiling all 15 models).
package profile

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
)

// DB is a latency and schedule database. Safe for concurrent use.
type DB struct {
	mu      sync.Mutex
	entries map[string]float64
	// schedules caches tuner-selected tile schedules per kernel shape and
	// device (ScheduleKey), so repeat compilations skip the GA search —
	// the schedule half of Figure 9b's caching effect.
	schedules map[string]ops.Schedule
	// chainSchedules caches jointly tuned chain-kernel schedule pairs
	// (ChainScheduleKey).
	chainSchedules map[string]ChainSchedule

	// Hits/Misses count latency lookups; Measurements counts inserts that
	// came from fresh measurements (not a bulk load). ScheduleHits/
	// ScheduleMisses count schedule lookups the same way.
	Hits           int
	Misses         int
	Measurements   int
	ScheduleHits   int
	ScheduleMisses int
}

// New returns an empty database.
func New() *DB {
	return &DB{
		entries:        map[string]float64{},
		schedules:      map[string]ops.Schedule{},
		chainSchedules: map[string]ChainSchedule{},
	}
}

// Len returns the number of stored entries.
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.entries)
}

// Lookup returns the stored latency for key.
func (db *DB) Lookup(key string) (float64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	v, ok := db.entries[key]
	if ok {
		db.Hits++
	} else {
		db.Misses++
	}
	return v, ok
}

// Insert stores a measured latency.
func (db *DB) Insert(key string, latencyMs float64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.entries[key]; !ok {
		db.Measurements++
	}
	db.entries[key] = latencyMs
}

// ResetStats clears the hit/miss/measurement counters but keeps entries.
func (db *DB) ResetStats() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.Hits, db.Misses, db.Measurements = 0, 0, 0
	db.ScheduleHits, db.ScheduleMisses = 0, 0
}

// ScheduleKey canonicalizes one heavy-kernel tuning task: device identity
// plus the GEMM-shape contraction dimensions. Kernels with the same shape
// on the same device share one tuned schedule across models.
func ScheduleKey(deviceName string, m, n, k int) string {
	return fmt.Sprintf("sched|%s|m=%d,n=%d,k=%d", deviceName, m, n, k)
}

// LookupSchedule returns the cached tuned schedule for key.
func (db *DB) LookupSchedule(key string) (ops.Schedule, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.schedules[key]
	if ok {
		db.ScheduleHits++
	} else {
		db.ScheduleMisses++
	}
	return s, ok
}

// InsertSchedule stores a tuned schedule.
func (db *DB) InsertSchedule(key string, s ops.Schedule) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.schedules[key] = s
}

// ScheduleLen returns the number of cached schedules.
func (db *DB) ScheduleLen() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.schedules)
}

// ChainSchedule is a jointly tuned schedule pair for a fused contraction
// chain: Producer tiles the first contraction, Consumer the second.
type ChainSchedule struct {
	Producer ops.Schedule `json:"producer"`
	Consumer ops.Schedule `json:"consumer"`
}

// ChainScheduleKey canonicalizes one chain-kernel tuning task: device
// identity plus both contractions' GEMM shapes.
func ChainScheduleKey(deviceName string, pm, pn, pk, cm, cn, ck int) string {
	return fmt.Sprintf("chain|%s|p=%dx%dx%d,c=%dx%dx%d", deviceName, pm, pn, pk, cm, cn, ck)
}

// LookupChainSchedule returns the cached chain schedule pair for key.
func (db *DB) LookupChainSchedule(key string) (ChainSchedule, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.chainSchedules[key]
	if ok {
		db.ScheduleHits++
	} else {
		db.ScheduleMisses++
	}
	return s, ok
}

// InsertChainSchedule stores a tuned chain schedule pair.
func (db *DB) InsertChainSchedule(key string, s ChainSchedule) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.chainSchedules[key] = s
}

// ChainScheduleLen returns the number of cached chain schedule pairs.
func (db *DB) ChainScheduleLen() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.chainSchedules)
}

// KeyFor canonicalizes a candidate fusion-block node list: operator types,
// attributes, and input/output shapes, independent of value names, so the
// same combination measured in one model is reused in another.
func KeyFor(nodes []*graph.Node) string {
	parts := make([]string, 0, len(nodes))
	for _, n := range nodes {
		var sb strings.Builder
		sb.WriteString(n.Op.Type())
		if a := n.Op.AttrKey(); a != "" {
			sb.WriteString("[" + a + "]")
		}
		sb.WriteString("(")
		for i, in := range n.Inputs {
			if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(in.Shape.String())
		}
		sb.WriteString(")->")
		for i, out := range n.Outputs {
			if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(out.Shape.String())
		}
		parts = append(parts, sb.String())
	}
	sort.Strings(parts) // combination identity, not schedule identity
	return strings.Join(parts, ";")
}

// fileFormat is the on-disk representation. Version 2 added the tuned
// schedule cache, version 3 the chain-schedule cache; older files load
// with the missing caches empty.
type fileFormat struct {
	Version        int                      `json:"version"`
	Entries        map[string]float64       `json:"entries"`
	Schedules      map[string]ops.Schedule  `json:"schedules,omitempty"`
	ChainSchedules map[string]ChainSchedule `json:"chain_schedules,omitempty"`
}

// Save writes the database as JSON.
func (db *DB) Save(path string) error {
	db.mu.Lock()
	ff := fileFormat{
		Version:        3,
		Entries:        make(map[string]float64, len(db.entries)),
		Schedules:      make(map[string]ops.Schedule, len(db.schedules)),
		ChainSchedules: make(map[string]ChainSchedule, len(db.chainSchedules)),
	}
	for k, v := range db.entries {
		ff.Entries[k] = v
	}
	for k, v := range db.schedules {
		ff.Schedules[k] = v
	}
	for k, v := range db.chainSchedules {
		ff.ChainSchedules[k] = v
	}
	db.mu.Unlock()
	data, err := json.MarshalIndent(ff, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a database written by Save (any version).
func Load(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ff fileFormat
	if err := json.Unmarshal(data, &ff); err != nil {
		return nil, fmt.Errorf("profile: %s: %w", path, err)
	}
	db := New()
	for k, v := range ff.Entries {
		db.entries[k] = v
	}
	for k, v := range ff.Schedules {
		db.schedules[k] = v
	}
	for k, v := range ff.ChainSchedules {
		db.chainSchedules[k] = v
	}
	return db, nil
}
