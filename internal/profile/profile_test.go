package profile

import (
	"path/filepath"
	"testing"

	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

func sampleNodes(t *testing.T) []*graph.Node {
	t.Helper()
	g := graph.New("p")
	x := g.AddInput("x", tensor.Of(2, 3))
	a := g.Apply1(ops.NewRelu(), x)
	b := g.Apply1(ops.NewExp(), a)
	g.MarkOutput(b)
	return g.Nodes
}

func TestLookupInsert(t *testing.T) {
	db := New()
	if _, ok := db.Lookup("k"); ok {
		t.Fatal("empty db returned a hit")
	}
	db.Insert("k", 1.5)
	v, ok := db.Lookup("k")
	if !ok || v != 1.5 {
		t.Fatalf("Lookup = %v, %v", v, ok)
	}
	if db.Hits != 1 || db.Misses != 1 || db.Measurements != 1 {
		t.Errorf("stats = %d/%d/%d, want 1/1/1", db.Hits, db.Misses, db.Measurements)
	}
	db.ResetStats()
	if db.Hits != 0 || db.Len() != 1 {
		t.Error("ResetStats should keep entries")
	}
}

func TestKeyForIsStructural(t *testing.T) {
	n1 := sampleNodes(t)
	n2 := sampleNodes(t) // fresh graph, same structure
	if KeyFor(n1) != KeyFor(n2) {
		t.Error("structurally identical node lists have different keys")
	}
	// Order independence: a combination is a set, not a schedule.
	rev := []*graph.Node{n1[1], n1[0]}
	if KeyFor(n1) != KeyFor(rev) {
		t.Error("key depends on node order")
	}
	// Different shapes must differ.
	g := graph.New("p2")
	x := g.AddInput("x", tensor.Of(4, 4))
	a := g.Apply1(ops.NewRelu(), x)
	b := g.Apply1(ops.NewExp(), a)
	g.MarkOutput(b)
	if KeyFor(n1) == KeyFor(g.Nodes) {
		t.Error("different shapes share a key")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New()
	db.Insert("a", 1)
	db.Insert("b", 2.25)
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("loaded %d entries, want 2", back.Len())
	}
	if v, ok := back.Lookup("b"); !ok || v != 2.25 {
		t.Errorf("loaded b = %v, %v", v, ok)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file should fail")
	}
}
