package profile

import (
	"os"
	"path/filepath"
	"testing"

	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

func sampleNodes(t *testing.T) []*graph.Node {
	t.Helper()
	g := graph.New("p")
	x := g.AddInput("x", tensor.Of(2, 3))
	a := g.Apply1(ops.NewRelu(), x)
	b := g.Apply1(ops.NewExp(), a)
	g.MarkOutput(b)
	return g.Nodes
}

func TestLookupInsert(t *testing.T) {
	db := New()
	if _, ok := db.Lookup("k"); ok {
		t.Fatal("empty db returned a hit")
	}
	db.Insert("k", 1.5)
	v, ok := db.Lookup("k")
	if !ok || v != 1.5 {
		t.Fatalf("Lookup = %v, %v", v, ok)
	}
	if db.Hits != 1 || db.Misses != 1 || db.Measurements != 1 {
		t.Errorf("stats = %d/%d/%d, want 1/1/1", db.Hits, db.Misses, db.Measurements)
	}
	db.ResetStats()
	if db.Hits != 0 || db.Len() != 1 {
		t.Error("ResetStats should keep entries")
	}
}

func TestKeyForIsStructural(t *testing.T) {
	n1 := sampleNodes(t)
	n2 := sampleNodes(t) // fresh graph, same structure
	if KeyFor(n1) != KeyFor(n2) {
		t.Error("structurally identical node lists have different keys")
	}
	// Order independence: a combination is a set, not a schedule.
	rev := []*graph.Node{n1[1], n1[0]}
	if KeyFor(n1) != KeyFor(rev) {
		t.Error("key depends on node order")
	}
	// Different shapes must differ.
	g := graph.New("p2")
	x := g.AddInput("x", tensor.Of(4, 4))
	a := g.Apply1(ops.NewRelu(), x)
	b := g.Apply1(ops.NewExp(), a)
	g.MarkOutput(b)
	if KeyFor(n1) == KeyFor(g.Nodes) {
		t.Error("different shapes share a key")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New()
	db.Insert("a", 1)
	db.Insert("b", 2.25)
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("loaded %d entries, want 2", back.Len())
	}
	if v, ok := back.Lookup("b"); !ok || v != 2.25 {
		t.Errorf("loaded b = %v, %v", v, ok)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestScheduleCacheRoundTrip(t *testing.T) {
	db := New()
	db.Insert("latency", 3.5)
	key := ScheduleKey("Snapdragon 865 CPU", 128, 96, 64)
	db.InsertSchedule(key, ops.Schedule{RowTile: 8, ColPanel: 96, Unroll: 4})
	if db.ScheduleLen() != 1 {
		t.Fatalf("ScheduleLen = %d, want 1", db.ScheduleLen())
	}
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := back.LookupSchedule(key)
	if !ok || s != (ops.Schedule{RowTile: 8, ColPanel: 96, Unroll: 4}) {
		t.Errorf("round trip lost schedule: %+v, %v", s, ok)
	}
	if back.ScheduleHits != 1 || back.ScheduleMisses != 0 {
		t.Errorf("schedule counters = %d/%d, want 1/0", back.ScheduleHits, back.ScheduleMisses)
	}
	if _, ok := back.LookupSchedule("sched|other|m=1,n=1,k=1"); ok {
		t.Error("missing key should miss")
	}
	// Latency entries coexist with schedules across the round trip.
	if v, ok := back.Lookup("latency"); !ok || v != 3.5 {
		t.Errorf("latency entry lost: %v, %v", v, ok)
	}
}

// TestLoadVersion1File pins backward compatibility: databases written
// before the schedule cache (version 1, no schedules field) still load.
func TestLoadVersion1File(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"entries":{"k":2.5}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := db.Lookup("k"); !ok || v != 2.5 {
		t.Errorf("v1 entry lost: %v, %v", v, ok)
	}
	if db.ScheduleLen() != 0 {
		t.Errorf("v1 file should have no schedules, got %d", db.ScheduleLen())
	}
	// A loaded v1 database accepts new schedules and saves as v2.
	db.InsertSchedule(ScheduleKey("dev", 1, 2, 3), ops.Schedule{RowTile: 2, ColPanel: 8, Unroll: 4})
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.ScheduleLen() != 1 {
		t.Errorf("upgraded file lost the schedule")
	}
}

// TestChainScheduleCacheRoundTrip: chain-schedule pairs survive Save/Load
// (the version-3 format) alongside latency entries and single-kernel
// schedules, and older files without the field still load.
func TestChainScheduleCacheRoundTrip(t *testing.T) {
	db := New()
	db.Insert("latency", 1.5)
	db.InsertSchedule(ScheduleKey("dev", 8, 8, 8), ops.Schedule{RowTile: 2, ColPanel: 8, Unroll: 4})
	key := ChainScheduleKey("Snapdragon 865 CPU", 8, 8, 32, 8, 32, 8)
	pair := ChainSchedule{
		Producer: ops.Schedule{RowTile: 8, ColPanel: 8, Unroll: 4},
		Consumer: ops.Schedule{RowTile: 8, ColPanel: 32, Unroll: 4},
	}
	db.InsertChainSchedule(key, pair)
	if db.ChainScheduleLen() != 1 {
		t.Fatalf("ChainScheduleLen = %d, want 1", db.ChainScheduleLen())
	}
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := back.LookupChainSchedule(key)
	if !ok || got != pair {
		t.Errorf("round trip lost chain schedule: %+v, %v", got, ok)
	}
	if _, ok := back.LookupChainSchedule(ChainScheduleKey("dev", 1, 1, 1, 1, 1, 1)); ok {
		t.Error("missing chain key should miss")
	}
	if back.ScheduleLen() != 1 || back.Len() != 1 {
		t.Errorf("coexisting entries lost: %d schedules, %d latencies", back.ScheduleLen(), back.Len())
	}
	// A version-2 file (no chain_schedules field) still loads cleanly.
	v2 := filepath.Join(t.TempDir(), "v2.json")
	if err := os.WriteFile(v2, []byte(`{"version":2,"entries":{"k":1},"schedules":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	old, err := Load(v2)
	if err != nil {
		t.Fatal(err)
	}
	if old.ChainScheduleLen() != 0 {
		t.Errorf("v2 file should have no chain schedules, got %d", old.ChainScheduleLen())
	}
}
