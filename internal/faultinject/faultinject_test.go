package faultinject

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestInjectUnarmedIsNil(t *testing.T) {
	if Active() {
		t.Fatal("fresh package reports active hooks")
	}
	if err := Inject(context.Background(), ServeBuild); err != nil {
		t.Fatalf("unarmed Inject = %v", err)
	}
}

func TestSetClearReset(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	Set(ServeBuild, func(ctx context.Context, args ...any) error { return boom })
	if !Active() {
		t.Fatal("armed point not active")
	}
	if err := Inject(context.Background(), ServeBuild); !errors.Is(err, boom) {
		t.Fatalf("armed Inject = %v, want boom", err)
	}
	// A different point stays a no-op.
	if err := Inject(context.Background(), ServeExecute); err != nil {
		t.Fatalf("other point = %v", err)
	}
	// Replacing a hook does not double-count activity.
	Set(ServeBuild, func(ctx context.Context, args ...any) error { return nil })
	if err := Inject(context.Background(), ServeBuild); err != nil {
		t.Fatalf("replaced hook = %v", err)
	}
	Clear(ServeBuild)
	if Active() {
		t.Fatal("cleared point still active")
	}
	// Clearing an unarmed point must not underflow the active count.
	Clear(ServeBuild)
	Set(ServeExecute, func(ctx context.Context, args ...any) error { return boom })
	Reset()
	if Active() {
		t.Fatal("Reset left active hooks")
	}
	if err := Inject(context.Background(), ServeExecute); err != nil {
		t.Fatalf("post-Reset Inject = %v", err)
	}
}

func TestInjectPassesContextAndArgs(t *testing.T) {
	t.Cleanup(Reset)
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "v")
	var gotCtx context.Context
	var gotArgs []any
	Set(ServeExecute, func(c context.Context, args ...any) error {
		gotCtx, gotArgs = c, args
		return nil
	})
	if err := Inject(ctx, ServeExecute, "model", 4); err != nil {
		t.Fatal(err)
	}
	if gotCtx.Value(key{}) != "v" {
		t.Fatal("hook did not receive the caller's context")
	}
	if len(gotArgs) != 2 || gotArgs[0] != "model" || gotArgs[1] != 4 {
		t.Fatalf("hook args = %v", gotArgs)
	}
}

// TestInjectConcurrentWithSet pins the locking discipline: firing a point
// while another goroutine arms and disarms it must be race-free (this test
// earns its keep under -race).
func TestInjectConcurrentWithSet(t *testing.T) {
	t.Cleanup(Reset)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				Set(ServeExecute, func(ctx context.Context, args ...any) error { return nil })
			} else {
				Clear(ServeExecute)
			}
		}
	}()
	for i := 0; i < 10000; i++ {
		Inject(context.Background(), ServeExecute)
	}
	close(stop)
	wg.Wait()
}
