// Package faultinject provides deterministic fault-injection hook points
// for the serving stack. Production code calls Inject at named points; by
// default every point is a no-op behind a single atomic load, so the hooks
// cost nothing when no fault is armed. Tests arm a point with Set to force
// failures, delays, or mid-flight cancellation that would otherwise only be
// reachable through scheduler race windows: a build that fails, a kernel
// execution that is slow or errors, a batch held in flight while the host
// is evicted.
//
// Hooks are process-global (the serving stack has no other seam that
// reaches inside a Host's dispatcher), so tests that arm them must not run
// in parallel with each other and should Reset on cleanup:
//
//	faultinject.Set(faultinject.ServeExecute, func(ctx context.Context, args ...any) error {
//		return errors.New("injected kernel failure")
//	})
//	t.Cleanup(faultinject.Reset)
//
// A hook receives the context the instrumented operation runs under (for
// ServeExecute that is the batch context, so a hook can block on ctx.Done()
// to hold a batch in flight until shutdown cancels it) plus point-specific
// args. Returning a non-nil error makes the instrumented operation fail
// with that error; returning nil lets it proceed. A hook that only sleeps
// simulates slowness without failure.
package faultinject

import (
	"context"
	"sync"
	"sync/atomic"
)

// Point names one instrumented location. The args each point passes to its
// hook are documented on the constant; extra args beyond the documented
// prefix are implementation-defined and may change.
type Point string

const (
	// ServeBuild fires after a serve.Host's model builder succeeds, with
	// args (model name string). A non-nil return fails the build; the
	// failure is sticky like any real build failure and counts in the
	// registry's build-failure counter.
	ServeBuild Point = "serve/host.build"

	// ServeExecute fires inside the dispatcher immediately before a formed
	// batch executes, with args (model name string, batch size int, batch).
	// It runs under the batch's execution context (host shutdown context,
	// possibly bounded by the earliest live request deadline). A non-nil
	// return fails every call in the batch; sleeping simulates slow
	// kernels; blocking on ctx.Done() holds the batch in flight until
	// cancellation.
	ServeExecute Point = "serve/host.execute"
)

// Hook is an armed fault: it observes (and may delay or fail) one
// instrumented operation.
type Hook func(ctx context.Context, args ...any) error

var (
	mu     sync.RWMutex
	hooks  map[Point]Hook
	active atomic.Int32 // number of armed points; 0 keeps Inject on the fast path
)

// Set arms a hook at a point, replacing any previous hook there. A nil fn
// clears the point.
func Set(p Point, fn Hook) {
	mu.Lock()
	defer mu.Unlock()
	if hooks == nil {
		hooks = make(map[Point]Hook)
	}
	_, had := hooks[p]
	if fn == nil {
		if had {
			delete(hooks, p)
			active.Add(-1)
		}
		return
	}
	hooks[p] = fn
	if !had {
		active.Add(1)
	}
}

// Clear disarms one point.
func Clear(p Point) { Set(p, nil) }

// Reset disarms every point; suitable for t.Cleanup.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	active.Add(-int32(len(hooks)))
	hooks = nil
}

// Active reports whether any point is armed (used by instrumented code that
// wants to skip building args entirely when no fault could fire).
func Active() bool { return active.Load() != 0 }

// Inject fires the hook armed at p, if any. With nothing armed it is a
// single atomic load and returns nil.
func Inject(ctx context.Context, p Point, args ...any) error {
	if active.Load() == 0 {
		return nil
	}
	mu.RLock()
	fn := hooks[p]
	mu.RUnlock()
	if fn == nil {
		return nil
	}
	return fn(ctx, args...)
}
