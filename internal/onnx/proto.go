// Package onnx reads and writes the ONNX subset the compiler consumes: a
// dependency-free protobuf wire-format codec for
// ModelProto/GraphProto/NodeProto/AttributeProto/TensorProto, a converter
// that maps ONNX nodes onto the graph/ops builders, and an exporter so the
// in-tree model zoo can generate its own golden fixtures.
//
// The codec implements just the protobuf wire format (varint, fixed32/64,
// length-delimited) over the handful of ONNX messages the importer needs —
// no generated code, no third-party protobuf runtime. Unknown fields are
// skipped on read, exactly like a real protobuf decoder, so files produced
// by standard exporters (extra doc strings, metadata, value_info) parse
// fine as long as the tensors are float32.
package onnx

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire types of the protobuf encoding.
const (
	wireVarint = 0
	wireI64    = 1
	wireBytes  = 2
	wireI32    = 5
)

// errMalformed is the root cause of every wire-level parse failure; it
// wraps ErrImport so callers see one sentinel for "this file is not a
// readable ONNX model".
var errMalformed = fmt.Errorf("%w: malformed protobuf", ErrImport)

// reader is a cursor over one protobuf message's bytes.
type reader struct {
	buf []byte
	pos int
}

func (r *reader) done() bool { return r.pos >= len(r.buf) }

// tag reads the next field tag, returning field number and wire type.
func (r *reader) tag() (int, int, error) {
	v, err := r.varint()
	if err != nil {
		return 0, 0, err
	}
	field, wire := int(v>>3), int(v&7)
	if field == 0 {
		return 0, 0, fmt.Errorf("%w: field number 0", errMalformed)
	}
	return field, wire, nil
}

func (r *reader) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if r.pos >= len(r.buf) {
			return 0, fmt.Errorf("%w: truncated varint", errMalformed)
		}
		b := r.buf[r.pos]
		r.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("%w: varint overflow", errMalformed)
}

func (r *reader) fixed32() (uint32, error) {
	if r.pos+4 > len(r.buf) {
		return 0, fmt.Errorf("%w: truncated fixed32", errMalformed)
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *reader) fixed64() (uint64, error) {
	if r.pos+8 > len(r.buf) {
		return 0, fmt.Errorf("%w: truncated fixed64", errMalformed)
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v, nil
}

// bytes reads one length-delimited field, returning a subslice (no copy).
func (r *reader) bytes() ([]byte, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.buf)-r.pos) {
		return nil, fmt.Errorf("%w: length %d exceeds remaining %d bytes", errMalformed, n, len(r.buf)-r.pos)
	}
	b := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b, nil
}

// skip discards one field of the given wire type.
func (r *reader) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := r.varint()
		return err
	case wireI64:
		_, err := r.fixed64()
		return err
	case wireBytes:
		_, err := r.bytes()
		return err
	case wireI32:
		_, err := r.fixed32()
		return err
	default:
		return fmt.Errorf("%w: unsupported wire type %d", errMalformed, wire)
	}
}

// int64s appends a repeated int64 field: either one varint (unpacked) or a
// packed run of varints, depending on the wire type at hand.
func (r *reader) int64s(wire int, dst []int64) ([]int64, error) {
	if wire == wireVarint {
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		return append(dst, int64(v)), nil
	}
	b, err := r.bytes()
	if err != nil {
		return nil, err
	}
	sub := reader{buf: b}
	for !sub.done() {
		v, err := sub.varint()
		if err != nil {
			return nil, err
		}
		dst = append(dst, int64(v))
	}
	return dst, nil
}

// float32s appends a repeated float field (packed or unpacked).
func (r *reader) float32s(wire int, dst []float32) ([]float32, error) {
	if wire == wireI32 {
		v, err := r.fixed32()
		if err != nil {
			return nil, err
		}
		return append(dst, math.Float32frombits(v)), nil
	}
	b, err := r.bytes()
	if err != nil {
		return nil, err
	}
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("%w: packed floats length %d not a multiple of 4", errMalformed, len(b))
	}
	for i := 0; i+4 <= len(b); i += 4 {
		dst = append(dst, math.Float32frombits(binary.LittleEndian.Uint32(b[i:])))
	}
	return dst, nil
}

// writer builds one protobuf message.
type writer struct{ buf []byte }

func (w *writer) varint(v uint64) {
	for v >= 0x80 {
		w.buf = append(w.buf, byte(v)|0x80)
		v >>= 7
	}
	w.buf = append(w.buf, byte(v))
}

func (w *writer) tag(field, wire int) { w.varint(uint64(field)<<3 | uint64(wire)) }

func (w *writer) int64Field(field int, v int64) {
	w.tag(field, wireVarint)
	w.varint(uint64(v))
}

func (w *writer) bytesField(field int, b []byte) {
	w.tag(field, wireBytes)
	w.varint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *writer) strField(field int, s string) {
	if s == "" {
		return
	}
	w.bytesField(field, []byte(s))
}

func (w *writer) floatField(field int, v float32) {
	w.tag(field, wireI32)
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
	w.buf = append(w.buf, b[:]...)
}

// packedInt64s writes a repeated int64 field in packed form.
func (w *writer) packedInt64s(field int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	var sub writer
	for _, v := range vs {
		sub.varint(uint64(v))
	}
	w.bytesField(field, sub.buf)
}

// packedFloats writes a repeated float field in packed form.
func (w *writer) packedFloats(field int, vs []float32) {
	if len(vs) == 0 {
		return
	}
	b := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	w.bytesField(field, b)
}

// message writes an embedded message field from its encoded bytes.
func (w *writer) message(field int, body []byte) { w.bytesField(field, body) }
