package onnx

import (
	"errors"
	"fmt"
)

// The import error taxonomy. Both sentinels are re-exported at the package
// root (dnnfusion.ErrImport, dnnfusion.ErrUnsupportedOp) so callers dispatch
// through the public API with errors.Is/As; they live here because the
// converter cannot import the root package.
var (
	// ErrImport reports a file that cannot be loaded as a model: malformed
	// protobuf, a non-float32 tensor, a symbolic dimension, an attribute
	// combination outside the supported subset, or a graph that fails
	// validation after conversion.
	ErrImport = errors.New("dnnfusion: model import failed")
	// ErrUnsupportedOp reports an operator the importer has no mapping
	// for. It wraps ErrImport; the concrete error is an
	// *UnsupportedOpError carrying the op name and node context.
	ErrUnsupportedOp = fmt.Errorf("%w: unsupported operator", ErrImport)
)

// UnsupportedOpError identifies the ONNX operator the importer rejected and
// the node it appeared at. It matches errors.Is(err, ErrUnsupportedOp) and
// errors.Is(err, ErrImport), and is extracted with errors.As.
type UnsupportedOpError struct {
	// Op is the ONNX op_type (e.g. "LSTM").
	Op string
	// Node is the node name, or a positional fallback like "#3" when the
	// file carries no node names.
	Node string
}

func (e *UnsupportedOpError) Error() string {
	return fmt.Sprintf("%v %q at node %s", ErrUnsupportedOp, e.Op, e.Node)
}

func (e *UnsupportedOpError) Unwrap() error { return ErrUnsupportedOp }
