// Package onnx reads and writes the ONNX subset the compiler understands.
//
// The wire codec (proto.go, model.go) is a dependency-free implementation
// of the protobuf encoding for the handful of ONNX messages the subset
// needs; the converter (convert.go) maps parsed models onto the operator
// catalog, and the exporter (export.go) is its inverse, used to generate
// golden fixtures from the in-tree model zoo.
package onnx

import "dnnfusion/internal/graph"

// Import parses ONNX bytes and converts them into a compile-ready graph.
// Errors match dnnfusion.ErrImport; unmapped operators additionally match
// dnnfusion.ErrUnsupportedOp and carry an *UnsupportedOpError.
func Import(data []byte) (*graph.Graph, error) {
	m, err := Unmarshal(data)
	if err != nil {
		return nil, err
	}
	return ToGraph(m)
}

// Export serializes a graph as ONNX bytes. It is the inverse of Import
// over the supported subset: importing the result reproduces the graph.
func Export(g *graph.Graph) ([]byte, error) {
	m, err := FromGraph(g)
	if err != nil {
		return nil, err
	}
	return m.Marshal(), nil
}
