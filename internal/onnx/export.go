package onnx

import (
	"encoding/binary"
	"fmt"
	"math"

	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// Export opset: the attribute conventions the exporter writes (and the
// importer's primary target).
const (
	exportIRVersion = 8
	exportOpset     = 13
)

// FromGraph converts a graph into the ONNX model form, the inverse of
// ToGraph over the supported subset. Data-carrying weights become float32
// initializers (bit-exact raw_data); shape-only weights become
// initializers with dims but no payload, so the 15-model zoo exports
// without materializing gigabytes of parameters. The zoo's const-scalar
// operators (AddConst, MulConst, scalar Pow) export as their binary ONNX
// forms with a scalar initializer, which ToGraph folds back.
func FromGraph(g *graph.Graph) (*Model, error) {
	if g == nil {
		return nil, fmt.Errorf("onnx export: nil graph")
	}
	e := &exporter{
		gp:    &GraphProto{Name: g.Name},
		names: make(map[*graph.Value]string, len(g.Values)),
		used:  make(map[string]bool, len(g.Values)),
	}
	for _, in := range g.Inputs {
		e.gp.Inputs = append(e.gp.Inputs, valueInfo(e.nameOf(in), in.Shape))
	}
	for _, n := range g.TopoSort() {
		if err := e.exportNode(n); err != nil {
			return nil, err
		}
	}
	for _, out := range g.Outputs {
		e.gp.Outputs = append(e.gp.Outputs, valueInfo(e.nameOf(out), out.Shape))
	}
	return &Model{
		IRVersion:    exportIRVersion,
		ProducerName: "dnnfusion",
		OpsetVersion: exportOpset,
		Graph:        e.gp,
	}, nil
}

type exporter struct {
	gp    *GraphProto
	names map[*graph.Value]string
	used  map[string]bool
	// emitted tracks weights already written as initializers.
	emitted map[*graph.Value]bool
}

// nameOf assigns each value a stable, unique wire name.
func (e *exporter) nameOf(v *graph.Value) string {
	if s, ok := e.names[v]; ok {
		return s
	}
	base := v.Name
	if base == "" {
		base = fmt.Sprintf("v%d", v.ID)
	}
	name := base
	for i := 2; e.used[name]; i++ {
		name = fmt.Sprintf("%s_%d", base, i)
	}
	e.used[name] = true
	e.names[v] = name
	return name
}

// operand resolves one node input, emitting its initializer if it is a
// weight seen for the first time.
func (e *exporter) operand(v *graph.Value) string {
	name := e.nameOf(v)
	if v.Kind != graph.Weight {
		return name
	}
	if e.emitted == nil {
		e.emitted = make(map[*graph.Value]bool)
	}
	if e.emitted[v] {
		return name
	}
	e.emitted[v] = true
	t := &TensorProto{Name: name, DataType: dtFloat}
	for _, d := range v.Shape {
		t.Dims = append(t.Dims, int64(d))
	}
	if v.Data != nil {
		t.Raw = rawFloats(v.Data.Data())
	}
	e.gp.Initializers = append(e.gp.Initializers, t)
	return name
}

func rawFloats(data []float32) []byte {
	raw := make([]byte, 4*len(data))
	for i, f := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(f))
	}
	return raw
}

// scalarInit emits a scalar float initializer and returns its name.
func (e *exporter) scalarInit(base string, v float32) string {
	name := base
	for i := 2; e.used[name]; i++ {
		name = fmt.Sprintf("%s_%d", base, i)
	}
	e.used[name] = true
	e.gp.Initializers = append(e.gp.Initializers, &TensorProto{
		Name: name, DataType: dtFloat, Raw: rawFloats([]float32{v}),
	})
	return name
}

// intsInit emits an int64 constant initializer (shape operands) and
// returns its name.
func (e *exporter) intsInit(base string, vals []int) string {
	name := base
	for i := 2; e.used[name]; i++ {
		name = fmt.Sprintf("%s_%d", base, i)
	}
	e.used[name] = true
	t := &TensorProto{Name: name, DataType: dtInt64, Dims: []int64{int64(len(vals))}}
	for _, v := range vals {
		t.Int64s = append(t.Int64s, int64(v))
	}
	e.gp.Initializers = append(e.gp.Initializers, t)
	return name
}

func valueInfo(name string, shape tensor.Shape) *ValueInfo {
	vi := &ValueInfo{Name: name, ElemType: dtFloat}
	for _, d := range shape {
		vi.Dims = append(vi.Dims, int64(d))
	}
	return vi
}

// Attribute constructors.
func aInt(name string, v int64) *Attribute     { return &Attribute{Name: name, Type: attrInt, I: v} }
func aFloat(name string, v float32) *Attribute { return &Attribute{Name: name, Type: attrFloat, F: v} }
func aInts(name string, vs []int) *Attribute {
	a := &Attribute{Name: name, Type: attrInts}
	for _, v := range vs {
		a.Ints = append(a.Ints, int64(v))
	}
	return a
}
func aFloats(name string, vs []float32) *Attribute {
	return &Attribute{Name: name, Type: attrFloats, Floats: vs}
}

// passthrough ops whose ONNX op_type equals the catalog Type() and that
// carry no attributes.
var passthrough = map[string]bool{
	"Relu": true, "Sigmoid": true, "Tanh": true, "Erf": true, "Exp": true,
	"Log": true, "Sqrt": true, "Softplus": true, "Identity": true,
	"Neg": true, "Abs": true, "Ceil": true, "Floor": true, "Round": true,
	"Reciprocal": true, "Add": true, "Sub": true, "Mul": true, "Div": true,
	"Min": true, "Max": true, "PRelu": true, "Greater": true, "Equal": true,
	"Where": true, "MatMul": true, "GlobalAveragePool": true,
}

func (e *exporter) exportNode(n *graph.Node) error {
	node := &NodeProto{Name: n.Name, OpType: n.Op.Type()}
	for _, in := range n.Inputs {
		node.Inputs = append(node.Inputs, e.operand(in))
	}
	for _, out := range n.Outputs {
		node.Outputs = append(node.Outputs, e.nameOf(out))
	}

	opType := n.Op.Type()
	switch {
	case passthrough[opType]:
		if opType == "MatMul" {
			if ta, tb, _ := ops.MatMulTrans(n.Op); ta || tb {
				return fmt.Errorf("onnx export: %s: transposed MatMul has no ONNX form", n.Name)
			}
		}

	case opType == "AddConst" || opType == "MulConst":
		_, c, ok := ops.ScalarConst(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: missing const attribute", n.Name)
		}
		if opType == "AddConst" {
			node.OpType = "Add"
		} else {
			node.OpType = "Mul"
		}
		node.Inputs = append(node.Inputs, e.scalarInit(n.Name+"_c", c))

	case opType == "Pow": // scalar-exponent Pow (NewPowConst)
		_, p, ok := ops.ScalarConst(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: missing exponent attribute", n.Name)
		}
		node.Inputs = append(node.Inputs, e.scalarInit(n.Name+"_p", p))

	case opType == "PowT":
		node.OpType = "Pow"

	case opType == "Cast":
		node.Attrs = append(node.Attrs, aInt("to", dtFloat))

	case opType == "Clip":
		min, max, ok := ops.ClipRange(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: missing clip range", n.Name)
		}
		node.Attrs = append(node.Attrs, aFloat("min", min), aFloat("max", max))

	case opType == "LeakyRelu":
		alpha, ok := ops.LeakyReluAlpha(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: missing alpha", n.Name)
		}
		node.Attrs = append(node.Attrs, aFloat("alpha", alpha))

	case opType == "Conv" || opType == "ConvTranspose":
		attrs, _, ok := ops.ConvInfo(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: not a convolution", n.Name)
		}
		spatial := n.Inputs[0].Shape.Rank() - 2
		node.Attrs = append(node.Attrs,
			aInts("strides", fillAttr(attrs.Strides, spatial, 1)),
			aInts("pads", duplicated(fillAttr(attrs.Pads, spatial, 0))),
			aInts("dilations", fillAttr(attrs.Dilations, spatial, 1)),
			aInt("group", int64(maxInt(attrs.Groups, 1))))

	case opType == "MaxPool" || opType == "AveragePool":
		attrs, _, global, ok := ops.PoolInfo(n.Op)
		if !ok || global {
			return fmt.Errorf("onnx export: %s: not a windowed pool", n.Name)
		}
		spatial := n.Inputs[0].Shape.Rank() - 2
		node.Attrs = append(node.Attrs,
			aInts("kernel_shape", fillAttr(attrs.Kernel, spatial, 1)),
			aInts("strides", fillAttr(attrs.Strides, spatial, 1)),
			aInts("pads", duplicated(fillAttr(attrs.Pads, spatial, 0))))

	case opType == "Gemm":
		alpha, beta, ta, tb, ok := ops.GemmInfo(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: not a Gemm", n.Name)
		}
		node.Attrs = append(node.Attrs,
			aFloat("alpha", alpha), aFloat("beta", beta),
			aInt("transA", b2i(ta)), aInt("transB", b2i(tb)))

	case opType == "BatchNormalization":
		eps, ok := ops.BatchNormEps(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: not a BatchNormalization", n.Name)
		}
		node.Attrs = append(node.Attrs, aFloat("epsilon", eps))

	case opType == "InstanceNormalization":
		eps, ok := ops.InstanceNormEps(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: not an InstanceNormalization", n.Name)
		}
		node.Attrs = append(node.Attrs, aFloat("epsilon", eps))

	case opType == "Softmax" || opType == "LogSoftmax":
		axis, _, ok := ops.SoftmaxInfo(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: not a softmax", n.Name)
		}
		node.Attrs = append(node.Attrs, aInt("axis", int64(axis)))

	case opType == "Reshape":
		target, ok := ops.ReshapeTarget(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: missing reshape target", n.Name)
		}
		node.Inputs = append(node.Inputs, e.intsInit(n.Name+"_shape", target))

	case opType == "Flatten":
		axis, ok := ops.FlattenAxis(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: missing flatten axis", n.Name)
		}
		node.Attrs = append(node.Attrs, aInt("axis", int64(axis)))

	case opType == "Transpose":
		perm := ops.TransposePerm(n.Op)
		if perm == nil {
			return fmt.Errorf("onnx export: %s: missing permutation", n.Name)
		}
		node.Attrs = append(node.Attrs, aInts("perm", perm))

	case opType == "Squeeze":
		axes, ok := ops.SqueezeAxes(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: missing squeeze axes", n.Name)
		}
		if len(axes) > 0 {
			node.Attrs = append(node.Attrs, aInts("axes", axes))
		}

	case opType == "Unsqueeze":
		axes, ok := ops.UnsqueezeAxes(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: missing unsqueeze axes", n.Name)
		}
		node.Attrs = append(node.Attrs, aInts("axes", axes))

	case opType == "Slice":
		axes, starts, ends, ok := ops.SliceInfo(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: missing slice ranges", n.Name)
		}
		node.Attrs = append(node.Attrs,
			aInts("axes", axes), aInts("starts", starts), aInts("ends", ends))

	case opType == "Concat":
		axis, ok := ops.ConcatAxis(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: missing concat axis", n.Name)
		}
		node.Attrs = append(node.Attrs, aInt("axis", int64(axis)))

	case opType == "Split":
		axis, sizes, ok := ops.SplitInfo(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: missing split attributes", n.Name)
		}
		node.Attrs = append(node.Attrs, aInt("axis", int64(axis)), aInts("split", sizes))

	case opType == "ReduceSum" || opType == "ReduceMean" || opType == "ReduceMax" ||
		opType == "ReduceMin" || opType == "ReduceProd":
		_, keep, axes, ok := ops.ReduceInfo(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: not a reduction", n.Name)
		}
		node.Attrs = append(node.Attrs, aInt("keepdims", b2i(keep)))
		if len(axes) > 0 {
			node.Attrs = append(node.Attrs, aInts("axes", axes))
		}

	case opType == "Gather":
		axis, ok := ops.GatherAxis(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: not a Gather", n.Name)
		}
		node.Attrs = append(node.Attrs, aInt("axis", int64(axis)))

	case opType == "Expand":
		target, ok := ops.ExpandTarget(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: missing expand target", n.Name)
		}
		node.Inputs = append(node.Inputs, e.intsInit(n.Name+"_shape", target))

	case opType == "Upsample" || opType == "Resize":
		// Both export as Upsample with a per-dimension scales attribute;
		// the importer maps NCHW [1,1,f,f] back to the catalog's Upsample
		// and anything else to Resize.
		scales, ok := ops.ResizeScales(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: missing scales", n.Name)
		}
		node.OpType = "Upsample"
		fs := make([]float32, len(scales))
		for i, s := range scales {
			fs[i] = float32(s)
		}
		node.Attrs = append(node.Attrs, aFloats("scales", fs))

	case opType == "DepthToSpace" || opType == "SpaceToDepth":
		block, ok := ops.BlockSize(n.Op)
		if !ok {
			return fmt.Errorf("onnx export: %s: missing block size", n.Name)
		}
		node.Attrs = append(node.Attrs, aInt("blocksize", int64(block)))

	default:
		return fmt.Errorf("onnx export: operator %s has no ONNX mapping", opType)
	}

	e.gp.Nodes = append(e.gp.Nodes, node)
	return nil
}

// fillAttr mirrors the catalog's per-spatial-dim attribute expansion: nil
// means the default everywhere, a single value replicates.
func fillAttr(src []int, spatial, def int) []int {
	dst := make([]int, spatial)
	for i := range dst {
		switch {
		case len(src) == 0:
			dst[i] = def
		case len(src) == 1:
			dst[i] = src[0]
		default:
			dst[i] = src[i]
		}
	}
	return dst
}

// duplicated writes the ONNX begin+end pads form of symmetric pads.
func duplicated(pads []int) []int {
	return append(append([]int(nil), pads...), pads...)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
