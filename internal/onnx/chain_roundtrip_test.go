package onnx_test

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"dnnfusion/internal/core"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/models"
	"dnnfusion/internal/onnx"
)

// fusionFingerprint renders a compiled model's fusion plan as a canonical
// string: one line per block listing its node op names (sorted) and, for
// chain blocks, the chain flavor. Two structurally identical plans render
// identically regardless of pointer identity.
func fusionFingerprint(c *core.Compiled) string {
	var lines []string
	for _, b := range c.Plan.Blocks {
		names := make([]string, len(b.Nodes))
		for i, n := range b.Nodes {
			names[i] = n.Op.Type()
		}
		sort.Strings(names)
		tag := ""
		if b.Chain != nil {
			tag = " chain=exact"
			if b.Chain.Online {
				tag = " chain=online"
			}
		}
		lines = append(lines, strings.Join(names, "+")+tag)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestRoundTripChainRefusion: exporting a chain-bearing model to ONNX and
// importing it back must reproduce the fusion plan structurally — in
// particular the contraction chain must re-fuse, with the same flavor
// (online for the attention shape, exact for the MLP shape).
func TestRoundTripChainRefusion(t *testing.T) {
	for _, m := range []struct {
		name   string
		build  func() *graph.Graph
		online bool
	}{
		{"micro-attention", models.MicroAttention, true},
		{"micro-mlp", models.MicroMLP, false},
	} {
		t.Run(m.name, func(t *testing.T) {
			orig, err := core.Compile(m.build(), core.Defaults())
			if err != nil {
				t.Fatal(err)
			}
			if orig.Stats.ChainFusions == 0 {
				t.Fatal("source model compiled without a chain")
			}
			data, err := onnx.Export(m.build())
			if err != nil {
				t.Fatalf("export: %v", err)
			}
			back, err := onnx.Import(data)
			if err != nil {
				t.Fatalf("import: %v", err)
			}
			imported, err := core.Compile(back, core.Defaults())
			if err != nil {
				t.Fatalf("compile imported: %v", err)
			}
			if imported.Stats.ChainFusions != orig.Stats.ChainFusions {
				t.Errorf("imported model fused %d chains, original %d",
					imported.Stats.ChainFusions, orig.Stats.ChainFusions)
			}
			if imported.HasOnlineChain() != m.online {
				t.Errorf("imported HasOnlineChain = %v, want %v", imported.HasOnlineChain(), m.online)
			}
			if of, bf := fusionFingerprint(orig), fusionFingerprint(imported); of != bf {
				t.Errorf("fusion plans differ structurally after round trip:\noriginal:\n%s\nimported:\n%s", of, bf)
			}
		})
	}
}

// TestImportTruncatedRawData: an initializer whose raw payload was
// truncated (by a whole number of float32s, so it still decodes) must be
// rejected as a corrupt model wrapping ErrImport, not imported with a
// silently short weight.
func TestImportTruncatedRawData(t *testing.T) {
	data, err := onnx.Export(models.MicroAttention())
	if err != nil {
		t.Fatal(err)
	}
	m, err := onnx.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	truncated := false
	for _, init := range m.Graph.Initializers {
		if len(init.Raw) >= 8 {
			init.Raw = init.Raw[:len(init.Raw)-4]
			truncated = true
			break
		}
	}
	if !truncated {
		t.Fatal("fixture has no raw-data initializer to corrupt")
	}
	_, err = onnx.Import(m.Marshal())
	if err == nil {
		t.Fatal("truncated raw tensor data imported without error")
	}
	if !errors.Is(err, onnx.ErrImport) {
		t.Errorf("error %v does not wrap ErrImport", err)
	}
	if !strings.Contains(fmt.Sprint(err), "elements for shape") {
		t.Errorf("error %q does not identify the element/shape mismatch", err)
	}
}
