package onnx

import (
	"errors"
	"math"
	"testing"
)

// fullModel exercises every message and attribute kind the codec writes.
func fullModel() *Model {
	return &Model{
		IRVersion:       8,
		ProducerName:    "dnnfusion",
		ProducerVersion: "test",
		OpsetVersion:    13,
		Graph: &GraphProto{
			Name: "wire-test",
			Inputs: []*ValueInfo{
				{Name: "x", ElemType: dtFloat, Dims: []int64{1, 3, 8, 8}},
			},
			Outputs: []*ValueInfo{
				{Name: "y", ElemType: dtFloat, Dims: []int64{1, 16}},
			},
			Initializers: []*TensorProto{
				{Name: "w", DataType: dtFloat, Dims: []int64{4, 2},
					Raw: rawFloats([]float32{1, -2.5, 3e-7, math.MaxFloat32, -0, 6, 7, 8})},
				{Name: "shape", DataType: dtInt64, Dims: []int64{2},
					Int64s: []int64{-1, 16}},
				{Name: "big", DataType: dtFloat, Dims: []int64{512, 1024}}, // shape-only
			},
			Nodes: []*NodeProto{
				{
					Name: "n0", OpType: "Conv",
					Inputs:  []string{"x", "w"},
					Outputs: []string{"t0"},
					Attrs: []*Attribute{
						{Name: "strides", Type: attrInts, Ints: []int64{2, 2}},
						{Name: "group", Type: attrInt, I: 1},
					},
				},
				{
					Name: "n1", OpType: "LeakyRelu",
					Inputs:  []string{"t0"},
					Outputs: []string{"y"},
					Attrs: []*Attribute{
						{Name: "alpha", Type: attrFloat, F: 0.1},
						{Name: "mode", Type: attrString, S: []byte("constant")},
						{Name: "scales", Type: attrFloats, Floats: []float32{1, 1, 2, 2}},
					},
				},
			},
		},
	}
}

func TestProtoRoundTripWire(t *testing.T) {
	m := fullModel()
	data := m.Marshal()
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.IRVersion != m.IRVersion || got.ProducerName != m.ProducerName ||
		got.ProducerVersion != m.ProducerVersion || got.OpsetVersion != m.OpsetVersion {
		t.Fatalf("header mismatch: %+v", got)
	}
	g, want := got.Graph, m.Graph
	if g.Name != want.Name || len(g.Nodes) != len(want.Nodes) ||
		len(g.Initializers) != len(want.Initializers) ||
		len(g.Inputs) != 1 || len(g.Outputs) != 1 {
		t.Fatalf("graph skeleton mismatch: %+v", g)
	}
	if g.Inputs[0].Name != "x" || g.Inputs[0].ElemType != dtFloat ||
		len(g.Inputs[0].Dims) != 4 || g.Inputs[0].Dims[2] != 8 {
		t.Fatalf("input mismatch: %+v", g.Inputs[0])
	}

	// Float payload must survive bit-exactly.
	wf, err := want.Initializers[0].float32Data()
	if err != nil {
		t.Fatal(err)
	}
	gf, err := g.Initializers[0].float32Data()
	if err != nil {
		t.Fatal(err)
	}
	if len(gf) != len(wf) {
		t.Fatalf("weight length %d != %d", len(gf), len(wf))
	}
	for i := range wf {
		if math.Float32bits(gf[i]) != math.Float32bits(wf[i]) {
			t.Fatalf("weight[%d]: %x != %x", i, math.Float32bits(gf[i]), math.Float32bits(wf[i]))
		}
	}

	// Negative int64 (10-byte varint path).
	ints, err := g.Initializers[1].intData()
	if err != nil {
		t.Fatal(err)
	}
	if len(ints) != 2 || ints[0] != -1 || ints[1] != 16 {
		t.Fatalf("int initializer: %v", ints)
	}

	// Shape-only initializer stays shape-only.
	if d, err := g.Initializers[2].float32Data(); err != nil || d != nil {
		t.Fatalf("shape-only initializer: data=%v err=%v", d, err)
	}
	if g.Initializers[2].Dims[0] != 512 || g.Initializers[2].Dims[1] != 1024 {
		t.Fatalf("shape-only dims: %v", g.Initializers[2].Dims)
	}

	// Attributes of both nodes.
	n0, n1 := g.Nodes[0], g.Nodes[1]
	if n0.OpType != "Conv" || n0.Attrs[0].Name != "strides" ||
		len(n0.Attrs[0].Ints) != 2 || n0.Attrs[0].Ints[0] != 2 ||
		n0.Attrs[1].I != 1 {
		t.Fatalf("node 0 attrs: %+v", n0)
	}
	if n1.Attrs[0].F != 0.1 || string(n1.Attrs[1].S) != "constant" ||
		len(n1.Attrs[2].Floats) != 4 || n1.Attrs[2].Floats[2] != 2 {
		t.Fatalf("node 1 attrs: %+v", n1)
	}
}

func TestProtoUnpackedRepeated(t *testing.T) {
	// Writers are allowed to emit repeated scalars unpacked (one tag per
	// element); the zoo exporter writes packed, so hand-encode the
	// unpacked form: dims=1 as three separate varint fields.
	var w writer
	var tp writer
	tp.strField(8, "t")
	tp.int64Field(2, dtFloat)
	for _, d := range []int64{2, 3, 4} {
		tp.int64Field(1, d)
	}
	var gp writer
	gp.bytesField(5, tp.buf)
	w.bytesField(7, gp.buf)
	m, err := Unmarshal(w.buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	dims := m.Graph.Initializers[0].Dims
	if len(dims) != 3 || dims[0] != 2 || dims[1] != 3 || dims[2] != 4 {
		t.Fatalf("unpacked dims: %v", dims)
	}
}

func TestProtoMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty-truncated-tag": {0x80},             // dangling continuation bit
		"truncated-length":    {0x3a, 0x10, 0x01}, // graph field claims 16 bytes, has 1
		"overlong-varint":     {0x08, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01},
		"bad-wire-type":       {0x0c}, // field 1, wire type 4 (deprecated group)
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("%s: want error, got nil", name)
		} else if !errors.Is(err, ErrImport) {
			t.Errorf("%s: error %v does not match ErrImport", name, err)
		}
	}
	// Valid but empty protobuf: no graph.
	if _, err := Unmarshal(nil); err == nil || !errors.Is(err, ErrImport) {
		t.Errorf("nil input: want ErrImport, got %v", err)
	}
}
