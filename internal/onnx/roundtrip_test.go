package onnx_test

import (
	"context"
	"fmt"
	"math"
	"testing"

	"dnnfusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/models"
	"dnnfusion/internal/onnx"
)

// randFeeds builds deterministic pseudo-random feeds for a graph's inputs.
func randFeeds(g *graph.Graph) map[string]*dnnfusion.Tensor {
	feeds := make(map[string]*dnnfusion.Tensor, len(g.Inputs))
	for _, in := range g.Inputs {
		feeds[in.Name] = dnnfusion.Rand(in.Shape...)
	}
	return feeds
}

func assertBitExact(t *testing.T, ctx string, want, got map[string]*dnnfusion.Tensor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", ctx, len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("%s: missing output %q", ctx, name)
		}
		wd, gd := w.Data(), g.Data()
		if len(wd) != len(gd) {
			t.Fatalf("%s: output %q has %d elements, want %d", ctx, name, len(gd), len(wd))
		}
		for i := range wd {
			if math.Float32bits(wd[i]) != math.Float32bits(gd[i]) {
				t.Fatalf("%s: output %q diverges at [%d]: %v != %v (bits %08x != %08x)",
					ctx, name, i, gd[i], wd[i], math.Float32bits(gd[i]), math.Float32bits(wd[i]))
			}
		}
	}
}

// TestRoundTripMicroBitExact exports each executable micro model to ONNX
// bytes, imports the bytes back, and requires bit-identical outputs from
// both the reference interpreter and the compiled engine at 1 and 8
// threads.
func TestRoundTripMicroBitExact(t *testing.T) {
	for _, mm := range models.MicroModels() {
		mm := mm
		t.Run(mm.Name, func(t *testing.T) {
			orig := mm.Build()
			data, err := onnx.Export(orig)
			if err != nil {
				t.Fatalf("export: %v", err)
			}
			imported, err := onnx.Import(data)
			if err != nil {
				t.Fatalf("import: %v", err)
			}

			feeds := randFeeds(orig)
			wantI, err := dnnfusion.InterpretNamed(orig, feeds)
			if err != nil {
				t.Fatalf("interpret original: %v", err)
			}
			gotI, err := dnnfusion.InterpretNamed(imported, feeds)
			if err != nil {
				t.Fatalf("interpret imported: %v", err)
			}
			assertBitExact(t, "interpreter", wantI, gotI)

			for _, threads := range []int{1, 8} {
				ctx := fmt.Sprintf("compiled threads=%d", threads)
				wm, err := dnnfusion.Compile(mm.Build(), dnnfusion.WithThreads(threads))
				if err != nil {
					t.Fatalf("%s: compile original: %v", ctx, err)
				}
				gm, err := dnnfusion.Compile(imported, dnnfusion.WithThreads(threads))
				if err != nil {
					t.Fatalf("%s: compile imported: %v", ctx, err)
				}
				want, err := wm.NewRunner().Run(context.Background(), feeds)
				if err != nil {
					t.Fatalf("%s: run original: %v", ctx, err)
				}
				got, err := gm.NewRunner().Run(context.Background(), feeds)
				if err != nil {
					t.Fatalf("%s: run imported: %v", ctx, err)
				}
				assertBitExact(t, ctx, want, got)
			}
		})
	}
}

// TestRoundTripZooStructural exports each of the Table-5 zoo models
// (shape-only weights) and requires the imported graph to be structurally
// identical: same topological operator sequence, same shapes everywhere,
// same named outputs.
func TestRoundTripZooStructural(t *testing.T) {
	for _, spec := range models.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			orig, err := models.Build(spec.Name)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			data, err := onnx.Export(orig)
			if err != nil {
				t.Fatalf("export: %v", err)
			}
			imported, err := onnx.Import(data)
			if err != nil {
				t.Fatalf("import: %v", err)
			}

			wantNodes, gotNodes := orig.TopoSort(), imported.TopoSort()
			if len(gotNodes) != len(wantNodes) {
				t.Fatalf("%d nodes, want %d", len(gotNodes), len(wantNodes))
			}
			for i, wn := range wantNodes {
				gn := gotNodes[i]
				if gn.Op.Type() != wn.Op.Type() {
					t.Fatalf("node %d: op %s, want %s", i, gn.Op.Type(), wn.Op.Type())
				}
				if len(gn.Outputs) != len(wn.Outputs) {
					t.Fatalf("node %d (%s): %d outputs, want %d",
						i, wn.Op.Type(), len(gn.Outputs), len(wn.Outputs))
				}
				for j, wo := range wn.Outputs {
					if !gn.Outputs[j].Shape.Equal(wo.Shape) {
						t.Fatalf("node %d (%s) output %d: shape %v, want %v",
							i, wn.Op.Type(), j, gn.Outputs[j].Shape, wo.Shape)
					}
				}
			}
			if len(imported.Outputs) != len(orig.Outputs) {
				t.Fatalf("%d graph outputs, want %d", len(imported.Outputs), len(orig.Outputs))
			}
			for i, wo := range orig.Outputs {
				go_ := imported.Outputs[i]
				if go_.Name != wo.Name || !go_.Shape.Equal(wo.Shape) {
					t.Fatalf("graph output %d: %s%v, want %s%v",
						i, go_.Name, go_.Shape, wo.Name, wo.Shape)
				}
			}
		})
	}
}

// TestRoundTripZooCompile compiles every imported Table-5 model, the full
// export → import → compile path the importer exists for.
func TestRoundTripZooCompile(t *testing.T) {
	if testing.Short() {
		t.Skip("compiling all zoo models is slow")
	}
	for _, spec := range models.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			orig, err := models.Build(spec.Name)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			data, err := onnx.Export(orig)
			if err != nil {
				t.Fatalf("export: %v", err)
			}
			imported, err := onnx.Import(data)
			if err != nil {
				t.Fatalf("import: %v", err)
			}
			if _, err := dnnfusion.Compile(imported, dnnfusion.WithThreads(1)); err != nil {
				t.Fatalf("compile imported: %v", err)
			}
		})
	}
}
