package onnx_test

import (
	"encoding/binary"
	"math"
	"testing"

	"dnnfusion"
	"dnnfusion/internal/onnx"
)

// ONNX wire enums, spelled out locally: the package keeps them private.
const (
	elemFloat = 1
	elemInt64 = 7

	typFloat  = 1
	typInt    = 2
	typInts   = 7
	typFloats = 6
)

func rawF32(vals ...float32) []byte {
	raw := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	return raw
}

func floatInit(name string, dims []int64, vals ...float32) *onnx.TensorProto {
	return &onnx.TensorProto{Name: name, DataType: elemFloat, Dims: dims, Raw: rawF32(vals...)}
}

func intInit(name string, vals ...int64) *onnx.TensorProto {
	return &onnx.TensorProto{
		Name: name, DataType: elemInt64,
		Dims: []int64{int64(len(vals))}, Int64s: vals,
	}
}

// TestImportBatchNormFold: a BatchNormalization whose parameters carry
// data imports as a Mul+Add pair with the affine form folded at float64
// precision. Verified numerically against a reference computation.
func TestImportBatchNormFold(t *testing.T) {
	const eps = 1e-5
	scale := []float32{2, 0.5}
	bias := []float32{1, -1}
	mean := []float32{0.5, 0.25}
	variance := []float32{1, 4}

	m := &onnx.Model{
		IRVersion: 8, OpsetVersion: 13,
		Graph: &onnx.GraphProto{
			Name:    "bn-fold",
			Inputs:  []*onnx.ValueInfo{{Name: "x", ElemType: elemFloat, Dims: []int64{1, 2, 3}}},
			Outputs: []*onnx.ValueInfo{{Name: "y", ElemType: elemFloat, Dims: []int64{1, 2, 3}}},
			Initializers: []*onnx.TensorProto{
				floatInit("s", []int64{2}, scale...),
				floatInit("b", []int64{2}, bias...),
				floatInit("m", []int64{2}, mean...),
				floatInit("v", []int64{2}, variance...),
			},
			Nodes: []*onnx.NodeProto{{
				Name: "bn", OpType: "BatchNormalization",
				Inputs:  []string{"x", "s", "b", "m", "v"},
				Outputs: []string{"y"},
				Attrs:   []*onnx.Attribute{{Name: "epsilon", Type: typFloat, F: eps}},
			}},
		},
	}
	g, err := onnx.ToGraph(m)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	var types []string
	for _, n := range g.TopoSort() {
		types = append(types, n.Op.Type())
	}
	if len(types) != 2 || types[0] != "Mul" || types[1] != "Add" {
		t.Fatalf("folded ops = %v, want [Mul Add]", types)
	}

	x := dnnfusion.Rand(1, 2, 3)
	out, err := dnnfusion.InterpretNamed(g, map[string]*dnnfusion.Tensor{"x": x})
	if err != nil {
		t.Fatalf("interpret: %v", err)
	}
	y := out["y"].Data()
	for c := 0; c < 2; c++ {
		a := float64(scale[c]) / math.Sqrt(float64(variance[c])+eps)
		b := float64(bias[c]) - float64(mean[c])*a
		for w := 0; w < 3; w++ {
			i := c*3 + w
			want := a*float64(x.Data()[i]) + b
			if diff := math.Abs(float64(y[i]) - want); diff > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("y[%d] = %v, want %v (diff %v)", i, y[i], want, diff)
			}
		}
	}
}

// TestImportVersionedForms pins the opset-dependent spellings the importer
// accepts beyond the exporter's own: Reshape with a zero copy-dim in its
// shape operand, and Clip bounds passed as inputs rather than attributes.
func TestImportVersionedForms(t *testing.T) {
	m := &onnx.Model{
		IRVersion: 8, OpsetVersion: 13,
		Graph: &onnx.GraphProto{
			Name:    "versioned",
			Inputs:  []*onnx.ValueInfo{{Name: "x", ElemType: elemFloat, Dims: []int64{2, 6}}},
			Outputs: []*onnx.ValueInfo{{Name: "y", ElemType: elemFloat, Dims: []int64{2, 3, 2}}},
			Initializers: []*onnx.TensorProto{
				intInit("shape", 0, 3, -1),
				floatInit("lo", nil, 0),
				floatInit("hi", nil, 1),
			},
			Nodes: []*onnx.NodeProto{
				{OpType: "Clip", Inputs: []string{"x", "lo", "hi"}, Outputs: []string{"c"}},
				{OpType: "Reshape", Inputs: []string{"c", "shape"}, Outputs: []string{"y"}},
			},
		},
	}
	g, err := onnx.ToGraph(m)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	x := dnnfusion.Rand(2, 6)
	out, err := dnnfusion.InterpretNamed(g, map[string]*dnnfusion.Tensor{"x": x})
	if err != nil {
		t.Fatalf("interpret: %v", err)
	}
	y := out["y"]
	if !y.Shape().Equal(dnnfusion.ShapeOf(2, 3, 2)) {
		t.Fatalf("reshape output %v, want (2 3 2)", y.Shape())
	}
	for i, v := range y.Data() {
		want := x.Data()[i]
		if want < 0 {
			want = 0
		} else if want > 1 {
			want = 1
		}
		if v != want {
			t.Fatalf("clip y[%d] = %v, want %v", i, v, want)
		}
	}
}
