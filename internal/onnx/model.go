package onnx

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ONNX TensorProto.DataType values the importer understands.
const (
	dtFloat = 1
	dtInt32 = 6
	dtInt64 = 7
)

// AttributeProto.AttributeType values.
const (
	attrFloat  = 1
	attrInt    = 2
	attrString = 3
	attrTensor = 4
	attrFloats = 6
	attrInts   = 7
)

// Model is the decoded ModelProto subset.
type Model struct {
	IRVersion       int64
	ProducerName    string
	ProducerVersion string
	// OpsetVersion is the default-domain opset the model declares (0 when
	// the file carries none).
	OpsetVersion int64
	Graph        *GraphProto
}

// GraphProto is the decoded GraphProto subset.
type GraphProto struct {
	Name         string
	Nodes        []*NodeProto
	Initializers []*TensorProto
	Inputs       []*ValueInfo
	Outputs      []*ValueInfo
}

// NodeProto is one operator application.
type NodeProto struct {
	Name    string
	OpType  string
	Inputs  []string
	Outputs []string
	Attrs   []*Attribute
}

// Attribute is one node attribute (the subset of AttributeProto used by
// the supported operators).
type Attribute struct {
	Name   string
	Type   int
	F      float32
	I      int64
	S      []byte
	T      *TensorProto
	Floats []float32
	Ints   []int64
}

// TensorProto is a decoded constant tensor. Exactly one of Floats, Int64s,
// or Raw carries the payload; all empty with NumElements()>0 marks a
// shape-only tensor (the zoo's large parameters, which deliberately ship
// no data).
type TensorProto struct {
	Name     string
	Dims     []int64
	DataType int32
	Floats   []float32
	Int64s   []int64
	Raw      []byte
}

// NumElements is the element count implied by Dims.
func (t *TensorProto) NumElements() int64 {
	n := int64(1)
	for _, d := range t.Dims {
		n *= d
	}
	return n
}

// ValueInfo is a graph input/output declaration: name, element type, and
// static dims (-1 for symbolic dims, which the importer rejects).
type ValueInfo struct {
	Name     string
	ElemType int32
	Dims     []int64
}

// Unmarshal decodes a serialized ModelProto.
func Unmarshal(data []byte) (*Model, error) {
	m := &Model{}
	r := reader{buf: data}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // ir_version
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			m.IRVersion = int64(v)
		case 2: // producer_name
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			m.ProducerName = string(b)
		case 3: // producer_version
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			m.ProducerVersion = string(b)
		case 7: // graph
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			if m.Graph, err = parseGraph(b); err != nil {
				return nil, err
			}
		case 8: // opset_import
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			domain, version, err := parseOpset(b)
			if err != nil {
				return nil, err
			}
			if domain == "" {
				m.OpsetVersion = version
			}
		default:
			if err := r.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	if m.Graph == nil {
		return nil, fmt.Errorf("%w: model has no graph", ErrImport)
	}
	return m, nil
}

func parseOpset(data []byte) (domain string, version int64, err error) {
	r := reader{buf: data}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return "", 0, err
		}
		switch field {
		case 1:
			b, err := r.bytes()
			if err != nil {
				return "", 0, err
			}
			domain = string(b)
		case 2:
			v, err := r.varint()
			if err != nil {
				return "", 0, err
			}
			version = int64(v)
		default:
			if err := r.skip(wire); err != nil {
				return "", 0, err
			}
		}
	}
	return domain, version, nil
}

func parseGraph(data []byte) (*GraphProto, error) {
	g := &GraphProto{}
	r := reader{buf: data}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // node
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			n, err := parseNode(b)
			if err != nil {
				return nil, err
			}
			g.Nodes = append(g.Nodes, n)
		case 2: // name
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			g.Name = string(b)
		case 5: // initializer
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			t, err := parseTensor(b)
			if err != nil {
				return nil, err
			}
			g.Initializers = append(g.Initializers, t)
		case 11: // input
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			vi, err := parseValueInfo(b)
			if err != nil {
				return nil, err
			}
			g.Inputs = append(g.Inputs, vi)
		case 12: // output
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			vi, err := parseValueInfo(b)
			if err != nil {
				return nil, err
			}
			g.Outputs = append(g.Outputs, vi)
		default:
			if err := r.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

func parseNode(data []byte) (*NodeProto, error) {
	n := &NodeProto{}
	r := reader{buf: data}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // input
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			n.Inputs = append(n.Inputs, string(b))
		case 2: // output
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			n.Outputs = append(n.Outputs, string(b))
		case 3: // name
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			n.Name = string(b)
		case 4: // op_type
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			n.OpType = string(b)
		case 5: // attribute
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			a, err := parseAttribute(b)
			if err != nil {
				return nil, err
			}
			n.Attrs = append(n.Attrs, a)
		default:
			if err := r.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	return n, nil
}

func parseAttribute(data []byte) (*Attribute, error) {
	a := &Attribute{}
	r := reader{buf: data}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // name
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			a.Name = string(b)
		case 2: // f
			v, err := r.fixed32()
			if err != nil {
				return nil, err
			}
			a.F = math.Float32frombits(v)
			if a.Type == 0 {
				a.Type = attrFloat
			}
		case 3: // i
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			a.I = int64(v)
			if a.Type == 0 {
				a.Type = attrInt
			}
		case 4: // s
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			a.S = append([]byte(nil), b...)
			if a.Type == 0 {
				a.Type = attrString
			}
		case 5: // t
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			if a.T, err = parseTensor(b); err != nil {
				return nil, err
			}
			if a.Type == 0 {
				a.Type = attrTensor
			}
		case 7: // floats
			if a.Floats, err = r.float32s(wire, a.Floats); err != nil {
				return nil, err
			}
			if a.Type == 0 {
				a.Type = attrFloats
			}
		case 8: // ints
			if a.Ints, err = r.int64s(wire, a.Ints); err != nil {
				return nil, err
			}
			if a.Type == 0 {
				a.Type = attrInts
			}
		case 20: // type
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			a.Type = int(v)
		default:
			if err := r.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

func parseTensor(data []byte) (*TensorProto, error) {
	t := &TensorProto{}
	r := reader{buf: data}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // dims
			if t.Dims, err = r.int64s(wire, t.Dims); err != nil {
				return nil, err
			}
		case 2: // data_type
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			t.DataType = int32(v)
		case 4: // float_data
			if t.Floats, err = r.float32s(wire, t.Floats); err != nil {
				return nil, err
			}
		case 5, 7: // int32_data, int64_data (both packed varints)
			if t.Int64s, err = r.int64s(wire, t.Int64s); err != nil {
				return nil, err
			}
		case 8: // name
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			t.Name = string(b)
		case 9: // raw_data
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			t.Raw = append([]byte(nil), b...)
		default:
			if err := r.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

func parseValueInfo(data []byte) (*ValueInfo, error) {
	vi := &ValueInfo{}
	r := reader{buf: data}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // name
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			vi.Name = string(b)
		case 2: // type
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			if err := parseType(b, vi); err != nil {
				return nil, err
			}
		default:
			if err := r.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	return vi, nil
}

// parseType unwraps TypeProto → TypeProto.Tensor → TensorShapeProto.
func parseType(data []byte, vi *ValueInfo) error {
	r := reader{buf: data}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return err
		}
		if field != 1 { // tensor_type
			if err := r.skip(wire); err != nil {
				return err
			}
			continue
		}
		b, err := r.bytes()
		if err != nil {
			return err
		}
		tr := reader{buf: b}
		for !tr.done() {
			tf, tw, err := tr.tag()
			if err != nil {
				return err
			}
			switch tf {
			case 1: // elem_type
				v, err := tr.varint()
				if err != nil {
					return err
				}
				vi.ElemType = int32(v)
			case 2: // shape
				sb, err := tr.bytes()
				if err != nil {
					return err
				}
				if err := parseShape(sb, vi); err != nil {
					return err
				}
			default:
				if err := tr.skip(tw); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func parseShape(data []byte, vi *ValueInfo) error {
	r := reader{buf: data}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return err
		}
		if field != 1 { // dim
			if err := r.skip(wire); err != nil {
				return err
			}
			continue
		}
		b, err := r.bytes()
		if err != nil {
			return err
		}
		dim := int64(-1) // dim_param or empty → symbolic
		dr := reader{buf: b}
		for !dr.done() {
			df, dw, err := dr.tag()
			if err != nil {
				return err
			}
			if df == 1 { // dim_value
				v, err := dr.varint()
				if err != nil {
					return err
				}
				dim = int64(v)
				continue
			}
			if err := dr.skip(dw); err != nil {
				return err
			}
		}
		vi.Dims = append(vi.Dims, dim)
	}
	return nil
}

// float32Data returns the tensor's float payload regardless of which field
// carries it (float_data or raw_data), or nil for a shape-only tensor.
func (t *TensorProto) float32Data() ([]float32, error) {
	if t.DataType != dtFloat {
		return nil, fmt.Errorf("%w: tensor %q has dtype %d, want float32", ErrImport, t.Name, t.DataType)
	}
	if len(t.Raw) > 0 {
		if len(t.Raw)%4 != 0 {
			return nil, fmt.Errorf("%w: tensor %q raw_data length %d not a multiple of 4", ErrImport, t.Name, len(t.Raw))
		}
		out := make([]float32, len(t.Raw)/4)
		for i := range out {
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(t.Raw[4*i:]))
		}
		return out, nil
	}
	if len(t.Floats) > 0 {
		return append([]float32(nil), t.Floats...), nil
	}
	return nil, nil
}

// intData returns the tensor's integer payload as a []int (int64 or int32
// dtype, from the packed fields or raw_data).
func (t *TensorProto) intData() ([]int, error) {
	if t.DataType != dtInt64 && t.DataType != dtInt32 {
		return nil, fmt.Errorf("%w: tensor %q has dtype %d, want int64/int32", ErrImport, t.Name, t.DataType)
	}
	if len(t.Raw) > 0 {
		width := 8
		if t.DataType == dtInt32 {
			width = 4
		}
		if len(t.Raw)%width != 0 {
			return nil, fmt.Errorf("%w: tensor %q raw_data length %d not a multiple of %d", ErrImport, t.Name, len(t.Raw), width)
		}
		out := make([]int, len(t.Raw)/width)
		for i := range out {
			if width == 8 {
				out[i] = int(int64(binary.LittleEndian.Uint64(t.Raw[8*i:])))
			} else {
				out[i] = int(int32(binary.LittleEndian.Uint32(t.Raw[4*i:])))
			}
		}
		return out, nil
	}
	out := make([]int, len(t.Int64s))
	for i, v := range t.Int64s {
		out[i] = int(v)
	}
	return out, nil
}

// Marshal serializes the model back to ModelProto bytes.
func (m *Model) Marshal() []byte {
	var w writer
	if m.IRVersion != 0 {
		w.int64Field(1, m.IRVersion)
	}
	w.strField(2, m.ProducerName)
	w.strField(3, m.ProducerVersion)
	if m.Graph != nil {
		w.message(7, m.Graph.marshal())
	}
	if m.OpsetVersion != 0 {
		var op writer
		op.int64Field(2, m.OpsetVersion) // domain "" omitted
		w.message(8, op.buf)
	}
	return w.buf
}

func (g *GraphProto) marshal() []byte {
	var w writer
	for _, n := range g.Nodes {
		w.message(1, n.marshal())
	}
	w.strField(2, g.Name)
	for _, t := range g.Initializers {
		w.message(5, t.marshal())
	}
	for _, vi := range g.Inputs {
		w.message(11, vi.marshal())
	}
	for _, vi := range g.Outputs {
		w.message(12, vi.marshal())
	}
	return w.buf
}

func (n *NodeProto) marshal() []byte {
	var w writer
	for _, s := range n.Inputs {
		w.bytesField(1, []byte(s))
	}
	for _, s := range n.Outputs {
		w.bytesField(2, []byte(s))
	}
	w.strField(3, n.Name)
	w.strField(4, n.OpType)
	for _, a := range n.Attrs {
		w.message(5, a.marshal())
	}
	return w.buf
}

func (a *Attribute) marshal() []byte {
	var w writer
	w.strField(1, a.Name)
	switch a.Type {
	case attrFloat:
		w.floatField(2, a.F)
	case attrInt:
		w.int64Field(3, a.I)
	case attrString:
		w.bytesField(4, a.S)
	case attrTensor:
		if a.T != nil {
			w.message(5, a.T.marshal())
		}
	case attrFloats:
		w.packedFloats(7, a.Floats)
	case attrInts:
		w.packedInt64s(8, a.Ints)
	}
	w.int64Field(20, int64(a.Type))
	return w.buf
}

func (t *TensorProto) marshal() []byte {
	var w writer
	w.packedInt64s(1, t.Dims)
	if t.DataType != 0 {
		w.int64Field(2, int64(t.DataType))
	}
	w.packedFloats(4, t.Floats)
	w.packedInt64s(7, t.Int64s)
	w.strField(8, t.Name)
	if len(t.Raw) > 0 {
		w.bytesField(9, t.Raw)
	}
	return w.buf
}

func (vi *ValueInfo) marshal() []byte {
	var w writer
	w.strField(1, vi.Name)

	var shape writer
	for _, d := range vi.Dims {
		var dim writer
		dim.int64Field(1, d)
		shape.message(1, dim.buf)
	}
	var tt writer
	tt.int64Field(1, int64(vi.ElemType))
	tt.message(2, shape.buf)
	var tp writer
	tp.message(1, tt.buf)
	w.message(2, tp.buf)
	return w.buf
}
